// Additional user models beyond the paper's exact and uniformly-noisy
// oracles, for robustness studies (DESIGN.md §8):
//  * BoundedErrorUser — mistakes only happen on close calls, the
//    psychologically plausible error model (people rarely mis-order options
//    they feel strongly about);
//  * IndifferentUser — close calls are answered arbitrarily but
//    *consistently* (first option), modelling "can't tell, just pick one";
//  * DriftingUser — the hidden utility vector drifts slowly during the
//    interaction, violating the stationarity every algorithm assumes.
#ifndef ISRL_USER_MODELS_H_
#define ISRL_USER_MODELS_H_

#include "common/rng.h"
#include "user/user.h"

namespace isrl {

/// Answers incorrectly with probability `error_rate`, but only when the two
/// options' utilities are within `margin` of each other (relative to the
/// larger one); clear comparisons are always answered correctly.
class BoundedErrorUser : public UserOracle {
 public:
  BoundedErrorUser(Vec utility, double error_rate, double margin, Rng& rng);

  bool Prefers(const Vec& a, const Vec& b) override;

  const Vec& utility() const { return utility_; }

 private:
  Vec utility_;
  double error_rate_;
  double margin_;
  Rng* rng_;
};

/// Deterministically answers "first option" whenever the relative utility
/// gap is below `margin` (indifference), and truthfully otherwise.
class IndifferentUser : public UserOracle {
 public:
  IndifferentUser(Vec utility, double margin);

  bool Prefers(const Vec& a, const Vec& b) override;

 private:
  Vec utility_;
  double margin_;
};

/// The hidden utility vector performs a small random walk on the simplex
/// after every answered question (`drift` = step size before
/// re-normalisation). Models preferences that sharpen or shift as the user
/// sees more options.
class DriftingUser : public UserOracle {
 public:
  DriftingUser(Vec utility, double drift, Rng& rng);

  bool Prefers(const Vec& a, const Vec& b) override;

  /// The current (drifted) utility vector — evaluation should measure
  /// regret against this, not the starting vector.
  const Vec& current_utility() const { return utility_; }

 private:
  Vec utility_;
  double drift_;
  Rng* rng_;
};

}  // namespace isrl

#endif  // ISRL_USER_MODELS_H_
