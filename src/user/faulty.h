// Fault-injection user oracle.
//
// FaultyUser wraps the deterministic linear user with the failure modes a
// production interaction service actually sees: uniformly random answer
// flips, "no-answer" timeouts, and adversarial flips on questions whose two
// points are nearly tied under the hidden utility (the answers most likely
// to be wrong in practice, and the ones that inject near-redundant
// conflicting half-spaces into the engine's geometry). All randomness comes
// from an owned, seeded Rng, so every fault sequence is reproducible — the
// fault-injection test suite runs hundreds of seeded sessions and asserts
// that no recovery branch is left unexercised.
#ifndef ISRL_USER_FAULTY_H_
#define ISRL_USER_FAULTY_H_

#include "common/rng.h"
#include "user/user.h"

namespace isrl {

/// Fault model knobs. All rates default to zero (a faultless linear user).
struct FaultyUserOptions {
  double flip_rate = 0.0;       ///< P(uniformly random answer flip), < 0.5
  double no_answer_rate = 0.0;  ///< P(timeout — Ask returns kNoAnswer), < 1
  /// Relative utility-gap band for adversarial flips: when
  /// |u·a − u·b| ≤ boundary_band · max(u·a, u·b) the answer is flipped
  /// deterministically (worst case near the decision boundary). 0 disables.
  double boundary_band = 0.0;
  uint64_t seed = 1;            ///< seed of the oracle's own fault Rng
};

/// Linear user decorated with configurable faults (see FaultyUserOptions).
class FaultyUser : public UserOracle {
 public:
  /// `utility` must be a non-negative vector summing to 1.
  FaultyUser(Vec utility, const FaultyUserOptions& options);

  /// The full fault model: timeouts, adversarial boundary flips, then
  /// uniformly random flips.
  Answer Ask(const Vec& a, const Vec& b) override;

  /// Ask() with timeouts disabled (a bool must be produced); flips still
  /// apply.
  bool Prefers(const Vec& a, const Vec& b) override;

  const Vec& utility() const { return inner_.utility(); }
  const FaultyUserOptions& options() const { return options_; }

  /// Fault counters for test assertions.
  size_t flips() const { return flips_; }
  size_t boundary_flips() const { return boundary_flips_; }
  size_t no_answers() const { return no_answers_; }

 private:
  Answer Decide(const Vec& a, const Vec& b, bool allow_no_answer);

  LinearUser inner_;
  FaultyUserOptions options_;
  Rng rng_;
  size_t flips_ = 0;
  size_t boundary_flips_ = 0;
  size_t no_answers_ = 0;
};

}  // namespace isrl

#endif  // ISRL_USER_FAULTY_H_
