// Utility-vector sampling for training and evaluation populations.
#ifndef ISRL_USER_SAMPLER_H_
#define ISRL_USER_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "common/vec.h"

namespace isrl {

/// `count` utility vectors sampled uniformly from the utility space U (the
/// paper trains on 10,000 of these).
std::vector<Vec> SampleUtilityVectors(size_t count, size_t dim, Rng& rng);

/// `count` utility vectors skewed towards a preferred attribute (Dirichlet
/// with one heavy coordinate); used by robustness tests to check the agents
/// generalise off the training distribution.
std::vector<Vec> SampleSkewedUtilityVectors(size_t count, size_t dim,
                                            size_t heavy_coordinate,
                                            double heaviness, Rng& rng);

}  // namespace isrl

#endif  // ISRL_USER_SAMPLER_H_
