#include "user/sampler.h"

#include <cmath>

#include "common/check.h"

namespace isrl {

std::vector<Vec> SampleUtilityVectors(size_t count, size_t dim, Rng& rng) {
  std::vector<Vec> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(rng.SimplexUniform(dim));
  return out;
}

std::vector<Vec> SampleSkewedUtilityVectors(size_t count, size_t dim,
                                            size_t heavy_coordinate,
                                            double heaviness, Rng& rng) {
  ISRL_CHECK_LT(heavy_coordinate, dim);
  ISRL_CHECK_GE(heaviness, 1.0);
  std::vector<Vec> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Gamma(α,1) draws normalised to sum 1 are Dirichlet(α); a heavy α on
    // one coordinate concentrates mass there.
    Vec u(dim);
    double sum = 0.0;
    for (size_t c = 0; c < dim; ++c) {
      double alpha = (c == heavy_coordinate) ? heaviness : 1.0;
      // Sum of `alpha` Exp(1) draws is Gamma(alpha,1) for integral alpha;
      // use the nearest integer for simplicity.
      int k = std::max(1, static_cast<int>(std::lround(alpha)));
      double g = 0.0;
      for (int j = 0; j < k; ++j) g += -std::log(1.0 - rng.Uniform(0.0, 1.0));
      u[c] = g;
      sum += g;
    }
    u /= sum;
    out.push_back(std::move(u));
  }
  return out;
}

}  // namespace isrl
