#include "user/models.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace isrl {

BoundedErrorUser::BoundedErrorUser(Vec utility, double error_rate,
                                   double margin, Rng& rng)
    : utility_(std::move(utility)),
      error_rate_(error_rate),
      margin_(margin),
      rng_(&rng) {
  ISRL_CHECK_GE(error_rate, 0.0);
  ISRL_CHECK_LE(error_rate, 1.0);
  ISRL_CHECK_GE(margin, 0.0);
}

bool BoundedErrorUser::Prefers(const Vec& a, const Vec& b) {
  ++questions_asked_;
  double ua = Dot(utility_, a);
  double ub = Dot(utility_, b);
  bool truthful = ua >= ub;
  double gap = std::abs(ua - ub) / std::max(1e-12, std::max(ua, ub));
  if (gap <= margin_ && rng_->Bernoulli(error_rate_)) return !truthful;
  return truthful;
}

IndifferentUser::IndifferentUser(Vec utility, double margin)
    : utility_(std::move(utility)), margin_(margin) {
  ISRL_CHECK_GE(margin, 0.0);
}

bool IndifferentUser::Prefers(const Vec& a, const Vec& b) {
  ++questions_asked_;
  double ua = Dot(utility_, a);
  double ub = Dot(utility_, b);
  double gap = std::abs(ua - ub) / std::max(1e-12, std::max(ua, ub));
  if (gap <= margin_) return true;  // indifferent: take the first option
  return ua >= ub;
}

DriftingUser::DriftingUser(Vec utility, double drift, Rng& rng)
    : utility_(std::move(utility)), drift_(drift), rng_(&rng) {
  ISRL_CHECK_GE(drift, 0.0);
}

bool DriftingUser::Prefers(const Vec& a, const Vec& b) {
  ++questions_asked_;
  bool answer = Dot(utility_, a) >= Dot(utility_, b);
  // Random-walk step on the simplex: perturb, clamp, re-normalise.
  for (size_t i = 0; i < utility_.dim(); ++i) {
    utility_[i] = std::max(0.0, utility_[i] + rng_->Gaussian(0.0, drift_));
  }
  double sum = utility_.Sum();
  if (sum <= 0.0) {
    utility_ = Vec(utility_.dim(), 1.0 / static_cast<double>(utility_.dim()));
  } else {
    utility_ /= sum;
  }
  return answer;
}

}  // namespace isrl
