#include "user/user.h"

#include <cmath>

#include "common/check.h"

namespace isrl {

LinearUser::LinearUser(Vec utility) : utility_(std::move(utility)) {
  double sum = 0.0;
  for (size_t i = 0; i < utility_.dim(); ++i) {
    ISRL_CHECK_GE(utility_[i], 0.0);
    sum += utility_[i];
  }
  ISRL_CHECK_LE(std::abs(sum - 1.0), 1e-6);
}

bool LinearUser::Prefers(const Vec& a, const Vec& b) {
  ++questions_asked_;
  return Dot(utility_, a) >= Dot(utility_, b);
}

NoisyUser::NoisyUser(Vec utility, double error_rate, Rng& rng)
    : inner_(std::move(utility)), error_rate_(error_rate), rng_(&rng) {
  ISRL_CHECK_GE(error_rate, 0.0);
  ISRL_CHECK_LT(error_rate, 0.5);
}

NoisyUser::NoisyUser(Vec utility, double error_rate, uint64_t seed)
    : inner_(std::move(utility)),
      error_rate_(error_rate),
      owned_rng_(seed),
      rng_(&owned_rng_) {
  ISRL_CHECK_GE(error_rate, 0.0);
  ISRL_CHECK_LT(error_rate, 0.5);
}

bool NoisyUser::Prefers(const Vec& a, const Vec& b) {
  ++questions_asked_;
  bool truthful = Dot(inner_.utility(), a) >= Dot(inner_.utility(), b);
  return rng_->Bernoulli(error_rate_) ? !truthful : truthful;
}

MajorityVoteUser::MajorityVoteUser(UserOracle* inner, size_t votes)
    : inner_(inner), votes_(votes) {
  ISRL_CHECK(inner != nullptr);
  ISRL_CHECK_EQ(votes % 2, 1u);
}

MajorityVoteUser::MajorityVoteUser(std::unique_ptr<UserOracle> inner,
                                   size_t votes)
    : owned_(std::move(inner)), inner_(owned_.get()), votes_(votes) {
  ISRL_CHECK(inner_ != nullptr);
  ISRL_CHECK_EQ(votes % 2, 1u);
}

bool MajorityVoteUser::Prefers(const Vec& a, const Vec& b) {
  ++questions_asked_;
  size_t yes = 0;
  for (size_t i = 0; i < votes_; ++i) {
    if (inner_->Prefers(a, b)) ++yes;
  }
  return yes * 2 > votes_;
}

}  // namespace isrl
