#include "user/faulty.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace isrl {

FaultyUser::FaultyUser(Vec utility, const FaultyUserOptions& options)
    : inner_(std::move(utility)), options_(options), rng_(options.seed) {
  ISRL_CHECK_GE(options.flip_rate, 0.0);
  ISRL_CHECK_LT(options.flip_rate, 0.5);
  ISRL_CHECK_GE(options.no_answer_rate, 0.0);
  ISRL_CHECK_LT(options.no_answer_rate, 1.0);
  ISRL_CHECK_GE(options.boundary_band, 0.0);
  ISRL_CHECK_LE(options.boundary_band, 1.0);
}

Answer FaultyUser::Decide(const Vec& a, const Vec& b, bool allow_no_answer) {
  ++questions_asked_;
  if (allow_no_answer && options_.no_answer_rate > 0.0 &&
      rng_.Bernoulli(options_.no_answer_rate)) {
    ++no_answers_;
    return Answer::kNoAnswer;
  }

  const Vec& u = inner_.utility();
  const double ua = Dot(u, a);
  const double ub = Dot(u, b);
  bool prefers_a = ua >= ub;

  if (options_.boundary_band > 0.0) {
    const double top = std::max({ua, ub, 1e-12});
    if (std::abs(ua - ub) <= options_.boundary_band * top) {
      ++boundary_flips_;
      prefers_a = !prefers_a;
      return prefers_a ? Answer::kFirst : Answer::kSecond;
    }
  }
  if (options_.flip_rate > 0.0 && rng_.Bernoulli(options_.flip_rate)) {
    ++flips_;
    prefers_a = !prefers_a;
  }
  return prefers_a ? Answer::kFirst : Answer::kSecond;
}

Answer FaultyUser::Ask(const Vec& a, const Vec& b) {
  return Decide(a, b, /*allow_no_answer=*/true);
}

bool FaultyUser::Prefers(const Vec& a, const Vec& b) {
  return Decide(a, b, /*allow_no_answer=*/false) == Answer::kFirst;
}

}  // namespace isrl
