// User simulation.
//
// The paper evaluates by hiding a utility vector u* and answering every
// question ⟨p_i, p_j⟩ with the comparison f_{u*}(p_i) vs f_{u*}(p_j). The
// oracle interface also admits the noisy user named in the paper's
// future-work section (answers flipped with a fixed error probability).
#ifndef ISRL_USER_USER_H_
#define ISRL_USER_USER_H_

#include <memory>

#include "common/rng.h"
#include "common/vec.h"

namespace isrl {

/// A user's reply to one pairwise question. Real users sometimes fail to
/// answer at all (timeouts, skipped questions); the interaction engine must
/// survive that, so the reply is three-valued.
enum class Answer {
  kFirst = 0,   ///< prefers the first point
  kSecond,      ///< prefers the second point
  kNoAnswer,    ///< timed out / declined — the engine learns nothing
};

/// Answers pairwise-preference questions. Implementations must be consistent
/// with *some* underlying preference for evaluation to be meaningful, but the
/// algorithms only ever see the answers.
class UserOracle {
 public:
  virtual ~UserOracle() = default;

  /// True when the user prefers `a` to `b` (ties broken towards `a`).
  virtual bool Prefers(const Vec& a, const Vec& b) = 0;

  /// Three-valued form of Prefers(); the interaction engines ask through
  /// this entry point. The default never declines to answer — only faulty
  /// oracles (FaultyUser) return kNoAnswer.
  virtual Answer Ask(const Vec& a, const Vec& b) {
    return Prefers(a, b) ? Answer::kFirst : Answer::kSecond;
  }

  /// Number of questions answered so far.
  size_t questions_asked() const { return questions_asked_; }
  void ResetQuestionCount() { questions_asked_ = 0; }

 protected:
  size_t questions_asked_ = 0;
};

/// Deterministic linear-utility user (the paper's evaluation protocol).
class LinearUser : public UserOracle {
 public:
  /// `utility` must be a non-negative vector summing to 1 (the utility
  /// space U of Section III).
  explicit LinearUser(Vec utility);

  bool Prefers(const Vec& a, const Vec& b) override;

  const Vec& utility() const { return utility_; }

 private:
  Vec utility_;
};

/// Linear user whose answer is flipped with probability `error_rate`
/// (future-work extension; see DESIGN.md §7).
class NoisyUser : public UserOracle {
 public:
  /// Draws flips from the caller's shared generator. NOT safe under
  /// parallel evaluation — prefer the seeded constructor there.
  NoisyUser(Vec utility, double error_rate, Rng& rng);

  /// Owns its flip generator, seeded with `seed`: the fault stream is a
  /// pure function of the seed, independent of any other oracle — the form
  /// the deterministic parallel evaluation layer requires.
  NoisyUser(Vec utility, double error_rate, uint64_t seed);

  bool Prefers(const Vec& a, const Vec& b) override;

  const Vec& utility() const { return inner_.utility(); }
  double error_rate() const { return error_rate_; }

 private:
  LinearUser inner_;
  double error_rate_;
  Rng owned_rng_{0};
  Rng* rng_;  ///< &owned_rng_ for the seeded form, the caller's otherwise
};

/// Decorator that re-asks each question `votes` times (odd) and returns the
/// majority answer — the standard mitigation for noisy oracles. Each re-ask
/// counts as a question for round-accounting purposes.
class MajorityVoteUser : public UserOracle {
 public:
  /// Non-owning: `inner` must outlive this wrapper.
  MajorityVoteUser(UserOracle* inner, size_t votes);

  /// Owning form — lets a UserFactory return a self-contained oracle.
  MajorityVoteUser(std::unique_ptr<UserOracle> inner, size_t votes);

  bool Prefers(const Vec& a, const Vec& b) override;

 private:
  std::unique_ptr<UserOracle> owned_;  ///< null for the non-owning form
  UserOracle* inner_;
  size_t votes_;
};

}  // namespace isrl

#endif  // ISRL_USER_USER_H_
