#include "core/aa.h"

#include "nn/serialize.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/stopwatch.h"
#include "geometry/hit_and_run.h"

namespace isrl {

Aa::Aa(const Dataset& data, const AaOptions& options)
    : data_(data),
      options_(options),
      rng_(options.seed),
      input_dim_(AaStateDim(data.dim()) + 3 * data.dim() + kActionDescriptors),
      agent_(input_dim_, options.dqn, rng_) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GT(options.epsilon, 0.0);
  ISRL_CHECK_LT(options.epsilon, 1.0);
}

double Aa::StopDistance() const {
  return 2.0 * std::sqrt(static_cast<double>(data_.dim())) * options_.epsilon;
}

Vec Aa::FeaturizeAction(const AaAction& action) const {
  const Vec& pi = data_.point(action.q.i);
  const Vec& pj = data_.point(action.q.j);
  Vec f = pi;
  f.Append(pj);
  f.Append(pi - pj);
  // Geometric descriptors: the decision-relevant second-order quantities the
  // network would otherwise have to learn from raw coordinates.
  f.PushBack(action.balance);
  f.PushBack(action.alignment);
  f.PushBack(action.center_dist);
  return f;
}

std::vector<Vec> Aa::FeaturizeCandidates(
    const Vec& state, const std::vector<AaAction>& actions) const {
  std::vector<Vec> out;
  out.reserve(actions.size());
  for (const AaAction& action : actions) {
    out.push_back(Concat(state, FeaturizeAction(action)));
  }
  return out;
}

Matrix Aa::FeaturizeCandidatesMatrix(
    const Vec& state, const std::vector<AaAction>& actions) const {
  Matrix m(actions.size(), input_dim_);
  for (size_t r = 0; r < actions.size(); ++r) {
    double* row = m.row(r);
    std::copy(state.raw(), state.raw() + state.dim(), row);
    const Vec f = FeaturizeAction(actions[r]);
    ISRL_CHECK_EQ(state.dim() + f.dim(), input_dim_);
    std::copy(f.raw(), f.raw() + f.dim(), row + state.dim());
  }
  return m;
}

size_t Aa::MidpointBest(const AaGeometry& geometry) const {
  Vec mid = (geometry.e_min + geometry.e_max) / 2.0;
  return data_.TopIndex(mid);
}

TrainStats Aa::Train(const std::vector<Vec>& training_utilities) {
  TrainStats stats;
  stats.episodes = training_utilities.size();
  size_t total_rounds = 0;
  double last_loss = 0.0;
  const double stop_dist = StopDistance();

  for (const Vec& u : training_utilities) {
    const double epsilon_greedy = agent_.EpsilonAt(episodes_trained_);
    std::vector<LearnedHalfspace> h;
    AaGeometry geo = ComputeAaGeometry(data_.dim(), h);
    if (!geo.feasible) {
      // The empty-H geometry is the unit simplex; an LP failure here is a
      // numerical fluke. Skip the episode rather than aborting training.
      ++episodes_trained_;
      continue;
    }
    Vec state = EncodeAaState(geo);
    std::vector<AaAction> actions =
        BuildAaActionSpace(data_, h, geo, options_.actions, rng_);

    size_t rounds = 0;
    while (Distance(geo.e_min, geo.e_max) > stop_dist && !actions.empty() &&
           rounds < options_.max_rounds) {
      std::vector<Vec> features = FeaturizeCandidates(state, actions);
      size_t pick = agent_.SelectEpsilonGreedy(features, epsilon_greedy, rng_);
      const Question q = actions[pick].q;

      const bool prefers_i =
          Dot(u, data_.point(q.i)) >= Dot(u, data_.point(q.j));
      LearnedHalfspace lh;
      lh.winner = prefers_i ? q.i : q.j;
      lh.loser = prefers_i ? q.j : q.i;
      lh.h = PreferenceHalfspace(data_.point(lh.winner), data_.point(lh.loser));
      h.push_back(std::move(lh));
      ++rounds;

      AaGeometry next_geo = ComputeAaGeometry(data_.dim(), h);
      if (!next_geo.feasible) break;  // cannot happen with consistent answers
      Vec next_state = EncodeAaState(next_geo);
      bool terminal = Distance(next_geo.e_min, next_geo.e_max) <= stop_dist;
      std::vector<AaAction> next_actions;
      if (!terminal) {
        next_actions =
            BuildAaActionSpace(data_, h, next_geo, options_.actions, rng_);
        if (next_actions.empty()) terminal = true;  // no splitting pair left
      }

      rl::Transition t;
      t.state_action = std::move(features[pick]);
      t.terminal = terminal;
      t.reward = terminal ? agent_.options().reward_constant
                          : -agent_.options().step_penalty;
      if (!terminal) {
        t.next_candidates = FeaturizeCandidates(next_state, next_actions);
      }
      agent_.Remember(std::move(t));
      for (size_t k = 0; k < options_.updates_per_round; ++k) {
        last_loss = agent_.Update(rng_);
      }

      geo = std::move(next_geo);
      state = std::move(next_state);
      actions = std::move(next_actions);
    }
    for (size_t k = 0; k < options_.updates_per_episode; ++k) {
      last_loss = agent_.Update(rng_);
    }
    total_rounds += rounds;
    ++episodes_trained_;
  }

  stats.mean_rounds = training_utilities.empty()
                          ? 0.0
                          : static_cast<double>(total_rounds) /
                                static_cast<double>(training_utilities.size());
  stats.final_loss = last_loss;
  return stats;
}

// Algorithm 4 inverted into a sans-IO state machine (DESIGN.md §13). Same
// structure as Ea::Session: Prepare() is the old loop top, PostAnswer() the
// loop body, with every LP/RNG call in the original order so stepped
// episodes are bit-identical to Interact().
class Aa::Session final : public InteractionSession {
 public:
  Session(Aa& owner, const SessionConfig& config)
      : owner_(owner),
        trace_(config.trace),
        stop_dist_(owner.StopDistance()),
        max_rounds_(config.budget.EffectiveMaxRounds(owner.options_.max_rounds)),
        max_lp_(config.budget.max_lp_iterations),
        deadline_(Deadline::FromBudget(config.budget)),
        owned_rng_(config.seed ? std::optional<Rng>(Rng(*config.seed))
                               : std::nullopt) {
    geo_ = ComputeAaGeometry(owner_.data_.dim(), h_, max_lp_);
    if (!geo_.feasible) {
      // The empty-H geometry is the unit simplex itself; failure means the
      // LP budget is too tight even for the trivial model. Recommend
      // something sensible and report the abort instead of crashing.
      const size_t d = owner_.data_.dim();
      result_.best_index = owner_.data_.TopIndex(Vec(d, 1.0 / d));
      result_.termination = Termination::kAborted;
      result_.status = Status::Internal("initial AA geometry LP failed");
      result_.seconds = watch_.ElapsedSeconds();
      finished_ = true;
      return;
    }
    state_ = EncodeAaState(geo_);
    actions_ = BuildAaActionSpace(owner_.data_, h_, geo_,
                                  owner_.options_.actions, rng());
    best_ = owner_.MidpointBest(geo_);
    Prepare();
  }

  std::optional<SessionQuestion> NextQuestion() override {
    if (finished_) return std::nullopt;
    if (scoring_pending_) {
      TakePick(owner_.agent_.SelectGreedy(pending_features_));
    }
    return question_;
  }

  void PostAnswer(Answer answer) override {
    ISRL_CHECK(asking_);
    asking_ = false;
    ++result_.rounds;
    if (answer == Answer::kNoAnswer) {
      // Timed-out question: learn nothing; re-sample the action pool so the
      // next round asks a different question.
      ++result_.no_answers;
      actions_ = BuildAaActionSpace(owner_.data_, h_, geo_,
                                    owner_.options_.actions, rng());
      RecordRound({});
      Prepare();
      return;
    }
    const bool prefers_i = answer == Answer::kFirst;
    const Question q = question_.pair;
    LearnedHalfspace lh;
    lh.winner = prefers_i ? q.i : q.j;
    lh.loser = prefers_i ? q.j : q.i;
    lh.h = PreferenceHalfspace(owner_.data_.point(lh.winner),
                               owner_.data_.point(lh.loser));
    h_.push_back(std::move(lh));

    AaGeometry next_geo = ComputeAaGeometry(owner_.data_.dim(), h_, max_lp_);
    if (!next_geo.feasible) {
      // Contradictory answers (noisy user): H has no common utility vector.
      // Drop the minimal most-recent suffix of half-spaces that restores
      // feasibility and continue from the reduced H.
      while (!h_.empty() && !next_geo.feasible) {
        h_.pop_back();
        ++result_.dropped_answers;
        next_geo = ComputeAaGeometry(owner_.data_.dim(), h_, max_lp_);
      }
      if (!next_geo.feasible) {
        // Even H = ∅ failed: the LP itself is broken. Abort gracefully.
        result_.best_index = best_;
        result_.termination = Termination::kAborted;
        result_.status = Status::Internal("AA geometry LP failed on empty H");
        result_.seconds += watch_.ElapsedSeconds();
        RecordRound({});
        finished_ = true;
        return;
      }
    }
    geo_ = std::move(next_geo);
    state_ = EncodeAaState(geo_);
    actions_ = BuildAaActionSpace(owner_.data_, h_, geo_,
                                  owner_.options_.actions, rng());
    best_ = owner_.MidpointBest(geo_);

    if (trace_ != nullptr) {
      std::vector<Halfspace> cuts;
      cuts.reserve(h_.size());
      for (const LearnedHalfspace& learned : h_) cuts.push_back(learned.h);
      std::vector<Vec> consistent = HitAndRunSample(
          cuts, geo_.inner.center, trace_->regret_samples(), trace_->rng());
      RecordRound(consistent);
    }
    Prepare();
  }

  void Cancel() override {
    if (finished_) return;
    result_.best_index = best_;
    result_.termination = Termination::kBudgetExhausted;
    result_.seconds += watch_.ElapsedSeconds();
    scoring_pending_ = false;
    asking_ = false;
    finished_ = true;
  }

  bool Finished() const override { return finished_; }

  InteractionResult Finish() override {
    ISRL_CHECK(finished_);
    InteractionResult result = result_;
    result.converged = result.termination == Termination::kConverged;
    return result;
  }

  const Matrix* PendingCandidateFeatures() const override {
    return scoring_pending_ ? &pending_features_ : nullptr;
  }

  nn::Network* ScoringNetwork() override {
    return scoring_pending_ ? &owner_.agent_.main_network() : nullptr;
  }

  void PostCandidateScores(const double* scores, size_t count) override {
    ISRL_CHECK(scoring_pending_);
    ISRL_CHECK_EQ(count, pending_features_.rows());
    size_t pick = 0;
    for (size_t i = 1; i < count; ++i) {
      if (scores[i] > scores[pick]) pick = i;
    }
    TakePick(pick);
  }

 private:
  void Prepare() {
    if (!(Distance(geo_.e_min, geo_.e_max) > stop_dist_) ||
        actions_.empty() || result_.rounds >= max_rounds_) {
      Terminate();
      return;
    }
    if (deadline_.Expired()) {
      Terminate();
      return;
    }
    pending_features_ = owner_.FeaturizeCandidatesMatrix(state_, actions_);
    scoring_pending_ = true;
  }

  void TakePick(size_t pick) {
    const Question q = actions_[pick].q;
    question_.first = owner_.data_.point(q.i);
    question_.second = owner_.data_.point(q.j);
    question_.pair = q;
    question_.synthetic = false;
    scoring_pending_ = false;
    asking_ = true;
  }

  void RecordRound(const std::vector<Vec>& consistent) {
    if (trace_ == nullptr) return;
    const double elapsed = watch_.ElapsedSeconds();
    trace_->Record(best_, consistent, elapsed);
    watch_.Restart();
    result_.seconds += elapsed;
  }

  void Terminate() {
    result_.best_index = best_;
    const bool stopped = Distance(geo_.e_min, geo_.e_max) <= stop_dist_;
    const bool stalled = actions_.empty() && !stopped;
    if (stopped) {
      result_.termination = result_.dropped_answers > 0
                                ? Termination::kDegraded
                                : Termination::kConverged;
    } else if (stalled) {
      // No splitting pair left although the rectangle is still wide: the
      // sampler is exhausted. Best-so-far under a degraded certificate.
      result_.termination = Termination::kDegraded;
    } else {
      result_.termination = Termination::kBudgetExhausted;
    }
    result_.seconds += watch_.ElapsedSeconds();
    scoring_pending_ = false;
    asking_ = false;
    finished_ = true;
  }

  Rng& rng() { return owned_rng_ ? *owned_rng_ : owner_.rng_; }

  Aa& owner_;
  InteractionTrace* trace_;
  InteractionResult result_;
  Stopwatch watch_;
  double stop_dist_;
  size_t max_rounds_;
  size_t max_lp_;
  Deadline deadline_;
  std::optional<Rng> owned_rng_;

  std::vector<LearnedHalfspace> h_;
  AaGeometry geo_;
  Vec state_;
  std::vector<AaAction> actions_;
  size_t best_ = 0;

  Matrix pending_features_;
  SessionQuestion question_;
  bool scoring_pending_ = false;
  bool asking_ = false;
  bool finished_ = false;
};

std::unique_ptr<InteractionSession> Aa::StartSession(
    const SessionConfig& config) {
  // Audit at the inference call site (see Ea::StartSession).
  if (audit::ShouldCheck(audit::Checker::kNnFinite)) {
    audit::Auditor().Record(
        audit::Checker::kNnFinite, "Aa.StartSession",
        audit::CheckNetworkFinite(agent_.main_network(), "main"));
  }
  return std::make_unique<Session>(*this, config);
}


Status Aa::SaveAgent(const std::string& path) {
  return nn::SaveNetwork(agent_.main_network(), path);
}

Status Aa::LoadAgent(const std::string& path) {
  ISRL_ASSIGN_OR_RETURN(nn::Network loaded, nn::LoadNetwork(path));
  std::vector<nn::ParamBlock> theirs = loaded.Params();
  std::vector<nn::ParamBlock> mine = agent_.main_network().Params();
  if (theirs.size() != mine.size()) {
    return Status::InvalidArgument("network architecture mismatch");
  }
  for (size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].values->size() != theirs[i].values->size()) {
      return Status::InvalidArgument("network layer shape mismatch");
    }
  }
  agent_.main_network().CopyParamsFrom(loaded);
  agent_.SyncTarget();
  return Status::Ok();
}

}  // namespace isrl
