#include "core/aa.h"

#include "nn/serialize.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/snapshot.h"
#include "geometry/hit_and_run.h"

namespace isrl {

namespace {
constexpr char kAaSnapshotKind[] = "aa-session";
// v2 added the pinned model's registry version next to its fingerprint.
constexpr uint32_t kAaSnapshotVersion = 2;
}  // namespace

Aa::Aa(const Dataset& data, const AaOptions& options)
    : data_(data),
      options_(options),
      rng_(options.seed),
      input_dim_(AaStateDim(data.dim()) + 3 * data.dim() + kActionDescriptors),
      agent_(input_dim_, options.dqn, rng_) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GT(options.epsilon, 0.0);
  ISRL_CHECK_LT(options.epsilon, 1.0);
}

Aa::Aa(const Aa& other)
    : data_(other.data_),
      options_(other.options_),
      rng_(other.rng_),
      input_dim_(other.input_dim_),
      agent_(other.agent_),
      episodes_trained_(other.episodes_trained_) {}

std::shared_ptr<const nn::ModelSnapshot> Aa::ServingModel() {
  // The fingerprint check also catches out-of-band mutation through
  // agent(): a stale snapshot would silently serve old weights.
  if (live_model_ == nullptr ||
      !live_model_->SameWeights(agent_.main_network())) {
    live_model_ =
        std::make_shared<const nn::ModelSnapshot>(0, agent_.main_network());
  }
  return live_model_;
}

double Aa::StopDistance() const {
  return 2.0 * std::sqrt(static_cast<double>(data_.dim())) * options_.epsilon;
}

Vec Aa::FeaturizeAction(const AaAction& action) const {
  const Vec& pi = data_.point(action.q.i);
  const Vec& pj = data_.point(action.q.j);
  Vec f = pi;
  f.Append(pj);
  f.Append(pi - pj);
  // Geometric descriptors: the decision-relevant second-order quantities the
  // network would otherwise have to learn from raw coordinates.
  f.PushBack(action.balance);
  f.PushBack(action.alignment);
  f.PushBack(action.center_dist);
  return f;
}

std::vector<Vec> Aa::FeaturizeCandidates(
    const Vec& state, const std::vector<AaAction>& actions) const {
  std::vector<Vec> out;
  out.reserve(actions.size());
  for (const AaAction& action : actions) {
    out.push_back(Concat(state, FeaturizeAction(action)));
  }
  return out;
}

Matrix Aa::FeaturizeCandidatesMatrix(
    const Vec& state, const std::vector<AaAction>& actions) const {
  Matrix m(actions.size(), input_dim_);
  for (size_t r = 0; r < actions.size(); ++r) {
    double* row = m.row(r);
    std::copy(state.raw(), state.raw() + state.dim(), row);
    const Vec f = FeaturizeAction(actions[r]);
    ISRL_CHECK_EQ(state.dim() + f.dim(), input_dim_);
    std::copy(f.raw(), f.raw() + f.dim(), row + state.dim());
  }
  return m;
}

size_t Aa::MidpointBest(const AaGeometry& geometry) const {
  Vec mid = (geometry.e_min + geometry.e_max) / 2.0;
  return data_.TopIndex(mid);
}

TrainStats Aa::Train(const std::vector<Vec>& training_utilities) {
  TrainStats stats;
  stats.episodes = training_utilities.size();
  size_t total_rounds = 0;
  double last_loss = 0.0;
  const double stop_dist = StopDistance();

  for (const Vec& u : training_utilities) {
    const double epsilon_greedy = agent_.EpsilonAt(episodes_trained_);
    std::vector<LearnedHalfspace> h;
    AaGeometry geo = ComputeAaGeometry(data_.dim(), h);
    if (!geo.feasible) {
      // The empty-H geometry is the unit simplex; an LP failure here is a
      // numerical fluke. Skip the episode rather than aborting training.
      ++episodes_trained_;
      continue;
    }
    Vec state = EncodeAaState(geo);
    std::vector<AaAction> actions =
        BuildAaActionSpace(data_, h, geo, options_.actions, rng_);

    size_t rounds = 0;
    while (Distance(geo.e_min, geo.e_max) > stop_dist && !actions.empty() &&
           rounds < options_.max_rounds) {
      std::vector<Vec> features = FeaturizeCandidates(state, actions);
      size_t pick = agent_.SelectEpsilonGreedy(features, epsilon_greedy, rng_);
      const Question q = actions[pick].q;

      const bool prefers_i =
          Dot(u, data_.point(q.i)) >= Dot(u, data_.point(q.j));
      LearnedHalfspace lh;
      lh.winner = prefers_i ? q.i : q.j;
      lh.loser = prefers_i ? q.j : q.i;
      lh.h = PreferenceHalfspace(data_.point(lh.winner), data_.point(lh.loser));
      h.push_back(std::move(lh));
      ++rounds;

      AaGeometry next_geo = ComputeAaGeometry(data_.dim(), h);
      if (!next_geo.feasible) break;  // cannot happen with consistent answers
      Vec next_state = EncodeAaState(next_geo);
      bool terminal = Distance(next_geo.e_min, next_geo.e_max) <= stop_dist;
      std::vector<AaAction> next_actions;
      if (!terminal) {
        next_actions =
            BuildAaActionSpace(data_, h, next_geo, options_.actions, rng_);
        if (next_actions.empty()) terminal = true;  // no splitting pair left
      }

      rl::Transition t;
      t.state_action = std::move(features[pick]);
      t.terminal = terminal;
      t.reward = terminal ? agent_.options().reward_constant
                          : -agent_.options().step_penalty;
      if (!terminal) {
        t.next_candidates = FeaturizeCandidates(next_state, next_actions);
      }
      agent_.Remember(std::move(t));
      for (size_t k = 0; k < options_.updates_per_round; ++k) {
        last_loss = agent_.Update(rng_);
      }

      geo = std::move(next_geo);
      state = std::move(next_state);
      actions = std::move(next_actions);
    }
    for (size_t k = 0; k < options_.updates_per_episode; ++k) {
      last_loss = agent_.Update(rng_);
    }
    total_rounds += rounds;
    ++episodes_trained_;
  }

  stats.mean_rounds = training_utilities.empty()
                          ? 0.0
                          : static_cast<double>(total_rounds) /
                                static_cast<double>(training_utilities.size());
  stats.final_loss = last_loss;
  live_model_.reset();  // weights changed; the next session re-snapshots
  return stats;
}

// Algorithm 4 inverted into a sans-IO state machine (DESIGN.md §13). Same
// structure as Ea::Session: Prepare() is the old loop top, PostAnswer() the
// loop body, with every LP/RNG call in the original order so stepped
// episodes are bit-identical to Interact().
class Aa::Session final : public InteractionSession {
 public:
  Session(Aa& owner, const SessionConfig& config)
      : owner_(owner),
        trace_(config.trace),
        stop_dist_(owner.StopDistance()),
        max_rounds_(config.budget.EffectiveMaxRounds(owner.options_.max_rounds)),
        max_lp_(config.budget.max_lp_iterations),
        deadline_(Deadline::FromBudget(config.budget)),
        owned_rng_(config.seed ? std::optional<Rng>(Rng(*config.seed))
                               : std::nullopt) {
    model_ = config.model != nullptr ? config.model : owner.ServingModel();
    geo_ = ComputeAaGeometry(owner_.data_.dim(), h_, max_lp_);
    if (!geo_.feasible) {
      // The empty-H geometry is the unit simplex itself; failure means the
      // LP budget is too tight even for the trivial model. Recommend
      // something sensible and report the abort instead of crashing.
      const size_t d = owner_.data_.dim();
      result_.best_index = owner_.data_.TopIndex(Vec(d, 1.0 / d));
      result_.termination = Termination::kAborted;
      result_.status = Status::Internal("initial AA geometry LP failed");
      result_.seconds = watch_.ElapsedSeconds();
      finished_ = true;
      return;
    }
    state_ = EncodeAaState(geo_);
    actions_ = BuildAaActionSpace(owner_.data_, h_, geo_,
                                  owner_.options_.actions, rng());
    best_ = owner_.MidpointBest(geo_);
    Prepare();
  }

  std::optional<SessionQuestion> NextQuestion() override {
    if (finished_) return std::nullopt;
    if (scoring_pending_) {
      // No driver scored the candidates for us: score them here. Same
      // matrix, same weights, same argmax — bit-identical either way.
      TakePick(model_->Score(pending_features_).ArgMax());
    }
    return question_;
  }

  void PostAnswer(Answer answer) override {
    ISRL_CHECK(asking_);
    asking_ = false;
    ++result_.rounds;
    if (answer == Answer::kNoAnswer) {
      // Timed-out question: learn nothing; re-sample the action pool so the
      // next round asks a different question.
      ++result_.no_answers;
      actions_ = BuildAaActionSpace(owner_.data_, h_, geo_,
                                    owner_.options_.actions, rng());
      RecordRound({});
      Prepare();
      return;
    }
    const bool prefers_i = answer == Answer::kFirst;
    const Question q = question_.pair;
    LearnedHalfspace lh;
    lh.winner = prefers_i ? q.i : q.j;
    lh.loser = prefers_i ? q.j : q.i;
    lh.h = PreferenceHalfspace(owner_.data_.point(lh.winner),
                               owner_.data_.point(lh.loser));
    h_.push_back(std::move(lh));

    AaGeometry next_geo = ComputeAaGeometry(owner_.data_.dim(), h_, max_lp_);
    if (!next_geo.feasible) {
      // Contradictory answers (noisy user): H has no common utility vector.
      // Drop the minimal most-recent suffix of half-spaces that restores
      // feasibility and continue from the reduced H.
      while (!h_.empty() && !next_geo.feasible) {
        h_.pop_back();
        ++result_.dropped_answers;
        next_geo = ComputeAaGeometry(owner_.data_.dim(), h_, max_lp_);
      }
      if (!next_geo.feasible) {
        // Even H = ∅ failed: the LP itself is broken. Abort gracefully.
        result_.best_index = best_;
        result_.termination = Termination::kAborted;
        result_.status = Status::Internal("AA geometry LP failed on empty H");
        result_.seconds += watch_.ElapsedSeconds();
        RecordRound({});
        finished_ = true;
        return;
      }
    }
    geo_ = std::move(next_geo);
    state_ = EncodeAaState(geo_);
    actions_ = BuildAaActionSpace(owner_.data_, h_, geo_,
                                  owner_.options_.actions, rng());
    best_ = owner_.MidpointBest(geo_);

    if (trace_ != nullptr) {
      std::vector<Halfspace> cuts;
      cuts.reserve(h_.size());
      for (const LearnedHalfspace& learned : h_) cuts.push_back(learned.h);
      std::vector<Vec> consistent = HitAndRunSample(
          cuts, geo_.inner.center, trace_->regret_samples(), trace_->rng());
      RecordRound(consistent);
    }
    Prepare();
  }

  void Cancel() override {
    if (finished_) return;
    result_.best_index = best_;
    result_.termination = Termination::kBudgetExhausted;
    result_.seconds += watch_.ElapsedSeconds();
    scoring_pending_ = false;
    asking_ = false;
    finished_ = true;
  }

  bool Finished() const override { return finished_; }

  InteractionResult Finish() override {
    ISRL_CHECK(finished_);
    InteractionResult result = result_;
    result.converged = result.termination == Termination::kConverged;
    return result;
  }

  const Matrix* PendingCandidateFeatures() const override {
    return scoring_pending_ ? &pending_features_ : nullptr;
  }

  const nn::ModelSnapshot* ScoringModel() const override {
    return scoring_pending_ ? model_.get() : nullptr;
  }

  void PostCandidateScores(const double* scores, size_t count) override {
    ISRL_CHECK(scoring_pending_);
    ISRL_CHECK_EQ(count, pending_features_.rows());
    size_t pick = 0;
    for (size_t i = 1; i < count; ++i) {
      if (scores[i] > scores[pick]) pick = i;
    }
    TakePick(pick);
  }

  uint64_t ModelVersion() const override {
    return model_ == nullptr ? 0 : model_->version();
  }

  std::optional<Vec> HarvestUtility() const override {
    if (!geo_.feasible) return std::nullopt;
    return (geo_.e_min + geo_.e_max) / 2.0;
  }

  // ---- Durability (DESIGN.md §14). ---------------------------------------

  /// Tag ctor for RestoreSession (see Ea::Session::RestoreTag).
  struct RestoreTag {};
  Session(Aa& owner, InteractionTrace* trace, RestoreTag)
      : owner_(owner),
        trace_(trace),
        stop_dist_(owner.StopDistance()),
        max_rounds_(0),
        max_lp_(0),
        owned_rng_(std::nullopt) {}

  Result<std::string> SaveState() const override {
    snapshot::Writer w;
    snapshot::SessionCore core;
    core.algorithm = owner_.name();
    core.data_size = owner_.data_.size();
    core.data_dim = owner_.data_.dim();
    core.result = result_;
    if (!finished_) core.result.seconds += watch_.ElapsedSeconds();
    core.max_rounds = max_rounds_;
    core.deadline = deadline_;
    core.stage = finished_ ? snapshot::kStageFinished
                           : (asking_ ? snapshot::kStageAsking
                                      : snapshot::kStageScoring);
    core.question = question_;
    core.has_rng = true;
    core.rng = rng();
    core.trace = trace_;
    snapshot::EncodeSessionCore(core, &w);
    w.U64(model_->fingerprint());
    w.U64(model_->version());
    w.U64(max_lp_);
    w.U64(h_.size());
    for (const LearnedHalfspace& lh : h_) {
      snapshot::EncodeLearnedHalfspace(lh, &w);
    }
    w.Bool(geo_.feasible);
    snapshot::EncodeVec(geo_.inner.center, &w);
    w.F64(geo_.inner.radius);
    snapshot::EncodeVec(geo_.e_min, &w);
    snapshot::EncodeVec(geo_.e_max, &w);
    snapshot::EncodeVec(state_, &w);
    w.U64(actions_.size());
    for (const AaAction& a : actions_) {
      w.U64(a.q.i);
      w.U64(a.q.j);
      w.F64(a.balance);
      w.F64(a.alignment);
      w.F64(a.center_dist);
    }
    w.U64(best_);
    return snapshot::WrapFrame(kAaSnapshotKind, kAaSnapshotVersion, w.Take());
  }

  Status Decode(const std::string& payload, const SessionConfig& config) {
    snapshot::Reader r(payload);
    snapshot::SessionCore core;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeSessionCore(&r, &core));
    ISRL_RETURN_IF_ERROR(snapshot::ValidateSessionCore(
        core, owner_.name(), owner_.data_.size(), owner_.data_.dim()));
    if (!core.has_rng) {
      return Status::InvalidArgument("AA snapshot: missing rng state");
    }
    const uint64_t fingerprint = r.U64();
    const uint64_t model_version = r.U64();
    // Re-pin the exact model the session was saved under: the restore-time
    // provider by version, else the caller's explicit pin, else this
    // instance's live model — always verified against the §14 fingerprint.
    std::shared_ptr<const nn::ModelSnapshot> model;
    if (!r.failed()) {
      if (config.models != nullptr) {
        model = config.models->Pin(model_version);
        if (model == nullptr && config.model == nullptr) {
          return Status::FailedPrecondition(Format(
              "AA snapshot is pinned to model version %llu, which the "
              "restore-time model provider does not serve",
              static_cast<unsigned long long>(model_version)));
        }
      }
      if (model == nullptr) model = config.model;
      if (model == nullptr) model = owner_.ServingModel();
      if (fingerprint != model->fingerprint()) {
        return Status::FailedPrecondition(Format(
            "AA snapshot is bound to Q-network %016llx but this instance "
            "serves %016llx (retrained or different model)",
            static_cast<unsigned long long>(fingerprint),
            static_cast<unsigned long long>(model->fingerprint())));
      }
    }
    const size_t n = owner_.data_.size();
    const size_t d = owner_.data_.dim();
    const uint64_t max_lp = r.U64();
    const uint64_t num_h = r.U64();
    if (!r.failed() && num_h > snapshot::kMaxElements) {
      return Status::InvalidArgument("AA snapshot: implausible H size");
    }
    std::vector<LearnedHalfspace> h;
    for (uint64_t i = 0; i < num_h && !r.failed(); ++i) {
      LearnedHalfspace lh;
      ISRL_RETURN_IF_ERROR(snapshot::DecodeLearnedHalfspace(&r, &lh, n));
      if (lh.h.normal.dim() != d) {
        return Status::InvalidArgument(
            "AA snapshot: learned halfspace dimension mismatch");
      }
      h.push_back(std::move(lh));
    }
    AaGeometry geo;
    geo.feasible = r.Bool();
    ISRL_RETURN_IF_ERROR(snapshot::DecodeVec(&r, &geo.inner.center));
    geo.inner.radius = r.FiniteF64();
    ISRL_RETURN_IF_ERROR(snapshot::DecodeVec(&r, &geo.e_min));
    ISRL_RETURN_IF_ERROR(snapshot::DecodeVec(&r, &geo.e_max));
    Vec state;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeVec(&r, &state));
    const uint64_t num_actions = r.U64();
    if (!r.failed() && num_actions > snapshot::kMaxElements) {
      return Status::InvalidArgument("AA snapshot: implausible action count");
    }
    std::vector<AaAction> actions;
    for (uint64_t i = 0; i < num_actions && !r.failed(); ++i) {
      AaAction a;
      a.q.i = static_cast<size_t>(r.U64());
      a.q.j = static_cast<size_t>(r.U64());
      a.balance = r.FiniteF64();
      a.alignment = r.FiniteF64();
      a.center_dist = r.FiniteF64();
      if (!r.failed() && (a.q.i >= n || a.q.j >= n)) {
        return Status::InvalidArgument(
            "AA snapshot: action index out of dataset range");
      }
      actions.push_back(a);
    }
    const uint64_t best = r.U64();
    ISRL_RETURN_IF_ERROR(r.status());
    if (!r.AtEnd()) {
      return Status::InvalidArgument("AA snapshot: trailing payload bytes");
    }
    if (best >= n) {
      return Status::InvalidArgument(
          "AA snapshot: recommendation index out of dataset range");
    }
    const bool restored_finished = core.stage == snapshot::kStageFinished;
    if (!restored_finished) {
      // Live sessions always hold a feasible geometry of the dataset's
      // dimension (infeasible geometries only occur on the abort paths,
      // which finish the session before it can be saved mid-flight).
      if (!geo.feasible || geo.inner.center.dim() != d ||
          geo.e_min.dim() != d || geo.e_max.dim() != d) {
        return Status::InvalidArgument(
            "AA snapshot: live session carries an unusable geometry");
      }
      const size_t expected_state_dim =
          owner_.input_dim_ - 3 * d - Aa::kActionDescriptors;
      if (state.dim() != expected_state_dim) {
        return Status::InvalidArgument(
            "AA snapshot: state vector dimension mismatch");
      }
    }
    if (core.stage == snapshot::kStageAsking &&
        (core.question.pair.i >= n || core.question.pair.j >= n)) {
      return Status::InvalidArgument(
          "AA snapshot: in-flight question index out of dataset range");
    }
    if (core.stage == snapshot::kStageScoring && actions.empty()) {
      return Status::InvalidArgument(
          "AA snapshot: scoring stage without staged candidates");
    }

    result_ = core.result;
    model_ = std::move(model);
    max_rounds_ = static_cast<size_t>(core.max_rounds);
    max_lp_ = static_cast<size_t>(max_lp);
    deadline_ = core.deadline;
    owned_rng_ = core.rng;
    if (core.has_trace && trace_ != nullptr) {
      trace_->RestoreHistory(std::move(core.trace_max_regret),
                             std::move(core.trace_seconds),
                             std::move(core.trace_best_index));
    }
    h_ = std::move(h);
    geo_ = std::move(geo);
    state_ = std::move(state);
    actions_ = std::move(actions);
    best_ = static_cast<size_t>(best);
    question_ = core.question;
    finished_ = restored_finished;
    asking_ = core.stage == snapshot::kStageAsking;
    scoring_pending_ = false;
    if (core.stage == snapshot::kStageScoring) {
      pending_features_ = owner_.FeaturizeCandidatesMatrix(state_, actions_);
      scoring_pending_ = true;
    }
    watch_.Restart();
    return Status::Ok();
  }

 private:
  void Prepare() {
    if (!(Distance(geo_.e_min, geo_.e_max) > stop_dist_) ||
        actions_.empty() || result_.rounds >= max_rounds_) {
      Terminate();
      return;
    }
    if (deadline_.Expired()) {
      Terminate();
      return;
    }
    pending_features_ = owner_.FeaturizeCandidatesMatrix(state_, actions_);
    scoring_pending_ = true;
  }

  void TakePick(size_t pick) {
    const Question q = actions_[pick].q;
    question_.first = owner_.data_.point(q.i);
    question_.second = owner_.data_.point(q.j);
    question_.pair = q;
    question_.synthetic = false;
    scoring_pending_ = false;
    asking_ = true;
  }

  void RecordRound(const std::vector<Vec>& consistent) {
    if (trace_ == nullptr) return;
    const double elapsed = watch_.ElapsedSeconds();
    trace_->Record(best_, consistent, elapsed);
    watch_.Restart();
    result_.seconds += elapsed;
  }

  void Terminate() {
    result_.best_index = best_;
    const bool stopped = Distance(geo_.e_min, geo_.e_max) <= stop_dist_;
    const bool stalled = actions_.empty() && !stopped;
    if (stopped) {
      result_.termination = result_.dropped_answers > 0
                                ? Termination::kDegraded
                                : Termination::kConverged;
    } else if (stalled) {
      // No splitting pair left although the rectangle is still wide: the
      // sampler is exhausted. Best-so-far under a degraded certificate.
      result_.termination = Termination::kDegraded;
    } else {
      result_.termination = Termination::kBudgetExhausted;
    }
    result_.seconds += watch_.ElapsedSeconds();
    scoring_pending_ = false;
    asking_ = false;
    finished_ = true;
  }

  Rng& rng() { return owned_rng_ ? *owned_rng_ : owner_.rng_; }
  const Rng& rng() const { return owned_rng_ ? *owned_rng_ : owner_.rng_; }

  Aa& owner_;
  InteractionTrace* trace_;
  InteractionResult result_;
  Stopwatch watch_;
  double stop_dist_;
  size_t max_rounds_;
  size_t max_lp_;
  Deadline deadline_;
  std::optional<Rng> owned_rng_;

  std::vector<LearnedHalfspace> h_;
  AaGeometry geo_;
  Vec state_;
  std::vector<AaAction> actions_;
  size_t best_ = 0;

  /// The immutable model this session scores with, pinned at construction
  /// (or re-pinned by Decode); never changes mid-session (DESIGN.md §18).
  std::shared_ptr<const nn::ModelSnapshot> model_;

  Matrix pending_features_;
  SessionQuestion question_;
  bool scoring_pending_ = false;
  bool asking_ = false;
  bool finished_ = false;
};

std::unique_ptr<InteractionSession> Aa::StartSession(
    const SessionConfig& config) {
  // Audit at the inference call site (see Ea::StartSession).
  if (audit::ShouldCheck(audit::Checker::kNnFinite)) {
    nn::Network& network = config.model != nullptr ? config.model->network()
                                                   : agent_.main_network();
    audit::Auditor().Record(audit::Checker::kNnFinite, "Aa.StartSession",
                            audit::CheckNetworkFinite(network, "main"));
  }
  return std::make_unique<Session>(*this, config);
}

Result<std::unique_ptr<InteractionSession>> Aa::RestoreSession(
    const std::string& bytes, const SessionConfig& config) {
  ISRL_ASSIGN_OR_RETURN(
      std::string payload,
      snapshot::UnwrapFrame(kAaSnapshotKind, kAaSnapshotVersion, bytes));
  auto session =
      std::make_unique<Session>(*this, config.trace, Session::RestoreTag{});
  ISRL_RETURN_IF_ERROR(session->Decode(payload, config));
  return std::unique_ptr<InteractionSession>(std::move(session));
}

Status Aa::SaveAgent(const std::string& path) {
  return nn::SaveNetwork(agent_.main_network(), path);
}

Status Aa::LoadAgent(const std::string& path) {
  ISRL_ASSIGN_OR_RETURN(nn::Network loaded, nn::LoadNetwork(path));
  std::vector<nn::ParamBlock> theirs = loaded.Params();
  std::vector<nn::ParamBlock> mine = agent_.main_network().Params();
  if (theirs.size() != mine.size()) {
    return Status::InvalidArgument("network architecture mismatch");
  }
  for (size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].values->size() != theirs[i].values->size()) {
      return Status::InvalidArgument("network layer shape mismatch");
    }
  }
  agent_.main_network().CopyParamsFrom(loaded);
  agent_.SyncTarget();
  live_model_.reset();  // weights changed; the next session re-snapshots
  return Status::Ok();
}

}  // namespace isrl
