#include "core/aa.h"

#include "nn/serialize.h"

#include <algorithm>
#include <cmath>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/stopwatch.h"
#include "geometry/hit_and_run.h"

namespace isrl {

Aa::Aa(const Dataset& data, const AaOptions& options)
    : data_(data),
      options_(options),
      rng_(options.seed),
      input_dim_(AaStateDim(data.dim()) + 3 * data.dim() + kActionDescriptors),
      agent_(input_dim_, options.dqn, rng_) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GT(options.epsilon, 0.0);
  ISRL_CHECK_LT(options.epsilon, 1.0);
}

double Aa::StopDistance() const {
  return 2.0 * std::sqrt(static_cast<double>(data_.dim())) * options_.epsilon;
}

Vec Aa::FeaturizeAction(const AaAction& action) const {
  const Vec& pi = data_.point(action.q.i);
  const Vec& pj = data_.point(action.q.j);
  Vec f = pi;
  f.Append(pj);
  f.Append(pi - pj);
  // Geometric descriptors: the decision-relevant second-order quantities the
  // network would otherwise have to learn from raw coordinates.
  f.PushBack(action.balance);
  f.PushBack(action.alignment);
  f.PushBack(action.center_dist);
  return f;
}

std::vector<Vec> Aa::FeaturizeCandidates(
    const Vec& state, const std::vector<AaAction>& actions) const {
  std::vector<Vec> out;
  out.reserve(actions.size());
  for (const AaAction& action : actions) {
    out.push_back(Concat(state, FeaturizeAction(action)));
  }
  return out;
}

Matrix Aa::FeaturizeCandidatesMatrix(
    const Vec& state, const std::vector<AaAction>& actions) const {
  Matrix m(actions.size(), input_dim_);
  for (size_t r = 0; r < actions.size(); ++r) {
    double* row = m.row(r);
    std::copy(state.raw(), state.raw() + state.dim(), row);
    const Vec f = FeaturizeAction(actions[r]);
    ISRL_CHECK_EQ(state.dim() + f.dim(), input_dim_);
    std::copy(f.raw(), f.raw() + f.dim(), row + state.dim());
  }
  return m;
}

size_t Aa::MidpointBest(const AaGeometry& geometry) const {
  Vec mid = (geometry.e_min + geometry.e_max) / 2.0;
  return data_.TopIndex(mid);
}

TrainStats Aa::Train(const std::vector<Vec>& training_utilities) {
  TrainStats stats;
  stats.episodes = training_utilities.size();
  size_t total_rounds = 0;
  double last_loss = 0.0;
  const double stop_dist = StopDistance();

  for (const Vec& u : training_utilities) {
    const double epsilon_greedy = agent_.EpsilonAt(episodes_trained_);
    std::vector<LearnedHalfspace> h;
    AaGeometry geo = ComputeAaGeometry(data_.dim(), h);
    if (!geo.feasible) {
      // The empty-H geometry is the unit simplex; an LP failure here is a
      // numerical fluke. Skip the episode rather than aborting training.
      ++episodes_trained_;
      continue;
    }
    Vec state = EncodeAaState(geo);
    std::vector<AaAction> actions =
        BuildAaActionSpace(data_, h, geo, options_.actions, rng_);

    size_t rounds = 0;
    while (Distance(geo.e_min, geo.e_max) > stop_dist && !actions.empty() &&
           rounds < options_.max_rounds) {
      std::vector<Vec> features = FeaturizeCandidates(state, actions);
      size_t pick = agent_.SelectEpsilonGreedy(features, epsilon_greedy, rng_);
      const Question q = actions[pick].q;

      const bool prefers_i =
          Dot(u, data_.point(q.i)) >= Dot(u, data_.point(q.j));
      LearnedHalfspace lh;
      lh.winner = prefers_i ? q.i : q.j;
      lh.loser = prefers_i ? q.j : q.i;
      lh.h = PreferenceHalfspace(data_.point(lh.winner), data_.point(lh.loser));
      h.push_back(std::move(lh));
      ++rounds;

      AaGeometry next_geo = ComputeAaGeometry(data_.dim(), h);
      if (!next_geo.feasible) break;  // cannot happen with consistent answers
      Vec next_state = EncodeAaState(next_geo);
      bool terminal = Distance(next_geo.e_min, next_geo.e_max) <= stop_dist;
      std::vector<AaAction> next_actions;
      if (!terminal) {
        next_actions =
            BuildAaActionSpace(data_, h, next_geo, options_.actions, rng_);
        if (next_actions.empty()) terminal = true;  // no splitting pair left
      }

      rl::Transition t;
      t.state_action = std::move(features[pick]);
      t.terminal = terminal;
      t.reward = terminal ? agent_.options().reward_constant
                          : -agent_.options().step_penalty;
      if (!terminal) {
        t.next_candidates = FeaturizeCandidates(next_state, next_actions);
      }
      agent_.Remember(std::move(t));
      for (size_t k = 0; k < options_.updates_per_round; ++k) {
        last_loss = agent_.Update(rng_);
      }

      geo = std::move(next_geo);
      state = std::move(next_state);
      actions = std::move(next_actions);
    }
    for (size_t k = 0; k < options_.updates_per_episode; ++k) {
      last_loss = agent_.Update(rng_);
    }
    total_rounds += rounds;
    ++episodes_trained_;
  }

  stats.mean_rounds = training_utilities.empty()
                          ? 0.0
                          : static_cast<double>(total_rounds) /
                                static_cast<double>(training_utilities.size());
  stats.final_loss = last_loss;
  return stats;
}

InteractionResult Aa::DoInteract(InteractionContext& ctx) {
  // Audit at the inference call site (see Ea::DoInteract).
  if (audit::ShouldCheck(audit::Checker::kNnFinite)) {
    audit::Auditor().Record(
        audit::Checker::kNnFinite, "Aa.DoInteract",
        audit::CheckNetworkFinite(agent_.main_network(), "main"));
  }
  InteractionResult result;
  Stopwatch watch;
  const double stop_dist = StopDistance();
  const size_t max_rounds = ctx.MaxRounds(options_.max_rounds);
  const size_t max_lp = ctx.budget.max_lp_iterations;

  std::vector<LearnedHalfspace> h;
  AaGeometry geo = ComputeAaGeometry(data_.dim(), h, max_lp);
  if (!geo.feasible) {
    // The empty-H geometry is the unit simplex itself; failure means the LP
    // budget is too tight even for the trivial model. Recommend something
    // sensible and report the abort instead of crashing.
    result.best_index = data_.TopIndex(Vec(data_.dim(), 1.0 / data_.dim()));
    result.termination = Termination::kAborted;
    result.status = Status::Internal("initial AA geometry LP failed");
    result.seconds = watch.ElapsedSeconds();
    return result;
  }
  Vec state = EncodeAaState(geo);
  std::vector<AaAction> actions =
      BuildAaActionSpace(data_, h, geo, options_.actions, rng_);
  size_t best = MidpointBest(geo);

  auto record_round = [&](const std::vector<Vec>& consistent) {
    if (ctx.trace == nullptr) return;
    const double elapsed = watch.ElapsedSeconds();
    ctx.trace->Record(best, consistent, elapsed);
    watch.Restart();
    result.seconds += elapsed;
  };

  bool deadline_hit = false;
  while (Distance(geo.e_min, geo.e_max) > stop_dist && !actions.empty() &&
         result.rounds < max_rounds) {
    if (ctx.DeadlineExpired()) {
      deadline_hit = true;
      break;
    }
    // Batched action scoring: one GEMM over the row-stacked candidate pool
    // (bit-identical picks to the scalar per-candidate loop).
    size_t pick = agent_.SelectGreedy(FeaturizeCandidatesMatrix(state, actions));
    const Question q = actions[pick].q;

    const Answer answer = ctx.user.Ask(data_.point(q.i), data_.point(q.j));
    ++result.rounds;
    if (answer == Answer::kNoAnswer) {
      // Timed-out question: learn nothing; re-sample the action pool so the
      // next round asks a different question.
      ++result.no_answers;
      actions = BuildAaActionSpace(data_, h, geo, options_.actions, rng_);
      record_round({});
      continue;
    }
    const bool prefers_i = answer == Answer::kFirst;
    LearnedHalfspace lh;
    lh.winner = prefers_i ? q.i : q.j;
    lh.loser = prefers_i ? q.j : q.i;
    lh.h = PreferenceHalfspace(data_.point(lh.winner), data_.point(lh.loser));
    h.push_back(std::move(lh));

    AaGeometry next_geo = ComputeAaGeometry(data_.dim(), h, max_lp);
    if (!next_geo.feasible) {
      // Contradictory answers (noisy user): H has no common utility vector.
      // Drop the minimal most-recent suffix of half-spaces that restores
      // feasibility and continue from the reduced H.
      while (!h.empty() && !next_geo.feasible) {
        h.pop_back();
        ++result.dropped_answers;
        next_geo = ComputeAaGeometry(data_.dim(), h, max_lp);
      }
      if (!next_geo.feasible) {
        // Even H = ∅ failed: the LP itself is broken. Abort gracefully.
        result.best_index = best;
        result.termination = Termination::kAborted;
        result.status = Status::Internal("AA geometry LP failed on empty H");
        result.seconds += watch.ElapsedSeconds();
        record_round({});
        return result;
      }
    }
    geo = std::move(next_geo);
    state = EncodeAaState(geo);
    actions = BuildAaActionSpace(data_, h, geo, options_.actions, rng_);
    best = MidpointBest(geo);

    if (ctx.trace != nullptr) {
      std::vector<Halfspace> cuts;
      cuts.reserve(h.size());
      for (const LearnedHalfspace& learned : h) cuts.push_back(learned.h);
      std::vector<Vec> consistent = HitAndRunSample(
          cuts, geo.inner.center, ctx.trace->regret_samples(), ctx.trace->rng());
      record_round(consistent);
    }
  }

  result.best_index = best;
  const bool stopped = Distance(geo.e_min, geo.e_max) <= stop_dist;
  const bool stalled = actions.empty() && !stopped;
  if (stopped) {
    result.termination = result.dropped_answers > 0 ? Termination::kDegraded
                                                    : Termination::kConverged;
  } else if (stalled) {
    // No splitting pair left although the rectangle is still wide: the
    // sampler is exhausted. Best-so-far under a degraded certificate.
    result.termination = Termination::kDegraded;
  } else {
    result.termination = Termination::kBudgetExhausted;
    (void)deadline_hit;
  }
  result.seconds += watch.ElapsedSeconds();
  return result;
}


Status Aa::SaveAgent(const std::string& path) {
  return nn::SaveNetwork(agent_.main_network(), path);
}

Status Aa::LoadAgent(const std::string& path) {
  ISRL_ASSIGN_OR_RETURN(nn::Network loaded, nn::LoadNetwork(path));
  std::vector<nn::ParamBlock> theirs = loaded.Params();
  std::vector<nn::ParamBlock> mine = agent_.main_network().Params();
  if (theirs.size() != mine.size()) {
    return Status::InvalidArgument("network architecture mismatch");
  }
  for (size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].values->size() != theirs[i].values->size()) {
      return Status::InvalidArgument("network layer shape mismatch");
    }
  }
  agent_.main_network().CopyParamsFrom(loaded);
  agent_.SyncTarget();
  return Status::Ok();
}

}  // namespace isrl
