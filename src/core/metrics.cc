#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/algorithm.h"
#include "core/regret.h"

namespace isrl {

void OutcomeCounts::Count(Termination termination) {
  switch (termination) {
    case Termination::kConverged: break;
    case Termination::kDegraded: ++degraded; break;
    case Termination::kBudgetExhausted: ++budget_exhausted; break;
    case Termination::kAborted: ++aborted; break;
  }
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

void PrintEvalHeader(const std::string& sweep_label) {
  std::printf("%-12s %-14s %10s %12s %12s %12s %10s %9s %8s %8s\n",
              sweep_label.c_str(), "algorithm", "rounds", "time_s", "regret",
              "max_regret", "within_eps", "degraded", "budget", "dropped");
}

void PrintEvalRow(const std::string& sweep_value, const EvalStats& stats) {
  std::printf(
      "%-12s %-14s %10.2f %12.4f %12.4f %12.4f %9.0f%% %8.0f%% %7.0f%% %8.2f\n",
      sweep_value.c_str(), stats.algorithm.c_str(), stats.mean_rounds,
      stats.mean_seconds, stats.mean_regret, stats.max_regret,
      100.0 * stats.frac_within_eps, 100.0 * stats.frac_degraded,
      100.0 * stats.frac_budget_exhausted, stats.mean_dropped_answers);
  std::fflush(stdout);
}

void InteractionTrace::Record(size_t best_index,
                              const std::vector<Vec>& consistent_utilities,
                              double elapsed_seconds) {
  best_index_.push_back(best_index);
  double cumulative = cumulative_seconds_.empty()
                          ? elapsed_seconds
                          : cumulative_seconds_.back() + elapsed_seconds;
  cumulative_seconds_.push_back(cumulative);

  double regret;
  if (consistent_utilities.empty()) {
    regret = max_regret_.empty() ? 1.0 : max_regret_.back();
  } else {
    regret = MaxRegretOver(*data_, data_->point(best_index),
                           consistent_utilities);
  }
  max_regret_.push_back(regret);
}

}  // namespace isrl
