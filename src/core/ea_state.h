// EA's fixed-length state representation (Section IV-B MDP: State).
//
// The utility range R is summarised by (1) m_e representative extreme
// utility vectors chosen by greedy maximum coverage over DBSCAN-style
// neighbourhoods (the exact problem is NP-hard, Lemma 2; the greedy picker is
// the (1−1/e)-approximation), and (2) the outer sphere from the iterative
// shrink heuristic (Lemma 3). Concatenated: d·m_e + d + 1 values.
#ifndef ISRL_CORE_EA_STATE_H_
#define ISRL_CORE_EA_STATE_H_

#include <vector>

#include "common/vec.h"
#include "geometry/enclosing_ball.h"
#include "geometry/polyhedron.h"

namespace isrl {

/// Knobs for EA's state encoder.
struct EaStateOptions {
  size_t m_e = 5;       ///< representative extreme vectors in the state
  double d_eps = 0.05;  ///< neighbourhood radius for coverage selection
};

/// Greedy maximum-coverage selection: returns ≤ m_e vectors from `vectors`
/// such that their d_eps-neighbourhoods cover as many of `vectors` as the
/// greedy rule manages; stops early when everything is covered (paper's
/// construction of E). Order = greedy pick order.
std::vector<Vec> SelectRepresentativeVertices(const std::vector<Vec>& vectors,
                                              size_t m_e, double d_eps);

/// Fixed-length state vector for R: the selected extreme vectors (padded
/// with zero vectors up to m_e when coverage finished early), then the outer
/// sphere centre, then its radius. `polyhedron` must be non-empty.
Vec EncodeEaState(const Polyhedron& polyhedron, const EaStateOptions& options);

/// Dimension of the encoded state: d·m_e + d + 1.
size_t EaStateDim(size_t d, const EaStateOptions& options);

}  // namespace isrl

#endif  // ISRL_CORE_EA_STATE_H_
