// Algorithm AA — the approximate, scalable RL-driven interactive algorithm
// (Section IV-C).
//
// AA keeps only the learned half-space set H; its state is the LP-computed
// inner sphere + outer rectangle, its actions are centre-splitting feasible
// pairs, and it stops when the outer rectangle collapses to
// ‖e_min − e_max‖ ≤ 2√d·ε, returning the top point w.r.t. the rectangle
// midpoint (regret ≤ d²·ε by Lemma 9, and below ε empirically — §V).
// Note: Algorithms 3/4 print the loop guard with the comparison inverted;
// we implement the prose semantics (loop while the distance exceeds the
// bound). See DESIGN.md §2.
#ifndef ISRL_CORE_AA_H_
#define ISRL_CORE_AA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/aa_actions.h"
#include "core/aa_state.h"
#include "core/algorithm.h"
#include "core/ea.h"
#include "data/dataset.h"
#include "nn/registry.h"
#include "rl/dqn.h"

namespace isrl {

/// AA configuration (defaults follow §V).
struct AaOptions {
  double epsilon = 0.1;        ///< threshold; stop at ‖e_min−e_max‖ ≤ 2√d·ε
  AaActionOptions actions;     ///< m_h, pool sampling
  rl::DqnOptions dqn;          ///< agent hyper-parameters
  size_t max_rounds = 2000;    ///< safety cap (Lemma 10 gives O(n²))
  size_t updates_per_round = 1;
  size_t updates_per_episode = 1;
  uint64_t seed = 42;
};

/// The AA interactive algorithm bound to a (normalised, skyline) dataset.
class Aa : public InteractiveAlgorithm {
 public:
  Aa(const Dataset& data, const AaOptions& options);

  /// Explicit copy (CloneForEval): same dataset binding and weights, but
  /// the live serving snapshot is NOT shared (see Ea's copy constructor).
  Aa(const Aa& other);

  /// Algorithm 3: one ε-greedy training episode per utility vector.
  TrainStats Train(const std::vector<Vec>& training_utilities);

  std::string name() const override { return "AA"; }

  /// Deep copy sharing the dataset binding (see Ea::CloneForEval).
  std::unique_ptr<InteractiveAlgorithm> CloneForEval() const override {
    return std::make_unique<Aa>(*this);
  }

  /// Reseeds the action-sampling Rng (per-user derived seed during
  /// evaluation; see core/session.cc).
  void Reseed(uint64_t seed) override { rng_ = Rng(seed); }

  rl::DqnAgent& agent() { return agent_; }
  const AaOptions& options() const { return options_; }
  size_t input_dim() const { return input_dim_; }
  /// Number of scalar geometric descriptors appended to each action's
  /// features (balance, alignment, centre distance).
  static constexpr size_t kActionDescriptors = 3;

  /// The live serving snapshot of this instance's Q-network (version 0 —
  /// unregistered; see Ea::ServingModel). Sessions started without an
  /// explicit SessionConfig::model pin this snapshot (DESIGN.md §18).
  std::shared_ptr<const nn::ModelSnapshot> ServingModel();

  /// Persists the trained Q-network (extension; DESIGN.md §7).
  Status SaveAgent(const std::string& path);
  /// Restores a Q-network saved by SaveAgent; the target network is
  /// synchronised to it.
  Status LoadAgent(const std::string& path);

  /// The stopping bound 2√d·ε for this instance.
  double StopDistance() const;

  /// Algorithm 4 as a resumable sans-IO session (DESIGN.md §13), hardened —
  /// when noisy answers make H infeasible the minimal most-recent suffix of
  /// half-spaces is dropped, unanswered questions are skipped, and the
  /// config's budget caps rounds and wall-clock time. Exposes the
  /// batched-scoring protocol so the SessionScheduler can coalesce
  /// candidate scoring across sessions.
  std::unique_ptr<InteractionSession> StartSession(
      const SessionConfig& config) override;

  /// Reopens a checkpointed AA session (DESIGN.md §14). Snapshots carry the
  /// Q-network's fingerprint, not its weights; restore fails with
  /// FailedPrecondition when this instance's network differs.
  Result<std::unique_ptr<InteractionSession>> RestoreSession(
      const std::string& bytes, const SessionConfig& config) override;

 private:
  class Session;

  Vec FeaturizeAction(const AaAction& action) const;
  std::vector<Vec> FeaturizeCandidates(const Vec& state,
                                       const std::vector<AaAction>& actions) const;
  /// Row-stacked candidate features for the batched inference path (see
  /// Ea::FeaturizeCandidatesMatrix).
  Matrix FeaturizeCandidatesMatrix(const Vec& state,
                                   const std::vector<AaAction>& actions) const;
  /// Top point w.r.t. the rectangle midpoint (e_min + e_max)/2.
  size_t MidpointBest(const AaGeometry& geometry) const;

  const Dataset& data_;
  AaOptions options_;
  Rng rng_;
  size_t input_dim_;
  rl::DqnAgent agent_;
  size_t episodes_trained_ = 0;
  /// Lazily built by ServingModel(); reset whenever the weights change.
  std::shared_ptr<const nn::ModelSnapshot> live_model_;
};

}  // namespace isrl

#endif  // ISRL_CORE_AA_H_
