// EA's restricted action space (Section IV-B MDP: Action).
//
// Candidate questions are pairs drawn from P_R — the winner points of
// terminal polyhedra constructed inside R over V = (sampled interior
// vectors) ∪ (extreme vectors). Restricting to P_R guarantees every question
// strictly narrows R (Lemma 7) and bounds the episode at O(n) rounds
// (Theorem 1), because each answer permanently eliminates one winner.
#ifndef ISRL_CORE_EA_ACTIONS_H_
#define ISRL_CORE_EA_ACTIONS_H_

#include <vector>

#include "common/rng.h"
#include "core/algorithm.h"
#include "data/dataset.h"
#include "geometry/polyhedron.h"

namespace isrl {

/// Knobs for EA's action-space construction.
struct EaActionOptions {
  size_t m_h = 5;            ///< action-space size (paper §V: 5)
  size_t num_samples = 100;  ///< interior utility vectors added to V (Lemma 5)
};

/// A candidate question over P_R with the geometric descriptors the
/// Q-network uses as action features.
struct EaAction {
  Question q;
  double balance = 0.5;     ///< fraction of V preferring q.i (∈ (0,1))
  double center_dist = 0.0; ///< hyper-plane distance to R's centroid
};

/// The restricted action space together with the winner set it was built
/// from. `winners.size() == 1` is a terminal certificate: that single point
/// covers every vector of V ⊇ E, so by convexity its regret ratio is below ε
/// everywhere in R — and `winners.front()` is the point to return.
struct EaActionSpace {
  std::vector<size_t> winners;    ///< P_R (distinct terminal winners)
  std::vector<EaAction> actions;  ///< up to m_h random pairs over P_R
};

/// Builds the action space for the current R. `actions` is empty iff
/// |P_R| ≤ 1 (terminal).
EaActionSpace BuildEaActionSpace(const Dataset& data, const Polyhedron& range,
                                 double epsilon,
                                 const EaActionOptions& options, Rng& rng);

}  // namespace isrl

#endif  // ISRL_CORE_EA_ACTIONS_H_
