// Terminal-polyhedron machinery for algorithm EA (Section IV-B, Lemmas 4–7).
//
// A terminal polyhedron T ⊆ R is a region over which a single point p_T has
// regret ratio below ε everywhere. Lemma 4 characterises T_w for a winner
// point p_w as R ∩ ⋂_j εh⁺_{w,j}, and membership of a utility vector u in
// T_w reduces to one comparison:
//     u ∈ T_w  ⇔  u·p_w ≥ (1−ε)·max_j u·p_j.
// Consequently P_R (the winner points of the terminal polyhedra built over a
// vector set V) never needs explicit geometry: it is the smallest set of
// points covering V under that test, built in the paper's insertion order.
#ifndef ISRL_CORE_TERMINAL_H_
#define ISRL_CORE_TERMINAL_H_

#include <vector>

#include "common/vec.h"
#include "data/dataset.h"

namespace isrl {

/// Winner points P_R of the terminal polyhedra constructed over `utilities`
/// (Section IV-B's V), in construction order: for each u, if no existing
/// winner's polyhedron contains u, the top-1 point w.r.t. u becomes a new
/// winner. Returns indices into `data`.
std::vector<size_t> TerminalWinners(const Dataset& data,
                                    const std::vector<Vec>& utilities,
                                    double epsilon);

/// Lemma 6 terminal test: R (given by its extreme utility vectors) is a
/// terminal polyhedron iff a single terminal polyhedron covers all extreme
/// vectors. On success `*winner` is the point to return (regret < ε for any
/// u ∈ R). `extreme_vectors` must be non-empty.
bool IsTerminalRange(const Dataset& data,
                     const std::vector<Vec>& extreme_vectors, double epsilon,
                     size_t* winner);

/// Membership test u ∈ T_w (the linearised Lemma 4 condition).
bool InTerminalPolyhedron(const Dataset& data, size_t winner_index,
                          const Vec& u, double epsilon);

}  // namespace isrl

#endif  // ISRL_CORE_TERMINAL_H_
