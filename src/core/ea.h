// Algorithm EA — the exact RL-driven interactive algorithm (Section IV-B).
//
// EA maintains the utility range R as an explicit polyhedron, encodes it with
// representative extreme vectors + the outer sphere, restricts actions to
// pairs over P_R (terminal-polyhedron winners), and trains a DQN so that
// question selection maximises the discounted terminal reward — i.e.
// minimises the number of rounds over the whole interaction (Algorithm 1).
// Inference (Algorithm 2) plays the greedy policy and returns a point whose
// regret ratio is strictly below ε (Lemma 4).
#ifndef ISRL_CORE_EA_H_
#define ISRL_CORE_EA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/algorithm.h"
#include "core/ea_actions.h"
#include "core/ea_state.h"
#include "data/dataset.h"
#include "nn/registry.h"
#include "rl/dqn.h"

namespace isrl {

/// EA configuration (defaults follow §V).
struct EaOptions {
  double epsilon = 0.1;        ///< regret-ratio threshold
  EaStateOptions state;        ///< m_e, d_eps
  EaActionOptions actions;     ///< m_h, interior-sample count
  rl::DqnOptions dqn;          ///< agent hyper-parameters
  size_t max_rounds = 1000;    ///< safety cap (Theorem 1 gives O(n))
  size_t updates_per_round = 1;   ///< DQN updates after each training round
  size_t updates_per_episode = 1; ///< extra updates at episode end (Alg. 1 l.19)
  uint64_t seed = 42;          ///< master seed for all stochastic pieces
};

/// Training statistics (per call to Train).
struct TrainStats {
  size_t episodes = 0;
  double mean_rounds = 0.0;  ///< average episode length during training
  double final_loss = 0.0;   ///< batch MSE of the last update
};

/// The EA interactive algorithm bound to a (normalised, skyline) dataset.
class Ea : public InteractiveAlgorithm {
 public:
  Ea(const Dataset& data, const EaOptions& options);

  /// Explicit copy (CloneForEval): same dataset binding, same Q-network
  /// weights (Adam moments reset), but the live serving snapshot is
  /// deliberately NOT shared — each clone lazily builds its own, so model
  /// inference scratch is never shared across evaluation threads.
  Ea(const Ea& other);

  /// Algorithm 1: one ε-greedy training episode per utility vector.
  TrainStats Train(const std::vector<Vec>& training_utilities);

  std::string name() const override { return "EA"; }

  /// Deep copy sharing the dataset binding; the copy's Q-network weights
  /// equal this instance's at clone time (Adam moments reset — see
  /// DqnAgent's copy constructor), so cloned inference is identical.
  std::unique_ptr<InteractiveAlgorithm> CloneForEval() const override {
    return std::make_unique<Ea>(*this);
  }

  /// Reseeds the action-sampling Rng (per-user derived seed during
  /// evaluation; see core/session.cc).
  void Reseed(uint64_t seed) override { rng_ = Rng(seed); }

  rl::DqnAgent& agent() { return agent_; }
  const EaOptions& options() const { return options_; }
  /// Featurised (state, action) input dimension of the Q-network.
  size_t input_dim() const { return input_dim_; }
  /// Number of scalar geometric descriptors appended to each action's
  /// features (balance, centroid distance).
  static constexpr size_t kActionDescriptors = 2;

  /// The live serving snapshot of this instance's Q-network (version 0 —
  /// unregistered), built lazily and refreshed whenever the weights change
  /// (Train, LoadAgent, or direct agent() mutation, caught by a fingerprint
  /// check). Sessions started without an explicit SessionConfig::model pin
  /// this snapshot, so retraining never affects an in-flight episode
  /// (DESIGN.md §18).
  std::shared_ptr<const nn::ModelSnapshot> ServingModel();

  /// Persists the trained Q-network so a later process can skip Train()
  /// (extension; DESIGN.md §7).
  Status SaveAgent(const std::string& path);
  /// Restores a Q-network saved by SaveAgent (architecture must match this
  /// instance's input_dim); the target network is synchronised to it.
  Status LoadAgent(const std::string& path);

  /// Algorithm 2 as a resumable sans-IO session (DESIGN.md §13), hardened —
  /// conflicting (noisy) answers are dropped most-recent-first instead of
  /// emptying R, unanswered questions are skipped, and the config's budget
  /// caps rounds and time. Exposes the batched-scoring protocol so the
  /// SessionScheduler can coalesce candidate scoring across sessions.
  std::unique_ptr<InteractionSession> StartSession(
      const SessionConfig& config) override;

  /// Reopens a checkpointed EA session (DESIGN.md §14). The snapshot stores
  /// the Q-network's fingerprint, not its weights: restore fails with
  /// FailedPrecondition when this instance's network differs from the one
  /// the session was saved under (e.g. it has been retrained since).
  Result<std::unique_ptr<InteractionSession>> RestoreSession(
      const std::string& bytes, const SessionConfig& config) override;

 private:
  class Session;

  /// One round's decision basis: a terminal certificate, candidate actions,
  /// or a stall (degenerate data — no winners and no questions left).
  struct RoundPlan {
    bool terminal = false;
    bool stalled = false;
    size_t winner = 0;
    std::vector<EaAction> actions;
  };

  RoundPlan PlanRound(const Polyhedron& range, Rng& rng);
  Vec FeaturizeAction(const EaAction& action) const;
  std::vector<Vec> FeaturizeCandidates(const Vec& state,
                                       const std::vector<EaAction>& actions) const;
  /// Row-stacked candidate features for the batched inference path: the
  /// greedy round scores all actions with one GEMM instead of |actions|
  /// scalar forwards, and skips the per-candidate Vec concatenations.
  Matrix FeaturizeCandidatesMatrix(const Vec& state,
                                   const std::vector<EaAction>& actions) const;

  const Dataset& data_;
  EaOptions options_;
  Rng rng_;
  size_t input_dim_;
  rl::DqnAgent agent_;
  size_t episodes_trained_ = 0;
  /// Lazily built by ServingModel(); reset whenever the weights change.
  std::shared_ptr<const nn::ModelSnapshot> live_model_;
};

}  // namespace isrl

#endif  // ISRL_CORE_EA_H_
