#include "core/ea.h"

#include "nn/serialize.h"

#include <algorithm>
#include <optional>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/snapshot.h"
#include "core/terminal.h"
#include "geometry/halfspace.h"

namespace isrl {

namespace {
constexpr char kEaSnapshotKind[] = "ea-session";
// v2 added the pinned model's registry version next to its fingerprint.
constexpr uint32_t kEaSnapshotVersion = 2;
}  // namespace

Ea::Ea(const Dataset& data, const EaOptions& options)
    : data_(data),
      options_(options),
      rng_(options.seed),
      input_dim_(EaStateDim(data.dim(), options.state) + 3 * data.dim() +
                 kActionDescriptors),
      agent_(input_dim_, options.dqn, rng_) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GT(options.epsilon, 0.0);
  ISRL_CHECK_LT(options.epsilon, 1.0);
}

Ea::Ea(const Ea& other)
    : data_(other.data_),
      options_(other.options_),
      rng_(other.rng_),
      input_dim_(other.input_dim_),
      agent_(other.agent_),
      episodes_trained_(other.episodes_trained_) {}

std::shared_ptr<const nn::ModelSnapshot> Ea::ServingModel() {
  // The fingerprint check also catches out-of-band mutation through
  // agent(): a stale snapshot would silently serve old weights.
  if (live_model_ == nullptr ||
      !live_model_->SameWeights(agent_.main_network())) {
    live_model_ =
        std::make_shared<const nn::ModelSnapshot>(0, agent_.main_network());
  }
  return live_model_;
}

Ea::RoundPlan Ea::PlanRound(const Polyhedron& range, Rng& rng) {
  RoundPlan plan;
  if (range.IsEmpty()) {
    // Callers keep R non-empty (TryCut); an empty R here is a numeric
    // degeneracy — stall instead of aborting.
    plan.stalled = true;
    return plan;
  }
  // Lemma 6 first: a single terminal polyhedron over the extreme vectors
  // certifies termination.
  if (IsTerminalRange(data_, range.vertices(), options_.epsilon,
                      &plan.winner)) {
    plan.terminal = true;
    return plan;
  }
  EaActionSpace space = BuildEaActionSpace(data_, range, options_.epsilon,
                                           options_.actions, rng);
  if (space.actions.empty()) {
    if (space.winners.empty()) {
      // Degenerate data (no utility vector of V had a positive top score):
      // no certificate and no question can make progress.
      plan.stalled = true;
      return plan;
    }
    // A single winner covered all of V ⊇ E — also a valid terminal
    // certificate (coverage of every extreme vector implies coverage of R
    // by convexity); return that winner.
    plan.terminal = true;
    plan.winner = space.winners.front();
    return plan;
  }
  plan.actions = std::move(space.actions);
  return plan;
}

Vec Ea::FeaturizeAction(const EaAction& action) const {
  const Vec& pi = data_.point(action.q.i);
  const Vec& pj = data_.point(action.q.j);
  Vec f = pi;
  f.Append(pj);
  f.Append(pi - pj);
  // Geometric descriptors: the split-quality signals the policy ranks on.
  f.PushBack(action.balance);
  f.PushBack(action.center_dist);
  return f;
}

std::vector<Vec> Ea::FeaturizeCandidates(
    const Vec& state, const std::vector<EaAction>& actions) const {
  std::vector<Vec> out;
  out.reserve(actions.size());
  for (const EaAction& action : actions) {
    out.push_back(Concat(state, FeaturizeAction(action)));
  }
  return out;
}

Matrix Ea::FeaturizeCandidatesMatrix(
    const Vec& state, const std::vector<EaAction>& actions) const {
  Matrix m(actions.size(), input_dim_);
  for (size_t r = 0; r < actions.size(); ++r) {
    double* row = m.row(r);
    std::copy(state.raw(), state.raw() + state.dim(), row);
    const Vec f = FeaturizeAction(actions[r]);
    ISRL_CHECK_EQ(state.dim() + f.dim(), input_dim_);
    std::copy(f.raw(), f.raw() + f.dim(), row + state.dim());
  }
  return m;
}

TrainStats Ea::Train(const std::vector<Vec>& training_utilities) {
  TrainStats stats;
  stats.episodes = training_utilities.size();
  size_t total_rounds = 0;
  double last_loss = 0.0;

  for (const Vec& u : training_utilities) {
    const double epsilon_greedy = agent_.EpsilonAt(episodes_trained_);
    Polyhedron range = Polyhedron::UnitSimplex(data_.dim());
    RoundPlan plan = PlanRound(range, rng_);
    Vec state = EncodeEaState(range, options_.state);

    size_t rounds = 0;
    while (!plan.terminal && !plan.stalled && rounds < options_.max_rounds) {
      std::vector<Vec> features = FeaturizeCandidates(state, plan.actions);
      size_t pick = agent_.SelectEpsilonGreedy(features, epsilon_greedy, rng_);
      const Question q = plan.actions[pick].q;

      // Simulated answer (Algorithm 1 lines 9-12): prefer p_i iff
      // u·p_i ≥ u·p_j, then keep the matching half-space.
      const bool prefers_i = Dot(u, data_.point(q.i)) >= Dot(u, data_.point(q.j));
      const Vec& winner = data_.point(prefers_i ? q.i : q.j);
      const Vec& loser = data_.point(prefers_i ? q.j : q.i);
      range.Cut(PreferenceHalfspace(winner, loser));
      ++rounds;
      if (range.IsEmpty()) break;  // numeric degeneracy guard

      RoundPlan next_plan = PlanRound(range, rng_);
      Vec next_state = EncodeEaState(range, options_.state);

      const bool episode_over = next_plan.terminal || next_plan.stalled;
      rl::Transition t;
      t.state_action = std::move(features[pick]);
      t.terminal = episode_over;
      t.reward = episode_over
                     ? agent_.options().reward_constant
                     : -agent_.options().step_penalty;
      if (!episode_over) {
        t.next_candidates = FeaturizeCandidates(next_state, next_plan.actions);
      }
      agent_.Remember(std::move(t));
      for (size_t k = 0; k < options_.updates_per_round; ++k) {
        last_loss = agent_.Update(rng_);
      }

      plan = std::move(next_plan);
      state = std::move(next_state);
    }
    for (size_t k = 0; k < options_.updates_per_episode; ++k) {
      last_loss = agent_.Update(rng_);
    }
    total_rounds += rounds;
    ++episodes_trained_;
  }

  stats.mean_rounds = training_utilities.empty()
                          ? 0.0
                          : static_cast<double>(total_rounds) /
                                static_cast<double>(training_utilities.size());
  stats.final_loss = last_loss;
  live_model_.reset();  // weights changed; the next session re-snapshots
  return stats;
}

// Algorithm 2 inverted into a sans-IO state machine (DESIGN.md §13). The
// per-round sequence of the old blocking loop — guard, deadline, score,
// ask, cut, re-plan, record — is preserved exactly, split across the step
// API: Prepare() is the loop top (guards + candidate featurisation),
// NextQuestion()/PostCandidateScores() is the greedy pick, PostAnswer() is
// the loop body. Every geometric/RNG operation runs in the original order,
// so stepped episodes are bit-identical to Interact().
class Ea::Session final : public InteractionSession {
 public:
  Session(Ea& owner, const SessionConfig& config)
      : owner_(owner),
        trace_(config.trace),
        max_rounds_(config.budget.EffectiveMaxRounds(owner.options_.max_rounds)),
        deadline_(Deadline::FromBudget(config.budget)),
        owned_rng_(config.seed ? std::optional<Rng>(Rng(*config.seed))
                               : std::nullopt),
        range_(Polyhedron::UnitSimplex(owner.data_.dim())) {
    model_ = config.model != nullptr ? config.model : owner.ServingModel();
    plan_ = owner_.PlanRound(range_, rng());
    state_ = EncodeEaState(range_, owner_.options_.state);
    fallback_best_ = owner_.data_.TopIndex(range_.Centroid());
    Prepare();
  }

  std::optional<SessionQuestion> NextQuestion() override {
    if (finished_) return std::nullopt;
    if (scoring_pending_) {
      // No driver scored the candidates for us: score them here. Same
      // matrix, same weights, same argmax — bit-identical either way.
      TakePick(model_->Score(pending_features_).ArgMax());
    }
    return question_;
  }

  void PostAnswer(Answer answer) override {
    ISRL_CHECK(asking_);
    asking_ = false;
    ++result_.rounds;
    if (answer == Answer::kNoAnswer) {
      // Timed-out question: learn nothing, re-plan (the action sampler is
      // stochastic, so the next round asks a fresh set of questions).
      ++result_.no_answers;
      plan_ = owner_.PlanRound(range_, rng());
      RecordRound();
      Prepare();
      return;
    }
    const bool prefers_i = answer == Answer::kFirst;
    const Question q = question_.pair;
    const Vec& winner = owner_.data_.point(prefers_i ? q.i : q.j);
    const Vec& loser = owner_.data_.point(prefers_i ? q.j : q.i);
    if (!range_.TryCut(PreferenceHalfspace(winner, loser))) {
      // The answer contradicts everything learned so far (inconsistent
      // noisy user): dropping the minimal most-recent suffix of conflicting
      // half-spaces — here exactly this one, since R was non-empty before —
      // keeps the session alive.
      ++result_.dropped_answers;
      plan_ = owner_.PlanRound(range_, rng());
      RecordRound();
      Prepare();
      return;
    }

    plan_ = owner_.PlanRound(range_, rng());
    if (!plan_.terminal && !plan_.stalled) {
      state_ = EncodeEaState(range_, owner_.options_.state);
    }
    fallback_best_ = plan_.terminal
                         ? plan_.winner
                         : owner_.data_.TopIndex(range_.Centroid());
    RecordRound();
    Prepare();
  }

  void Cancel() override {
    if (finished_) return;
    // Prepare() already terminated every certificate/stall state, so the
    // session is mid-question: best-so-far, budget semantics.
    result_.best_index = fallback_best_;
    result_.termination = Termination::kBudgetExhausted;
    result_.seconds += watch_.ElapsedSeconds();
    scoring_pending_ = false;
    asking_ = false;
    finished_ = true;
  }

  bool Finished() const override { return finished_; }

  InteractionResult Finish() override {
    ISRL_CHECK(finished_);
    InteractionResult result = result_;
    result.converged = result.termination == Termination::kConverged;
    return result;
  }

  const Matrix* PendingCandidateFeatures() const override {
    return scoring_pending_ ? &pending_features_ : nullptr;
  }

  const nn::ModelSnapshot* ScoringModel() const override {
    return scoring_pending_ ? model_.get() : nullptr;
  }

  void PostCandidateScores(const double* scores, size_t count) override {
    ISRL_CHECK(scoring_pending_);
    ISRL_CHECK_EQ(count, pending_features_.rows());
    // First-max argmax, exactly Vec::ArgMax over a PredictBatch row — the
    // coalesced scores pick the same action the self-scoring path would.
    size_t pick = 0;
    for (size_t i = 1; i < count; ++i) {
      if (scores[i] > scores[pick]) pick = i;
    }
    TakePick(pick);
  }

  uint64_t ModelVersion() const override {
    return model_ == nullptr ? 0 : model_->version();
  }

  std::optional<Vec> HarvestUtility() const override {
    if (range_.IsEmpty()) return std::nullopt;
    return range_.Centroid();
  }

  // ---- Durability (DESIGN.md §14). ---------------------------------------

  /// Tag ctor for RestoreSession: builds an empty shell (no planning, no
  /// Rng draws) that Decode() then fills from snapshot bytes.
  struct RestoreTag {};
  Session(Ea& owner, InteractionTrace* trace, RestoreTag)
      : owner_(owner),
        trace_(trace),
        max_rounds_(0),
        owned_rng_(std::nullopt),
        range_(Polyhedron::UnitSimplex(owner.data_.dim())) {}

  Result<std::string> SaveState() const override {
    snapshot::Writer w;
    snapshot::SessionCore core;
    core.algorithm = owner_.name();
    core.data_size = owner_.data_.size();
    core.data_dim = owner_.data_.dim();
    core.result = result_;
    // Fold the live stopwatch into the persisted seconds; a fresh stopwatch
    // starts at restore, so snapshot downtime never counts as algorithm time.
    if (!finished_) core.result.seconds += watch_.ElapsedSeconds();
    core.max_rounds = max_rounds_;
    core.deadline = deadline_;
    core.stage = finished_ ? snapshot::kStageFinished
                           : (asking_ ? snapshot::kStageAsking
                                      : snapshot::kStageScoring);
    core.question = question_;
    core.has_rng = true;
    core.rng = rng();
    core.trace = trace_;  // figure vectors ride along (may be null)
    snapshot::EncodeSessionCore(core, &w);
    // Model identity, not model weights: the pinned snapshot's §14
    // fingerprint plus its registry version (0 = unregistered live model);
    // weights are persisted separately (nn/serialize, nn/registry).
    w.U64(model_->fingerprint());
    w.U64(model_->version());
    snapshot::EncodePolyhedron(range_, &w);
    w.Bool(plan_.terminal);
    w.Bool(plan_.stalled);
    w.U64(plan_.winner);
    w.U64(plan_.actions.size());
    for (const EaAction& a : plan_.actions) {
      w.U64(a.q.i);
      w.U64(a.q.j);
      w.F64(a.balance);
      w.F64(a.center_dist);
    }
    snapshot::EncodeVec(state_, &w);
    w.U64(fallback_best_);
    return snapshot::WrapFrame(kEaSnapshotKind, kEaSnapshotVersion, w.Take());
  }

  /// Fills the shell from an unwrapped payload; every failure leaves the
  /// shell unusable but the process unharmed (the caller discards it).
  Status Decode(const std::string& payload, const SessionConfig& config) {
    snapshot::Reader r(payload);
    snapshot::SessionCore core;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeSessionCore(&r, &core));
    ISRL_RETURN_IF_ERROR(snapshot::ValidateSessionCore(
        core, owner_.name(), owner_.data_.size(), owner_.data_.dim()));
    if (!core.has_rng) {
      return Status::InvalidArgument("EA snapshot: missing rng state");
    }
    const uint64_t fingerprint = r.U64();
    const uint64_t model_version = r.U64();
    // Re-pin the exact model the session was saved under: the restore-time
    // provider by version, else the caller's explicit pin, else this
    // instance's live model — always verified against the §14 fingerprint.
    std::shared_ptr<const nn::ModelSnapshot> model;
    if (!r.failed()) {
      if (config.models != nullptr) {
        model = config.models->Pin(model_version);
        if (model == nullptr && config.model == nullptr) {
          return Status::FailedPrecondition(Format(
              "EA snapshot is pinned to model version %llu, which the "
              "restore-time model provider does not serve",
              static_cast<unsigned long long>(model_version)));
        }
      }
      if (model == nullptr) model = config.model;
      if (model == nullptr) model = owner_.ServingModel();
      if (fingerprint != model->fingerprint()) {
        return Status::FailedPrecondition(Format(
            "EA snapshot is bound to Q-network %016llx but this instance "
            "serves %016llx (retrained or different model)",
            static_cast<unsigned long long>(fingerprint),
            static_cast<unsigned long long>(model->fingerprint())));
      }
    }
    Result<Polyhedron> range = snapshot::DecodePolyhedron(&r);
    ISRL_RETURN_IF_ERROR(range.status());
    const size_t n = owner_.data_.size();
    if (range->dim() != owner_.data_.dim()) {
      return Status::InvalidArgument(
          "EA snapshot: polyhedron dimension does not match the dataset");
    }
    RoundPlan plan;
    plan.terminal = r.Bool();
    plan.stalled = r.Bool();
    plan.winner = static_cast<size_t>(r.U64());
    const uint64_t num_actions = r.U64();
    if (!r.failed() && num_actions > snapshot::kMaxElements) {
      return Status::InvalidArgument("EA snapshot: implausible action count");
    }
    for (uint64_t i = 0; i < num_actions && !r.failed(); ++i) {
      EaAction a;
      a.q.i = static_cast<size_t>(r.U64());
      a.q.j = static_cast<size_t>(r.U64());
      a.balance = r.FiniteF64();
      a.center_dist = r.FiniteF64();
      if (!r.failed() && (a.q.i >= n || a.q.j >= n)) {
        return Status::InvalidArgument(
            "EA snapshot: action index out of dataset range");
      }
      plan.actions.push_back(a);
    }
    Vec state;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeVec(&r, &state));
    const uint64_t fallback = r.U64();
    ISRL_RETURN_IF_ERROR(r.status());
    if (!r.AtEnd()) {
      return Status::InvalidArgument("EA snapshot: trailing payload bytes");
    }
    if (plan.winner >= n || fallback >= n) {
      return Status::InvalidArgument(
          "EA snapshot: recommendation index out of dataset range");
    }
    const size_t expected_state_dim =
        owner_.input_dim_ - 3 * owner_.data_.dim() - Ea::kActionDescriptors;
    if (state.dim() != expected_state_dim) {
      return Status::InvalidArgument(
          "EA snapshot: state vector dimension mismatch");
    }
    if (core.stage == snapshot::kStageAsking &&
        (core.question.pair.i >= n || core.question.pair.j >= n)) {
      return Status::InvalidArgument(
          "EA snapshot: in-flight question index out of dataset range");
    }
    if (core.stage == snapshot::kStageScoring &&
        (plan.terminal || plan.stalled || plan.actions.empty())) {
      return Status::InvalidArgument(
          "EA snapshot: scoring stage without staged candidates");
    }

    result_ = core.result;
    model_ = std::move(model);
    max_rounds_ = static_cast<size_t>(core.max_rounds);
    deadline_ = core.deadline;
    owned_rng_ = core.rng;
    if (core.has_trace && trace_ != nullptr) {
      trace_->RestoreHistory(std::move(core.trace_max_regret),
                             std::move(core.trace_seconds),
                             std::move(core.trace_best_index));
    }
    range_ = std::move(range.value());
    plan_ = std::move(plan);
    state_ = std::move(state);
    fallback_best_ = static_cast<size_t>(fallback);
    question_ = core.question;
    finished_ = core.stage == snapshot::kStageFinished;
    asking_ = core.stage == snapshot::kStageAsking;
    scoring_pending_ = false;
    if (core.stage == snapshot::kStageScoring) {
      // FeaturizeCandidatesMatrix is a pure function of (state, actions), so
      // recomputing it reproduces the exact rows the saved session staged —
      // the greedy argmax (self-scored or coalesced) picks the same action.
      pending_features_ =
          owner_.FeaturizeCandidatesMatrix(state_, plan_.actions);
      scoring_pending_ = true;
    }
    watch_.Restart();
    return Status::Ok();
  }

 private:
  /// The top of the old blocking loop: evaluate the loop guard and the
  /// deadline, then stage the candidate features for scoring.
  void Prepare() {
    if (plan_.terminal || plan_.stalled || result_.rounds >= max_rounds_) {
      Terminate();
      return;
    }
    if (deadline_.Expired()) {
      Terminate();
      return;
    }
    pending_features_ =
        owner_.FeaturizeCandidatesMatrix(state_, plan_.actions);
    scoring_pending_ = true;
  }

  void TakePick(size_t pick) {
    const Question q = plan_.actions[pick].q;
    question_.first = owner_.data_.point(q.i);
    question_.second = owner_.data_.point(q.j);
    question_.pair = q;
    question_.synthetic = false;
    scoring_pending_ = false;
    asking_ = true;
  }

  void RecordRound() {
    if (trace_ == nullptr) return;
    const double elapsed = watch_.ElapsedSeconds();
    std::vector<Vec> consistent;
    if (!range_.IsEmpty()) {
      consistent.reserve(trace_->regret_samples());
      for (size_t s = 0; s < trace_->regret_samples(); ++s) {
        consistent.push_back(range_.SampleInterior(trace_->rng()));
      }
    }
    trace_->Record(fallback_best_, consistent, elapsed);
    watch_.Restart();  // exclude trace bookkeeping from algorithm time
    result_.seconds += elapsed;
  }

  void Terminate() {
    result_.best_index = plan_.terminal ? plan_.winner : fallback_best_;
    if (plan_.terminal) {
      result_.termination = result_.dropped_answers > 0
                                ? Termination::kDegraded
                                : Termination::kConverged;
    } else if (plan_.stalled) {
      result_.termination = Termination::kDegraded;
    } else {
      result_.termination = Termination::kBudgetExhausted;
    }
    result_.seconds += watch_.ElapsedSeconds();
    scoring_pending_ = false;
    asking_ = false;
    finished_ = true;
  }

  Rng& rng() { return owned_rng_ ? *owned_rng_ : owner_.rng_; }
  const Rng& rng() const { return owned_rng_ ? *owned_rng_ : owner_.rng_; }

  Ea& owner_;
  InteractionTrace* trace_;
  InteractionResult result_;
  Stopwatch watch_;
  size_t max_rounds_;
  Deadline deadline_;
  std::optional<Rng> owned_rng_;

  Polyhedron range_;
  RoundPlan plan_;
  Vec state_;
  size_t fallback_best_ = 0;

  /// The immutable model snapshot pinned at start (or re-pinned at
  /// restore); every score this session computes goes through it.
  std::shared_ptr<const nn::ModelSnapshot> model_;
  Matrix pending_features_;
  SessionQuestion question_;
  bool scoring_pending_ = false;
  bool asking_ = false;
  bool finished_ = false;
};

std::unique_ptr<InteractionSession> Ea::StartSession(
    const SessionConfig& config) {
  // Audit at the inference call site: a session served from a NaN-weighted
  // Q-network asks arbitrary questions yet terminates "normally". Check the
  // network the session will actually score through.
  if (audit::ShouldCheck(audit::Checker::kNnFinite)) {
    nn::Network& network = config.model != nullptr ? config.model->network()
                                                   : agent_.main_network();
    audit::Auditor().Record(audit::Checker::kNnFinite, "Ea.StartSession",
                            audit::CheckNetworkFinite(network, "main"));
  }
  return std::make_unique<Session>(*this, config);
}

Result<std::unique_ptr<InteractionSession>> Ea::RestoreSession(
    const std::string& bytes, const SessionConfig& config) {
  ISRL_ASSIGN_OR_RETURN(
      std::string payload,
      snapshot::UnwrapFrame(kEaSnapshotKind, kEaSnapshotVersion, bytes));
  auto session =
      std::make_unique<Session>(*this, config.trace, Session::RestoreTag{});
  ISRL_RETURN_IF_ERROR(session->Decode(payload, config));
  return std::unique_ptr<InteractionSession>(std::move(session));
}

Status Ea::SaveAgent(const std::string& path) {
  return nn::SaveNetwork(agent_.main_network(), path);
}

Status Ea::LoadAgent(const std::string& path) {
  ISRL_ASSIGN_OR_RETURN(nn::Network loaded, nn::LoadNetwork(path));
  std::vector<nn::ParamBlock> theirs = loaded.Params();
  std::vector<nn::ParamBlock> mine = agent_.main_network().Params();
  if (theirs.size() != mine.size()) {
    return Status::InvalidArgument("network architecture mismatch");
  }
  for (size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].values->size() != theirs[i].values->size()) {
      return Status::InvalidArgument("network layer shape mismatch");
    }
  }
  agent_.main_network().CopyParamsFrom(loaded);
  agent_.SyncTarget();
  live_model_.reset();  // weights changed; the next session re-snapshots
  return Status::Ok();
}

}  // namespace isrl
