#include "core/ea.h"

#include "nn/serialize.h"

#include <algorithm>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/stopwatch.h"
#include "core/terminal.h"
#include "geometry/halfspace.h"

namespace isrl {

Ea::Ea(const Dataset& data, const EaOptions& options)
    : data_(data),
      options_(options),
      rng_(options.seed),
      input_dim_(EaStateDim(data.dim(), options.state) + 3 * data.dim() +
                 kActionDescriptors),
      agent_(input_dim_, options.dqn, rng_) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GT(options.epsilon, 0.0);
  ISRL_CHECK_LT(options.epsilon, 1.0);
}

Ea::RoundPlan Ea::PlanRound(const Polyhedron& range) {
  RoundPlan plan;
  if (range.IsEmpty()) {
    // Callers keep R non-empty (TryCut); an empty R here is a numeric
    // degeneracy — stall instead of aborting.
    plan.stalled = true;
    return plan;
  }
  // Lemma 6 first: a single terminal polyhedron over the extreme vectors
  // certifies termination.
  if (IsTerminalRange(data_, range.vertices(), options_.epsilon,
                      &plan.winner)) {
    plan.terminal = true;
    return plan;
  }
  EaActionSpace space = BuildEaActionSpace(data_, range, options_.epsilon,
                                           options_.actions, rng_);
  if (space.actions.empty()) {
    if (space.winners.empty()) {
      // Degenerate data (no utility vector of V had a positive top score):
      // no certificate and no question can make progress.
      plan.stalled = true;
      return plan;
    }
    // A single winner covered all of V ⊇ E — also a valid terminal
    // certificate (coverage of every extreme vector implies coverage of R
    // by convexity); return that winner.
    plan.terminal = true;
    plan.winner = space.winners.front();
    return plan;
  }
  plan.actions = std::move(space.actions);
  return plan;
}

Vec Ea::FeaturizeAction(const EaAction& action) const {
  const Vec& pi = data_.point(action.q.i);
  const Vec& pj = data_.point(action.q.j);
  Vec f = pi;
  f.Append(pj);
  f.Append(pi - pj);
  // Geometric descriptors: the split-quality signals the policy ranks on.
  f.PushBack(action.balance);
  f.PushBack(action.center_dist);
  return f;
}

std::vector<Vec> Ea::FeaturizeCandidates(
    const Vec& state, const std::vector<EaAction>& actions) const {
  std::vector<Vec> out;
  out.reserve(actions.size());
  for (const EaAction& action : actions) {
    out.push_back(Concat(state, FeaturizeAction(action)));
  }
  return out;
}

Matrix Ea::FeaturizeCandidatesMatrix(
    const Vec& state, const std::vector<EaAction>& actions) const {
  Matrix m(actions.size(), input_dim_);
  for (size_t r = 0; r < actions.size(); ++r) {
    double* row = m.row(r);
    std::copy(state.raw(), state.raw() + state.dim(), row);
    const Vec f = FeaturizeAction(actions[r]);
    ISRL_CHECK_EQ(state.dim() + f.dim(), input_dim_);
    std::copy(f.raw(), f.raw() + f.dim(), row + state.dim());
  }
  return m;
}

TrainStats Ea::Train(const std::vector<Vec>& training_utilities) {
  TrainStats stats;
  stats.episodes = training_utilities.size();
  size_t total_rounds = 0;
  double last_loss = 0.0;

  for (const Vec& u : training_utilities) {
    const double epsilon_greedy = agent_.EpsilonAt(episodes_trained_);
    Polyhedron range = Polyhedron::UnitSimplex(data_.dim());
    RoundPlan plan = PlanRound(range);
    Vec state = EncodeEaState(range, options_.state);

    size_t rounds = 0;
    while (!plan.terminal && !plan.stalled && rounds < options_.max_rounds) {
      std::vector<Vec> features = FeaturizeCandidates(state, plan.actions);
      size_t pick = agent_.SelectEpsilonGreedy(features, epsilon_greedy, rng_);
      const Question q = plan.actions[pick].q;

      // Simulated answer (Algorithm 1 lines 9-12): prefer p_i iff
      // u·p_i ≥ u·p_j, then keep the matching half-space.
      const bool prefers_i = Dot(u, data_.point(q.i)) >= Dot(u, data_.point(q.j));
      const Vec& winner = data_.point(prefers_i ? q.i : q.j);
      const Vec& loser = data_.point(prefers_i ? q.j : q.i);
      range.Cut(PreferenceHalfspace(winner, loser));
      ++rounds;
      if (range.IsEmpty()) break;  // numeric degeneracy guard

      RoundPlan next_plan = PlanRound(range);
      Vec next_state = EncodeEaState(range, options_.state);

      const bool episode_over = next_plan.terminal || next_plan.stalled;
      rl::Transition t;
      t.state_action = std::move(features[pick]);
      t.terminal = episode_over;
      t.reward = episode_over
                     ? agent_.options().reward_constant
                     : -agent_.options().step_penalty;
      if (!episode_over) {
        t.next_candidates = FeaturizeCandidates(next_state, next_plan.actions);
      }
      agent_.Remember(std::move(t));
      for (size_t k = 0; k < options_.updates_per_round; ++k) {
        last_loss = agent_.Update(rng_);
      }

      plan = std::move(next_plan);
      state = std::move(next_state);
    }
    for (size_t k = 0; k < options_.updates_per_episode; ++k) {
      last_loss = agent_.Update(rng_);
    }
    total_rounds += rounds;
    ++episodes_trained_;
  }

  stats.mean_rounds = training_utilities.empty()
                          ? 0.0
                          : static_cast<double>(total_rounds) /
                                static_cast<double>(training_utilities.size());
  stats.final_loss = last_loss;
  return stats;
}

InteractionResult Ea::DoInteract(InteractionContext& ctx) {
  // Audit at the inference call site: a session served from a NaN-weighted
  // Q-network asks arbitrary questions yet terminates "normally".
  if (audit::ShouldCheck(audit::Checker::kNnFinite)) {
    audit::Auditor().Record(
        audit::Checker::kNnFinite, "Ea.DoInteract",
        audit::CheckNetworkFinite(agent_.main_network(), "main"));
  }
  InteractionResult result;
  Stopwatch watch;
  const size_t max_rounds = ctx.MaxRounds(options_.max_rounds);

  Polyhedron range = Polyhedron::UnitSimplex(data_.dim());
  RoundPlan plan = PlanRound(range);
  Vec state = EncodeEaState(range, options_.state);
  size_t fallback_best = data_.TopIndex(range.Centroid());
  bool deadline_hit = false;

  auto record_round = [&]() {
    if (ctx.trace == nullptr) return;
    const double elapsed = watch.ElapsedSeconds();
    std::vector<Vec> consistent;
    if (!range.IsEmpty()) {
      consistent.reserve(ctx.trace->regret_samples());
      for (size_t s = 0; s < ctx.trace->regret_samples(); ++s) {
        consistent.push_back(range.SampleInterior(ctx.trace->rng()));
      }
    }
    ctx.trace->Record(fallback_best, consistent, elapsed);
    watch.Restart();  // exclude trace bookkeeping from algorithm time
    result.seconds += elapsed;
  };

  while (!plan.terminal && !plan.stalled && result.rounds < max_rounds) {
    if (ctx.DeadlineExpired()) {
      deadline_hit = true;
      break;
    }
    // Batched action scoring: one GEMM over the row-stacked candidate pool
    // (bit-identical picks to the scalar per-candidate loop).
    size_t pick =
        agent_.SelectGreedy(FeaturizeCandidatesMatrix(state, plan.actions));
    const Question q = plan.actions[pick].q;

    const Answer answer = ctx.user.Ask(data_.point(q.i), data_.point(q.j));
    ++result.rounds;
    if (answer == Answer::kNoAnswer) {
      // Timed-out question: learn nothing, re-plan (the action sampler is
      // stochastic, so the next round asks a fresh set of questions).
      ++result.no_answers;
      plan = PlanRound(range);
      record_round();
      continue;
    }
    const bool prefers_i = answer == Answer::kFirst;
    const Vec& winner = data_.point(prefers_i ? q.i : q.j);
    const Vec& loser = data_.point(prefers_i ? q.j : q.i);
    if (!range.TryCut(PreferenceHalfspace(winner, loser))) {
      // The answer contradicts everything learned so far (inconsistent
      // noisy user): dropping the minimal most-recent suffix of conflicting
      // half-spaces — here exactly this one, since R was non-empty before —
      // keeps the session alive.
      ++result.dropped_answers;
      plan = PlanRound(range);
      record_round();
      continue;
    }

    plan = PlanRound(range);
    if (!plan.terminal && !plan.stalled) {
      state = EncodeEaState(range, options_.state);
    }
    fallback_best = plan.terminal ? plan.winner
                                  : data_.TopIndex(range.Centroid());
    record_round();
  }

  result.best_index = plan.terminal ? plan.winner : fallback_best;
  if (plan.terminal) {
    result.termination = result.dropped_answers > 0 ? Termination::kDegraded
                                                    : Termination::kConverged;
  } else if (plan.stalled) {
    result.termination = Termination::kDegraded;
  } else {
    result.termination = Termination::kBudgetExhausted;
    (void)deadline_hit;
  }
  result.seconds += watch.ElapsedSeconds();
  return result;
}


Status Ea::SaveAgent(const std::string& path) {
  return nn::SaveNetwork(agent_.main_network(), path);
}

Status Ea::LoadAgent(const std::string& path) {
  ISRL_ASSIGN_OR_RETURN(nn::Network loaded, nn::LoadNetwork(path));
  std::vector<nn::ParamBlock> theirs = loaded.Params();
  std::vector<nn::ParamBlock> mine = agent_.main_network().Params();
  if (theirs.size() != mine.size()) {
    return Status::InvalidArgument("network architecture mismatch");
  }
  for (size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].values->size() != theirs[i].values->size()) {
      return Status::InvalidArgument("network layer shape mismatch");
    }
  }
  agent_.main_network().CopyParamsFrom(loaded);
  agent_.SyncTarget();
  return Status::Ok();
}

}  // namespace isrl
