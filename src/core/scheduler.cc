#include "core/scheduler.h"

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/matrix.h"
#include "common/strings.h"
#include "common/vec.h"
#include "core/snapshot.h"
#include "nn/registry.h"

namespace isrl {

namespace {

constexpr const char* kPopulationKind = "scheduler-population";
constexpr uint32_t kPopulationVersion = 1;
constexpr const char* kStoreKind = "session-store";
constexpr uint32_t kStoreVersion = 1;
// Append-mode delta frame: WAL records logged after the leading full-store
// frame was written (SessionStore::SyncFile).
constexpr const char* kStoreWalKind = "session-store-wal";
constexpr uint32_t kStoreWalVersion = 1;

// Per-slot markers inside a population snapshot.
constexpr uint8_t kSlotLive = 0;     // algorithm name + session bytes follow
constexpr uint8_t kSlotTaken = 1;    // result already handed out; no payload
constexpr uint8_t kSlotAborted = 2;  // status code + message follow

/// Stand-in for a session whose snapshot could not be reopened: already
/// finished, and Finish() reports Termination::kAborted with the cause. The
/// scheduler keeps serving every other slot (DESIGN.md §14), and a
/// re-checkpoint of the degraded population carries the status forward.
class AbortedSession final : public InteractionSession {
 public:
  explicit AbortedSession(Status cause) {
    result_.termination = Termination::kAborted;
    result_.status = std::move(cause);
  }

  std::optional<SessionQuestion> NextQuestion() override {
    return std::nullopt;
  }
  void PostAnswer(Answer /*answer*/) override {}  // stale WAL records land here
  void Cancel() override {}
  bool Finished() const override { return true; }
  InteractionResult Finish() override { return result_; }

 private:
  InteractionResult result_;
};

}  // namespace

SessionScheduler::SessionId SessionScheduler::Add(
    std::unique_ptr<InteractionSession> session) {
  ISRL_CHECK(session != nullptr);
  Slot slot;
  slot.session = std::move(session);
  // A session can terminate inside StartSession (infeasible geometry, zero
  // budget); it then never becomes runnable.
  slot.state = slot.session->Finished() ? SlotState::kFinished
                                        : SlotState::kRunnable;
  if (slot.state == SlotState::kRunnable) ++active_;
  slots_.push_back(std::move(slot));
  const SessionId id = slots_.size() - 1;
  if (slots_[id].state == SlotState::kFinished) EmitHarvest(id);
  return id;
}

SessionScheduler::SessionId SessionScheduler::Add(
    std::unique_ptr<InteractionSession> session,
    InteractiveAlgorithm* algorithm) {
  ISRL_CHECK(algorithm != nullptr);
  SessionId id = Add(std::move(session));
  slots_[id].algorithm = algorithm;
  return id;
}

Result<std::string> SessionScheduler::CheckpointAll() const {
  snapshot::Writer w;
  w.U64(slots_.size());
  for (size_t id = 0; id < slots_.size(); ++id) {
    const Slot& slot = slots_[id];
    if (slot.state == SlotState::kTaken) {
      w.U8(kSlotTaken);
      continue;
    }
    if (!slot.abort_status.ok()) {
      // A slot that already degraded at a previous restore: keep the cause
      // so a restore-of-the-restore still reports it.
      w.U8(kSlotAborted);
      w.U8(static_cast<uint8_t>(slot.abort_status.code()));
      w.Str(slot.abort_status.message());
      continue;
    }
    if (slot.algorithm == nullptr) {
      return Status::FailedPrecondition(Format(
          "checkpoint: session %zu was added without its algorithm "
          "(use Add(session, algorithm) for durable populations)",
          id));
    }
    ISRL_ASSIGN_OR_RETURN(std::string bytes, slot.session->SaveState());
    w.U8(kSlotLive);
    w.Str(slot.algorithm->name());
    w.Str(bytes);
  }
  return snapshot::WrapFrame(kPopulationKind, kPopulationVersion, w.bytes());
}

Result<SessionScheduler> SessionScheduler::RestoreAll(
    const std::string& bytes, const AlgorithmResolver& resolver,
    nn::ModelProvider* models) {
  ISRL_ASSIGN_OR_RETURN(
      std::string payload,
      snapshot::UnwrapFrame(kPopulationKind, kPopulationVersion, bytes));
  snapshot::Reader r(payload);
  uint64_t count = r.U64();
  if (count > snapshot::kMaxElements) {
    r.Fail("implausible slot count");
  }
  SessionScheduler scheduler;
  for (uint64_t id = 0; !r.failed() && id < count; ++id) {
    uint8_t marker = r.U8();
    Slot slot;
    switch (marker) {
      case kSlotTaken:
        slot.state = SlotState::kTaken;
        break;
      case kSlotAborted: {
        uint8_t code = r.U8();
        std::string message = r.Str();
        if (code == static_cast<uint8_t>(StatusCode::kOk) ||
            code > static_cast<uint8_t>(StatusCode::kUnbounded)) {
          r.Fail("bad aborted-slot status code");
          break;
        }
        slot.abort_status = Status(static_cast<StatusCode>(code),
                                   std::move(message));
        slot.session = std::make_unique<AbortedSession>(slot.abort_status);
        slot.state = SlotState::kFinished;
        break;
      }
      case kSlotLive: {
        std::string name = r.Str();
        std::string session_bytes = r.Str();
        if (r.failed()) break;
        // Per-slot failures degrade just this slot; the frame itself is
        // fine, so the rest of the population still restores.
        Status cause = Status::Ok();
        InteractiveAlgorithm* algorithm = resolver ? resolver(name) : nullptr;
        if (algorithm == nullptr) {
          cause = Status::NotFound(Format(
              "restore: no algorithm registered for '%s'", name.c_str()));
        } else {
          SessionConfig restore_config;
          restore_config.models = models;
          Result<std::unique_ptr<InteractionSession>> session =
              algorithm->RestoreSession(session_bytes, restore_config);
          if (session.ok()) {
            slot.session = std::move(*session);
            slot.algorithm = algorithm;
            slot.state = slot.session->Finished() ? SlotState::kFinished
                                                  : SlotState::kRunnable;
          } else {
            cause = session.status();
          }
        }
        if (!cause.ok()) {
          slot.abort_status = std::move(cause);
          slot.session = std::make_unique<AbortedSession>(slot.abort_status);
          slot.state = SlotState::kFinished;
        }
        break;
      }
      default:
        r.Fail("bad slot marker");
        break;
    }
    if (r.failed()) break;
    if (slot.state == SlotState::kRunnable) ++scheduler.active_;
    scheduler.slots_.push_back(std::move(slot));
  }
  ISRL_RETURN_IF_ERROR(r.status());
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "snapshot payload: trailing bytes after population");
  }
  return scheduler;
}

// Reached cross-thread only under the owning shard's exec_mu capability
// (serve/sharding.h); no internal locking by design — see the class comment.
std::vector<PendingQuestion> SessionScheduler::Tick() {
  // Coalesced scoring pass: group the pending feature rows of all runnable
  // sessions by pinned model snapshot, in first-seen session order. Group
  // layout and batch size never affect a row's scores (batched scoring is
  // bit-identical per row), so this is purely a throughput optimisation —
  // and after a hot-swap, sessions pinning different registry versions
  // simply land in different groups (DESIGN.md §18).
  struct Group {
    const nn::ModelSnapshot* model;
    std::vector<double> rows;                        // row-major stack
    size_t cols = 0;
    std::vector<std::pair<size_t, size_t>> members;  // (session id, row count)
  };
  std::vector<Group> groups;
  for (size_t id = 0; id < slots_.size(); ++id) {
    Slot& slot = slots_[id];
    if (slot.state != SlotState::kRunnable) continue;
    const Matrix* features = slot.session->PendingCandidateFeatures();
    const nn::ModelSnapshot* model = slot.session->ScoringModel();
    if (features == nullptr || model == nullptr || features->rows() == 0) {
      continue;  // session scores itself (or has nothing to score)
    }
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.model == model) { group = &g; break; }
    }
    if (group == nullptr) {
      groups.push_back(Group{model, {}, features->cols(), {}});
      group = &groups.back();
    }
    ISRL_CHECK_EQ(group->cols, features->cols());
    const double* flat = features->row(0);
    group->rows.insert(group->rows.end(), flat,
                       flat + features->rows() * features->cols());
    group->members.emplace_back(id, features->rows());
  }
  for (Group& group : groups) {
    const size_t total = group.rows.size() / group.cols;
    Matrix batch(total, group.cols, std::move(group.rows));
    Vec scores = group.model->Score(batch);
    size_t offset = 0;
    for (const auto& [id, count] : group.members) {
      slots_[id].session->PostCandidateScores(&scores[offset], count);
      offset += count;
    }
  }

  // Question pass: collect every runnable session's next question, in id
  // order so any session-shared state (unseeded sessions, trace Rngs) is
  // consumed in a reproducible order. Slots already awaiting an answer
  // re-emit their in-flight question (NextQuestion is idempotent): after a
  // crash recovery replays a partial tick, the preempted questions must
  // reach a user again or their sessions would stay active forever.
  std::vector<PendingQuestion> questions;
  for (size_t id = 0; id < slots_.size(); ++id) {
    Slot& slot = slots_[id];
    if (slot.state != SlotState::kRunnable &&
        slot.state != SlotState::kAwaitingAnswer) {
      continue;
    }
    std::optional<SessionQuestion> question = slot.session->NextQuestion();
    if (question.has_value()) {
      slot.state = SlotState::kAwaitingAnswer;
      questions.push_back(PendingQuestion{id, std::move(*question)});
    } else {
      slot.state = SlotState::kFinished;
      --active_;
      EmitHarvest(id);
    }
  }
  return questions;
}

void SessionScheduler::EmitHarvest(SessionId id) {
  if (!harvest_) return;
  Slot& slot = slots_[id];
  if (slot.session == nullptr) return;
  // Finish() is idempotent on a finished session; Take/TryTake can still
  // hand the result out later.
  const InteractionResult result = slot.session->Finish();
  SessionTraceRecord record;
  record.model_version = slot.session->ModelVersion();
  record.rounds = result.rounds;
  record.termination = result.termination;
  std::optional<Vec> utility = slot.session->HarvestUtility();
  if (utility.has_value()) {
    record.has_utility = true;
    record.utility = std::move(*utility);
  }
  harvest_(id, record);
}

void SessionScheduler::PostAnswer(SessionId id, Answer answer) {
  Status posted = TryPostAnswer(id, answer);
  if (!posted.ok()) {
    std::fprintf(stderr, "PostAnswer: %s\n", posted.ToString().c_str());
  }
  ISRL_CHECK(posted.ok());
}

Status SessionScheduler::TryPostAnswer(SessionId id, Answer answer) {
  if (id >= slots_.size()) {
    return Status::NotFound(Format("no session %zu (population of %zu)", id,
                                   slots_.size()));
  }
  Slot& slot = slots_[id];
  switch (slot.state) {
    case SlotState::kAwaitingAnswer:
      break;
    case SlotState::kRunnable:
      return Status::FailedPrecondition(Format(
          "session %zu has no outstanding question (already answered this "
          "round?)",
          id));
    case SlotState::kFinished:
      return Status::FailedPrecondition(
          Format("session %zu has already finished", id));
    case SlotState::kTaken:
      return Status::FailedPrecondition(
          Format("session %zu's result was already taken", id));
  }
  slot.session->PostAnswer(answer);
  slot.state = SlotState::kRunnable;
  return Status::Ok();
}

void SessionScheduler::Cancel(SessionId id) {
  ISRL_CHECK_LT(id, slots_.size());
  Status cancelled = TryCancel(id);
  ISRL_CHECK(cancelled.ok());
}

Status SessionScheduler::TryCancel(SessionId id) {
  if (id >= slots_.size()) {
    return Status::NotFound(Format("no session %zu (population of %zu)", id,
                                   slots_.size()));
  }
  Slot& slot = slots_[id];
  if (slot.state == SlotState::kFinished || slot.state == SlotState::kTaken) {
    return Status::Ok();  // idempotent no-op, matching Cancel()
  }
  slot.session->Cancel();
  slot.state = SlotState::kFinished;
  --active_;
  EmitHarvest(id);
  return Status::Ok();
}

bool SessionScheduler::finished(SessionId id) const {
  ISRL_CHECK_LT(id, slots_.size());
  return slots_[id].state == SlotState::kFinished;
}

bool SessionScheduler::awaiting(SessionId id) const {
  ISRL_CHECK_LT(id, slots_.size());
  return slots_[id].state == SlotState::kAwaitingAnswer;
}

bool SessionScheduler::taken(SessionId id) const {
  ISRL_CHECK_LT(id, slots_.size());
  return slots_[id].state == SlotState::kTaken;
}

InteractionResult SessionScheduler::Take(SessionId id) {
  Result<InteractionResult> result = TryTake(id);
  if (!result.ok()) {
    std::fprintf(stderr, "Take: %s\n", result.status().ToString().c_str());
  }
  ISRL_CHECK(result.ok());
  return std::move(*result);
}

Result<InteractionResult> SessionScheduler::TryTake(SessionId id) {
  if (id >= slots_.size()) {
    return Status::NotFound(Format("no session %zu (population of %zu)", id,
                                   slots_.size()));
  }
  Slot& slot = slots_[id];
  if (slot.state == SlotState::kTaken) {
    return Status::FailedPrecondition(
        Format("session %zu's result was already taken", id));
  }
  if (slot.state != SlotState::kFinished) {
    return Status::FailedPrecondition(
        Format("session %zu has not finished", id));
  }
  InteractionResult result = slot.session->Finish();
  result.converged = result.termination == Termination::kConverged;
  slot.state = SlotState::kTaken;
  slot.session.reset();
  return result;
}

std::vector<InteractionResult> DriveWithUsers(
    SessionScheduler& scheduler, const std::vector<UserOracle*>& users) {
  ISRL_CHECK_EQ(users.size(), scheduler.size());
  while (scheduler.active() > 0) {
    for (const PendingQuestion& pq : scheduler.Tick()) {
      scheduler.PostAnswer(
          pq.session_id,
          users[pq.session_id]->Ask(pq.question.first, pq.question.second));
    }
  }
  std::vector<InteractionResult> results;
  results.reserve(scheduler.size());
  for (size_t id = 0; id < scheduler.size(); ++id) {
    results.push_back(scheduler.Take(id));
  }
  return results;
}

namespace {

/// Appends one WAL record to a Writer (shared by the full-store payload and
/// the append-mode delta frames).
void EncodeWalRecord(const WalRecord& record, snapshot::Writer* w) {
  w->U64(record.session_id);
  w->U8(record.kind);
  w->U8(static_cast<uint8_t>(record.answer));
}

/// Reads one WAL record; fails the reader on malformed kind/answer values.
WalRecord DecodeWalRecord(snapshot::Reader* r) {
  WalRecord record;
  record.session_id = r->U64();
  record.kind = r->U8();
  uint8_t answer = r->U8();
  if (r->failed()) return record;
  if (record.kind > WalRecord::kCancel) {
    r->Fail("bad WAL record kind");
    return record;
  }
  if (answer > static_cast<uint8_t>(Answer::kNoAnswer)) {
    r->Fail("bad WAL answer value");
    return record;
  }
  record.answer = static_cast<Answer>(answer);
  return record;
}

/// Parses the records of one append-mode delta frame into `out`. Returns
/// non-OK (and leaves `out` untouched) on any malformed byte, so a torn
/// append never contributes partial records.
Status DecodeWalDelta(const std::string& payload,
                      std::vector<WalRecord>* out) {
  snapshot::Reader r(payload);
  uint64_t count = r.U64();
  if (count > snapshot::kMaxElements) r.Fail("implausible WAL delta length");
  std::vector<WalRecord> records;
  for (uint64_t i = 0; !r.failed() && i < count; ++i) {
    records.push_back(DecodeWalRecord(&r));
  }
  ISRL_RETURN_IF_ERROR(r.status());
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "snapshot payload: trailing bytes after WAL delta");
  }
  out->insert(out->end(), records.begin(), records.end());
  return Status::Ok();
}

}  // namespace

void SessionStore::BeginEpoch(std::string population_snapshot) {
  population_ = std::move(population_snapshot);
  wal_.clear();
  epoch_synced_ = false;
  synced_wal_ = 0;
}

void SessionStore::LogAnswer(size_t session_id, Answer answer) {
  wal_.push_back(WalRecord{session_id, WalRecord::kAnswer, answer});
}

void SessionStore::LogCancel(size_t session_id) {
  wal_.push_back(WalRecord{session_id, WalRecord::kCancel, Answer::kFirst});
}

std::string SessionStore::Serialize() const {
  snapshot::Writer w;
  w.Str(population_);
  w.U64(wal_.size());
  for (const WalRecord& record : wal_) {
    EncodeWalRecord(record, &w);
  }
  return snapshot::WrapFrame(kStoreKind, kStoreVersion, w.bytes());
}

Result<SessionStore> SessionStore::Deserialize(const std::string& bytes) {
  ISRL_ASSIGN_OR_RETURN(
      std::string payload,
      snapshot::UnwrapFrame(kStoreKind, kStoreVersion, bytes));
  snapshot::Reader r(payload);
  SessionStore store;
  store.population_ = r.Str();
  uint64_t count = r.U64();
  if (count > snapshot::kMaxElements) r.Fail("implausible WAL length");
  for (uint64_t i = 0; !r.failed() && i < count; ++i) {
    store.wal_.push_back(DecodeWalRecord(&r));
  }
  ISRL_RETURN_IF_ERROR(r.status());
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "snapshot payload: trailing bytes after WAL");
  }
  return store;
}

Status SessionStore::SaveFile(const std::string& path) const {
  return snapshot::WriteFileBytes(path, Serialize());
}

Status SessionStore::SyncFile(const std::string& path) {
  if (!epoch_synced_) {
    // First sync of this epoch: atomically replace the file with the full
    // store. Everything logged so far is baked into this frame.
    ISRL_RETURN_IF_ERROR(snapshot::WriteFileBytes(path, Serialize()));
    epoch_synced_ = true;
    synced_wal_ = wal_.size();
    return Status::Ok();
  }
  if (synced_wal_ > wal_.size()) {
    return Status::Internal(
        "session store sync cursor ahead of the WAL (store was mutated "
        "behind SyncFile's back)");
  }
  if (synced_wal_ == wal_.size()) return Status::Ok();
  snapshot::Writer w;
  w.U64(wal_.size() - synced_wal_);
  for (size_t i = synced_wal_; i < wal_.size(); ++i) {
    EncodeWalRecord(wal_[i], &w);
  }
  ISRL_RETURN_IF_ERROR(snapshot::AppendFileBytes(
      path, snapshot::WrapFrame(kStoreWalKind, kStoreWalVersion, w.bytes())));
  synced_wal_ = wal_.size();
  return Status::Ok();
}

Result<SessionStore> SessionStore::LoadFile(const std::string& path) {
  ISRL_ASSIGN_OR_RETURN(std::string bytes, snapshot::ReadFileBytes(path));
  // The leading frame must be a complete full-store frame (SaveFile and
  // SyncFile both write it atomically, so a crash cannot tear it — if it is
  // unreadable the file is corrupt, not torn).
  size_t pos = 0;
  std::string kind;
  uint32_t version = 0;
  std::string payload;
  ISRL_RETURN_IF_ERROR(
      snapshot::ReadFrameAt(bytes, &pos, &kind, &version, &payload));
  if (kind != kStoreKind) {
    return Status::InvalidArgument(Format(
        "session store file: leading frame is a '%s', expected '%s'",
        kind.c_str(), kStoreKind));
  }
  if (version != kStoreVersion) {
    return Status::InvalidArgument(Format(
        "session store file: version skew (%u, this build reads %u)",
        version, kStoreVersion));
  }
  ISRL_ASSIGN_OR_RETURN(
      SessionStore store,
      Deserialize(snapshot::WrapFrame(kStoreKind, kStoreVersion, payload)));
  // Delta frames appended by SyncFile. A torn or corrupted tail is the
  // expected remains of a crash mid-append: recovery proceeds from the last
  // complete frame (the discarded answers were never applied durably — the
  // write-ahead contract re-asks those questions instead).
  bool clean_tail = true;
  while (pos < bytes.size()) {
    std::string delta_kind;
    uint32_t delta_version = 0;
    std::string delta_payload;
    Status frame = snapshot::ReadFrameAt(bytes, &pos, &delta_kind,
                                         &delta_version, &delta_payload);
    if (!frame.ok()) {
      clean_tail = false;
      break;
    }
    if (delta_kind != kStoreWalKind || delta_version != kStoreWalVersion) {
      clean_tail = false;  // foreign bytes: stop at the last good frame
      break;
    }
    if (!DecodeWalDelta(delta_payload, &store.wal_).ok()) {
      clean_tail = false;
      break;
    }
  }
  // With a clean tail the loaded state is exactly what is on disk, so
  // further SyncFile calls against the same path may append in place. A
  // torn tail must not be appended after (the reader would stop at the torn
  // frame), so the next SyncFile does a full atomic rewrite instead.
  store.epoch_synced_ = clean_tail;
  store.synced_wal_ = clean_tail ? store.wal_.size() : 0;
  return store;
}

Result<SessionScheduler> RecoverScheduler(const SessionStore& store,
                                          const AlgorithmResolver& resolver,
                                          nn::ModelProvider* models) {
  ISRL_ASSIGN_OR_RETURN(
      SessionScheduler scheduler,
      SessionScheduler::RestoreAll(store.population(), resolver, models));
  // Replay the WAL on top of the snapshot. Answers were logged in delivery
  // order, and within one original Tick each session answers at most once —
  // so whenever the next record's target is runnable (not yet asked), ALL
  // answers of the previous tick have been replayed and one scheduler.Tick()
  // re-reaches exactly the original tick boundary. NextQuestion() is
  // idempotent and sessions restore bit-identically, so the replayed
  // questions equal the asked-and-logged ones.
  for (size_t i = 0; i < store.wal().size(); ++i) {
    const WalRecord& record = store.wal()[i];
    if (record.session_id >= scheduler.size()) {
      return Status::InvalidArgument(
          Format("recover: WAL record %zu targets unknown session %zu", i,
                 record.session_id));
    }
    if (scheduler.finished(record.session_id)) {
      // Degraded (aborted) or already-terminated slot: the record is stale;
      // absorbing it keeps one bad slot from blocking population recovery.
      continue;
    }
    if (record.kind == WalRecord::kCancel) {
      ISRL_RETURN_IF_ERROR(scheduler.TryCancel(record.session_id));
      continue;
    }
    if (!scheduler.awaiting(record.session_id)) {
      (void)scheduler.Tick();  // advance to the tick this record came from
    }
    if (scheduler.finished(record.session_id)) continue;  // terminated instead
    Status posted = scheduler.TryPostAnswer(record.session_id, record.answer);
    if (!posted.ok()) {
      // A record a healthy session cannot accept means the log and snapshot
      // do not belong together; surface it instead of crashing the process.
      return Status::FailedPrecondition(
          Format("recover: WAL record %zu out of sync — %s (log and "
                 "snapshot do not match)",
                 i, posted.message().c_str()));
    }
  }
  return scheduler;
}

Result<DurableDriveOutcome> DriveWithUsersDurable(
    SessionScheduler& scheduler, const std::vector<UserOracle*>& users,
    SessionStore& store, size_t checkpoint_every_ticks, CrashPoint crash) {
  ISRL_CHECK_EQ(users.size(), scheduler.size());
  ISRL_ASSIGN_OR_RETURN(std::string snapshot, scheduler.CheckpointAll());
  store.BeginEpoch(std::move(snapshot));
  DurableDriveOutcome outcome;
  size_t answers = 0;
  size_t ticks = 0;
  while (scheduler.active() > 0) {
    for (const PendingQuestion& pq : scheduler.Tick()) {
      if (answers == crash.after_answers) {
        // Simulated crash BEFORE the Ask: the user for this (and every
        // later) question never consumes an Rng draw, so recovery resumes
        // with user fault streams exactly where the log left them.
        outcome.crashed = true;
        return outcome;
      }
      Answer answer =
          users[pq.session_id]->Ask(pq.question.first, pq.question.second);
      store.LogAnswer(pq.session_id, answer);  // write-ahead
      scheduler.PostAnswer(pq.session_id, answer);
      ++answers;
    }
    ++ticks;
    if (checkpoint_every_ticks > 0 && ticks % checkpoint_every_ticks == 0 &&
        scheduler.active() > 0) {
      ISRL_ASSIGN_OR_RETURN(std::string fresh, scheduler.CheckpointAll());
      store.BeginEpoch(std::move(fresh));
    }
  }
  outcome.results.reserve(scheduler.size());
  for (size_t id = 0; id < scheduler.size(); ++id) {
    outcome.results.push_back(scheduler.Take(id));
  }
  return outcome;
}

}  // namespace isrl
