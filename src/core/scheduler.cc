#include "core/scheduler.h"

#include <utility>

#include "common/check.h"
#include "common/matrix.h"
#include "common/vec.h"
#include "nn/network.h"

namespace isrl {

SessionScheduler::SessionId SessionScheduler::Add(
    std::unique_ptr<InteractionSession> session) {
  ISRL_CHECK(session != nullptr);
  Slot slot;
  slot.session = std::move(session);
  // A session can terminate inside StartSession (infeasible geometry, zero
  // budget); it then never becomes runnable.
  slot.state = slot.session->Finished() ? SlotState::kFinished
                                        : SlotState::kRunnable;
  if (slot.state == SlotState::kRunnable) ++active_;
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

std::vector<PendingQuestion> SessionScheduler::Tick() {
  // Coalesced scoring pass: group the pending feature rows of all runnable
  // sessions by scoring network, in first-seen session order. Group layout
  // and batch size never affect a row's scores (PredictBatch is
  // bit-identical per row), so this is purely a throughput optimisation.
  struct Group {
    nn::Network* network;
    std::vector<double> rows;                        // row-major stack
    size_t cols = 0;
    std::vector<std::pair<size_t, size_t>> members;  // (session id, row count)
  };
  std::vector<Group> groups;
  for (size_t id = 0; id < slots_.size(); ++id) {
    Slot& slot = slots_[id];
    if (slot.state != SlotState::kRunnable) continue;
    const Matrix* features = slot.session->PendingCandidateFeatures();
    nn::Network* network = slot.session->ScoringNetwork();
    if (features == nullptr || network == nullptr || features->rows() == 0) {
      continue;  // session scores itself (or has nothing to score)
    }
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.network == network) { group = &g; break; }
    }
    if (group == nullptr) {
      groups.push_back(Group{network, {}, features->cols(), {}});
      group = &groups.back();
    }
    ISRL_CHECK_EQ(group->cols, features->cols());
    const double* flat = features->row(0);
    group->rows.insert(group->rows.end(), flat,
                       flat + features->rows() * features->cols());
    group->members.emplace_back(id, features->rows());
  }
  for (Group& group : groups) {
    const size_t total = group.rows.size() / group.cols;
    Matrix batch(total, group.cols, std::move(group.rows));
    Vec scores = group.network->PredictBatch(batch);
    size_t offset = 0;
    for (const auto& [id, count] : group.members) {
      slots_[id].session->PostCandidateScores(&scores[offset], count);
      offset += count;
    }
  }

  // Question pass: collect every runnable session's next question, in id
  // order so any session-shared state (unseeded sessions, trace Rngs) is
  // consumed in a reproducible order.
  std::vector<PendingQuestion> questions;
  for (size_t id = 0; id < slots_.size(); ++id) {
    Slot& slot = slots_[id];
    if (slot.state != SlotState::kRunnable) continue;
    std::optional<SessionQuestion> question = slot.session->NextQuestion();
    if (question.has_value()) {
      slot.state = SlotState::kAwaitingAnswer;
      questions.push_back(PendingQuestion{id, std::move(*question)});
    } else {
      slot.state = SlotState::kFinished;
      --active_;
    }
  }
  return questions;
}

void SessionScheduler::PostAnswer(SessionId id, Answer answer) {
  ISRL_CHECK_LT(id, slots_.size());
  Slot& slot = slots_[id];
  ISRL_CHECK(slot.state == SlotState::kAwaitingAnswer);
  slot.session->PostAnswer(answer);
  slot.state = SlotState::kRunnable;
}

void SessionScheduler::Cancel(SessionId id) {
  ISRL_CHECK_LT(id, slots_.size());
  Slot& slot = slots_[id];
  if (slot.state == SlotState::kFinished || slot.state == SlotState::kTaken) {
    return;
  }
  slot.session->Cancel();
  slot.state = SlotState::kFinished;
  --active_;
}

bool SessionScheduler::finished(SessionId id) const {
  ISRL_CHECK_LT(id, slots_.size());
  return slots_[id].state == SlotState::kFinished;
}

InteractionResult SessionScheduler::Take(SessionId id) {
  ISRL_CHECK_LT(id, slots_.size());
  Slot& slot = slots_[id];
  ISRL_CHECK(slot.state == SlotState::kFinished);
  InteractionResult result = slot.session->Finish();
  result.converged = result.termination == Termination::kConverged;
  slot.state = SlotState::kTaken;
  slot.session.reset();
  return result;
}

std::vector<InteractionResult> DriveWithUsers(
    SessionScheduler& scheduler, const std::vector<UserOracle*>& users) {
  ISRL_CHECK_EQ(users.size(), scheduler.size());
  while (scheduler.active() > 0) {
    for (const PendingQuestion& pq : scheduler.Tick()) {
      scheduler.PostAnswer(
          pq.session_id,
          users[pq.session_id]->Ask(pq.question.first, pq.question.second));
    }
  }
  std::vector<InteractionResult> results;
  results.reserve(scheduler.size());
  for (size_t id = 0; id < scheduler.size(); ++id) {
    results.push_back(scheduler.Take(id));
  }
  return results;
}

}  // namespace isrl
