#include "core/scheduler.h"

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/matrix.h"
#include "common/strings.h"
#include "common/vec.h"
#include "core/snapshot.h"
#include "nn/network.h"

namespace isrl {

namespace {

constexpr const char* kPopulationKind = "scheduler-population";
constexpr uint32_t kPopulationVersion = 1;
constexpr const char* kStoreKind = "session-store";
constexpr uint32_t kStoreVersion = 1;

// Per-slot markers inside a population snapshot.
constexpr uint8_t kSlotLive = 0;     // algorithm name + session bytes follow
constexpr uint8_t kSlotTaken = 1;    // result already handed out; no payload
constexpr uint8_t kSlotAborted = 2;  // status code + message follow

/// Stand-in for a session whose snapshot could not be reopened: already
/// finished, and Finish() reports Termination::kAborted with the cause. The
/// scheduler keeps serving every other slot (DESIGN.md §14), and a
/// re-checkpoint of the degraded population carries the status forward.
class AbortedSession final : public InteractionSession {
 public:
  explicit AbortedSession(Status cause) {
    result_.termination = Termination::kAborted;
    result_.status = std::move(cause);
  }

  std::optional<SessionQuestion> NextQuestion() override {
    return std::nullopt;
  }
  void PostAnswer(Answer /*answer*/) override {}  // stale WAL records land here
  void Cancel() override {}
  bool Finished() const override { return true; }
  InteractionResult Finish() override { return result_; }

 private:
  InteractionResult result_;
};

}  // namespace

SessionScheduler::SessionId SessionScheduler::Add(
    std::unique_ptr<InteractionSession> session) {
  ISRL_CHECK(session != nullptr);
  Slot slot;
  slot.session = std::move(session);
  // A session can terminate inside StartSession (infeasible geometry, zero
  // budget); it then never becomes runnable.
  slot.state = slot.session->Finished() ? SlotState::kFinished
                                        : SlotState::kRunnable;
  if (slot.state == SlotState::kRunnable) ++active_;
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

SessionScheduler::SessionId SessionScheduler::Add(
    std::unique_ptr<InteractionSession> session,
    InteractiveAlgorithm* algorithm) {
  ISRL_CHECK(algorithm != nullptr);
  SessionId id = Add(std::move(session));
  slots_[id].algorithm = algorithm;
  return id;
}

Result<std::string> SessionScheduler::CheckpointAll() const {
  snapshot::Writer w;
  w.U64(slots_.size());
  for (size_t id = 0; id < slots_.size(); ++id) {
    const Slot& slot = slots_[id];
    if (slot.state == SlotState::kTaken) {
      w.U8(kSlotTaken);
      continue;
    }
    if (!slot.abort_status.ok()) {
      // A slot that already degraded at a previous restore: keep the cause
      // so a restore-of-the-restore still reports it.
      w.U8(kSlotAborted);
      w.U8(static_cast<uint8_t>(slot.abort_status.code()));
      w.Str(slot.abort_status.message());
      continue;
    }
    if (slot.algorithm == nullptr) {
      return Status::FailedPrecondition(Format(
          "checkpoint: session %zu was added without its algorithm "
          "(use Add(session, algorithm) for durable populations)",
          id));
    }
    ISRL_ASSIGN_OR_RETURN(std::string bytes, slot.session->SaveState());
    w.U8(kSlotLive);
    w.Str(slot.algorithm->name());
    w.Str(bytes);
  }
  return snapshot::WrapFrame(kPopulationKind, kPopulationVersion, w.bytes());
}

Result<SessionScheduler> SessionScheduler::RestoreAll(
    const std::string& bytes, const AlgorithmResolver& resolver) {
  ISRL_ASSIGN_OR_RETURN(
      std::string payload,
      snapshot::UnwrapFrame(kPopulationKind, kPopulationVersion, bytes));
  snapshot::Reader r(payload);
  uint64_t count = r.U64();
  if (count > snapshot::kMaxElements) {
    r.Fail("implausible slot count");
  }
  SessionScheduler scheduler;
  for (uint64_t id = 0; !r.failed() && id < count; ++id) {
    uint8_t marker = r.U8();
    Slot slot;
    switch (marker) {
      case kSlotTaken:
        slot.state = SlotState::kTaken;
        break;
      case kSlotAborted: {
        uint8_t code = r.U8();
        std::string message = r.Str();
        if (code == static_cast<uint8_t>(StatusCode::kOk) ||
            code > static_cast<uint8_t>(StatusCode::kUnbounded)) {
          r.Fail("bad aborted-slot status code");
          break;
        }
        slot.abort_status = Status(static_cast<StatusCode>(code),
                                   std::move(message));
        slot.session = std::make_unique<AbortedSession>(slot.abort_status);
        slot.state = SlotState::kFinished;
        break;
      }
      case kSlotLive: {
        std::string name = r.Str();
        std::string session_bytes = r.Str();
        if (r.failed()) break;
        // Per-slot failures degrade just this slot; the frame itself is
        // fine, so the rest of the population still restores.
        Status cause = Status::Ok();
        InteractiveAlgorithm* algorithm = resolver ? resolver(name) : nullptr;
        if (algorithm == nullptr) {
          cause = Status::NotFound(Format(
              "restore: no algorithm registered for '%s'", name.c_str()));
        } else {
          Result<std::unique_ptr<InteractionSession>> session =
              algorithm->RestoreSession(session_bytes, SessionConfig{});
          if (session.ok()) {
            slot.session = std::move(*session);
            slot.algorithm = algorithm;
            slot.state = slot.session->Finished() ? SlotState::kFinished
                                                  : SlotState::kRunnable;
          } else {
            cause = session.status();
          }
        }
        if (!cause.ok()) {
          slot.abort_status = std::move(cause);
          slot.session = std::make_unique<AbortedSession>(slot.abort_status);
          slot.state = SlotState::kFinished;
        }
        break;
      }
      default:
        r.Fail("bad slot marker");
        break;
    }
    if (r.failed()) break;
    if (slot.state == SlotState::kRunnable) ++scheduler.active_;
    scheduler.slots_.push_back(std::move(slot));
  }
  ISRL_RETURN_IF_ERROR(r.status());
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "snapshot payload: trailing bytes after population");
  }
  return scheduler;
}

std::vector<PendingQuestion> SessionScheduler::Tick() {
  // Coalesced scoring pass: group the pending feature rows of all runnable
  // sessions by scoring network, in first-seen session order. Group layout
  // and batch size never affect a row's scores (PredictBatch is
  // bit-identical per row), so this is purely a throughput optimisation.
  struct Group {
    nn::Network* network;
    std::vector<double> rows;                        // row-major stack
    size_t cols = 0;
    std::vector<std::pair<size_t, size_t>> members;  // (session id, row count)
  };
  std::vector<Group> groups;
  for (size_t id = 0; id < slots_.size(); ++id) {
    Slot& slot = slots_[id];
    if (slot.state != SlotState::kRunnable) continue;
    const Matrix* features = slot.session->PendingCandidateFeatures();
    nn::Network* network = slot.session->ScoringNetwork();
    if (features == nullptr || network == nullptr || features->rows() == 0) {
      continue;  // session scores itself (or has nothing to score)
    }
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.network == network) { group = &g; break; }
    }
    if (group == nullptr) {
      groups.push_back(Group{network, {}, features->cols(), {}});
      group = &groups.back();
    }
    ISRL_CHECK_EQ(group->cols, features->cols());
    const double* flat = features->row(0);
    group->rows.insert(group->rows.end(), flat,
                       flat + features->rows() * features->cols());
    group->members.emplace_back(id, features->rows());
  }
  for (Group& group : groups) {
    const size_t total = group.rows.size() / group.cols;
    Matrix batch(total, group.cols, std::move(group.rows));
    Vec scores = group.network->PredictBatch(batch);
    size_t offset = 0;
    for (const auto& [id, count] : group.members) {
      slots_[id].session->PostCandidateScores(&scores[offset], count);
      offset += count;
    }
  }

  // Question pass: collect every runnable session's next question, in id
  // order so any session-shared state (unseeded sessions, trace Rngs) is
  // consumed in a reproducible order. Slots already awaiting an answer
  // re-emit their in-flight question (NextQuestion is idempotent): after a
  // crash recovery replays a partial tick, the preempted questions must
  // reach a user again or their sessions would stay active forever.
  std::vector<PendingQuestion> questions;
  for (size_t id = 0; id < slots_.size(); ++id) {
    Slot& slot = slots_[id];
    if (slot.state != SlotState::kRunnable &&
        slot.state != SlotState::kAwaitingAnswer) {
      continue;
    }
    std::optional<SessionQuestion> question = slot.session->NextQuestion();
    if (question.has_value()) {
      slot.state = SlotState::kAwaitingAnswer;
      questions.push_back(PendingQuestion{id, std::move(*question)});
    } else {
      slot.state = SlotState::kFinished;
      --active_;
    }
  }
  return questions;
}

void SessionScheduler::PostAnswer(SessionId id, Answer answer) {
  ISRL_CHECK_LT(id, slots_.size());
  Slot& slot = slots_[id];
  ISRL_CHECK(slot.state == SlotState::kAwaitingAnswer);
  slot.session->PostAnswer(answer);
  slot.state = SlotState::kRunnable;
}

void SessionScheduler::Cancel(SessionId id) {
  ISRL_CHECK_LT(id, slots_.size());
  Slot& slot = slots_[id];
  if (slot.state == SlotState::kFinished || slot.state == SlotState::kTaken) {
    return;
  }
  slot.session->Cancel();
  slot.state = SlotState::kFinished;
  --active_;
}

bool SessionScheduler::finished(SessionId id) const {
  ISRL_CHECK_LT(id, slots_.size());
  return slots_[id].state == SlotState::kFinished;
}

bool SessionScheduler::awaiting(SessionId id) const {
  ISRL_CHECK_LT(id, slots_.size());
  return slots_[id].state == SlotState::kAwaitingAnswer;
}

InteractionResult SessionScheduler::Take(SessionId id) {
  ISRL_CHECK_LT(id, slots_.size());
  Slot& slot = slots_[id];
  ISRL_CHECK(slot.state == SlotState::kFinished);
  InteractionResult result = slot.session->Finish();
  result.converged = result.termination == Termination::kConverged;
  slot.state = SlotState::kTaken;
  slot.session.reset();
  return result;
}

std::vector<InteractionResult> DriveWithUsers(
    SessionScheduler& scheduler, const std::vector<UserOracle*>& users) {
  ISRL_CHECK_EQ(users.size(), scheduler.size());
  while (scheduler.active() > 0) {
    for (const PendingQuestion& pq : scheduler.Tick()) {
      scheduler.PostAnswer(
          pq.session_id,
          users[pq.session_id]->Ask(pq.question.first, pq.question.second));
    }
  }
  std::vector<InteractionResult> results;
  results.reserve(scheduler.size());
  for (size_t id = 0; id < scheduler.size(); ++id) {
    results.push_back(scheduler.Take(id));
  }
  return results;
}

void SessionStore::BeginEpoch(std::string population_snapshot) {
  population_ = std::move(population_snapshot);
  wal_.clear();
}

void SessionStore::LogAnswer(size_t session_id, Answer answer) {
  wal_.push_back(WalRecord{session_id, WalRecord::kAnswer, answer});
}

void SessionStore::LogCancel(size_t session_id) {
  wal_.push_back(WalRecord{session_id, WalRecord::kCancel, Answer::kFirst});
}

std::string SessionStore::Serialize() const {
  snapshot::Writer w;
  w.Str(population_);
  w.U64(wal_.size());
  for (const WalRecord& record : wal_) {
    w.U64(record.session_id);
    w.U8(record.kind);
    w.U8(static_cast<uint8_t>(record.answer));
  }
  return snapshot::WrapFrame(kStoreKind, kStoreVersion, w.bytes());
}

Result<SessionStore> SessionStore::Deserialize(const std::string& bytes) {
  ISRL_ASSIGN_OR_RETURN(
      std::string payload,
      snapshot::UnwrapFrame(kStoreKind, kStoreVersion, bytes));
  snapshot::Reader r(payload);
  SessionStore store;
  store.population_ = r.Str();
  uint64_t count = r.U64();
  if (count > snapshot::kMaxElements) r.Fail("implausible WAL length");
  for (uint64_t i = 0; !r.failed() && i < count; ++i) {
    WalRecord record;
    record.session_id = r.U64();
    record.kind = r.U8();
    uint8_t answer = r.U8();
    if (record.kind > WalRecord::kCancel) {
      r.Fail("bad WAL record kind");
      break;
    }
    if (answer > static_cast<uint8_t>(Answer::kNoAnswer)) {
      r.Fail("bad WAL answer value");
      break;
    }
    record.answer = static_cast<Answer>(answer);
    store.wal_.push_back(record);
  }
  ISRL_RETURN_IF_ERROR(r.status());
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "snapshot payload: trailing bytes after WAL");
  }
  return store;
}

Status SessionStore::SaveFile(const std::string& path) const {
  return snapshot::WriteFileBytes(path, Serialize());
}

Result<SessionStore> SessionStore::LoadFile(const std::string& path) {
  ISRL_ASSIGN_OR_RETURN(std::string bytes, snapshot::ReadFileBytes(path));
  return Deserialize(bytes);
}

Result<SessionScheduler> RecoverScheduler(const SessionStore& store,
                                          const AlgorithmResolver& resolver) {
  ISRL_ASSIGN_OR_RETURN(
      SessionScheduler scheduler,
      SessionScheduler::RestoreAll(store.population(), resolver));
  // Replay the WAL on top of the snapshot. Answers were logged in delivery
  // order, and within one original Tick each session answers at most once —
  // so whenever the next record's target is runnable (not yet asked), ALL
  // answers of the previous tick have been replayed and one scheduler.Tick()
  // re-reaches exactly the original tick boundary. NextQuestion() is
  // idempotent and sessions restore bit-identically, so the replayed
  // questions equal the asked-and-logged ones.
  for (size_t i = 0; i < store.wal().size(); ++i) {
    const WalRecord& record = store.wal()[i];
    if (record.session_id >= scheduler.size()) {
      return Status::InvalidArgument(
          Format("recover: WAL record %zu targets unknown session %zu", i,
                 record.session_id));
    }
    if (scheduler.finished(record.session_id)) {
      // Degraded (aborted) or already-terminated slot: the record is stale;
      // absorbing it keeps one bad slot from blocking population recovery.
      continue;
    }
    if (record.kind == WalRecord::kCancel) {
      scheduler.Cancel(record.session_id);
      continue;
    }
    if (!scheduler.awaiting(record.session_id)) {
      (void)scheduler.Tick();  // advance to the tick this record came from
    }
    if (scheduler.finished(record.session_id)) continue;  // terminated instead
    if (!scheduler.awaiting(record.session_id)) {
      return Status::FailedPrecondition(
          Format("recover: WAL record %zu out of sync — session %zu has no "
                 "outstanding question (log and snapshot do not match)",
                 i, record.session_id));
    }
    scheduler.PostAnswer(record.session_id, record.answer);
  }
  return scheduler;
}

Result<DurableDriveOutcome> DriveWithUsersDurable(
    SessionScheduler& scheduler, const std::vector<UserOracle*>& users,
    SessionStore& store, size_t checkpoint_every_ticks, CrashPoint crash) {
  ISRL_CHECK_EQ(users.size(), scheduler.size());
  ISRL_ASSIGN_OR_RETURN(std::string snapshot, scheduler.CheckpointAll());
  store.BeginEpoch(std::move(snapshot));
  DurableDriveOutcome outcome;
  size_t answers = 0;
  size_t ticks = 0;
  while (scheduler.active() > 0) {
    for (const PendingQuestion& pq : scheduler.Tick()) {
      if (answers == crash.after_answers) {
        // Simulated crash BEFORE the Ask: the user for this (and every
        // later) question never consumes an Rng draw, so recovery resumes
        // with user fault streams exactly where the log left them.
        outcome.crashed = true;
        return outcome;
      }
      Answer answer =
          users[pq.session_id]->Ask(pq.question.first, pq.question.second);
      store.LogAnswer(pq.session_id, answer);  // write-ahead
      scheduler.PostAnswer(pq.session_id, answer);
      ++answers;
    }
    ++ticks;
    if (checkpoint_every_ticks > 0 && ticks % checkpoint_every_ticks == 0 &&
        scheduler.active() > 0) {
      ISRL_ASSIGN_OR_RETURN(std::string fresh, scheduler.CheckpointAll());
      store.BeginEpoch(std::move(fresh));
    }
  }
  outcome.results.reserve(scheduler.size());
  for (size_t id = 0; id < scheduler.size(); ++id) {
    outcome.results.push_back(scheduler.Take(id));
  }
  return outcome;
}

}  // namespace isrl
