// The common interface of all interactive algorithms (EA, AA, and the
// baselines), plus the per-round tracing used for the interaction-progress
// figures (Figures 7 and 8).
//
// Interaction is sans-IO (DESIGN.md §13): every algorithm exposes its episode
// as a resumable InteractionSession — a state machine that emits questions
// and consumes answers without ever touching a UserOracle or a socket. The
// blocking Interact() entry point is a thin driver over that step API, so
// synchronous callers are untouched while asynchronous drivers (a real human
// on stdin, the multi-session SessionScheduler) can interleave thousands of
// user-paced episodes on one thread.
#ifndef ISRL_CORE_ALGORITHM_H_
#define ISRL_CORE_ALGORITHM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "user/user.h"

namespace isrl {

class Matrix;
namespace nn {
class ModelProvider;
class ModelSnapshot;
}  // namespace nn

/// A question: "do you prefer data.point(i) or data.point(j)?".
struct Question {
  size_t i = 0;
  size_t j = 0;
};

/// Outcome of one full interaction. Interactions never abort the process:
/// every session ends with a recommendation (best_index) and a Termination
/// explaining how it got there.
struct InteractionResult {
  size_t best_index = 0;   ///< returned tuple (always valid, best-so-far)
  size_t rounds = 0;       ///< questions asked (including unanswered ones)
  double seconds = 0.0;    ///< algorithm time, excluding trace bookkeeping
  bool converged = false;  ///< termination == kConverged (kept for callers)
  Termination termination = Termination::kConverged;
  size_t dropped_answers = 0;  ///< conflicting half-spaces dropped (noise)
  size_t no_answers = 0;       ///< questions the user declined to answer
  Status status;  ///< non-OK only when termination == kAborted
};

/// Optional per-round tracing (Figures 7/8). When attached, after every round
/// the algorithm reports its current recommendation and a sample of utility
/// vectors still consistent with what it has learned; the trace computes the
/// maximum regret ratio over that sample, mirroring the paper's metric.
class InteractionTrace {
 public:
  InteractionTrace(const Dataset* data, size_t regret_samples, Rng* rng)
      : data_(data), regret_samples_(regret_samples), rng_(rng) {}

  /// Called by algorithms at the end of each round. `consistent_utilities`
  /// may be empty, in which case the regret entry repeats the previous value
  /// (or 1.0 at round 0).
  void Record(size_t best_index, const std::vector<Vec>& consistent_utilities,
              double elapsed_seconds);

  size_t regret_samples() const { return regret_samples_; }
  Rng& rng() const { return *rng_; }

  /// Replaces the recorded history with checkpointed vectors (core/snapshot
  /// trace codec). The three vectors must have equal length; used when a
  /// driver restores a session together with its trace so the combined
  /// figure data is bit-identical to an uninterrupted run.
  void RestoreHistory(std::vector<double> max_regret,
                      std::vector<double> cumulative_seconds,
                      std::vector<size_t> best_index) {
    ISRL_CHECK_EQ(max_regret.size(), cumulative_seconds.size());
    ISRL_CHECK_EQ(max_regret.size(), best_index.size());
    max_regret_ = std::move(max_regret);
    cumulative_seconds_ = std::move(cumulative_seconds);
    best_index_ = std::move(best_index);
  }

  const std::vector<double>& max_regret() const { return max_regret_; }
  const std::vector<double>& cumulative_seconds() const {
    return cumulative_seconds_;
  }
  const std::vector<size_t>& best_index() const { return best_index_; }
  size_t rounds() const { return max_regret_.size(); }

 private:
  const Dataset* data_;
  size_t regret_samples_;
  Rng* rng_;
  std::vector<double> max_regret_;
  std::vector<double> cumulative_seconds_;
  std::vector<size_t> best_index_;
};

/// The question an InteractionSession is currently waiting on: the two
/// points shown to the user. For most algorithms these are dataset tuples
/// (indices in `pair`); UtilityApprox asks about constructed points, marked
/// `synthetic` (then `pair` is meaningless).
struct SessionQuestion {
  Vec first;
  Vec second;
  Question pair;
  bool synthetic = false;
};

/// How an interaction session is started: the resource budget (armed into a
/// wall-clock deadline at session start), the optional per-round trace, and
/// the randomness source.
struct SessionConfig {
  RunBudget budget;
  InteractionTrace* trace = nullptr;
  /// When set, the session owns a private Rng seeded with *seed, making it
  /// independent of every other session — required when several sessions of
  /// one algorithm instance are in flight (SessionScheduler). When unset the
  /// session draws from the algorithm's member Rng, exactly like the
  /// blocking Interact() path — never run two seedless sessions
  /// concurrently.
  std::optional<uint64_t> seed;
  /// The immutable model snapshot this session scores through, pinned for
  /// the whole episode (nn/registry.h, DESIGN.md §18). RL algorithms fall
  /// back to their live serving snapshot when unset; either way a later
  /// ModelRegistry::Publish never changes what an in-flight session
  /// computes. Ignored by model-free baselines.
  std::shared_ptr<const nn::ModelSnapshot> model;
  /// Restore-time model resolver (RestoreSession only): maps the model
  /// version recorded in a session snapshot back to a pinned snapshot.
  /// When null, restore pins `model` if set, else the algorithm's live
  /// serving snapshot — always subject to the §14 fingerprint check.
  nn::ModelProvider* models = nullptr;
};

/// One resumable interactive episode, inverted into a sans-IO state machine
/// (DESIGN.md §13). All per-episode state — polyhedron / half-space set /
/// candidate set, budget, deadline, trace hook — lives inside the session;
/// the driver owns only the IO:
///
///   auto session = algorithm.StartSession(config);
///   while (auto q = session->NextQuestion()) {
///     session->PostAnswer(AskTheUserSomehow(*q));   // may take days
///   }
///   InteractionResult result = session->Finish();
///
/// Sessions borrow their algorithm (and its dataset): the algorithm must
/// outlive every session it started.
class InteractionSession {
 public:
  virtual ~InteractionSession() = default;

  /// The question awaiting an answer, or nullopt once the session has
  /// terminated (then call Finish()). Idempotent: repeated calls without an
  /// intervening PostAnswer return the same question and do not advance the
  /// state machine.
  virtual std::optional<SessionQuestion> NextQuestion() = 0;

  /// Delivers the user's answer to the current question and advances the
  /// state machine to the next question or to termination. kNoAnswer is a
  /// valid delivery (timed-out question).
  virtual void PostAnswer(Answer answer) = 0;

  /// Ends the session now with its best-so-far recommendation (the user
  /// walked away). No-op once terminated; NextQuestion() returns nullopt
  /// afterwards.
  virtual void Cancel() = 0;

  /// True once the session has terminated (NextQuestion() returns nullopt).
  virtual bool Finished() const = 0;

  /// The episode outcome. Only valid once Finished().
  virtual InteractionResult Finish() = 0;

  // ---- Cross-session batched-scoring protocol (optional; EA/AA). --------
  // An RL session that is about to pick its next question first exposes the
  // row-stacked features of its candidate pool here. A driver MAY score
  // them (one Q-value per row, via ScoringModel()->Score — the
  // SessionScheduler coalesces the rows of every session pinning the same
  // ModelSnapshot into one PredictBatch per tick) and post the scores back;
  // a driver that ignores the protocol loses nothing, as the session scores
  // itself on the next NextQuestion(). Both routes are bit-identical
  // (PredictBatch is bit-identical per row at any batch size).

  /// Candidate features awaiting scoring, or nullptr. One row per
  /// candidate; valid until PostCandidateScores/NextQuestion/PostAnswer.
  virtual const Matrix* PendingCandidateFeatures() const { return nullptr; }

  /// The immutable model snapshot that must score
  /// PendingCandidateFeatures() (nn/registry.h). Sessions pinned to the
  /// same snapshot share the pointer, which is what makes cross-session
  /// coalescing possible. Null when no scoring is pending.
  virtual const nn::ModelSnapshot* ScoringModel() const { return nullptr; }

  /// Delivers the Q-values of PendingCandidateFeatures() (`count` must equal
  /// its row count); the session picks argmax exactly as it would have
  /// scoring itself.
  virtual void PostCandidateScores(const double* scores, size_t count) {
    (void)scores;
    (void)count;
  }

  // ---- Continuous-learning hooks (optional; DESIGN.md §18). --------------

  /// Version of the model snapshot driving this session: what the session
  /// pinned at start (0 for an unregistered live model and for model-free
  /// baselines). Recorded in harvest records and the sharded manifest.
  virtual uint64_t ModelVersion() const { return 0; }

  /// A point estimate of the user's utility vector as learned by this
  /// episode (EA: centroid of the final range; AA: rectangle midpoint) —
  /// the replay sample trace-driven retraining feeds back into Train().
  /// nullopt when the algorithm learns no utility region or the region
  /// degenerated.
  virtual std::optional<Vec> HarvestUtility() const { return std::nullopt; }

  // ---- Durability (DESIGN.md §14). ---------------------------------------

  /// Serialises the complete episode state into a versioned, CRC-framed
  /// byte string (core/snapshot framing). A session restored from these
  /// bytes via InteractiveAlgorithm::RestoreSession continues bit-
  /// identically: same questions, same Rng draw order, same Termination.
  /// Q-network weights are NOT embedded — RL snapshots carry the pinned
  /// model's version and fingerprint, and restore re-pins that exact model
  /// (SessionConfig::models / config.model, falling back to the algorithm
  /// instance's live network). Callable in any state, including mid-question
  /// and after
  /// termination. Default: Unimplemented (a session type without
  /// durability support degrades to a Status, never a crash).
  virtual Result<std::string> SaveState() const {
    return Status::Unimplemented("session checkpointing not supported");
  }
};

/// An interactive algorithm bound to a dataset and a regret threshold ε.
/// Interact() and StartSession() are re-entrant: each call is an independent
/// episode.
class InteractiveAlgorithm {
 public:
  virtual ~InteractiveAlgorithm() = default;

  /// Human-readable algorithm name ("EA", "UH-Random", ...).
  virtual std::string name() const = 0;

  /// Evaluation-time clone hook (core of the parallel evaluation layer; see
  /// DESIGN.md §10): returns an independent deep copy — same dataset
  /// binding, same learned weights — that a worker thread can interact with
  /// concurrently. Returns nullptr when the algorithm cannot be cloned,
  /// which makes Evaluate fall back to the sequential single-instance path.
  virtual std::unique_ptr<InteractiveAlgorithm> CloneForEval() const {
    return nullptr;
  }

  /// Reseeds the algorithm's private Rng so the next Interact() episode's
  /// stochastic choices are a pure function of `seed`. The evaluation layer
  /// calls this with a per-user derived seed (SplitSeed) before every
  /// episode, making results independent of user order, worker assignment,
  /// and thread count. Algorithms without internal randomness keep the
  /// default no-op; algorithms WITH internal randomness must override both
  /// this and CloneForEval to be deterministically evaluable in parallel.
  virtual void Reseed(uint64_t seed) { (void)seed; }

  /// Opens one episode as a resumable sans-IO session (DESIGN.md §13). The
  /// session must never abort on user answers, LP outcomes, or geometry
  /// degeneracies: conflicting answers degrade (dropping the minimal
  /// most-recent suffix of half-spaces), budget exhaustion returns
  /// best-so-far, and unrecoverable failures surface as termination ==
  /// kAborted with a non-OK status — still with the best available
  /// recommendation.
  virtual std::unique_ptr<InteractionSession> StartSession(
      const SessionConfig& config) = 0;

  /// Reopens a session from InteractionSession::SaveState bytes
  /// (DESIGN.md §14). Only `config.trace`, `config.models`, and
  /// `config.model` are honoured — budget caps, the remaining deadline, and
  /// the Rng state all come from the snapshot, so the restored episode
  /// continues bit-identically to one that never stopped. RL sessions
  /// re-pin the model version recorded in the snapshot through
  /// `config.models` (else `config.model`, else the instance's live model)
  /// and verify its §14 fingerprint. Every failure mode — wrong algorithm
  /// kind, truncated or
  /// corrupted frames, version skew, non-finite payloads, dataset or
  /// Q-network mismatch — returns a descriptive Status; restore never
  /// crashes. Default: Unimplemented.
  virtual Result<std::unique_ptr<InteractionSession>> RestoreSession(
      const std::string& bytes, const SessionConfig& config) {
    (void)bytes;
    (void)config;
    return Status::Unimplemented("session restore not supported");
  }

  /// Runs one full interaction against `user`; when `trace` is non-null the
  /// algorithm records per-round progress into it.
  InteractionResult Interact(UserOracle& user,
                             InteractionTrace* trace = nullptr) {
    return Interact(user, RunBudget{}, trace);
  }

  /// Interact() under a resource budget: the session additionally stops —
  /// with Termination::kBudgetExhausted and its best-so-far recommendation —
  /// when the budget's round cap or wall-clock deadline is reached.
  ///
  /// This is the blocking driver over the step API; results are
  /// bit-identical to stepping the session externally.
  InteractionResult Interact(UserOracle& user, const RunBudget& budget,
                             InteractionTrace* trace = nullptr) {
    SessionConfig config;
    config.budget = budget;
    config.trace = trace;
    std::unique_ptr<InteractionSession> session = StartSession(config);
    while (std::optional<SessionQuestion> q = session->NextQuestion()) {
      session->PostAnswer(user.Ask(q->first, q->second));
    }
    InteractionResult result = session->Finish();
    result.converged = result.termination == Termination::kConverged;
    return result;
  }
};

}  // namespace isrl

#endif  // ISRL_CORE_ALGORITHM_H_
