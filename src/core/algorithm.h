// The common interface of all interactive algorithms (EA, AA, and the
// baselines), plus the per-round tracing used for the interaction-progress
// figures (Figures 7 and 8).
#ifndef ISRL_CORE_ALGORITHM_H_
#define ISRL_CORE_ALGORITHM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "user/user.h"

namespace isrl {

/// A question: "do you prefer data.point(i) or data.point(j)?".
struct Question {
  size_t i = 0;
  size_t j = 0;
};

/// Outcome of one full interaction. Interactions never abort the process:
/// every session ends with a recommendation (best_index) and a Termination
/// explaining how it got there.
struct InteractionResult {
  size_t best_index = 0;   ///< returned tuple (always valid, best-so-far)
  size_t rounds = 0;       ///< questions asked (including unanswered ones)
  double seconds = 0.0;    ///< algorithm time, excluding trace bookkeeping
  bool converged = false;  ///< termination == kConverged (kept for callers)
  Termination termination = Termination::kConverged;
  size_t dropped_answers = 0;  ///< conflicting half-spaces dropped (noise)
  size_t no_answers = 0;       ///< questions the user declined to answer
  Status status;  ///< non-OK only when termination == kAborted
};

/// Optional per-round tracing (Figures 7/8). When attached, after every round
/// the algorithm reports its current recommendation and a sample of utility
/// vectors still consistent with what it has learned; the trace computes the
/// maximum regret ratio over that sample, mirroring the paper's metric.
class InteractionTrace {
 public:
  InteractionTrace(const Dataset* data, size_t regret_samples, Rng* rng)
      : data_(data), regret_samples_(regret_samples), rng_(rng) {}

  /// Called by algorithms at the end of each round. `consistent_utilities`
  /// may be empty, in which case the regret entry repeats the previous value
  /// (or 1.0 at round 0).
  void Record(size_t best_index, const std::vector<Vec>& consistent_utilities,
              double elapsed_seconds);

  size_t regret_samples() const { return regret_samples_; }
  Rng& rng() const { return *rng_; }

  const std::vector<double>& max_regret() const { return max_regret_; }
  const std::vector<double>& cumulative_seconds() const {
    return cumulative_seconds_;
  }
  const std::vector<size_t>& best_index() const { return best_index_; }
  size_t rounds() const { return max_regret_.size(); }

 private:
  const Dataset* data_;
  size_t regret_samples_;
  Rng* rng_;
  std::vector<double> max_regret_;
  std::vector<double> cumulative_seconds_;
  std::vector<size_t> best_index_;
};

/// Everything one interaction session carries through the engine: the user,
/// the optional trace, and the resource budget (with its armed deadline).
/// Built by InteractiveAlgorithm::Interact and handed to DoInteract.
struct InteractionContext {
  UserOracle& user;
  InteractionTrace* trace = nullptr;
  RunBudget budget;
  Deadline deadline;

  /// The round cap in force for an algorithm whose own default cap is
  /// `algorithm_default`.
  size_t MaxRounds(size_t algorithm_default) const {
    return budget.EffectiveMaxRounds(algorithm_default);
  }

  /// True when the wall-clock deadline has passed.
  bool DeadlineExpired() const { return deadline.Expired(); }
};

/// An interactive algorithm bound to a dataset and a regret threshold ε.
/// Interact() is re-entrant: each call is an independent episode.
class InteractiveAlgorithm {
 public:
  virtual ~InteractiveAlgorithm() = default;

  /// Human-readable algorithm name ("EA", "UH-Random", ...).
  virtual std::string name() const = 0;

  /// Evaluation-time clone hook (core of the parallel evaluation layer; see
  /// DESIGN.md §10): returns an independent deep copy — same dataset
  /// binding, same learned weights — that a worker thread can interact with
  /// concurrently. Returns nullptr when the algorithm cannot be cloned,
  /// which makes Evaluate fall back to the sequential single-instance path.
  virtual std::unique_ptr<InteractiveAlgorithm> CloneForEval() const {
    return nullptr;
  }

  /// Reseeds the algorithm's private Rng so the next Interact() episode's
  /// stochastic choices are a pure function of `seed`. The evaluation layer
  /// calls this with a per-user derived seed (SplitSeed) before every
  /// episode, making results independent of user order, worker assignment,
  /// and thread count. Algorithms without internal randomness keep the
  /// default no-op; algorithms WITH internal randomness must override both
  /// this and CloneForEval to be deterministically evaluable in parallel.
  virtual void Reseed(uint64_t seed) { (void)seed; }

  /// Runs one full interaction against `user`; when `trace` is non-null the
  /// algorithm records per-round progress into it.
  InteractionResult Interact(UserOracle& user,
                             InteractionTrace* trace = nullptr) {
    return Interact(user, RunBudget{}, trace);
  }

  /// Interact() under a resource budget: the session additionally stops —
  /// with Termination::kBudgetExhausted and its best-so-far recommendation —
  /// when the budget's round cap or wall-clock deadline is reached.
  InteractionResult Interact(UserOracle& user, const RunBudget& budget,
                             InteractionTrace* trace = nullptr) {
    InteractionContext ctx{user, trace, budget, Deadline::FromBudget(budget)};
    InteractionResult result = DoInteract(ctx);
    result.converged = result.termination == Termination::kConverged;
    return result;
  }

 protected:
  /// Algorithm implementation. Must never abort on user answers, LP
  /// outcomes, or geometry degeneracies: conflicting answers degrade
  /// (dropping the minimal most-recent suffix of half-spaces), budget
  /// exhaustion returns best-so-far, and unrecoverable failures surface as
  /// termination == kAborted with a non-OK status — still with the best
  /// available recommendation.
  virtual InteractionResult DoInteract(InteractionContext& ctx) = 0;
};

}  // namespace isrl

#endif  // ISRL_CORE_ALGORITHM_H_
