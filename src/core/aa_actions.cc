#include "core/aa_actions.h"

#include <algorithm>
#include <cmath>

#include "geometry/hit_and_run.h"

namespace isrl {
namespace {

// Fraction of `samples` preferring p_i to p_j. 0 or 1 means the samples are
// unanimous (the pair likely does not split R).
double PreferenceFraction(const Vec& pi, const Vec& pj,
                          const std::vector<Vec>& samples) {
  size_t prefer_i = 0;
  for (const Vec& u : samples) {
    if (Dot(u, pi) >= Dot(u, pj)) ++prefer_i;
  }
  return static_cast<double>(prefer_i) / static_cast<double>(samples.size());
}

}  // namespace

std::vector<AaAction> BuildAaActionSpace(
    const Dataset& data, const std::vector<LearnedHalfspace>& h,
    const AaGeometry& geometry, const AaActionOptions& options, Rng& rng) {
  // Infeasible geometry (contradictory H): no actions — callers degrade.
  if (!geometry.feasible) return {};
  const size_t d = data.dim();

  // ---- Utility samples from R (hit-and-run around the inner centre). They
  // double as the two-sided feasibility witness: if some samples prefer p_i
  // and others p_j, both sides of h_{i,j} intersect R (Lemma 8's condition),
  // since every sample lies in R. ----
  std::vector<Halfspace> cuts;
  cuts.reserve(h.size());
  for (const LearnedHalfspace& lh : h) cuts.push_back(lh.h);
  std::vector<Vec> samples =
      HitAndRunSample(cuts, geometry.inner.center, options.pool_samples, rng);
  samples.push_back(geometry.inner.center);

  // ---- Contention pool: distinct top-1 points over the samples. ----
  std::vector<size_t> pool;
  for (const Vec& u : samples) {
    size_t top = data.TopIndex(u);
    if (std::find(pool.begin(), pool.end(), top) == pool.end()) {
      pool.push_back(top);
    }
  }

  // ---- Describe pairs: the ideal hyper-plane bisects R (a 50/50 preference
  // split over the samples) and addresses the outer rectangle's widest
  // dimensions (progress towards the stopping certificate). ----
  const Vec width = geometry.e_max - geometry.e_min;
  auto describe = [&](const Question& q, AaAction* out) -> bool {
    const Vec& pi = data.point(q.i);
    const Vec& pj = data.point(q.j);
    Halfspace hp = PreferenceHalfspace(pi, pj);
    double norm = hp.normal.Norm();
    if (norm < 1e-12) return false;  // duplicate points
    double frac = PreferenceFraction(pi, pj, samples);
    if (frac <= 0.0 || frac >= 1.0) return false;  // no feasibility witness
    out->q = q;
    out->balance = frac;
    out->alignment = 0.0;
    for (size_t k = 0; k < d; ++k) {
      out->alignment += std::abs(hp.normal[k]) / norm * width[k];
    }
    out->center_dist = DistanceToHyperplane(geometry.inner.center, hp);
    return true;
  };
  auto heuristic_score = [](const AaAction& a) {
    return std::abs(a.balance - 0.5) / (1e-6 + a.alignment);
  };

  std::vector<AaAction> scored;
  scored.reserve(pool.size() * (pool.size() - 1) / 2);
  for (size_t a = 0; a < pool.size(); ++a) {
    for (size_t b = a + 1; b < pool.size(); ++b) {
      AaAction action;
      if (describe(Question{pool[a], pool[b]}, &action)) {
        scored.push_back(action);
      }
    }
  }

  // Fallback when the pool collapses (all samples share one top point) or no
  // pool pair splits R: scan random dataset pairs with the same witness.
  if (scored.empty() && data.size() >= 2) {
    const size_t attempts = 32 * std::max<size_t>(1, options.m_h);
    for (size_t attempt = 0; attempt < attempts; ++attempt) {
      std::vector<size_t> picked = rng.SampleIndices(data.size(), 2);
      AaAction action;
      if (describe(Question{picked[0], picked[1]}, &action)) {
        scored.push_back(action);
      }
      if (scored.size() >= options.m_h) break;
    }
  }

  std::sort(scored.begin(), scored.end(),
            [&](const AaAction& x, const AaAction& y) {
              return heuristic_score(x) < heuristic_score(y);
            });

  // Mixed action space: the best-scored half gives the agent strong
  // candidates, the random half keeps the set diverse so the learned policy
  // has meaningful choices to rank (an all-near-optimal action set would
  // leave the DQN nothing to improve on).
  std::vector<AaAction> out;
  out.reserve(std::min(options.m_h, scored.size()));
  const size_t top_quota = (options.m_h + 1) / 2;
  for (const AaAction& a : scored) {
    if (out.size() >= top_quota) break;
    out.push_back(a);
  }
  if (scored.size() > out.size() && out.size() < options.m_h) {
    std::vector<size_t> rest;
    for (size_t i = out.size(); i < scored.size(); ++i) rest.push_back(i);
    rng.Shuffle(&rest);
    for (size_t idx : rest) {
      if (out.size() >= options.m_h) break;
      out.push_back(scored[idx]);
    }
  }
  return out;
}

}  // namespace isrl
