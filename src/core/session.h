// Evaluation sessions: run an interactive algorithm against a population of
// simulated users and aggregate the §V measurements.
//
// Evaluation is deterministic-parallel (DESIGN.md §10): every per-user
// stochastic stream — the algorithm's question sampling, the oracle's fault
// draws, the trace's regret sampling — is derived from (master seed, user
// index) via SplitSeed, workers run on per-worker algorithm clones
// (InteractiveAlgorithm::CloneForEval), and aggregation reduces per-user
// results in user-index order. Counts, regrets, and outcome fractions are
// therefore bit-identical at any thread count; only wall-clock columns
// (mean_seconds and the trace's cumulative seconds) vary run to run.
#ifndef ISRL_CORE_SESSION_H_
#define ISRL_CORE_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/algorithm.h"
#include "core/metrics.h"
#include "data/dataset.h"
#include "user/faulty.h"
#include "user/user.h"

namespace isrl {

/// Builds a user oracle for one hidden utility vector. `user_seed` is
/// derived from (evaluation seed, user index), so an oracle with internal
/// randomness seeds its own generator from it — fault streams then depend
/// only on the user's index, never on scheduling or call order. The default
/// factory is the paper's deterministic linear user (seed ignored).
using UserFactory =
    std::function<std::unique_ptr<UserOracle>(const Vec&, uint64_t user_seed)>;

/// Factory for LinearUser.
UserFactory MakeLinearUserFactory();

/// Factory for NoisyUser with the given error rate (future-work extension).
/// Each user owns a generator seeded from its per-user seed.
UserFactory MakeNoisyUserFactory(double error_rate);

/// Factory for FaultyUser (fault-injection oracle): each user's fault Rng is
/// seeded from `options.seed` mixed with the per-user seed, so a population
/// evaluation is deterministic — at any thread count — yet fault sequences
/// differ across users.
UserFactory MakeFaultyUserFactory(const FaultyUserOptions& options);

/// Parallelism and seeding of one evaluation call.
struct EvalConfig {
  /// Worker threads; 0 = the ISRL_THREADS environment variable (default 1,
  /// "0" = one per core). Thread count never changes results, only speed.
  size_t threads = 0;
  /// Master seed all per-user streams are derived from.
  uint64_t seed = 0x15EEDull;
};

/// Runs one interaction per utility vector and aggregates rounds, time, and
/// regret of the returned tuple. `epsilon` is only used for the within-ε
/// fraction. When `budget` is non-trivial each interaction runs under it;
/// per-user failure outcomes (degraded / budget-exhausted / aborted, dropped
/// and unanswered questions) are aggregated into the stats either way.
/// Reseeds `algorithm` (and its evaluation clones) per user — two identical
/// Evaluate calls return identical stats.
EvalStats Evaluate(InteractiveAlgorithm& algorithm, const Dataset& data,
                   const std::vector<Vec>& utilities, double epsilon,
                   const UserFactory& factory = MakeLinearUserFactory(),
                   const RunBudget& budget = RunBudget{},
                   const EvalConfig& config = EvalConfig{});

/// Per-round trajectory (Figures 7/8): the maximum regret ratio of the
/// current recommendation and the cumulative execution time at the end of
/// each interactive round, averaged over the users. Users that stop early
/// contribute their final values to later rounds.
struct TraceSummary : OutcomeCounts {
  std::vector<double> mean_max_regret;
  std::vector<double> mean_cumulative_seconds;
  size_t users = 0;
};

/// `seed` doubles as the master seed for the per-user stream derivation;
/// `threads` follows EvalConfig::threads semantics (0 = ISRL_THREADS).
TraceSummary EvaluateTrajectory(InteractiveAlgorithm& algorithm,
                                const Dataset& data,
                                const std::vector<Vec>& utilities,
                                size_t regret_samples, uint64_t seed,
                                const UserFactory& factory =
                                    MakeLinearUserFactory(),
                                const RunBudget& budget = RunBudget{},
                                size_t threads = 0);

}  // namespace isrl

#endif  // ISRL_CORE_SESSION_H_
