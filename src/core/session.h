// Evaluation sessions: run an interactive algorithm against a population of
// simulated users and aggregate the §V measurements.
#ifndef ISRL_CORE_SESSION_H_
#define ISRL_CORE_SESSION_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/algorithm.h"
#include "core/metrics.h"
#include "data/dataset.h"
#include "user/faulty.h"
#include "user/user.h"

namespace isrl {

/// Builds a user oracle for one hidden utility vector. The default factory
/// is the paper's deterministic linear user.
using UserFactory = std::function<std::unique_ptr<UserOracle>(const Vec&)>;

/// Factory for LinearUser.
UserFactory MakeLinearUserFactory();

/// Factory for NoisyUser with the given error rate (future-work extension).
UserFactory MakeNoisyUserFactory(double error_rate, Rng& rng);

/// Factory for FaultyUser (fault-injection oracle): each user gets its own
/// Rng seeded from `options.seed` plus a per-user counter, so a population
/// evaluation is deterministic yet fault sequences differ across users.
UserFactory MakeFaultyUserFactory(const FaultyUserOptions& options);

/// Runs one interaction per utility vector and aggregates rounds, time, and
/// regret of the returned tuple. `epsilon` is only used for the within-ε
/// fraction. When `budget` is non-trivial each interaction runs under it;
/// per-user failure outcomes (degraded / budget-exhausted / aborted, dropped
/// and unanswered questions) are aggregated into the stats either way.
EvalStats Evaluate(InteractiveAlgorithm& algorithm, const Dataset& data,
                   const std::vector<Vec>& utilities, double epsilon,
                   const UserFactory& factory = MakeLinearUserFactory(),
                   const RunBudget& budget = RunBudget{});

/// Per-round trajectory (Figures 7/8): the maximum regret ratio of the
/// current recommendation and the cumulative execution time at the end of
/// each interactive round, averaged over the users. Users that stop early
/// contribute their final values to later rounds.
struct TraceSummary {
  std::vector<double> mean_max_regret;
  std::vector<double> mean_cumulative_seconds;
  size_t users = 0;
  // Failure outcomes across the traced users.
  size_t degraded = 0;          ///< ended Termination::kDegraded
  size_t budget_exhausted = 0;  ///< ended Termination::kBudgetExhausted
  size_t aborted = 0;           ///< ended Termination::kAborted
};

TraceSummary EvaluateTrajectory(InteractiveAlgorithm& algorithm,
                                const Dataset& data,
                                const std::vector<Vec>& utilities,
                                size_t regret_samples, uint64_t seed,
                                const UserFactory& factory =
                                    MakeLinearUserFactory(),
                                const RunBudget& budget = RunBudget{});

}  // namespace isrl

#endif  // ISRL_CORE_SESSION_H_
