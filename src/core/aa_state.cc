#include "core/aa_state.h"

#include <algorithm>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "lp/simplex.h"

namespace isrl {
namespace {

// Adds the simplex constraints (Σu = 1; u ≥ 0 is the variables' own bound)
// over the first d variables of the model.
void AddSimplexConstraints(lp::Model* model, size_t d) {
  Vec ones(d, 1.0);
  model->AddConstraint(ones, lp::Relation::kEq, 1.0);
}

lp::SimplexOptions LpOptions(size_t max_lp_iterations) {
  lp::SimplexOptions options;
  if (max_lp_iterations > 0) options.max_iterations = max_lp_iterations;
  return options;
}

}  // namespace

size_t AaStateDim(size_t d) { return 3 * d + 1; }

AaGeometry ComputeAaGeometry(size_t d, const std::vector<LearnedHalfspace>& h,
                             size_t max_lp_iterations,
                             bool share_rectangle_lps) {
  AaGeometry geo;
  const lp::SimplexOptions lp_options = LpOptions(max_lp_iterations);

  // ---- Inner sphere LP: maximise B_r subject to
  //   B_c on the simplex,
  //   (p_i − p_j)·B_c / ‖p_i − p_j‖ ≥ B_r   for each half-space,
  //   B_c[i] ≥ B_r                           (keep the ball off the simplex
  //                                           facets; bounds the LP). ----
  {
    lp::Model model;
    for (size_t i = 0; i < d; ++i) model.AddVariable(0.0);  // B_c
    size_t radius_var = model.AddVariable(1.0);             // B_r (objective)
    AddSimplexConstraints(&model, d);
    for (const LearnedHalfspace& lh : h) {
      double norm = lh.h.normal.Norm();
      // A zero-normal half-space (two identical points compared) constrains
      // nothing; skip it instead of dividing by zero.
      if (norm <= 0.0) continue;
      Vec row(d + 1);
      for (size_t c = 0; c < d; ++c) row[c] = lh.h.normal[c] / norm;
      row[radius_var] = -1.0;
      model.AddConstraint(row, lp::Relation::kGe, lh.h.offset / norm);
    }
    for (size_t i = 0; i < d; ++i) {
      Vec row(d + 1);
      row[i] = 1.0;
      row[radius_var] = -1.0;
      model.AddConstraint(row, lp::Relation::kGe, 0.0);
    }
    lp::SolveResult result = lp::SolveWithRecovery(model, lp_options);
    if (!result.ok()) return geo;  // infeasible H
    geo.inner.center = Vec(d);
    for (size_t i = 0; i < d; ++i) geo.inner.center[i] = result.x[i];
    geo.inner.radius = std::max(0.0, result.x[radius_var]);
  }

  // ---- Outer rectangle: 2d LPs min/max u[i] over U ∩ H. All 2d models
  // share their constraint rows and differ only in objective, so the shared
  // path runs simplex phase 1 once and replays it per member; every answer
  // is bit-identical to the per-LP seed path (DESIGN.md §17), which stays
  // reachable as the benchmark baseline. ----
  geo.e_min = Vec(d);
  geo.e_max = Vec(d);
  lp::FamilySolver family(lp_options);
  for (size_t i = 0; i < d; ++i) {
    for (int direction = 0; direction < 2; ++direction) {
      lp::Model model;
      for (size_t v = 0; v < d; ++v) {
        model.AddVariable(v == i ? 1.0 : 0.0);
      }
      model.SetSense(direction == 0 ? lp::Sense::kMinimize
                                    : lp::Sense::kMaximize);
      AddSimplexConstraints(&model, d);
      for (const LearnedHalfspace& lh : h) {
        model.AddConstraint(lh.h.normal, lp::Relation::kGe, lh.h.offset);
      }
      lp::SolveResult result = share_rectangle_lps
                                   ? family.Solve(model)
                                   : lp::SolveWithRecovery(model, lp_options);
      if (!result.ok()) return geo;
      if (direction == 0) {
        geo.e_min[i] = result.objective;
      } else {
        geo.e_max[i] = result.objective;
      }
    }
  }

  geo.feasible = true;
  // Audit: the 2d+1 LP answers describe one region, so they must agree with
  // each other (centre in rectangle, e_min ≤ e_max, centre feasible for H).
  if (audit::ShouldCheck(audit::Checker::kAaGeometry)) {
    audit::Auditor().Record(audit::Checker::kAaGeometry, "ComputeAaGeometry",
                            audit::CheckAaGeometry(geo, h, 1e-6));
  }
  return geo;
}

double FeasibilityMargin(size_t d, const std::vector<LearnedHalfspace>& h,
                         const Halfspace& candidate,
                         size_t max_lp_iterations) {
  // maximise x s.t. u on simplex, normal·u − offset ≥ x for every half-space
  // (existing ∪ candidate); x free.
  lp::Model model;
  for (size_t i = 0; i < d; ++i) model.AddVariable(0.0);
  size_t x_var = model.AddVariable(1.0, /*nonneg=*/false);
  AddSimplexConstraints(&model, d);
  auto add = [&](const Halfspace& hs) {
    Vec row(d + 1);
    for (size_t c = 0; c < d; ++c) row[c] = hs.normal[c];
    row[x_var] = -1.0;
    model.AddConstraint(row, lp::Relation::kGe, hs.offset);
  };
  for (const LearnedHalfspace& lh : h) add(lh.h);
  add(candidate);
  lp::SolveResult result =
      lp::SolveWithRecovery(model, LpOptions(max_lp_iterations));
  if (!result.ok()) return 0.0;
  return result.objective;
}

Vec EncodeAaState(const AaGeometry& geometry) {
  ISRL_CHECK(geometry.feasible);
  Vec state = geometry.inner.center;
  state.PushBack(geometry.inner.radius);
  state.Append(geometry.e_min);
  state.Append(geometry.e_max);
  ISRL_CHECK_EQ(state.dim(), AaStateDim(geometry.e_min.dim()));
  // Audit: AA states are LP outputs — a non-finite entry means an LP
  // answer escaped its own diagnostics.
  if (audit::ShouldCheck(audit::Checker::kNnFinite)) {
    audit::Auditor().Record(audit::Checker::kNnFinite, "EncodeAaState",
                            audit::CheckFiniteVec(state, "AA state"));
  }
  return state;
}

}  // namespace isrl
