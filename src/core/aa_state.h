// AA's state representation (Section IV-C MDP: State).
//
// AA never materialises R; it keeps only the set H of learned half-spaces
// and describes R through two LP-computed summaries: the inner sphere (the
// largest ball centred in R and inside every half-space) and the outer
// rectangle (per-dimension min/max of u over R). The state vector is the
// concatenation (B_c, B_r, e_min, e_max): 3d + 1 values.
#ifndef ISRL_CORE_AA_STATE_H_
#define ISRL_CORE_AA_STATE_H_

#include <vector>

#include "common/status.h"
#include "common/vec.h"
#include "geometry/enclosing_ball.h"
#include "geometry/halfspace.h"

namespace isrl {

/// One learned half-space with its defining pair (winner preferred to loser).
struct LearnedHalfspace {
  size_t winner = 0;
  size_t loser = 0;
  Halfspace h;  ///< { u : (p_winner − p_loser) · u ≥ 0 }
};

/// LP-computed geometry of R = U ∩ H.
struct AaGeometry {
  bool feasible = false;  ///< false ⇒ H is contradictory (noisy users)
  Ball inner;             ///< inner sphere (B_c, B_r)
  Vec e_min, e_max;       ///< outer rectangle corners
};

/// Computes the inner sphere and outer rectangle from the half-space set via
/// the Section IV-C linear programs (2d + 1 LP solves). In addition to the
/// paper's constraints, the inner sphere is kept inside the simplex facets
/// (B_c[i] ≥ B_r) so the LP stays bounded when H is small; see DESIGN.md.
/// LPs run through lp::SolveWithRecovery; `max_lp_iterations` (0 = solver
/// default) caps each solve, for budgeted sessions. Degenerate (zero-normal)
/// half-spaces are skipped rather than fatal.
///
/// The 2d rectangle LPs share constraint structure and differ only in
/// objective, so by default they run through lp::FamilySolver, which runs
/// simplex phase 1 once and replays it per member — each answer stays
/// bit-identical to its own SolveWithRecovery (DESIGN.md §17), so encoded AA
/// states and checkpoints are unchanged. `share_rectangle_lps = false`
/// forces the independent per-LP seed path (the benchmark baseline).
[[nodiscard]] AaGeometry ComputeAaGeometry(
    size_t d, const std::vector<LearnedHalfspace>& h,
    size_t max_lp_iterations = 0, bool share_rectangle_lps = true);

/// Largest margin x such that some u ∈ U satisfies every half-space of `h`
/// plus `candidate` with slack ≥ x (the Section IV-C feasibility LP). R ∩
/// candidate is strictly non-empty iff the result is positive. Returns 0 on
/// LP failure.
[[nodiscard]] double FeasibilityMargin(size_t d,
                                       const std::vector<LearnedHalfspace>& h,
                                       const Halfspace& candidate,
                                       size_t max_lp_iterations = 0);

/// State vector (B_c ⊕ B_r ⊕ e_min ⊕ e_max); geometry must be feasible.
Vec EncodeAaState(const AaGeometry& geometry);

/// Dimension of the encoded state: 3d + 1.
size_t AaStateDim(size_t d);

}  // namespace isrl

#endif  // ISRL_CORE_AA_STATE_H_
