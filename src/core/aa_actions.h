// AA's restricted action space (Section IV-C MDP: Action).
//
// The ideal question's hyper-plane bisects R. Without exact geometry, AA
// estimates each pair's split balance directly: the fraction of utility
// vectors sampled from R (hit-and-run around the inner-sphere centre) that
// prefer p_i. Sample disagreement also witnesses Lemma 8's two-sided
// feasibility — every sample lies in R, so a split sample proves both sides
// non-empty without an LP. Pairs are ranked by |fraction − ½| per unit of
// outer-rectangle width their normal addresses (progress towards the
// stopping certificate).
//
// Scanning all O(n²) pairs is the complexity wall the paper calls out; we
// form the candidate pool exactly the way EA forms P_R — the distinct top-1
// points of the sampled utility vectors — so the pool tracks the region of
// D still in contention.
#ifndef ISRL_CORE_AA_ACTIONS_H_
#define ISRL_CORE_AA_ACTIONS_H_

#include <vector>

#include "common/rng.h"
#include "core/aa_state.h"
#include "core/algorithm.h"
#include "data/dataset.h"

namespace isrl {

/// Knobs for AA's action-space construction.
struct AaActionOptions {
  size_t m_h = 5;             ///< action-space size (paper §V: 5)
  size_t pool_samples = 64;   ///< utility samples that seed the point pool
  double margin_tol = 1e-7;   ///< strict-feasibility margin threshold
};

/// A candidate question with the geometric descriptors the Q-network uses
/// as action features (so the policy can rank candidates without having to
/// re-derive second-order geometry from raw coordinates).
struct AaAction {
  Question q;
  double balance = 0.5;     ///< fraction of R-samples preferring q.i (∈ (0,1))
  double alignment = 0.0;   ///< Σ_k |n̂_k|·width_k — rectangle progress
  double center_dist = 0.0; ///< hyper-plane distance to the inner centre
};

/// Builds up to m_h candidates: pairs over the contention pool whose both
/// sides provably intersect R, the best-scored half first and a random
/// diverse half after. Empty when no pair splits R (interaction cannot
/// progress further).
std::vector<AaAction> BuildAaActionSpace(
    const Dataset& data, const std::vector<LearnedHalfspace>& h,
    const AaGeometry& geometry, const AaActionOptions& options, Rng& rng);

}  // namespace isrl

#endif  // ISRL_CORE_AA_ACTIONS_H_
