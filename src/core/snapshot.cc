#include "core/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/strings.h"

namespace isrl::snapshot {

namespace {

constexpr char kMagic[4] = {'I', 'S', 'R', 'L'};
constexpr uint32_t kCrcPoly = 0xEDB88320u;

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (kCrcPoly ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const std::string& bytes) {
  const std::array<uint32_t, 256>& table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (char ch : bytes) {
    c = table[(c ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---- Frame. ---------------------------------------------------------------

std::string WrapFrame(const std::string& kind, uint32_t version,
                      const std::string& payload) {
  Writer w;
  for (char m : kMagic) w.U8(static_cast<uint8_t>(m));
  w.Str(kind);
  w.U32(version);
  w.U64(payload.size());
  std::string frame = w.Take();
  frame += payload;
  Writer crc;
  crc.U32(Crc32(payload));
  frame += crc.bytes();
  return frame;
}

Result<std::string> UnwrapFrame(const std::string& kind, uint32_t version,
                                const std::string& bytes) {
  Reader r(bytes);
  char magic[4] = {};
  for (char& m : magic) m = static_cast<char>(r.U8());
  if (r.failed() || magic[0] != kMagic[0] || magic[1] != kMagic[1] ||
      magic[2] != kMagic[2] || magic[3] != kMagic[3]) {
    return Status::InvalidArgument(
        "snapshot frame: bad magic (not an ISRL snapshot)");
  }
  std::string got_kind = r.Str();
  if (r.failed()) {
    return Status::InvalidArgument("snapshot frame: truncated kind tag");
  }
  if (got_kind != kind) {
    return Status::InvalidArgument(Format(
        "snapshot frame: kind mismatch (snapshot holds a '%s', expected "
        "'%s')",
        got_kind.c_str(), kind.c_str()));
  }
  uint32_t got_version = r.U32();
  if (r.failed()) {
    return Status::InvalidArgument("snapshot frame: truncated version field");
  }
  if (got_version != version) {
    return Status::InvalidArgument(
        Format("snapshot frame: version skew ('%s' version %u, this build "
               "reads version %u)",
               kind.c_str(), got_version, version));
  }
  uint64_t payload_size = r.U64();
  if (r.failed()) {
    return Status::InvalidArgument("snapshot frame: truncated size field");
  }
  // Header = magic(4) + kind(8 + len) + version(4) + size(8).
  const size_t header = 4 + 8 + got_kind.size() + 4 + 8;
  if (payload_size > bytes.size() || bytes.size() - header < payload_size + 4) {
    return Status::InvalidArgument(Format(
        "snapshot frame: truncated ('%s' payload of %llu bytes does not fit "
        "in %llu remaining)",
        kind.c_str(), static_cast<unsigned long long>(payload_size),
        static_cast<unsigned long long>(
            bytes.size() > header ? bytes.size() - header : 0)));
  }
  if (bytes.size() != header + payload_size + 4) {
    return Status::InvalidArgument(
        Format("snapshot frame: %llu trailing bytes after '%s' frame",
               static_cast<unsigned long long>(bytes.size() - header -
                                               payload_size - 4),
               kind.c_str()));
  }
  std::string payload = bytes.substr(header, payload_size);
  // Read the stored CRC from the final four bytes.
  uint32_t stored = 0;
  for (size_t i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(
                  static_cast<uint8_t>(bytes[header + payload_size + i]))
              << (8 * i);
  }
  const uint32_t computed = Crc32(payload);
  if (stored != computed) {
    return Status::InvalidArgument(
        Format("snapshot frame: CRC mismatch on '%s' payload (stored "
               "%08x, computed %08x) — snapshot is corrupted",
               kind.c_str(), stored, computed));
  }
  return payload;
}

Status ReadFrameAt(const std::string& bytes, size_t* pos, std::string* kind,
                   uint32_t* version, std::string* payload) {
  const size_t start = *pos;
  if (start > bytes.size()) {
    return Status::InvalidArgument("snapshot frame: scan position past end");
  }
  // The Reader has no seek, so parse a copy of the remaining bytes. Scan
  // cost is frames × remaining-size — recovery-time only, never on the
  // serving path.
  const std::string rest = bytes.substr(start);
  Reader rr(rest);
  char magic[4] = {};
  for (char& m : magic) m = static_cast<char>(rr.U8());
  if (rr.failed() || magic[0] != kMagic[0] || magic[1] != kMagic[1] ||
      magic[2] != kMagic[2] || magic[3] != kMagic[3]) {
    return Status::InvalidArgument(
        "snapshot frame: bad magic (not an ISRL snapshot)");
  }
  std::string got_kind = rr.Str();
  if (rr.failed()) {
    return Status::InvalidArgument("snapshot frame: truncated kind tag");
  }
  uint32_t got_version = rr.U32();
  if (rr.failed()) {
    return Status::InvalidArgument("snapshot frame: truncated version field");
  }
  uint64_t payload_size = rr.U64();
  if (rr.failed()) {
    return Status::InvalidArgument("snapshot frame: truncated size field");
  }
  const size_t header = 4 + 8 + got_kind.size() + 4 + 8;
  if (payload_size > rest.size() || rest.size() - header < payload_size + 4) {
    return Status::InvalidArgument(Format(
        "snapshot frame: truncated ('%s' payload of %llu bytes does not fit "
        "in %llu remaining)",
        got_kind.c_str(), static_cast<unsigned long long>(payload_size),
        static_cast<unsigned long long>(
            rest.size() > header ? rest.size() - header : 0)));
  }
  std::string got_payload = rest.substr(header, payload_size);
  uint32_t stored = 0;
  for (size_t i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(
                  static_cast<uint8_t>(rest[header + payload_size + i]))
              << (8 * i);
  }
  const uint32_t computed = Crc32(got_payload);
  if (stored != computed) {
    return Status::InvalidArgument(
        Format("snapshot frame: CRC mismatch on '%s' payload (stored "
               "%08x, computed %08x) — snapshot is corrupted",
               got_kind.c_str(), stored, computed));
  }
  *pos = start + header + payload_size + 4;
  *kind = std::move(got_kind);
  *version = got_version;
  *payload = std::move(got_payload);
  return Status::Ok();
}

// ---- Writer. --------------------------------------------------------------

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void Writer::Str(const std::string& s) {
  U64(s.size());
  out_.append(s);
}

// ---- Reader. --------------------------------------------------------------

bool Reader::Need(size_t n) {
  if (failed_) return false;
  if (bytes_.size() - pos_ < n) {
    Fail("unexpected end of payload");
    return false;
  }
  return true;
}

void Reader::Fail(const std::string& message) {
  if (!failed_) {
    failed_ = true;
    message_ = message;
  }
}

uint8_t Reader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(bytes_[pos_++]);
}

uint32_t Reader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
         << (8 * i);
  }
  return v;
}

uint64_t Reader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
         << (8 * i);
  }
  return v;
}

double Reader::F64() { return std::bit_cast<double>(U64()); }

double Reader::FiniteF64() {
  double v = F64();
  if (!failed_ && !std::isfinite(v)) {
    Fail("non-finite value in payload");
    return 0.0;
  }
  return v;
}

std::string Reader::Str() {
  uint64_t n = U64();
  if (failed_) return std::string();
  if (!Need(n)) return std::string();
  std::string s = bytes_.substr(pos_, n);
  pos_ += n;
  return s;
}

Status Reader::status() const {
  if (!failed_) return Status::Ok();
  return Status::InvalidArgument("snapshot payload: " + message_);
}

// ---- Value codecs. --------------------------------------------------------

namespace {

/// Shared epilogue: surface the reader's sticky failure as the codec Status.
Status Finish(const Reader& r, const char* what) {
  if (r.failed()) {
    return Status::InvalidArgument(std::string(what) + ": " +
                                   r.status().message());
  }
  return Status::Ok();
}

}  // namespace

void EncodeRng(const Rng& rng, Writer* w) {
  w->U64(rng.seed());
  std::ostringstream os;
  os << rng.engine();
  w->Str(os.str());
}

Status DecodeRng(Reader* r, Rng* out) {
  uint64_t seed = r->U64();
  std::string state = r->Str();
  ISRL_RETURN_IF_ERROR(Finish(*r, "rng snapshot"));
  Rng restored(seed);
  std::istringstream is(state);
  is >> restored.engine();
  if (is.fail()) {
    r->Fail("malformed mt19937_64 engine state");
    return Status::InvalidArgument(
        "rng snapshot: malformed mt19937_64 engine state");
  }
  *out = restored;
  return Status::Ok();
}

void EncodeVec(const Vec& v, Writer* w) {
  w->U64(v.dim());
  for (size_t i = 0; i < v.dim(); ++i) w->F64(v[i]);
}

Status DecodeVec(Reader* r, Vec* out) {
  uint64_t dim = r->U64();
  if (!r->failed() && dim > kMaxElements) {
    r->Fail("vector dimension exceeds the element ceiling");
  }
  std::vector<double> data;
  if (!r->failed()) {
    data.reserve(dim);
    for (uint64_t i = 0; i < dim && !r->failed(); ++i) {
      data.push_back(r->FiniteF64());
    }
  }
  ISRL_RETURN_IF_ERROR(Finish(*r, "vector snapshot"));
  *out = Vec(std::move(data));
  return Status::Ok();
}

void EncodeMatrix(const Matrix& m, Writer* w) {
  w->U64(m.rows());
  w->U64(m.cols());
  for (double v : m.data()) w->F64(v);
}

Status DecodeMatrix(Reader* r, Matrix* out) {
  uint64_t rows = r->U64();
  uint64_t cols = r->U64();
  if (!r->failed() &&
      (rows > kMaxElements || cols > kMaxElements ||
       (cols != 0 && rows > kMaxElements / cols))) {
    r->Fail("matrix shape exceeds the element ceiling");
  }
  std::vector<double> data;
  if (!r->failed()) {
    data.reserve(rows * cols);
    for (uint64_t i = 0; i < rows * cols && !r->failed(); ++i) {
      data.push_back(r->FiniteF64());
    }
  }
  ISRL_RETURN_IF_ERROR(Finish(*r, "matrix snapshot"));
  *out = Matrix(rows, cols, std::move(data));
  return Status::Ok();
}

void EncodeHalfspace(const Halfspace& h, Writer* w) {
  EncodeVec(h.normal, w);
  w->F64(h.offset);
}

Status DecodeHalfspace(Reader* r, Halfspace* out) {
  Vec normal;
  ISRL_RETURN_IF_ERROR(DecodeVec(r, &normal));
  double offset = r->FiniteF64();
  ISRL_RETURN_IF_ERROR(Finish(*r, "halfspace snapshot"));
  out->normal = std::move(normal);
  out->offset = offset;
  return Status::Ok();
}

void EncodeLearnedHalfspace(const LearnedHalfspace& lh, Writer* w) {
  w->U64(lh.winner);
  w->U64(lh.loser);
  EncodeHalfspace(lh.h, w);
}

Status DecodeLearnedHalfspace(Reader* r, LearnedHalfspace* out,
                              uint64_t max_index) {
  uint64_t winner = r->U64();
  uint64_t loser = r->U64();
  Halfspace h;
  ISRL_RETURN_IF_ERROR(DecodeHalfspace(r, &h));
  if (winner >= max_index || loser >= max_index) {
    r->Fail("learned halfspace pair index out of range");
    return Status::InvalidArgument(
        "learned halfspace snapshot: pair index out of dataset range");
  }
  out->winner = static_cast<size_t>(winner);
  out->loser = static_cast<size_t>(loser);
  out->h = std::move(h);
  return Status::Ok();
}

void EncodePolyhedron(const Polyhedron& p, Writer* w) {
  w->U64(p.dim());
  w->U64(p.cuts().size());
  for (const Halfspace& h : p.cuts()) EncodeHalfspace(h, w);
  w->U64(p.vertices().size());
  for (const Vec& v : p.vertices()) EncodeVec(v, w);
}

Result<Polyhedron> DecodePolyhedron(Reader* r) {
  uint64_t dim = r->U64();
  uint64_t num_cuts = r->U64();
  if (!r->failed() && (dim > kMaxElements || num_cuts > kMaxElements)) {
    r->Fail("polyhedron shape exceeds the element ceiling");
  }
  std::vector<Halfspace> cuts;
  for (uint64_t i = 0; i < num_cuts && !r->failed(); ++i) {
    Halfspace h;
    ISRL_RETURN_IF_ERROR(DecodeHalfspace(r, &h));
    cuts.push_back(std::move(h));
  }
  uint64_t num_vertices = r->U64();
  if (!r->failed() && num_vertices > kMaxElements) {
    r->Fail("polyhedron vertex count exceeds the element ceiling");
  }
  std::vector<Vec> vertices;
  for (uint64_t i = 0; i < num_vertices && !r->failed(); ++i) {
    Vec v;
    ISRL_RETURN_IF_ERROR(DecodeVec(r, &v));
    vertices.push_back(std::move(v));
  }
  ISRL_RETURN_IF_ERROR(Finish(*r, "polyhedron snapshot"));
  Result<Polyhedron> p = Polyhedron::FromSnapshotParts(
      dim, Polyhedron::Options(), std::move(cuts), std::move(vertices));
  if (!p.ok()) r->Fail(p.status().message());
  return p;
}

void EncodeDeadline(const Deadline& d, Writer* w) {
  w->Bool(d.armed());
  w->F64(d.armed() ? d.RemainingSeconds() : 0.0);
}

Status DecodeDeadline(Reader* r, Deadline* out) {
  bool armed = r->Bool();
  double remaining = r->FiniteF64();
  ISRL_RETURN_IF_ERROR(Finish(*r, "deadline snapshot"));
  *out = armed ? Deadline::After(remaining) : Deadline();
  return Status::Ok();
}

void EncodeInteractionResult(const InteractionResult& result, Writer* w) {
  w->U64(result.best_index);
  w->U64(result.rounds);
  w->F64(result.seconds);
  w->U8(static_cast<uint8_t>(result.termination));
  w->U64(result.dropped_answers);
  w->U64(result.no_answers);
  w->U8(static_cast<uint8_t>(result.status.code()));
  w->Str(result.status.message());
}

Status DecodeInteractionResult(Reader* r, InteractionResult* out) {
  InteractionResult result;
  result.best_index = static_cast<size_t>(r->U64());
  result.rounds = static_cast<size_t>(r->U64());
  result.seconds = r->FiniteF64();
  uint8_t termination = r->U8();
  if (!r->failed() && termination > static_cast<uint8_t>(Termination::kAborted)) {
    r->Fail("termination enum out of range");
  }
  result.dropped_answers = static_cast<size_t>(r->U64());
  result.no_answers = static_cast<size_t>(r->U64());
  uint8_t code = r->U8();
  if (!r->failed() && code > static_cast<uint8_t>(StatusCode::kUnbounded)) {
    r->Fail("status code out of range");
  }
  std::string message = r->Str();
  ISRL_RETURN_IF_ERROR(Finish(*r, "interaction result snapshot"));
  result.termination = static_cast<Termination>(termination);
  result.converged = result.termination == Termination::kConverged;
  result.status = Status(static_cast<StatusCode>(code), std::move(message));
  *out = result;
  return Status::Ok();
}

void EncodeSessionQuestion(const SessionQuestion& q, Writer* w) {
  EncodeVec(q.first, w);
  EncodeVec(q.second, w);
  w->U64(q.pair.i);
  w->U64(q.pair.j);
  w->Bool(q.synthetic);
}

Status DecodeSessionQuestion(Reader* r, SessionQuestion* out) {
  SessionQuestion q;
  ISRL_RETURN_IF_ERROR(DecodeVec(r, &q.first));
  ISRL_RETURN_IF_ERROR(DecodeVec(r, &q.second));
  q.pair.i = static_cast<size_t>(r->U64());
  q.pair.j = static_cast<size_t>(r->U64());
  q.synthetic = r->Bool();
  ISRL_RETURN_IF_ERROR(Finish(*r, "session question snapshot"));
  *out = std::move(q);
  return Status::Ok();
}

void EncodeIndexVector(const std::vector<size_t>& v, Writer* w) {
  w->U64(v.size());
  for (size_t idx : v) w->U64(idx);
}

Status DecodeIndexVector(Reader* r, std::vector<size_t>* out, uint64_t bound) {
  uint64_t n = r->U64();
  if (!r->failed() && n > kMaxElements) {
    r->Fail("index vector length exceeds the element ceiling");
  }
  std::vector<size_t> v;
  if (!r->failed()) {
    v.reserve(n);
    for (uint64_t i = 0; i < n && !r->failed(); ++i) {
      uint64_t idx = r->U64();
      if (!r->failed() && idx >= bound) {
        r->Fail("index vector entry out of range");
      }
      v.push_back(static_cast<size_t>(idx));
    }
  }
  ISRL_RETURN_IF_ERROR(Finish(*r, "index vector snapshot"));
  *out = std::move(v);
  return Status::Ok();
}

void EncodeTrace(const InteractionTrace& trace, Writer* w) {
  w->U64(trace.rounds());
  for (double v : trace.max_regret()) w->F64(v);
  for (double v : trace.cumulative_seconds()) w->F64(v);
  for (size_t v : trace.best_index()) w->U64(v);
}

Status DecodeTrace(Reader* r, std::vector<double>* max_regret,
                   std::vector<double>* cumulative_seconds,
                   std::vector<size_t>* best_index) {
  uint64_t rounds = r->U64();
  if (!r->failed() && rounds > kMaxElements) {
    r->Fail("trace length exceeds the element ceiling");
  }
  std::vector<double> mr, cs;
  std::vector<size_t> bi;
  if (!r->failed()) {
    mr.reserve(rounds);
    cs.reserve(rounds);
    bi.reserve(rounds);
    for (uint64_t i = 0; i < rounds && !r->failed(); ++i) {
      mr.push_back(r->FiniteF64());
    }
    for (uint64_t i = 0; i < rounds && !r->failed(); ++i) {
      cs.push_back(r->FiniteF64());
    }
    for (uint64_t i = 0; i < rounds && !r->failed(); ++i) {
      bi.push_back(static_cast<size_t>(r->U64()));
    }
  }
  ISRL_RETURN_IF_ERROR(Finish(*r, "trace snapshot"));
  *max_regret = std::move(mr);
  *cumulative_seconds = std::move(cs);
  *best_index = std::move(bi);
  return Status::Ok();
}

Status DecodeTraceInto(Reader* r, InteractionTrace* trace) {
  std::vector<double> max_regret, cumulative_seconds;
  std::vector<size_t> best_index;
  ISRL_RETURN_IF_ERROR(
      DecodeTrace(r, &max_regret, &cumulative_seconds, &best_index));
  trace->RestoreHistory(std::move(max_regret), std::move(cumulative_seconds),
                        std::move(best_index));
  return Status::Ok();
}

// ---- Session core. --------------------------------------------------------

void EncodeSessionCore(const SessionCore& core, Writer* w) {
  w->Str(core.algorithm);
  w->U64(core.data_size);
  w->U64(core.data_dim);
  EncodeInteractionResult(core.result, w);
  w->U64(core.max_rounds);
  EncodeDeadline(core.deadline, w);
  w->U8(core.stage);
  EncodeSessionQuestion(core.question, w);
  w->Bool(core.has_rng);
  if (core.has_rng) EncodeRng(core.rng, w);
  w->Bool(core.trace != nullptr);
  if (core.trace != nullptr) EncodeTrace(*core.trace, w);
}

Status DecodeSessionCore(Reader* r, SessionCore* out) {
  SessionCore core;
  core.algorithm = r->Str();
  core.data_size = r->U64();
  core.data_dim = r->U64();
  ISRL_RETURN_IF_ERROR(DecodeInteractionResult(r, &core.result));
  core.max_rounds = r->U64();
  ISRL_RETURN_IF_ERROR(DecodeDeadline(r, &core.deadline));
  core.stage = r->U8();
  if (!r->failed() && core.stage > kStageFinished) {
    r->Fail("session stage out of range");
  }
  ISRL_RETURN_IF_ERROR(DecodeSessionQuestion(r, &core.question));
  core.has_rng = r->Bool();
  if (core.has_rng) ISRL_RETURN_IF_ERROR(DecodeRng(r, &core.rng));
  core.has_trace = r->Bool();
  if (core.has_trace) {
    ISRL_RETURN_IF_ERROR(DecodeTrace(r, &core.trace_max_regret,
                                     &core.trace_seconds,
                                     &core.trace_best_index));
  }
  ISRL_RETURN_IF_ERROR(Finish(*r, "session core snapshot"));
  if (core.result.best_index >= core.data_size) {
    return Status::InvalidArgument(
        "session core snapshot: best_index out of dataset range");
  }
  *out = std::move(core);
  return Status::Ok();
}

Status ValidateSessionCore(const SessionCore& core,
                           const std::string& algorithm_name,
                           size_t data_size, size_t data_dim) {
  if (core.algorithm != algorithm_name) {
    return Status::FailedPrecondition(
        Format("session snapshot belongs to algorithm '%s', cannot restore "
               "under '%s'",
               core.algorithm.c_str(), algorithm_name.c_str()));
  }
  if (core.data_size != data_size || core.data_dim != data_dim) {
    return Status::FailedPrecondition(Format(
        "session snapshot was taken on a %llu-point, %llu-dimensional "
        "dataset; this algorithm serves %llu points in %llu dimensions",
        static_cast<unsigned long long>(core.data_size),
        static_cast<unsigned long long>(core.data_dim),
        static_cast<unsigned long long>(data_size),
        static_cast<unsigned long long>(data_dim)));
  }
  return Status::Ok();
}

// ---- Files. ---------------------------------------------------------------

namespace {

/// One-shot short-write budget for the durability suite (kNoShortWrite =
/// disarmed). Consumed by the next WriteFileBytes/AppendFileBytes call.
std::atomic<size_t> g_short_write_budget{kNoShortWrite};

size_t ConsumeShortWriteBudget() {
  return g_short_write_budget.exchange(kNoShortWrite);
}

/// Writes all of `bytes` to `fd`, honouring an armed short-write budget
/// (which simulates the process dying after `budget` bytes hit the file).
Status WriteAllFd(int fd, const std::string& bytes, const std::string& path,
                  size_t budget) {
  const bool injected = budget < bytes.size();
  size_t limit = injected ? budget : bytes.size();
  size_t written = 0;
  while (written < limit) {
    ssize_t n = ::write(fd, bytes.data() + written, limit - written);
    if (n < 0) {
      return Status::IoError("write failure on '" + path + "'");
    }
    written += static_cast<size_t>(n);
  }
  if (injected) {
    return Status::IoError("short write to '" + path +
                           "' (injected crash for testing)");
  }
  return Status::Ok();
}

/// fsyncs the directory containing `path` so a just-renamed file's
/// directory entry is durable too. Best-effort: some filesystems refuse
/// directory fsync; the rename itself is already atomic.
void SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
}

}  // namespace

void SetShortWriteForTesting(size_t max_bytes) {
  g_short_write_budget.store(max_bytes);
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  // Write-to-temp + rename: the target is replaced atomically, so a crash
  // (or an injected short write) at any byte leaves the previous file
  // intact instead of a torn, CRC-failing mixture.
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IoError("cannot open '" + tmp + "' for writing");
  }
  Status written = WriteAllFd(fd, bytes, tmp, ConsumeShortWriteBudget());
  if (written.ok() && ::fsync(fd) != 0) {
    written = Status::IoError("fsync failure on '" + tmp + "'");
  }
  if (::close(fd) != 0 && written.ok()) {
    written = Status::IoError("close failure on '" + tmp + "'");
  }
  if (!written.ok()) {
    (void)::unlink(tmp.c_str());
    return written;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' over '" + path + "'");
  }
  SyncParentDir(path);
  return Status::Ok();
}

Status AppendFileBytes(const std::string& path, const std::string& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "' for appending");
  }
  Status written = WriteAllFd(fd, bytes, path, ConsumeShortWriteBudget());
  if (written.ok() && ::fsync(fd) != 0) {
    written = Status::IoError("fsync failure on '" + path + "'");
  }
  if (::close(fd) != 0 && written.ok()) {
    written = Status::IoError("close failure on '" + path + "'");
  }
  return written;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failure on '" + path + "'");
  }
  return buffer.str();
}

}  // namespace isrl::snapshot
