// Multi-session scheduler: interleaves many sans-IO interaction sessions on
// one thread and coalesces their candidate-scoring work into shared batched
// inference calls (DESIGN.md §13).
//
// One in-flight user no longer pins a thread: the scheduler holds every
// session between its PostAnswer and the next NextQuestion, and each Tick()
// advances all runnable sessions at once. RL sessions (EA/AA) that are
// about to pick a question expose their row-stacked candidate features
// through the InteractionSession scoring protocol; the scheduler stacks the
// rows of every runnable session that shares a Q-network into ONE
// Network::PredictBatch call per tick — the PR-4 GEMM kernels finally run
// at cross-session batch sizes instead of one round's pool. Because
// PredictBatch is bit-identical per row at any batch size and the argmax is
// per-session, every session still picks exactly the action it would have
// picked scoring itself: scheduler results equal sequential Interact()
// results whenever the sessions are seeded (SessionConfig::seed).
#ifndef ISRL_CORE_SCHEDULER_H_
#define ISRL_CORE_SCHEDULER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "core/algorithm.h"
#include "user/user.h"

namespace isrl {

/// A question emitted by Tick(): which session asks it, and what it asks.
struct PendingQuestion {
  size_t session_id = 0;
  SessionQuestion question;
};

/// Single-threaded cooperative scheduler over InteractionSessions. Typical
/// drive loop:
///
///   SessionScheduler scheduler;
///   for (...) scheduler.Add(algorithm.StartSession(config));  // seeded!
///   while (scheduler.active() > 0) {
///     for (const PendingQuestion& pq : scheduler.Tick()) {
///       scheduler.PostAnswer(pq.session_id, AnswerSomehow(pq.question));
///     }
///   }
///   ... scheduler.Take(id) ...
///
/// Answers may arrive in any order and across any number of ticks — a
/// session whose user is still thinking simply stays out of the next
/// tick's batch. Determinism: sessions are processed in id order and the
/// coalesced batch only changes *which rows share a GEMM call*, never a
/// row's scores, so results are independent of answer arrival order.
class SessionScheduler {
 public:
  using SessionId = size_t;

  /// Adopts a session; returns its id (dense, starting at 0). Sessions of
  /// stochastic algorithms MUST be seeded (SessionConfig::seed) — unseeded
  /// sessions share the algorithm's member Rng, whose draw order would then
  /// depend on scheduling.
  SessionId Add(std::unique_ptr<InteractionSession> session);

  /// Advances every runnable session to its next question. First coalesces
  /// pending candidate scoring: the feature rows of all runnable sessions
  /// are grouped by scoring network (in first-seen session order), each
  /// group runs one PredictBatch, and the per-session slices are posted
  /// back. Then NextQuestion() is collected per session in id order.
  /// Sessions that terminate contribute no question and become finished.
  std::vector<PendingQuestion> Tick();

  /// Delivers a user's answer; the session becomes runnable for the next
  /// Tick(). The id must currently be awaiting an answer.
  void PostAnswer(SessionId id, Answer answer);

  /// Cancels a session mid-episode (the user walked away); it finishes with
  /// its best-so-far recommendation. No-op when already finished.
  void Cancel(SessionId id);

  bool finished(SessionId id) const;

  /// The finished session's result (invalidates the slot).
  InteractionResult Take(SessionId id);

  /// Sessions not yet finished.
  size_t active() const { return active_; }
  size_t size() const { return slots_.size(); }

 private:
  enum class SlotState { kRunnable, kAwaitingAnswer, kFinished, kTaken };

  struct Slot {
    std::unique_ptr<InteractionSession> session;
    SlotState state = SlotState::kRunnable;
  };

  std::vector<Slot> slots_;
  size_t active_ = 0;
};

/// Convenience driver for simulation: answers every pending question from
/// the per-session oracle `users[id]` until all sessions finish. Returns
/// the results in session-id order. This is the batched counterpart of N
/// sequential Interact() calls — identical results (for seeded sessions),
/// one coalesced PredictBatch per network per tick instead of one per
/// session per round.
std::vector<InteractionResult> DriveWithUsers(
    SessionScheduler& scheduler,
    const std::vector<UserOracle*>& users);

}  // namespace isrl

#endif  // ISRL_CORE_SCHEDULER_H_
