// Multi-session scheduler: interleaves many sans-IO interaction sessions on
// one thread and coalesces their candidate-scoring work into shared batched
// inference calls (DESIGN.md §13).
//
// One in-flight user no longer pins a thread: the scheduler holds every
// session between its PostAnswer and the next NextQuestion, and each Tick()
// advances all runnable sessions at once. RL sessions (EA/AA) that are
// about to pick a question expose their row-stacked candidate features
// through the InteractionSession scoring protocol; the scheduler stacks the
// rows of every runnable session pinning the same ModelSnapshot into ONE
// batched Score call per tick — the PR-4 GEMM kernels finally run at
// cross-session batch sizes instead of one round's pool, and after a
// registry hot-swap (DESIGN.md §18) old-pin and new-pin sessions simply
// form separate groups. Because batched scoring is bit-identical per row at
// any batch size and the argmax is per-session, every session still picks
// exactly the action it would have picked scoring itself: scheduler results
// equal sequential Interact() results whenever the sessions are seeded
// (SessionConfig::seed).
// Durability (DESIGN.md §14): the scheduler's population can be checkpointed
// as one framed blob (CheckpointAll/RestoreAll), and SessionStore adds a
// write-ahead answer log on top — every answer is logged before it is
// applied, so replaying "last population snapshot + WAL" reconstructs the
// exact pre-crash state. DriveWithUsersDurable is the crash-safe driver (and
// crash-injection harness) over those pieces.
#ifndef ISRL_CORE_SCHEDULER_H_
#define ISRL_CORE_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/algorithm.h"
#include "core/metrics.h"
#include "user/user.h"

namespace isrl {

/// A question emitted by Tick(): which session asks it, and what it asks.
struct PendingQuestion {
  size_t session_id = 0;
  SessionQuestion question;
};

/// Maps an algorithm name (InteractiveAlgorithm::name()) to the live
/// instance that should reopen its sessions at restore time. Returning
/// nullptr means "unknown algorithm": the slot degrades to an aborted
/// session instead of failing the whole restore.
using AlgorithmResolver =
    std::function<InteractiveAlgorithm*(const std::string& name)>;

/// Called once per session as it finishes (terminates, cancels, or arrives
/// already-finished), with the session id and its distilled trace record —
/// the feed of the continuous-learning loop (DESIGN.md §18). Invoked
/// synchronously from Tick()/TryCancel()/Add(), so it must not call back
/// into the scheduler.
using HarvestSink = std::function<void(size_t, const SessionTraceRecord&)>;

/// Single-threaded cooperative scheduler over InteractionSessions. Typical
/// drive loop:
///
///   SessionScheduler scheduler;
///   for (...) scheduler.Add(algorithm.StartSession(config));  // seeded!
///   while (scheduler.active() > 0) {
///     for (const PendingQuestion& pq : scheduler.Tick()) {
///       scheduler.PostAnswer(pq.session_id, AnswerSomehow(pq.question));
///     }
///   }
///   ... scheduler.Take(id) ...
///
/// Answers may arrive in any order and across any number of ticks — a
/// session whose user is still thinking simply stays out of the next
/// tick's batch. Determinism: sessions are processed in id order and the
/// coalesced batch only changes *which rows share a GEMM call*, never a
/// row's scores, so results are independent of answer arrival order.
///
/// Concurrency contract (DESIGN.md §16): a SessionScheduler is NOT
/// internally synchronized — it is a single-threaded object that holds no
/// locks of its own. When one is reached from more than one thread, every
/// access must be externally serialized by a capability the callers share;
/// the sharded serving engine does exactly that, embedding each shard's
/// scheduler as `SessionScheduler scheduler ISRL_GUARDED_BY(exec_mu)`
/// (serve/sharding.h), so the clang thread-safety lane proves no call —
/// Tick, TryPostAnswer, TryTake, CheckpointAll — slips outside the lock.
/// Keep it this way: adding internal locking here would hide lock-order
/// relationships from the analysis and re-serialize the per-shard fan-out.
class SessionScheduler {
 public:
  using SessionId = size_t;

  /// Adopts a session; returns its id (dense, starting at 0). Sessions of
  /// stochastic algorithms MUST be seeded (SessionConfig::seed) — unseeded
  /// sessions share the algorithm's member Rng, whose draw order would then
  /// depend on scheduling.
  SessionId Add(std::unique_ptr<InteractionSession> session);

  /// Like Add(), but also records which algorithm owns the session so that
  /// CheckpointAll() can name it in the population snapshot. Required for
  /// every slot that should survive a checkpoint.
  SessionId Add(std::unique_ptr<InteractionSession> session,
                InteractiveAlgorithm* algorithm);

  /// Serialises the whole population into one framed snapshot
  /// ("scheduler-population"): per slot, the owning algorithm's name plus
  /// the session's SaveState() bytes (taken slots keep only a marker,
  /// aborted slots keep their status). Fails if a live session was Add()ed
  /// without its algorithm or does not support SaveState().
  Result<std::string> CheckpointAll() const;

  /// Rebuilds a scheduler from CheckpointAll() bytes. A corrupt frame is a
  /// hard error; a *per-slot* failure (unknown algorithm, rejected session
  /// snapshot) degrades that slot to a finished session whose result is
  /// Termination::kAborted carrying the cause — the scheduler keeps serving
  /// every other slot (DESIGN.md §14). `models` (optional) is handed to
  /// every RestoreSession via SessionConfig::models, so sessions saved
  /// under a registry version re-pin that exact snapshot (DESIGN.md §18).
  static Result<SessionScheduler> RestoreAll(const std::string& bytes,
                                             const AlgorithmResolver& resolver,
                                             nn::ModelProvider* models = nullptr);

  /// Installs the trace-harvest sink (replacing any previous one). Applies
  /// to sessions that finish afterwards; set it before Add()ing sessions to
  /// also catch ones that terminate inside StartSession.
  void SetHarvestSink(HarvestSink sink) { harvest_ = std::move(sink); }

  /// Advances every runnable session to its next question. First coalesces
  /// pending candidate scoring: the feature rows of all runnable sessions
  /// are grouped by pinned model snapshot (in first-seen session order),
  /// each group runs one batched Score, and the per-session slices are
  /// posted back. Then NextQuestion() is collected per session in id order.
  /// Sessions that terminate contribute no question and become finished.
  std::vector<PendingQuestion> Tick();

  /// Delivers a user's answer; the session becomes runnable for the next
  /// Tick(). The id must currently be awaiting an answer (thin checked
  /// wrapper over TryPostAnswer — crashes on misuse, for trusted drivers).
  void PostAnswer(SessionId id, Answer answer);

  /// Status-returning form for serving front-ends, where a stale client can
  /// legitimately double-post or answer a finished session and must get an
  /// error back instead of killing the process: NotFound for an unknown id,
  /// FailedPrecondition when the session has no outstanding question
  /// (already answered this round, already finished, or result taken).
  Status TryPostAnswer(SessionId id, Answer answer);

  /// Cancels a session mid-episode (the user walked away); it finishes with
  /// its best-so-far recommendation. No-op when already finished.
  void Cancel(SessionId id);

  /// Status-returning Cancel: NotFound for an unknown id, Ok otherwise
  /// (cancelling an already-finished or taken session is an idempotent
  /// no-op, matching Cancel()).
  Status TryCancel(SessionId id);

  bool finished(SessionId id) const;

  /// True while the session has an asked-but-unanswered question (the state
  /// WAL replay must reach before re-posting a logged answer).
  bool awaiting(SessionId id) const;

  /// True once the slot's result has been handed out via Take/TryTake.
  bool taken(SessionId id) const;

  /// The finished session's result (invalidates the slot). Checked wrapper
  /// over TryTake — crashes on misuse.
  InteractionResult Take(SessionId id);

  /// Status-returning Take: NotFound for an unknown id, FailedPrecondition
  /// when the session has not finished or was already taken.
  Result<InteractionResult> TryTake(SessionId id);

  /// Sessions not yet finished.
  size_t active() const { return active_; }
  size_t size() const { return slots_.size(); }

 private:
  enum class SlotState { kRunnable, kAwaitingAnswer, kFinished, kTaken };

  struct Slot {
    std::unique_ptr<InteractionSession> session;
    SlotState state = SlotState::kRunnable;
    /// Owner used by CheckpointAll() to name the session's algorithm;
    /// nullptr for sessions added without one and for aborted stubs.
    InteractiveAlgorithm* algorithm = nullptr;
    /// Non-OK iff this slot degraded to an aborted stub at restore time
    /// (kept so a re-checkpoint can carry the cause forward).
    Status abort_status = Status::Ok();
  };

  /// Feeds the finished session at `id` to the harvest sink (no-op without
  /// a sink or for slots whose session was discarded).
  void EmitHarvest(SessionId id);

  std::vector<Slot> slots_;
  size_t active_ = 0;
  HarvestSink harvest_;
};

/// Convenience driver for simulation: answers every pending question from
/// the per-session oracle `users[id]` until all sessions finish. Returns
/// the results in session-id order. This is the batched counterpart of N
/// sequential Interact() calls — identical results (for seeded sessions),
/// one coalesced PredictBatch per network per tick instead of one per
/// session per round.
std::vector<InteractionResult> DriveWithUsers(
    SessionScheduler& scheduler,
    const std::vector<UserOracle*>& users);

/// One write-ahead-log record: an answer (or cancellation) delivered to a
/// session after the population snapshot was taken.
struct WalRecord {
  static constexpr uint8_t kAnswer = 0;
  static constexpr uint8_t kCancel = 1;

  size_t session_id = 0;
  uint8_t kind = kAnswer;
  Answer answer = Answer::kFirst;  ///< meaningful only when kind == kAnswer
};

/// Durable scheduler state: the latest population snapshot plus the answer
/// WAL accumulated since it was taken. The contract (DESIGN.md §14):
///
///   1. BeginEpoch(CheckpointAll()) — snapshot the population, clear the WAL.
///   2. For every answer: LogAnswer() FIRST, then scheduler.PostAnswer().
///   3. On crash, RecoverScheduler(store, resolver) replays the WAL on top
///      of the snapshot and yields a scheduler bit-identical to the one
///      that crashed.
///
/// Serialize()/SaveFile() persist the pair as one framed "session-store"
/// blob; they may be called at any point (typically right after each log
/// append, which is what DriveWithUsersDurable models).
///
/// Like SessionScheduler, a SessionStore is externally synchronized: the
/// sharded engine guards each shard's store with the same `exec_mu`
/// capability as its scheduler, which also orders every LogAnswer/SyncFile
/// against the PostAnswer it write-ahead-logs (DESIGN.md §16).
class SessionStore {
 public:
  /// Adopts a new population snapshot and clears the WAL: everything logged
  /// before this instant is now baked into the snapshot.
  void BeginEpoch(std::string population_snapshot);

  /// Appends an answer record. Call BEFORE PostAnswer (write-ahead).
  void LogAnswer(size_t session_id, Answer answer);

  /// Appends a cancellation record. Call BEFORE Cancel.
  void LogCancel(size_t session_id);

  const std::string& population() const { return population_; }
  const std::vector<WalRecord>& wal() const { return wal_; }

  std::string Serialize() const;
  static Result<SessionStore> Deserialize(const std::string& bytes);

  /// Full rewrite (atomic via snapshot::WriteFileBytes). O(population +
  /// whole WAL) per call — fine for a final save, quadratic when called per
  /// answer; serving loops use SyncFile instead.
  Status SaveFile(const std::string& path) const;

  /// Incremental durable persistence for the serving loop. The first call
  /// after BeginEpoch (or on a fresh store) atomically rewrites `path` with
  /// the full store; later calls append ONLY the WAL records logged since
  /// the previous sync, as framed delta records, then fsync — O(new
  /// answers) per call instead of O(population + whole log). Call after
  /// LogAnswer/LogCancel and before applying the answer to keep the
  /// write-ahead contract durable on disk, not just in memory.
  Status SyncFile(const std::string& path);

  /// Reads a store file written by SaveFile (one full-store frame — the
  /// legacy format) or by SyncFile (a full-store frame followed by delta
  /// frames). A torn or corrupted tail — the expected shape of a crash
  /// mid-append — is discarded at the last complete frame; a file whose
  /// leading full-store frame is unreadable is an error.
  static Result<SessionStore> LoadFile(const std::string& path);

 private:
  std::string population_;
  std::vector<WalRecord> wal_;
  /// SyncFile cursor: whether the current epoch's full-store frame is on
  /// disk, and how many WAL records have been persisted.
  bool epoch_synced_ = false;
  size_t synced_wal_ = 0;
};

/// Snapshot-then-replay recovery: RestoreAll(store.population()) followed by
/// an in-order replay of the WAL. Replay never consults a user — answers
/// come from the log — so user-side Rng streams are untouched. Records
/// addressed at slots that degraded to aborted stubs are skipped (the stub
/// absorbed the session); a record that a *healthy* session cannot accept is
/// a hard "WAL out of sync" error, because it means the log and snapshot do
/// not belong together.
/// `models` flows into RestoreAll so registry-pinned sessions reopen under
/// the exact version they were saved with (DESIGN.md §18).
Result<SessionScheduler> RecoverScheduler(const SessionStore& store,
                                          const AlgorithmResolver& resolver,
                                          nn::ModelProvider* models = nullptr);

/// Crash-injection point for the durability harness: the simulated process
/// dies immediately BEFORE asking the user for answer number
/// `after_answers` (0-based count of answers already delivered). Dying
/// before the Ask keeps simulated users' Rng streams aligned across the
/// crash: a user is only ever consulted for answers that were also logged.
struct CrashPoint {
  static constexpr size_t kNever = static_cast<size_t>(-1);
  size_t after_answers = kNever;
};

/// Outcome of a durable drive: either the population ran to completion
/// (results in session-id order) or the injected crash fired first.
struct DurableDriveOutcome {
  bool crashed = false;
  std::vector<InteractionResult> results;
};

/// DriveWithUsers with durability: checkpoints the population into `store`
/// up front and then every `checkpoint_every_ticks` ticks (0 = only the
/// initial checkpoint), and write-ahead-logs every answer before posting
/// it. With the default CrashPoint it returns exactly DriveWithUsers'
/// results; with an armed CrashPoint it returns {crashed = true} at the
/// injected point, leaving `store` holding everything recovery needs.
Result<DurableDriveOutcome> DriveWithUsersDurable(
    SessionScheduler& scheduler,
    const std::vector<UserOracle*>& users,
    SessionStore& store,
    size_t checkpoint_every_ticks,
    CrashPoint crash = CrashPoint{});

}  // namespace isrl

#endif  // ISRL_CORE_SCHEDULER_H_
