#include "core/validation.h"

#include "common/strings.h"
#include "core/regret.h"
#include "geometry/halfspace.h"

namespace isrl {

Status ValidateReturnedTuple(const Dataset& data, size_t returned_index,
                             const Vec& true_utility, double epsilon,
                             bool exact) {
  if (returned_index >= data.size()) {
    return Status::OutOfRange(
        Format("returned index %zu out of range (n=%zu)", returned_index,
               data.size()));
  }
  double regret = RegretRatioAt(data, returned_index, true_utility);
  double bound = exact ? epsilon
                       : epsilon * static_cast<double>(data.dim()) *
                             static_cast<double>(data.dim());
  if (regret >= bound) {
    return Status::FailedPrecondition(
        Format("regret %.6f violates the %.6f bound (%s)", regret, bound,
               exact ? "exact" : "d^2*eps"));
  }
  return Status::Ok();
}

Status ValidateTranscriptConsistency(const std::vector<LearnedHalfspace>& h,
                                     const Vec& true_utility, double tol) {
  for (size_t i = 0; i < h.size(); ++i) {
    if (!h[i].h.Contains(true_utility, tol)) {
      return Status::FailedPrecondition(
          Format("half-space %zu excludes the true utility vector "
                 "(margin %.3e)",
                 i, h[i].h.Margin(true_utility)));
    }
  }
  return Status::Ok();
}

Status ValidateStrictNarrowing(size_t d,
                               const std::vector<LearnedHalfspace>& h) {
  Polyhedron range = Polyhedron::UnitSimplex(d);
  for (size_t i = 0; i < h.size(); ++i) {
    bool cuts_something = false;
    for (const Vec& v : range.vertices()) {
      if (h[i].h.Margin(v) < -1e-9) {
        cuts_something = true;
        break;
      }
    }
    if (!cuts_something) {
      return Status::FailedPrecondition(
          Format("cut %zu does not strictly narrow the range (Lemma 7/8 "
                 "violated)",
                 i));
    }
    range.Cut(h[i].h);
    if (range.IsEmpty()) {
      return Status::FailedPrecondition(
          Format("range empty after cut %zu (inconsistent transcript)", i));
    }
  }
  return Status::Ok();
}

Status ValidateTerminalCertificate(const Dataset& data, size_t winner,
                                   const std::vector<Vec>& utilities,
                                   double epsilon) {
  if (winner >= data.size()) {
    return Status::OutOfRange(Format("winner %zu out of range", winner));
  }
  for (size_t i = 0; i < utilities.size(); ++i) {
    double regret = RegretRatioAt(data, winner, utilities[i]);
    if (regret > epsilon) {
      return Status::FailedPrecondition(
          Format("winner has regret %.6f > eps %.6f at utility vector %zu",
                 regret, epsilon, i));
    }
  }
  return Status::Ok();
}

}  // namespace isrl
