#include "core/terminal.h"

#include "common/check.h"

namespace isrl {

bool InTerminalPolyhedron(const Dataset& data, size_t winner_index,
                          const Vec& u, double epsilon) {
  // u ∈ T_w ⇔ ∀j: u·(p_w − (1−ε)p_j) ≥ 0 ⇔ u·p_w ≥ (1−ε)·max_j u·p_j.
  double winner_utility = Dot(u, data.point(winner_index));
  return winner_utility >= (1.0 - epsilon) * data.TopUtility(u);
}

std::vector<size_t> TerminalWinners(const Dataset& data,
                                    const std::vector<Vec>& utilities,
                                    double epsilon) {
  std::vector<size_t> winners;
  for (const Vec& u : utilities) {
    double top = data.TopUtility(u);
    // A non-positive top utility means `u` is degenerate (numerically zero
    // after drift); no point can certify anything for it — skip it.
    if (top <= 0.0) continue;
    const double bar = (1.0 - epsilon) * top;
    bool covered = false;
    for (size_t w : winners) {
      if (Dot(u, data.point(w)) >= bar) {
        covered = true;
        break;
      }
    }
    if (!covered) winners.push_back(data.TopIndex(u));
  }
  return winners;
}

bool IsTerminalRange(const Dataset& data,
                     const std::vector<Vec>& extreme_vectors, double epsilon,
                     size_t* winner) {
  // No extreme vectors ⇒ R collapsed numerically; there is no certificate.
  if (extreme_vectors.empty()) return false;
  std::vector<size_t> winners = TerminalWinners(data, extreme_vectors, epsilon);
  if (winners.size() == 1) {
    if (winner != nullptr) *winner = winners[0];
    return true;
  }
  return false;
}

}  // namespace isrl
