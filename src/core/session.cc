#include "core/session.h"

#include <algorithm>

#include "common/parallel.h"
#include "core/regret.h"

namespace isrl {

namespace {

// Per-user stream ids: each user owns three derived streams so the
// algorithm's sampling, the oracle's faults, and the trace's regret sampling
// never share state across users (or with each other).
constexpr uint64_t kAlgoStream = 0;
constexpr uint64_t kOracleStream = 1;
constexpr uint64_t kTraceStream = 2;

uint64_t UserStream(uint64_t master, size_t user, uint64_t which) {
  return SplitSeed(master, 3 * static_cast<uint64_t>(user) + which);
}

// Per-worker algorithm instances: slot 0 is the caller's own instance,
// slots 1..workers-1 are CloneForEval copies. When the algorithm cannot be
// cloned the pool degrades to one worker (sequential evaluation) — results
// are identical either way, only slower.
struct WorkerPool {
  InteractiveAlgorithm* primary;
  std::vector<std::unique_ptr<InteractiveAlgorithm>> clones;
  size_t workers = 1;

  InteractiveAlgorithm& at(size_t w) {
    return w == 0 ? *primary : *clones[w - 1];
  }
};

WorkerPool MakeWorkerPool(InteractiveAlgorithm& algorithm, size_t threads,
                          size_t tasks) {
  WorkerPool pool;
  pool.primary = &algorithm;
  const size_t want = ResolveThreads(threads, tasks);
  for (size_t w = 1; w < want; ++w) {
    std::unique_ptr<InteractiveAlgorithm> clone = algorithm.CloneForEval();
    if (clone == nullptr) {
      pool.clones.clear();
      return pool;  // not cloneable: sequential fallback
    }
    pool.clones.push_back(std::move(clone));
  }
  pool.workers = want;
  return pool;
}

}  // namespace

UserFactory MakeLinearUserFactory() {
  return [](const Vec& u, uint64_t /*user_seed*/) {
    return std::make_unique<LinearUser>(u);
  };
}

UserFactory MakeNoisyUserFactory(double error_rate) {
  return [error_rate](const Vec& u, uint64_t user_seed) {
    return std::make_unique<NoisyUser>(u, error_rate, user_seed);
  };
}

UserFactory MakeFaultyUserFactory(const FaultyUserOptions& options) {
  return [options](const Vec& u, uint64_t user_seed) {
    FaultyUserOptions per_user = options;
    // Mix the configured fault seed with the per-user stream seed: the fault
    // sequence depends on both, and on nothing scheduling-dependent.
    per_user.seed = SplitSeed(options.seed, user_seed);
    return std::make_unique<FaultyUser>(u, per_user);
  };
}

EvalStats Evaluate(InteractiveAlgorithm& algorithm, const Dataset& data,
                   const std::vector<Vec>& utilities, double epsilon,
                   const UserFactory& factory, const RunBudget& budget,
                   const EvalConfig& config) {
  EvalStats stats;
  stats.algorithm = algorithm.name();
  stats.episodes = utilities.size();
  if (utilities.empty()) return stats;

  struct Outcome {
    InteractionResult result;
    double regret = 0.0;
  };
  std::vector<Outcome> outcomes(utilities.size());

  WorkerPool pool = MakeWorkerPool(algorithm, config.threads,
                                   utilities.size());
  ParallelFor(utilities.size(), pool.workers, [&](size_t worker, size_t i) {
    InteractiveAlgorithm& algo = pool.at(worker);
    algo.Reseed(UserStream(config.seed, i, kAlgoStream));
    std::unique_ptr<UserOracle> user =
        factory(utilities[i], UserStream(config.seed, i, kOracleStream));
    outcomes[i].result = algo.Interact(*user, budget);
    outcomes[i].regret =
        RegretRatioAt(data, outcomes[i].result.best_index, utilities[i]);
  });

  // Reduce in user-index order: the summation order — and with it every
  // floating-point rounding — is fixed regardless of thread count.
  double rounds_sum = 0.0, seconds_sum = 0.0, regret_sum = 0.0;
  double dropped_sum = 0.0, no_answer_sum = 0.0;
  size_t within = 0, converged = 0;
  for (const Outcome& o : outcomes) {
    const InteractionResult& r = o.result;
    rounds_sum += static_cast<double>(r.rounds);
    seconds_sum += r.seconds;
    regret_sum += o.regret;
    dropped_sum += static_cast<double>(r.dropped_answers);
    no_answer_sum += static_cast<double>(r.no_answers);
    stats.max_regret = std::max(stats.max_regret, o.regret);
    if (o.regret < epsilon) ++within;
    if (r.termination == Termination::kConverged) ++converged;
    stats.Count(r.termination);
  }
  const double n = static_cast<double>(utilities.size());
  stats.mean_rounds = rounds_sum / n;
  stats.mean_seconds = seconds_sum / n;
  stats.mean_regret = regret_sum / n;
  stats.frac_within_eps = static_cast<double>(within) / n;
  stats.frac_converged = static_cast<double>(converged) / n;
  stats.frac_degraded = static_cast<double>(stats.degraded) / n;
  stats.frac_budget_exhausted =
      static_cast<double>(stats.budget_exhausted) / n;
  stats.mean_dropped_answers = dropped_sum / n;
  stats.mean_no_answers = no_answer_sum / n;
  return stats;
}

TraceSummary EvaluateTrajectory(InteractiveAlgorithm& algorithm,
                                const Dataset& data,
                                const std::vector<Vec>& utilities,
                                size_t regret_samples, uint64_t seed,
                                const UserFactory& factory,
                                const RunBudget& budget, size_t threads) {
  TraceSummary summary;
  summary.users = utilities.size();
  if (utilities.empty()) return summary;

  struct UserTrace {
    std::vector<double> regrets;
    std::vector<double> seconds;
    Termination termination = Termination::kConverged;
  };
  std::vector<UserTrace> traces(utilities.size());

  WorkerPool pool = MakeWorkerPool(algorithm, threads, utilities.size());
  ParallelFor(utilities.size(), pool.workers, [&](size_t worker, size_t i) {
    InteractiveAlgorithm& algo = pool.at(worker);
    algo.Reseed(UserStream(seed, i, kAlgoStream));
    Rng trace_rng(UserStream(seed, i, kTraceStream));
    InteractionTrace trace(&data, regret_samples, &trace_rng);
    std::unique_ptr<UserOracle> user =
        factory(utilities[i], UserStream(seed, i, kOracleStream));
    InteractionResult r = algo.Interact(*user, budget, &trace);
    traces[i].regrets = trace.max_regret();
    traces[i].seconds = trace.cumulative_seconds();
    traces[i].termination = r.termination;
  });

  size_t max_rounds = 0;
  for (const UserTrace& t : traces) {
    summary.Count(t.termination);
    max_rounds = std::max(max_rounds, t.regrets.size());
  }

  summary.mean_max_regret.assign(max_rounds, 0.0);
  summary.mean_cumulative_seconds.assign(max_rounds, 0.0);
  for (size_t round = 0; round < max_rounds; ++round) {
    double regret_sum = 0.0, seconds_sum = 0.0;
    for (size_t uidx = 0; uidx < utilities.size(); ++uidx) {
      const std::vector<double>& r = traces[uidx].regrets;
      const std::vector<double>& s = traces[uidx].seconds;
      // A finished user keeps its final recommendation and spends no more
      // time in later rounds.
      regret_sum += r.empty() ? 1.0 : r[std::min(round, r.size() - 1)];
      seconds_sum += s.empty() ? 0.0 : s[std::min(round, s.size() - 1)];
    }
    const double n = static_cast<double>(utilities.size());
    summary.mean_max_regret[round] = regret_sum / n;
    summary.mean_cumulative_seconds[round] = seconds_sum / n;
  }
  return summary;
}

}  // namespace isrl
