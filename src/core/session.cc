#include "core/session.h"

#include <algorithm>

#include "core/regret.h"

namespace isrl {

UserFactory MakeLinearUserFactory() {
  return [](const Vec& u) { return std::make_unique<LinearUser>(u); };
}

UserFactory MakeNoisyUserFactory(double error_rate, Rng& rng) {
  return [error_rate, &rng](const Vec& u) {
    return std::make_unique<NoisyUser>(u, error_rate, rng);
  };
}

UserFactory MakeFaultyUserFactory(const FaultyUserOptions& options) {
  // `counter` is shared across the factory's calls so each user in a
  // population gets a distinct but reproducible fault sequence.
  auto counter = std::make_shared<uint64_t>(0);
  return [options, counter](const Vec& u) {
    FaultyUserOptions per_user = options;
    per_user.seed = options.seed + (*counter)++;
    return std::make_unique<FaultyUser>(u, per_user);
  };
}

EvalStats Evaluate(InteractiveAlgorithm& algorithm, const Dataset& data,
                   const std::vector<Vec>& utilities, double epsilon,
                   const UserFactory& factory, const RunBudget& budget) {
  EvalStats stats;
  stats.algorithm = algorithm.name();
  stats.episodes = utilities.size();
  if (utilities.empty()) return stats;

  double rounds_sum = 0.0, seconds_sum = 0.0, regret_sum = 0.0;
  double dropped_sum = 0.0, no_answer_sum = 0.0;
  size_t within = 0, converged = 0, degraded = 0, exhausted = 0;
  for (const Vec& u : utilities) {
    std::unique_ptr<UserOracle> user = factory(u);
    InteractionResult r = algorithm.Interact(*user, budget);
    double regret = RegretRatioAt(data, r.best_index, u);
    rounds_sum += static_cast<double>(r.rounds);
    seconds_sum += r.seconds;
    regret_sum += regret;
    dropped_sum += static_cast<double>(r.dropped_answers);
    no_answer_sum += static_cast<double>(r.no_answers);
    stats.max_regret = std::max(stats.max_regret, regret);
    if (regret < epsilon) ++within;
    switch (r.termination) {
      case Termination::kConverged: ++converged; break;
      case Termination::kDegraded: ++degraded; break;
      case Termination::kBudgetExhausted: ++exhausted; break;
      case Termination::kAborted: ++stats.aborted; break;
    }
  }
  const double n = static_cast<double>(utilities.size());
  stats.mean_rounds = rounds_sum / n;
  stats.mean_seconds = seconds_sum / n;
  stats.mean_regret = regret_sum / n;
  stats.frac_within_eps = static_cast<double>(within) / n;
  stats.frac_converged = static_cast<double>(converged) / n;
  stats.frac_degraded = static_cast<double>(degraded) / n;
  stats.frac_budget_exhausted = static_cast<double>(exhausted) / n;
  stats.mean_dropped_answers = dropped_sum / n;
  stats.mean_no_answers = no_answer_sum / n;
  return stats;
}

TraceSummary EvaluateTrajectory(InteractiveAlgorithm& algorithm,
                                const Dataset& data,
                                const std::vector<Vec>& utilities,
                                size_t regret_samples, uint64_t seed,
                                const UserFactory& factory,
                                const RunBudget& budget) {
  TraceSummary summary;
  summary.users = utilities.size();
  Rng trace_rng(seed);

  std::vector<std::vector<double>> regrets, seconds;
  size_t max_rounds = 0;
  for (const Vec& u : utilities) {
    InteractionTrace trace(&data, regret_samples, &trace_rng);
    std::unique_ptr<UserOracle> user = factory(u);
    InteractionResult r = algorithm.Interact(*user, budget, &trace);
    switch (r.termination) {
      case Termination::kConverged: break;
      case Termination::kDegraded: ++summary.degraded; break;
      case Termination::kBudgetExhausted: ++summary.budget_exhausted; break;
      case Termination::kAborted: ++summary.aborted; break;
    }
    regrets.push_back(trace.max_regret());
    seconds.push_back(trace.cumulative_seconds());
    max_rounds = std::max(max_rounds, trace.rounds());
  }

  summary.mean_max_regret.assign(max_rounds, 0.0);
  summary.mean_cumulative_seconds.assign(max_rounds, 0.0);
  if (utilities.empty()) return summary;
  for (size_t round = 0; round < max_rounds; ++round) {
    double regret_sum = 0.0, seconds_sum = 0.0;
    for (size_t uidx = 0; uidx < utilities.size(); ++uidx) {
      const std::vector<double>& r = regrets[uidx];
      const std::vector<double>& s = seconds[uidx];
      // A finished user keeps its final recommendation and spends no more
      // time in later rounds.
      regret_sum += r.empty() ? 1.0 : r[std::min(round, r.size() - 1)];
      seconds_sum += s.empty() ? 0.0 : s[std::min(round, s.size() - 1)];
    }
    const double n = static_cast<double>(utilities.size());
    summary.mean_max_regret[round] = regret_sum / n;
    summary.mean_cumulative_seconds[round] = seconds_sum / n;
  }
  return summary;
}

}  // namespace isrl
