#include "core/ea_actions.h"

#include <algorithm>

#include "core/terminal.h"
#include "geometry/halfspace.h"

namespace isrl {

EaActionSpace BuildEaActionSpace(const Dataset& data, const Polyhedron& range,
                                 double epsilon,
                                 const EaActionOptions& options, Rng& rng) {
  EaActionSpace space;
  // An empty range has no interior to sample; no winners and no actions
  // (callers treat that as a stall).
  if (range.IsEmpty()) return space;

  // V = sampled interior vectors ∪ extreme vectors. Samples go first so that
  // large-volume terminal polyhedra are constructed with high probability
  // (Lemma 5); the extreme vectors also make |P_R| = 1 equivalent to the
  // Lemma 6 terminal test.
  std::vector<Vec> v;
  v.reserve(options.num_samples + range.vertices().size());
  for (size_t i = 0; i < options.num_samples; ++i) {
    v.push_back(range.SampleInterior(rng));
  }
  for (const Vec& e : range.vertices()) v.push_back(e);

  space.winners = TerminalWinners(data, v, epsilon);
  if (space.winners.size() <= 1) return space;

  // Descriptors over V: split balance and hyper-plane distance to the
  // centroid — the quantities that distinguish an evenly-splitting question
  // from a lopsided one (the Q-network receives them as action features).
  Vec centroid(data.dim());
  for (const Vec& u : v) centroid += u;
  centroid /= static_cast<double>(v.size());
  auto describe = [&](Question q) {
    EaAction action;
    action.q = q;
    Halfspace hp = PreferenceHalfspace(data.point(q.i), data.point(q.j));
    size_t prefer_i = 0;
    for (const Vec& u : v) {
      if (hp.Margin(u) >= 0.0) ++prefer_i;
    }
    action.balance = static_cast<double>(prefer_i) / static_cast<double>(v.size());
    action.center_dist = hp.normal.Norm() < 1e-12
                             ? 0.0
                             : DistanceToHyperplane(centroid, hp);
    return action;
  };

  // All ordered-normalised pairs over P_R; sample m_h of them (the paper's
  // uniform rule — the policy, not the builder, is responsible for ranking).
  const std::vector<size_t>& winners = space.winners;
  std::vector<Question> pairs;
  pairs.reserve(winners.size() * (winners.size() - 1) / 2);
  for (size_t a = 0; a < winners.size(); ++a) {
    for (size_t b = a + 1; b < winners.size(); ++b) {
      pairs.push_back(Question{winners[a], winners[b]});
    }
  }
  if (pairs.size() > options.m_h) {
    std::vector<size_t> chosen = rng.SampleIndices(pairs.size(), options.m_h);
    std::vector<Question> picked;
    picked.reserve(options.m_h);
    for (size_t idx : chosen) picked.push_back(pairs[idx]);
    pairs = std::move(picked);
  }
  space.actions.reserve(pairs.size());
  for (const Question& q : pairs) space.actions.push_back(describe(q));
  return space;
}

}  // namespace isrl
