// Versioned, checksummed session snapshots (DESIGN.md §14).
//
// Durability is what turns the sans-IO sessions of §13 into a serving
// substrate: an interactive episode accumulates 20+ user answers over
// minutes or days, and a process restart must not ask a human to start
// over. Every persistent byte in the project flows through this one codec
// layer (tools/lint.py bans ad-hoc binary IO elsewhere):
//
//   frame   = "ISRL" | kind | version | payload-size | payload | CRC32
//   payload = fixed-width little-endian scalars via Writer/Reader
//
// The frame makes the failure modes of real storage first-class: a wrong
// kind, a version skew, a truncation, and a corrupted byte each surface as
// a distinct InvalidArgument Status — never undefined behaviour, never a
// crash. Payload doubles are finiteness-checked on decode so a NaN smuggled
// into a snapshot cannot poison a restored session's geometry.
//
// On top of the scalar layer sit codecs for the state the six algorithm
// sessions actually carry: Rng engines (restored mid-stream so the draw
// order continues bit-identically), Vec/Matrix, Polyhedron H-rep + vertex
// sets (adopted verbatim, validated, never re-enumerated), deadlines
// (persisted as remaining seconds and re-armed at restore), interaction
// results, in-flight questions, and trace history vectors.
#ifndef ISRL_CORE_SNAPSHOT_H_
#define ISRL_CORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "core/aa_state.h"
#include "core/algorithm.h"
#include "geometry/halfspace.h"
#include "geometry/polyhedron.h"

namespace isrl::snapshot {

/// CRC-32 (reflected, polynomial 0xEDB88320 — the zlib/PNG CRC) of `bytes`.
uint32_t Crc32(const std::string& bytes);

/// Wraps `payload` in the versioned frame: magic, kind tag, format version,
/// payload size, payload bytes, CRC32 of the payload.
std::string WrapFrame(const std::string& kind, uint32_t version,
                      const std::string& payload);

/// Validates a frame and returns its payload. Every mismatch is a distinct
/// InvalidArgument: bad magic ("not a snapshot"), wrong kind (e.g. an AA
/// snapshot handed to EA), version skew, truncation, CRC failure.
Result<std::string> UnwrapFrame(const std::string& kind, uint32_t version,
                                const std::string& bytes);

/// Appends fixed-width little-endian scalars to a byte string. Writers
/// cannot fail; all validation lives on the read side.
class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void F64(double v);
  /// Length-prefixed byte string.
  void Str(const std::string& s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Reads Writer output with a sticky failure flag: after the first
/// malformed field every further read returns a zero value, and status()
/// reports the first failure — decode code can run straight-line and check
/// once at the end.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  bool Bool() { return U8() != 0; }
  double F64();
  /// F64 that additionally fails the reader on NaN/Inf — the default for
  /// every payload double so corrupted numerics cannot enter a session.
  double FiniteF64();
  std::string Str();

  /// Marks the reader failed (first message wins).
  void Fail(const std::string& message);
  bool failed() const { return failed_; }
  /// True when every byte has been consumed (and no read failed).
  bool AtEnd() const { return !failed_ && pos_ == bytes_.size(); }
  /// Ok, or InvalidArgument describing the first failure.
  Status status() const;

 private:
  bool Need(size_t n);

  const std::string& bytes_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string message_;
};

// ---- Value codecs. --------------------------------------------------------
// Encode* appends to a Writer; Decode* reads from a Reader and returns a
// descriptive Status on malformed input (all of them also fail the reader,
// so a forgotten status check is still caught by the final reader check).

/// Element-count ceiling for every decoded container (vectors, matrices,
/// index lists): a truncated/garbage length field must not turn into a
/// multi-gigabyte allocation before validation can reject it.
inline constexpr uint64_t kMaxElements = uint64_t{1} << 24;

void EncodeRng(const Rng& rng, Writer* w);
/// Restores both the construction seed (basis of Split()) and the exact
/// mt19937_64 engine position, so the draw sequence continues where the
/// saved generator left off.
Status DecodeRng(Reader* r, Rng* out);

void EncodeVec(const Vec& v, Writer* w);
Status DecodeVec(Reader* r, Vec* out);

void EncodeMatrix(const Matrix& m, Writer* w);
Status DecodeMatrix(Reader* r, Matrix* out);

void EncodeHalfspace(const Halfspace& h, Writer* w);
Status DecodeHalfspace(Reader* r, Halfspace* out);

void EncodeLearnedHalfspace(const LearnedHalfspace& lh, Writer* w);
/// `max_index` bounds winner/loser (the dataset size); pass the live
/// dataset's size so a snapshot from a different dataset is rejected.
Status DecodeLearnedHalfspace(Reader* r, LearnedHalfspace* out,
                              uint64_t max_index);

void EncodePolyhedron(const Polyhedron& p, Writer* w);
/// Validates via Polyhedron::FromSnapshotParts: the H-rep is adopted and
/// every vertex is containment-checked, but vertices are NOT re-enumerated —
/// restore must be bit-identical, not merely equivalent.
Result<Polyhedron> DecodePolyhedron(Reader* r);

/// Deadlines persist as (armed, remaining seconds) and re-arm at decode:
/// time spent crashed does not count against the session.
void EncodeDeadline(const Deadline& d, Writer* w);
Status DecodeDeadline(Reader* r, Deadline* out);

void EncodeInteractionResult(const InteractionResult& result, Writer* w);
Status DecodeInteractionResult(Reader* r, InteractionResult* out);

void EncodeSessionQuestion(const SessionQuestion& q, Writer* w);
Status DecodeSessionQuestion(Reader* r, SessionQuestion* out);

/// Index vectors (candidate sets, stream orders); every entry must be
/// < `bound`.
void EncodeIndexVector(const std::vector<size_t>& v, Writer* w);
Status DecodeIndexVector(Reader* r, std::vector<size_t>* out, uint64_t bound);

/// Trace history (the Figures 7/8 vectors). The trace object itself lives
/// with the driver, so the codec restores *into* an existing trace — or into
/// bare vectors (DecodeTrace) when the restoring driver attached none.
void EncodeTrace(const InteractionTrace& trace, Writer* w);
Status DecodeTrace(Reader* r, std::vector<double>* max_regret,
                   std::vector<double>* cumulative_seconds,
                   std::vector<size_t>* best_index);
Status DecodeTraceInto(Reader* r, InteractionTrace* trace);

// ---- Session core. --------------------------------------------------------

/// Where a saved session's state machine stood.
inline constexpr uint8_t kStageScoring = 0;   ///< EA/AA: candidates staged
inline constexpr uint8_t kStageAsking = 1;    ///< question emitted, unanswered
inline constexpr uint8_t kStageFinished = 2;  ///< terminated

/// The per-episode state every algorithm session shares: identity (algorithm
/// name + dataset shape, cross-checked at restore), the running result, the
/// effective budget, the re-armable deadline, the state-machine stage with
/// its in-flight question, and the session's Rng. Restored sessions always
/// own their Rng — even when the original drew from the algorithm's member
/// generator — which is what makes a restored episode self-contained.
struct SessionCore {
  std::string algorithm;
  uint64_t data_size = 0;
  uint64_t data_dim = 0;
  InteractionResult result;
  uint64_t max_rounds = 0;
  Deadline deadline;
  uint8_t stage = kStageFinished;
  SessionQuestion question;
  bool has_rng = false;
  Rng rng{0};
  /// Encode side: the session's attached trace, if any — its history rides
  /// in the core so a restored run's figure vectors stay bit-identical.
  const InteractionTrace* trace = nullptr;
  /// Decode side: the history carried by the snapshot (empty vectors when
  /// the saved session had no trace attached).
  bool has_trace = false;
  std::vector<double> trace_max_regret;
  std::vector<double> trace_seconds;
  std::vector<size_t> trace_best_index;
};

void EncodeSessionCore(const SessionCore& core, Writer* w);
Status DecodeSessionCore(Reader* r, SessionCore* out);

/// Cross-checks a decoded core against the restoring algorithm instance:
/// algorithm kind, dataset size and dimension. FailedPrecondition on any
/// mismatch (the snapshot is intact but belongs elsewhere).
Status ValidateSessionCore(const SessionCore& core,
                           const std::string& algorithm_name,
                           size_t data_size, size_t data_dim);

// ---- Multi-frame scan. ----------------------------------------------------

/// Incremental frame scan for multi-frame files (the append-mode session
/// store): parses one frame starting at `*pos`, validates its magic and
/// CRC, returns its kind/version/payload, and advances `*pos` past it.
/// Unlike UnwrapFrame it accepts any kind and tolerates further frames
/// after this one; a truncated or corrupted frame returns InvalidArgument
/// and leaves `*pos` untouched (the caller decides whether a torn tail is
/// recoverable).
Status ReadFrameAt(const std::string& bytes, size_t* pos, std::string* kind,
                   uint32_t* version, std::string* payload);

// ---- Files. ---------------------------------------------------------------
// The only sanctioned binary file IO in the tree (see the raw-serialization
// lint rule): snapshots travel as opaque byte strings and land on disk here.

/// Atomically replaces `path` with `bytes`: writes a temp file in the same
/// directory, fsyncs it, then rename()s it over the target (and fsyncs the
/// directory). A crash at any point leaves either the old file or the new
/// one, never a torn mixture — the previous good snapshot survives a
/// failed save.
Status WriteFileBytes(const std::string& path, const std::string& bytes);

/// Appends `bytes` to `path` (which must exist) and fsyncs. NOT atomic: a
/// crash mid-append leaves a torn tail, so appended data must be framed and
/// the reader must treat an unparseable tail as absent (see
/// SessionStore::SyncFile / LoadFile).
Status AppendFileBytes(const std::string& path, const std::string& bytes);

Result<std::string> ReadFileBytes(const std::string& path);

/// Test-only crash injection for the durability suite: the next
/// WriteFileBytes/AppendFileBytes call writes at most `max_bytes` bytes,
/// then fails with IoError as if the process died mid-write (the hook
/// disarms itself). Pass kNoShortWrite to disarm explicitly.
inline constexpr size_t kNoShortWrite = static_cast<size_t>(-1);
void SetShortWriteForTesting(size_t max_bytes);

}  // namespace isrl::snapshot

#endif  // ISRL_CORE_SNAPSHOT_H_
