#include "core/ea_state.h"

#include <algorithm>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/check.h"

namespace isrl {

std::vector<Vec> SelectRepresentativeVertices(const std::vector<Vec>& vectors,
                                              size_t m_e, double d_eps) {
  const size_t n = vectors.size();
  if (n == 0 || m_e == 0) return {};

  // Neighbourhood sets S_e (indices within d_eps, including self).
  std::vector<std::vector<size_t>> neighborhoods(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (Distance(vectors[i], vectors[j]) <= d_eps) {
        neighborhoods[i].push_back(j);
      }
    }
  }

  std::vector<bool> covered(n, false);
  std::vector<bool> selected(n, false);
  std::vector<Vec> out;
  size_t num_covered = 0;
  while (out.size() < m_e && num_covered < n) {
    size_t best = n;
    size_t best_gain = 0;
    for (size_t i = 0; i < n; ++i) {
      if (selected[i]) continue;
      size_t gain = 0;
      for (size_t j : neighborhoods[i]) {
        if (!covered[j]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == n) break;  // nothing adds coverage (all remaining covered)
    selected[best] = true;
    out.push_back(vectors[best]);
    for (size_t j : neighborhoods[best]) {
      if (!covered[j]) {
        covered[j] = true;
        ++num_covered;
      }
    }
  }
  return out;
}

size_t EaStateDim(size_t d, const EaStateOptions& options) {
  return d * options.m_e + d + 1;
}

Vec EncodeEaState(const Polyhedron& polyhedron, const EaStateOptions& options) {
  ISRL_CHECK(!polyhedron.IsEmpty());
  const size_t d = polyhedron.dim();
  std::vector<Vec> picked = SelectRepresentativeVertices(
      polyhedron.vertices(), options.m_e, options.d_eps);

  Vec state;
  for (const Vec& e : picked) state.Append(e);
  for (size_t i = picked.size(); i < options.m_e; ++i) state.Append(Vec(d));

  Ball ball = IterativeOuterBall(polyhedron.vertices());
  state.Append(ball.center);
  state.PushBack(ball.radius);
  ISRL_CHECK_EQ(state.dim(), EaStateDim(d, options));
  // Audit: every EA state vector feeds the Q-network — a single NaN here
  // silently poisons each subsequent action choice.
  if (audit::ShouldCheck(audit::Checker::kNnFinite)) {
    audit::Auditor().Record(audit::Checker::kNnFinite, "EncodeEaState",
                            audit::CheckFiniteVec(state, "EA state"));
  }
  return state;
}

}  // namespace isrl
