// Aggregate statistics and table formatting for the experiment harness.
#ifndef ISRL_CORE_METRICS_H_
#define ISRL_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/vec.h"

namespace isrl {

/// Basic summary statistics of a sample.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  size_t count = 0;
};

/// Summarises `values` (all-zero Summary for an empty input).
Summary Summarize(const std::vector<double>& values);

/// Failure-outcome counters over a population of episodes (noisy users /
/// tight budgets). Every aggregate that tallies terminal outcomes —
/// EvalStats, TraceSummary — inherits this one struct instead of repeating
/// the fields; every episode still returns a recommendation.
struct OutcomeCounts {
  size_t degraded = 0;          ///< ended Termination::kDegraded
  size_t budget_exhausted = 0;  ///< ended Termination::kBudgetExhausted
  size_t aborted = 0;           ///< ended Termination::kAborted

  /// Tallies one episode's terminal outcome (kConverged counts nowhere).
  void Count(Termination termination);
  /// Episodes that ended in any non-converged outcome.
  size_t Failures() const { return degraded + budget_exhausted + aborted; }
};

/// One completed session distilled for the continuous-learning loop
/// (DESIGN.md §18): the outcome and round count feed drift detection
/// (serve/drift.h), the learned utility estimate is the replay sample
/// trace-driven retraining trains on (serve/trace_store.h), and the model
/// version says which published snapshot served the episode.
struct SessionTraceRecord {
  uint64_t model_version = 0;  ///< InteractionSession::ModelVersion()
  size_t rounds = 0;
  Termination termination = Termination::kConverged;
  bool has_utility = false;  ///< HarvestUtility() produced an estimate
  Vec utility;               ///< meaningful only when has_utility
};

/// Per-algorithm evaluation outcome over a population of simulated users —
/// the three measurements of §V (questions asked, execution time, regret
/// ratio of the returned point). The inherited OutcomeCounts hold the raw
/// failure tallies; the frac_ fields are those counts over all episodes.
struct EvalStats : OutcomeCounts {
  std::string algorithm;
  double mean_rounds = 0.0;
  double mean_seconds = 0.0;
  double mean_regret = 0.0;
  double max_regret = 0.0;
  double frac_within_eps = 0.0;  ///< episodes with final regret < ε
  double frac_converged = 0.0;   ///< episodes not stopped by a safety cap
  size_t episodes = 0;
  double frac_degraded = 0.0;          ///< degraded / episodes
  double frac_budget_exhausted = 0.0;  ///< budget_exhausted / episodes
  double mean_dropped_answers = 0.0;   ///< conflicting answers dropped / user
  double mean_no_answers = 0.0;        ///< unanswered questions / user
};

/// Fixed-width row printer used by the figure benches so every experiment
/// reports the same column set.
void PrintEvalHeader(const std::string& sweep_label);
void PrintEvalRow(const std::string& sweep_value, const EvalStats& stats);

}  // namespace isrl

#endif  // ISRL_CORE_METRICS_H_
