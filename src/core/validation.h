// Runtime verification of the paper's guarantees. These helpers re-derive
// each lemma's conclusion from first principles against a concrete
// interaction, independently of the algorithm code paths that enforce them —
// tests and the experiment harness use them as an oracle, and a downstream
// deployment can run them as online sanity checks.
#ifndef ISRL_CORE_VALIDATION_H_
#define ISRL_CORE_VALIDATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/vec.h"
#include "core/aa_state.h"
#include "data/dataset.h"
#include "geometry/polyhedron.h"

namespace isrl {

/// Checks the end-to-end contract of one finished interaction: the returned
/// index is in range and its regret ratio w.r.t. the (simulation-side) true
/// utility vector is below `epsilon`. `exact` = false relaxes the bound to
/// d²·ε (AA's Lemma 9 guarantee).
Status ValidateReturnedTuple(const Dataset& data, size_t returned_index,
                             const Vec& true_utility, double epsilon,
                             bool exact);

/// Checks Lemma 1 for a transcript of answered questions: the true utility
/// vector satisfies every learned half-space (strictly inconsistent
/// transcripts indicate a bug or a noisy user).
Status ValidateTranscriptConsistency(const std::vector<LearnedHalfspace>& h,
                                     const Vec& true_utility,
                                     double tol = 1e-9);

/// Checks Lemmas 7/8 for a sequence of cuts applied to the unit simplex:
/// every cut must strictly narrow the range (some prior vertex falls
/// strictly outside each new half-space) and the range must stay non-empty.
Status ValidateStrictNarrowing(size_t d,
                               const std::vector<LearnedHalfspace>& h);

/// Checks Lemma 4/6 terminal certificates: `winner` must be ε-optimal at
/// every given utility vector (e.g. the final range's extreme vectors).
Status ValidateTerminalCertificate(const Dataset& data, size_t winner,
                                   const std::vector<Vec>& utilities,
                                   double epsilon);

}  // namespace isrl

#endif  // ISRL_CORE_VALIDATION_H_
