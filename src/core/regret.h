// The regret-ratio criterion (Section III) and the ε-optimality certificates
// shared by the algorithms and the experiment harness.
#ifndef ISRL_CORE_REGRET_H_
#define ISRL_CORE_REGRET_H_

#include <vector>

#include "common/vec.h"
#include "data/dataset.h"

namespace isrl {

/// regratio(q, u) = (max_p f_u(p) − f_u(q)) / max_p f_u(p). Requires a
/// non-empty dataset and a positive top utility (guaranteed on (0,1]-
/// normalised data with u on the simplex).
double RegretRatio(const Dataset& data, const Vec& q, const Vec& u);

/// regratio of the point at `index`.
double RegretRatioAt(const Dataset& data, size_t index, const Vec& u);

/// True iff regratio(p, v) < ε for every v in `utilities` — the certificate
/// used for stopping conditions and the Figures 7/8 worst-case metric.
/// Uses the linear form: regratio(p, v) ≤ ε ⇔ v·((1−ε)q − p) ≤ 0 ∀q.
bool IsEpsOptimalForAll(const Dataset& data, const Vec& p,
                        const std::vector<Vec>& utilities, double epsilon);

/// max_{v ∈ utilities} regratio(p, v) (the Figures 7/8 "maximum regret
/// ratio"). Requires non-empty `utilities`.
double MaxRegretOver(const Dataset& data, const Vec& p,
                     const std::vector<Vec>& utilities);

}  // namespace isrl

#endif  // ISRL_CORE_REGRET_H_
