#include "core/regret.h"

#include <algorithm>

#include "common/check.h"

namespace isrl {

double RegretRatio(const Dataset& data, const Vec& q, const Vec& u) {
  double top = data.TopUtility(u);
  // Degenerate utility (top ≤ 0, e.g. a numerically zero vector): every
  // point is equally good, so the regret ratio is 0 by convention.
  if (top <= 0.0) return 0.0;
  double mine = Dot(u, q);
  return std::max(0.0, (top - mine) / top);
}

double RegretRatioAt(const Dataset& data, size_t index, const Vec& u) {
  return RegretRatio(data, data.point(index), u);
}

bool IsEpsOptimalForAll(const Dataset& data, const Vec& p,
                        const std::vector<Vec>& utilities, double epsilon) {
  // regratio(p, v) ≤ ε  ⇔  ∀q: (1−ε)·v·q − v·p ≤ 0.
  for (const Vec& v : utilities) {
    double vp = Dot(v, p);
    for (size_t q = 0; q < data.size(); ++q) {
      if ((1.0 - epsilon) * Dot(v, data.point(q)) - vp > 0.0) return false;
    }
  }
  return true;
}

double MaxRegretOver(const Dataset& data, const Vec& p,
                     const std::vector<Vec>& utilities) {
  // Over an empty sample the maximum is vacuously 0 (nothing contradicts p).
  double worst = 0.0;
  for (const Vec& v : utilities) {
    worst = std::max(worst, RegretRatio(data, p, v));
  }
  return worst;
}

}  // namespace isrl
