#include "rl/schedule.h"

#include "common/check.h"

namespace isrl::rl {

EpsilonSchedule::EpsilonSchedule(double start, double end, size_t decay_steps)
    : start_(start), end_(end), decay_steps_(decay_steps) {
  ISRL_CHECK_GE(start, 0.0);
  ISRL_CHECK_LE(start, 1.0);
  ISRL_CHECK_GE(end, 0.0);
  ISRL_CHECK_LE(end, 1.0);
}

double EpsilonSchedule::Value(size_t t) const {
  if (decay_steps_ == 0 || t >= decay_steps_) return end_;
  double frac = static_cast<double>(t) / static_cast<double>(decay_steps_);
  return start_ + (end_ - start_) * frac;
}

}  // namespace isrl::rl
