// Experience replay memory (Mnih et al., as adopted in Algorithms 1 and 3).
//
// A transition stores the featurised (state, action) input the Q-network saw,
// the reward, and — because the action set is state-dependent — the
// featurised (next-state, action') inputs for every candidate action at the
// successor state, which is exactly what the target max_{a'} Q̂(s',a') needs.
#ifndef ISRL_RL_REPLAY_H_
#define ISRL_RL_REPLAY_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/vec.h"

namespace isrl::rl {

/// One stored transition (s, a, r, s').
struct Transition {
  Vec state_action;                  ///< featurised (s, a)
  double reward = 0.0;               ///< c on reaching a terminal state else 0
  bool terminal = false;             ///< s' terminal ⇒ target is just r
  std::vector<Vec> next_candidates;  ///< featurised (s', a') per candidate a'
};

/// Fixed-capacity ring buffer with uniform sampling.
class ReplayMemory {
 public:
  explicit ReplayMemory(size_t capacity);

  /// Adds a transition, evicting the oldest when full.
  void Add(Transition t);

  /// Uniformly samples `count` transitions (with replacement, standard DQN
  /// practice). Memory must be non-empty.
  std::vector<const Transition*> Sample(size_t count, Rng& rng) const;

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

 private:
  size_t capacity_;
  size_t size_ = 0;
  size_t next_ = 0;
  std::vector<Transition> buffer_;
};

}  // namespace isrl::rl

#endif  // ISRL_RL_REPLAY_H_
