// REINFORCE (Monte-Carlo policy gradient) over featurised (state, action)
// candidates — an alternative agent to the paper's DQN, provided as an
// extension (DESIGN.md §8). Where DQN regresses action values and acts by
// argmax, REINFORCE parameterises the policy directly: a network scores each
// candidate, a softmax over the scores gives the selection distribution, and
// whole-episode returns weight the log-likelihood gradient (with a running
// average baseline for variance reduction). Episode-level updates suit the
// interactive-search MDP well: episodes are short and the reward (few
// rounds) is only meaningful at the end.
#ifndef ISRL_RL_REINFORCE_H_
#define ISRL_RL_REINFORCE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "nn/network.h"
#include "nn/optimizer.h"

namespace isrl::rl {

/// Hyper-parameters for the policy-gradient agent.
struct ReinforceOptions {
  size_t hidden_neurons = 64;
  nn::Activation activation = nn::Activation::kSelu;
  double learning_rate = 0.003;
  double gamma = 1.0;           ///< episode return discount
  double temperature = 1.0;     ///< softmax temperature over scores
  double baseline_decay = 0.9;  ///< running-average return baseline
};

/// One decision point of an episode: the candidates offered and the index
/// chosen.
struct PolicyStep {
  std::vector<Vec> candidate_features;
  size_t chosen = 0;
  double reward = 0.0;  ///< reward observed *after* this step
};

/// Monte-Carlo policy-gradient agent.
class ReinforceAgent {
 public:
  ReinforceAgent(size_t input_dim, const ReinforceOptions& options, Rng& rng);

  /// Scores one featurised (state, action) candidate.
  double Score(const Vec& state_action);

  /// Samples an action from the softmax policy over candidates.
  size_t SampleAction(const std::vector<Vec>& candidate_features, Rng& rng);

  /// Greedy (highest-score) action, for inference.
  size_t SelectGreedy(const std::vector<Vec>& candidate_features);

  /// Applies one REINFORCE update from a finished episode. Steps must be in
  /// chronological order; returns the episode's (undiscounted) total reward.
  double UpdateFromEpisode(const std::vector<PolicyStep>& episode);

  size_t num_updates() const { return num_updates_; }
  double baseline() const { return baseline_; }
  nn::Network& network() { return network_; }

 private:
  /// Softmax probabilities over candidate scores (temperature applied).
  std::vector<double> Probabilities(const std::vector<Vec>& candidates);

  size_t input_dim_;
  ReinforceOptions options_;
  nn::Network network_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  double baseline_ = 0.0;
  bool baseline_initialised_ = false;
  size_t num_updates_ = 0;
};

}  // namespace isrl::rl

#endif  // ISRL_RL_REINFORCE_H_
