#include "rl/dqn.h"

#include <algorithm>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/check.h"
#include "rl/schedule.h"

namespace isrl::rl {

DqnAgent::DqnAgent(size_t input_dim, const DqnOptions& options, Rng& rng)
    : input_dim_(input_dim),
      options_(options),
      main_(nn::Network::Mlp({input_dim, options.hidden_neurons, 1},
                             options.activation, rng)),
      target_(main_.Clone()),
      replay_(options.replay_capacity),
      prioritized_(options.replay_capacity, options.prioritized) {
  if (options_.optimizer == OptimizerKind::kAdam) {
    optimizer_ = std::make_unique<nn::Adam>(main_.Params(),
                                            options_.learning_rate);
  } else {
    optimizer_ =
        std::make_unique<nn::Sgd>(main_.Params(), options_.learning_rate);
  }
}

DqnAgent::DqnAgent(const DqnAgent& other)
    : input_dim_(other.input_dim_),
      options_(other.options_),
      main_(other.main_.Clone()),
      target_(other.target_.Clone()),
      replay_(other.replay_),
      prioritized_(other.prioritized_),
      num_updates_(other.num_updates_) {
  // The optimiser must bind to *this* copy's parameter blocks.
  if (options_.optimizer == OptimizerKind::kAdam) {
    optimizer_ = std::make_unique<nn::Adam>(main_.Params(),
                                            options_.learning_rate);
  } else {
    optimizer_ =
        std::make_unique<nn::Sgd>(main_.Params(), options_.learning_rate);
  }
}

double DqnAgent::QValue(const Vec& state_action) {
  ISRL_CHECK_EQ(state_action.dim(), input_dim_);
  return main_.Predict(state_action);
}

Vec DqnAgent::QValues(const std::vector<Vec>& candidate_features) {
  ISRL_CHECK(!candidate_features.empty());
  ISRL_CHECK_EQ(candidate_features[0].dim(), input_dim_);
  return main_.PredictBatch(candidate_features);
}

size_t DqnAgent::SelectGreedy(const std::vector<Vec>& candidate_features) {
  ISRL_CHECK(!candidate_features.empty());
  if (options_.batched_execution) {
    return QValues(candidate_features).ArgMax();
  }
  // Scalar reference path (inference mode: action scoring never backprops).
  size_t best = 0;
  double best_q = main_.Infer(candidate_features[0]);
  for (size_t i = 1; i < candidate_features.size(); ++i) {
    double q = main_.Infer(candidate_features[i]);
    if (q > best_q) {
      best_q = q;
      best = i;
    }
  }
  return best;
}

Vec DqnAgent::ScoreCandidates(const Matrix& candidate_features) {
  ISRL_CHECK_GE(candidate_features.rows(), 1u);
  ISRL_CHECK_EQ(candidate_features.cols(), input_dim_);
  return main_.PredictBatch(candidate_features);
}

size_t DqnAgent::SelectGreedy(const Matrix& candidate_features) {
  return ScoreCandidates(candidate_features).ArgMax();
}

size_t DqnAgent::SelectEpsilonGreedy(
    const std::vector<Vec>& candidate_features, double epsilon, Rng& rng) {
  ISRL_CHECK(!candidate_features.empty());
  if (rng.Bernoulli(epsilon)) {
    return static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(candidate_features.size()) - 1));
  }
  return SelectGreedy(candidate_features);
}

double DqnAgent::EpsilonAt(size_t episode) const {
  EpsilonSchedule schedule(options_.epsilon_start, options_.epsilon_end,
                           options_.epsilon_decay_episodes);
  return schedule.Value(episode);
}

void DqnAgent::Remember(Transition t) {
  ISRL_CHECK_EQ(t.state_action.dim(), input_dim_);
  if (options_.prioritized_replay) {
    prioritized_.Add(t);
  }
  replay_.Add(std::move(t));
}

double DqnAgent::TargetFor(const Transition& t) {
  double target = t.reward;
  if (t.terminal || t.next_candidates.empty()) return target;
  double best_next;
  if (options_.double_dqn) {
    // Double DQN: the main network chooses the next action, the target
    // network scores it — removes the max-operator overestimation bias.
    size_t best = 0;
    double best_main = main_.Infer(t.next_candidates[0]);
    for (size_t i = 1; i < t.next_candidates.size(); ++i) {
      double q = main_.Infer(t.next_candidates[i]);
      if (q > best_main) {
        best_main = q;
        best = i;
      }
    }
    best_next = target_.Infer(t.next_candidates[best]);
  } else {
    best_next = target_.Infer(t.next_candidates[0]);
    for (size_t i = 1; i < t.next_candidates.size(); ++i) {
      best_next = std::max(best_next, target_.Infer(t.next_candidates[i]));
    }
  }
  return target + options_.gamma * best_next;
}

Vec DqnAgent::TargetsFor(const std::vector<const Transition*>& batch) {
  Vec targets(batch.size());
  // Stack every next-candidate feature row of the whole batch into one
  // matrix; `offsets[i]` is transition i's first row, npos = no bootstrap.
  constexpr size_t kNoRows = static_cast<size_t>(-1);
  std::vector<size_t> offsets(batch.size(), kNoRows);
  size_t total_rows = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Transition& t = *batch[i];
    if (t.terminal || t.next_candidates.empty()) continue;
    offsets[i] = total_rows;
    total_rows += t.next_candidates.size();
  }
  if (total_rows == 0) {
    for (size_t i = 0; i < batch.size(); ++i) targets[i] = batch[i]->reward;
    return targets;
  }
  std::vector<double> flat;
  flat.reserve(total_rows * input_dim_);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (offsets[i] == kNoRows) continue;
    for (const Vec& cand : batch[i]->next_candidates) {
      ISRL_CHECK_EQ(cand.dim(), input_dim_);
      const double* src = cand.raw();
      flat.insert(flat.end(), src, src + input_dim_);
    }
  }
  const Matrix stacked(total_rows, input_dim_, std::move(flat));
  // One batched forward per network for the whole batch's candidate pools.
  const Vec target_q = target_.PredictBatch(stacked);
  Vec main_q;
  if (options_.double_dqn) main_q = main_.PredictBatch(stacked);
  for (size_t i = 0; i < batch.size(); ++i) {
    const Transition& t = *batch[i];
    if (offsets[i] == kNoRows) {
      targets[i] = t.reward;
      continue;
    }
    const size_t off = offsets[i];
    const size_t count = t.next_candidates.size();
    double best_next;
    if (options_.double_dqn) {
      size_t best = 0;
      double best_main = main_q[off];
      for (size_t c = 1; c < count; ++c) {
        if (main_q[off + c] > best_main) {
          best_main = main_q[off + c];
          best = c;
        }
      }
      best_next = target_q[off + best];
    } else {
      best_next = target_q[off];
      for (size_t c = 1; c < count; ++c) {
        best_next = std::max(best_next, target_q[off + c]);
      }
    }
    targets[i] = t.reward + options_.gamma * best_next;
  }
  return targets;
}

double DqnAgent::UpdateUniform(Rng& rng) {
  std::vector<const Transition*> batch =
      replay_.Sample(options_.batch_size, rng);
  const double delta = options_.loss == LossKind::kHuber ? options_.huber_delta
                                                         : 0.0;
  double loss_sum = 0.0;
  if (options_.batched_execution) {
    Matrix inputs(batch.size(), input_dim_);
    for (size_t i = 0; i < batch.size(); ++i) {
      const double* src = batch[i]->state_action.raw();
      std::copy(src, src + input_dim_, inputs.row(i));
    }
    Vec errs =
        main_.AccumulateRegressionBatch(inputs, TargetsFor(batch), Vec(), delta);
    for (size_t i = 0; i < errs.dim(); ++i) loss_sum += errs[i] * errs[i];
  } else {
    for (const Transition* t : batch) {
      double err = main_.AccumulateRegressionSample(t->state_action,
                                                    TargetFor(*t), 1.0, delta);
      loss_sum += err * err;
    }
  }
  optimizer_->Step(batch.size());
  return loss_sum / static_cast<double>(batch.size());
}

double DqnAgent::UpdatePrioritized(Rng& rng) {
  std::vector<PrioritizedSample> batch =
      prioritized_.Sample(options_.batch_size, rng);
  const double delta = options_.loss == LossKind::kHuber ? options_.huber_delta
                                                         : 0.0;
  double loss_sum = 0.0;
  if (options_.batched_execution) {
    std::vector<const Transition*> transitions;
    transitions.reserve(batch.size());
    Matrix inputs(batch.size(), input_dim_);
    Vec weights(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      transitions.push_back(batch[i].transition);
      const double* src = batch[i].transition->state_action.raw();
      std::copy(src, src + input_dim_, inputs.row(i));
      weights[i] = batch[i].weight;
    }
    Vec errs = main_.AccumulateRegressionBatch(inputs, TargetsFor(transitions),
                                               weights, delta);
    for (size_t i = 0; i < batch.size(); ++i) {
      prioritized_.UpdatePriority(batch[i], errs[i]);
      loss_sum += errs[i] * errs[i];
    }
  } else {
    for (const PrioritizedSample& s : batch) {
      double err = main_.AccumulateRegressionSample(
          s.transition->state_action, TargetFor(*s.transition), s.weight,
          delta);
      prioritized_.UpdatePriority(s, err);
      loss_sum += err * err;
    }
  }
  optimizer_->Step(batch.size());
  return loss_sum / static_cast<double>(batch.size());
}

double DqnAgent::Update(Rng& rng) {
  if (replay_.size() < options_.min_replay_before_update) return 0.0;
  double loss = options_.prioritized_replay ? UpdatePrioritized(rng)
                                            : UpdateUniform(rng);
  ++num_updates_;
  if (options_.target_sync_every > 0 &&
      num_updates_ % options_.target_sync_every == 0) {
    SyncTarget();
  }
  // Audit: a single NaN weight or gradient spreads through every later
  // Q-value without crashing anything — catch it at the update that made it.
  if (audit::ShouldCheck(audit::Checker::kNnFinite)) {
    std::vector<std::string> problems =
        audit::CheckNetworkFinite(main_, "main");
    std::vector<std::string> target_problems =
        audit::CheckNetworkFinite(target_, "target");
    problems.insert(problems.end(), target_problems.begin(),
                    target_problems.end());
    std::vector<std::string> sync_problems = audit::CheckTargetSyncEpoch(
        num_updates_, options_.target_sync_every, main_, target_);
    problems.insert(problems.end(), sync_problems.begin(),
                    sync_problems.end());
    audit::Auditor().Record(audit::Checker::kNnFinite, "DqnAgent.Update",
                            problems);
  }
  if (options_.prioritized_replay &&
      audit::ShouldCheck(audit::Checker::kReplayTree)) {
    audit::Auditor().Record(audit::Checker::kReplayTree, "DqnAgent.Update",
                            audit::CheckReplayTree(prioritized_, 1e-9));
  }
  return loss;
}

void DqnAgent::SyncTarget() { target_.CopyParamsFrom(main_); }

}  // namespace isrl::rl
