// ε-greedy exploration schedule.
#ifndef ISRL_RL_SCHEDULE_H_
#define ISRL_RL_SCHEDULE_H_

#include <cstddef>

namespace isrl::rl {

/// Linearly decaying exploration probability. The paper sets ε = 0.9 during
/// training; we expose a standard linear decay (start == end reproduces a
/// constant schedule).
class EpsilonSchedule {
 public:
  /// Decays from `start` to `end` over `decay_steps` calls to Value().
  EpsilonSchedule(double start, double end, size_t decay_steps);

  /// ε at step `t` (clamped to `end` after decay_steps).
  double Value(size_t t) const;

 private:
  double start_, end_;
  size_t decay_steps_;
};

}  // namespace isrl::rl

#endif  // ISRL_RL_SCHEDULE_H_
