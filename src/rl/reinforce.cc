#include "rl/reinforce.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace isrl::rl {

ReinforceAgent::ReinforceAgent(size_t input_dim,
                               const ReinforceOptions& options, Rng& rng)
    : input_dim_(input_dim),
      options_(options),
      network_(nn::Network::Mlp({input_dim, options.hidden_neurons, 1},
                                options.activation, rng)) {
  ISRL_CHECK_GT(options.temperature, 0.0);
  optimizer_ =
      std::make_unique<nn::Adam>(network_.Params(), options.learning_rate);
}

double ReinforceAgent::Score(const Vec& state_action) {
  ISRL_CHECK_EQ(state_action.dim(), input_dim_);
  return network_.Predict(state_action);
}

namespace {
// Stabilised softmax over raw scores scaled by 1/temperature. Shared by the
// sampling path (batched inference scores) and the update path (scores from
// the cached training forward) so both produce identical probabilities.
std::vector<double> SoftmaxOverScores(const std::vector<double>& raw,
                                      double temperature) {
  std::vector<double> scores;
  scores.reserve(raw.size());
  double max_score = -1e300;
  for (double s : raw) {
    scores.push_back(s / temperature);
    max_score = std::max(max_score, scores.back());
  }
  double total = 0.0;
  for (double& s : scores) {
    s = std::exp(s - max_score);  // stabilised softmax
    total += s;
  }
  for (double& s : scores) s /= total;
  return scores;
}
}  // namespace

std::vector<double> ReinforceAgent::Probabilities(
    const std::vector<Vec>& candidates) {
  ISRL_CHECK(!candidates.empty());
  // One batched inference pass scores the whole pool.
  Vec preds = network_.PredictBatch(candidates);
  std::vector<double> raw(preds.data().begin(), preds.data().end());
  return SoftmaxOverScores(raw, options_.temperature);
}

size_t ReinforceAgent::SampleAction(const std::vector<Vec>& candidate_features,
                                    Rng& rng) {
  std::vector<double> probs = Probabilities(candidate_features);
  double r = rng.Uniform(0.0, 1.0);
  double acc = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (r <= acc) return i;
  }
  return probs.size() - 1;
}

size_t ReinforceAgent::SelectGreedy(
    const std::vector<Vec>& candidate_features) {
  ISRL_CHECK(!candidate_features.empty());
  return network_.PredictBatch(candidate_features).ArgMax();
}

double ReinforceAgent::UpdateFromEpisode(
    const std::vector<PolicyStep>& episode) {
  if (episode.empty()) return 0.0;

  // Discounted returns-to-go.
  std::vector<double> returns(episode.size());
  double running = 0.0;
  double total_reward = 0.0;
  for (size_t t = episode.size(); t-- > 0;) {
    running = episode[t].reward + options_.gamma * running;
    returns[t] = running;
    total_reward += episode[t].reward;
  }
  if (!baseline_initialised_) {
    baseline_ = returns[0];
    baseline_initialised_ = true;
  }

  size_t samples = 0;
  for (size_t t = 0; t < episode.size(); ++t) {
    const PolicyStep& step = episode[t];
    const size_t num_candidates = step.candidate_features.size();
    ISRL_CHECK_LT(step.chosen, num_candidates);
    // One batched training forward scores the pool AND caches the per-layer
    // batch state, so the policy-gradient backward for every candidate is a
    // single batched pass instead of |pool| refresh-Predict + Backward
    // round trips.
    Matrix feats = Matrix::FromRows(step.candidate_features);
    Matrix scores = network_.BatchForward(feats);
    ISRL_CHECK_EQ(scores.cols(), 1u);
    std::vector<double> raw(num_candidates);
    for (size_t j = 0; j < num_candidates; ++j) raw[j] = scores(j, 0);
    std::vector<double> probs = SoftmaxOverScores(raw, options_.temperature);
    const double advantage = returns[t] - baseline_;
    // ∂(−log π(chosen)) / ∂score_j = (p_j − 1[j==chosen]) / T; gradient
    // descent on −advantage·log π(chosen) ascends the weighted likelihood.
    Matrix grads(num_candidates, 1);
    size_t nonzero = 0;
    for (size_t j = 0; j < num_candidates; ++j) {
      double indicator = j == step.chosen ? 1.0 : 0.0;
      double grad = advantage * (probs[j] - indicator) / options_.temperature;
      if (grad == 0.0) continue;  // float-eq-ok: exact-zero skip-work
      grads(j, 0) = grad;
      ++nonzero;
    }
    if (nonzero > 0) network_.BatchBackward(grads);
    samples += nonzero;
  }
  if (samples > 0) optimizer_->Step(samples);
  baseline_ = options_.baseline_decay * baseline_ +
              (1.0 - options_.baseline_decay) * returns[0];
  ++num_updates_;
  return total_reward;
}

}  // namespace isrl::rl
