#include "rl/reinforce.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace isrl::rl {

ReinforceAgent::ReinforceAgent(size_t input_dim,
                               const ReinforceOptions& options, Rng& rng)
    : input_dim_(input_dim),
      options_(options),
      network_(nn::Network::Mlp({input_dim, options.hidden_neurons, 1},
                                options.activation, rng)) {
  ISRL_CHECK_GT(options.temperature, 0.0);
  optimizer_ =
      std::make_unique<nn::Adam>(network_.Params(), options.learning_rate);
}

double ReinforceAgent::Score(const Vec& state_action) {
  ISRL_CHECK_EQ(state_action.dim(), input_dim_);
  return network_.Predict(state_action);
}

std::vector<double> ReinforceAgent::Probabilities(
    const std::vector<Vec>& candidates) {
  ISRL_CHECK(!candidates.empty());
  std::vector<double> scores;
  scores.reserve(candidates.size());
  double max_score = -1e300;
  for (const Vec& c : candidates) {
    scores.push_back(Score(c) / options_.temperature);
    max_score = std::max(max_score, scores.back());
  }
  double total = 0.0;
  for (double& s : scores) {
    s = std::exp(s - max_score);  // stabilised softmax
    total += s;
  }
  for (double& s : scores) s /= total;
  return scores;
}

size_t ReinforceAgent::SampleAction(const std::vector<Vec>& candidate_features,
                                    Rng& rng) {
  std::vector<double> probs = Probabilities(candidate_features);
  double r = rng.Uniform(0.0, 1.0);
  double acc = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (r <= acc) return i;
  }
  return probs.size() - 1;
}

size_t ReinforceAgent::SelectGreedy(
    const std::vector<Vec>& candidate_features) {
  ISRL_CHECK(!candidate_features.empty());
  size_t best = 0;
  double best_score = Score(candidate_features[0]);
  for (size_t i = 1; i < candidate_features.size(); ++i) {
    double s = Score(candidate_features[i]);
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

double ReinforceAgent::UpdateFromEpisode(
    const std::vector<PolicyStep>& episode) {
  if (episode.empty()) return 0.0;

  // Discounted returns-to-go.
  std::vector<double> returns(episode.size());
  double running = 0.0;
  double total_reward = 0.0;
  for (size_t t = episode.size(); t-- > 0;) {
    running = episode[t].reward + options_.gamma * running;
    returns[t] = running;
    total_reward += episode[t].reward;
  }
  if (!baseline_initialised_) {
    baseline_ = returns[0];
    baseline_initialised_ = true;
  }

  size_t samples = 0;
  for (size_t t = 0; t < episode.size(); ++t) {
    const PolicyStep& step = episode[t];
    ISRL_CHECK_LT(step.chosen, step.candidate_features.size());
    std::vector<double> probs = Probabilities(step.candidate_features);
    const double advantage = returns[t] - baseline_;
    // ∂(−log π(chosen)) / ∂score_j = (p_j − 1[j==chosen]) / T; gradient
    // descent on −advantage·log π(chosen) ascends the weighted likelihood.
    for (size_t j = 0; j < step.candidate_features.size(); ++j) {
      double indicator = j == step.chosen ? 1.0 : 0.0;
      double grad = advantage * (probs[j] - indicator) / options_.temperature;
      if (grad == 0.0) continue;  // float-eq-ok: exact-zero skip-work
      network_.Predict(step.candidate_features[j]);  // refresh layer caches
      network_.Backward(Vec{grad});
      ++samples;
    }
  }
  if (samples > 0) optimizer_->Step(samples);
  baseline_ = options_.baseline_decay * baseline_ +
              (1.0 - options_.baseline_decay) * returns[0];
  ++num_updates_;
  return total_reward;
}

}  // namespace isrl::rl
