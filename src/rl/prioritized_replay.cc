#include "rl/prioritized_replay.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace isrl::rl {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

PrioritizedReplayMemory::PrioritizedReplayMemory(size_t capacity,
                                                 PrioritizedOptions options)
    : capacity_(capacity),
      options_(options),
      leaf_base_(NextPowerOfTwo(capacity)) {
  ISRL_CHECK_GE(capacity, 1u);
  buffer_.resize(capacity);
  generations_.assign(capacity, 0);
  sum_tree_.assign(2 * leaf_base_, 0.0);
  min_tree_.assign(2 * leaf_base_, kInf);
}

void PrioritizedReplayMemory::SetPriority(size_t slot, double p) {
  size_t node = leaf_base_ + slot;
  sum_tree_[node] = p;
  min_tree_[node] = p;
  while (node > 1) {
    node >>= 1;
    sum_tree_[node] = sum_tree_[2 * node] + sum_tree_[2 * node + 1];
    min_tree_[node] = std::min(min_tree_[2 * node], min_tree_[2 * node + 1]);
  }
}

size_t PrioritizedReplayMemory::FindPrefix(double r) const {
  size_t node = 1;
  while (node < leaf_base_) {
    const size_t left = 2 * node;
    // Descend left when the offset falls inside the left subtree — or when
    // the right subtree is empty, which is the single tail-clamp absorbing
    // the floating-point residue of r ≈ total.
    if (r < sum_tree_[left] || sum_tree_[left + 1] <= 0.0) {
      node = left;
    } else {
      r -= sum_tree_[left];
      node = left + 1;
    }
  }
  size_t slot = node - leaf_base_;
  if (slot >= size_) slot = size_ - 1;  // unreachable; belt-and-braces
  return slot;
}

void PrioritizedReplayMemory::Add(Transition t) {
  buffer_[next_] = std::move(t);
  generations_[next_] = ++add_count_;
  SetPriority(next_, max_priority_);
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<PrioritizedSample> PrioritizedReplayMemory::Sample(
    size_t count, Rng& rng) const {
  ISRL_CHECK(!empty());
  const double total = total_priority();
  ISRL_CHECK_GT(total, 0.0);

  // Max weight for normalisation corresponds to the *minimum* probability.
  const double n = static_cast<double>(size_);
  const double max_weight =
      std::pow(n * (min_priority() / total), -options_.beta);

  std::vector<PrioritizedSample> out;
  out.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    const size_t idx = FindPrefix(rng.Uniform(0.0, total));
    PrioritizedSample sample;
    sample.index = idx;
    sample.generation = generations_[idx];
    sample.transition = &buffer_[idx];
    const double prob = sum_tree_[leaf_base_ + idx] / total;
    sample.weight = std::pow(n * prob, -options_.beta) / max_weight;
    out.push_back(sample);
  }
  return out;
}

bool PrioritizedReplayMemory::UpdatePriority(const PrioritizedSample& handle,
                                             double td_error) {
  ISRL_CHECK_LT(handle.index, size_);
  if (generations_[handle.index] != handle.generation) return false;
  const double p = std::pow(std::abs(td_error) + options_.priority_floor,
                            options_.alpha);
  SetPriority(handle.index, p);
  max_priority_ = std::max(max_priority_, p);
  return true;
}

double PrioritizedReplayMemory::priority(size_t index) const {
  ISRL_CHECK_LT(index, size_);
  return sum_tree_[leaf_base_ + index];
}

uint64_t PrioritizedReplayMemory::generation(size_t index) const {
  ISRL_CHECK_LT(index, size_);
  return generations_[index];
}

}  // namespace isrl::rl
