#include "rl/prioritized_replay.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace isrl::rl {

PrioritizedReplayMemory::PrioritizedReplayMemory(size_t capacity,
                                                 PrioritizedOptions options)
    : capacity_(capacity), options_(options) {
  ISRL_CHECK_GE(capacity, 1u);
  buffer_.resize(capacity);
  priorities_.assign(capacity, 0.0);
}

void PrioritizedReplayMemory::Add(Transition t) {
  buffer_[next_] = std::move(t);
  priorities_[next_] = max_priority_;
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<PrioritizedSample> PrioritizedReplayMemory::Sample(
    size_t count, Rng& rng) const {
  ISRL_CHECK(!empty());
  double total = 0.0;
  for (size_t i = 0; i < size_; ++i) total += priorities_[i];
  ISRL_CHECK_GT(total, 0.0);

  // Max weight for normalisation corresponds to the *minimum* probability.
  double min_priority = priorities_[0];
  for (size_t i = 1; i < size_; ++i) {
    min_priority = std::min(min_priority, priorities_[i]);
  }
  const double n = static_cast<double>(size_);
  const double max_weight =
      std::pow(n * (min_priority / total), -options_.beta);

  std::vector<PrioritizedSample> out;
  out.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    double r = rng.Uniform(0.0, total);
    size_t idx = 0;
    double acc = 0.0;
    for (size_t i = 0; i < size_; ++i) {
      acc += priorities_[i];
      if (r <= acc) {
        idx = i;
        break;
      }
      idx = i;  // numerical tail: last slot
    }
    PrioritizedSample sample;
    sample.index = idx;
    sample.transition = &buffer_[idx];
    double prob = priorities_[idx] / total;
    sample.weight = std::pow(n * prob, -options_.beta) / max_weight;
    out.push_back(sample);
  }
  return out;
}

void PrioritizedReplayMemory::UpdatePriority(size_t index, double td_error) {
  ISRL_CHECK_LT(index, size_);
  double p = std::pow(std::abs(td_error) + options_.priority_floor,
                      options_.alpha);
  priorities_[index] = p;
  max_priority_ = std::max(max_priority_, p);
}

double PrioritizedReplayMemory::priority(size_t index) const {
  ISRL_CHECK_LT(index, size_);
  return priorities_[index];
}

}  // namespace isrl::rl
