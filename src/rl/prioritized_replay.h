// Proportional prioritized experience replay (Schaul et al., ICLR 2016) —
// an opt-in upgrade over the paper's uniform replay, wired as a DESIGN.md §6
// ablation. Transitions are sampled with probability ∝ (|TD error| + ε)^α
// and importance-weighted by (N·P(i))^{−β} to keep the update unbiased.
#ifndef ISRL_RL_PRIORITIZED_REPLAY_H_
#define ISRL_RL_PRIORITIZED_REPLAY_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "rl/replay.h"

namespace isrl::rl {

/// Configuration for proportional prioritisation.
struct PrioritizedOptions {
  double alpha = 0.6;          ///< priority exponent (0 = uniform)
  double beta = 0.4;           ///< importance-sampling exponent
  double priority_floor = 1e-3;///< added to |TD error| so nothing starves
};

/// One sampled transition with its buffer slot and importance weight.
struct PrioritizedSample {
  size_t index = 0;
  const Transition* transition = nullptr;
  double weight = 1.0;  ///< normalised importance weight in (0, 1]
};

/// Fixed-capacity ring buffer with proportional priority sampling. New
/// transitions enter at the current maximum priority so they are replayed
/// at least once soon after insertion.
class PrioritizedReplayMemory {
 public:
  PrioritizedReplayMemory(size_t capacity, PrioritizedOptions options = {});

  /// Adds a transition at max priority, evicting the oldest when full.
  void Add(Transition t);

  /// Samples `count` transitions ∝ priority^α (with replacement). Memory
  /// must be non-empty.
  std::vector<PrioritizedSample> Sample(size_t count, Rng& rng) const;

  /// Re-prioritises slot `index` after its TD error was recomputed.
  void UpdatePriority(size_t index, double td_error);

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  double priority(size_t index) const;

 private:
  size_t capacity_;
  PrioritizedOptions options_;
  size_t size_ = 0;
  size_t next_ = 0;
  double max_priority_ = 1.0;
  std::vector<Transition> buffer_;
  std::vector<double> priorities_;  ///< already exponentiated by α
};

}  // namespace isrl::rl

#endif  // ISRL_RL_PRIORITIZED_REPLAY_H_
