// Proportional prioritized experience replay (Schaul et al., ICLR 2016) —
// an opt-in upgrade over the paper's uniform replay, wired as a DESIGN.md §6
// ablation. Transitions are sampled with probability ∝ (|TD error| + ε)^α
// and importance-weighted by (N·P(i))^{−β} to keep the update unbiased.
//
// Sampling runs on a maintained segment tree (sum + min per node), so a
// draw is O(log capacity) instead of an O(size) cumulative scan, and the
// numerical tail of the scan ("r never reaches the total") is handled by a
// single clamp in the tree descent. Samples carry a generation stamp: a slot
// overwritten by Add invalidates outstanding handles, so a late
// UpdatePriority can never re-prioritise a *different* transition that now
// occupies the same ring-buffer slot.
#ifndef ISRL_RL_PRIORITIZED_REPLAY_H_
#define ISRL_RL_PRIORITIZED_REPLAY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "rl/replay.h"

namespace isrl::rl {

/// Configuration for proportional prioritisation.
struct PrioritizedOptions {
  double alpha = 0.6;          ///< priority exponent (0 = uniform)
  double beta = 0.4;           ///< importance-sampling exponent
  double priority_floor = 1e-3;///< added to |TD error| so nothing starves
};

/// One sampled transition with its buffer slot, the slot's generation stamp
/// at sampling time, and its importance weight.
struct PrioritizedSample {
  size_t index = 0;
  uint64_t generation = 0;  ///< Add-time stamp; stale ⇒ UpdatePriority no-ops
  const Transition* transition = nullptr;
  double weight = 1.0;  ///< normalised importance weight in (0, 1]
};

/// Fixed-capacity ring buffer with proportional priority sampling. New
/// transitions enter at the current maximum priority so they are replayed
/// at least once soon after insertion.
class PrioritizedReplayMemory {
 public:
  PrioritizedReplayMemory(size_t capacity, PrioritizedOptions options = {});

  /// Adds a transition at max priority, evicting the oldest when full.
  /// Overwriting a slot bumps its generation, invalidating any sample
  /// handles still pointing at it.
  void Add(Transition t);

  /// Samples `count` transitions ∝ priority^α (with replacement). Memory
  /// must be non-empty.
  std::vector<PrioritizedSample> Sample(size_t count, Rng& rng) const;

  /// Re-prioritises the sampled slot after its TD error was recomputed.
  /// Returns false — leaving every priority untouched — when the handle is
  /// stale, i.e. an Add overwrote the slot between Sample and this call.
  bool UpdatePriority(const PrioritizedSample& handle, double td_error);

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  double priority(size_t index) const;
  /// Current generation stamp of `index` (changes whenever Add overwrites
  /// the slot); handles with an older stamp are stale.
  uint64_t generation(size_t index) const;
  /// Sum of all stored priorities (maintained, O(1)).
  double total_priority() const { return sum_tree_[1]; }
  /// Minimum stored priority (maintained, O(1)); meaningless when empty.
  double min_priority() const { return min_tree_[1]; }

 private:
  /// Writes priority `p` into `slot` and refreshes the tree path above it.
  void SetPriority(size_t slot, double p);
  /// Leaf slot holding the cumulative offset `r` ∈ [0, total).
  size_t FindPrefix(double r) const;

  size_t capacity_;
  PrioritizedOptions options_;
  size_t size_ = 0;
  size_t next_ = 0;
  uint64_t add_count_ = 0;  ///< generation source: one tick per Add
  double max_priority_ = 1.0;
  std::vector<Transition> buffer_;
  std::vector<uint64_t> generations_;
  size_t leaf_base_;                ///< first leaf index in the trees
  std::vector<double> sum_tree_;    ///< subtree priority sums (α-exponentiated)
  std::vector<double> min_tree_;    ///< subtree priority minima (+inf = empty)
};

}  // namespace isrl::rl

#endif  // ISRL_RL_PRIORITIZED_REPLAY_H_
