// Deep Q-Network agent with experience replay and a periodically synchronised
// target network — the learning machinery shared by Algorithms 1–4.
//
// The interactive regret query has a state-dependent action set (the m_h
// candidate pairs differ per utility range), so instead of one output head
// per action the network scores a featurised (state, action) concatenation
// and action selection is an argmax over the candidate features. The
// featurisation itself lives in core/ (EA and AA encode states differently).
#ifndef ISRL_RL_DQN_H_
#define ISRL_RL_DQN_H_

#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/vec.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "rl/prioritized_replay.h"
#include "rl/replay.h"

namespace isrl::rl {

/// Optimiser choice for the Q-network update.
enum class OptimizerKind { kSgd, kAdam };

/// Regression loss for the TD fit.
enum class LossKind { kMse, kHuber };

/// Hyper-parameters; defaults are the paper's §V settings. The fields below
/// the separator are opt-in extensions (DESIGN.md §6/§7 ablations) that
/// leave the paper's algorithm untouched when defaulted.
struct DqnOptions {
  size_t hidden_neurons = 64;          ///< 1 hidden layer × 64 (paper)
  nn::Activation activation = nn::Activation::kSelu;  ///< SELU (paper)
  double learning_rate = 0.003;        ///< paper
  double gamma = 0.8;                  ///< discount factor (paper)
  size_t replay_capacity = 5000;       ///< paper
  size_t batch_size = 64;              ///< paper
  size_t target_sync_every = 20;       ///< main-net updates between syncs (paper)
  double reward_constant = 100.0;      ///< terminal reward c (paper)
  double epsilon_start = 0.9;          ///< ε-greedy exploration (paper)
  double epsilon_end = 0.9;            ///< equal to start = constant ε
  size_t epsilon_decay_episodes = 0;
  OptimizerKind optimizer = OptimizerKind::kSgd;  ///< "gradient descent" (paper)
  size_t min_replay_before_update = 64;
  // ---- extensions (default off) ----
  bool double_dqn = false;             ///< decouple argmax (main) from eval (target)
  bool prioritized_replay = false;     ///< proportional PER instead of uniform
  PrioritizedOptions prioritized;      ///< PER knobs when enabled
  LossKind loss = LossKind::kMse;      ///< paper fits MSE; Huber is robust
  double huber_delta = 1.0;            ///< Huber transition point
  /// Reward shaping: cost charged per non-terminal round. The paper's
  /// terminal-only reward c·γ^rounds collapses towards zero on long
  /// episodes (γ=0.8 ⇒ Q ≈ 0.1 after 30 rounds), leaving no ranking signal;
  /// a per-round penalty keeps Q linear in the remaining rounds. Pair with
  /// a discount near 1.
  double step_penalty = 0.0;
  /// Batched execution (DESIGN.md §12): candidate scoring, TD-target
  /// computation, and the training forward/backward run as blocked-GEMM
  /// batches instead of per-sample dispatches. Results are bit-identical to
  /// the scalar path, which stays available (OFF) as the audit/teaching
  /// reference and for the scalar-vs-batched microbenchmarks.
  bool batched_execution = true;
};

/// DQN agent over featurised (state, action) inputs.
class DqnAgent {
 public:
  /// `input_dim` is the dimension of the featurised (state, action) vector.
  DqnAgent(size_t input_dim, const DqnOptions& options, Rng& rng);

  /// Deep copy: networks (current weights) and replay contents are copied;
  /// the optimiser is recreated fresh for the copy's parameters, so Adam
  /// moment estimates do NOT carry over. Intended for evaluation-time
  /// clones (core/algorithm.h CloneForEval), where no further training
  /// happens.
  DqnAgent(const DqnAgent& other);
  DqnAgent& operator=(const DqnAgent&) = delete;

  /// Q(s,a;Θ) for one featurised input.
  double QValue(const Vec& state_action);

  /// Q-values of a whole candidate pool in one batched inference pass.
  Vec QValues(const std::vector<Vec>& candidate_features);

  /// Index of the action with the largest main-network Q-value.
  size_t SelectGreedy(const std::vector<Vec>& candidate_features);

  /// Q-values of row-stacked candidate features (one candidate per row) in
  /// one batched inference pass. This is the scoring primitive behind both
  /// SelectGreedy(Matrix) and the cross-session coalesced scoring of the
  /// SessionScheduler — bit-identical per row at any batch size.
  Vec ScoreCandidates(const Matrix& candidate_features);

  /// SelectGreedy over row-stacked candidate features (one candidate per
  /// row) — the zero-copy entry point for EA/AA action scoring: one batched
  /// forward per round instead of |actions| scalar dispatches.
  size_t SelectGreedy(const Matrix& candidate_features);

  /// ε-greedy: uniform-random candidate with probability `epsilon`, greedy
  /// otherwise.
  size_t SelectEpsilonGreedy(const std::vector<Vec>& candidate_features,
                             double epsilon, Rng& rng);

  /// Current ε for episode `episode` under the configured schedule.
  double EpsilonAt(size_t episode) const;

  /// Stores a transition in the replay memory.
  void Remember(Transition t);

  /// One DQN update: sample a batch, fit the main network towards
  /// r + γ·max_{a'} Q̂(s',a';Θ'), and periodically synchronise the target
  /// network. No-op until the replay holds min_replay_before_update
  /// transitions. Returns the batch MSE (0 when skipped).
  double Update(Rng& rng);

  /// Forces Θ' ← Θ (also done automatically every target_sync_every updates).
  void SyncTarget();

  size_t num_updates() const { return num_updates_; }
  const DqnOptions& options() const { return options_; }
  nn::Network& main_network() { return main_; }
  nn::Network& target_network() { return target_; }
  /// Uniform replay buffer (tracks size even when PER is enabled).
  ReplayMemory& replay() { return replay_; }
  PrioritizedReplayMemory& prioritized_replay() { return prioritized_; }
  size_t input_dim() const { return input_dim_; }

 private:
  /// TD target for one transition under the configured (double-)DQN rule
  /// (scalar reference path).
  double TargetFor(const Transition& t);
  /// TD targets for a whole sampled batch: stacks every next-candidate row
  /// of every transition into one matrix and runs one target-net (and, for
  /// double DQN, one main-net) batched forward for the per-transition
  /// argmax/max. Bit-identical to per-transition TargetFor.
  Vec TargetsFor(const std::vector<const Transition*>& batch);
  double UpdateUniform(Rng& rng);
  double UpdatePrioritized(Rng& rng);

  size_t input_dim_;
  DqnOptions options_;
  nn::Network main_;
  nn::Network target_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  ReplayMemory replay_;
  PrioritizedReplayMemory prioritized_;
  size_t num_updates_ = 0;
};

}  // namespace isrl::rl

#endif  // ISRL_RL_DQN_H_
