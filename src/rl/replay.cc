#include "rl/replay.h"

#include "common/check.h"

namespace isrl::rl {

ReplayMemory::ReplayMemory(size_t capacity) : capacity_(capacity) {
  ISRL_CHECK_GE(capacity, 1u);
  buffer_.resize(capacity);
}

void ReplayMemory::Add(Transition t) {
  buffer_[next_] = std::move(t);
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<const Transition*> ReplayMemory::Sample(size_t count,
                                                    Rng& rng) const {
  ISRL_CHECK(!empty());
  std::vector<const Transition*> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t idx = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(size_) - 1));
    out.push_back(&buffer_[idx]);
  }
  return out;
}

}  // namespace isrl::rl
