// Linear-program model builder. The paper's algorithm AA expresses all of its
// geometry through LPs over the utility simplex (inner sphere, outer
// rectangle, half-space feasibility); the baselines use LPs for candidate
// pruning. This is the shared front-end for the simplex solver.
#ifndef ISRL_LP_MODEL_H_
#define ISRL_LP_MODEL_H_

#include <cstddef>
#include <vector>

#include "common/vec.h"

namespace isrl::lp {

/// Relation of a linear constraint a·x (rel) rhs.
enum class Relation { kLe, kGe, kEq };

/// Objective direction.
enum class Sense { kMaximize, kMinimize };

/// One linear constraint over the model's variables. Coefficient vectors may
/// be shorter than the variable count; missing entries are zero.
struct Constraint {
  Vec coeffs;
  Relation relation = Relation::kLe;
  double rhs = 0.0;
};

/// An LP: optimise c·x subject to linear constraints, with per-variable
/// non-negativity flags (free variables are supported and handled by the
/// solver via a positive/negative split).
class Model {
 public:
  /// Adds a variable with the given objective coefficient. `nonneg` = true
  /// constrains x ≥ 0; false leaves it free. Returns the variable index.
  size_t AddVariable(double objective_coeff, bool nonneg = true);

  /// Adds the constraint `coeffs · x (relation) rhs`.
  void AddConstraint(const Vec& coeffs, Relation relation, double rhs);

  /// Overwrites one coefficient of an existing constraint, zero-extending a
  /// short coefficient vector as needed. Together with SetConstraintRhs this
  /// lets a caller build one model and solve a family of related LPs by
  /// patching a few entries per query instead of rebuilding the whole model
  /// (see geometry/convex_hull.cc).
  void SetConstraintCoefficient(size_t row, size_t var, double value);

  /// Overwrites the right-hand side of an existing constraint.
  void SetConstraintRhs(size_t row, double value);

  /// Sets the optimisation direction (default: maximise).
  void SetSense(Sense sense) { sense_ = sense; }

  size_t num_variables() const { return objective_.size(); }
  size_t num_constraints() const { return constraints_.size(); }
  Sense sense() const { return sense_; }
  const std::vector<double>& objective() const { return objective_; }
  const std::vector<bool>& nonneg() const { return nonneg_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

 private:
  Sense sense_ = Sense::kMaximize;
  std::vector<double> objective_;
  std::vector<bool> nonneg_;
  std::vector<Constraint> constraints_;
};

/// True when `a` and `b` share bitwise-identical constraint structure:
/// variable count, non-negativity flags, and every constraint's coefficients,
/// relation and rhs. Objective and sense are deliberately ignored — this is
/// the membership test for an LP *family* (see lp::FamilySolver): phase 1 of
/// the simplex depends only on the structure compared here.
[[nodiscard]] bool SameConstraintStructure(const Model& a, const Model& b);

}  // namespace isrl::lp

#endif  // ISRL_LP_MODEL_H_
