#include "lp/model.h"

namespace isrl::lp {

size_t Model::AddVariable(double objective_coeff, bool nonneg) {
  objective_.push_back(objective_coeff);
  nonneg_.push_back(nonneg);
  return objective_.size() - 1;
}

void Model::AddConstraint(const Vec& coeffs, Relation relation, double rhs) {
  ISRL_CHECK_LE(coeffs.dim(), objective_.size());
  constraints_.push_back(Constraint{coeffs, relation, rhs});
}

void Model::SetConstraintCoefficient(size_t row, size_t var, double value) {
  ISRL_CHECK_LT(row, constraints_.size());
  ISRL_CHECK_LT(var, objective_.size());
  Vec& coeffs = constraints_[row].coeffs;
  while (coeffs.dim() <= var) coeffs.PushBack(0.0);
  coeffs[var] = value;
}

void Model::SetConstraintRhs(size_t row, double value) {
  ISRL_CHECK_LT(row, constraints_.size());
  constraints_[row].rhs = value;
}

bool SameConstraintStructure(const Model& a, const Model& b) {
  if (a.num_variables() != b.num_variables()) return false;
  if (a.nonneg() != b.nonneg()) return false;
  if (a.num_constraints() != b.num_constraints()) return false;
  for (size_t r = 0; r < a.num_constraints(); ++r) {
    const Constraint& ca = a.constraints()[r];
    const Constraint& cb = b.constraints()[r];
    if (ca.relation != cb.relation) return false;
    // Bitwise comparison on purpose: family membership must guarantee an
    // identical tableau, not an approximately equal one.
    if (ca.rhs != cb.rhs) return false;  // float-eq-ok: bitwise family test
    if (ca.coeffs.dim() != cb.coeffs.dim()) return false;
    for (size_t c = 0; c < ca.coeffs.dim(); ++c) {
      if (ca.coeffs[c] != cb.coeffs[c]) return false;  // float-eq-ok: bitwise
    }
  }
  return true;
}

}  // namespace isrl::lp
