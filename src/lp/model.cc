#include "lp/model.h"

namespace isrl::lp {

size_t Model::AddVariable(double objective_coeff, bool nonneg) {
  objective_.push_back(objective_coeff);
  nonneg_.push_back(nonneg);
  return objective_.size() - 1;
}

void Model::AddConstraint(const Vec& coeffs, Relation relation, double rhs) {
  ISRL_CHECK_LE(coeffs.dim(), objective_.size());
  constraints_.push_back(Constraint{coeffs, relation, rhs});
}

void Model::SetConstraintCoefficient(size_t row, size_t var, double value) {
  ISRL_CHECK_LT(row, constraints_.size());
  ISRL_CHECK_LT(var, objective_.size());
  Vec& coeffs = constraints_[row].coeffs;
  while (coeffs.dim() <= var) coeffs.PushBack(0.0);
  coeffs[var] = value;
}

void Model::SetConstraintRhs(size_t row, double value) {
  ISRL_CHECK_LT(row, constraints_.size());
  constraints_[row].rhs = value;
}

}  // namespace isrl::lp
