#include "lp/model.h"

namespace isrl::lp {

size_t Model::AddVariable(double objective_coeff, bool nonneg) {
  objective_.push_back(objective_coeff);
  nonneg_.push_back(nonneg);
  return objective_.size() - 1;
}

void Model::AddConstraint(const Vec& coeffs, Relation relation, double rhs) {
  ISRL_CHECK_LE(coeffs.dim(), objective_.size());
  constraints_.push_back(Constraint{coeffs, relation, rhs});
}

}  // namespace isrl::lp
