#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "audit/checkers.h"

namespace isrl::lp {
namespace {

// Test-only fault injection (see SetLpFaultHookForTest). One global attempt
// counter across all solves so a hook can fail "the first k attempts".
LpFaultHook g_fault_hook;  // NOLINT(cert-err58-cpp)
size_t g_attempt_counter = 0;

// Internal standard form: maximise c·y subject to A y = b, y ≥ 0, b ≥ 0.
// Columns: split structural variables, then slacks/surpluses, then
// artificials. A full dense tableau is maintained.
class Tableau {
 public:
  Tableau(const Model& model, const SimplexOptions& options)
      : options_(options) {
    BuildColumns(model);
    BuildRows(model);
  }

  SolveResult Run() {
    SolveResult result;
    result.diagnostics.attempts = 1;
    if (num_artificial_ > 0 && !RunPhase1(&result)) return result;
    RunPhase2(&result);
    return result;
  }

  // ----- Phase 1: minimise the sum of artificials. -----
  // The phase-1 objective, the artificial-sum feasibility verdict and the
  // drive-out pass never read `cost_`, so the end state of this phase is
  // identical for every model that shares constraint structure — the fact
  // FamilySolver exploits. Returns false (with result->status set) on
  // failure; on success the tableau is primal feasible and artificial-free
  // (up to neutralised redundant rows).
  bool RunPhase1(SolveResult* result) {
    result->diagnostics.phase = 1;
    std::vector<double> phase1_cost(num_cols_, 0.0);
    for (size_t j = first_artificial_; j < num_cols_; ++j) {
      phase1_cost[j] = -1.0;  // maximise -(sum of artificials)
    }
    Status st = Optimize(phase1_cost, /*allow_artificial_entering=*/true);
    FillPivotDiagnostics(&result->diagnostics);
    if (!st.ok()) {
      result->status = st;
      return false;
    }
    double artificial_sum = 0.0;
    for (size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] >= first_artificial_) artificial_sum += rhs_[r];
    }
    if (artificial_sum > options_.feasibility_tol) {
      result->status = Status::Infeasible("phase 1 optimum positive");
      return false;
    }
    DriveOutArtificials();
    return true;
  }

  // ----- Phase 2: the real objective. -----
  // Accumulates onto result->diagnostics (iterations +=), so a caller that
  // replayed a cached phase-1 state seeds the phase-1 numbers first.
  void RunPhase2(SolveResult* result) {
    result->diagnostics.phase = 2;
    Status st = Optimize(cost_, /*allow_artificial_entering=*/false);
    FillPivotDiagnostics(&result->diagnostics);
    if (!st.ok()) {
      result->status = st;
      return;
    }

    // Final-state audit: the optimal tableau the solution is read from.
    if (audit::ShouldCheck(audit::Checker::kLpTableau)) {
      AuditTableau(cost_, 2, "simplex.Run");
    }

    result->status = Status::Ok();
    result->objective = ObjectiveValue();
    result->x = ExtractSolution();
    result->warm.basis = basis_;
    result->warm.num_rows = num_rows_;
    result->warm.num_cols = num_cols_;
    result->warm.first_artificial = first_artificial_;
  }

  // Re-factorises a previous optimal basis against this tableau: one crash
  // pivot per basic column, each claiming the unclaimed row with the largest
  // magnitude in that column. Returns false when the warm basis is unusable
  // — stale shape fingerprint, corrupt content (artificials, duplicates,
  // out-of-range), a numerically lost pivot, or a primal-infeasible basic
  // solution. On false the tableau may be partially pivoted and must be
  // discarded; the caller falls back to a cold solve. On true phase 1 can be
  // skipped: the installed basis is feasible and artificial-free, which is
  // its own certificate.
  bool InstallWarmBasis(const WarmStart& warm) {
    if (warm.num_rows != num_rows_ || warm.num_cols != num_cols_ ||
        warm.first_artificial != first_artificial_ ||
        warm.basis.size() != num_rows_) {
      return false;
    }
    std::vector<char> seen(num_cols_, 0);
    for (size_t col : warm.basis) {
      if (col >= first_artificial_) return false;  // artificials never reused
      if (seen[col] != 0) return false;
      seen[col] = 1;
    }
    std::vector<char> claimed(num_rows_, 0);
    for (size_t col : warm.basis) {
      if (is_basic_[col] != 0) {
        // Already basic (a slack from the initial basis): claim its row.
        for (size_t r = 0; r < num_rows_; ++r) {
          if (basis_[r] == col) {
            if (claimed[r] != 0) return false;
            claimed[r] = 1;
            break;
          }
        }
        continue;
      }
      size_t best_row = kNoCol;
      double best_abs = options_.pivot_tol;
      for (size_t r = 0; r < num_rows_; ++r) {
        if (claimed[r] != 0) continue;
        double a = std::abs(rows_[r][col]);
        if (a > best_abs) {
          best_abs = a;
          best_row = r;
        }
      }
      if (best_row == kNoCol) return false;  // singular under this basis
      Pivot(best_row, col);
      claimed[best_row] = 1;
    }
    // warm.basis covers every row (distinct, num_rows_ of them), so every
    // row is claimed and no artificial remains basic. The basic solution
    // must be primal feasible for the phase-1 skip to be sound.
    for (size_t r = 0; r < num_rows_; ++r) {
      if (rhs_[r] < -options_.feasibility_tol) return false;
      if (rhs_[r] < 0.0) rhs_[r] = 0.0;  // round-off within tolerance
    }
    return true;
  }

  // Phase 2 from an installed warm basis (InstallWarmBasis must have
  // returned true).
  SolveResult RunWarm() {
    SolveResult result;
    result.diagnostics.attempts = 1;
    RunPhase2(&result);
    return result;
  }

  size_t num_artificial() const { return num_artificial_; }

  // Snapshot / replay of the mutable tableau state, used by FamilySolver to
  // share one phase-1 run across a family of objectives. Everything else
  // (column layout, cost rows) is rebuilt per member from its own model.
  void SaveState(std::vector<std::vector<double>>* rows,
                 std::vector<double>* rhs, std::vector<size_t>* basis) const {
    *rows = rows_;
    *rhs = rhs_;
    *basis = basis_;
  }
  void RestoreState(const std::vector<std::vector<double>>& rows,
                    const std::vector<double>& rhs,
                    const std::vector<size_t>& basis) {
    rows_ = rows;
    rhs_ = rhs;
    basis_ = basis;
    is_basic_.assign(num_cols_, 0);
    for (size_t b : basis_) is_basic_[b] = 1;
  }

  // Maps internal objective back to the model's sense and variable split.
  void SetModelMapping(const Model& model) { model_ = &model; }

 private:
  void BuildColumns(const Model& model) {
    // Structural columns: one per non-negative variable, two (x+ / x-) per
    // free variable.
    const size_t nv = model.num_variables();
    col_of_var_.resize(nv);
    neg_col_of_var_.assign(nv, kNoCol);
    double sense_sign =
        model.sense() == Sense::kMaximize ? 1.0 : -1.0;
    for (size_t v = 0; v < nv; ++v) {
      col_of_var_[v] = struct_cost_.size();
      struct_cost_.push_back(sense_sign * model.objective()[v]);
      if (!model.nonneg()[v]) {
        neg_col_of_var_[v] = struct_cost_.size();
        struct_cost_.push_back(-sense_sign * model.objective()[v]);
      }
    }
    num_struct_ = struct_cost_.size();
    sense_sign_ = sense_sign;
  }

  void BuildRows(const Model& model) {
    num_rows_ = model.num_constraints();
    // Count slack columns first so artificials can sit at the end.
    size_t num_slack = 0;
    for (const Constraint& c : model.constraints()) {
      if (c.relation != Relation::kEq) ++num_slack;
    }
    first_slack_ = num_struct_;
    first_artificial_ = num_struct_ + num_slack;

    // Determine which rows need an artificial: kEq rows always; inequality
    // rows whose slack coefficient ends up -1 after sign normalisation.
    // Build the dense rows.
    rows_.assign(num_rows_, std::vector<double>());
    rhs_.assign(num_rows_, 0.0);
    basis_.assign(num_rows_, kNoCol);

    size_t slack_cursor = first_slack_;
    size_t artificial_count = 0;
    struct RowPlan {
      double sign;          // row multiplier to make rhs non-negative
      size_t slack_col;     // kNoCol if none
      double slack_coeff;   // +1 or -1 (post sign-normalisation)
      bool needs_artificial;
    };
    std::vector<RowPlan> plans(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      const Constraint& c = model.constraints()[r];
      double sign = c.rhs < 0.0 ? -1.0 : 1.0;
      Relation rel = c.relation;
      if (sign < 0.0) {
        if (rel == Relation::kLe) rel = Relation::kGe;
        else if (rel == Relation::kGe) rel = Relation::kLe;
      }
      RowPlan plan;
      plan.sign = sign;
      plan.slack_col = kNoCol;
      plan.slack_coeff = 0.0;
      plan.needs_artificial = false;
      if (c.relation != Relation::kEq) {
        plan.slack_col = slack_cursor++;
        plan.slack_coeff = (rel == Relation::kLe) ? 1.0 : -1.0;
        plan.needs_artificial = (rel == Relation::kGe);
      } else {
        plan.needs_artificial = true;
      }
      if (plan.needs_artificial) ++artificial_count;
      plans[r] = plan;
    }
    num_artificial_ = artificial_count;
    num_cols_ = first_artificial_ + num_artificial_;

    size_t artificial_cursor = first_artificial_;
    for (size_t r = 0; r < num_rows_; ++r) {
      const Constraint& c = model.constraints()[r];
      const RowPlan& plan = plans[r];
      std::vector<double>& row = rows_[r];
      row.assign(num_cols_, 0.0);
      for (size_t v = 0; v < c.coeffs.dim(); ++v) {
        double a = plan.sign * c.coeffs[v];
        row[col_of_var_[v]] += a;
        if (neg_col_of_var_[v] != kNoCol) row[neg_col_of_var_[v]] -= a;
      }
      rhs_[r] = plan.sign * c.rhs;
      if (plan.slack_col != kNoCol) row[plan.slack_col] = plan.slack_coeff;
      if (plan.needs_artificial) {
        size_t ac = artificial_cursor++;
        row[ac] = 1.0;
        basis_[r] = ac;
      } else {
        basis_[r] = plan.slack_col;  // slack coeff is +1 here by construction
      }
    }

    cost_.assign(num_cols_, 0.0);
    for (size_t j = 0; j < num_struct_; ++j) cost_[j] = struct_cost_[j];

    is_basic_.assign(num_cols_, 0);
    for (size_t b : basis_) is_basic_[b] = 1;
  }

  void FillPivotDiagnostics(SolveDiagnostics* diag) const {
    diag->iterations += last_iterations_;
    diag->used_bland = diag->used_bland || last_used_bland_;
  }

  // Primal simplex on the current tableau with objective `cost`.
  Status Optimize(const std::vector<double>& cost,
                  bool allow_artificial_entering) {
    size_t iterations = 0;
    last_iterations_ = 0;
    last_used_bland_ = false;
    while (true) {
      if (++iterations > options_.max_iterations) {
        last_iterations_ = iterations - 1;
        return Status::Internal("simplex iteration cap exceeded");
      }
      last_iterations_ = iterations;
      const bool bland = iterations > options_.bland_after;
      last_used_bland_ = last_used_bland_ || bland;

      // Reduced costs: c_j - c_B · B^{-1} A_j. With the tableau kept in
      // canonical form (basis columns are unit), the multiplier c_B over
      // row r is cost[basis_[r]].
      size_t entering = kNoCol;
      double best_reduced = options_.pivot_tol;
      const size_t col_limit =
          allow_artificial_entering ? num_cols_ : first_artificial_;
      for (size_t j = 0; j < col_limit; ++j) {
        if (is_basic_[j] != 0) continue;
        double reduced = cost[j];
        for (size_t r = 0; r < num_rows_; ++r) {
          double cb = cost[basis_[r]];
          // float-eq-ok: exact-zero skip-work test
          if (cb != 0.0) reduced -= cb * rows_[r][j];
        }
        if (reduced > options_.pivot_tol) {
          if (bland) {
            entering = j;
            break;
          }
          if (reduced > best_reduced) {
            best_reduced = reduced;
            entering = j;
          }
        }
      }
      if (entering == kNoCol) return Status::Ok();  // optimal

      // Ratio test.
      size_t leaving_row = kNoCol;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < num_rows_; ++r) {
        double a = rows_[r][entering];
        if (a > options_.pivot_tol) {
          double ratio = rhs_[r] / a;
          if (ratio < best_ratio - 1e-12 ||
              (ratio < best_ratio + 1e-12 && leaving_row != kNoCol &&
               basis_[r] < basis_[leaving_row])) {
            best_ratio = ratio;
            leaving_row = r;
          }
        }
      }
      if (leaving_row == kNoCol) {
        return Status::Unbounded("no leaving row in ratio test");
      }
      Pivot(leaving_row, entering);
      // Audit ladder step: every pivot must leave the tableau primal
      // feasible with a canonical basis (sampled via ISRL_AUDIT=sample=N —
      // the unit-column sweep is quadratic in the row count).
      if (audit::ShouldCheck(audit::Checker::kLpTableau)) {
        AuditTableau(cost, allow_artificial_entering ? 1 : 2,
                     "simplex.Pivot");
      }
    }
  }

  // Runs the tableau checker and records the outcome. `cost` is the phase's
  // active objective (the basic-objective finiteness check uses it).
  void AuditTableau(const std::vector<double>& cost, int phase,
                    const char* site) const {
    audit::TableauView view;
    view.rows = &rows_;
    view.rhs = &rhs_;
    view.basis = &basis_;
    view.cost = &cost;
    view.num_cols = num_cols_;
    view.first_artificial = first_artificial_;
    view.phase = phase;
    view.feasibility_tol = options_.feasibility_tol;
    audit::Auditor().Record(audit::Checker::kLpTableau, site,
                            audit::CheckSimplexTableau(view));
  }

  void Pivot(size_t pivot_row, size_t pivot_col) {
    std::vector<double>& prow = rows_[pivot_row];
    const double pivot = prow[pivot_col];
    ISRL_DCHECK_GT(std::abs(pivot), 0.0);
    const double inv = 1.0 / pivot;
    for (double& v : prow) v *= inv;
    rhs_[pivot_row] *= inv;
    prow[pivot_col] = 1.0;  // kill residual round-off

    for (size_t r = 0; r < num_rows_; ++r) {
      if (r == pivot_row) continue;
      double factor = rows_[r][pivot_col];
      if (factor == 0.0) continue;  // float-eq-ok: exact-zero skip-work
      std::vector<double>& row = rows_[r];
      for (size_t j = 0; j < num_cols_; ++j) row[j] -= factor * prow[j];
      row[pivot_col] = 0.0;
      rhs_[r] -= factor * rhs_[pivot_row];
      if (rhs_[r] < 0.0 && rhs_[r] > -1e-11) rhs_[r] = 0.0;
    }
    is_basic_[basis_[pivot_row]] = 0;
    is_basic_[pivot_col] = 1;
    basis_[pivot_row] = pivot_col;
  }

  // After phase 1: swap basic artificials (at value 0) for non-artificial
  // columns where possible; rows with no eligible pivot are redundant and
  // neutralised.
  void DriveOutArtificials() {
    for (size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < first_artificial_) continue;
      size_t col = kNoCol;
      for (size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(rows_[r][j]) > options_.pivot_tol && is_basic_[j] == 0) {
          col = j;
          break;
        }
      }
      if (col != kNoCol) {
        Pivot(r, col);
      } else {
        // Redundant row: zero it so the artificial stays basic at 0 and can
        // never re-enter with a nonzero value.
        for (size_t j = 0; j < first_artificial_; ++j) rows_[r][j] = 0.0;
        rhs_[r] = 0.0;
      }
    }
  }

  double ObjectiveValue() const {
    double z = 0.0;
    for (size_t r = 0; r < num_rows_; ++r) {
      if (basis_[r] < num_struct_) z += struct_cost_[basis_[r]] * rhs_[r];
    }
    return sense_sign_ * z;  // undo the internal max-normalisation
  }

  Vec ExtractSolution() const {
    std::vector<double> col_value(num_cols_, 0.0);
    for (size_t r = 0; r < num_rows_; ++r) col_value[basis_[r]] = rhs_[r];
    Vec x(col_of_var_.size());
    for (size_t v = 0; v < col_of_var_.size(); ++v) {
      double value = col_value[col_of_var_[v]];
      if (neg_col_of_var_[v] != kNoCol) value -= col_value[neg_col_of_var_[v]];
      x[v] = value;
    }
    return x;
  }

  static constexpr size_t kNoCol = static_cast<size_t>(-1);

  const SimplexOptions options_;
  const Model* model_ = nullptr;

  std::vector<size_t> col_of_var_;      // model var -> positive column
  std::vector<size_t> neg_col_of_var_;  // model var -> negative column or kNoCol
  std::vector<double> struct_cost_;     // internal (max-sense) structural costs
  double sense_sign_ = 1.0;

  size_t num_struct_ = 0;
  size_t first_slack_ = 0;
  size_t first_artificial_ = 0;
  size_t num_artificial_ = 0;
  size_t num_rows_ = 0;
  size_t num_cols_ = 0;

  std::vector<std::vector<double>> rows_;
  std::vector<double> rhs_;
  std::vector<double> cost_;    // internal phase-2 costs over all columns
  std::vector<size_t> basis_;   // basic column per row
  std::vector<char> is_basic_;  // column -> basic? (kept in sync with basis_;
                                // O(1) pricing test instead of a row scan)

  size_t last_iterations_ = 0;  // iterations of the most recent Optimize()
  bool last_used_bland_ = false;
};

// Copy of `model` with inequality right-hand sides nudged in the relaxing
// direction — breaks the degenerate ties that make the ratio test cycle
// while keeping every feasible point feasible. Equalities are left exact.
Model PerturbModel(const Model& model, double scale) {
  Model out;
  for (size_t v = 0; v < model.num_variables(); ++v) {
    out.AddVariable(model.objective()[v], model.nonneg()[v]);
  }
  out.SetSense(model.sense());
  size_t r = 0;
  for (const Constraint& c : model.constraints()) {
    double delta = scale * (1.0 + std::abs(c.rhs)) *
                   static_cast<double>((r++ % 7) + 1);
    double rhs = c.rhs;
    if (c.relation == Relation::kLe) rhs += delta;
    if (c.relation == Relation::kGe) rhs -= delta;
    out.AddConstraint(c.coeffs, c.relation, rhs);
  }
  return out;
}

}  // namespace

SolveResult Solve(const Model& model, const SimplexOptions& options) {
  if (g_fault_hook) {
    const size_t attempt = ++g_attempt_counter;
    Status injected = g_fault_hook(model, attempt);
    if (!injected.ok()) {
      SolveResult r;
      r.status = std::move(injected);
      r.diagnostics.attempts = 1;
      r.diagnostics.injected_fault = true;
      return r;
    }
  }
  if (model.num_variables() == 0) {
    SolveResult r;
    r.status = Status::InvalidArgument("model has no variables");
    r.diagnostics.attempts = 1;
    return r;
  }
  Tableau tableau(model, options);
  tableau.SetModelMapping(model);
  return tableau.Run();
}

SolveResult SolveWithRecovery(const Model& model, const SimplexOptions& options,
                              const RetryOptions& retry) {
  SolveDiagnostics aggregate;
  SolveResult result;
  const size_t attempts = std::max<size_t>(1, retry.max_attempts);
  for (size_t attempt = 1; attempt <= attempts; ++attempt) {
    SimplexOptions attempt_options = options;
    const Model* attempt_model = &model;
    Model perturbed;
    if (attempt > 1) {
      // Escalation ladder: Bland's rule from the first pivot (the provably
      // terminating rule) plus widened tolerances; the final attempt also
      // perturbs the model to break degenerate ties.
      double factor = 1.0;
      for (size_t k = 1; k < attempt; ++k) factor *= retry.tol_escalation;
      attempt_options.bland_after = 0;
      attempt_options.feasibility_tol = options.feasibility_tol * factor;
      attempt_options.pivot_tol = options.pivot_tol * factor;
      aggregate.escalated = true;
      if (attempt == attempts && retry.perturbation > 0.0) {
        perturbed = PerturbModel(model, retry.perturbation);
        attempt_model = &perturbed;
        aggregate.perturbed = true;
      }
    }
    result = Solve(*attempt_model, attempt_options);
    aggregate.attempts += result.diagnostics.attempts;
    aggregate.iterations = result.diagnostics.iterations;
    aggregate.phase = result.diagnostics.phase;
    aggregate.used_bland = aggregate.used_bland || result.diagnostics.used_bland;
    aggregate.injected_fault =
        aggregate.injected_fault || result.diagnostics.injected_fault;
    // kInfeasible / kUnbounded are genuine answers; only numerical trouble
    // (kInternal: iteration cap, cycling) earns a retry.
    if (result.status.code() != StatusCode::kInternal) break;
  }
  result.diagnostics = aggregate;
  return result;
}

SolveResult SolveWithWarmStart(const Model& model, const WarmStart& warm,
                               const SimplexOptions& options,
                               const RetryOptions& retry) {
  if (warm.empty() || model.num_variables() == 0) {
    return SolveWithRecovery(model, options, retry);
  }
  if (audit::ShouldCheck(audit::Checker::kLpTableau)) {
    // A stale-but-well-formed basis is a legitimate miss (we degrade to a
    // cold solve); an internally inconsistent one means the caller's cached
    // state was corrupted in flight — that is worth a report.
    audit::Auditor().Record(
        audit::Checker::kLpTableau, "simplex.WarmStart",
        audit::CheckWarmStartBasis(warm.basis, warm.num_rows, warm.num_cols,
                                   warm.first_artificial));
  }
  bool injected = false;
  if (g_fault_hook) {
    const size_t attempt = ++g_attempt_counter;
    injected = !g_fault_hook(model, attempt).ok();
  }
  if (!injected) {
    Tableau tableau(model, options);
    tableau.SetModelMapping(model);
    if (tableau.InstallWarmBasis(warm)) {
      SolveResult result = tableau.RunWarm();
      if (result.ok()) {
        result.diagnostics.warm_started = true;
        return result;
      }
      // A phase-2 failure from a warm basis (iteration cap, spurious
      // unboundedness from escalated round-off) is not trusted: re-derive
      // everything through the cold ladder below.
    }
  }
  SolveResult cold = SolveWithRecovery(model, options, retry);
  cold.diagnostics.warm_rejected = true;
  cold.diagnostics.injected_fault =
      cold.diagnostics.injected_fault || injected;
  return cold;
}

// Per-rung cache for FamilySolver: the member-independent phase-1 outcome of
// one escalation rung — either a failure status every member reports, or the
// post-drive-out tableau state every member's phase 2 starts from.
struct FamilySolver::State {
  struct Rung {
    bool ready = false;
    Status ph1_status;  // Ok, or the shared phase-1 failure
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    std::vector<size_t> basis;
    size_t iterations = 0;
    bool used_bland = false;
  };

  SimplexOptions options;
  RetryOptions retry;
  bool have_family = false;
  Model family;  // constraint-structure reference: the first model seen
  std::vector<Rung> rungs;

  static SolveResult SolveMember(const Model& model,
                                 const SimplexOptions& options, Rung* rung);
};

// One member attempt at one rung. Mirrors Solve() exactly — fault hook,
// empty-model check, fresh tableau — except that phase 1 is replayed from
// the rung cache when available (and cached when not). Phase-1 pivots never
// read the objective, so the replayed state is bit-identical to what this
// member's own phase 1 would have produced.
SolveResult FamilySolver::State::SolveMember(const Model& model,
                                             const SimplexOptions& options,
                                             Rung* rung) {
  if (g_fault_hook) {
    const size_t attempt = ++g_attempt_counter;
    Status injected = g_fault_hook(model, attempt);
    if (!injected.ok()) {
      SolveResult r;
      r.status = std::move(injected);
      r.diagnostics.attempts = 1;
      r.diagnostics.injected_fault = true;
      return r;
    }
  }
  if (model.num_variables() == 0) {
    SolveResult r;
    r.status = Status::InvalidArgument("model has no variables");
    r.diagnostics.attempts = 1;
    return r;
  }
  Tableau tableau(model, options);
  tableau.SetModelMapping(model);
  if (tableau.num_artificial() == 0) return tableau.Run();

  if (!rung->ready) {
    SolveResult result;
    result.diagnostics.attempts = 1;
    const bool ph1_ok = tableau.RunPhase1(&result);
    rung->ready = true;
    rung->ph1_status = ph1_ok ? Status::Ok() : result.status;
    rung->iterations = result.diagnostics.iterations;
    rung->used_bland = result.diagnostics.used_bland;
    if (!ph1_ok) return result;
    tableau.SaveState(&rung->rows, &rung->rhs, &rung->basis);
    tableau.RunPhase2(&result);
    return result;
  }

  SolveResult result;
  result.diagnostics.attempts = 1;
  result.diagnostics.phase = 1;
  result.diagnostics.iterations = rung->iterations;
  result.diagnostics.used_bland = rung->used_bland;
  if (!rung->ph1_status.ok()) {
    result.status = rung->ph1_status;
    return result;
  }
  tableau.RestoreState(rung->rows, rung->rhs, rung->basis);
  tableau.RunPhase2(&result);
  return result;
}

FamilySolver::FamilySolver(const SimplexOptions& options,
                           const RetryOptions& retry)
    : state_(std::make_unique<State>()) {
  state_->options = options;
  state_->retry = retry;
}

FamilySolver::~FamilySolver() = default;

SolveResult FamilySolver::Solve(const Model& model) {
  State& st = *state_;
  if (!st.have_family) {
    st.family = model;
    st.have_family = true;
  } else if (!SameConstraintStructure(model, st.family)) {
    // Not a member of the family after all: solve it cold. Same answer,
    // just without the shared-phase-1 saving.
    return SolveWithRecovery(model, st.options, st.retry);
  }

  // The escalation ladder below must stay rung-for-rung identical to
  // SolveWithRecovery()'s: each member's result is contractually bit-equal
  // to what its own cold recovery solve would return.
  SolveDiagnostics aggregate;
  SolveResult result;
  const size_t attempts = std::max<size_t>(1, st.retry.max_attempts);
  if (st.rungs.size() < attempts) st.rungs.resize(attempts);
  for (size_t attempt = 1; attempt <= attempts; ++attempt) {
    SimplexOptions attempt_options = st.options;
    const Model* attempt_model = &model;
    Model perturbed;
    if (attempt > 1) {
      double factor = 1.0;
      for (size_t k = 1; k < attempt; ++k) factor *= st.retry.tol_escalation;
      attempt_options.bland_after = 0;
      attempt_options.feasibility_tol = st.options.feasibility_tol * factor;
      attempt_options.pivot_tol = st.options.pivot_tol * factor;
      aggregate.escalated = true;
      if (attempt == attempts && st.retry.perturbation > 0.0) {
        // PerturbModel's rhs deltas depend only on the (shared) constraints,
        // so the perturbed members form a family again and the rung cache
        // stays valid for them.
        perturbed = PerturbModel(model, st.retry.perturbation);
        attempt_model = &perturbed;
        aggregate.perturbed = true;
      }
    }
    result = State::SolveMember(*attempt_model, attempt_options,
                                &st.rungs[attempt - 1]);
    aggregate.attempts += result.diagnostics.attempts;
    aggregate.iterations = result.diagnostics.iterations;
    aggregate.phase = result.diagnostics.phase;
    aggregate.used_bland =
        aggregate.used_bland || result.diagnostics.used_bland;
    aggregate.injected_fault =
        aggregate.injected_fault || result.diagnostics.injected_fault;
    if (result.status.code() != StatusCode::kInternal) break;
  }
  result.diagnostics = aggregate;
  return result;
}

void SetLpFaultHookForTest(LpFaultHook hook) {
  g_fault_hook = std::move(hook);
  if (!g_fault_hook) g_attempt_counter = 0;
}

FailingLpHook::FailingLpHook(size_t failures) : failures_(failures) {
  SetLpFaultHookForTest([this](const Model&, size_t) {
    ++seen_;
    if (injected_ < failures_) {
      ++injected_;
      return Status::Internal("injected LP fault");
    }
    return Status::Ok();
  });
}

FailingLpHook::~FailingLpHook() { SetLpFaultHookForTest(nullptr); }

size_t FailingLpHook::attempts_seen() const { return seen_; }

size_t FailingLpHook::failures_injected() const { return injected_; }

}  // namespace isrl::lp
