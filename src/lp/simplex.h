// Dense two-phase primal simplex solver with failure recovery.
//
// Problem sizes in this system are small (tens of variables, up to a few
// hundred constraints from accumulated half-spaces), so a dense tableau with
// Dantzig pricing and a Bland's-rule anti-cycling fallback is both simple and
// fast. All LPs issued by the algorithms go through Solve() or, on the
// interaction hot path, SolveWithRecovery() — which retries kInternal /
// numerically troubled solves with escalated tolerances, Bland-from-start
// pricing, and a tiny deterministic perturbation before giving up.
#ifndef ISRL_LP_SIMPLEX_H_
#define ISRL_LP_SIMPLEX_H_

#include <functional>

#include "common/status.h"
#include "common/vec.h"
#include "lp/model.h"

namespace isrl::lp {

/// Solver tuning knobs. Defaults are appropriate for the well-scaled LPs in
/// this codebase (coefficients are attribute differences in [-1, 1]).
struct SimplexOptions {
  double feasibility_tol = 1e-9;  ///< Phase-1 residual below this = feasible.
  double pivot_tol = 1e-9;        ///< Entries below this are not pivots.
  size_t max_iterations = 100000; ///< Hard iteration cap across both phases.
  size_t bland_after = 2000;      ///< Switch to Bland's rule after this many
                                  ///< Dantzig iterations (anti-cycling).
};

/// What it took to solve (or fail) an LP — filled by Solve() for the single
/// attempt and aggregated across attempts by SolveWithRecovery().
struct SolveDiagnostics {
  size_t attempts = 0;      ///< solve attempts made (1 = no retry needed)
  size_t iterations = 0;    ///< simplex iterations of the last attempt
  int phase = 0;            ///< phase the last attempt ended in (1 or 2)
  bool used_bland = false;  ///< the last attempt pivoted under Bland's rule
  bool escalated = false;   ///< a retry ran with escalated tolerances
  bool perturbed = false;   ///< a retry ran on a perturbed model
  bool injected_fault = false;  ///< a test hook forced at least one failure
};

/// Outcome of Solve(). On kOk, `objective` and `x` hold the optimum; on
/// kInfeasible / kUnbounded they are unspecified. [[nodiscard]]: ignoring a
/// solve outcome means acting on an unspecified optimum.
struct [[nodiscard]] SolveResult {
  Status status;
  double objective = 0.0;
  Vec x;  ///< Values of the model's variables (original indexing).
  SolveDiagnostics diagnostics;

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Solves the model. Returns kInfeasible when no point satisfies the
/// constraints, kUnbounded when the objective is unbounded in the optimise
/// direction, kInternal when the iteration cap is hit.
[[nodiscard]] SolveResult Solve(const Model& model,
                                const SimplexOptions& options = {});

/// Recovery policy for SolveWithRecovery().
struct RetryOptions {
  size_t max_attempts = 3;        ///< total attempts including the first
  double tol_escalation = 100.0;  ///< tolerance multiplier per retry
  double perturbation = 1e-9;     ///< deterministic rhs nudge on the last try
};

/// Solve() plus structured recovery: a kInternal outcome (iteration cap /
/// cycling / numerical trouble) is retried with Bland's rule from the first
/// pivot and escalated tolerances, then once more with a tiny deterministic
/// rhs perturbation. kInfeasible and kUnbounded are genuine answers and are
/// returned immediately. The returned diagnostics describe all attempts.
[[nodiscard]] SolveResult SolveWithRecovery(const Model& model,
                                            const SimplexOptions& options = {},
                                            const RetryOptions& retry = {});

/// Test-only fault injection: when set, the hook runs before every solve
/// attempt (attempt is 1-based and global across Solve*/ calls) and a non-OK
/// return is reported as that attempt's outcome without running the solver.
/// Not thread-safe; intended for deterministic fault-injection tests.
using LpFaultHook = std::function<Status(const Model& model, size_t attempt)>;
void SetLpFaultHookForTest(LpFaultHook hook);

/// RAII installer for an LpFaultHook that fails the first `failures` solve
/// attempts with kInternal — forces the solver down its retry paths.
class FailingLpHook {
 public:
  explicit FailingLpHook(size_t failures);
  ~FailingLpHook();

  FailingLpHook(const FailingLpHook&) = delete;
  FailingLpHook& operator=(const FailingLpHook&) = delete;

  /// Attempts intercepted so far (failed + passed-through).
  size_t attempts_seen() const;
  /// Attempts forced to fail so far.
  size_t failures_injected() const;

 private:
  size_t failures_;
  size_t seen_ = 0;
  size_t injected_ = 0;
};

}  // namespace isrl::lp

#endif  // ISRL_LP_SIMPLEX_H_
