// Dense two-phase primal simplex solver with failure recovery.
//
// Problem sizes in this system are small (tens of variables, up to a few
// hundred constraints from accumulated half-spaces), so a dense tableau with
// Dantzig pricing and a Bland's-rule anti-cycling fallback is both simple and
// fast. All LPs issued by the algorithms go through Solve() or, on the
// interaction hot path, SolveWithRecovery() — which retries kInternal /
// numerically troubled solves with escalated tolerances, Bland-from-start
// pricing, and a tiny deterministic perturbation before giving up.
#ifndef ISRL_LP_SIMPLEX_H_
#define ISRL_LP_SIMPLEX_H_

#include <functional>
#include <memory>

#include "common/status.h"
#include "common/vec.h"
#include "lp/model.h"

namespace isrl::lp {

/// Solver tuning knobs. Defaults are appropriate for the well-scaled LPs in
/// this codebase (coefficients are attribute differences in [-1, 1]).
struct SimplexOptions {
  double feasibility_tol = 1e-9;  ///< Phase-1 residual below this = feasible.
  double pivot_tol = 1e-9;        ///< Entries below this are not pivots.
  size_t max_iterations = 100000; ///< Hard iteration cap across both phases.
  size_t bland_after = 2000;      ///< Switch to Bland's rule after this many
                                  ///< Dantzig iterations (anti-cycling).
};

/// What it took to solve (or fail) an LP — filled by Solve() for the single
/// attempt and aggregated across attempts by SolveWithRecovery().
struct SolveDiagnostics {
  size_t attempts = 0;      ///< solve attempts made (1 = no retry needed)
  size_t iterations = 0;    ///< simplex iterations of the last attempt
  int phase = 0;            ///< phase the last attempt ended in (1 or 2)
  bool used_bland = false;  ///< the last attempt pivoted under Bland's rule
  bool escalated = false;   ///< a retry ran with escalated tolerances
  bool perturbed = false;   ///< a retry ran on a perturbed model
  bool injected_fault = false;  ///< a test hook forced at least one failure
  bool warm_started = false;    ///< solved from an installed warm basis
  bool warm_rejected = false;   ///< a warm basis was offered but unusable
};

/// An optimal basis exported by a successful solve, reusable as the starting
/// point of the next solve over a same-shaped tableau (same constraint count,
/// same column layout). SolveWithWarmStart() validates the fingerprint and the
/// basis content before trusting it; anything stale or corrupt degrades to a
/// cold solve, never to a wrong answer (see DESIGN.md §17).
struct WarmStart {
  std::vector<size_t> basis;  ///< basic column per tableau row, in row order
  size_t num_rows = 0;        ///< tableau shape fingerprint: row count,
  size_t num_cols = 0;        ///< column count (after the x = x⁺ − x⁻ split),
  size_t first_artificial = 0;  ///< and where the artificial columns begin.

  [[nodiscard]] bool empty() const { return basis.empty(); }
};

/// Outcome of Solve(). On kOk, `objective` and `x` hold the optimum; on
/// kInfeasible / kUnbounded they are unspecified. [[nodiscard]]: ignoring a
/// solve outcome means acting on an unspecified optimum.
struct [[nodiscard]] SolveResult {
  Status status;
  double objective = 0.0;
  Vec x;  ///< Values of the model's variables (original indexing).
  SolveDiagnostics diagnostics;
  WarmStart warm;  ///< On kOk: the optimal basis, for chaining solves.

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Solves the model. Returns kInfeasible when no point satisfies the
/// constraints, kUnbounded when the objective is unbounded in the optimise
/// direction, kInternal when the iteration cap is hit.
[[nodiscard]] SolveResult Solve(const Model& model,
                                const SimplexOptions& options = {});

/// Recovery policy for SolveWithRecovery().
struct RetryOptions {
  size_t max_attempts = 3;        ///< total attempts including the first
  double tol_escalation = 100.0;  ///< tolerance multiplier per retry
  double perturbation = 1e-9;     ///< deterministic rhs nudge on the last try
};

/// Solve() plus structured recovery: a kInternal outcome (iteration cap /
/// cycling / numerical trouble) is retried with Bland's rule from the first
/// pivot and escalated tolerances, then once more with a tiny deterministic
/// rhs perturbation. kInfeasible and kUnbounded are genuine answers and are
/// returned immediately. The returned diagnostics describe all attempts.
[[nodiscard]] SolveResult SolveWithRecovery(const Model& model,
                                            const SimplexOptions& options = {},
                                            const RetryOptions& retry = {});

/// SolveWithRecovery() that first attempts to resume from `warm`, the optimal
/// basis of a previous same-shaped solve. The warm attempt re-factorises the
/// basis against the new tableau (a crash install: one pivot per basic
/// column) and skips phase 1 entirely when the installed basis is primal
/// feasible. Any mismatch — stale shape fingerprint, corrupt basis content,
/// lost pivot, infeasible basic solution, or a phase-2 failure — falls back
/// to the full cold retry ladder, so the result is exactly as trustworthy as
/// SolveWithRecovery()'s: a feasible warm basis is its own certificate, and
/// everything else is re-derived from scratch. Diagnostics report
/// warm_started / warm_rejected accordingly.
[[nodiscard]] SolveResult SolveWithWarmStart(const Model& model,
                                             const WarmStart& warm,
                                             const SimplexOptions& options = {},
                                             const RetryOptions& retry = {});

/// Shared-phase-1 solver for a *family* of LPs that differ only in objective
/// (sense, costs) over bitwise-identical constraints and variable domains —
/// AA's 2d rectangle extent LPs are the motivating case. Phase 1 of the
/// two-phase simplex never reads the objective, so its end state (tableau
/// rows, rhs, basis) is member-independent: FamilySolver runs it once per
/// retry-ladder rung and replays the cached state for every member, then runs
/// phase 2 with the member's own cost row. The per-member pivot sequence —
/// and therefore the returned objective and x, bit for bit — is identical to
/// what that member's own SolveWithRecovery() would produce; only the
/// repeated phase-1 work is elided. Members whose constraint structure does
/// not match the first model seen are detected and solved cold. Not
/// thread-safe; use one instance per call site.
class FamilySolver {
 public:
  explicit FamilySolver(const SimplexOptions& options = {},
                        const RetryOptions& retry = {});
  ~FamilySolver();

  FamilySolver(const FamilySolver&) = delete;
  FamilySolver& operator=(const FamilySolver&) = delete;

  /// Solves one member. Bit-identical to SolveWithRecovery(model, options,
  /// retry) for every member whose constraints match the family's.
  [[nodiscard]] SolveResult Solve(const Model& model);

 private:
  struct State;
  std::unique_ptr<State> state_;
};

/// Test-only fault injection: when set, the hook runs before every solve
/// attempt (attempt is 1-based and global across Solve*/ calls) and a non-OK
/// return is reported as that attempt's outcome without running the solver.
/// Not thread-safe; intended for deterministic fault-injection tests.
using LpFaultHook = std::function<Status(const Model& model, size_t attempt)>;
void SetLpFaultHookForTest(LpFaultHook hook);

/// RAII installer for an LpFaultHook that fails the first `failures` solve
/// attempts with kInternal — forces the solver down its retry paths.
class FailingLpHook {
 public:
  explicit FailingLpHook(size_t failures);
  ~FailingLpHook();

  FailingLpHook(const FailingLpHook&) = delete;
  FailingLpHook& operator=(const FailingLpHook&) = delete;

  /// Attempts intercepted so far (failed + passed-through).
  size_t attempts_seen() const;
  /// Attempts forced to fail so far.
  size_t failures_injected() const;

 private:
  size_t failures_;
  size_t seen_ = 0;
  size_t injected_ = 0;
};

}  // namespace isrl::lp

#endif  // ISRL_LP_SIMPLEX_H_
