// Dense two-phase primal simplex solver.
//
// Problem sizes in this system are small (tens of variables, up to a few
// hundred constraints from accumulated half-spaces), so a dense tableau with
// Dantzig pricing and a Bland's-rule anti-cycling fallback is both simple and
// fast. All LPs issued by the algorithms go through Solve().
#ifndef ISRL_LP_SIMPLEX_H_
#define ISRL_LP_SIMPLEX_H_

#include "common/status.h"
#include "common/vec.h"
#include "lp/model.h"

namespace isrl::lp {

/// Solver tuning knobs. Defaults are appropriate for the well-scaled LPs in
/// this codebase (coefficients are attribute differences in [-1, 1]).
struct SimplexOptions {
  double feasibility_tol = 1e-9;  ///< Phase-1 residual below this = feasible.
  double pivot_tol = 1e-9;        ///< Entries below this are not pivots.
  size_t max_iterations = 100000; ///< Hard iteration cap across both phases.
  size_t bland_after = 2000;      ///< Switch to Bland's rule after this many
                                  ///< Dantzig iterations (anti-cycling).
};

/// Outcome of Solve(). On kOk, `objective` and `x` hold the optimum; on
/// kInfeasible / kUnbounded they are unspecified.
struct SolveResult {
  Status status;
  double objective = 0.0;
  Vec x;  ///< Values of the model's variables (original indexing).

  bool ok() const { return status.ok(); }
};

/// Solves the model. Returns kInfeasible when no point satisfies the
/// constraints, kUnbounded when the objective is unbounded in the optimise
/// direction, kInternal when the iteration cap is hit.
SolveResult Solve(const Model& model, const SimplexOptions& options = {});

}  // namespace isrl::lp

#endif  // ISRL_LP_SIMPLEX_H_
