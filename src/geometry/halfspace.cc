#include "geometry/halfspace.h"

#include <cmath>

#include "common/strings.h"

namespace isrl {

std::string Halfspace::ToString() const {
  return Format("{%s . u >= %.6g}", normal.ToString().c_str(), offset);
}

Halfspace PreferenceHalfspace(const Vec& preferred, const Vec& other) {
  ISRL_CHECK_EQ(preferred.dim(), other.dim());
  return Halfspace{preferred - other, 0.0};
}

Halfspace EpsilonHalfspace(const Vec& winner, const Vec& other,
                           double epsilon) {
  ISRL_CHECK_EQ(winner.dim(), other.dim());
  ISRL_CHECK_GE(epsilon, 0.0);
  return Halfspace{winner - other * (1.0 - epsilon), 0.0};
}

double DistanceToHyperplane(const Vec& c, const Halfspace& h) {
  double norm = h.normal.Norm();
  ISRL_CHECK_GT(norm, 0.0);
  return std::abs(h.Margin(c)) / norm;
}

}  // namespace isrl
