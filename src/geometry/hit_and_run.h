// Hit-and-run sampling from the utility range given only its half-space set.
//
// Several components need representative utility vectors from
// R = U ∩ h₁⁺ ∩ … without materialising R as a polytope: AA's candidate-pair
// pool, SinglePass's informativeness filter, and the max-regret-ratio
// trajectory metric of Figures 7/8 (the paper samples 10,000 vectors from the
// current intersection). Hit-and-run walks inside the simplex's affine hull
// (Σu = 1): pick a random sum-zero direction, intersect the line with every
// constraint to get the feasible segment, jump to a uniform point on it.
// The chain's stationary distribution is uniform over R.
#ifndef ISRL_GEOMETRY_HIT_AND_RUN_H_
#define ISRL_GEOMETRY_HIT_AND_RUN_H_

#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "geometry/halfspace.h"

namespace isrl {

/// Options for the hit-and-run chain.
struct HitAndRunOptions {
  size_t burn_in = 32;      ///< steps before the first sample is kept
  size_t thinning = 4;      ///< steps between kept samples
  double boundary_eps = 1e-9;
};

/// Draws `count` approximately uniform samples from
/// { u : u ≥ 0, Σu = 1, h.Contains(u) ∀h ∈ cuts } starting from the strictly
/// feasible interior point `start` (e.g. AA's inner-sphere centre). Returns
/// an empty vector when `start` is not feasible.
std::vector<Vec> HitAndRunSample(const std::vector<Halfspace>& cuts,
                                 const Vec& start, size_t count, Rng& rng,
                                 const HitAndRunOptions& options = {});

}  // namespace isrl

#endif  // ISRL_GEOMETRY_HIT_AND_RUN_H_
