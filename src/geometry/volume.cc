#include "geometry/volume.h"

#include <algorithm>

#include "common/check.h"

namespace isrl {

double SimplexFractionVolume(size_t d, const std::vector<Halfspace>& cuts,
                             size_t samples, Rng& rng) {
  ISRL_CHECK_GE(d, 2u);
  ISRL_CHECK_GE(samples, 1u);
  size_t inside = 0;
  for (size_t s = 0; s < samples; ++s) {
    Vec u = rng.SimplexUniform(d);
    bool ok = true;
    for (const Halfspace& h : cuts) {
      if (!h.Contains(u, 0.0)) {
        ok = false;
        break;
      }
    }
    if (ok) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(samples);
}

double ExactSegmentFraction(const std::vector<Halfspace>& cuts) {
  // Parameterise the 1-simplex as u = (t, 1−t), t ∈ [0, 1]. Each half-space
  // n·u ≥ b becomes (n0 − n1)·t ≥ b − n1: a one-sided interval constraint.
  double lo = 0.0, hi = 1.0;
  for (const Halfspace& h : cuts) {
    ISRL_CHECK_EQ(h.normal.dim(), 2u);
    double a = h.normal[0] - h.normal[1];
    double b = h.offset - h.normal[1];
    if (std::abs(a) < 1e-15) {
      if (b > 0.0) return 0.0;  // unsatisfiable constant constraint
      continue;
    }
    if (a > 0.0) {
      lo = std::max(lo, b / a);
    } else {
      hi = std::min(hi, b / a);
    }
  }
  return std::max(0.0, hi - lo);
}

}  // namespace isrl
