// The utility range R: the intersection of the unit simplex
// U = { u ≥ 0, Σu = 1 } with the half-spaces learned from user answers.
//
// Algorithm EA needs R's extreme utility vectors (its corner points) for the
// state representation, the terminal test of Lemma 6, and sampling. R lives
// inside the simplex, so it is a bounded polytope and equals the convex hull
// of its vertices. Vertices correspond to subsets of d−1 tight constraints
// drawn from { u_i = 0 } ∪ { cut boundaries } (plus Σu = 1), and the seed
// implementation enumerated ALL such subsets after every cut — exponential in
// practice and the main scaling wall for high dimension and long sessions.
//
// This version maintains vertex–facet adjacency across cuts (DESIGN.md §17):
// each vertex carries the sorted index set of its d−1 tight inequality
// constraints (its incident facets). A new half-space then classifies the
// existing vertices in O(V·d); only the dead vertices are replaced, by
// walking the adjacency graph — two vertices are adjacent (share an edge) iff
// their facet sets share d−2 indices, and every new vertex lies where a
// live–dead edge crosses the new hyperplane. The incremental step is
// *certified*: guard-band tests prove the polytope is in simple position and
// that the update reproduces the full enumeration bit-for-bit; any ambiguity
// (a vertex within the guard band of the new cut, a near-degenerate solve, a
// near-duplicate vertex) falls back to the full combinatorial enumeration,
// which doubles as the adjacency (re)builder. Results are therefore always
// bit-identical to the seed path, which is retained as the audit-gated
// reference (and as the `incremental = false` baseline for benchmarks).
#ifndef ISRL_GEOMETRY_POLYHEDRON_H_
#define ISRL_GEOMETRY_POLYHEDRON_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "geometry/halfspace.h"

namespace isrl {

/// Bounded polytope R = U ∩ h₁⁺ ∩ … ∩ h_k⁺ with explicit vertex enumeration
/// and incremental vertex–facet adjacency maintenance across cuts.
class Polyhedron {
 public:
  /// Numeric tolerances for tightness / feasibility classification.
  struct Options {
    double feasibility_tol = 1e-9;
    double dedup_tol = 1e-7;
    /// When true (the default), Cut() updates the vertex set incrementally
    /// through the adjacency structure whenever the update can be certified
    /// bit-identical to a full re-enumeration, falling back otherwise. When
    /// false, every cut re-enumerates from the full H-rep (the seed path —
    /// kept as the benchmark baseline and audit reference).
    bool incremental = true;
  };

  /// The whole utility space U (the unit simplex) in d dimensions, d ≥ 2.
  static Polyhedron UnitSimplex(size_t d);
  static Polyhedron UnitSimplex(size_t d, Options options);

  /// Rebuilds a polyhedron from checkpointed cuts + vertices (core/snapshot
  /// codec). The vertex set is adopted verbatim — NOT re-enumerated — so a
  /// restored session sees bit-identical extreme vectors; the parts are
  /// validated instead (dimension agreement, every vertex feasible under
  /// the cuts and the simplex constraints) and inconsistent input surfaces
  /// as an InvalidArgument Status, never a CHECK. The adjacency structure is
  /// NOT serialized: it is rebuilt deterministically by the first Cut()
  /// after restore (which re-enumerates), so snapshot bytes and
  /// restart-at-every-round bit-identity are unchanged (DESIGN.md §17).
  static Result<Polyhedron> FromSnapshotParts(size_t d, Options options,
                                              std::vector<Halfspace> cuts,
                                              std::vector<Vec> vertices);

  /// Intersects R with the half-space and recomputes the vertex set —
  /// incrementally via the adjacency graph when certified, by full
  /// re-enumeration otherwise. Redundant cuts (strictly slack at every
  /// vertex) are dropped.
  void Cut(const Halfspace& h);

  /// Cut() that refuses to empty R: when the half-space would leave no
  /// feasible vertex (a conflicting answer from an inconsistent user), the
  /// previous state is restored and false is returned. The degradation
  /// primitive of the fault-tolerant interaction engine. [[nodiscard]]: a
  /// dropped return means a rejected answer is treated as learned.
  [[nodiscard]] bool TryCut(const Halfspace& h);

  /// Corner points (extreme utility vectors E) of R. Empty iff R is empty
  /// (up to tolerance).
  const std::vector<Vec>& vertices() const { return vertices_; }

  /// The retained (non-redundant) cuts, excluding the simplex constraints.
  const std::vector<Halfspace>& cuts() const { return cuts_; }

  /// Per-vertex incident-facet sets (parallel to vertices(), valid only when
  /// adjacency_valid()): the sorted indices of the d−1 inequality
  /// constraints tight at each vertex. Index space: 0..d−1 are the
  /// non-negativity facets u_i ≥ 0, d+j is cuts()[j]. Exposed for the audit
  /// checkers and tests.
  const std::vector<std::vector<uint32_t>>& vertex_facets() const {
    return facets_;
  }

  /// True when vertex_facets() describes vertices() and the polytope is in
  /// certified simple position (every vertex has exactly d−1 tight
  /// inequality constraints, pairwise distinct). False after a snapshot
  /// restore or a degenerate configuration — the next Cut() then rebuilds
  /// the structure by full enumeration.
  [[nodiscard]] bool adjacency_valid() const { return adjacency_valid_; }

  size_t dim() const { return dim_; }

  /// True when no vertex satisfies all constraints.
  [[nodiscard]] bool IsEmpty() const { return vertices_.empty(); }

  /// True when `u` satisfies the simplex constraints and all cuts.
  [[nodiscard]] bool Contains(const Vec& u, double tol = 1e-9) const;

  /// Arithmetic mean of the vertices (inside R by convexity). R must be
  /// non-empty.
  [[nodiscard]] Vec Centroid() const;

  /// A random point of R: a Dirichlet(1)-weighted convex combination of the
  /// vertices. Covers all of R with positive density (not volume-uniform;
  /// EA only needs representative interior points, see DESIGN.md).
  Vec SampleInterior(Rng& rng) const;

  /// Largest pairwise vertex distance (0 for a point, R must be non-empty).
  [[nodiscard]] double Diameter() const;

 private:
  Polyhedron(size_t d, Options options) : dim_(d), options_(options) {}

  /// Full combinatorial vertex enumeration from the current constraint set
  /// (the seed path). With `track_adjacency`, also records each vertex's
  /// tight-facet set and certifies simple position (setting
  /// adjacency_valid_); without, clears the structure.
  void EnumerateVertices(bool track_adjacency);

  /// One incremental update for the just-appended cut. Returns false —
  /// leaving vertices_/facets_ untouched — whenever the update cannot be
  /// certified bit-identical to full re-enumeration.
  bool TryIncrementalCut();

  /// Removes cuts that are strictly slack at every vertex (safe: R is the
  /// convex hull of its vertices) and renumbers the facet indices of the
  /// retained cuts in the adjacency structure.
  void DropRedundantCuts();

  size_t dim_;
  Options options_;
  std::vector<Halfspace> cuts_;
  std::vector<Vec> vertices_;
  /// Tight-facet set per vertex (see vertex_facets()); maintained sorted by
  /// lexicographic facet-set order, which is exactly the enumeration order
  /// of the seed path.
  std::vector<std::vector<uint32_t>> facets_;
  bool adjacency_valid_ = false;
};

}  // namespace isrl

#endif  // ISRL_GEOMETRY_POLYHEDRON_H_
