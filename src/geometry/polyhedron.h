// The utility range R: the intersection of the unit simplex
// U = { u ≥ 0, Σu = 1 } with the half-spaces learned from user answers.
//
// Algorithm EA needs R's extreme utility vectors (its corner points) for the
// state representation, the terminal test of Lemma 6, and sampling. R lives
// inside the simplex, so it is a bounded polytope and equals the convex hull
// of its vertices. Vertices are enumerated combinatorially: every vertex is
// the unique solution of Σu = 1 plus d−1 tight constraints drawn from
// { u_i = 0 } ∪ { cut boundaries }, filtered for feasibility. The paper
// restricts polyhedron-maintaining algorithms to d ≤ 10 and EA's experiments
// stop at d = 5, where this enumeration is fast; redundant cuts are dropped
// after every update to keep the constraint count at the O(#rounds) scale.
#ifndef ISRL_GEOMETRY_POLYHEDRON_H_
#define ISRL_GEOMETRY_POLYHEDRON_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "geometry/halfspace.h"

namespace isrl {

/// Bounded polytope R = U ∩ h₁⁺ ∩ … ∩ h_k⁺ with explicit vertex enumeration.
class Polyhedron {
 public:
  /// Numeric tolerances for tightness / feasibility classification.
  struct Options {
    double feasibility_tol = 1e-9;
    double dedup_tol = 1e-7;
  };

  /// The whole utility space U (the unit simplex) in d dimensions, d ≥ 2.
  static Polyhedron UnitSimplex(size_t d);
  static Polyhedron UnitSimplex(size_t d, Options options);

  /// Rebuilds a polyhedron from checkpointed cuts + vertices (core/snapshot
  /// codec). The vertex set is adopted verbatim — NOT re-enumerated — so a
  /// restored session sees bit-identical extreme vectors; the parts are
  /// validated instead (dimension agreement, every vertex feasible under
  /// the cuts and the simplex constraints) and inconsistent input surfaces
  /// as an InvalidArgument Status, never a CHECK.
  static Result<Polyhedron> FromSnapshotParts(size_t d, Options options,
                                              std::vector<Halfspace> cuts,
                                              std::vector<Vec> vertices);

  /// Intersects R with the half-space and recomputes the vertex set.
  /// Redundant cuts (strictly slack at every vertex) are dropped.
  void Cut(const Halfspace& h);

  /// Cut() that refuses to empty R: when the half-space would leave no
  /// feasible vertex (a conflicting answer from an inconsistent user), the
  /// previous state is restored and false is returned. The degradation
  /// primitive of the fault-tolerant interaction engine. [[nodiscard]]: a
  /// dropped return means a rejected answer is treated as learned.
  [[nodiscard]] bool TryCut(const Halfspace& h);

  /// Corner points (extreme utility vectors E) of R. Empty iff R is empty
  /// (up to tolerance).
  const std::vector<Vec>& vertices() const { return vertices_; }

  /// The retained (non-redundant) cuts, excluding the simplex constraints.
  const std::vector<Halfspace>& cuts() const { return cuts_; }

  size_t dim() const { return dim_; }

  /// True when no vertex satisfies all constraints.
  [[nodiscard]] bool IsEmpty() const { return vertices_.empty(); }

  /// True when `u` satisfies the simplex constraints and all cuts.
  [[nodiscard]] bool Contains(const Vec& u, double tol = 1e-9) const;

  /// Arithmetic mean of the vertices (inside R by convexity). R must be
  /// non-empty.
  [[nodiscard]] Vec Centroid() const;

  /// A random point of R: a Dirichlet(1)-weighted convex combination of the
  /// vertices. Covers all of R with positive density (not volume-uniform;
  /// EA only needs representative interior points, see DESIGN.md).
  Vec SampleInterior(Rng& rng) const;

  /// Largest pairwise vertex distance (0 for a point, R must be non-empty).
  [[nodiscard]] double Diameter() const;

 private:
  Polyhedron(size_t d, Options options) : dim_(d), options_(options) {}

  /// Full combinatorial vertex enumeration from the current constraint set.
  void EnumerateVertices();
  /// Removes cuts that are strictly slack at every vertex (safe: R is the
  /// convex hull of its vertices).
  void DropRedundantCuts();

  size_t dim_;
  Options options_;
  std::vector<Halfspace> cuts_;
  std::vector<Vec> vertices_;
};

}  // namespace isrl

#endif  // ISRL_GEOMETRY_POLYHEDRON_H_
