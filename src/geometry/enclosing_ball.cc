#include "geometry/enclosing_ball.h"

#include <algorithm>
#include <cmath>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/check.h"
#include "common/matrix.h"

namespace isrl {
namespace {

// Largest and second-largest distances from `c` to `points`, with the index
// of the farthest point. For a single point both distances are 0.
struct FarthestPair {
  size_t farthest_index = 0;
  double first = 0.0;
  double second = 0.0;
};

FarthestPair FindFarthestTwo(const Vec& c, const std::vector<Vec>& points) {
  FarthestPair out;
  for (size_t i = 0; i < points.size(); ++i) {
    double dist = Distance(c, points[i]);
    if (dist > out.first) {
      out.second = out.first;
      out.first = dist;
      out.farthest_index = i;
    } else if (dist > out.second) {
      out.second = dist;
    }
  }
  return out;
}

// Smallest ball with every point of `boundary` on its surface (circumsphere
// restricted to the affine hull). Returns radius < 0 for an empty set.
Ball BallWithBoundary(std::vector<Vec> boundary) {
  while (true) {
    if (boundary.empty()) return Ball{Vec(), -1.0};
    const size_t k = boundary.size();
    const Vec& q0 = boundary[0];
    if (k == 1) return Ball{q0, 0.0};

    // Solve the Gram system for c = q0 + Σ λ_j v_j with all points
    // equidistant: Σ_j λ_j (2 v_i·v_j) = ‖v_i‖².
    Matrix gram(k - 1, k - 1);
    Vec rhs(k - 1);
    std::vector<Vec> v;
    v.reserve(k - 1);
    for (size_t i = 1; i < k; ++i) v.push_back(boundary[i] - q0);
    for (size_t i = 0; i + 1 < k; ++i) {
      for (size_t j = 0; j + 1 < k; ++j) gram(i, j) = 2.0 * Dot(v[i], v[j]);
      rhs[i] = v[i].NormSquared();
    }
    Vec lambda(k - 1);
    if (!SolveLinearSystem(gram, rhs, &lambda)) {
      // Affinely dependent boundary (degenerate input): the dropped point is
      // determined by the rest, so the circumsphere of the remainder is the
      // same ball.
      boundary.pop_back();
      continue;
    }
    Vec center = q0;
    for (size_t j = 0; j + 1 < k; ++j) center += v[j] * lambda[j];
    return Ball{center, Distance(center, q0)};
  }
}

Ball WelzlRecurse(std::vector<Vec>& points, size_t n, std::vector<Vec>& boundary,
                  size_t dim) {
  if (n == 0 || boundary.size() == dim + 1) {
    return BallWithBoundary(boundary);
  }
  const Vec p = points[n - 1];
  Ball ball = WelzlRecurse(points, n - 1, boundary, dim);
  if (ball.radius >= 0.0 && ball.Contains(p, 1e-9)) return ball;

  boundary.push_back(p);
  ball = WelzlRecurse(points, n - 1, boundary, dim);
  boundary.pop_back();

  // Move-to-front: keep boundary-defining points early for the classic
  // expected-linear behaviour.
  for (size_t i = n - 1; i > 0; --i) points[i] = points[i - 1];
  points[0] = p;
  return ball;
}

}  // namespace

Ball IterativeOuterBall(const std::vector<Vec>& points,
                        const IterativeBallOptions& options) {
  ISRL_CHECK(!points.empty());
  // Deterministic start at the mean; the paper starts at a random vector but
  // the shrink iteration (Lemma 3) is identical from any start.
  Vec center(points[0].dim());
  for (const Vec& p : points) center += p;
  center /= static_cast<double>(points.size());

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    FarthestPair far = FindFarthestTwo(center, points);
    if (far.first <= 0.0) break;  // all points coincide with the centre
    double offset = 0.5 * (far.first - far.second);
    if (offset < options.offset_threshold) break;
    // Move the centre towards the farthest point by `offset`.
    Vec direction = points[far.farthest_index] - center;
    center += direction * (offset / far.first);
  }

  FarthestPair far = FindFarthestTwo(center, points);
  Ball ball{center, far.first};
  if (audit::ShouldCheck(audit::Checker::kEnclosingBall)) {
    audit::Auditor().Record(audit::Checker::kEnclosingBall,
                            "IterativeOuterBall",
                            audit::CheckBallEncloses(ball, points, 1e-7));
  }
  return ball;
}

Ball WelzlMinimumBall(const std::vector<Vec>& points, Rng& rng) {
  ISRL_CHECK(!points.empty());
  std::vector<Vec> shuffled = points;
  rng.Shuffle(&shuffled);
  std::vector<Vec> boundary;
  Ball ball = WelzlRecurse(shuffled, shuffled.size(), boundary,
                           points[0].dim());
  if (ball.radius < 0.0) ball = Ball{points[0], 0.0};
  // Guard against round-off: make sure the reported radius really covers.
  double max_dist = 0.0;
  for (const Vec& p : points) max_dist = std::max(max_dist, Distance(ball.center, p));
  ball.radius = std::max(ball.radius, max_dist);
  if (audit::ShouldCheck(audit::Checker::kEnclosingBall)) {
    audit::Auditor().Record(audit::Checker::kEnclosingBall, "WelzlMinimumBall",
                            audit::CheckBallEncloses(ball, points, 1e-7));
  }
  return ball;
}

}  // namespace isrl
