// Outer spheres for EA's state representation.
//
// The paper approximates the utility range with the smallest sphere enclosing
// its extreme utility vectors, computed by an iterative centre-shift
// heuristic (Section IV-B, Lemma 3): repeatedly move the centre towards the
// farthest point by half the gap between the two largest distances. We also
// provide Welzl's exact minimum enclosing ball as a reference implementation
// (used by tests and the ablation benches to quantify the heuristic's gap).
#ifndef ISRL_GEOMETRY_ENCLOSING_BALL_H_
#define ISRL_GEOMETRY_ENCLOSING_BALL_H_

#include <vector>

#include "common/rng.h"
#include "common/vec.h"

namespace isrl {

/// A d-dimensional ball (B_c, B_r).
struct Ball {
  Vec center;
  double radius = 0.0;

  /// True when `p` is inside the ball up to `tol` slack.
  [[nodiscard]] bool Contains(const Vec& p, double tol = 1e-9) const {
    return Distance(center, p) <= radius + tol;
  }
};

/// Tuning for the paper's iterative outer-ball heuristic.
struct IterativeBallOptions {
  size_t max_iterations = 100;
  double offset_threshold = 1e-6;  ///< Stop when the centre moves less.
};

/// The paper's iterative outer sphere (Lemma 3). `points` must be non-empty.
/// The centre starts at the point mean (a deterministic stand-in for the
/// paper's random start; the iteration is identical). The returned radius is
/// the exact max distance from the final centre, so the ball always encloses
/// all points.
[[nodiscard]] Ball IterativeOuterBall(const std::vector<Vec>& points,
                                      const IterativeBallOptions& options = {});

/// Exact minimum enclosing ball via Welzl's randomised algorithm with
/// move-to-front. `points` must be non-empty.
[[nodiscard]] Ball WelzlMinimumBall(const std::vector<Vec>& points, Rng& rng);

}  // namespace isrl

#endif  // ISRL_GEOMETRY_ENCLOSING_BALL_H_
