// Polytope volume estimation over the utility simplex.
//
// Lemma 5 argues that sampling V makes large-volume terminal polyhedra
// likely to be constructed; the volume estimator lets tests and diagnostics
// verify that property empirically. Volumes are measured relative to the
// (d−1)-dimensional Lebesgue measure of the simplex's affine hull, reported
// as the *fraction* of the unit simplex's volume — exactly the quantity
// Lemma 5's sampling argument is about.
#ifndef ISRL_GEOMETRY_VOLUME_H_
#define ISRL_GEOMETRY_VOLUME_H_

#include <vector>

#include "common/rng.h"
#include "geometry/halfspace.h"

namespace isrl {

/// Monte-Carlo estimate of vol(U ∩ cuts) / vol(U): the fraction of
/// simplex-uniform draws satisfying every cut. Standard error is
/// √(p(1−p)/samples).
double SimplexFractionVolume(size_t d, const std::vector<Halfspace>& cuts,
                             size_t samples, Rng& rng);

/// Exact fraction for d = 2 (the simplex is a segment; each origin-through
/// cut clips an interval). Used as ground truth for the estimator's tests.
double ExactSegmentFraction(const std::vector<Halfspace>& cuts);

}  // namespace isrl

#endif  // ISRL_GEOMETRY_VOLUME_H_
