#include "geometry/hit_and_run.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace isrl {
namespace {

// Feasibility of u against the simplex inequalities and the cuts (the Σu = 1
// equality is maintained exactly by the sum-zero walk directions).
bool Feasible(const Vec& u, const std::vector<Halfspace>& cuts, double eps) {
  for (size_t i = 0; i < u.dim(); ++i) {
    if (u[i] < -eps) return false;
  }
  for (const Halfspace& h : cuts) {
    if (!h.Contains(u, eps)) return false;
  }
  return true;
}

// Random direction in the sum-zero subspace (so Σu stays 1 along the line).
Vec SumZeroDirection(size_t d, Rng& rng) {
  while (true) {
    Vec dir(d);
    double mean = 0.0;
    for (size_t i = 0; i < d; ++i) {
      dir[i] = rng.Gaussian();
      mean += dir[i];
    }
    mean /= static_cast<double>(d);
    for (size_t i = 0; i < d; ++i) dir[i] -= mean;
    double norm = dir.Norm();
    if (norm > 1e-12) {
      dir /= norm;
      return dir;
    }
  }
}

}  // namespace

std::vector<Vec> HitAndRunSample(const std::vector<Halfspace>& cuts,
                                 const Vec& start, size_t count, Rng& rng,
                                 const HitAndRunOptions& options) {
  const size_t d = start.dim();
  if (!Feasible(start, cuts, options.boundary_eps)) return {};

  std::vector<Vec> samples;
  samples.reserve(count);
  Vec x = start;

  const size_t total_steps = options.burn_in + count * std::max<size_t>(1, options.thinning);
  size_t kept_counter = 0;
  for (size_t step = 0; step < total_steps && samples.size() < count; ++step) {
    Vec dir = SumZeroDirection(d, rng);

    // Feasible parameter range for x + t·dir.
    double tmin = -std::numeric_limits<double>::infinity();
    double tmax = std::numeric_limits<double>::infinity();
    auto clip = [&](double coeff, double margin) {
      // constraint: margin + t·coeff ≥ 0
      if (coeff > 1e-14) {
        tmin = std::max(tmin, -margin / coeff);
      } else if (coeff < -1e-14) {
        tmax = std::min(tmax, -margin / coeff);
      } else if (margin < -options.boundary_eps) {
        tmin = 1.0;
        tmax = 0.0;  // infeasible line (should not happen from interior x)
      }
    };
    for (size_t i = 0; i < d; ++i) clip(dir[i], x[i]);
    for (const Halfspace& h : cuts) clip(Dot(h.normal, dir), h.Margin(x));

    if (!(tmin <= tmax)) continue;  // degenerate direction; try another
    double t = rng.Uniform(tmin, tmax);
    Vec candidate = x + dir * t;
    if (!Feasible(candidate, cuts, 1e-7)) continue;  // round-off guard
    x = candidate;

    if (step >= options.burn_in) {
      if (++kept_counter >= std::max<size_t>(1, options.thinning)) {
        kept_counter = 0;
        samples.push_back(x);
      }
    }
  }
  // If thinning starved the collection (rare degenerate geometry), top up
  // with the current chain point so callers always get `count` samples.
  while (!samples.empty() && samples.size() < count) samples.push_back(x);
  return samples;
}

}  // namespace isrl
