#include "geometry/convex_hull.h"

#include "lp/simplex.h"

namespace isrl {

namespace {

// Shared convex-combination feasibility LP over ALL n multipliers λ_j:
//
//   λ ≥ 0,  Σ_j λ_j = 1,  Σ_j λ_j q_j = p        (feasible ⇒ p not extreme)
//
// The query point itself must be excluded from the combination, which the
// naive formulation does by rebuilding an (n−1)-variable model per query —
// Θ(n·d) constraint writes each time. Here the constraint matrix is built
// once over all n columns; a query only zeroes the excluded columns (their
// λ become inert variables whose all-zero columns cannot affect
// feasibility) and patches the d coordinate right-hand sides to the query
// point.
//
// Every point bitwise-equal to the query is excluded along with it:
// otherwise a duplicated hull vertex is "represented" by its own twin
// (λ_twin = 1) and every copy reports non-extreme, silently deleting the
// vertex from the hull.
//
// Successive queries reshape only coefficients, never the tableau shape, so
// the sweep chains each feasible solve's optimal basis into the next query
// via lp::SolveWithWarmStart — a stale basis degrades to a cold solve and
// the verdict (feasible/infeasible) is unaffected (DESIGN.md §17).
class ExtremenessLp {
 public:
  explicit ExtremenessLp(const std::vector<Vec>& points)
      : points_(points), dim_(points.empty() ? 0 : points[0].dim()) {
    const size_t n = points_.size();
    for (size_t j = 0; j < n; ++j) {
      model_.AddVariable(0.0, /*nonneg=*/true);
    }
    Vec ones(n, 1.0);
    model_.AddConstraint(ones, lp::Relation::kEq, 1.0);
    for (size_t coord = 0; coord < dim_; ++coord) {
      Vec row(n);
      for (size_t j = 0; j < n; ++j) row[j] = points_[j][coord];
      // RHS is patched per query; 0 is a placeholder.
      model_.AddConstraint(row, lp::Relation::kEq, 0.0);
    }
  }

  /// True iff points[index] is a vertex of conv(points).
  bool IsExtreme(size_t index) {
    ISRL_CHECK_LT(index, points_.size());
    RestoreColumns();
    ExcludeColumns(index);
    lp::SolveResult result = lp::SolveWithWarmStart(model_, warm_);
    if (result.ok()) warm_ = result.warm;
    return !result.ok();  // infeasible = not representable = extreme
  }

 private:
  static bool BitwiseEqual(const Vec& a, const Vec& b) {
    if (a.dim() != b.dim()) return false;
    for (size_t c = 0; c < a.dim(); ++c) {
      if (a[c] != b[c]) return false;  // float-eq-ok: duplicate = same bits
    }
    return true;
  }

  void ExcludeColumns(size_t index) {
    const Vec& q = points_[index];
    for (size_t j = 0; j < points_.size(); ++j) {
      if (j != index && !BitwiseEqual(points_[j], q)) continue;
      model_.SetConstraintCoefficient(0, j, 0.0);
      for (size_t coord = 0; coord < dim_; ++coord) {
        model_.SetConstraintCoefficient(1 + coord, j, 0.0);
      }
      excluded_.push_back(j);
    }
    for (size_t coord = 0; coord < dim_; ++coord) {
      model_.SetConstraintRhs(1 + coord, q[coord]);
    }
  }

  void RestoreColumns() {
    for (size_t j : excluded_) {
      model_.SetConstraintCoefficient(0, j, 1.0);
      for (size_t coord = 0; coord < dim_; ++coord) {
        model_.SetConstraintCoefficient(1 + coord, j, points_[j][coord]);
      }
    }
    excluded_.clear();
  }

  const std::vector<Vec>& points_;
  size_t dim_;
  lp::Model model_;
  std::vector<size_t> excluded_;
  lp::WarmStart warm_;
};

}  // namespace

bool IsExtremePoint(const std::vector<Vec>& points, size_t index) {
  ISRL_CHECK_LT(index, points.size());
  if (points.size() <= 1) return true;
  ExtremenessLp shared(points);
  return shared.IsExtreme(index);
}

std::vector<size_t> ExtremePointIndices(const std::vector<Vec>& points) {
  std::vector<size_t> out;
  if (points.empty()) return out;
  if (points.size() == 1) return {0};
  // One shared model; each query patches Θ(d) entries instead of rebuilding
  // the Θ(n·d) constraint matrix.
  ExtremenessLp shared(points);
  for (size_t i = 0; i < points.size(); ++i) {
    if (shared.IsExtreme(i)) out.push_back(i);
  }
  return out;
}

}  // namespace isrl
