#include "geometry/convex_hull.h"

#include "lp/simplex.h"

namespace isrl {

namespace {

// Shared convex-combination feasibility LP over ALL n multipliers λ_j:
//
//   λ ≥ 0,  Σ_j λ_j = 1,  Σ_j λ_j q_j = p        (feasible ⇒ p not extreme)
//
// The query point itself must be excluded from the combination, which the
// naive formulation does by rebuilding an (n−1)-variable model per query —
// Θ(n·d) constraint writes each time. Here the constraint matrix is built
// once over all n columns; a query only zeroes the excluded point's column
// (its λ becomes an inert variable whose all-zero column cannot affect
// feasibility) and patches the d coordinate right-hand sides to the query
// point. That is Θ(d) writes per query, plus Θ(d) to restore the previously
// excluded column.
class ExtremenessLp {
 public:
  explicit ExtremenessLp(const std::vector<Vec>& points)
      : points_(points), dim_(points.empty() ? 0 : points[0].dim()) {
    const size_t n = points_.size();
    for (size_t j = 0; j < n; ++j) {
      model_.AddVariable(0.0, /*nonneg=*/true);
    }
    Vec ones(n, 1.0);
    model_.AddConstraint(ones, lp::Relation::kEq, 1.0);
    for (size_t coord = 0; coord < dim_; ++coord) {
      Vec row(n);
      for (size_t j = 0; j < n; ++j) row[j] = points_[j][coord];
      // RHS is patched per query; 0 is a placeholder.
      model_.AddConstraint(row, lp::Relation::kEq, 0.0);
    }
  }

  /// True iff points[index] is a vertex of conv(points).
  bool IsExtreme(size_t index) {
    ISRL_CHECK_LT(index, points_.size());
    RestoreColumn();
    ExcludeColumn(index);
    lp::SolveResult result = lp::Solve(model_);
    return !result.ok();  // infeasible = not representable = extreme
  }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  void ExcludeColumn(size_t index) {
    model_.SetConstraintCoefficient(0, index, 0.0);
    for (size_t coord = 0; coord < dim_; ++coord) {
      model_.SetConstraintCoefficient(1 + coord, index, 0.0);
      model_.SetConstraintRhs(1 + coord, points_[index][coord]);
    }
    excluded_ = index;
  }

  void RestoreColumn() {
    if (excluded_ == kNone) return;
    model_.SetConstraintCoefficient(0, excluded_, 1.0);
    for (size_t coord = 0; coord < dim_; ++coord) {
      model_.SetConstraintCoefficient(1 + coord, excluded_,
                                      points_[excluded_][coord]);
    }
    excluded_ = kNone;
  }

  const std::vector<Vec>& points_;
  size_t dim_;
  lp::Model model_;
  size_t excluded_ = kNone;
};

}  // namespace

bool IsExtremePoint(const std::vector<Vec>& points, size_t index) {
  ISRL_CHECK_LT(index, points.size());
  if (points.size() <= 1) return true;
  ExtremenessLp shared(points);
  return shared.IsExtreme(index);
}

std::vector<size_t> ExtremePointIndices(const std::vector<Vec>& points) {
  std::vector<size_t> out;
  if (points.empty()) return out;
  if (points.size() == 1) return {0};
  // One shared model; each query patches Θ(d) entries instead of rebuilding
  // the Θ(n·d) constraint matrix.
  ExtremenessLp shared(points);
  for (size_t i = 0; i < points.size(); ++i) {
    if (shared.IsExtreme(i)) out.push_back(i);
  }
  return out;
}

}  // namespace isrl
