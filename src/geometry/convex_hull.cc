#include "geometry/convex_hull.h"

#include "lp/simplex.h"

namespace isrl {

bool IsExtremePoint(const std::vector<Vec>& points, size_t index) {
  ISRL_CHECK_LT(index, points.size());
  const size_t n = points.size();
  const size_t d = points[index].dim();
  if (n <= 1) return true;

  // Feasibility LP: λ ≥ 0, Σλ_j = 1, Σλ_j q_j = p over q_j ≠ p.
  // Feasible ⇒ p ∈ conv(others) ⇒ not extreme.
  lp::Model model;
  for (size_t j = 0; j < n; ++j) {
    if (j == index) continue;
    model.AddVariable(0.0, /*nonneg=*/true);
  }
  const size_t num_lambda = n - 1;

  Vec ones(num_lambda, 1.0);
  model.AddConstraint(ones, lp::Relation::kEq, 1.0);
  for (size_t coord = 0; coord < d; ++coord) {
    Vec row(num_lambda);
    size_t k = 0;
    for (size_t j = 0; j < n; ++j) {
      if (j == index) continue;
      row[k++] = points[j][coord];
    }
    model.AddConstraint(row, lp::Relation::kEq, points[index][coord]);
  }

  lp::SolveResult result = lp::Solve(model);
  return !result.ok();  // infeasible = not representable = extreme
}

std::vector<size_t> ExtremePointIndices(const std::vector<Vec>& points) {
  std::vector<size_t> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (IsExtremePoint(points, i)) out.push_back(i);
  }
  return out;
}

}  // namespace isrl
