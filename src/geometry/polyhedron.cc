#include "geometry/polyhedron.h"

#include <algorithm>
#include <cmath>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/matrix.h"

namespace isrl {

Polyhedron Polyhedron::UnitSimplex(size_t d) {
  return UnitSimplex(d, Options());
}

Polyhedron Polyhedron::UnitSimplex(size_t d, Options options) {
  ISRL_CHECK_GE(d, 2u);
  Polyhedron p(d, options);
  p.EnumerateVertices();
  return p;
}

Result<Polyhedron> Polyhedron::FromSnapshotParts(size_t d, Options options,
                                                 std::vector<Halfspace> cuts,
                                                 std::vector<Vec> vertices) {
  if (d < 2) {
    return Status::InvalidArgument("polyhedron snapshot: dimension < 2");
  }
  for (const Halfspace& h : cuts) {
    if (h.normal.dim() != d) {
      return Status::InvalidArgument(
          "polyhedron snapshot: cut normal dimension mismatch");
    }
  }
  Polyhedron p(d, options);
  p.cuts_ = std::move(cuts);
  // Containment at a loose tolerance: snapshot vertices were enumerated at
  // feasibility_tol, so an honest snapshot passes easily, while corrupted
  // coordinates (bit flips survive CRC only if re-framed) are rejected.
  const double tol = 1e-6;
  for (const Vec& v : vertices) {
    if (v.dim() != d || !p.Contains(v, tol)) {
      return Status::InvalidArgument(
          "polyhedron snapshot: vertex outside the polyhedron");
    }
  }
  p.vertices_ = std::move(vertices);
  return p;
}

void Polyhedron::Cut(const Halfspace& h) {
  ISRL_CHECK_EQ(h.normal.dim(), dim_);
  // A cut already satisfied everywhere would survive DropRedundantCuts but
  // wastes enumeration work; skip it outright.
  bool all_strictly_inside = !vertices_.empty();
  for (const Vec& v : vertices_) {
    if (h.Margin(v) <= options_.feasibility_tol) {
      all_strictly_inside = false;
      break;
    }
  }
  if (all_strictly_inside) return;
  // Audit: a cut only ever shrinks R, so the vertex-set diameter (a
  // monotone volume proxy) must not grow, and every re-enumerated vertex
  // must satisfy the full constraint set.
  const bool auditing = audit::ShouldCheck(audit::Checker::kPolyhedron);
  const bool had_vertices = !vertices_.empty();
  double proxy_before = 0.0;
  if (auditing && had_vertices) proxy_before = Diameter();
  cuts_.push_back(h);
  EnumerateVertices();
  DropRedundantCuts();
  if (auditing) {
    std::vector<std::string> problems = audit::CheckPolyhedronVertices(
        dim_, cuts_, vertices_, 10.0 * options_.feasibility_tol);
    if (had_vertices && !vertices_.empty()) {
      std::vector<std::string> monotone = audit::CheckCutMonotonicity(
          proxy_before, Diameter(), 1e-7);
      problems.insert(problems.end(), monotone.begin(), monotone.end());
    }
    audit::Auditor().Record(audit::Checker::kPolyhedron, "Polyhedron.Cut",
                            problems);
  }
}

bool Polyhedron::TryCut(const Halfspace& h) {
  std::vector<Halfspace> saved_cuts = cuts_;
  std::vector<Vec> saved_vertices = vertices_;
  Cut(h);
  if (!vertices_.empty()) return true;
  cuts_ = std::move(saved_cuts);
  vertices_ = std::move(saved_vertices);
  return false;
}

bool Polyhedron::Contains(const Vec& u, double tol) const {
  if (u.dim() != dim_) return false;
  double sum = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    if (u[i] < -tol) return false;
    sum += u[i];
  }
  if (std::abs(sum - 1.0) > tol) return false;
  for (const Halfspace& h : cuts_) {
    if (!h.Contains(u, tol)) return false;
  }
  return true;
}

Vec Polyhedron::Centroid() const {
  ISRL_CHECK(!vertices_.empty());
  Vec c(dim_);
  for (const Vec& v : vertices_) c += v;
  c /= static_cast<double>(vertices_.size());
  return c;
}

Vec Polyhedron::SampleInterior(Rng& rng) const {
  ISRL_CHECK(!vertices_.empty());
  Vec weights = rng.SimplexUniform(vertices_.size());
  Vec u(dim_);
  for (size_t i = 0; i < vertices_.size(); ++i) u += vertices_[i] * weights[i];
  return u;
}

double Polyhedron::Diameter() const {
  ISRL_CHECK(!vertices_.empty());
  double best = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    for (size_t j = i + 1; j < vertices_.size(); ++j) {
      best = std::max(best, Distance(vertices_[i], vertices_[j]));
    }
  }
  return best;
}

void Polyhedron::EnumerateVertices() {
  vertices_.clear();

  // Inequality constraints: d non-negativity rows then the cuts.
  const size_t num_ineq = dim_ + cuts_.size();
  auto ineq_normal = [&](size_t idx, size_t coord) -> double {
    if (idx < dim_) return idx == coord ? 1.0 : 0.0;
    return cuts_[idx - dim_].normal[coord];
  };
  auto ineq_offset = [&](size_t idx) -> double {
    return idx < dim_ ? 0.0 : cuts_[idx - dim_].offset;
  };

  const size_t k = dim_ - 1;  // tight inequalities per vertex
  if (num_ineq < k) return;

  std::vector<size_t> subset(k);
  for (size_t i = 0; i < k; ++i) subset[i] = i;

  Matrix a(dim_, dim_);
  Vec b(dim_);
  Vec x(dim_);

  auto feasible = [&](const Vec& u) {
    for (size_t idx = 0; idx < num_ineq; ++idx) {
      double margin = -ineq_offset(idx);
      for (size_t c = 0; c < dim_; ++c) margin += ineq_normal(idx, c) * u[c];
      if (margin < -options_.feasibility_tol) return false;
    }
    return true;
  };

  while (true) {
    // Build the d×d system: Σu = 1 plus the k chosen tight constraints.
    for (size_t c = 0; c < dim_; ++c) a(0, c) = 1.0;
    b[0] = 1.0;
    for (size_t r = 0; r < k; ++r) {
      for (size_t c = 0; c < dim_; ++c) a(r + 1, c) = ineq_normal(subset[r], c);
      b[r + 1] = ineq_offset(subset[r]);
    }
    if (SolveLinearSystem(a, b, &x) && feasible(x)) {
      bool duplicate = false;
      for (const Vec& v : vertices_) {
        if (ApproxEqual(v, x, options_.dedup_tol)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) vertices_.push_back(x);
    }

    // Advance to the next k-subset of [0, num_ineq).
    size_t i = k;
    while (i > 0) {
      --i;
      if (subset[i] + (k - i) < num_ineq) {
        ++subset[i];
        for (size_t j = i + 1; j < k; ++j) subset[j] = subset[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;  // d == 1 degenerate guard (excluded by UnitSimplex)
  }
}

void Polyhedron::DropRedundantCuts() {
  if (vertices_.empty()) return;
  // Keep only cuts that are tight at some vertex; a cut strictly slack at
  // every vertex cannot touch conv(vertices) = R.
  const double tight_tol = 1e-7;
  std::vector<Halfspace> kept;
  kept.reserve(cuts_.size());
  for (const Halfspace& h : cuts_) {
    bool tight_somewhere = false;
    for (const Vec& v : vertices_) {
      if (std::abs(h.Margin(v)) <= tight_tol * std::max(1.0, h.normal.Norm())) {
        tight_somewhere = true;
        break;
      }
    }
    if (tight_somewhere) kept.push_back(h);
  }
  cuts_ = std::move(kept);
}

}  // namespace isrl
