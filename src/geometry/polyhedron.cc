#include "geometry/polyhedron.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/matrix.h"

namespace isrl {
namespace {

// Guard band for the simple-position certificate: a constraint counts as
// strictly slack at a vertex only when its margin exceeds this × the
// constraint scale. The band is one dedup_tol wide, so two subset solutions
// closer than the dedup distance can never both be certified (DESIGN.md §17).
constexpr double kSlackGuard = 1e-7;
// Residual bound for a constraint claimed tight at a vertex; well above the
// solver's ~1e-15 residual on a well-conditioned system, well below the guard.
constexpr double kTightSlop = 1e-9;

/// Scale of inequality constraint `idx` (non-negativity rows are unit).
double ConstraintScale(size_t dim, const std::vector<Halfspace>& cuts,
                       size_t idx) {
  if (idx < dim) return 1.0;
  return std::max(1.0, cuts[idx - dim].normal.Norm());
}

/// Margin of inequality constraint `idx` at `u`, with the exact accumulation
/// order of the seed enumerator's feasibility test.
double ConstraintMargin(size_t dim, const std::vector<Halfspace>& cuts,
                        size_t idx, const Vec& u) {
  double margin = idx < dim ? -0.0 : -cuts[idx - dim].offset;
  for (size_t c = 0; c < dim; ++c) {
    const double normal_c =
        idx < dim ? (idx == c ? 1.0 : 0.0) : cuts[idx - dim].normal[c];
    margin += normal_c * u[c];
  }
  return margin;
}

/// Full certificate for one vertex: every constraint in `facet_set` (sorted)
/// is tight within kTightSlop × scale, every other constraint is strictly
/// slack beyond kSlackGuard × scale. This is what "simple position" means
/// operationally; see DESIGN.md §17 for why it implies the incremental
/// update is bit-identical to full enumeration.
bool CertifyVertex(size_t dim, const std::vector<Halfspace>& cuts,
                   const Vec& u, const std::vector<uint32_t>& facet_set) {
  const size_t num_ineq = dim + cuts.size();
  size_t next = 0;  // cursor into the sorted facet set
  for (size_t idx = 0; idx < num_ineq; ++idx) {
    const double margin = ConstraintMargin(dim, cuts, idx, u);
    const double scale = ConstraintScale(dim, cuts, idx);
    if (next < facet_set.size() && facet_set[next] == idx) {
      ++next;
      if (std::abs(margin) > kTightSlop * scale) return false;
    } else {
      if (margin <= kSlackGuard * scale) return false;
    }
  }
  return next == facet_set.size();
}

/// Edge map of the adjacency structure: each (d−2)-subset obtained by
/// dropping one facet from a vertex's facet set is an edge key; the value
/// lists the vertices incident to that edge. In certified simple position on
/// a bounded polytope every edge has exactly two endpoints, so every value
/// must have size 2 — a count of 1 is a dangling edge and proves a vertex is
/// missing from the enumeration (e.g. a pivot-rejected near-singular subset
/// system), which is exactly the configuration where an incremental update
/// could silently diverge from the seed path.
using EdgeMap = std::map<std::vector<uint32_t>, std::vector<uint32_t>>;

EdgeMap BuildEdgeMap(const std::vector<std::vector<uint32_t>>& facets) {
  EdgeMap edges;
  std::vector<uint32_t> key;
  for (size_t i = 0; i < facets.size(); ++i) {
    for (size_t drop = 0; drop < facets[i].size(); ++drop) {
      key.clear();
      for (size_t f = 0; f < facets[i].size(); ++f) {
        if (f != drop) key.push_back(facets[i][f]);
      }
      edges[key].push_back(static_cast<uint32_t>(i));
    }
  }
  return edges;
}

bool EdgeGraphComplete(const EdgeMap& edges) {
  for (const auto& [key, ends] : edges) {
    if (ends.size() != 2) return false;
  }
  return true;
}

/// Verbatim seed-path vertex enumeration: solve every (d−1)-subset of the
/// inequality constraints together with Σu = 1, keep feasible non-duplicate
/// solutions in lexicographic subset order. With `track`, also records the
/// generating subset of every accepted vertex and whether dedup ever fired.
/// Every arithmetic operation matches the seed implementation exactly — this
/// function IS the bit-identity reference.
struct EnumerationResult {
  std::vector<Vec> vertices;
  std::vector<std::vector<uint32_t>> facets;
  bool dedup_fired = false;
};

void EnumerateFromScratch(size_t dim, const Polyhedron::Options& options,
                          const std::vector<Halfspace>& cuts, bool track,
                          EnumerationResult* out) {
  out->vertices.clear();
  out->facets.clear();
  out->dedup_fired = false;

  // Inequality constraints: d non-negativity rows then the cuts.
  const size_t num_ineq = dim + cuts.size();
  auto ineq_normal = [&](size_t idx, size_t coord) -> double {
    if (idx < dim) return idx == coord ? 1.0 : 0.0;
    return cuts[idx - dim].normal[coord];
  };
  auto ineq_offset = [&](size_t idx) -> double {
    return idx < dim ? 0.0 : cuts[idx - dim].offset;
  };

  const size_t k = dim - 1;  // tight inequalities per vertex
  if (num_ineq < k) return;

  std::vector<size_t> subset(k);
  for (size_t i = 0; i < k; ++i) subset[i] = i;

  Matrix a(dim, dim);
  Vec b(dim);
  Vec x(dim);

  auto feasible = [&](const Vec& u) {
    for (size_t idx = 0; idx < num_ineq; ++idx) {
      double margin = -ineq_offset(idx);
      for (size_t c = 0; c < dim; ++c) margin += ineq_normal(idx, c) * u[c];
      if (margin < -options.feasibility_tol) return false;
    }
    return true;
  };

  while (true) {
    // Build the d×d system: Σu = 1 plus the k chosen tight constraints.
    for (size_t c = 0; c < dim; ++c) a(0, c) = 1.0;
    b[0] = 1.0;
    for (size_t r = 0; r < k; ++r) {
      for (size_t c = 0; c < dim; ++c) a(r + 1, c) = ineq_normal(subset[r], c);
      b[r + 1] = ineq_offset(subset[r]);
    }
    if (SolveLinearSystem(a, b, &x) && feasible(x)) {
      bool duplicate = false;
      for (const Vec& v : out->vertices) {
        if (ApproxEqual(v, x, options.dedup_tol)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        out->vertices.push_back(x);
        if (track) {
          out->facets.emplace_back(subset.begin(), subset.end());
        }
      } else if (track) {
        out->dedup_fired = true;
      }
    }

    // Advance to the next k-subset of [0, num_ineq).
    size_t i = k;
    while (i > 0) {
      --i;
      if (subset[i] + (k - i) < num_ineq) {
        ++subset[i];
        for (size_t j = i + 1; j < k; ++j) subset[j] = subset[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;  // d == 1 degenerate guard (excluded by UnitSimplex)
  }
}

}  // namespace

Polyhedron Polyhedron::UnitSimplex(size_t d) {
  return UnitSimplex(d, Options());
}

Polyhedron Polyhedron::UnitSimplex(size_t d, Options options) {
  ISRL_CHECK_GE(d, 2u);
  Polyhedron p(d, options);
  p.EnumerateVertices(options.incremental);
  return p;
}

Result<Polyhedron> Polyhedron::FromSnapshotParts(size_t d, Options options,
                                                 std::vector<Halfspace> cuts,
                                                 std::vector<Vec> vertices) {
  if (d < 2) {
    return Status::InvalidArgument("polyhedron snapshot: dimension < 2");
  }
  for (const Halfspace& h : cuts) {
    if (h.normal.dim() != d) {
      return Status::InvalidArgument(
          "polyhedron snapshot: cut normal dimension mismatch");
    }
  }
  Polyhedron p(d, options);
  p.cuts_ = std::move(cuts);
  // Containment at a loose tolerance: snapshot vertices were enumerated at
  // feasibility_tol, so an honest snapshot passes easily, while corrupted
  // coordinates (bit flips survive CRC only if re-framed) are rejected.
  const double tol = 1e-6;
  for (const Vec& v : vertices) {
    if (v.dim() != d || !p.Contains(v, tol)) {
      return Status::InvalidArgument(
          "polyhedron snapshot: vertex outside the polyhedron");
    }
  }
  p.vertices_ = std::move(vertices);
  // adjacency_valid_ stays false: the facet structure is not serialized and
  // is rebuilt (deterministically, by full enumeration) on the first Cut().
  return p;
}

void Polyhedron::Cut(const Halfspace& h) {
  ISRL_CHECK_EQ(h.normal.dim(), dim_);
  // A cut already satisfied everywhere would survive DropRedundantCuts but
  // wastes enumeration work; skip it outright.
  bool all_strictly_inside = !vertices_.empty();
  for (const Vec& v : vertices_) {
    if (h.Margin(v) <= options_.feasibility_tol) {
      all_strictly_inside = false;
      break;
    }
  }
  if (all_strictly_inside) return;
  // Audit: a cut only ever shrinks R, so the vertex-set diameter (a
  // monotone volume proxy) must not grow, and every re-enumerated vertex
  // must satisfy the full constraint set.
  const bool auditing = audit::ShouldCheck(audit::Checker::kPolyhedron);
  const bool had_vertices = !vertices_.empty();
  double proxy_before = 0.0;
  if (auditing && had_vertices) proxy_before = Diameter();
  cuts_.push_back(h);
  bool incremental_done = false;
  if (options_.incremental && adjacency_valid_) {
    incremental_done = TryIncrementalCut();
  }
  if (!incremental_done) {
    EnumerateVertices(options_.incremental);
  } else if (audit::ShouldCheck(audit::Checker::kPolyhedronAdjacency)) {
    // Audit-gated reference: re-run the seed enumeration from scratch and
    // demand bitwise agreement with the incremental result (the analogue of
    // PR 4's scalar NN reference path).
    EnumerationResult ref;
    EnumerateFromScratch(dim_, options_, cuts_, /*track=*/false, &ref);
    std::vector<std::string> problems;
    if (ref.vertices.size() != vertices_.size()) {
      problems.push_back("incremental vertex count " +
                         std::to_string(vertices_.size()) +
                         " != reference " +
                         std::to_string(ref.vertices.size()));
    } else {
      for (size_t i = 0; i < vertices_.size() && problems.empty(); ++i) {
        for (size_t c = 0; c < dim_; ++c) {
          // float-eq-ok: bit-identity is the contract being audited.
          if (vertices_[i][c] != ref.vertices[i][c]) {
            problems.push_back("incremental vertex " + std::to_string(i) +
                               " coord " + std::to_string(c) +
                               " differs from the seed-path reference");
            break;
          }
        }
      }
    }
    audit::Auditor().Record(audit::Checker::kPolyhedronAdjacency,
                            "Polyhedron.Cut.reference", problems);
  }
  DropRedundantCuts();
  if (auditing) {
    std::vector<std::string> problems = audit::CheckPolyhedronVertices(
        dim_, cuts_, vertices_, 10.0 * options_.feasibility_tol);
    if (had_vertices && !vertices_.empty()) {
      std::vector<std::string> monotone = audit::CheckCutMonotonicity(
          proxy_before, Diameter(), 1e-7);
      problems.insert(problems.end(), monotone.begin(), monotone.end());
    }
    audit::Auditor().Record(audit::Checker::kPolyhedron, "Polyhedron.Cut",
                            problems);
  }
  if (adjacency_valid_ &&
      audit::ShouldCheck(audit::Checker::kPolyhedronAdjacency)) {
    audit::Auditor().Record(
        audit::Checker::kPolyhedronAdjacency, "Polyhedron.Cut",
        audit::CheckPolyhedronAdjacency(dim_, cuts_, vertices_, facets_,
                                        kSlackGuard));
  }
}

bool Polyhedron::TryCut(const Halfspace& h) {
  std::vector<Halfspace> saved_cuts = cuts_;
  std::vector<Vec> saved_vertices = vertices_;
  std::vector<std::vector<uint32_t>> saved_facets = facets_;
  const bool saved_valid = adjacency_valid_;
  Cut(h);
  if (!vertices_.empty()) return true;
  cuts_ = std::move(saved_cuts);
  vertices_ = std::move(saved_vertices);
  facets_ = std::move(saved_facets);
  adjacency_valid_ = saved_valid;
  return false;
}

bool Polyhedron::Contains(const Vec& u, double tol) const {
  if (u.dim() != dim_) return false;
  double sum = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    if (u[i] < -tol) return false;
    sum += u[i];
  }
  if (std::abs(sum - 1.0) > tol) return false;
  for (const Halfspace& h : cuts_) {
    if (!h.Contains(u, tol)) return false;
  }
  return true;
}

Vec Polyhedron::Centroid() const {
  ISRL_CHECK(!vertices_.empty());
  Vec c(dim_);
  for (const Vec& v : vertices_) c += v;
  c /= static_cast<double>(vertices_.size());
  return c;
}

Vec Polyhedron::SampleInterior(Rng& rng) const {
  ISRL_CHECK(!vertices_.empty());
  Vec weights = rng.SimplexUniform(vertices_.size());
  Vec u(dim_);
  for (size_t i = 0; i < vertices_.size(); ++i) u += vertices_[i] * weights[i];
  return u;
}

double Polyhedron::Diameter() const {
  ISRL_CHECK(!vertices_.empty());
  double best = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    for (size_t j = i + 1; j < vertices_.size(); ++j) {
      best = std::max(best, Distance(vertices_[i], vertices_[j]));
    }
  }
  return best;
}

void Polyhedron::EnumerateVertices(bool track_adjacency) {
  EnumerationResult result;
  EnumerateFromScratch(dim_, options_, cuts_, track_adjacency, &result);
  vertices_ = std::move(result.vertices);
  facets_.clear();
  adjacency_valid_ = false;
  if (!track_adjacency) return;
  // Certify simple position: no dedup event (a dedup hides a subset solution
  // and breaks the one-subset-per-vertex invariant), every vertex strictly
  // slack outside its facet set, and a complete edge graph (every edge has
  // both endpoints — a dangling edge means a pivot-rejected subset system
  // hid a vertex). Only a fully certified structure enables the incremental
  // path; anything else re-enumerates on the next cut.
  if (result.dedup_fired) return;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (!CertifyVertex(dim_, cuts_, vertices_[i], result.facets[i])) return;
  }
  if (!EdgeGraphComplete(BuildEdgeMap(result.facets))) return;
  facets_ = std::move(result.facets);
  adjacency_valid_ = true;
}

bool Polyhedron::TryIncrementalCut() {
  // cuts_ already contains the new half-space as its last element.
  const size_t num_ineq = dim_ + cuts_.size();
  const auto m = static_cast<uint32_t>(num_ineq - 1);
  const Halfspace& h = cuts_.back();
  if (vertices_.empty()) return false;

  // 1. Classify every vertex against the new constraint. Any vertex inside
  //    the guard band is ambiguous — the certified argument needs every old
  //    vertex strictly on one side — so fall back.
  const double guard = kSlackGuard * std::max(1.0, h.normal.Norm());
  std::vector<char> dead(vertices_.size(), 0);
  bool any_dead = false;
  bool any_live = false;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const double margin = ConstraintMargin(dim_, cuts_, m, vertices_[i]);
    if (std::abs(margin) <= guard) return false;
    dead[i] = margin < 0.0 ? 1 : 0;
    (dead[i] ? any_dead : any_live) = true;
  }
  // All-live is handled by Cut()'s skip (its threshold is looser than the
  // guard); all-dead empties R, which only the reference path may declare.
  if (!any_dead || !any_live) return false;

  // 2. Walk the adjacency graph: candidate vertices lie where an edge with
  //    one live and one dead endpoint crosses the new hyper-plane. The edge
  //    map doubles as the completeness re-check of the stored structure.
  const EdgeMap edges = BuildEdgeMap(facets_);
  if (!EdgeGraphComplete(edges)) return false;

  // 3. Solve each crossing edge's subset (the shared d−2 facets plus the new
  //    constraint) with the seed-identical linear system, in lexicographic
  //    subset order (std::map iteration order), and certify each solution:
  //    exact-tight on its subset, strictly slack elsewhere, and not within
  //    dedup distance of any retained or new vertex. Any failed certificate
  //    falls back to full enumeration, untouched state.
  Matrix a(dim_, dim_);
  Vec b(dim_);
  Vec x(dim_);
  std::vector<Vec> fresh;
  std::vector<std::vector<uint32_t>> fresh_facets;
  std::vector<uint32_t> subset;
  for (const auto& [key, ends] : edges) {
    if (dead[ends[0]] == dead[ends[1]]) continue;
    subset = key;
    subset.push_back(m);  // m is the largest index: stays sorted
    for (size_t c = 0; c < dim_; ++c) a(0, c) = 1.0;
    b[0] = 1.0;
    for (size_t r = 0; r < subset.size(); ++r) {
      const size_t idx = subset[r];
      for (size_t c = 0; c < dim_; ++c) {
        a(r + 1, c) =
            idx < dim_ ? (idx == c ? 1.0 : 0.0) : cuts_[idx - dim_].normal[c];
      }
      b[r + 1] = idx < dim_ ? 0.0 : cuts_[idx - dim_].offset;
    }
    if (!SolveLinearSystem(a, b, &x)) return false;
    if (!CertifyVertex(dim_, cuts_, x, subset)) return false;
    for (size_t i = 0; i < vertices_.size(); ++i) {
      if (!dead[i] && ApproxEqual(vertices_[i], x, options_.dedup_tol)) {
        return false;
      }
    }
    for (const Vec& f : fresh) {
      if (ApproxEqual(f, x, options_.dedup_tol)) return false;
    }
    fresh.push_back(x);
    fresh_facets.push_back(subset);
  }
  if (fresh.empty()) return false;

  // 4. Merge surviving and new vertices in lexicographic facet-set order —
  //    exactly the acceptance order of the seed enumerator, so the resulting
  //    vertex sequence is bit-identical to a full re-enumeration.
  std::vector<Vec> merged;
  std::vector<std::vector<uint32_t>> merged_facets;
  merged.reserve(vertices_.size() + fresh.size());
  merged_facets.reserve(merged.capacity());
  size_t io = 0;
  size_t in = 0;
  while (io < vertices_.size() || in < fresh.size()) {
    while (io < vertices_.size() && dead[io]) ++io;
    const bool take_old =
        io < vertices_.size() &&
        (in >= fresh.size() || facets_[io] < fresh_facets[in]);
    if (take_old) {
      merged.push_back(std::move(vertices_[io]));
      merged_facets.push_back(std::move(facets_[io]));
      ++io;
    } else if (in < fresh.size()) {
      merged.push_back(std::move(fresh[in]));
      merged_facets.push_back(std::move(fresh_facets[in]));
      ++in;
    }
  }
  vertices_ = std::move(merged);
  facets_ = std::move(merged_facets);

  // 5. The output above is certified bit-identical regardless, but the new
  //    structure is only reusable for the NEXT cut if its own edge graph is
  //    complete (new near-singular subsets can appear with the new facet).
  adjacency_valid_ = EdgeGraphComplete(BuildEdgeMap(facets_));
  if (!adjacency_valid_) facets_.clear();
  return true;
}

void Polyhedron::DropRedundantCuts() {
  if (vertices_.empty()) return;
  // Keep only cuts that are tight at some vertex; a cut strictly slack at
  // every vertex cannot touch conv(vertices) = R. This is the one-constraint
  // relaxation test: with the cut removed, every vertex stays feasible, so
  // the cut was redundant.
  const double tight_tol = 1e-7;
  constexpr uint32_t kDropped = 0xffffffffu;
  std::vector<Halfspace> kept;
  kept.reserve(cuts_.size());
  std::vector<uint32_t> remap(cuts_.size(), kDropped);
  for (size_t j = 0; j < cuts_.size(); ++j) {
    const Halfspace& h = cuts_[j];
    bool tight_somewhere = false;
    for (const Vec& v : vertices_) {
      if (std::abs(h.Margin(v)) <= tight_tol * std::max(1.0, h.normal.Norm())) {
        tight_somewhere = true;
        break;
      }
    }
    if (tight_somewhere) {
      remap[j] = static_cast<uint32_t>(kept.size());
      kept.push_back(h);
    }
  }
  const bool dropped_any = kept.size() != cuts_.size();
  cuts_ = std::move(kept);
  if (!adjacency_valid_ || !dropped_any) return;
  // Renumber facet indices of the retained cuts. A certified-tight facet has
  // |margin| ≤ kTightSlop·scale < tight_tol·scale, so a referenced cut is
  // never dropped; if one is anyway (numerics at the threshold), the
  // structure is stale — discard it rather than crash.
  for (std::vector<uint32_t>& fs : facets_) {
    for (uint32_t& f : fs) {
      if (f < dim_) continue;
      const uint32_t nj = remap[f - dim_];
      if (nj == kDropped) {
        facets_.clear();
        adjacency_valid_ = false;
        return;
      }
      f = static_cast<uint32_t>(dim_) + nj;
    }
  }
}

}  // namespace isrl
