// Hyper-planes and half-spaces over the utility space.
//
// For a question ⟨p_i, p_j⟩ the paper builds the hyper-plane
//   h_{i,j} = { r : r · (p_i − p_j) = 0 }
// and learns, from the user's answer, that the utility vector lies in the
// positive half-space h⁺ = { r : r · (p_i − p_j) > 0 } (Lemma 1). The
// ε-relaxed hyper-planes of Lemma 4 use normal p_i − (1−ε)·p_j.
#ifndef ISRL_GEOMETRY_HALFSPACE_H_
#define ISRL_GEOMETRY_HALFSPACE_H_

#include <string>

#include "common/vec.h"

namespace isrl {

/// Closed half-space { u : normal · u ≥ offset }. All half-spaces produced by
/// pairwise comparisons pass through the origin (offset 0); the general
/// offset supports tests and auxiliary constructions.
struct Halfspace {
  Vec normal;
  double offset = 0.0;

  /// Signed margin normal·u − offset (positive inside).
  [[nodiscard]] double Margin(const Vec& u) const {
    return Dot(normal, u) - offset;
  }

  /// True when u satisfies the half-space up to `tol` slack.
  [[nodiscard]] bool Contains(const Vec& u, double tol = 1e-9) const {
    return Margin(u) >= -tol;
  }

  /// The complementary half-space { u : normal·u ≤ offset }, i.e. the other
  /// side of the same hyper-plane.
  [[nodiscard]] Halfspace Flipped() const {
    return Halfspace{normal * -1.0, -offset};
  }

  std::string ToString() const;
};

/// Half-space h⁺_{i,j} learned when the user prefers p_i to p_j (Lemma 1).
Halfspace PreferenceHalfspace(const Vec& preferred, const Vec& other);

/// ε-relaxed half-space εh⁺_{i,j} = { r : r · (p_i − (1−ε) p_j) ≥ 0 } used to
/// build terminal polyhedra (Lemma 4).
Halfspace EpsilonHalfspace(const Vec& winner, const Vec& other, double epsilon);

/// Euclidean distance from point `c` to the hyper-plane boundary of `h`
/// (|normal·c − offset| / ‖normal‖). Used by AA's action ranking.
double DistanceToHyperplane(const Vec& c, const Halfspace& h);

}  // namespace isrl

#endif  // ISRL_GEOMETRY_HALFSPACE_H_
