// Convex-hull extremeness tests in general dimension.
//
// The baseline UH-Simplex asks questions built from extreme points of the
// candidate set's convex hull. Rather than constructing a full facet
// structure (expensive in d > 3), we answer the only query the algorithms
// need — "is p a vertex of conv(S)?" — with one small LP per point: p is
// extreme iff it cannot be written as a convex combination of the others.
#ifndef ISRL_GEOMETRY_CONVEX_HULL_H_
#define ISRL_GEOMETRY_CONVEX_HULL_H_

#include <cstddef>
#include <vector>

#include "common/vec.h"

namespace isrl {

/// True iff `points[index]` is a vertex (extreme point) of the convex hull of
/// `points`, decided by LP feasibility of a convex-combination certificate.
/// Bitwise-duplicate points are treated as one geometric point: every copy of
/// a hull vertex answers true (the combination may not lean on a twin of the
/// query), so duplicates cannot silently erase a vertex.
bool IsExtremePoint(const std::vector<Vec>& points, size_t index);

/// Indices of all extreme points of conv(points), in increasing order. With
/// bitwise duplicates, every copy of a hull vertex is reported — consistent
/// with IsExtremePoint on each index.
std::vector<size_t> ExtremePointIndices(const std::vector<Vec>& points);

}  // namespace isrl

#endif  // ISRL_GEOMETRY_CONVEX_HULL_H_
