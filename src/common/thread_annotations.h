// Clang Thread Safety Analysis macros (DESIGN.md §16).
//
// These wrap the capability-based static analysis attributes so that
// lock-discipline violations are COMPILE errors under Clang
// (-Wthread-safety -Werror=thread-safety, the dedicated CI lane) and
// vanish entirely under every other compiler — gcc builds see empty
// macros, identical codegen, zero overhead.
//
// The vocabulary, applied across src/serve/, src/core/ and src/common/:
//
//   ISRL_GUARDED_BY(mu)   on a data member: every read and write must hold
//                         `mu`. This is the workhorse — all cross-thread
//                         state in the repo carries it (CONTRIBUTING.md
//                         makes that a review requirement).
//   ISRL_REQUIRES(mu)     on a function: callers must already hold `mu`.
//                         Marks the "Locked" helpers that assume a held
//                         lock instead of taking it.
//   ISRL_ACQUIRE/RELEASE  on lock/unlock primitives themselves.
//   ISRL_EXCLUDES(mu)     on a function: callers must NOT hold `mu`
//                         (deadlock guard for self-locking helpers).
//   ISRL_ACQUIRED_BEFORE  documents and (under -Wthread-safety-beta)
//                         enforces the lock hierarchy, e.g. Shard::exec_mu
//                         before Shard::mu.
//   ISRL_NO_THREAD_SAFETY_ANALYSIS
//                         last-resort opt-out for a single function whose
//                         locking the analysis cannot express. Each use
//                         must carry a comment saying why (DESIGN.md §16
//                         lists the accepted reasons).
//
// tests/compile_fail/ holds deliberate violations of each rule that must
// FAIL to compile — the negative-compile ctest driver proves the
// annotations keep their teeth.
#ifndef ISRL_COMMON_THREAD_ANNOTATIONS_H_
#define ISRL_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define ISRL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ISRL_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define ISRL_CAPABILITY(x) ISRL_THREAD_ANNOTATION_(capability(x))

#define ISRL_SCOPED_CAPABILITY ISRL_THREAD_ANNOTATION_(scoped_lockable)

#define ISRL_GUARDED_BY(x) ISRL_THREAD_ANNOTATION_(guarded_by(x))

#define ISRL_PT_GUARDED_BY(x) ISRL_THREAD_ANNOTATION_(pt_guarded_by(x))

#define ISRL_ACQUIRED_BEFORE(...) \
  ISRL_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define ISRL_ACQUIRED_AFTER(...) \
  ISRL_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define ISRL_REQUIRES(...) \
  ISRL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define ISRL_REQUIRES_SHARED(...) \
  ISRL_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define ISRL_ACQUIRE(...) \
  ISRL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define ISRL_ACQUIRE_SHARED(...) \
  ISRL_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define ISRL_RELEASE(...) \
  ISRL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define ISRL_RELEASE_SHARED(...) \
  ISRL_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define ISRL_TRY_ACQUIRE(...) \
  ISRL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define ISRL_EXCLUDES(...) ISRL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define ISRL_ASSERT_CAPABILITY(x) \
  ISRL_THREAD_ANNOTATION_(assert_capability(x))

#define ISRL_RETURN_CAPABILITY(x) ISRL_THREAD_ANNOTATION_(lock_returned(x))

#define ISRL_NO_THREAD_SAFETY_ANALYSIS \
  ISRL_THREAD_ANNOTATION_(no_thread_safety_analysis)

// Thread-sanitizer detection, shared by the few places that must adapt to
// an instrumented build (gcc defines __SANITIZE_THREAD__; clang signals
// through __has_feature). Today's only consumer is common/matrix.cc, which
// must not emit an ifunc under TSan — the resolver runs during relocation,
// before the TSan runtime has mapped its shadow, and segfaults pre-main
// (DESIGN.md §16).
#if defined(__SANITIZE_THREAD__)
#define ISRL_THREAD_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ISRL_THREAD_SANITIZER 1
#endif
#endif

#endif  // ISRL_COMMON_THREAD_ANNOTATIONS_H_
