#include "common/vec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace isrl {

Vec& Vec::operator+=(const Vec& o) {
  ISRL_CHECK_EQ(dim(), o.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Vec& Vec::operator-=(const Vec& o) {
  ISRL_CHECK_EQ(dim(), o.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Vec& Vec::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Vec& Vec::operator/=(double s) {
  ISRL_CHECK_NE(s, 0.0);
  for (double& v : data_) v /= s;
  return *this;
}

void Vec::Append(const Vec& o) {
  data_.insert(data_.end(), o.data_.begin(), o.data_.end());
}

double Vec::Norm() const { return std::sqrt(NormSquared()); }

double Vec::NormSquared() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Vec::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Vec::Max() const {
  ISRL_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Vec::Min() const {
  ISRL_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

size_t Vec::ArgMax() const {
  ISRL_CHECK(!data_.empty());
  return static_cast<size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

std::string Vec::ToString(int precision) const {
  std::string s = "(";
  char buf[64];
  for (size_t i = 0; i < data_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, data_[i]);
    if (i > 0) s += ", ";
    s += buf;
  }
  s += ")";
  return s;
}

Vec operator+(Vec a, const Vec& b) { return a += b; }
Vec operator-(Vec a, const Vec& b) { return a -= b; }
Vec operator*(Vec a, double s) { return a *= s; }
Vec operator*(double s, Vec a) { return a *= s; }
Vec operator/(Vec a, double s) { return a /= s; }

double Dot(const Vec& a, const Vec& b) {
  ISRL_CHECK_EQ(a.dim(), b.dim());
  double s = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) s += a[i] * b[i];
  return s;
}

double Distance(const Vec& a, const Vec& b) {
  ISRL_CHECK_EQ(a.dim(), b.dim());
  double s = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    double diff = a[i] - b[i];
    s += diff * diff;
  }
  return std::sqrt(s);
}

bool ApproxEqual(const Vec& a, const Vec& b, double tol) {
  if (a.dim() != b.dim()) return false;
  for (size_t i = 0; i < a.dim(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

Vec Concat(const Vec& a, const Vec& b) {
  Vec out = a;
  out.Append(b);
  return out;
}

}  // namespace isrl
