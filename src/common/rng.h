// Deterministic random number generation. Every stochastic component takes an
// Rng& so experiments are reproducible bit-for-bit given a seed.
#ifndef ISRL_COMMON_RNG_H_
#define ISRL_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/vec.h"

namespace isrl {

/// SplitMix64-style derivation of an independent stream seed from a master
/// seed: a pure function of (master, stream), so a per-task seed never
/// depends on how much any other stream has been consumed — the property the
/// deterministic parallel evaluation layer (common/parallel.h) relies on.
uint64_t SplitSeed(uint64_t master, uint64_t stream);

/// Seedable pseudo-random generator (mt19937_64 under the hood) with the
/// sampling helpers used by the data generators and RL components.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x15b1u) : seed_(seed), engine_(seed) {}

  /// Derives an independent child generator for stream `stream_id`. The
  /// derivation uses the *construction seed*, not the current engine state:
  /// Split(k) returns the same generator no matter how many draws have been
  /// made, so per-task streams are bit-identical at any thread count.
  Rng Split(uint64_t stream_id) const { return Rng(SplitSeed(seed_, stream_id)); }

  /// The seed this generator was constructed with (basis of Split()).
  uint64_t seed() const { return seed_; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);
  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Standard normal draw scaled to (mean, stddev).
  double Gaussian(double mean = 0.0, double stddev = 1.0);
  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Uniform point on the standard (d−1)-simplex {u ≥ 0, Σu = 1}, via
  /// normalised exponential draws.
  Vec SimplexUniform(size_t d);

  /// k distinct indices drawn uniformly from [0, n) (k ≤ n).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }
  /// Read-only engine access (checkpointing: the engine state streams out
  /// through operator<< without disturbing the draw sequence).
  const std::mt19937_64& engine() const { return engine_; }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace isrl

#endif  // ISRL_COMMON_RNG_H_
