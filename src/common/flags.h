// Minimal --key=value command-line flag parsing for the tools and benches.
#ifndef ISRL_COMMON_FLAGS_H_
#define ISRL_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace isrl {

/// Parsed command line: --key=value / --key value pairs plus positional
/// arguments. Unknown flags are kept (callers validate against their own
/// set via RequireKnown).
class Flags {
 public:
  /// Parses argv. Values use the unambiguous "--key=value" form; a bare
  /// "--flag" stores "true". Anything else is positional.
  static Flags Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value = "") const;
  double GetDouble(const std::string& key, double default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  bool GetBool(const std::string& key, bool default_value = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Error when any parsed flag is not in `known` (catches typos).
  Status RequireKnown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace isrl

#endif  // ISRL_COMMON_FLAGS_H_
