#include "common/flags.h"

#include <algorithm>
#include <cstdlib>

#include "common/strings.h"

namespace isrl {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  double v = default_value;
  return ParseDouble(it->second, &v) ? v : default_value;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::atoll(it->second.c_str());
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

Status Flags::RequireKnown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      return Status::InvalidArgument("unknown flag: --" + key);
    }
  }
  return Status::Ok();
}

}  // namespace isrl
