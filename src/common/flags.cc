#include "common/flags.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"

namespace isrl {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  double v = default_value;
  return ParseDouble(it->second, &v) ? v : default_value;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  // Checked parse instead of atoll: "--rounds=abc" must fall back to the
  // default rather than silently becoming 0.
  std::string digits = it->second;
  bool negative = false;
  if (!digits.empty() && (digits[0] == '-' || digits[0] == '+')) {
    negative = digits[0] == '-';
    digits = digits.substr(1);
  }
  uint64_t magnitude = 0;
  if (!ParseUint64(digits, &magnitude) ||
      magnitude > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return default_value;
  }
  const int64_t value = static_cast<int64_t>(magnitude);
  return negative ? -value : value;
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

Status Flags::RequireKnown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      return Status::InvalidArgument("unknown flag: --" + key);
    }
  }
  return Status::Ok();
}

}  // namespace isrl
