#include "common/parallel.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/strings.h"

namespace isrl {

namespace internal {

void ParallelForState::RecordError(std::exception_ptr error) {
  MutexLock lock(error_mu);
  if (!first_error) first_error = std::move(error);
  // Later errors are dropped: sibling tasks are independent, and a
  // deterministic caller wants every slot filled or a clean rethrow of the
  // first failure.
}

std::exception_ptr ParallelForState::TakeFirstError() {
  MutexLock lock(error_mu);
  return first_error;
}

}  // namespace internal

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ThreadsFromEnv() {
  // Startup-path call, before any worker exists; not reachable from task
  // bodies, so the thread-unsafe libc environment access is benign.
  const char* env =
      std::getenv("ISRL_THREADS");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return 1;
  uint64_t value = 0;
  if (!ParseUint64(env, &value)) {
    std::fprintf(stderr,
                 "ISRL_THREADS must be a non-negative integer "
                 "(0 = one thread per core), got '%s'\n",
                 env);
    std::exit(EXIT_FAILURE);  // NOLINT(concurrency-mt-unsafe)
  }
  if (value == 0) return HardwareThreads();
  return value > kMaxThreads ? kMaxThreads : static_cast<size_t>(value);
}

size_t ResolveThreads(size_t requested, size_t tasks) {
  size_t threads = requested == 0 ? ThreadsFromEnv() : requested;
  if (threads > kMaxThreads) threads = kMaxThreads;
  if (tasks < 1) return 1;
  return threads < tasks ? (threads < 1 ? 1 : threads) : tasks;
}

void ParallelFor(size_t tasks, size_t threads,
                 const std::function<void(size_t worker, size_t task)>& fn) {
  if (tasks == 0) return;
  size_t workers = threads < 1 ? 1 : threads;
  if (workers > tasks) workers = tasks;
  if (workers > kMaxThreads) workers = kMaxThreads;
  if (workers <= 1) {
    for (size_t task = 0; task < tasks; ++task) fn(0, task);
    return;
  }

  internal::ParallelForState state;
  // workers == tasks pins task w to worker w (the documented dedicated-
  // worker contract: bodies may block on each other). Fewer workers than
  // tasks share the atomic queue instead.
  const bool dedicated = workers == tasks;
  auto work = [&](size_t worker) {
    while (true) {
      const size_t task =
          dedicated ? worker
                    : state.next_task.fetch_add(1, std::memory_order_relaxed);
      if (task >= tasks) return;
      try {
        fn(worker, task);
      } catch (...) {
        // Keep draining the queue after a failure; see RecordError.
        state.RecordError(std::current_exception());
      }
      if (dedicated) return;
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(work, w);
  work(0);
  for (std::thread& t : pool) t.join();
  if (std::exception_ptr error = state.TakeFirstError()) {
    std::rethrow_exception(error);
  }
}

void ParallelFor(size_t tasks, size_t threads,
                 const std::function<void(size_t task)>& fn) {
  ParallelFor(tasks, threads,
              [&fn](size_t /*worker*/, size_t task) { fn(task); });
}

}  // namespace isrl
