#include "common/parallel.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"

namespace isrl {

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ThreadsFromEnv() {
  const char* env = std::getenv("ISRL_THREADS");
  if (env == nullptr) return 1;
  uint64_t value = 0;
  if (!ParseUint64(env, &value)) {
    std::fprintf(stderr,
                 "ISRL_THREADS must be a non-negative integer "
                 "(0 = one thread per core), got '%s'\n",
                 env);
    std::exit(EXIT_FAILURE);
  }
  if (value == 0) return HardwareThreads();
  return value > kMaxThreads ? kMaxThreads : static_cast<size_t>(value);
}

size_t ResolveThreads(size_t requested, size_t tasks) {
  size_t threads = requested == 0 ? ThreadsFromEnv() : requested;
  if (threads > kMaxThreads) threads = kMaxThreads;
  if (tasks < 1) return 1;
  return threads < tasks ? (threads < 1 ? 1 : threads) : tasks;
}

void ParallelFor(size_t tasks, size_t threads,
                 const std::function<void(size_t worker, size_t task)>& fn) {
  if (tasks == 0) return;
  size_t workers = threads < 1 ? 1 : threads;
  if (workers > tasks) workers = tasks;
  if (workers > kMaxThreads) workers = kMaxThreads;
  if (workers <= 1) {
    for (size_t task = 0; task < tasks; ++task) fn(0, task);
    return;
  }

  std::atomic<size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto work = [&](size_t worker) {
    while (true) {
      const size_t task = next.fetch_add(1, std::memory_order_relaxed);
      if (task >= tasks) return;
      try {
        fn(worker, task);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Keep draining the queue: sibling tasks are independent, and a
        // deterministic caller wants every slot filled or a clean rethrow.
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(work, w);
  work(0);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(size_t tasks, size_t threads,
                 const std::function<void(size_t task)>& fn) {
  ParallelFor(tasks, threads,
              [&fn](size_t /*worker*/, size_t task) { fn(task); });
}

}  // namespace isrl
