#include "common/stopwatch.h"

// Header-only; this translation unit exists so the target owns a .cc per
// module and future non-inline additions have a home.
