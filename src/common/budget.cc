#include "common/budget.h"

namespace isrl {

const char* TerminationName(Termination t) {
  switch (t) {
    case Termination::kConverged:
      return "converged";
    case Termination::kDegraded:
      return "degraded";
    case Termination::kBudgetExhausted:
      return "budget-exhausted";
    case Termination::kAborted:
      return "aborted";
  }
  return "unknown";
}

}  // namespace isrl
