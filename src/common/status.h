// Lightweight Status / Result error handling (no exceptions in library code),
// in the spirit of absl::Status / rocksdb::Status.
#ifndef ISRL_COMMON_STATUS_H_
#define ISRL_COMMON_STATUS_H_

#include <string>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/check.h"

namespace isrl {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  kInfeasible,   ///< LP / geometric feasibility failures.
  kUnbounded,    ///< LP objective unbounded.
};

/// Human-readable name of a StatusCode ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
/// [[nodiscard]]: a dropped Status is a swallowed error — every producer
/// either propagates it (ISRL_RETURN_IF_ERROR) or handles it explicitly.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Infeasible(std::string m) {
    return Status(StatusCode::kInfeasible, std::move(m));
  }
  static Status Unbounded(std::string m) {
    return Status(StatusCode::kUnbounded, std::move(m));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or a non-OK Status. Accessing the value of an error Result aborts.
template <typename T>
class [[nodiscard]] Result {
  static_assert(!std::is_same_v<std::decay_t<T>, Status>,
                "Result<Status> is always a bug: a Status is not a payload. "
                "Return Status directly (or Result<U> for the real value).");
  static_assert(!std::is_same_v<std::decay_t<T>, StatusCode>,
                "Result<StatusCode> is always a bug; return Status directly.");

 public:
  Result(T value) : data_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {   // NOLINT(runtime/explicit)
    ISRL_CHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK if the Result holds a value.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }

  const T& value() const {
    ISRL_CHECK(ok());
    return std::get<T>(data_);
  }
  T& value() {
    ISRL_CHECK(ok());
    return std::get<T>(data_);
  }
  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status to the caller.
#define ISRL_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::isrl::Status isrl_status = (expr);      \
    if (!isrl_status.ok()) return isrl_status; \
  } while (0)

/// Evaluates `expr` (a Result<T>), propagates its Status to the caller on
/// error, and otherwise assigns the value to `lhs`. `lhs` may be an existing
/// variable or a declaration:
///   ISRL_ASSIGN_OR_RETURN(nn::Network net, nn::LoadNetwork(path));
#define ISRL_ASSIGN_OR_RETURN(lhs, expr) \
  ISRL_ASSIGN_OR_RETURN_IMPL_(           \
      ISRL_STATUS_CONCAT_(isrl_result_, __LINE__), lhs, expr)

#define ISRL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp.value())

#define ISRL_STATUS_CONCAT_(a, b) ISRL_STATUS_CONCAT_IMPL_(a, b)
#define ISRL_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace isrl

#endif  // ISRL_COMMON_STATUS_H_
