#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace isrl {

uint64_t SplitSeed(uint64_t master, uint64_t stream) {
  // Fixed-increment SplitMix64 (Steele et al.) over the combined word; the
  // odd multiplier decorrelates adjacent stream ids before mixing.
  uint64_t z = master + 0x9E3779B97F4A7C15ull * (stream + 1);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ISRL_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Vec Rng::SimplexUniform(size_t d) {
  ISRL_CHECK_GE(d, 1u);
  Vec u(d);
  double sum = 0.0;
  for (size_t i = 0; i < d; ++i) {
    // Exponential(1) draws normalised to sum 1 are uniform on the simplex.
    double e = -std::log(1.0 - Uniform(0.0, 1.0));
    u[i] = e;
    sum += e;
  }
  ISRL_CHECK_GT(sum, 0.0);
  u /= sum;
  return u;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  ISRL_CHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected, no O(n) allocation.
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    bool seen = false;
    for (size_t s : out) {
      if (s == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

}  // namespace isrl
