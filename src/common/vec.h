// Dense d-dimensional vector used throughout (points, utility vectors,
// network activations). Thin wrapper over std::vector<double> with the
// numeric operations the algorithms need.
#ifndef ISRL_COMMON_VEC_H_
#define ISRL_COMMON_VEC_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace isrl {

/// Dense real vector.
class Vec {
 public:
  Vec() = default;
  /// Zero vector of dimension `dim`.
  explicit Vec(size_t dim) : data_(dim, 0.0) {}
  /// Constant vector of dimension `dim` filled with `value`.
  Vec(size_t dim, double value) : data_(dim, value) {}
  Vec(std::initializer_list<double> init) : data_(init) {}
  explicit Vec(std::vector<double> data) : data_(std::move(data)) {}

  size_t dim() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Element access is the innermost hot path of every numeric loop, so the
  // bounds check is debug-only (ISRL_DCHECK); whole-operation contracts
  // (dimension agreement in Dot, +=, ...) stay always-on in vec.cc, and the
  // audit layer (DESIGN.md §11) guards the release-mode structures.
  double operator[](size_t i) const {
    ISRL_DCHECK_LT(i, data_.size());
    return data_[i];
  }
  double& operator[](size_t i) {
    ISRL_DCHECK_LT(i, data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }
  const double* raw() const { return data_.data(); }
  double* raw() { return data_.data(); }

  Vec& operator+=(const Vec& o);
  Vec& operator-=(const Vec& o);
  Vec& operator*=(double s);
  Vec& operator/=(double s);

  /// Appends all entries of `o` (used to concatenate state features).
  void Append(const Vec& o);
  /// Appends a single scalar.
  void PushBack(double v) { data_.push_back(v); }

  /// Euclidean norm.
  double Norm() const;
  /// Squared Euclidean norm.
  double NormSquared() const;
  /// Sum of entries.
  double Sum() const;
  /// Largest entry value (vector must be non-empty).
  double Max() const;
  /// Smallest entry value (vector must be non-empty).
  double Min() const;
  /// Index of the largest entry (first on ties; vector must be non-empty).
  size_t ArgMax() const;

  /// "(v0, v1, ...)" with `precision` significant digits.
  std::string ToString(int precision = 6) const;

  bool operator==(const Vec& o) const { return data_ == o.data_; }

 private:
  std::vector<double> data_;
};

Vec operator+(Vec a, const Vec& b);
Vec operator-(Vec a, const Vec& b);
Vec operator*(Vec a, double s);
Vec operator*(double s, Vec a);
Vec operator/(Vec a, double s);

/// Inner product a·b; dimensions must match.
double Dot(const Vec& a, const Vec& b);
/// Euclidean distance ‖a−b‖.
double Distance(const Vec& a, const Vec& b);
/// True when ‖a−b‖∞ ≤ tol.
bool ApproxEqual(const Vec& a, const Vec& b, double tol = 1e-9);
/// Concatenation of `a` and `b`.
Vec Concat(const Vec& a, const Vec& b);

}  // namespace isrl

#endif  // ISRL_COMMON_VEC_H_
