#include "common/matrix.h"

#include <cmath>

namespace isrl {

Vec Matrix::Multiply(const Vec& x) const {
  ISRL_CHECK_EQ(x.dim(), cols_);
  Vec y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += a[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vec Matrix::MultiplyTransposed(const Vec& x) const {
  ISRL_CHECK_EQ(x.dim(), rows_);
  Vec y(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    const double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) y[c] += a[c] * xr;
  }
  return y;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

bool SolveLinearSystem(Matrix a, Vec b, Vec* x, double pivot_tol) {
  const size_t n = a.rows();
  ISRL_CHECK_EQ(a.cols(), n);
  ISRL_CHECK_EQ(b.dim(), n);
  ISRL_CHECK(x != nullptr);

  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::abs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best <= pivot_tol) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a(r, col) * inv;
      if (factor == 0.0) continue;  // float-eq-ok: exact-zero skip-work
      for (size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  // Back substitution.
  Vec sol(n);
  for (size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (size_t c = ri + 1; c < n; ++c) s -= a(ri, c) * sol[c];
    sol[ri] = s / a(ri, ri);
  }
  *x = sol;
  return true;
}

}  // namespace isrl
