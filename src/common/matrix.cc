#include "common/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/thread_annotations.h"  // ISRL_THREAD_SANITIZER

namespace isrl {

Vec Matrix::Multiply(const Vec& x) const {
  ISRL_CHECK_EQ(x.dim(), cols_);
  Vec y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += a[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vec Matrix::MultiplyTransposed(const Vec& x) const {
  ISRL_CHECK_EQ(x.dim(), rows_);
  Vec y(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    const double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) y[c] += a[c] * xr;
  }
  return y;
}

Vec Matrix::RowVec(size_t r) const {
  ISRL_CHECK_LT(r, rows_);
  const double* src = row(r);
  return Vec(std::vector<double>(src, src + cols_));
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vec>& rows) {
  if (rows.empty()) return Matrix();
  const size_t dim = rows[0].dim();
  Matrix m(rows.size(), dim);
  for (size_t r = 0; r < rows.size(); ++r) {
    ISRL_CHECK_EQ(rows[r].dim(), dim);
    const double* src = rows[r].raw();
    std::copy(src, src + dim, m.row(r));
  }
  return m;
}

namespace {
// Batches below this row count take the dot-product path: packing B is not
// worth a k·n transpose for a handful of rows, and the m = 1 case (scalar
// Layer::Forward) must stay allocation-free.
constexpr size_t kPackMinRows = 8;
// Register tile of the packed path: 16 output columns = four 4-wide vector
// accumulators that live in registers across the whole t-loop, so the C row
// is stored exactly once instead of load/store-cycled per t.
constexpr size_t kRegTileN = 16;
}  // namespace

// Explicit 4-wide vector lanes for the packed micro-kernel: the compiler's
// autovectoriser does not reliably keep the 16-column accumulator tile in
// registers, so the lanes are spelled out with GNU vector extensions
// (supported by gcc and clang; lowered to SSE2 pairs on the baseline clone
// and to 256-bit ops on the AVX2 clone). All arithmetic stays separate
// IEEE multiplies and adds — identical rounding to the scalar loops.
// (A 64-byte/AVX-512 variant of this tile was measured ~10% slower than
// the AVX2 clone on an Ice Lake Xeon — 512-bit port pressure without FMA
// buys nothing here — so the tile deliberately stays 4-wide.)
#if defined(__GNUC__) && defined(__x86_64__)
#define ISRL_GEMM_VECTOR_EXT 1

// gcc warns that returning/passing a 32-byte vector changes the ABI when AVX
// is off; the helpers below are internal and always inlined, so no ABI
// boundary is ever crossed.
#if !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace {
typedef double V4 __attribute__((vector_size(32), aligned(8)));  // NOLINT

inline V4 LoadV4(const double* p) {
  V4 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}
inline void StoreV4(double* p, V4 v) { __builtin_memcpy(p, &v, sizeof(v)); }
inline V4 SplatV4(double v) { return V4{v, v, v, v}; }
}  // namespace
#endif

// Runtime-dispatched SIMD: on x86-64/glibc the kernel is cloned for AVX2 and
// the loader picks the widest supported clone via ifunc, so the build stays
// portable while modern hosts vectorise the packed inner loop 4-wide. The
// clone list deliberately excludes FMA: every clone rounds each multiply and
// add separately, exactly like the baseline, so results are bit-identical
// across hosts and across the dot/packed code shapes.
//
// ThreadSanitizer builds must NOT emit the ifunc: the resolver runs while
// the dynamic loader processes IRELATIVE relocations, BEFORE the TSan
// runtime has mapped its shadow memory, and the instrumented resolver then
// segfaults pre-main — every binary linking this TU dies before main() even
// under --gtest_list_tests (root cause of the long-standing "TSan+gtest
// segfault", DESIGN.md §16). The clones are bit-identical to the baseline
// by construction, so a TSan build losing AVX2 dispatch changes timing
// only, never results.
#if defined(__x86_64__) && defined(__GLIBC__) && defined(__has_attribute) && \
    !defined(ISRL_THREAD_SANITIZER)
#if __has_attribute(target_clones)
#define ISRL_GEMM_TARGET_CLONES \
  __attribute__((target_clones("avx2", "default")))
#endif
#endif
#ifndef ISRL_GEMM_TARGET_CLONES
#define ISRL_GEMM_TARGET_CLONES
#endif

ISRL_GEMM_TARGET_CLONES
void GemmTransposedB(size_t m, size_t n, size_t k, const double* a,
                     const double* b, const double* bias, double* c,
                     bool accumulate) {
  if (n < 4 && m >= 4) {
    // Narrow-output path (the scalar Q-head is n = 1): one dot product per
    // row is a single latency-bound accumulator chain, so run four rows'
    // chains in parallel instead of four columns'. Each element's k-sum is
    // still sequential. (An 8-row variant measured no faster — the path is
    // load-port-bound, and bit-exactness rules out splitting a row's chain.)
    for (size_t j = 0; j < n; ++j) {
      const double* bj = b + j * k;
      const double init = bias != nullptr ? bias[j] : 0.0;
      size_t i = 0;
      for (; i + 4 <= m; i += 4) {
        const double* a0 = a + i * k;
        const double* a1 = a0 + k;
        const double* a2 = a1 + k;
        const double* a3 = a2 + k;
        double s0 = accumulate ? c[(i + 0) * n + j] : init;
        double s1 = accumulate ? c[(i + 1) * n + j] : init;
        double s2 = accumulate ? c[(i + 2) * n + j] : init;
        double s3 = accumulate ? c[(i + 3) * n + j] : init;
        for (size_t t = 0; t < k; ++t) {
          const double bv = bj[t];
          s0 += a0[t] * bv;
          s1 += a1[t] * bv;
          s2 += a2[t] * bv;
          s3 += a3[t] * bv;
        }
        c[(i + 0) * n + j] = s0;
        c[(i + 1) * n + j] = s1;
        c[(i + 2) * n + j] = s2;
        c[(i + 3) * n + j] = s3;
      }
      for (; i < m; ++i) {
        const double* ai = a + i * k;
        double s = accumulate ? c[i * n + j] : init;
        for (size_t t = 0; t < k; ++t) s += ai[t] * bj[t];
        c[i * n + j] = s;
      }
    }
    return;
  }
  if (m < kPackMinRows) {
    // Dot-product path: each output element is one A-row·B-row dot product.
    // A 4-wide register tile over B rows keeps four independent accumulator
    // chains in flight; the t-loop of every element runs sequentially.
    for (size_t i = 0; i < m; ++i) {
      const double* ai = a + i * k;
      double* ci = c + i * n;
      size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const double* b0 = b + j * k;
        const double* b1 = b0 + k;
        const double* b2 = b1 + k;
        const double* b3 = b2 + k;
        double s0 = accumulate ? ci[j] : (bias != nullptr ? bias[j] : 0.0);
        double s1 =
            accumulate ? ci[j + 1] : (bias != nullptr ? bias[j + 1] : 0.0);
        double s2 =
            accumulate ? ci[j + 2] : (bias != nullptr ? bias[j + 2] : 0.0);
        double s3 =
            accumulate ? ci[j + 3] : (bias != nullptr ? bias[j + 3] : 0.0);
        for (size_t t = 0; t < k; ++t) {
          const double av = ai[t];
          s0 += av * b0[t];
          s1 += av * b1[t];
          s2 += av * b2[t];
          s3 += av * b3[t];
        }
        ci[j] = s0;
        ci[j + 1] = s1;
        ci[j + 2] = s2;
        ci[j + 3] = s3;
      }
      for (; j < n; ++j) {
        const double* bj = b + j * k;
        double s = accumulate ? ci[j] : (bias != nullptr ? bias[j] : 0.0);
        for (size_t t = 0; t < k; ++t) s += ai[t] * bj[t];
        ci[j] = s;
      }
    }
    return;
  }

  // Packed path: transpose B once into a k×n panel so the micro-kernel
  // broadcasts one A element against contiguous output columns. Unlike the
  // dot-product reduction (a sequential dependence chain the compiler must
  // not reorder), the accumulator lanes are element-wise independent and
  // vectorise. Each output element still receives its k terms in index
  // order — the packed and dot paths are bit-identical, which the
  // batched/scalar equivalence tests rely on (DESIGN.md §12). The panel
  // (k·n doubles) is assumed cache-resident, which holds for the layer
  // sizes this repo runs (k, n ≤ a few hundred).
  std::vector<double> packed(k * n);
  for (size_t j = 0; j < n; ++j) {
    const double* bj = b + j * k;
    for (size_t t = 0; t < k; ++t) packed[t * n + j] = bj[t];
  }
  const double* panel = packed.data();
  for (size_t i = 0; i < m; ++i) {
    const double* ai = a + i * k;
    double* ci = c + i * n;
    size_t j = 0;
#ifdef ISRL_GEMM_VECTOR_EXT
    for (; j + kRegTileN <= n; j += kRegTileN) {
      V4 acc0 = accumulate ? LoadV4(ci + j)
                           : (bias != nullptr ? LoadV4(bias + j) : SplatV4(0.0));
      V4 acc1 = accumulate
                    ? LoadV4(ci + j + 4)
                    : (bias != nullptr ? LoadV4(bias + j + 4) : SplatV4(0.0));
      V4 acc2 = accumulate
                    ? LoadV4(ci + j + 8)
                    : (bias != nullptr ? LoadV4(bias + j + 8) : SplatV4(0.0));
      V4 acc3 = accumulate
                    ? LoadV4(ci + j + 12)
                    : (bias != nullptr ? LoadV4(bias + j + 12) : SplatV4(0.0));
      const double* pj = panel + j;
      for (size_t t = 0; t < k; ++t) {
        const V4 av = SplatV4(ai[t]);
        const double* p = pj + t * n;
        acc0 += av * LoadV4(p);
        acc1 += av * LoadV4(p + 4);
        acc2 += av * LoadV4(p + 8);
        acc3 += av * LoadV4(p + 12);
      }
      StoreV4(ci + j, acc0);
      StoreV4(ci + j + 4, acc1);
      StoreV4(ci + j + 8, acc2);
      StoreV4(ci + j + 12, acc3);
    }
    for (; j + 4 <= n; j += 4) {
      V4 acc = accumulate ? LoadV4(ci + j)
                          : (bias != nullptr ? LoadV4(bias + j) : SplatV4(0.0));
      const double* pj = panel + j;
      for (size_t t = 0; t < k; ++t) {
        acc += SplatV4(ai[t]) * LoadV4(pj + t * n);
      }
      StoreV4(ci + j, acc);
    }
#else
    for (; j + kRegTileN <= n; j += kRegTileN) {
      double acc[kRegTileN];
      for (size_t u = 0; u < kRegTileN; ++u) {
        acc[u] = accumulate ? ci[j + u] : (bias != nullptr ? bias[j + u] : 0.0);
      }
      for (size_t t = 0; t < k; ++t) {
        const double av = ai[t];
        const double* p = panel + t * n + j;
        for (size_t u = 0; u < kRegTileN; ++u) acc[u] += av * p[u];
      }
      for (size_t u = 0; u < kRegTileN; ++u) ci[j + u] = acc[u];
    }
#endif
    for (; j < n; ++j) {
      double s = accumulate ? ci[j] : (bias != nullptr ? bias[j] : 0.0);
      for (size_t t = 0; t < k; ++t) s += ai[t] * panel[t * n + j];
      ci[j] = s;
    }
  }
}

Matrix MatMulTransposedB(const Matrix& a, const Matrix& b) {
  ISRL_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  GemmTransposedB(a.rows(), b.rows(), a.cols(), a.data().data(),
                  b.data().data(), nullptr, c.data().data());
  return c;
}

bool SolveLinearSystem(Matrix a, Vec b, Vec* x, double pivot_tol) {
  const size_t n = a.rows();
  ISRL_CHECK_EQ(a.cols(), n);
  ISRL_CHECK_EQ(b.dim(), n);
  ISRL_CHECK(x != nullptr);

  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::abs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best <= pivot_tol) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a(r, col) * inv;
      if (factor == 0.0) continue;  // float-eq-ok: exact-zero skip-work
      for (size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  // Back substitution.
  Vec sol(n);
  for (size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (size_t c = ri + 1; c < n; ++c) s -= a(ri, c) * sol[c];
    sol[ri] = s / a(ri, ri);
  }
  *x = sol;
  return true;
}

}  // namespace isrl
