// Invariant-checking macros. Library code uses these for programming errors
// (contract violations); recoverable errors go through isrl::Status instead.
#ifndef ISRL_COMMON_CHECK_H_
#define ISRL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when `cond` is false. Always enabled (release and
/// debug): the cost is negligible next to LP / geometry work and silent
/// corruption of a utility range is much worse than an abort.
#define ISRL_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "ISRL_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

/// Binary comparison variants, printing both operands on failure.
#define ISRL_CHECK_OP(op, a, b)                                               \
  do {                                                                        \
    auto isrl_check_a = (a);                                                  \
    auto isrl_check_b = (b);                                                  \
    if (!(isrl_check_a op isrl_check_b)) {                                    \
      std::fprintf(stderr,                                                    \
                   "ISRL_CHECK failed at %s:%d: %s %s %s (%.17g vs %.17g)\n", \
                   __FILE__, __LINE__, #a, #op, #b,                           \
                   static_cast<double>(isrl_check_a),                         \
                   static_cast<double>(isrl_check_b));                        \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define ISRL_CHECK_EQ(a, b) ISRL_CHECK_OP(==, a, b)
#define ISRL_CHECK_NE(a, b) ISRL_CHECK_OP(!=, a, b)
#define ISRL_CHECK_LT(a, b) ISRL_CHECK_OP(<, a, b)
#define ISRL_CHECK_LE(a, b) ISRL_CHECK_OP(<=, a, b)
#define ISRL_CHECK_GT(a, b) ISRL_CHECK_OP(>, a, b)
#define ISRL_CHECK_GE(a, b) ISRL_CHECK_OP(>=, a, b)

/// Debug-only variants, compiled out under NDEBUG. For contracts on hot
/// paths (per-pivot, per-sample, per-activation) where even a predictable
/// branch is measurable at scale; tools/lint.py bans the always-on macros
/// there. The condition is never evaluated in release builds but stays an
/// unevaluated operand, so variables it names remain "used".
#ifndef NDEBUG
#define ISRL_DCHECK(cond) ISRL_CHECK(cond)
#define ISRL_DCHECK_OP(op, a, b) ISRL_CHECK_OP(op, a, b)
#else
#define ISRL_DCHECK(cond) \
  do {                    \
    (void)sizeof(cond);   \
  } while (0)
#define ISRL_DCHECK_OP(op, a, b)    \
  do {                              \
    (void)sizeof((a) op (b));       \
  } while (0)
#endif

#define ISRL_DCHECK_EQ(a, b) ISRL_DCHECK_OP(==, a, b)
#define ISRL_DCHECK_NE(a, b) ISRL_DCHECK_OP(!=, a, b)
#define ISRL_DCHECK_LT(a, b) ISRL_DCHECK_OP(<, a, b)
#define ISRL_DCHECK_LE(a, b) ISRL_DCHECK_OP(<=, a, b)
#define ISRL_DCHECK_GT(a, b) ISRL_DCHECK_OP(>, a, b)
#define ISRL_DCHECK_GE(a, b) ISRL_DCHECK_OP(>=, a, b)

#endif  // ISRL_COMMON_CHECK_H_
