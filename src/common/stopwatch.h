// Wall-clock timing for the experiment harness.
#ifndef ISRL_COMMON_STOPWATCH_H_
#define ISRL_COMMON_STOPWATCH_H_

#include <chrono>

namespace isrl {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace isrl

#endif  // ISRL_COMMON_STOPWATCH_H_
