// Small string helpers for CSV parsing and table printing.
#ifndef ISRL_COMMON_STRINGS_H_
#define ISRL_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace isrl {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Removes leading/trailing whitespace.
std::string Trim(const std::string& s);

/// Parses a double; returns false on malformed input.
bool ParseDouble(const std::string& s, double* out);

/// Strictly parses a non-negative base-10 integer into uint64_t. Rejects
/// empty input, signs, trailing junk, and overflow — the checked alternative
/// to atoll, where "abc" silently becomes 0 and "-1" wraps modulo 2^64.
bool ParseUint64(const std::string& s, uint64_t* out);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...);

}  // namespace isrl

#endif  // ISRL_COMMON_STRINGS_H_
