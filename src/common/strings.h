// Small string helpers for CSV parsing and table printing.
#ifndef ISRL_COMMON_STRINGS_H_
#define ISRL_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace isrl {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Removes leading/trailing whitespace.
std::string Trim(const std::string& s);

/// Parses a double; returns false on malformed input.
bool ParseDouble(const std::string& s, double* out);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...);

}  // namespace isrl

#endif  // ISRL_COMMON_STRINGS_H_
