// Dense row-major matrix with the linear algebra the substrates need:
// matrix-vector products and batched GEMM kernels for the NN, Gaussian
// elimination for vertex enumeration (solving the d×d systems of tight
// constraints).
#ifndef ISRL_COMMON_MATRIX_H_
#define ISRL_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/vec.h"

namespace isrl {

/// Dense row-major real matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Zero matrix of shape rows×cols.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// Adopts an already-filled row-major buffer (must hold rows·cols
  /// values). Lets hot paths assemble a matrix without the zero-fill the
  /// sized constructor would immediately overwrite.
  Matrix(size_t rows, size_t cols, std::vector<double>&& flat)
      : rows_(rows), cols_(cols), data_(std::move(flat)) {
    ISRL_DCHECK_EQ(data_.size(), rows_ * cols_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  // Debug-only bounds checks: element access sits inside every elimination
  // and matrix-vector inner loop (see the rationale at Vec::operator[]).
  double operator()(size_t r, size_t c) const {
    ISRL_DCHECK_LT(r, rows_);
    ISRL_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) {
    ISRL_DCHECK_LT(r, rows_);
    ISRL_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  const double* row(size_t r) const { return &data_[r * cols_]; }
  double* row(size_t r) { return &data_[r * cols_]; }
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// y = A x (x must have `cols()` entries).
  Vec Multiply(const Vec& x) const;
  /// y = Aᵀ x (x must have `rows()` entries).
  Vec MultiplyTransposed(const Vec& x) const;

  /// Row `r` as a Vec (copy).
  Vec RowVec(size_t r) const;

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Stacks equal-dimension vectors into a rows.size() × dim matrix (the
  /// batched-NN input layout: one sample per row).
  static Matrix FromRows(const std::vector<Vec>& rows);

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// C = A·Bᵀ (+ optional bias broadcast over rows of C), the batched-NN
/// forward kernel: A is m×k row-major (one sample per row), B is n×k
/// row-major (the natural layout of Linear weights, one output neuron per
/// row), C is m×n row-major. `bias` is length n or nullptr.
///
/// The kernel is cache-blocked over m×n output tiles so each tile reuses
/// its A rows and B rows while they are L1-resident, with a 4-wide register
/// tile over B rows inside the block. The k-accumulation of every output
/// element stays a single sequential sum, so C(i,j) is bit-identical to the
/// scalar dot product `bias[j] + Σ_t a(i,t)·b(j,t)` — the batched and
/// per-sample NN paths agree exactly, not just to rounding (DESIGN.md §12).
///
/// With `accumulate` set, each output element starts from its existing value
/// instead of the bias (`bias` must then be nullptr): C(i,j) becomes
/// `((C(i,j) + a(i,0)·b(j,0)) + a(i,1)·b(j,1)) + …`, the exact order a
/// sample-at-a-time gradient accumulation produces. This is the batched
/// backward's weight-gradient kernel (reduction axis = samples).
void GemmTransposedB(size_t m, size_t n, size_t k, const double* a,
                     const double* b, const double* bias, double* c,
                     bool accumulate = false);

/// Matrix wrapper over GemmTransposedB: returns A·Bᵀ (a.cols()==b.cols()).
Matrix MatMulTransposedB(const Matrix& a, const Matrix& b);

/// Solves the square system A x = b by Gaussian elimination with partial
/// pivoting. Returns false when A is singular up to `pivot_tol` (contents of
/// `x` are then unspecified).
bool SolveLinearSystem(Matrix a, Vec b, Vec* x, double pivot_tol = 1e-10);

}  // namespace isrl

#endif  // ISRL_COMMON_MATRIX_H_
