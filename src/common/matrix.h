// Dense row-major matrix with the linear algebra the substrates need:
// matrix-vector products for the NN, Gaussian elimination for vertex
// enumeration (solving the d×d systems of tight constraints).
#ifndef ISRL_COMMON_MATRIX_H_
#define ISRL_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/vec.h"

namespace isrl {

/// Dense row-major real matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Zero matrix of shape rows×cols.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  // Debug-only bounds checks: element access sits inside every elimination
  // and matrix-vector inner loop (see the rationale at Vec::operator[]).
  double operator()(size_t r, size_t c) const {
    ISRL_DCHECK_LT(r, rows_);
    ISRL_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) {
    ISRL_DCHECK_LT(r, rows_);
    ISRL_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  const double* row(size_t r) const { return &data_[r * cols_]; }
  double* row(size_t r) { return &data_[r * cols_]; }
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// y = A x (x must have `cols()` entries).
  Vec Multiply(const Vec& x) const;
  /// y = Aᵀ x (x must have `rows()` entries).
  Vec MultiplyTransposed(const Vec& x) const;

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solves the square system A x = b by Gaussian elimination with partial
/// pivoting. Returns false when A is singular up to `pivot_tol` (contents of
/// `x` are then unspecified).
bool SolveLinearSystem(Matrix a, Vec b, Vec* x, double pivot_tol = 1e-10);

}  // namespace isrl

#endif  // ISRL_COMMON_MATRIX_H_
