// Run budgets and terminal outcomes for the interaction engine.
//
// Every interactive session runs under a RunBudget: a round cap, a wall-clock
// deadline, and a per-round LP iteration cap. Budgets are how the serving
// layer guarantees that no user answer, LP outcome, or geometry degeneracy
// can hang a session — when a budget is exhausted the algorithm stops and
// returns its best-so-far recommendation with Termination::kBudgetExhausted
// instead of looping.
#ifndef ISRL_COMMON_BUDGET_H_
#define ISRL_COMMON_BUDGET_H_

#include <algorithm>
#include <chrono>
#include <cstddef>

namespace isrl {

/// Resource limits for one interactive session. Zero means "no limit from
/// the budget" — the algorithm's own safety caps still apply.
struct RunBudget {
  size_t max_rounds = 0;         ///< questions asked (incl. unanswered ones)
  double max_seconds = 0.0;      ///< wall-clock deadline for the interaction
  size_t max_lp_iterations = 0;  ///< simplex iteration cap per LP solve

  /// The round cap actually in force: the tighter of the budget and the
  /// algorithm's own default cap (either may be 0 = unlimited).
  size_t EffectiveMaxRounds(size_t algorithm_default) const {
    if (max_rounds == 0) return algorithm_default;
    if (algorithm_default == 0) return max_rounds;
    return std::min(max_rounds, algorithm_default);
  }
};

/// A wall-clock deadline. Default-constructed deadlines never expire.
class Deadline {
 public:
  Deadline() = default;

  /// Expires `seconds` from now; non-positive values make an already-expired
  /// deadline.
  static Deadline After(double seconds) {
    Deadline d;
    d.armed_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  /// Deadline from a budget: max_seconds when set, never otherwise.
  static Deadline FromBudget(const RunBudget& budget) {
    return budget.max_seconds > 0.0 ? After(budget.max_seconds) : Deadline();
  }

  bool armed() const { return armed_; }
  bool Expired() const { return armed_ && Clock::now() >= at_; }

  /// Seconds until expiry (negative once expired; 0 when unarmed). The
  /// checkpoint codec persists deadlines as remaining time and re-arms them
  /// with After() at restore, so wall-clock pauses while a session sits in
  /// a snapshot — a restored dialogue does not owe the crash its downtime.
  double RemainingSeconds() const {
    if (!armed_) return 0.0;
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool armed_ = false;
  Clock::time_point at_;
};

/// How an interactive session ended. Every session ends in exactly one of
/// these states; none of them aborts the process.
enum class Termination {
  kConverged = 0,     ///< normal stop certificate, no degradation needed
  kDegraded,          ///< finished after dropping conflicting answers
                      ///< (inconsistent/noisy user) or stalling on conflicts
  kBudgetExhausted,   ///< round cap or deadline hit; best-so-far returned
  kAborted,           ///< unrecoverable internal failure (see result.status)
};

/// Human-readable name ("converged", "degraded", ...).
const char* TerminationName(Termination t);

}  // namespace isrl

#endif  // ISRL_COMMON_BUDGET_H_
