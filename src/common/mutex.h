// Annotated synchronization primitives (DESIGN.md §16).
//
// Thin wrappers over std::mutex / std::condition_variable that carry the
// Clang Thread Safety capability annotations, so `ISRL_GUARDED_BY(mu)` on a
// field makes an unlocked access a compile error in the clang CI lane.
// Under gcc the annotations expand to nothing and every call inlines to the
// raw std primitive — the wrappers cost exactly zero.
//
// These are the ONLY sanctioned locking primitives outside
// src/common/parallel.* and src/serve/ (tools/lint.py rule `raw-thread`):
// raw std::mutex cannot be named in a GUARDED_BY contract the analysis
// checks, so new cross-thread state must guard itself with an isrl::Mutex.
#ifndef ISRL_COMMON_MUTEX_H_
#define ISRL_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/thread_annotations.h"

namespace isrl {

/// A std::mutex that is a thread-safety *capability*: fields annotated
/// ISRL_GUARDED_BY(mu) may only be touched while `mu` is held, and the
/// clang CI lane rejects any code path where that cannot be proven.
class ISRL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ISRL_ACQUIRE() { mu_.lock(); }
  void Unlock() ISRL_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() ISRL_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock, the annotated counterpart of std::lock_guard. A scoped
/// capability: the analysis treats the guarded region as exactly the
/// object's lifetime, so early returns and exceptions stay covered.
class ISRL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ISRL_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ISRL_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to isrl::Mutex. Wait() requires the lock held
/// (enforced by ISRL_REQUIRES under clang) and returns with it held again.
///
/// Deliberately predicate-free: the analysis cannot see that a predicate
/// lambda runs under the re-acquired lock, so a lambda touching guarded
/// state would trip -Wthread-safety at its definition. Call sites spell the
/// standard loop instead — the guarded reads then sit in the enclosing
/// function where the lock is provably held:
///
///   MutexLock lock(mu);
///   while (!ready) cv.Wait(mu);   // handles spurious wakeups
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires `mu` before
  /// returning. Spurious wakeups happen; always re-check the condition.
  void Wait(Mutex& mu) ISRL_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // guard without unlocking: ownership stays with the caller's MutexLock,
    // and no lock/unlock is visible to the analysis here.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace isrl

#endif  // ISRL_COMMON_MUTEX_H_
