#include "common/strings.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace isrl {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool ParseDouble(const std::string& s, double* out) {
  const std::string t = Trim(s);
  if (t.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return false;
  *out = v;
  return true;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  const std::string t = Trim(s);
  if (t.empty()) return false;
  uint64_t value = 0;
  for (char c : t) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace isrl
