// Deterministic thread-pool primitives for the evaluation layer.
//
// ParallelFor distributes independent tasks over a fixed number of worker
// threads. The determinism contract is the caller's: a task body must derive
// every stochastic choice from the task index alone (e.g. via
// Rng::Split(task) / SplitSeed) and must write only to task-indexed slots.
// Under that contract results are bit-identical at any thread count —
// scheduling decides only *when* a task runs, never *what* it computes — and
// any order-sensitive reduction is done by the caller afterwards, in task
// order.
#ifndef ISRL_COMMON_PARALLEL_H_
#define ISRL_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace isrl {

namespace internal {

/// The cross-thread state one ParallelFor invocation shares between its
/// workers: the atomic task cursor plus the first-exception slot. Split out
/// of ParallelFor's body so the exception slot can carry a real
/// ISRL_GUARDED_BY contract (locals cannot) — the clang CI lane then proves
/// every worker goes through RecordError instead of racing on the slot.
struct ParallelForState {
  std::atomic<size_t> next_task{0};

  Mutex error_mu;
  std::exception_ptr first_error ISRL_GUARDED_BY(error_mu);

  /// Stores `error` if it is the first one any worker has hit; later
  /// errors are dropped (the first failure is what the caller rethrows).
  void RecordError(std::exception_ptr error) ISRL_EXCLUDES(error_mu);

  /// The first recorded error, or nullptr. Called by ParallelFor after
  /// every worker has joined.
  [[nodiscard]] std::exception_ptr TakeFirstError() ISRL_EXCLUDES(error_mu);
};

}  // namespace internal

/// std::thread::hardware_concurrency with a floor of 1.
size_t HardwareThreads();

/// Worker-thread count from the ISRL_THREADS environment variable: unset or
/// "1" means sequential, "0" means one thread per hardware core, any other
/// integer is used as-is (capped at kMaxThreads). Malformed values (e.g.
/// "abc", "-2") abort with a clear message instead of silently becoming a
/// different thread count.
size_t ThreadsFromEnv();

/// Upper bound on worker threads (sanity cap for env-var typos).
inline constexpr size_t kMaxThreads = 256;

/// Resolves a requested thread count: 0 = ThreadsFromEnv(); the result is
/// clamped to [1, max(1, tasks)] so callers never spawn idle workers.
size_t ResolveThreads(size_t requested, size_t tasks);

/// Runs fn(worker, task) for every task in [0, tasks), spread over
/// min(threads, tasks) workers via an atomic work queue. `worker` is the id
/// of the executing worker in [0, workers) — for per-worker scratch state
/// such as a cloned algorithm instance; task-to-worker assignment is NOT
/// deterministic, so per-worker state must not influence task results.
/// Exception: when threads >= tasks every task runs on its own dedicated
/// worker (worker == task), so task bodies may block on each other — this
/// is the sanctioned way to spawn N cooperating threads (e.g. concurrent
/// clients hammering a serving boundary in tests) without reaching for raw
/// std::thread, which tools/lint.py rule `raw-thread` bans.
/// threads ≤ 1 (or tasks ≤ 1) runs inline on the calling thread. The first
/// exception thrown by a task is rethrown on the calling thread after all
/// workers finish.
void ParallelFor(size_t tasks, size_t threads,
                 const std::function<void(size_t worker, size_t task)>& fn);

/// Index-only convenience overload.
void ParallelFor(size_t tasks, size_t threads,
                 const std::function<void(size_t task)>& fn);

}  // namespace isrl

#endif  // ISRL_COMMON_PARALLEL_H_
