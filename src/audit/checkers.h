// Concrete invariant predicates for the audit layer (see audit.h).
//
// Each checker is a pure function from a structure (or a lightweight view of
// one) to a list of human-readable problems — empty means the invariant
// holds. Keeping the predicates free of the auditor lets the unit tests
// drive them with seeded corruptions directly, while the production hooks
// (in lp/, geometry/, rl/, core/) call them behind audit::ShouldCheck().
#ifndef ISRL_AUDIT_CHECKERS_H_
#define ISRL_AUDIT_CHECKERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/vec.h"
#include "core/aa_state.h"
#include "geometry/enclosing_ball.h"
#include "geometry/halfspace.h"
#include "nn/network.h"
#include "rl/prioritized_replay.h"

namespace isrl::audit {

// ---------------------------------------------------------------------------
// LP: simplex tableau.
// ---------------------------------------------------------------------------

/// Read-only view of the dense tableau's state between pivots. The tableau
/// class itself is file-local to lp/simplex.cc; the solver builds this view
/// (pointers only) for the hook, and tests build corrupted ones by hand.
struct TableauView {
  const std::vector<std::vector<double>>* rows = nullptr;
  const std::vector<double>* rhs = nullptr;     ///< one entry per row
  const std::vector<size_t>* basis = nullptr;   ///< basic column per row
  const std::vector<double>* cost = nullptr;    ///< objective over all columns
  size_t num_cols = 0;
  size_t first_artificial = 0;  ///< == num_cols when no artificials exist
  int phase = 2;                ///< artificials may be basic only in phase 1
  double feasibility_tol = 1e-9;
};

/// Simplex invariants that must hold after every pivot:
///  - primal feasibility: every rhs entry ≥ −tol (the ratio test preserves
///    non-negativity; a negative basic value means the pivot corrupted it);
///  - basis consistency: basic columns are in range, pairwise distinct, and
///    each is a unit column of the tableau (1 in its own row, ~0 elsewhere);
///  - bounded objective: the basic objective value Σ c_B·rhs is finite, as
///    is every tableau entry on the basic columns;
///  - phase separation: in phase 2 a basic artificial may persist only on a
///    neutralised redundant row, i.e. at value ~0.
[[nodiscard]] std::vector<std::string> CheckSimplexTableau(
    const TableauView& view);

/// Internal consistency of a warm-start basis (lp::WarmStart, passed as raw
/// fields so this header stays solver-independent): `basis` must hold exactly
/// `num_rows` pairwise-distinct structural/slack column indices — each
/// < `first_artificial` ≤ `num_cols` — and the fingerprint itself must be
/// coherent (first_artificial ≤ num_cols). A *stale* basis (right shape,
/// wrong model) is not detectable here and is a legitimate cold-fallback at
/// the solver; a basis that fails these checks was corrupted after export.
[[nodiscard]] std::vector<std::string> CheckWarmStartBasis(
    const std::vector<size_t>& basis, size_t num_rows, size_t num_cols,
    size_t first_artificial);

// ---------------------------------------------------------------------------
// Geometry: polyhedron vertex set and enclosing balls.
// ---------------------------------------------------------------------------

/// Every stored extreme vertex must lie in the polyhedron it claims to
/// describe: finite, on the unit simplex (u ≥ −tol, Σu = 1 ± d·tol), and on
/// the feasible side of every retained cut (margin ≥ −tol·‖normal‖).
[[nodiscard]] std::vector<std::string> CheckPolyhedronVertices(
    size_t dim, const std::vector<Halfspace>& cuts,
    const std::vector<Vec>& vertices, double tol);

/// Vertex–facet adjacency consistency (DESIGN.md §17): `facets` must be
/// parallel to `vertices`, each facet set must hold exactly d−1 sorted,
/// distinct, in-range inequality-constraint indices (0..d−1 the
/// non-negativity rows, d+j the j-th cut), pairwise-distinct across
/// vertices, every listed constraint must be tight at its vertex within
/// `tight_tol`·scale, and every edge (a facet set minus one entry) must be
/// shared by exactly two vertices — a dangling edge means the enumeration
/// lost a vertex.
[[nodiscard]] std::vector<std::string> CheckPolyhedronAdjacency(
    size_t dim, const std::vector<Halfspace>& cuts,
    const std::vector<Vec>& vertices,
    const std::vector<std::vector<uint32_t>>& facets, double tight_tol);

/// Cut monotonicity: a cut intersects R with a half-space, so any monotone
/// volume proxy (we use the vertex-set diameter) must not grow. `slack`
/// absorbs re-enumeration round-off.
[[nodiscard]] std::vector<std::string> CheckCutMonotonicity(
    double proxy_before, double proxy_after, double slack);

/// An enclosing ball must contain every point it was computed from, within
/// `tol` slack, and have a finite centre / non-negative finite radius.
[[nodiscard]] std::vector<std::string> CheckBallEncloses(
    const Ball& ball, const std::vector<Vec>& points, double tol);

/// Every entry of `v` is finite. Used at the EA/AA call sites on the encoded
/// state vectors — a NaN smuggled into a state poisons every Q-value the
/// agent computes from it, silently.
[[nodiscard]] std::vector<std::string> CheckFiniteVec(const Vec& v,
                                                      const char* what);

// ---------------------------------------------------------------------------
// RL: network finiteness, target-net sync epoch, replay segment tree.
// ---------------------------------------------------------------------------

/// No NaN/Inf anywhere in the network's parameters or accumulated
/// gradients. `label` names the network in the report ("main", "target").
/// (Network::Params() is non-const by design; the checker only reads.)
[[nodiscard]] std::vector<std::string> CheckNetworkFinite(
    nn::Network& network, const char* label);

/// Target-network sync epoch: immediately after an update that completed a
/// sync epoch (num_updates ≡ 0 mod target_sync_every), the target must be a
/// bit-exact copy of the main network (SyncTarget copies, never re-derives).
[[nodiscard]] std::vector<std::string> CheckTargetSyncEpoch(
    uint64_t num_updates, size_t target_sync_every, nn::Network& main_network,
    nn::Network& target_network);

/// Raw segment-tree consistency: the maintained root aggregates must match
/// the leaf priorities (Σ within rel_tol·Σ absolute slack, min exactly up to
/// rel_tol), and every occupied leaf priority must be finite and > 0.
/// Exposed raw so tests can seed corrupted aggregates.
[[nodiscard]] std::vector<std::string> CheckReplayTreeRaw(
    const std::vector<double>& leaf_priorities, double total_priority,
    double min_priority, double rel_tol);

/// CheckReplayTreeRaw over a live PER memory's occupied slots.
[[nodiscard]] std::vector<std::string> CheckReplayTree(
    const rl::PrioritizedReplayMemory& memory, double rel_tol);

// ---------------------------------------------------------------------------
// Core: AA's LP-derived geometry.
// ---------------------------------------------------------------------------

/// A feasible AaGeometry must be internally consistent: finite values,
/// radius ≥ 0, per-coordinate e_min ≤ e_max + tol, the inner-ball centre on
/// the feasible side of every learned half-space (margin ≥ −tol) and inside
/// the outer rectangle (±tol).
[[nodiscard]] std::vector<std::string> CheckAaGeometry(
    const AaGeometry& geometry, const std::vector<LearnedHalfspace>& h,
    double tol);

}  // namespace isrl::audit

#endif  // ISRL_AUDIT_CHECKERS_H_
