// Invariant-audit layer: runtime-sampled checkers for the numerically
// delicate structures (simplex tableau, polyhedron vertex set, enclosing
// balls, Q-network weights, replay segment tree).
//
// The failure mode this guards against is *silent* corruption: an infeasible
// tableau or an inconsistent vertex set does not crash — it quietly skews the
// utility range and the interaction counts, and the graceful-degradation
// paths (DESIGN.md §9) can then mask the damage. The auditor makes those
// states loud in any build where they matter.
//
// Compile-time gate: hooks are compiled in when the `ISRL_AUDIT` CMake
// option is ON (the default; -DISRL_AUDIT=OFF strips every hook to a
// constant-false branch). Runtime gate: the `ISRL_AUDIT` environment
// variable — unset/`0` = off (the default; a disabled hook is one relaxed
// atomic load), `1` = check everything, `sample=N` (or a bare integer N) =
// run every Nth hook of each checker, `abort` = abort on the first
// violation. Tokens combine with commas: `ISRL_AUDIT=sample=16,abort`.
//
// Violations are recorded per checker in a SolveDiagnostics-style report
// (AuditReport) retrievable via Auditor().Snapshot(); by default they are
// also printed to stderr (first few per checker) so an end-to-end run under
// ISRL_AUDIT=1 is self-reporting.
#ifndef ISRL_AUDIT_AUDIT_H_
#define ISRL_AUDIT_AUDIT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace isrl::audit {

/// The registered checkers. Each guards one structure; see checkers.h for
/// the predicates and DESIGN.md §11 for the rationale.
enum class Checker {
  kLpTableau = 0,   ///< simplex tableau: feasibility, basis, boundedness
  kPolyhedron,      ///< vertex set vs. half-spaces, cut monotonicity
  kEnclosingBall,   ///< computed balls contain their points
  kNnFinite,        ///< network weights / gradients / target sync
  kReplayTree,      ///< PER segment tree sum/min vs. leaf priorities
  kAaGeometry,      ///< AA inner ball / outer rectangle consistency
  kPolyhedronAdjacency,  ///< vertex–facet adjacency + incremental-vs-seed
};
inline constexpr size_t kNumCheckers = 7;

/// Stable lower-case name of a checker ("lp_tableau", ...).
[[nodiscard]] const char* CheckerName(Checker c);

/// One recorded invariant violation.
struct Violation {
  Checker checker = Checker::kLpTableau;
  std::string site;     ///< call site tag, e.g. "simplex.Pivot"
  std::string message;  ///< what was violated, with the offending values
};

/// Per-checker counters (SolveDiagnostics-style: cheap aggregates plus a
/// bounded sample of the concrete failures).
struct CheckerStats {
  uint64_t checks = 0;      ///< hook executions that ran the predicate
  uint64_t violations = 0;  ///< predicates that failed
};

/// Aggregate audit outcome for the process (or since the last Reset()).
struct AuditReport {
  std::array<CheckerStats, kNumCheckers> per_checker;
  std::vector<Violation> violations;  ///< first kMaxStoredViolations, in order
  uint64_t total_checks = 0;
  uint64_t total_violations = 0;

  [[nodiscard]] bool clean() const { return total_violations == 0; }
  /// Multi-line human-readable summary (one line per active checker plus
  /// the stored violations).
  [[nodiscard]] std::string ToString() const;
};

/// Runtime configuration, normally parsed from the ISRL_AUDIT env var.
struct AuditConfig {
  bool enabled = false;
  uint64_t sample_every = 1;        ///< run every Nth hook per checker
  bool abort_on_violation = false;  ///< fail fast instead of recording
  bool log_to_stderr = true;        ///< print the first few violations
};

/// Parses an ISRL_AUDIT value ("", "0", "1", "sample=16", "abort",
/// "sample=4,abort", a bare integer N meaning sample=N). Unrecognised
/// tokens disable auditing and set `*error` when provided (malformed
/// configuration must not silently pass as "audited").
[[nodiscard]] AuditConfig ParseAuditConfig(const char* value,
                                           std::string* error = nullptr);

/// Process-wide auditor: sampling decisions + violation accounting.
/// Thread-safe: hooks run under the parallel evaluation layer (DESIGN.md
/// §10), so counters are atomics and the violation list is mutex-guarded.
class InvariantAuditor {
 public:
  /// The singleton, configured from the ISRL_AUDIT environment variable on
  /// first use.
  static InvariantAuditor& Instance();

  /// Replaces the configuration (tests; also used to re-read the env).
  void Configure(const AuditConfig& config);
  /// Re-parses the ISRL_AUDIT environment variable.
  void ConfigureFromEnvironment();
  [[nodiscard]] AuditConfig config() const;

  /// True when the hook for `c` should run its predicate now (applies the
  /// per-checker sampling stride). Cheap when disabled: one relaxed load.
  [[nodiscard]] bool ShouldCheck(Checker c);

  /// Records the outcome of one executed check. `problems` empty = clean.
  void Record(Checker c, const char* site,
              const std::vector<std::string>& problems);

  /// Snapshot of all counters and stored violations.
  [[nodiscard]] AuditReport Snapshot() const;

  /// Clears counters and stored violations (config is kept). Test seam and
  /// per-phase reporting boundary.
  void Reset();

  static constexpr size_t kMaxStoredViolations = 64;
  static constexpr size_t kMaxLoggedPerChecker = 4;

 private:
  InvariantAuditor();

  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  /// enabled_ mirrors config_.enabled for the lock-free fast path.
  AuditConfig config_ ISRL_GUARDED_BY(mu_);
  std::array<std::atomic<uint64_t>, kNumCheckers> hook_counter_{};
  std::array<std::atomic<uint64_t>, kNumCheckers> checks_{};
  std::array<std::atomic<uint64_t>, kNumCheckers> violations_{};
  std::array<std::atomic<uint64_t>, kNumCheckers> logged_{};
  std::vector<Violation> stored_ ISRL_GUARDED_BY(mu_);
};

/// Shorthand for InvariantAuditor::Instance().
inline InvariantAuditor& Auditor() { return InvariantAuditor::Instance(); }

#ifdef ISRL_AUDIT_ENABLED
/// Hook guard: true when the checker should run now. Compiled to a
/// constant false (dead-stripping the predicate) when the audit layer is
/// configured out with -DISRL_AUDIT=OFF.
[[nodiscard]] inline bool ShouldCheck(Checker c) {
  return Auditor().ShouldCheck(c);
}
#else
[[nodiscard]] constexpr bool ShouldCheck(Checker) { return false; }
#endif

}  // namespace isrl::audit

#endif  // ISRL_AUDIT_AUDIT_H_
