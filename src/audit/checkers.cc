#include "audit/checkers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/strings.h"

namespace isrl::audit {
namespace {

bool AllFinite(const Vec& v) {
  for (size_t i = 0; i < v.dim(); ++i) {
    if (!std::isfinite(v[i])) return false;
  }
  return true;
}

}  // namespace

std::vector<std::string> CheckSimplexTableau(const TableauView& view) {
  std::vector<std::string> problems;
  const auto& rows = *view.rows;
  const auto& rhs = *view.rhs;
  const auto& basis = *view.basis;
  const auto& cost = *view.cost;
  const size_t num_rows = rows.size();
  const double tol = view.feasibility_tol;

  // Primal feasibility: basic values stay non-negative across pivots.
  for (size_t r = 0; r < num_rows; ++r) {
    if (!(rhs[r] >= -tol)) {
      problems.push_back(Format("rhs[%zu] = %.17g < -%g (primal "
                                "infeasibility after pivot)",
                                r, rhs[r], tol));
    }
  }

  // Basis consistency: in range, pairwise distinct, and unit columns.
  // The unit-column sweep is O(rows²) — the reason tableau audits are the
  // prime candidate for ISRL_AUDIT=sample=N on big models.
  for (size_t r = 0; r < num_rows; ++r) {
    if (basis[r] >= view.num_cols) {
      problems.push_back(
          Format("basis[%zu] = %zu out of range (num_cols %zu)", r, basis[r],
                 view.num_cols));
      continue;
    }
    for (size_t r2 = r + 1; r2 < num_rows; ++r2) {
      if (basis[r2] == basis[r]) {
        problems.push_back(Format("basis column %zu is basic in rows %zu "
                                  "and %zu",
                                  basis[r], r, r2));
      }
    }
    const double diag = rows[r][basis[r]];
    if (std::abs(diag - 1.0) > 1e-7) {
      problems.push_back(Format("rows[%zu][basis=%zu] = %.17g, expected 1 "
                                "(basis not canonical)",
                                r, basis[r], diag));
    }
    for (size_t r2 = 0; r2 < num_rows; ++r2) {
      if (r2 == r) continue;
      if (std::abs(rows[r2][basis[r]]) > 1e-7) {
        problems.push_back(Format("rows[%zu][basis[%zu]=%zu] = %.17g, "
                                  "expected 0 (basis column not unit)",
                                  r2, r, basis[r], rows[r2][basis[r]]));
      }
    }
  }

  // Bounded objective: the basic objective value is finite.
  double objective = 0.0;
  for (size_t r = 0; r < num_rows; ++r) {
    if (basis[r] < view.num_cols) objective += cost[basis[r]] * rhs[r];
    if (!std::isfinite(rhs[r])) {
      problems.push_back(Format("rhs[%zu] is not finite", r));
    }
  }
  if (!std::isfinite(objective)) {
    problems.push_back(
        Format("basic objective value %.17g is not finite", objective));
  }

  // Phase separation: a basic artificial in phase 2 is legal only on a
  // neutralised redundant row (value ~0).
  if (view.phase >= 2) {
    for (size_t r = 0; r < num_rows; ++r) {
      if (basis[r] >= view.first_artificial && basis[r] < view.num_cols &&
          rhs[r] > tol) {
        problems.push_back(Format("artificial column %zu basic at %.17g in "
                                  "phase 2",
                                  basis[r], rhs[r]));
      }
    }
  }
  return problems;
}

std::vector<std::string> CheckWarmStartBasis(const std::vector<size_t>& basis,
                                             size_t num_rows, size_t num_cols,
                                             size_t first_artificial) {
  std::vector<std::string> problems;
  if (first_artificial > num_cols) {
    problems.push_back(Format("first_artificial %zu > num_cols %zu "
                              "(incoherent shape fingerprint)",
                              first_artificial, num_cols));
  }
  if (basis.size() != num_rows) {
    problems.push_back(Format("basis holds %zu columns for %zu rows",
                              basis.size(), num_rows));
    return problems;
  }
  std::map<size_t, size_t> first_seen;
  for (size_t r = 0; r < basis.size(); ++r) {
    const size_t col = basis[r];
    if (col >= num_cols) {
      problems.push_back(Format("basis[%zu] = %zu out of range (num_cols "
                                "%zu)",
                                r, col, num_cols));
      continue;
    }
    if (col >= first_artificial) {
      problems.push_back(Format("basis[%zu] = %zu is an artificial column "
                                "(first_artificial %zu) — optimal bases "
                                "never export those",
                                r, col, first_artificial));
    }
    auto [it, inserted] = first_seen.emplace(col, r);
    if (!inserted) {
      problems.push_back(Format("basis column %zu repeated in rows %zu and "
                                "%zu",
                                col, it->second, r));
    }
  }
  return problems;
}

std::vector<std::string> CheckPolyhedronVertices(
    size_t dim, const std::vector<Halfspace>& cuts,
    const std::vector<Vec>& vertices, double tol) {
  std::vector<std::string> problems;
  for (size_t i = 0; i < vertices.size(); ++i) {
    const Vec& v = vertices[i];
    if (v.dim() != dim) {
      problems.push_back(
          Format("vertex %zu has dim %zu, expected %zu", i, v.dim(), dim));
      continue;
    }
    if (!AllFinite(v)) {
      problems.push_back(Format("vertex %zu has a non-finite coordinate", i));
      continue;
    }
    double sum = 0.0;
    for (size_t c = 0; c < dim; ++c) {
      if (v[c] < -tol) {
        problems.push_back(Format("vertex %zu coordinate %zu = %.17g < -%g "
                                  "(outside the simplex)",
                                  i, c, v[c], tol));
      }
      sum += v[c];
    }
    if (std::abs(sum - 1.0) > tol * static_cast<double>(dim)) {
      problems.push_back(Format("vertex %zu coordinates sum to %.17g, "
                                "expected 1",
                                i, sum));
    }
    for (size_t k = 0; k < cuts.size(); ++k) {
      const double scale = std::max(1.0, cuts[k].normal.Norm());
      const double margin = cuts[k].Margin(v);
      if (margin < -tol * scale) {
        problems.push_back(Format("vertex %zu violates cut %zu: margin "
                                  "%.17g < -%g",
                                  i, k, margin, tol * scale));
      }
    }
  }
  return problems;
}

std::vector<std::string> CheckPolyhedronAdjacency(
    size_t dim, const std::vector<Halfspace>& cuts,
    const std::vector<Vec>& vertices,
    const std::vector<std::vector<uint32_t>>& facets, double tight_tol) {
  std::vector<std::string> problems;
  if (facets.size() != vertices.size()) {
    problems.push_back(Format("facet-set count %zu != vertex count %zu",
                              facets.size(), vertices.size()));
    return problems;
  }
  const size_t num_ineq = dim + cuts.size();
  for (size_t i = 0; i < facets.size(); ++i) {
    const std::vector<uint32_t>& fs = facets[i];
    if (fs.size() != dim - 1) {
      problems.push_back(Format("vertex %zu has %zu incident facets, "
                                "expected %zu",
                                i, fs.size(), dim - 1));
      continue;
    }
    bool in_range = true;
    for (size_t f = 0; f < fs.size(); ++f) {
      if (fs[f] >= num_ineq) {
        problems.push_back(Format("vertex %zu facet %zu = %u out of range "
                                  "(%zu constraints)",
                                  i, f, fs[f], num_ineq));
        in_range = false;
      }
      if (f > 0 && fs[f] <= fs[f - 1]) {
        problems.push_back(Format("vertex %zu facet set not strictly "
                                  "ascending at position %zu",
                                  i, f));
        in_range = false;
      }
    }
    if (!in_range || vertices[i].dim() != dim) continue;
    for (const uint32_t idx : fs) {
      double margin;
      double scale;
      if (idx < dim) {
        margin = vertices[i][idx];
        scale = 1.0;
      } else {
        const Halfspace& h = cuts[idx - dim];
        margin = h.Margin(vertices[i]);
        scale = std::max(1.0, h.normal.Norm());
      }
      if (std::abs(margin) > tight_tol * scale) {
        problems.push_back(Format("vertex %zu claims constraint %u tight "
                                  "but margin = %.17g",
                                  i, idx, margin));
      }
    }
  }
  if (!problems.empty()) return problems;
  // Pairwise-distinct facet sets, and edge completeness: every (d−2)-subset
  // reached by dropping one facet must be shared by exactly two vertices
  // (each bounded-polytope edge has two endpoints).
  std::map<std::vector<uint32_t>, size_t> seen;
  for (size_t i = 0; i < facets.size(); ++i) {
    auto [it, inserted] = seen.emplace(facets[i], i);
    if (!inserted) {
      problems.push_back(Format("vertices %zu and %zu share the same facet "
                                "set",
                                it->second, i));
    }
  }
  if (!problems.empty()) return problems;
  std::map<std::vector<uint32_t>, size_t> edge_count;
  std::vector<uint32_t> key;
  for (const std::vector<uint32_t>& fs : facets) {
    for (size_t drop = 0; drop < fs.size(); ++drop) {
      key.clear();
      for (size_t f = 0; f < fs.size(); ++f) {
        if (f != drop) key.push_back(fs[f]);
      }
      ++edge_count[key];
    }
  }
  for (const auto& [edge, count] : edge_count) {
    if (count != 2) {
      std::string named = "{";
      for (size_t f = 0; f < edge.size(); ++f) {
        if (f > 0) named += ",";
        named += std::to_string(edge[f]);
      }
      named += "}";
      problems.push_back(Format("edge %s has %zu incident vertices, "
                                "expected 2",
                                named.c_str(), count));
    }
  }
  return problems;
}

std::vector<std::string> CheckCutMonotonicity(double proxy_before,
                                              double proxy_after,
                                              double slack) {
  std::vector<std::string> problems;
  if (proxy_after > proxy_before + slack) {
    problems.push_back(Format("volume proxy grew across a cut: %.17g -> "
                              "%.17g (slack %g)",
                              proxy_before, proxy_after, slack));
  }
  return problems;
}

std::vector<std::string> CheckBallEncloses(const Ball& ball,
                                           const std::vector<Vec>& points,
                                           double tol) {
  std::vector<std::string> problems;
  if (!AllFinite(ball.center)) {
    problems.push_back("ball centre has a non-finite coordinate");
    return problems;
  }
  if (!std::isfinite(ball.radius) || ball.radius < 0.0) {
    problems.push_back(Format("ball radius %.17g is negative or non-finite",
                              ball.radius));
    return problems;
  }
  for (size_t i = 0; i < points.size(); ++i) {
    const double gap = Distance(ball.center, points[i]) - ball.radius;
    if (gap > tol) {
      problems.push_back(Format("point %zu lies %.17g outside the ball "
                                "(radius %.17g)",
                                i, gap, ball.radius));
    }
  }
  return problems;
}

std::vector<std::string> CheckFiniteVec(const Vec& v, const char* what) {
  std::vector<std::string> problems;
  for (size_t i = 0; i < v.dim(); ++i) {
    if (!std::isfinite(v[i])) {
      problems.push_back(Format("%s entry %zu = %.17g", what, i, v[i]));
    }
  }
  return problems;
}

std::vector<std::string> CheckNetworkFinite(nn::Network& network,
                                            const char* label) {
  std::vector<std::string> problems;
  size_t block_index = 0;
  for (const nn::ParamBlock& block : network.Params()) {
    for (size_t i = 0; i < block.values->size(); ++i) {
      if (!std::isfinite((*block.values)[i])) {
        problems.push_back(Format("%s network: parameter block %zu entry "
                                  "%zu = %.17g",
                                  label, block_index, i, (*block.values)[i]));
        break;  // one report per block is enough to localise the blow-up
      }
    }
    for (size_t i = 0; i < block.grads->size(); ++i) {
      if (!std::isfinite((*block.grads)[i])) {
        problems.push_back(Format("%s network: gradient block %zu entry "
                                  "%zu = %.17g",
                                  label, block_index, i, (*block.grads)[i]));
        break;
      }
    }
    ++block_index;
  }
  return problems;
}

std::vector<std::string> CheckTargetSyncEpoch(uint64_t num_updates,
                                              size_t target_sync_every,
                                              nn::Network& main_network,
                                              nn::Network& target_network) {
  std::vector<std::string> problems;
  if (target_sync_every == 0 || num_updates == 0 ||
      num_updates % target_sync_every != 0) {
    return problems;  // not a sync boundary — nothing to assert
  }
  std::vector<nn::ParamBlock> main_params = main_network.Params();
  std::vector<nn::ParamBlock> target_params = target_network.Params();
  if (main_params.size() != target_params.size()) {
    problems.push_back(Format("main/target parameter block counts differ "
                              "(%zu vs %zu)",
                              main_params.size(), target_params.size()));
    return problems;
  }
  for (size_t b = 0; b < main_params.size(); ++b) {
    if (*main_params[b].values != *target_params[b].values) {
      problems.push_back(Format("target network out of sync at update %llu "
                                "(block %zu differs; sync_every %zu)",
                                static_cast<unsigned long long>(num_updates),
                                b, target_sync_every));
    }
  }
  return problems;
}

std::vector<std::string> CheckReplayTreeRaw(
    const std::vector<double>& leaf_priorities, double total_priority,
    double min_priority, double rel_tol) {
  std::vector<std::string> problems;
  double sum = 0.0;
  double min_p = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < leaf_priorities.size(); ++i) {
    const double p = leaf_priorities[i];
    if (!std::isfinite(p) || p <= 0.0) {
      problems.push_back(
          Format("leaf priority %zu = %.17g (must be finite and > 0)", i, p));
      continue;
    }
    sum += p;
    min_p = std::min(min_p, p);
  }
  if (leaf_priorities.empty()) return problems;
  const double sum_slack =
      rel_tol * std::max({1.0, std::abs(sum), std::abs(total_priority)});
  if (std::abs(total_priority - sum) > sum_slack) {
    problems.push_back(Format("segment-tree total %.17g != leaf sum %.17g "
                              "(slack %g)",
                              total_priority, sum, sum_slack));
  }
  const double min_slack = rel_tol * std::max(1.0, std::abs(min_p));
  if (std::abs(min_priority - min_p) > min_slack) {
    problems.push_back(Format("segment-tree min %.17g != leaf min %.17g "
                              "(slack %g)",
                              min_priority, min_p, min_slack));
  }
  return problems;
}

std::vector<std::string> CheckReplayTree(
    const rl::PrioritizedReplayMemory& memory, double rel_tol) {
  std::vector<double> leaves;
  leaves.reserve(memory.size());
  for (size_t i = 0; i < memory.size(); ++i) {
    leaves.push_back(memory.priority(i));
  }
  if (leaves.empty()) return {};
  return CheckReplayTreeRaw(leaves, memory.total_priority(),
                            memory.min_priority(), rel_tol);
}

std::vector<std::string> CheckAaGeometry(
    const AaGeometry& geometry, const std::vector<LearnedHalfspace>& h,
    double tol) {
  std::vector<std::string> problems;
  if (!geometry.feasible) return problems;  // infeasible carries no claims
  if (!AllFinite(geometry.inner.center) || !AllFinite(geometry.e_min) ||
      !AllFinite(geometry.e_max) || !std::isfinite(geometry.inner.radius)) {
    problems.push_back("AA geometry has a non-finite component");
    return problems;
  }
  if (geometry.inner.radius < -tol) {
    problems.push_back(
        Format("inner-ball radius %.17g is negative", geometry.inner.radius));
  }
  const size_t dim = geometry.inner.center.dim();
  for (size_t c = 0; c < dim; ++c) {
    if (geometry.e_min[c] > geometry.e_max[c] + tol) {
      problems.push_back(Format("outer rectangle inverted in dim %zu: "
                                "e_min %.17g > e_max %.17g",
                                c, geometry.e_min[c], geometry.e_max[c]));
    }
    if (geometry.inner.center[c] < geometry.e_min[c] - tol ||
        geometry.inner.center[c] > geometry.e_max[c] + tol) {
      problems.push_back(Format("inner-ball centre coordinate %zu = %.17g "
                                "outside the outer rectangle [%.17g, %.17g]",
                                c, geometry.inner.center[c], geometry.e_min[c],
                                geometry.e_max[c]));
    }
  }
  for (size_t k = 0; k < h.size(); ++k) {
    const double norm = h[k].h.normal.Norm();
    if (norm <= 0.0) continue;  // degenerate half-spaces are skipped upstream
    const double margin = h[k].h.Margin(geometry.inner.center);
    if (margin < -tol * std::max(1.0, norm)) {
      problems.push_back(Format("inner-ball centre violates half-space %zu: "
                                "margin %.17g",
                                k, margin));
    }
  }
  return problems;
}

}  // namespace isrl::audit
