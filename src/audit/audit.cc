#include "audit/audit.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace isrl::audit {

const char* CheckerName(Checker c) {
  switch (c) {
    case Checker::kLpTableau: return "lp_tableau";
    case Checker::kPolyhedron: return "polyhedron";
    case Checker::kEnclosingBall: return "enclosing_ball";
    case Checker::kNnFinite: return "nn_finite";
    case Checker::kReplayTree: return "replay_tree";
    case Checker::kAaGeometry: return "aa_geometry";
    case Checker::kPolyhedronAdjacency: return "polyhedron_adjacency";
  }
  return "unknown";
}

std::string AuditReport::ToString() const {
  std::string out = "audit: " + std::to_string(total_checks) + " checks, " +
                    std::to_string(total_violations) + " violations\n";
  for (size_t i = 0; i < kNumCheckers; ++i) {
    const CheckerStats& s = per_checker[i];
    if (s.checks == 0 && s.violations == 0) continue;
    out += "  " + std::string(CheckerName(static_cast<Checker>(i))) + ": " +
           std::to_string(s.checks) + " checks, " +
           std::to_string(s.violations) + " violations\n";
  }
  for (const Violation& v : violations) {
    out += "  [" + std::string(CheckerName(v.checker)) + "] " + v.site + ": " +
           v.message + "\n";
  }
  return out;
}

AuditConfig ParseAuditConfig(const char* value, std::string* error) {
  AuditConfig config;
  if (value == nullptr) return config;
  const std::string raw = value;
  if (raw.empty()) return config;

  for (const std::string& token : Split(raw, ',')) {
    if (token.empty()) continue;
    if (token == "0" || token == "off" || token == "false") {
      config.enabled = false;
    } else if (token == "1" || token == "on" || token == "true") {
      config.enabled = true;
    } else if (token == "abort") {
      config.enabled = true;
      config.abort_on_violation = true;
    } else if (token == "quiet") {
      config.log_to_stderr = false;
    } else {
      // "sample=N" or a bare integer N: check every Nth hook.
      std::string digits = token;
      const std::string prefix = "sample=";
      if (digits.rfind(prefix, 0) == 0) digits = digits.substr(prefix.size());
      uint64_t n = 0;
      if (!ParseUint64(digits, &n) || n == 0) {
        if (error != nullptr) {
          *error = "unrecognised ISRL_AUDIT token '" + token + "'";
        }
        return AuditConfig();  // malformed config must not pass as "audited"
      }
      config.enabled = true;
      config.sample_every = n;
    }
  }
  return config;
}

InvariantAuditor& InvariantAuditor::Instance() {
  static InvariantAuditor* auditor = new InvariantAuditor();  // leaked: process-lifetime
  return *auditor;
}

InvariantAuditor::InvariantAuditor() { ConfigureFromEnvironment(); }

void InvariantAuditor::ConfigureFromEnvironment() {
  std::string error;
  // Startup/configure path, never called from checker hooks.
  AuditConfig config = ParseAuditConfig(
      std::getenv("ISRL_AUDIT"), &error);  // NOLINT(concurrency-mt-unsafe)
  if (!error.empty()) {
    std::fprintf(stderr, "ISRL_AUDIT: %s (auditing disabled)\n",
                 error.c_str());
  }
  Configure(config);
}

void InvariantAuditor::Configure(const AuditConfig& config) {
  MutexLock lock(mu_);
  config_ = config;
  enabled_.store(config.enabled, std::memory_order_relaxed);
}

AuditConfig InvariantAuditor::config() const {
  MutexLock lock(mu_);
  return config_;
}

bool InvariantAuditor::ShouldCheck(Checker c) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  uint64_t stride;
  {
    MutexLock lock(mu_);
    stride = config_.sample_every;
  }
  const size_t i = static_cast<size_t>(c);
  const uint64_t n =
      hook_counter_[i].fetch_add(1, std::memory_order_relaxed);
  return stride <= 1 || n % stride == 0;
}

void InvariantAuditor::Record(Checker c, const char* site,
                              const std::vector<std::string>& problems) {
  const size_t i = static_cast<size_t>(c);
  checks_[i].fetch_add(1, std::memory_order_relaxed);
  if (problems.empty()) return;
  violations_[i].fetch_add(problems.size(), std::memory_order_relaxed);

  bool abort_on_violation;
  bool log_to_stderr;
  {
    MutexLock lock(mu_);
    abort_on_violation = config_.abort_on_violation;
    log_to_stderr = config_.log_to_stderr;
    for (const std::string& message : problems) {
      if (stored_.size() >= kMaxStoredViolations) break;
      stored_.push_back(Violation{c, site, message});
    }
  }
  if (log_to_stderr || abort_on_violation) {
    const uint64_t already = logged_[i].fetch_add(1, std::memory_order_relaxed);
    if (already < kMaxLoggedPerChecker || abort_on_violation) {
      for (const std::string& message : problems) {
        std::fprintf(stderr, "ISRL_AUDIT violation [%s] %s: %s\n",
                     CheckerName(c), site, message.c_str());
      }
      if (!abort_on_violation && already + 1 == kMaxLoggedPerChecker) {
        std::fprintf(stderr,
                     "ISRL_AUDIT [%s]: further violations recorded "
                     "without logging\n",
                     CheckerName(c));
      }
    }
  }
  if (abort_on_violation) std::abort();
}

AuditReport InvariantAuditor::Snapshot() const {
  AuditReport report;
  for (size_t i = 0; i < kNumCheckers; ++i) {
    report.per_checker[i].checks = checks_[i].load(std::memory_order_relaxed);
    report.per_checker[i].violations =
        violations_[i].load(std::memory_order_relaxed);
    report.total_checks += report.per_checker[i].checks;
    report.total_violations += report.per_checker[i].violations;
  }
  MutexLock lock(mu_);
  report.violations = stored_;
  return report;
}

void InvariantAuditor::Reset() {
  MutexLock lock(mu_);
  for (size_t i = 0; i < kNumCheckers; ++i) {
    hook_counter_[i].store(0, std::memory_order_relaxed);
    checks_[i].store(0, std::memory_order_relaxed);
    violations_[i].store(0, std::memory_order_relaxed);
    logged_[i].store(0, std::memory_order_relaxed);
  }
  stored_.clear();
}

}  // namespace isrl::audit
