#include "serve/trainer.h"

#include <utility>

#include "common/check.h"

namespace isrl {

ContinuousTrainer::ContinuousTrainer(TraceStore& traces,
                                     nn::ModelRegistry& registry,
                                     RetrainHooks hooks,
                                     TrainerOptions options)
    : traces_(traces),
      registry_(registry),
      hooks_(std::move(hooks)),
      options_(options) {
  ISRL_CHECK(hooks_.train != nullptr);
  ISRL_CHECK(hooks_.network != nullptr);
  ISRL_CHECK_GT(options_.min_new_traces, 0u);
  ISRL_CHECK_GT(options_.max_utilities, 0u);
}

ContinuousTrainer::~ContinuousTrainer() { Stop(); }

Result<RetrainOutcome> ContinuousTrainer::RetrainOnce() {
  // Read the watermark BEFORE collecting samples: records harvested during
  // the (long) train call stay un-consumed and count towards the next
  // retrain's pacing.
  const size_t watermark = traces_.harvested();
  std::vector<Vec> utilities = traces_.TrainingUtilities(options_.max_utilities);
  if (utilities.empty()) {
    MutexLock lock(mu_);
    consumed_ = watermark;
    return Status::FailedPrecondition(
        "no harvested utility estimates to retrain on");
  }
  RetrainOutcome outcome;
  outcome.samples = utilities.size();
  outcome.stats = hooks_.train(utilities);
  outcome.version = registry_.Publish(hooks_.network());
  MutexLock lock(mu_);
  consumed_ = watermark;
  ++retrains_;
  return outcome;
}

void ContinuousTrainer::Start() {
  ISRL_CHECK(!worker_.joinable());
  traces_.ClearInterrupt();
  stop_.store(false, std::memory_order_release);
  worker_ = std::thread(&ContinuousTrainer::Loop, this);
}

void ContinuousTrainer::Stop() {
  if (!worker_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  traces_.Interrupt();
  worker_.join();
}

size_t ContinuousTrainer::retrains() const {
  MutexLock lock(mu_);
  return retrains_;
}

void ContinuousTrainer::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    size_t target;
    {
      MutexLock lock(mu_);
      target = consumed_ + options_.min_new_traces;
    }
    if (!traces_.WaitForTotal(target)) return;  // interrupted: Stop() ran
    if (stop_.load(std::memory_order_acquire)) return;
    // A failed attempt (no utilities in the window) already advanced
    // consumed_, so the next wait needs genuinely fresh traces either way.
    (void)RetrainOnce();
  }
}

}  // namespace isrl
