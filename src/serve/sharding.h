// Sharded multi-threaded serving engine (DESIGN.md §15).
//
// The §13 SessionScheduler interleaves thousands of sans-IO sessions on one
// thread; this layer composes N of them into a population-scale serving
// engine: one scheduler shard per worker thread, sessions hashed to shards
// by id, a mutex-sharded inbound answer queue per shard, and — because each
// shard is a whole SessionScheduler — one coalesced PredictBatch per
// Q-network per shard per tick. The boundary API (TryPostAnswer/TryCancel/
// TryTake) is thread-safe and Status-returning: a stale or hostile client
// gets an error back, never an ISRL_CHECK abort, which is what a server
// front-end needs.
//
// Determinism: a seeded session's episode is a pure function of its seed
// and its own answers (PR 2/5 contracts) — scheduling decides only *when*
// a session advances and *which rows share a GEMM call* (bit-identical per
// row at any batch size), never what a session computes. Seeded populations
// therefore finish bit-identical to the single-threaded SessionScheduler at
// ANY shard count, pinned by tests/test_serving.cc.
//
// Sharing rules: every session MUST be seeded (SessionConfig::seed), and
// sessions on different shards must not share mutable state. Baseline
// algorithms (UH-*, SinglePass, UtilityApprox) only read const state once
// seeded, so one instance may serve every shard; EA/AA sessions score
// through their algorithm's Q-network, whose PredictBatch uses per-network
// scratch buffers — start each shard's sessions from a per-shard
// CloneForEval() of the algorithm (identical weights ⇒ identical scores ⇒
// bit-identical results).
//
// Durability (DESIGN.md §14) is per shard: EnableDurability gives every
// shard its own SessionStore backed by "<prefix>.shard<k>" — the worker
// write-ahead-logs each inbound batch with SessionStore::SyncFile (O(new
// answers) appends) before applying it, and re-snapshots its population
// every checkpoint_every_ticks ticks. A crashed process recovers every
// shard independently via Recover(); shards that stall or lose their file
// surface a Status, they do not take the population down.
#ifndef ISRL_SERVE_SHARDING_H_
#define ISRL_SERVE_SHARDING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/algorithm.h"
#include "core/scheduler.h"
#include "user/user.h"

namespace isrl::nn {
class ModelRegistry;
}  // namespace isrl::nn

namespace isrl {

struct ShardedOptions {
  /// Number of scheduler shards == worker threads. Sessions are routed by
  /// id % shards.
  size_t shards = 1;
  /// When durability is enabled: per-shard population re-snapshot cadence
  /// in ticks (0 = snapshot only at EnableDurability time). Matches
  /// DriveWithUsersDurable's checkpoint_every_ticks semantics.
  size_t checkpoint_every_ticks = 0;
};

/// Per-shard resolver for Recover: maps (shard, algorithm name) to the live
/// instance that reopens that shard's sessions. Handing each shard its own
/// CloneForEval() instance keeps RL scoring scratch unshared across worker
/// threads; returning nullptr degrades the slot (DESIGN.md §14).
using ShardAlgorithmResolver =
    std::function<InteractiveAlgorithm*(size_t shard, const std::string& name)>;

/// Per-shard model provider for Recover: maps a shard to the ModelProvider
/// its sessions re-pin registry versions through (SessionConfig::models).
/// Hand each shard its own ModelReplicaCache over the shared registry so
/// snapshot inference scratch stays unshared across worker threads
/// (DESIGN.md §18); nullptr (or a null result) restores without a provider.
using ShardModelProvider = std::function<nn::ModelProvider*(size_t shard)>;

/// N SessionScheduler shards pinned to worker threads behind a thread-safe
/// serving boundary. Lifecycle:
///
///   ShardedScheduler sharded(ShardedOptions{8});
///   for (...) sharded.Add(clone[i % 8]->StartSession(seeded_config), ...);
///   sharded.EnableDurability("/var/lib/isrl/pop");       // optional
///   sharded.Start([&](id, q) { /* deliver q to user id */ });
///   ... sharded.TryPostAnswer(id, answer) from any thread ...
///   sharded.WaitUntilDrained();
///   sharded.Stop();
///   ... sharded.TryTake(id) ...
///
/// Add/EnableDurability/Start/Stop are main-thread lifecycle calls;
/// TryPostAnswer/TryCancel are safe from any thread while serving.
class ShardedScheduler {
 public:
  using SessionId = size_t;
  /// Question delivery callback; invoked on the owning shard's worker
  /// thread, exactly once per question (re-emitted in-flight questions are
  /// deduplicated). It may call TryPostAnswer/TryCancel, including for the
  /// session it was invoked for.
  using QuestionSink = std::function<void(SessionId, const SessionQuestion&)>;

  explicit ShardedScheduler(ShardedOptions options);
  ~ShardedScheduler();
  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  /// Adopts a session (routed to shard id % shards). Sessions MUST be
  /// seeded; the overload with `algorithm` is required for durable
  /// populations (mirrors SessionScheduler::Add).
  SessionId Add(std::unique_ptr<InteractionSession> session);
  SessionId Add(std::unique_ptr<InteractionSession> session,
                InteractiveAlgorithm* algorithm);

  /// Arms per-shard durability: each shard snapshots its population into
  /// its own SessionStore and writes "<prefix>.shard<k>" (atomic write +
  /// fsync). Call after Add()s and before Start(). Serving then
  /// write-ahead-logs every answer to the shard's file before applying it.
  /// When `registry` is given, the manifest also records its latest
  /// version + fingerprint, so Recover can refuse a provider that no longer
  /// serves the models this population's sessions are pinned to (§18).
  Status EnableDurability(const std::string& path_prefix,
                          const nn::ModelRegistry* registry = nullptr);

  /// The per-shard store file path: "<prefix>.shard<k>".
  static std::string ShardPath(const std::string& prefix, size_t shard);

  /// The manifest path: "<prefix>.manifest". EnableDurability records the
  /// shard count and population size there; Recover refuses shard files
  /// reopened under a different layout (which could otherwise alias a
  /// smaller consistent-looking population).
  static std::string ManifestPath(const std::string& prefix);

  /// Rebuilds a sharded population from the per-shard store files written
  /// by a durable serving run: every shard recovers independently
  /// (snapshot + WAL replay, RecoverScheduler semantics). The recovered
  /// engine is not yet durable — call EnableDurability (typically with the
  /// same prefix) to begin a fresh epoch, then Start().
  static Result<std::unique_ptr<ShardedScheduler>> Recover(
      const ShardedOptions& options, const std::string& path_prefix,
      const ShardAlgorithmResolver& resolver,
      const ShardModelProvider& models = nullptr);

  /// Installs a trace-harvest sink invoked with GLOBAL session ids as
  /// sessions finish (DESIGN.md §18). Main-thread lifecycle call (before
  /// Start, after Add/Recover). The sink runs on shard worker threads under
  /// the shard's exec capability: it must be thread-safe (e.g. a TraceStore)
  /// and must not call back into this engine.
  void SetHarvestSink(HarvestSink sink);

  /// Spawns one worker per shard and begins serving: workers drain their
  /// inbound queues, apply answers, tick their scheduler, and deliver new
  /// questions through `sink`.
  void Start(QuestionSink sink);

  /// Blocks until every session has finished (returns Ok), a shard halts on
  /// a durability error (returns it), or Stop() is called from another
  /// thread (returns Ok with sessions possibly still active).
  Status WaitUntilDrained();

  /// Stops serving: workers drain already-queued answers, then exit and are
  /// joined. Idempotent. Unfinished sessions keep their state and can be
  /// checkpointed or resumed by a new Start().
  void Stop();

  // ---- Thread-safe serving boundary. -------------------------------------

  /// Queues a user's answer to the owning shard. NotFound for an unknown
  /// id; FailedPrecondition when the engine is not serving, the session has
  /// no outstanding question, an answer is already queued, the session
  /// already finished, or the shard has halted. Never crashes on client
  /// misuse.
  Status TryPostAnswer(SessionId id, Answer answer);

  /// Queues a cancellation. NotFound for an unknown id; cancelling an
  /// already-finished session is an idempotent Ok no-op.
  Status TryCancel(SessionId id);

  /// The finished session's result (invalidates the slot). Safe while
  /// serving; FailedPrecondition until the session has finished.
  Result<InteractionResult> TryTake(SessionId id);

  size_t shards() const { return shards_.size(); }
  size_t size() const { return size_; }
  /// Sessions not yet finished (approximate while workers are mid-tick).
  size_t active() const { return active_.load(std::memory_order_relaxed); }
  /// First durability/internal error across shards (Ok when healthy).
  Status error() const;

 private:
  /// Boundary-visible slot state, updated at tick boundaries. The
  /// SessionScheduler's own state is worker-owned; this mirror is what the
  /// mutex-sharded boundary validates against without touching it.
  enum class Mirror : uint8_t {
    kRunnable,       ///< between answer application and the next tick
    kAwaiting,       ///< question out, no answer queued yet
    kAnswerQueued,   ///< answer in the inbox, not yet applied
    kCancelQueued,   ///< cancellation in the inbox
    kFinished,       ///< terminated; result available
    kTaken,          ///< result handed out
  };

  struct Inbound {
    size_t local_id = 0;
    uint8_t kind = WalRecord::kAnswer;
    Answer answer = Answer::kFirst;
  };

  /// Per-shard state, split across two capabilities (DESIGN.md §16).
  /// Lock hierarchy: `exec_mu` is acquired BEFORE `mu` wherever both are
  /// held (TryTake, and Halt called from under the worker's exec section);
  /// enforced by ISRL_ACQUIRED_BEFORE under -Wthread-safety-beta.
  struct Shard {
    /// Serializes scheduler execution: the worker's WAL+apply+tick section
    /// vs. TryTake on finished slots (the only cross-thread scheduler
    /// access), plus the stopped-worker lifecycle calls (Add,
    /// EnableDurability, Recover, Start), which take it uncontended.
    Mutex exec_mu ISRL_ACQUIRED_BEFORE(mu);
    SessionScheduler scheduler ISRL_GUARDED_BY(exec_mu);
    SessionStore store ISRL_GUARDED_BY(exec_mu);
    std::string store_path ISRL_GUARDED_BY(exec_mu);
    bool durable ISRL_GUARDED_BY(exec_mu) = false;
    /// scheduler.active() after the previous tick, for drain accounting.
    size_t last_active ISRL_GUARDED_BY(exec_mu) = 0;
    /// Ticks since the current durability epoch began.
    size_t ticks ISRL_GUARDED_BY(exec_mu) = 0;

    /// Guards the boundary-facing state below; never held across scheduler
    /// execution or sink delivery.
    Mutex mu;
    CondVar cv;  ///< signalled on inbox push and on Stop()
    std::vector<Inbound> inbox ISRL_GUARDED_BY(mu);
    std::vector<Mirror> mirror ISRL_GUARDED_BY(mu);
    /// Current question already handed to the sink (dedupe flag).
    std::vector<uint8_t> delivered ISRL_GUARDED_BY(mu);
    Status error ISRL_GUARDED_BY(mu);
    bool halted ISRL_GUARDED_BY(mu) = false;

    /// Spawned by Start(), joined by Stop(); no capability — the thread
    /// object itself is only touched by main-thread lifecycle calls.
    std::thread worker;
  };

  Shard& ShardOf(SessionId id) { return *shards_[id % shards_.size()]; }
  size_t LocalOf(SessionId id) const { return id / shards_.size(); }
  SessionId GlobalOf(size_t shard, size_t local) const {
    return local * shards_.size() + shard;
  }

  void WorkerLoop(size_t shard_index);
  /// Marks the shard failed and wakes every waiter. Callable with exec_mu
  /// held (the worker's failure paths) but never with mu held — it takes mu
  /// itself, consistent with the exec_mu → mu hierarchy.
  void Halt(Shard& shard, Status cause) ISRL_EXCLUDES(shard.mu);
  void NotifyDrained() ISRL_EXCLUDES(drain_mu_);
  /// Rebuilds a shard's boundary mirror from its scheduler's state (used at
  /// Start and Recover; the shard's worker must be stopped, and the caller
  /// holds both of the shard's capabilities).
  static void SyncMirror(Shard& shard)
      ISRL_REQUIRES(shard.exec_mu, shard.mu);

  ShardedOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t size_ = 0;  ///< written only while no worker runs (Add/Recover)
  std::atomic<size_t> active_{0};
  std::atomic<bool> stop_{true};
  std::atomic<bool> running_{false};
  std::atomic<bool> any_halted_{false};
  QuestionSink sink_;  ///< set by Start() before any worker is spawned
  /// Pure wakeup channel for WaitUntilDrained: the predicate reads only the
  /// atomics above, so the mutex guards no fields — it exists to make the
  /// notify/wait handoff race-free.
  Mutex drain_mu_;
  CondVar drain_cv_;
};

/// Convenience driver mirroring DriveWithUsers: serves every session
/// against its oracle `users[id]` on the shard workers until the population
/// drains, then collects results in session-id order. For seeded sessions
/// the results are bit-identical to DriveWithUsers on one SessionScheduler
/// (and to N sequential Interact() calls).
Result<std::vector<InteractionResult>> DriveSharded(
    ShardedScheduler& sharded, const std::vector<UserOracle*>& users);

}  // namespace isrl

#endif  // ISRL_SERVE_SHARDING_H_
