#include "serve/trace_store.h"

#include <algorithm>

#include "common/check.h"

namespace isrl {

TraceStore::TraceStore(size_t capacity) : capacity_(capacity) {
  ISRL_CHECK_GT(capacity_, 0u);
}

void TraceStore::Harvest(size_t /*session_id*/,
                         const SessionTraceRecord& record) {
  {
    MutexLock lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(record);
    } else {
      ring_[next_] = record;
    }
    next_ = (next_ + 1) % capacity_;
    ++total_;
  }
  cv_.NotifyAll();
}

size_t TraceStore::harvested() const {
  MutexLock lock(mu_);
  return total_;
}

size_t TraceStore::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::vector<SessionTraceRecord> TraceStore::Window() const {
  MutexLock lock(mu_);
  std::vector<SessionTraceRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: storage order is harvest order
  } else {
    // next_ is the oldest slot once the ring has wrapped.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::vector<Vec> TraceStore::TrainingUtilities(size_t max_samples) const {
  std::vector<SessionTraceRecord> window = Window();
  std::vector<Vec> utilities;
  for (const SessionTraceRecord& record : window) {
    if (record.has_utility) utilities.push_back(record.utility);
  }
  if (utilities.size() > max_samples) {
    utilities.erase(utilities.begin(),
                    utilities.end() - static_cast<ptrdiff_t>(max_samples));
  }
  return utilities;
}

OutcomeCounts TraceStore::WindowOutcomes() const {
  MutexLock lock(mu_);
  OutcomeCounts counts;
  for (const SessionTraceRecord& record : ring_) {
    counts.Count(record.termination);
  }
  return counts;
}

Summary TraceStore::WindowRounds() const {
  std::vector<double> rounds;
  {
    MutexLock lock(mu_);
    rounds.reserve(ring_.size());
    for (const SessionTraceRecord& record : ring_) {
      rounds.push_back(static_cast<double>(record.rounds));
    }
  }
  return Summarize(rounds);
}

bool TraceStore::WaitForTotal(size_t target) const {
  MutexLock lock(mu_);
  while (total_ < target && !interrupted_) {
    cv_.Wait(mu_);
  }
  // The interrupt wins even over a satisfied target (sticky): a trainer
  // stopping between waits must not slip in one more retrain.
  return !interrupted_ && total_ >= target;
}

void TraceStore::Interrupt() {
  {
    MutexLock lock(mu_);
    interrupted_ = true;
  }
  cv_.NotifyAll();
}

void TraceStore::ClearInterrupt() {
  MutexLock lock(mu_);
  interrupted_ = false;
}

}  // namespace isrl
