#include "serve/drift.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace isrl {

DriftBaseline DriftBaseline::FromPopulation(const std::vector<double>& rounds,
                                            const OutcomeCounts& outcomes) {
  const Summary summary = Summarize(rounds);
  DriftBaseline baseline;
  baseline.mean_rounds = summary.mean;
  baseline.stddev_rounds = summary.stddev;
  baseline.episodes = summary.count;
  baseline.failure_fraction =
      summary.count == 0 ? 0.0
                         : static_cast<double>(outcomes.Failures()) /
                               static_cast<double>(summary.count);
  return baseline;
}

DriftReport DetectDrift(const DriftBaseline& baseline,
                        const std::vector<SessionTraceRecord>& live,
                        const DriftOptions& options) {
  DriftReport report;
  report.baseline_mean_rounds = baseline.mean_rounds;
  report.baseline_failure_fraction = baseline.failure_fraction;
  report.live_episodes = live.size();

  std::vector<double> rounds;
  rounds.reserve(live.size());
  OutcomeCounts outcomes;
  for (const SessionTraceRecord& record : live) {
    rounds.push_back(static_cast<double>(record.rounds));
    outcomes.Count(record.termination);
  }
  const Summary summary = Summarize(rounds);
  report.live_mean_rounds = summary.mean;
  report.live_failure_fraction =
      live.empty() ? 0.0
                   : static_cast<double>(outcomes.Failures()) /
                         static_cast<double>(live.size());

  if (live.size() < options.min_live_episodes || baseline.episodes == 0) {
    return report;  // too little evidence; never flag
  }

  // Two-sample z on mean rounds. The denominator floor keeps a degenerate
  // (zero-variance) pair from dividing by zero: any mean shift then
  // produces a huge |z|, which is the right answer for identical-rounds
  // populations that suddenly change.
  const double var_b = baseline.stddev_rounds * baseline.stddev_rounds;
  const double var_l = summary.stddev * summary.stddev;
  const double denom = std::max(
      std::sqrt(var_b / static_cast<double>(baseline.episodes) +
                var_l / static_cast<double>(live.size())),
      1e-9);
  report.rounds_z = (summary.mean - baseline.mean_rounds) / denom;

  if (std::abs(report.rounds_z) > options.z_threshold) {
    report.drifted = true;
    report.reason = Format(
        "mean rounds shifted %.2f -> %.2f (z = %.2f, threshold %.2f)",
        baseline.mean_rounds, summary.mean, report.rounds_z,
        options.z_threshold);
    return report;
  }
  if (report.live_failure_fraction >
      baseline.failure_fraction + options.failure_delta) {
    report.drifted = true;
    report.reason = Format(
        "failure fraction rose %.2f -> %.2f (allowed delta %.2f)",
        baseline.failure_fraction, report.live_failure_fraction,
        options.failure_delta);
  }
  return report;
}

}  // namespace isrl
