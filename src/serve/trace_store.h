// Trace harvesting for the continuous-learning loop (DESIGN.md §18).
//
// A TraceStore is the thread-safe drop point between serving and training:
// shard workers push one SessionTraceRecord per finished session (wired as
// the scheduler's HarvestSink), and the background trainer blocks on
// WaitForTotal until enough fresh traces justify a retrain. The store keeps
// a bounded ring of the most recent records — the "live population" that
// drift detection (serve/drift.h) compares against the training baseline,
// and the source of the learned-utility replay samples that trace-driven
// retraining trains on.
#ifndef ISRL_SERVE_TRACE_STORE_H_
#define ISRL_SERVE_TRACE_STORE_H_

#include <cstddef>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/vec.h"
#include "core/metrics.h"

namespace isrl {

/// Bounded, thread-safe ring of the most recent session trace records.
/// Safe to call from any number of shard workers and one trainer thread
/// concurrently; every method takes the internal mutex.
class TraceStore {
 public:
  /// `capacity` bounds the retained window (older records are overwritten).
  explicit TraceStore(size_t capacity = 4096);

  /// Appends one finished session's record. The id parameter matches the
  /// HarvestSink signature so a store can be installed directly:
  ///   scheduler.SetHarvestSink([&](size_t id, const SessionTraceRecord& r) {
  ///     store.Harvest(id, r); });
  void Harvest(size_t session_id, const SessionTraceRecord& record);

  /// Records ever harvested (monotone; not capped by the window).
  size_t harvested() const;

  /// Records currently retained (<= capacity).
  size_t size() const;

  /// The retained window in harvest order (oldest first).
  std::vector<SessionTraceRecord> Window() const;

  /// The learned utility estimates of the newest `max_samples` records that
  /// carry one, oldest-first — the replay set trace-driven retraining
  /// feeds to Train() (DESIGN.md §18).
  std::vector<Vec> TrainingUtilities(size_t max_samples) const;

  /// Terminal-outcome tallies over the retained window.
  OutcomeCounts WindowOutcomes() const;

  /// Round-count summary over the retained window.
  Summary WindowRounds() const;

  /// Blocks until harvested() >= target (true) or Interrupt() fires
  /// (false). The trainer's pacing primitive.
  bool WaitForTotal(size_t target) const;

  /// Wakes every WaitForTotal and makes current and future waits return
  /// false until ClearInterrupt() — sticky, so a trainer that is between
  /// waits still stops. Called by ContinuousTrainer::Stop.
  void Interrupt();
  /// Re-arms waiting after an Interrupt (ContinuousTrainer::Start).
  void ClearInterrupt();

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  mutable CondVar cv_;  ///< signalled on Harvest and Interrupt
  std::vector<SessionTraceRecord> ring_ ISRL_GUARDED_BY(mu_);
  size_t next_ ISRL_GUARDED_BY(mu_) = 0;   ///< ring write cursor
  size_t total_ ISRL_GUARDED_BY(mu_) = 0;  ///< records ever harvested
  bool interrupted_ ISRL_GUARDED_BY(mu_) = false;
};

}  // namespace isrl

#endif  // ISRL_SERVE_TRACE_STORE_H_
