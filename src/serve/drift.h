// Drift detection for the continuous-learning loop (DESIGN.md §18).
//
// A retrained model is only as good as the population it was trained on:
// when the live user population shifts (harder utilities, noisier answers),
// the live round-count and failure distributions drift away from the
// training baseline, and the serving side should notice BEFORE regression
// metrics do. DetectDrift compares the harvested live traces (TraceStore
// window) against a DriftBaseline captured from the training population,
// using a two-sample z-test on mean rounds plus an absolute
// failure-fraction delta. Deterministic: same inputs, same report.
#ifndef ISRL_SERVE_DRIFT_H_
#define ISRL_SERVE_DRIFT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/metrics.h"

namespace isrl {

/// The training population's round-count and failure statistics — the
/// reference the live population is compared against.
struct DriftBaseline {
  double mean_rounds = 0.0;
  double stddev_rounds = 0.0;
  size_t episodes = 0;
  double failure_fraction = 0.0;  ///< non-converged episodes / episodes

  /// Distils a baseline from per-episode round counts and outcome tallies
  /// (e.g. the training eval's numbers, or a TraceStore window captured
  /// right after a retrain).
  static DriftBaseline FromPopulation(const std::vector<double>& rounds,
                                      const OutcomeCounts& outcomes);
};

struct DriftOptions {
  /// |z| of the live mean-rounds shift that flags drift.
  double z_threshold = 3.0;
  /// Live failure fraction exceeding the baseline's by this much flags
  /// drift regardless of the z-test.
  double failure_delta = 0.25;
  /// Below this many live episodes the detector never flags (too little
  /// evidence — early serving would otherwise trip on noise).
  size_t min_live_episodes = 16;
};

struct DriftReport {
  bool drifted = false;
  /// Two-sample z statistic of the live vs. baseline mean rounds (positive:
  /// live episodes run longer).
  double rounds_z = 0.0;
  double live_mean_rounds = 0.0;
  double baseline_mean_rounds = 0.0;
  double live_failure_fraction = 0.0;
  double baseline_failure_fraction = 0.0;
  size_t live_episodes = 0;
  /// Human-readable cause when drifted (empty otherwise).
  std::string reason;
};

/// Compares the live trace records against the baseline. Never flags with
/// fewer than options.min_live_episodes live records.
DriftReport DetectDrift(const DriftBaseline& baseline,
                        const std::vector<SessionTraceRecord>& live,
                        const DriftOptions& options = DriftOptions{});

}  // namespace isrl

#endif  // ISRL_SERVE_DRIFT_H_
