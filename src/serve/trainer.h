// Background trace-driven retraining (DESIGN.md §18): the train side of
// the train→serve loop.
//
// A ContinuousTrainer owns the only thread allowed to touch the training
// algorithm while serving runs. It paces itself on the TraceStore —
// blocking until `min_new_traces` fresh sessions have been harvested since
// the last retrain — then trains on the harvested utility estimates and
// Publish()es the new weights into the shared ModelRegistry. The publish is
// the ONLY cross-thread handoff: serving threads score exclusively through
// pinned registry snapshots, so they never observe weights mid-update, and
// in-flight sessions (pinned at StartSession) are untouched by the swap.
#ifndef ISRL_SERVE_TRAINER_H_
#define ISRL_SERVE_TRAINER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/vec.h"
#include "core/ea.h"
#include "nn/registry.h"
#include "serve/trace_store.h"

namespace isrl {

/// The two capabilities a trainer borrows from its training algorithm.
/// Both run on the trainer thread; while a trainer is Start()ed, no other
/// thread may train, mutate, or serve directly from that algorithm's
/// network — serving holds registry snapshots instead (DESIGN.md §18).
struct RetrainHooks {
  /// One incremental training pass over the harvested utility estimates
  /// (e.g. [&ea](const std::vector<Vec>& u) { return ea.Train(u); }).
  std::function<TrainStats(const std::vector<Vec>&)> train;
  /// The freshly trained weights to publish (e.g. the algorithm's main
  /// Q-network).
  std::function<const nn::Network&()> network;
};

struct TrainerOptions {
  /// Fresh harvested traces required between retrains (Loop pacing).
  size_t min_new_traces = 64;
  /// Cap on utility samples per retrain (the newest ones win).
  size_t max_utilities = 256;
};

/// What one successful retrain produced.
struct RetrainOutcome {
  uint64_t version = 0;  ///< the registry version the new weights got
  TrainStats stats;
  size_t samples = 0;  ///< utility estimates trained on
};

/// Retrains on harvested traces and hot-swaps the result into a registry,
/// either synchronously (RetrainOnce — deterministic, for tests and staged
/// drives) or on a background thread (Start/Stop).
class ContinuousTrainer {
 public:
  /// All three referents must outlive the trainer.
  ContinuousTrainer(TraceStore& traces, nn::ModelRegistry& registry,
                    RetrainHooks hooks, TrainerOptions options = {});
  ~ContinuousTrainer();
  ContinuousTrainer(const ContinuousTrainer&) = delete;
  ContinuousTrainer& operator=(const ContinuousTrainer&) = delete;

  /// One synchronous retrain: trains on the newest harvested utilities
  /// (<= max_utilities), publishes the result, and marks the store's
  /// current total as consumed. FailedPrecondition when no harvested
  /// record carries a utility estimate (nothing to train on).
  Result<RetrainOutcome> RetrainOnce();

  /// Spawns the trainer thread: wait for min_new_traces fresh harvests,
  /// RetrainOnce, repeat. The caller must not touch the hooks' algorithm
  /// until Stop().
  void Start();

  /// Interrupts the wait, joins the thread. Idempotent; also run by the
  /// destructor.
  void Stop();

  /// Successful retrains so far.
  size_t retrains() const;

 private:
  void Loop();

  TraceStore& traces_;
  nn::ModelRegistry& registry_;
  RetrainHooks hooks_;
  TrainerOptions options_;

  mutable Mutex mu_;
  /// harvested() watermark at the last retrain attempt; Loop waits for
  /// consumed_ + min_new_traces. Advanced even on a failed attempt so an
  /// empty-utility window cannot busy-spin the thread.
  size_t consumed_ ISRL_GUARDED_BY(mu_) = 0;
  size_t retrains_ ISRL_GUARDED_BY(mu_) = 0;

  std::atomic<bool> stop_{false};
  /// Spawned by Start(), joined by Stop(); touched only by the lifecycle
  /// calls (main thread).
  std::thread worker_;
};

}  // namespace isrl

#endif  // ISRL_SERVE_TRAINER_H_
