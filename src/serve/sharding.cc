#include "serve/sharding.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/strings.h"
#include "core/snapshot.h"
#include "nn/registry.h"

namespace isrl {

namespace {

constexpr char kManifestKind[] = "shard-manifest";
// v2 appended the registry's latest version + fingerprint so recovery can
// refuse a model provider that no longer serves this population's models.
constexpr uint32_t kManifestVersion = 2;

// A batch entry whose mirror said it was deliverable must be applicable to
// the shard's scheduler — a rejection means the mirror and the scheduler
// disagreed, which is an engine bug, not client misuse.
Status MirrorDesync(size_t shard, size_t local, const Status& cause) {
  return Status::Internal(
      Format("shard %zu: mirror accepted a record for local session %zu that "
             "its scheduler rejects — %s",
             shard, local, cause.message().c_str()));
}

}  // namespace

ShardedScheduler::ShardedScheduler(ShardedOptions options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedScheduler::~ShardedScheduler() { Stop(); }

ShardedScheduler::SessionId ShardedScheduler::Add(
    std::unique_ptr<InteractionSession> session) {
  return Add(std::move(session), nullptr);
}

ShardedScheduler::SessionId ShardedScheduler::Add(
    std::unique_ptr<InteractionSession> session,
    InteractiveAlgorithm* algorithm) {
  ISRL_CHECK(!running_.load(std::memory_order_acquire));
  const SessionId id = size_++;
  Shard& shard = ShardOf(id);
  // No worker is running, but the capability contract is uniform: the
  // scheduler lives under exec_mu, the mirror under mu (uncontended here).
  MutexLock exec(shard.exec_mu);
  MutexLock lock(shard.mu);
  const size_t local = algorithm == nullptr
                           ? shard.scheduler.Add(std::move(session))
                           : shard.scheduler.Add(std::move(session), algorithm);
  ISRL_CHECK_EQ(local, LocalOf(id));
  shard.mirror.push_back(Mirror::kRunnable);
  shard.delivered.push_back(0);
  active_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string ShardedScheduler::ShardPath(const std::string& prefix,
                                        size_t shard) {
  return Format("%s.shard%zu", prefix.c_str(), shard);
}

std::string ShardedScheduler::ManifestPath(const std::string& prefix) {
  return prefix + ".manifest";
}

Status ShardedScheduler::EnableDurability(const std::string& path_prefix,
                                          const nn::ModelRegistry* registry) {
  ISRL_CHECK(!running_.load(std::memory_order_acquire));
  for (size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    MutexLock exec(shard.exec_mu);
    ISRL_ASSIGN_OR_RETURN(std::string snapshot, shard.scheduler.CheckpointAll());
    shard.store.BeginEpoch(std::move(snapshot));
    shard.store_path = ShardPath(path_prefix, k);
    ISRL_RETURN_IF_ERROR(shard.store.SyncFile(shard.store_path));
    shard.durable = true;
    shard.ticks = 0;
  }
  snapshot::Writer w;
  w.U64(shards_.size());
  w.U64(size_);
  std::shared_ptr<const nn::ModelSnapshot> latest =
      registry != nullptr ? registry->Latest() : nullptr;
  w.U8(latest != nullptr ? 1 : 0);
  if (latest != nullptr) {
    w.U64(latest->version());
    w.U64(latest->fingerprint());
  }
  return snapshot::WriteFileBytes(
      ManifestPath(path_prefix),
      snapshot::WrapFrame(kManifestKind, kManifestVersion, w.bytes()));
}

Result<std::unique_ptr<ShardedScheduler>> ShardedScheduler::Recover(
    const ShardedOptions& options, const std::string& path_prefix,
    const ShardAlgorithmResolver& resolver, const ShardModelProvider& models) {
  auto engine = std::make_unique<ShardedScheduler>(options);
  const size_t num_shards = engine->shards();

  ISRL_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        snapshot::ReadFileBytes(ManifestPath(path_prefix)));
  // Manual frame parse instead of UnwrapFrame: v1 manifests (no registry
  // record) stay readable.
  size_t manifest_pos = 0;
  std::string manifest_kind;
  uint32_t manifest_version = 0;
  std::string manifest_payload;
  ISRL_RETURN_IF_ERROR(snapshot::ReadFrameAt(manifest_bytes, &manifest_pos,
                                             &manifest_kind, &manifest_version,
                                             &manifest_payload));
  if (manifest_kind != kManifestKind) {
    return Status::InvalidArgument(
        Format("shard manifest: frame is a '%s', expected '%s'",
               manifest_kind.c_str(), kManifestKind));
  }
  if (manifest_version == 0 || manifest_version > kManifestVersion) {
    return Status::InvalidArgument(
        Format("shard manifest: version skew (%u, this build reads <= %u)",
               manifest_version, kManifestVersion));
  }
  if (manifest_pos != manifest_bytes.size()) {
    return Status::InvalidArgument(
        "shard manifest: trailing bytes after frame");
  }
  snapshot::Reader manifest(manifest_payload);
  const size_t saved_shards = manifest.U64();
  const size_t saved_sessions = manifest.U64();
  bool has_registry = false;
  uint64_t latest_version = 0;
  uint64_t latest_fingerprint = 0;
  if (manifest_version >= 2) {
    has_registry = manifest.U8() != 0;
    if (has_registry) {
      latest_version = manifest.U64();
      latest_fingerprint = manifest.U64();
    }
  }
  ISRL_RETURN_IF_ERROR(manifest.status());
  if (!manifest.AtEnd()) {
    return Status::InvalidArgument("shard manifest: trailing payload bytes");
  }
  if (saved_shards != num_shards) {
    return Status::InvalidArgument(Format(
        "recover: the manifest records a %zu-shard population but %zu "
        "shards were requested — id routing would not match the files",
        saved_shards, num_shards));
  }

  size_t total = 0;
  for (size_t k = 0; k < num_shards; ++k) {
    ISRL_ASSIGN_OR_RETURN(SessionStore store,
                          SessionStore::LoadFile(ShardPath(path_prefix, k)));
    AlgorithmResolver local_resolver =
        [&resolver, k](const std::string& name) -> InteractiveAlgorithm* {
      return resolver ? resolver(k, name) : nullptr;
    };
    nn::ModelProvider* provider = models ? models(k) : nullptr;
    if (has_registry && provider != nullptr) {
      // The manifest pins the registry's head at checkpoint time; a provider
      // that cannot serve it (or serves different weights under the same
      // number) would make every per-session fingerprint check fail one by
      // one — refuse up front with the real cause instead.
      std::shared_ptr<const nn::ModelSnapshot> pinned =
          provider->Pin(latest_version);
      if (pinned == nullptr) {
        return Status::FailedPrecondition(Format(
            "recover: shard %zu's model provider does not serve registry "
            "version %llu recorded in the manifest",
            k, static_cast<unsigned long long>(latest_version)));
      }
      if (pinned->fingerprint() != latest_fingerprint) {
        return Status::FailedPrecondition(Format(
            "recover: shard %zu's model version %llu hashes to %016llx but "
            "the manifest records %016llx (different registry?)",
            k, static_cast<unsigned long long>(latest_version),
            static_cast<unsigned long long>(pinned->fingerprint()),
            static_cast<unsigned long long>(latest_fingerprint)));
      }
    }
    ISRL_ASSIGN_OR_RETURN(SessionScheduler scheduler,
                          RecoverScheduler(store, local_resolver, provider));
    Shard& shard = *engine->shards_[k];
    MutexLock exec(shard.exec_mu);
    shard.scheduler = std::move(scheduler);
    total += shard.scheduler.size();
  }
  if (total != saved_sessions) {
    return Status::InvalidArgument(Format(
        "recover: shard files hold %zu sessions but the manifest records "
        "%zu — the files do not belong to one run",
        total, saved_sessions));
  }
  // Round-robin routing puts n/S (+1 for the first n%S shards) sessions on
  // shard k; a mismatch means the files come from runs with different
  // populations or shard counts.
  for (size_t k = 0; k < num_shards; ++k) {
    Shard& shard = *engine->shards_[k];
    MutexLock exec(shard.exec_mu);
    const size_t expect = total / num_shards + (k < total % num_shards ? 1 : 0);
    if (shard.scheduler.size() != expect) {
      return Status::InvalidArgument(Format(
          "recover: shard %zu holds %zu sessions but a %zu-session "
          "%zu-shard population puts %zu there — the shard files do not "
          "belong to one run",
          k, shard.scheduler.size(), total, num_shards, expect));
    }
  }
  engine->size_ = total;
  size_t active = 0;
  for (size_t k = 0; k < num_shards; ++k) {
    Shard& shard = *engine->shards_[k];
    MutexLock exec(shard.exec_mu);
    MutexLock lock(shard.mu);
    SyncMirror(shard);
    active += shard.scheduler.active();
  }
  engine->active_.store(active, std::memory_order_relaxed);
  return engine;
}

void ShardedScheduler::SetHarvestSink(HarvestSink sink) {
  ISRL_CHECK(!running_.load(std::memory_order_acquire));
  for (size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    MutexLock exec(shard.exec_mu);
    if (!sink) {
      shard.scheduler.SetHarvestSink(nullptr);
      continue;
    }
    // Rebase the shard's local ids onto the global id space before handing
    // records to the caller's sink.
    shard.scheduler.SetHarvestSink(
        [this, k, sink](size_t local, const SessionTraceRecord& record) {
          sink(GlobalOf(k, local), record);
        });
  }
}

void ShardedScheduler::SyncMirror(Shard& shard) {
  const size_t n = shard.scheduler.size();
  shard.mirror.assign(n, Mirror::kRunnable);
  shard.delivered.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (shard.scheduler.taken(i)) {
      shard.mirror[i] = Mirror::kTaken;
    } else if (shard.scheduler.finished(i)) {
      shard.mirror[i] = Mirror::kFinished;
    } else if (shard.scheduler.awaiting(i)) {
      // The in-flight question re-emits on the first tick (at-least-once
      // delivery); delivered stays 0 so the sink sees it again.
      shard.mirror[i] = Mirror::kAwaiting;
    }
  }
}

void ShardedScheduler::Start(QuestionSink sink) {
  ISRL_CHECK(!running_.load(std::memory_order_acquire));
  sink_ = std::move(sink);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    {
      // Re-deliver questions that were in flight when the previous Start()
      // stopped (or when the population was recovered): at-least-once, the
      // same contract as crash recovery.
      MutexLock lock(shard.mu);
      std::fill(shard.delivered.begin(), shard.delivered.end(),
                static_cast<uint8_t>(0));
    }
    {
      MutexLock exec(shard.exec_mu);
      shard.last_active = shard.scheduler.active();
    }
    shard.worker = std::thread(&ShardedScheduler::WorkerLoop, this, k);
  }
}

void ShardedScheduler::Stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->cv.NotifyAll();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  running_.store(false, std::memory_order_release);
  NotifyDrained();
}

Status ShardedScheduler::WaitUntilDrained() {
  {
    MutexLock lock(drain_mu_);
    while (active_.load(std::memory_order_acquire) != 0 &&
           !any_halted_.load(std::memory_order_acquire) &&
           !stop_.load(std::memory_order_acquire)) {
      drain_cv_.Wait(drain_mu_);
    }
  }
  return error();
}

void ShardedScheduler::NotifyDrained() {
  {
    MutexLock lock(drain_mu_);
  }
  drain_cv_.NotifyAll();
}

void ShardedScheduler::Halt(Shard& shard, Status cause) {
  {
    MutexLock lock(shard.mu);
    if (!shard.halted) {
      shard.halted = true;
      shard.error = std::move(cause);
    }
    shard.inbox.clear();
  }
  any_halted_.store(true, std::memory_order_release);
  NotifyDrained();
}

Status ShardedScheduler::error() const {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    if (!shard->error.ok()) return shard->error;
  }
  return Status::Ok();
}

Status ShardedScheduler::TryPostAnswer(SessionId id, Answer answer) {
  if (id >= size_) {
    return Status::NotFound(
        Format("no session %zu (population of %zu)", id, size_));
  }
  Shard& shard = ShardOf(id);
  const size_t local = LocalOf(id);
  {
    MutexLock lock(shard.mu);
    if (shard.halted) {
      return Status::FailedPrecondition(
          Format("session %zu's shard has halted: %s", id,
                 shard.error.message().c_str()));
    }
    switch (shard.mirror[local]) {
      case Mirror::kAwaiting:
        break;
      case Mirror::kRunnable:
        return Status::FailedPrecondition(
            Format("session %zu has no outstanding question", id));
      case Mirror::kAnswerQueued:
        return Status::FailedPrecondition(
            Format("session %zu already has an answer queued", id));
      case Mirror::kCancelQueued:
        return Status::FailedPrecondition(
            Format("session %zu has a cancellation queued", id));
      case Mirror::kFinished:
        return Status::FailedPrecondition(
            Format("session %zu has already finished", id));
      case Mirror::kTaken:
        return Status::FailedPrecondition(
            Format("session %zu's result was already taken", id));
    }
    if (!running_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition(
          "the engine is not serving (call Start() first)");
    }
    shard.mirror[local] = Mirror::kAnswerQueued;
    shard.inbox.push_back(Inbound{local, WalRecord::kAnswer, answer});
    shard.cv.NotifyOne();
  }
  return Status::Ok();
}

Status ShardedScheduler::TryCancel(SessionId id) {
  if (id >= size_) {
    return Status::NotFound(
        Format("no session %zu (population of %zu)", id, size_));
  }
  Shard& shard = ShardOf(id);
  const size_t local = LocalOf(id);
  {
    MutexLock lock(shard.mu);
    if (shard.halted) {
      return Status::FailedPrecondition(
          Format("session %zu's shard has halted: %s", id,
                 shard.error.message().c_str()));
    }
    switch (shard.mirror[local]) {
      case Mirror::kFinished:
      case Mirror::kTaken:
      case Mirror::kCancelQueued:
        return Status::Ok();  // idempotent no-op, matching Cancel()
      case Mirror::kRunnable:
      case Mirror::kAwaiting:
      case Mirror::kAnswerQueued:
        break;
    }
    if (!running_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition(
          "the engine is not serving (call Start() first)");
    }
    shard.mirror[local] = Mirror::kCancelQueued;
    shard.inbox.push_back(Inbound{local, WalRecord::kCancel, Answer::kFirst});
    shard.cv.NotifyOne();
  }
  return Status::Ok();
}

Result<InteractionResult> ShardedScheduler::TryTake(SessionId id) {
  if (id >= size_) {
    return Status::NotFound(
        Format("no session %zu (population of %zu)", id, size_));
  }
  Shard& shard = ShardOf(id);
  const size_t local = LocalOf(id);
  // Taking needs the scheduler itself, which the worker owns while serving:
  // exec_mu fences the worker's apply+tick, mu fences the mirror. Acquired
  // in hierarchy order (exec_mu before mu, DESIGN.md §16).
  MutexLock exec(shard.exec_mu);
  MutexLock lock(shard.mu);
  switch (shard.mirror[local]) {
    case Mirror::kFinished:
      break;
    case Mirror::kTaken:
      return Status::FailedPrecondition(
          Format("session %zu's result was already taken", id));
    default:
      return Status::FailedPrecondition(
          Format("session %zu has not finished", id));
  }
  ISRL_ASSIGN_OR_RETURN(InteractionResult result,
                        shard.scheduler.TryTake(local));
  shard.mirror[local] = Mirror::kTaken;
  return result;
}

void ShardedScheduler::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<Inbound> batch;
  std::vector<uint8_t> finished_now;
  std::vector<std::pair<SessionId, SessionQuestion>> fresh;
  bool first = true;
  while (true) {
    batch.clear();
    {
      MutexLock lock(shard.mu);
      if (!first) {
        while (!stop_.load(std::memory_order_acquire) &&
               shard.inbox.empty()) {
          shard.cv.Wait(shard.mu);
        }
      }
      first = false;
      if (shard.halted) return;
      batch.swap(shard.inbox);
      if (batch.empty() && stop_.load(std::memory_order_acquire)) return;
    }

    std::vector<PendingQuestion> questions;
    size_t drained_delta = 0;
    {
      MutexLock exec(shard.exec_mu);
      // Write-ahead: every record in this batch reaches the shard's store
      // file before any of them is applied (DESIGN.md §14) — one fsynced
      // append per batch, not per answer.
      if (shard.durable && !batch.empty()) {
        for (const Inbound& in : batch) {
          if (in.kind == WalRecord::kAnswer) {
            shard.store.LogAnswer(in.local_id, in.answer);
          } else {
            shard.store.LogCancel(in.local_id);
          }
        }
        Status synced = shard.store.SyncFile(shard.store_path);
        if (!synced.ok()) {
          Halt(shard, std::move(synced));
          return;
        }
      }
      for (const Inbound& in : batch) {
        Status applied =
            in.kind == WalRecord::kAnswer
                ? shard.scheduler.TryPostAnswer(in.local_id, in.answer)
                : shard.scheduler.TryCancel(in.local_id);
        if (!applied.ok()) {
          Halt(shard, MirrorDesync(shard_index, in.local_id, applied));
          return;
        }
      }
      questions = shard.scheduler.Tick();
      if (shard.durable && options_.checkpoint_every_ticks > 0 &&
          ++shard.ticks >= options_.checkpoint_every_ticks) {
        shard.ticks = 0;
        Result<std::string> snapshot = shard.scheduler.CheckpointAll();
        if (!snapshot.ok()) {
          Halt(shard, snapshot.status());
          return;
        }
        shard.store.BeginEpoch(std::move(snapshot.value()));
        Status synced = shard.store.SyncFile(shard.store_path);
        if (!synced.ok()) {
          Halt(shard, std::move(synced));
          return;
        }
      }
      const size_t n = shard.scheduler.size();
      finished_now.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        finished_now[i] =
            shard.scheduler.finished(i) || shard.scheduler.taken(i);
      }
      const size_t now_active = shard.scheduler.active();
      if (now_active < shard.last_active) {
        drained_delta = shard.last_active - now_active;
        shard.last_active = now_active;
      }
    }

    fresh.clear();
    {
      MutexLock lock(shard.mu);
      // Applied records consumed their question; whatever the session does
      // next (new question, finish) is fresh.
      for (const Inbound& in : batch) shard.delivered[in.local_id] = 0;
      for (size_t i = 0; i < finished_now.size(); ++i) {
        if (finished_now[i] && shard.mirror[i] != Mirror::kTaken) {
          shard.mirror[i] = Mirror::kFinished;
        }
      }
      // Tick re-emits in-flight questions (at-least-once across recovery);
      // the delivered flag turns that into exactly-once towards the sink
      // while this process lives.
      for (const PendingQuestion& pq : questions) {
        if (shard.delivered[pq.session_id]) continue;
        shard.delivered[pq.session_id] = 1;
        shard.mirror[pq.session_id] = Mirror::kAwaiting;
        fresh.emplace_back(GlobalOf(shard_index, pq.session_id), pq.question);
      }
    }

    // Deliver outside every lock: the sink may call TryPostAnswer/TryCancel
    // for any session, including this one.
    for (const auto& [global_id, question] : fresh) {
      sink_(global_id, question);
    }

    if (drained_delta > 0 &&
        active_.fetch_sub(drained_delta, std::memory_order_acq_rel) ==
            drained_delta) {
      NotifyDrained();
    }
  }
}

Result<std::vector<InteractionResult>> DriveSharded(
    ShardedScheduler& sharded, const std::vector<UserOracle*>& users) {
  ISRL_CHECK_EQ(users.size(), sharded.size());
  sharded.Start([&](size_t id, const SessionQuestion& question) {
    const Answer answer = users[id]->Ask(question.first, question.second);
    // The only legitimate rejection here is a halted shard (surfaced below
    // via WaitUntilDrained); anything else would be a mirror bug caught by
    // the serving tests.
    (void)sharded.TryPostAnswer(id, answer);
  });
  Status drained = sharded.WaitUntilDrained();
  sharded.Stop();
  ISRL_RETURN_IF_ERROR(drained);
  std::vector<InteractionResult> results;
  results.reserve(users.size());
  for (size_t id = 0; id < users.size(); ++id) {
    ISRL_ASSIGN_OR_RETURN(InteractionResult result, sharded.TryTake(id));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace isrl
