#include "nn/network.h"

#include <algorithm>

namespace isrl::nn {

namespace {
std::unique_ptr<Layer> MakeActivation(Activation activation, size_t dim) {
  switch (activation) {
    case Activation::kSelu: return std::make_unique<Selu>(dim);
    case Activation::kRelu: return std::make_unique<Relu>(dim);
    case Activation::kTanh: return std::make_unique<Tanh>(dim);
  }
  return nullptr;
}
}  // namespace

Network Network::Mlp(const std::vector<size_t>& widths, Activation activation,
                     Rng& rng) {
  ISRL_CHECK_GE(widths.size(), 2u);
  Network net;
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    net.AddLayer(std::make_unique<Linear>(widths[i], widths[i + 1], rng));
    const bool is_last = (i + 2 == widths.size());
    if (!is_last) net.AddLayer(MakeActivation(activation, widths[i + 1]));
  }
  return net;
}

void Network::AddLayer(std::unique_ptr<Layer> layer) {
  if (!layers_.empty()) {
    ISRL_CHECK_EQ(layers_.back()->output_dim(), layer->input_dim());
  }
  layers_.push_back(std::move(layer));
}

Vec Network::Forward(const Vec& input) {
  Vec x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

void Network::Backward(const Vec& output_grad) {
  Vec g = output_grad;
  for (size_t i = layers_.size(); i-- > 0;) g = layers_[i]->Backward(g);
}

Matrix Network::BatchForward(const Matrix& inputs) {
  Matrix x = inputs;
  for (auto& layer : layers_) x = layer->BatchForward(x);
  return x;
}

void Network::BatchBackward(const Matrix& output_grads) {
  Matrix g = output_grads;
  for (size_t i = layers_.size(); i-- > 1;) g = layers_[i]->BatchBackward(g);
  // The bottom layer's input gradient has no consumer — let it skip the
  // computation (parameter gradients still accumulate identically).
  if (!layers_.empty()) layers_[0]->BatchBackwardNoInputGrad(g);
}

double Network::Predict(const Vec& input) {
  Vec out = Forward(input);
  ISRL_CHECK_EQ(out.dim(), 1u);
  return out[0];
}

double Network::Infer(const Vec& input) {
  Vec x = input;
  for (auto& layer : layers_) x = layer->Infer(x);
  ISRL_CHECK_EQ(x.dim(), 1u);
  return x[0];
}

Vec Network::PredictBatch(const Matrix& inputs) {
  // Cache blocking over sample rows: inferring a whole candidate pool in one
  // call materialises m×hidden intermediates, which fall out of L2 once the
  // pool reaches a few hundred rows and leave the GEMM waiting on memory.
  // Row blocks of a GEMM are independent and each output element's
  // k-accumulation is untouched, so chunking is bit-invisible; 256 rows
  // keeps every intermediate (~256×64 doubles, ~330 KB across the layer
  // buffers) comfortably L2-resident while amortising the per-chunk fixed
  // costs (weight-panel packing, dispatch) — measured faster than 128 and
  // equal to 512 on the update benchmark. Each layer writes into a
  // persistent buffer reused across chunks (equal-size chunks mean no
  // reallocation), and the first layer reads its rows directly out of
  // `inputs` — the loop allocates nothing after the first chunk.
  constexpr size_t kRowChunk = 256;
  ISRL_CHECK(!layers_.empty());
  const size_t m = inputs.rows();
  ISRL_CHECK_EQ(inputs.cols(), layers_.front()->input_dim());
  Vec out(m);
  std::vector<Matrix> bufs(layers_.size());
  for (size_t start = 0; start < m; start += kRowChunk) {
    const size_t rows = std::min(kRowChunk, m - start);
    const double* cur = inputs.row(start);
    for (size_t i = 0; i < layers_.size(); ++i) {
      layers_[i]->BatchInferInto(cur, rows, &bufs[i]);
      cur = bufs[i].data().data();
    }
    const Matrix& last = bufs.back();
    ISRL_CHECK_EQ(last.cols(), 1u);
    for (size_t r = 0; r < rows; ++r) out[start + r] = last(r, 0);
  }
  return out;
}

Vec Network::PredictBatch(const std::vector<Vec>& inputs) {
  return PredictBatch(Matrix::FromRows(inputs));
}

double Network::AccumulateMseSample(const Vec& input, double target) {
  double pred = Predict(input);
  double err = pred - target;
  Backward(Vec{err});
  return err * err;
}

double Network::AccumulateRegressionSample(const Vec& input, double target,
                                           double weight, double huber_delta) {
  double pred = Predict(input);
  double err = pred - target;
  double grad = err;
  if (huber_delta > 0.0) {
    grad = std::clamp(err, -huber_delta, huber_delta);
  }
  Backward(Vec{weight * grad});
  return err;
}

Vec Network::AccumulateRegressionBatch(const Matrix& inputs,
                                       const Vec& targets, const Vec& weights,
                                       double huber_delta) {
  const size_t batch = inputs.rows();
  ISRL_CHECK_EQ(targets.dim(), batch);
  if (!weights.empty()) ISRL_CHECK_EQ(weights.dim(), batch);
  Matrix preds = BatchForward(inputs);
  ISRL_CHECK_EQ(preds.cols(), 1u);
  Vec errs(batch);
  Matrix output_grads(batch, 1);
  for (size_t r = 0; r < batch; ++r) {
    const double err = preds(r, 0) - targets[r];
    errs[r] = err;
    double grad = err;
    if (huber_delta > 0.0) grad = std::clamp(err, -huber_delta, huber_delta);
    const double w = weights.empty() ? 1.0 : weights[r];
    output_grads(r, 0) = w * grad;
  }
  BatchBackward(output_grads);
  return errs;
}

std::vector<ParamBlock> Network::Params() {
  std::vector<ParamBlock> blocks;
  for (auto& layer : layers_) {
    for (ParamBlock b : layer->Params()) blocks.push_back(b);
  }
  return blocks;
}

void Network::CopyParamsFrom(Network& other) {
  std::vector<ParamBlock> mine = Params();
  std::vector<ParamBlock> theirs = other.Params();
  ISRL_CHECK_EQ(mine.size(), theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    ISRL_CHECK_EQ(mine[i].values->size(), theirs[i].values->size());
    *mine[i].values = *theirs[i].values;
  }
}

Network Network::Clone() const {
  Network copy;
  for (const auto& layer : layers_) copy.layers_.push_back(layer->Clone());
  return copy;
}

size_t Network::NumParameters() const {
  size_t total = 0;
  for (const auto& layer : layers_) {
    for (ParamBlock b : const_cast<Layer&>(*layer).Params()) {
      total += b.values->size();
    }
  }
  return total;
}

}  // namespace isrl::nn
