#include "nn/network.h"

#include <algorithm>

namespace isrl::nn {

namespace {
std::unique_ptr<Layer> MakeActivation(Activation activation, size_t dim) {
  switch (activation) {
    case Activation::kSelu: return std::make_unique<Selu>(dim);
    case Activation::kRelu: return std::make_unique<Relu>(dim);
    case Activation::kTanh: return std::make_unique<Tanh>(dim);
  }
  return nullptr;
}
}  // namespace

Network Network::Mlp(const std::vector<size_t>& widths, Activation activation,
                     Rng& rng) {
  ISRL_CHECK_GE(widths.size(), 2u);
  Network net;
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    net.AddLayer(std::make_unique<Linear>(widths[i], widths[i + 1], rng));
    const bool is_last = (i + 2 == widths.size());
    if (!is_last) net.AddLayer(MakeActivation(activation, widths[i + 1]));
  }
  return net;
}

void Network::AddLayer(std::unique_ptr<Layer> layer) {
  if (!layers_.empty()) {
    ISRL_CHECK_EQ(layers_.back()->output_dim(), layer->input_dim());
  }
  layers_.push_back(std::move(layer));
}

Vec Network::Forward(const Vec& input) {
  Vec x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

void Network::Backward(const Vec& output_grad) {
  Vec g = output_grad;
  for (size_t i = layers_.size(); i-- > 0;) g = layers_[i]->Backward(g);
}

double Network::Predict(const Vec& input) {
  Vec out = Forward(input);
  ISRL_CHECK_EQ(out.dim(), 1u);
  return out[0];
}

double Network::AccumulateMseSample(const Vec& input, double target) {
  double pred = Predict(input);
  double err = pred - target;
  Backward(Vec{err});
  return err * err;
}

double Network::AccumulateRegressionSample(const Vec& input, double target,
                                           double weight, double huber_delta) {
  double pred = Predict(input);
  double err = pred - target;
  double grad = err;
  if (huber_delta > 0.0) {
    grad = std::clamp(err, -huber_delta, huber_delta);
  }
  Backward(Vec{weight * grad});
  return err;
}

std::vector<ParamBlock> Network::Params() {
  std::vector<ParamBlock> blocks;
  for (auto& layer : layers_) {
    for (ParamBlock b : layer->Params()) blocks.push_back(b);
  }
  return blocks;
}

void Network::CopyParamsFrom(Network& other) {
  std::vector<ParamBlock> mine = Params();
  std::vector<ParamBlock> theirs = other.Params();
  ISRL_CHECK_EQ(mine.size(), theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    ISRL_CHECK_EQ(mine[i].values->size(), theirs[i].values->size());
    *mine[i].values = *theirs[i].values;
  }
}

Network Network::Clone() const {
  Network copy;
  for (const auto& layer : layers_) copy.layers_.push_back(layer->Clone());
  return copy;
}

size_t Network::NumParameters() const {
  size_t total = 0;
  for (const auto& layer : layers_) {
    for (ParamBlock b : const_cast<Layer&>(*layer).Params()) {
      total += b.values->size();
    }
  }
  return total;
}

}  // namespace isrl::nn
