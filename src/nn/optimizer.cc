#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace isrl::nn {

void Optimizer::ZeroGrads() {
  for (ParamBlock& b : params_) {
    for (double& g : *b.grads) g = 0.0;
  }
}

void Sgd::Step(size_t batch_size) {
  ISRL_CHECK_GE(batch_size, 1u);
  const double scale = learning_rate_ / static_cast<double>(batch_size);
  for (ParamBlock& b : params_) {
    std::vector<double>& values = *b.values;
    std::vector<double>& grads = *b.grads;
    for (size_t i = 0; i < values.size(); ++i) {
      values[i] -= scale * grads[i];
      grads[i] = 0.0;
    }
  }
}

Adam::Adam(std::vector<ParamBlock> params, double learning_rate, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  for (ParamBlock& b : params_) {
    m_.emplace_back(b.values->size(), 0.0);
    v_.emplace_back(b.values->size(), 0.0);
  }
}

void Adam::Step(size_t batch_size) {
  ISRL_CHECK_GE(batch_size, 1u);
  ++t_;
  const double inv_batch = 1.0 / static_cast<double>(batch_size);
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t p = 0; p < params_.size(); ++p) {
    std::vector<double>& values = *params_[p].values;
    std::vector<double>& grads = *params_[p].grads;
    for (size_t i = 0; i < values.size(); ++i) {
      const double g = grads[i] * inv_batch;
      m_[p][i] = beta1_ * m_[p][i] + (1.0 - beta1_) * g;
      v_[p][i] = beta2_ * v_[p][i] + (1.0 - beta2_) * g * g;
      const double mhat = m_[p][i] / bc1;
      const double vhat = v_[p][i] / bc2;
      values[i] -= learning_rate_ * mhat / (std::sqrt(vhat) + eps_);
      grads[i] = 0.0;
    }
  }
}

}  // namespace isrl::nn
