// Versioned model registry with atomic hot-swap (DESIGN.md §18).
//
// Serving code never holds a raw nn::Network or rl::DqnAgent: it holds
// immutable, fingerprinted ModelSnapshots handed out by a ModelRegistry.
// Publish() installs a new version by swapping one shared pointer under a
// mutex; sessions pin the snapshot they started with, so a publish never
// changes what an in-flight episode computes — hot-swap only affects
// sessions started after it. The fingerprint is the same §14 identity that
// session checkpoints bind to, so restore-under-the-wrong-model keeps
// failing with the precise FailedPrecondition it always has.
#ifndef ISRL_NN_REGISTRY_H_
#define ISRL_NN_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/vec.h"
#include "nn/network.h"

namespace isrl {
class Matrix;
}  // namespace isrl

namespace isrl::nn {

/// One immutable published model: a private copy of the network's weights
/// plus the version and §14 fingerprint they were published under. The
/// weights never change after construction; Score() is const but NOT
/// thread-safe (PredictBatch reuses per-layer scratch) — replicate per
/// thread (Replicate(), ModelReplicaCache) instead of sharing one snapshot
/// across concurrent scorers.
class ModelSnapshot {
 public:
  /// Copies `weights` and fingerprints the copy. Version 0 is reserved for
  /// an algorithm's unregistered live model (Ea/Aa::ServingModel);
  /// registry-published snapshots start at 1.
  ModelSnapshot(uint64_t version, const Network& weights);

  uint64_t version() const { return version_; }
  /// nn::NetworkFingerprint of the held weights — the identity §14 session
  /// snapshots bind to.
  uint64_t fingerprint() const { return fingerprint_; }

  /// Q-values of row-stacked candidate features, one per row. Bit-identical
  /// to scoring through the network the snapshot was published from.
  Vec Score(const Matrix& candidate_features) const;

  /// True when `other` holds exactly the same parameter values (used to
  /// detect a stale live snapshot after out-of-band weight mutation).
  bool SameWeights(const Network& other) const;

  /// A fresh snapshot with the same version, fingerprint, and weights but
  /// its own inference scratch — one per thread/shard for concurrent Score.
  std::shared_ptr<const ModelSnapshot> Replicate() const;

  /// The snapshot's private network (for audit checks and retrain seeding).
  /// Weights are immutable by contract; only inference scratch may mutate.
  Network& network() const { return network_; }

 private:
  uint64_t version_;
  uint64_t fingerprint_;
  /// mutable: PredictBatch scratch. The parameters themselves are never
  /// written after the constructor.
  mutable Network network_;
};

/// Resolves a model version to a pinned snapshot — the restore-time hook
/// that lets checkpointed sessions re-pin the exact model they were saved
/// under (SessionConfig::models). Returns nullptr for unknown versions.
class ModelProvider {
 public:
  virtual ~ModelProvider() = default;
  virtual std::shared_ptr<const ModelSnapshot> Pin(uint64_t version) = 0;
};

/// Thread-safe versioned registry. Publish() copies the weights into a new
/// immutable snapshot and installs it as Latest() via a shared-pointer swap
/// under `mu_` — readers that already pinned a snapshot are untouched, and
/// every version stays pinnable until the registry dies. The mutex (rather
/// than std::atomic<shared_ptr>) keeps the swap inside the §16 clang
/// thread-safety analysis; the critical sections are a few pointer moves.
class ModelRegistry : public ModelProvider {
 public:
  /// Installs `weights` as the next version (1, 2, ...) and returns it.
  uint64_t Publish(const Network& weights);

  /// The most recently published snapshot (nullptr before any Publish).
  std::shared_ptr<const ModelSnapshot> Latest() const;
  /// Version of Latest() (0 before any Publish).
  uint64_t latest_version() const;

  /// The snapshot published as `version`, or nullptr when unknown.
  std::shared_ptr<const ModelSnapshot> Pin(uint64_t version) override;

  /// Published versions so far.
  size_t size() const;

  /// Persists every published version ("model-registry" frame, atomic
  /// write) so a restarted process can re-pin recovered sessions.
  Status SaveFile(const std::string& path) const;

  /// Re-publishes the versions saved by SaveFile into this registry (which
  /// must be empty). Each snapshot's fingerprint is recomputed from the
  /// loaded weights and checked against the saved value.
  Status LoadFile(const std::string& path);

 private:
  mutable Mutex mu_;
  std::vector<std::shared_ptr<const ModelSnapshot>> versions_
      ISRL_GUARDED_BY(mu_);
  std::shared_ptr<const ModelSnapshot> latest_ ISRL_GUARDED_BY(mu_);
};

/// Single-threaded per-shard cache of snapshot replicas over a shared
/// provider: the first Pin of a version replicates it (fresh scratch), later
/// Pins reuse the replica. One cache per shard worker keeps PredictBatch
/// scratch unshared across threads while the underlying registry stays
/// shared and hot-swappable. NOT thread-safe — one cache per thread.
class ModelReplicaCache : public ModelProvider {
 public:
  /// `source` must outlive the cache.
  explicit ModelReplicaCache(ModelProvider* source) : source_(source) {}

  std::shared_ptr<const ModelSnapshot> Pin(uint64_t version) override;

 private:
  ModelProvider* source_;
  std::unordered_map<uint64_t, std::shared_ptr<const ModelSnapshot>> replicas_;
};

}  // namespace isrl::nn

#endif  // ISRL_NN_REGISTRY_H_
