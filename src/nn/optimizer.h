// Gradient-descent optimisers over a network's parameter blocks.
#ifndef ISRL_NN_OPTIMIZER_H_
#define ISRL_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layer.h"

namespace isrl::nn {

/// Base optimiser. Usage per mini-batch: accumulate gradients over the batch
/// (e.g. Network::AccumulateMseSample), then call Step(batch_size) — the
/// optimiser averages the accumulated gradients, applies an update, and
/// zeroes the accumulators.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamBlock> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from gradients accumulated over `batch_size` samples
  /// and resets the gradient accumulators.
  virtual void Step(size_t batch_size) = 0;

  /// Zeroes the gradient accumulators without updating (dropped batch).
  void ZeroGrads();

 protected:
  std::vector<ParamBlock> params_;
};

/// Plain stochastic gradient descent, the paper's stated update rule.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ParamBlock> params, double learning_rate)
      : Optimizer(std::move(params)), learning_rate_(learning_rate) {}
  void Step(size_t batch_size) override;

 private:
  double learning_rate_;
};

/// Adam (Kingma & Ba); available for the optimiser ablation.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ParamBlock> params, double learning_rate,
       double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);
  void Step(size_t batch_size) override;

 private:
  double learning_rate_, beta1_, beta2_, eps_;
  size_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;
};

}  // namespace isrl::nn

#endif  // ISRL_NN_OPTIMIZER_H_
