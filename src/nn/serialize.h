// Plain-text (de)serialisation of networks so trained agents can be reused
// across runs (an extension beyond the paper; see DESIGN.md §7).
#ifndef ISRL_NN_SERIALIZE_H_
#define ISRL_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/network.h"

namespace isrl::nn {

/// Serialises the network (architecture + weights) to a line-oriented text
/// string: one header line per layer followed by its parameters.
std::string SerializeNetwork(const Network& net);

/// Rebuilds a network from SerializeNetwork output.
Result<Network> DeserializeNetwork(const std::string& text);

/// File wrappers.
Status SaveNetwork(const Network& net, const std::string& path);
Result<Network> LoadNetwork(const std::string& path);

}  // namespace isrl::nn

#endif  // ISRL_NN_SERIALIZE_H_
