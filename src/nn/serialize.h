// Plain-text (de)serialisation of networks so trained agents can be reused
// across runs (an extension beyond the paper; see DESIGN.md §7).
#ifndef ISRL_NN_SERIALIZE_H_
#define ISRL_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/network.h"

namespace isrl::nn {

/// Serialises the network (architecture + weights) to a line-oriented text
/// string: one header line per layer followed by its parameters.
std::string SerializeNetwork(const Network& net);

/// Rebuilds a network from SerializeNetwork output. Hardened against
/// adversarial or corrupted input: implausible layer counts and dimensions
/// are rejected *before* any allocation, truncated parameter lists and
/// non-finite weights surface as descriptive InvalidArgument Statuses, and
/// no input can trigger a CHECK or undefined behaviour.
Result<Network> DeserializeNetwork(const std::string& text);

/// Stable 64-bit identity of a network's architecture + exact weights:
/// FNV-1a over the SerializeNetwork text. Session snapshots store this
/// fingerprint instead of duplicating Q-network weights (DESIGN.md §14);
/// restore verifies it against the live algorithm's network, so a snapshot
/// can never silently continue under a retrained or different model.
uint64_t NetworkFingerprint(const Network& net);

/// File wrappers.
Status SaveNetwork(const Network& net, const std::string& path);
Result<Network> LoadNetwork(const std::string& path);

}  // namespace isrl::nn

#endif  // ISRL_NN_SERIALIZE_H_
