#include "nn/layer.h"

#include <cmath>

namespace isrl::nn {

void Layer::DoBatchInferInto(const double* input, size_t rows, Matrix* out) {
  const size_t in = input_dim();
  Matrix tmp(rows, in, std::vector<double>(input, input + rows * in));
  *out = DoBatchForward(tmp, /*cache=*/false);
}

Linear::Linear(size_t in_dim, size_t out_dim, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weights_(in_dim * out_dim),
      biases_(out_dim, 0.0),
      weight_grads_(in_dim * out_dim, 0.0),
      bias_grads_(out_dim, 0.0) {
  const double stddev = 1.0 / std::sqrt(static_cast<double>(in_dim));
  for (double& w : weights_) w = rng.Gaussian(0.0, stddev);
}

Vec Linear::DoForward(const Vec& input, bool cache) {
  ISRL_CHECK_EQ(input.dim(), in_dim_);
  if (cache) last_input_ = input;
  Vec out(out_dim_);
  // The seed's textbook per-output dot loop, kept verbatim as the scalar
  // audit/teaching reference. Each output's k-sum runs in the same index
  // order as the batched GEMM's, so the two paths stay bit-identical.
  for (size_t o = 0; o < out_dim_; ++o) {
    const double* w = &weights_[o * in_dim_];
    double s = biases_[o];
    for (size_t i = 0; i < in_dim_; ++i) s += w[i] * input[i];
    out[o] = s;
  }
  return out;
}

Matrix Linear::DoBatchForward(const Matrix& input, bool cache) {
  ISRL_CHECK_EQ(input.cols(), in_dim_);
  if (cache) last_batch_input_ = input;
  Matrix out(input.rows(), out_dim_);
  GemmTransposedB(input.rows(), out_dim_, in_dim_, input.data().data(),
                  weights_.data(), biases_.data(), out.data().data());
  return out;
}

void Linear::DoBatchInferInto(const double* input, size_t rows, Matrix* out) {
  if (out->rows() != rows || out->cols() != out_dim_) {
    *out = Matrix(rows, out_dim_);
  }
  GemmTransposedB(rows, out_dim_, in_dim_, input, weights_.data(),
                  biases_.data(), out->data().data());
}

Vec Linear::Backward(const Vec& output_grad) {
  ISRL_CHECK_EQ(output_grad.dim(), out_dim_);
  ISRL_CHECK_EQ(last_input_.dim(), in_dim_);
  Vec input_grad(in_dim_);
  for (size_t o = 0; o < out_dim_; ++o) {
    const double g = output_grad[o];
    if (g == 0.0) continue;  // float-eq-ok: exact-zero skip-work test
    double* wg = &weight_grads_[o * in_dim_];
    const double* w = &weights_[o * in_dim_];
    for (size_t i = 0; i < in_dim_; ++i) {
      wg[i] += g * last_input_[i];
      input_grad[i] += g * w[i];
    }
    bias_grads_[o] += g;
  }
  return input_grad;
}

void Linear::AccumulateBatchParamGrads(const Matrix& output_grad) {
  const size_t batch = output_grad.rows();
  ISRL_CHECK_EQ(output_grad.cols(), out_dim_);
  ISRL_CHECK_EQ(last_batch_input_.rows(), batch);
  ISRL_CHECK_EQ(last_batch_input_.cols(), in_dim_);

  // Both gradient accumulations reduce over the samples in ascending row
  // order — the exact order the scalar Backward visits terms when run once
  // per sample row — so the batched backward matches it element for element.
  // (The scalar path's zero-gradient skip omits +0.0 terms; adding them
  // changes no finite value, at most the sign of a ±0.0.)

  // Bias gradients: bg(o) += Σ_s g(s,o), samples in row order.
  for (size_t o = 0; o < out_dim_; ++o) {
    double s = bias_grads_[o];
    for (size_t r = 0; r < batch; ++r) s += output_grad(r, o);
    bias_grads_[o] = s;
  }

  // Weight gradients as a GEMM with the reduction over samples:
  // wg(o,i) += Σ_s g(s,o)·x(s,i). GemmTransposedB reduces over the shared
  // trailing axis, so hand it Gᵀ (out×batch) and Xᵀ (in×batch) and let the
  // `accumulate` mode seed each element from the running accumulator.
  std::vector<double> gt(out_dim_ * batch);
  for (size_t r = 0; r < batch; ++r) {
    const double* go = output_grad.row(r);
    for (size_t o = 0; o < out_dim_; ++o) gt[o * batch + r] = go[o];
  }
  std::vector<double> xt(in_dim_ * batch);
  for (size_t r = 0; r < batch; ++r) {
    const double* x = last_batch_input_.row(r);
    for (size_t i = 0; i < in_dim_; ++i) xt[i * batch + r] = x[i];
  }
  GemmTransposedB(out_dim_, in_dim_, batch, gt.data(), xt.data(), nullptr,
                  weight_grads_.data(), /*accumulate=*/true);
}

Matrix Linear::BatchBackward(const Matrix& output_grad) {
  AccumulateBatchParamGrads(output_grad);
  // Input gradients: gi(s,i) = Σ_o g(s,o)·w(o,i), outputs in ascending
  // order — a GEMM against Wᵀ (in×out).
  const size_t batch = output_grad.rows();
  std::vector<double> wt(in_dim_ * out_dim_);
  for (size_t o = 0; o < out_dim_; ++o) {
    const double* w = &weights_[o * in_dim_];
    for (size_t i = 0; i < in_dim_; ++i) wt[i * out_dim_ + o] = w[i];
  }
  Matrix input_grad(batch, in_dim_);
  GemmTransposedB(batch, in_dim_, out_dim_, output_grad.data().data(),
                  wt.data(), nullptr, input_grad.data().data());
  return input_grad;
}

Matrix Linear::BatchBackwardNoInputGrad(const Matrix& output_grad) {
  AccumulateBatchParamGrads(output_grad);
  return Matrix();
}

std::vector<ParamBlock> Linear::Params() {
  return {{&weights_, &weight_grads_}, {&biases_, &bias_grads_}};
}

std::unique_ptr<Layer> Linear::Clone() const {
  auto copy = std::make_unique<Linear>(*this);
  return copy;
}

namespace {
inline double SeluValue(double x) {
  return x > 0.0 ? Selu::kScale * x
                 : Selu::kScale * Selu::kAlpha * (std::exp(x) - 1.0);
}
inline double SeluSlope(double x) {
  return x > 0.0 ? Selu::kScale : Selu::kScale * Selu::kAlpha * std::exp(x);
}
}  // namespace

Vec Selu::DoForward(const Vec& input, bool cache) {
  ISRL_CHECK_EQ(input.dim(), dim_);
  if (cache) last_input_ = input;
  Vec out(dim_);
  for (size_t i = 0; i < dim_; ++i) out[i] = SeluValue(input[i]);
  return out;
}

Matrix Selu::DoBatchForward(const Matrix& input, bool cache) {
  ISRL_CHECK_EQ(input.cols(), dim_);
  if (cache) last_batch_input_ = input;
  Matrix out(input.rows(), input.cols());
  const std::vector<double>& in = input.data();
  std::vector<double>& o = out.data();
  for (size_t i = 0; i < in.size(); ++i) o[i] = SeluValue(in[i]);
  return out;
}

void Selu::DoBatchInferInto(const double* input, size_t rows, Matrix* out) {
  if (out->rows() != rows || out->cols() != dim_) *out = Matrix(rows, dim_);
  double* o = out->data().data();
  for (size_t i = 0; i < rows * dim_; ++i) o[i] = SeluValue(input[i]);
}

Vec Selu::Backward(const Vec& output_grad) {
  ISRL_CHECK_EQ(output_grad.dim(), dim_);
  Vec grad(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    grad[i] = output_grad[i] * SeluSlope(last_input_[i]);
  }
  return grad;
}

Matrix Selu::BatchBackward(const Matrix& output_grad) {
  ISRL_CHECK_EQ(output_grad.cols(), dim_);
  ISRL_CHECK_EQ(last_batch_input_.rows(), output_grad.rows());
  Matrix grad(output_grad.rows(), output_grad.cols());
  const std::vector<double>& g = output_grad.data();
  const std::vector<double>& x = last_batch_input_.data();
  std::vector<double>& o = grad.data();
  for (size_t i = 0; i < g.size(); ++i) o[i] = g[i] * SeluSlope(x[i]);
  return grad;
}

Vec Relu::DoForward(const Vec& input, bool cache) {
  ISRL_CHECK_EQ(input.dim(), dim_);
  if (cache) last_input_ = input;
  Vec out(dim_);
  for (size_t i = 0; i < dim_; ++i) out[i] = input[i] > 0.0 ? input[i] : 0.0;
  return out;
}

Matrix Relu::DoBatchForward(const Matrix& input, bool cache) {
  ISRL_CHECK_EQ(input.cols(), dim_);
  if (cache) last_batch_input_ = input;
  Matrix out(input.rows(), input.cols());
  const std::vector<double>& in = input.data();
  std::vector<double>& o = out.data();
  for (size_t i = 0; i < in.size(); ++i) o[i] = in[i] > 0.0 ? in[i] : 0.0;
  return out;
}

void Relu::DoBatchInferInto(const double* input, size_t rows, Matrix* out) {
  if (out->rows() != rows || out->cols() != dim_) *out = Matrix(rows, dim_);
  double* o = out->data().data();
  for (size_t i = 0; i < rows * dim_; ++i) {
    o[i] = input[i] > 0.0 ? input[i] : 0.0;
  }
}

Vec Relu::Backward(const Vec& output_grad) {
  Vec grad(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    grad[i] = last_input_[i] > 0.0 ? output_grad[i] : 0.0;
  }
  return grad;
}

Matrix Relu::BatchBackward(const Matrix& output_grad) {
  ISRL_CHECK_EQ(output_grad.cols(), dim_);
  ISRL_CHECK_EQ(last_batch_input_.rows(), output_grad.rows());
  Matrix grad(output_grad.rows(), output_grad.cols());
  const std::vector<double>& g = output_grad.data();
  const std::vector<double>& x = last_batch_input_.data();
  std::vector<double>& o = grad.data();
  for (size_t i = 0; i < g.size(); ++i) o[i] = x[i] > 0.0 ? g[i] : 0.0;
  return grad;
}

Vec Tanh::DoForward(const Vec& input, bool cache) {
  ISRL_CHECK_EQ(input.dim(), dim_);
  Vec out(dim_);
  for (size_t i = 0; i < dim_; ++i) out[i] = std::tanh(input[i]);
  if (cache) last_output_ = out;
  return out;
}

Matrix Tanh::DoBatchForward(const Matrix& input, bool cache) {
  ISRL_CHECK_EQ(input.cols(), dim_);
  Matrix out(input.rows(), input.cols());
  const std::vector<double>& in = input.data();
  std::vector<double>& o = out.data();
  for (size_t i = 0; i < in.size(); ++i) o[i] = std::tanh(in[i]);
  if (cache) last_batch_output_ = out;
  return out;
}

void Tanh::DoBatchInferInto(const double* input, size_t rows, Matrix* out) {
  if (out->rows() != rows || out->cols() != dim_) *out = Matrix(rows, dim_);
  double* o = out->data().data();
  for (size_t i = 0; i < rows * dim_; ++i) o[i] = std::tanh(input[i]);
}

Vec Tanh::Backward(const Vec& output_grad) {
  Vec grad(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    grad[i] = output_grad[i] * (1.0 - last_output_[i] * last_output_[i]);
  }
  return grad;
}

Matrix Tanh::BatchBackward(const Matrix& output_grad) {
  ISRL_CHECK_EQ(output_grad.cols(), dim_);
  ISRL_CHECK_EQ(last_batch_output_.rows(), output_grad.rows());
  Matrix grad(output_grad.rows(), output_grad.cols());
  const std::vector<double>& g = output_grad.data();
  const std::vector<double>& y = last_batch_output_.data();
  std::vector<double>& o = grad.data();
  for (size_t i = 0; i < g.size(); ++i) o[i] = g[i] * (1.0 - y[i] * y[i]);
  return grad;
}

}  // namespace isrl::nn
