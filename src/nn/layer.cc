#include "nn/layer.h"

#include <cmath>

namespace isrl::nn {

Linear::Linear(size_t in_dim, size_t out_dim, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weights_(in_dim * out_dim),
      biases_(out_dim, 0.0),
      weight_grads_(in_dim * out_dim, 0.0),
      bias_grads_(out_dim, 0.0) {
  const double stddev = 1.0 / std::sqrt(static_cast<double>(in_dim));
  for (double& w : weights_) w = rng.Gaussian(0.0, stddev);
}

Vec Linear::Forward(const Vec& input) {
  ISRL_CHECK_EQ(input.dim(), in_dim_);
  last_input_ = input;
  Vec out(out_dim_);
  for (size_t o = 0; o < out_dim_; ++o) {
    const double* w = &weights_[o * in_dim_];
    double s = biases_[o];
    for (size_t i = 0; i < in_dim_; ++i) s += w[i] * input[i];
    out[o] = s;
  }
  return out;
}

Vec Linear::Backward(const Vec& output_grad) {
  ISRL_CHECK_EQ(output_grad.dim(), out_dim_);
  ISRL_CHECK_EQ(last_input_.dim(), in_dim_);
  Vec input_grad(in_dim_);
  for (size_t o = 0; o < out_dim_; ++o) {
    const double g = output_grad[o];
    if (g == 0.0) continue;  // float-eq-ok: exact-zero skip-work test
    double* wg = &weight_grads_[o * in_dim_];
    const double* w = &weights_[o * in_dim_];
    for (size_t i = 0; i < in_dim_; ++i) {
      wg[i] += g * last_input_[i];
      input_grad[i] += g * w[i];
    }
    bias_grads_[o] += g;
  }
  return input_grad;
}

std::vector<ParamBlock> Linear::Params() {
  return {{&weights_, &weight_grads_}, {&biases_, &bias_grads_}};
}

std::unique_ptr<Layer> Linear::Clone() const {
  auto copy = std::make_unique<Linear>(*this);
  return copy;
}

Vec Selu::Forward(const Vec& input) {
  ISRL_CHECK_EQ(input.dim(), dim_);
  last_input_ = input;
  Vec out(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    double x = input[i];
    out[i] = x > 0.0 ? kScale * x : kScale * kAlpha * (std::exp(x) - 1.0);
  }
  return out;
}

Vec Selu::Backward(const Vec& output_grad) {
  ISRL_CHECK_EQ(output_grad.dim(), dim_);
  Vec grad(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    double x = last_input_[i];
    double d = x > 0.0 ? kScale : kScale * kAlpha * std::exp(x);
    grad[i] = output_grad[i] * d;
  }
  return grad;
}

Vec Relu::Forward(const Vec& input) {
  ISRL_CHECK_EQ(input.dim(), dim_);
  last_input_ = input;
  Vec out(dim_);
  for (size_t i = 0; i < dim_; ++i) out[i] = input[i] > 0.0 ? input[i] : 0.0;
  return out;
}

Vec Relu::Backward(const Vec& output_grad) {
  Vec grad(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    grad[i] = last_input_[i] > 0.0 ? output_grad[i] : 0.0;
  }
  return grad;
}

Vec Tanh::Forward(const Vec& input) {
  ISRL_CHECK_EQ(input.dim(), dim_);
  Vec out(dim_);
  for (size_t i = 0; i < dim_; ++i) out[i] = std::tanh(input[i]);
  last_output_ = out;
  return out;
}

Vec Tanh::Backward(const Vec& output_grad) {
  Vec grad(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    grad[i] = output_grad[i] * (1.0 - last_output_[i] * last_output_[i]);
  }
  return grad;
}

}  // namespace isrl::nn
