// Feed-forward network: an ordered stack of layers with scalar-regression
// helpers for Q-value fitting.
#ifndef ISRL_NN_NETWORK_H_
#define ISRL_NN_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/vec.h"
#include "nn/layer.h"

namespace isrl::nn {

/// Hidden-layer activation choices (paper default: SELU).
enum class Activation { kSelu, kRelu, kTanh };

/// Sequential dense network.
class Network {
 public:
  Network() = default;

  /// Builds an MLP with the given layer widths, e.g. {30, 64, 1} gives
  /// Linear(30,64) → act → Linear(64,1). `widths` needs ≥ 2 entries.
  static Network Mlp(const std::vector<size_t>& widths, Activation activation,
                     Rng& rng);

  void AddLayer(std::unique_ptr<Layer> layer);

  /// Forward pass (caches per-layer state for Backward).
  Vec Forward(const Vec& input);

  /// Backward pass from the output-gradient; accumulates parameter grads.
  void Backward(const Vec& output_grad);

  /// Batched training forward: one sample per row; caches per-layer batch
  /// state for BatchBackward.
  Matrix BatchForward(const Matrix& inputs);

  /// Batched backward: row r of `output_grads` is sample r's output
  /// gradient. Accumulates parameter gradients in sample-row order —
  /// bit-identical to per-sample Backward calls.
  void BatchBackward(const Matrix& output_grads);

  /// Convenience for scalar heads: returns Forward(input)[0].
  double Predict(const Vec& input);

  /// Inference-mode Predict: no activation caching (Backward is invalid
  /// afterwards). Use for target-network evaluation and action scoring.
  double Infer(const Vec& input);

  /// Batched inference for scalar-head networks: row-stacked inputs in, one
  /// predicted value per row out. No activation caching — scoring a
  /// candidate pool costs one blocked GEMM per layer instead of
  /// |pool| scalar dispatches. Bit-identical to calling Predict per row.
  Vec PredictBatch(const Matrix& inputs);
  /// Convenience overload that stacks the samples first.
  Vec PredictBatch(const std::vector<Vec>& inputs);

  /// One MSE sample: accumulates gradients of ½(pred − target)² and returns
  /// the squared error. Call an optimiser Step to apply.
  double AccumulateMseSample(const Vec& input, double target);

  /// General regression sample: accumulates `weight`-scaled gradients of the
  /// squared error (huber_delta ≤ 0) or the Huber loss with the given delta
  /// (gradient clipped to ±delta — robust to outlier TD targets). Returns
  /// the raw error pred − target.
  double AccumulateRegressionSample(const Vec& input, double target,
                                    double weight, double huber_delta);

  /// Batched AccumulateRegressionSample: one batched forward plus one
  /// batched backward over the whole row-stacked batch, with gradient
  /// accumulation preserved (bit-identical to the per-sample loop).
  /// `weights` is either empty (all samples weighted 1) or one weight per
  /// row. Returns the per-row raw errors pred − target.
  Vec AccumulateRegressionBatch(const Matrix& inputs, const Vec& targets,
                                const Vec& weights, double huber_delta);

  /// All parameter blocks across layers (optimiser interface).
  std::vector<ParamBlock> Params();

  /// Copies every parameter value from `other` (architectures must match);
  /// used to synchronise the target network.
  void CopyParamsFrom(Network& other);

  /// Deep copy including current weights.
  Network Clone() const;

  size_t num_layers() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_[i]; }
  const Layer& layer(size_t i) const { return *layers_[i]; }

  /// Total scalar parameter count.
  size_t NumParameters() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace isrl::nn

#endif  // ISRL_NN_NETWORK_H_
