#include "nn/registry.h"

#include <utility>

#include "common/check.h"
#include "common/matrix.h"
#include "common/strings.h"
#include "core/snapshot.h"
#include "nn/serialize.h"

namespace isrl::nn {

namespace {
constexpr char kRegistryKind[] = "model-registry";
constexpr uint32_t kRegistryVersion = 1;
}  // namespace

ModelSnapshot::ModelSnapshot(uint64_t version, const Network& weights)
    : version_(version),
      fingerprint_(NetworkFingerprint(weights)),
      network_(weights.Clone()) {}

Vec ModelSnapshot::Score(const Matrix& candidate_features) const {
  return network_.PredictBatch(candidate_features);
}

bool ModelSnapshot::SameWeights(const Network& other) const {
  return NetworkFingerprint(other) == fingerprint_;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::Replicate() const {
  return std::make_shared<const ModelSnapshot>(version_, network_);
}

// Publish builds the snapshot (a network copy + fingerprint) under mu_.
// Publishes are retrain-rate rare and Latest()/Pin() critical sections are a
// few pointer moves, so the simplicity beats a build-outside-lock dance.
uint64_t ModelRegistry::Publish(const Network& weights) {
  MutexLock lock(mu_);
  const uint64_t version = versions_.size() + 1;
  auto snapshot = std::make_shared<const ModelSnapshot>(version, weights);
  versions_.push_back(snapshot);
  latest_ = std::move(snapshot);
  return version;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Latest() const {
  MutexLock lock(mu_);
  return latest_;
}

uint64_t ModelRegistry::latest_version() const {
  MutexLock lock(mu_);
  return latest_ == nullptr ? 0 : latest_->version();
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Pin(uint64_t version) {
  MutexLock lock(mu_);
  if (version == 0 || version > versions_.size()) return nullptr;
  return versions_[version - 1];
}

size_t ModelRegistry::size() const {
  MutexLock lock(mu_);
  return versions_.size();
}

Status ModelRegistry::SaveFile(const std::string& path) const {
  snapshot::Writer w;
  {
    MutexLock lock(mu_);
    w.U64(versions_.size());
    for (const auto& snapshot : versions_) {
      w.U64(snapshot->version());
      w.U64(snapshot->fingerprint());
      w.Str(SerializeNetwork(snapshot->network()));
    }
  }
  return snapshot::WriteFileBytes(
      path, snapshot::WrapFrame(kRegistryKind, kRegistryVersion, w.Take()));
}

Status ModelRegistry::LoadFile(const std::string& path) {
  ISRL_ASSIGN_OR_RETURN(std::string bytes, snapshot::ReadFileBytes(path));
  ISRL_ASSIGN_OR_RETURN(
      std::string payload,
      snapshot::UnwrapFrame(kRegistryKind, kRegistryVersion, bytes));
  snapshot::Reader r(payload);
  const uint64_t count = r.U64();
  if (!r.failed() && count > snapshot::kMaxElements) {
    return Status::InvalidArgument("model registry file: implausible count");
  }
  std::vector<std::shared_ptr<const ModelSnapshot>> loaded;
  for (uint64_t i = 0; i < count && !r.failed(); ++i) {
    const uint64_t version = r.U64();
    const uint64_t fingerprint = r.U64();
    const std::string text = r.Str();
    if (r.failed()) break;
    if (version != i + 1) {
      return Status::InvalidArgument(Format(
          "model registry file: version %llu out of sequence (expected %llu)",
          static_cast<unsigned long long>(version),
          static_cast<unsigned long long>(i + 1)));
    }
    ISRL_ASSIGN_OR_RETURN(Network network, DeserializeNetwork(text));
    auto snapshot = std::make_shared<const ModelSnapshot>(version, network);
    if (snapshot->fingerprint() != fingerprint) {
      return Status::InvalidArgument(Format(
          "model registry file: version %llu weights hash to %016llx but the "
          "file records %016llx (corrupted or edited)",
          static_cast<unsigned long long>(version),
          static_cast<unsigned long long>(snapshot->fingerprint()),
          static_cast<unsigned long long>(fingerprint)));
    }
    loaded.push_back(std::move(snapshot));
  }
  ISRL_RETURN_IF_ERROR(r.status());
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "model registry file: trailing payload bytes");
  }
  MutexLock lock(mu_);
  if (!versions_.empty()) {
    return Status::FailedPrecondition(
        "model registry load requires an empty registry");
  }
  versions_ = std::move(loaded);
  latest_ = versions_.empty() ? nullptr : versions_.back();
  return Status::Ok();
}

std::shared_ptr<const ModelSnapshot> ModelReplicaCache::Pin(uint64_t version) {
  auto it = replicas_.find(version);
  if (it != replicas_.end()) return it->second;
  std::shared_ptr<const ModelSnapshot> source = source_->Pin(version);
  if (source == nullptr) return nullptr;
  std::shared_ptr<const ModelSnapshot> replica = source->Replicate();
  replicas_.emplace(version, replica);
  return replica;
}

}  // namespace isrl::nn
