#include "nn/serialize.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace isrl::nn {

std::string SerializeNetwork(const Network& net) {
  std::ostringstream out;
  out << "isrl-network v1\n";
  out << "layers " << net.num_layers() << "\n";
  for (size_t i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    out << layer.Kind() << " " << layer.input_dim() << " "
        << layer.output_dim() << "\n";
    if (layer.Kind() == "linear") {
      const auto& linear = static_cast<const Linear&>(layer);
      for (double w : linear.weights()) out << Format("%.17g ", w);
      out << "\n";
      for (double b : linear.biases()) out << Format("%.17g ", b);
      out << "\n";
    }
  }
  return out.str();
}

namespace {

// Sanity ceilings for deserialised architectures. A corrupted or hostile
// header must not turn into a multi-gigabyte allocation (or a size_t
// overflow in in_dim*out_dim) before any real validation runs; honest
// networks in this project are orders of magnitude below both caps.
constexpr size_t kMaxLayers = 1024;
constexpr size_t kMaxLayerDim = size_t{1} << 20;
// The per-dimension cap alone still admits an 8-terabyte weight matrix
// (2^20 x 2^20), so the element product gets its own ceiling.
constexpr size_t kMaxLayerElements = size_t{1} << 24;

}  // namespace

Result<Network> DeserializeNetwork(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "isrl-network v1") {
    return Status::InvalidArgument(
        "network deserialize: bad header (expected 'isrl-network v1')");
  }
  size_t num_layers = 0;
  {
    std::string tag;
    if (!(in >> tag >> num_layers) || tag != "layers") {
      return Status::InvalidArgument(
          "network deserialize: missing or malformed layer count");
    }
    if (num_layers > kMaxLayers) {
      return Status::InvalidArgument(
          Format("network deserialize: implausible layer count %zu (cap %zu)",
                 num_layers, kMaxLayers));
    }
  }
  Network net;
  Rng dummy_rng(0);
  for (size_t i = 0; i < num_layers; ++i) {
    std::string kind;
    size_t in_dim = 0, out_dim = 0;
    if (!(in >> kind >> in_dim >> out_dim)) {
      return Status::InvalidArgument(
          Format("network deserialize: truncated header of layer %zu", i));
    }
    // Dimension validation happens BEFORE the Linear allocation: the layer
    // constructor trusts its arguments, so the bound check here is what
    // stands between a corrupted dimension field and an OOM/overflow.
    if (in_dim == 0 || in_dim > kMaxLayerDim || out_dim == 0 ||
        out_dim > kMaxLayerDim) {
      return Status::InvalidArgument(
          Format("network deserialize: layer %zu dimensions %zu x %zu out of "
                 "range [1, %zu]",
                 i, in_dim, out_dim, kMaxLayerDim));
    }
    // Both factors are <= 2^20 here, so the product cannot overflow size_t.
    if (in_dim * out_dim > kMaxLayerElements) {
      return Status::InvalidArgument(
          Format("network deserialize: layer %zu weight count %zu x %zu out of "
                 "range (cap %zu elements)",
                 i, in_dim, out_dim, kMaxLayerElements));
    }
    if (kind == "linear") {
      auto layer = std::make_unique<Linear>(in_dim, out_dim, dummy_rng);
      for (double& w : layer->weights()) {
        if (!(in >> w)) {
          return Status::InvalidArgument(
              Format("network deserialize: truncated weights in layer %zu", i));
        }
        if (!std::isfinite(w)) {
          return Status::InvalidArgument(
              Format("network deserialize: non-finite weight in layer %zu", i));
        }
      }
      for (double& b : layer->biases()) {
        if (!(in >> b)) {
          return Status::InvalidArgument(
              Format("network deserialize: truncated biases in layer %zu", i));
        }
        if (!std::isfinite(b)) {
          return Status::InvalidArgument(
              Format("network deserialize: non-finite bias in layer %zu", i));
        }
      }
      net.AddLayer(std::move(layer));
    } else if (kind == "selu") {
      net.AddLayer(std::make_unique<Selu>(in_dim));
    } else if (kind == "relu") {
      net.AddLayer(std::make_unique<Relu>(in_dim));
    } else if (kind == "tanh") {
      net.AddLayer(std::make_unique<Tanh>(in_dim));
    } else {
      return Status::InvalidArgument(
          "network deserialize: unknown layer kind '" + kind + "'");
    }
  }
  return net;
}

uint64_t NetworkFingerprint(const Network& net) {
  // FNV-1a over the architecture fields and the raw weight/bias bit
  // patterns. Hashing double bits directly (instead of the %.17g text
  // form) keeps the fingerprint sensitive to every ULP while making the
  // per-snapshot cost a plain linear scan — session checkpoints fold the
  // fingerprint into every SaveState, so no formatting or allocation here.
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix_byte = [&h](uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };
  auto mix_u64 = [&mix_byte](uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<uint8_t>(v >> (8 * i)));
  };
  auto mix_double = [&mix_u64](double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    mix_u64(bits);
  };
  mix_u64(net.num_layers());
  for (size_t i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    for (char c : layer.Kind()) mix_byte(static_cast<uint8_t>(c));
    mix_u64(layer.input_dim());
    mix_u64(layer.output_dim());
    if (layer.Kind() == "linear") {
      const auto& linear = static_cast<const Linear&>(layer);
      for (double w : linear.weights()) mix_double(w);
      for (double b : linear.biases()) mix_double(b);
    }
  }
  return h;
}

Status SaveNetwork(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << SerializeNetwork(net);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Network> LoadNetwork(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeNetwork(buf.str());
}

}  // namespace isrl::nn
