#include "nn/serialize.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace isrl::nn {

std::string SerializeNetwork(const Network& net) {
  std::ostringstream out;
  out << "isrl-network v1\n";
  out << "layers " << net.num_layers() << "\n";
  for (size_t i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    out << layer.Kind() << " " << layer.input_dim() << " "
        << layer.output_dim() << "\n";
    if (layer.Kind() == "linear") {
      const auto& linear = static_cast<const Linear&>(layer);
      for (double w : linear.weights()) out << Format("%.17g ", w);
      out << "\n";
      for (double b : linear.biases()) out << Format("%.17g ", b);
      out << "\n";
    }
  }
  return out.str();
}

Result<Network> DeserializeNetwork(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "isrl-network v1") {
    return Status::InvalidArgument("bad network header");
  }
  size_t num_layers = 0;
  {
    std::string tag;
    in >> tag >> num_layers;
    if (tag != "layers") return Status::InvalidArgument("missing layer count");
  }
  Network net;
  Rng dummy_rng(0);
  for (size_t i = 0; i < num_layers; ++i) {
    std::string kind;
    size_t in_dim = 0, out_dim = 0;
    if (!(in >> kind >> in_dim >> out_dim)) {
      return Status::InvalidArgument("truncated layer header");
    }
    if (kind == "linear") {
      auto layer = std::make_unique<Linear>(in_dim, out_dim, dummy_rng);
      for (double& w : layer->weights()) {
        if (!(in >> w)) return Status::InvalidArgument("truncated weights");
      }
      for (double& b : layer->biases()) {
        if (!(in >> b)) return Status::InvalidArgument("truncated biases");
      }
      net.AddLayer(std::move(layer));
    } else if (kind == "selu") {
      net.AddLayer(std::make_unique<Selu>(in_dim));
    } else if (kind == "relu") {
      net.AddLayer(std::make_unique<Relu>(in_dim));
    } else if (kind == "tanh") {
      net.AddLayer(std::make_unique<Tanh>(in_dim));
    } else {
      return Status::InvalidArgument("unknown layer kind: " + kind);
    }
  }
  return net;
}

Status SaveNetwork(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << SerializeNetwork(net);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Network> LoadNetwork(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeNetwork(buf.str());
}

}  // namespace isrl::nn
