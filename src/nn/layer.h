// Neural-network layers for the DQN function approximator.
//
// The paper's agent is deliberately small — one hidden layer of 64 neurons
// with SELU activation trained by MSE — so a straightforward from-scratch
// dense implementation (double precision, sample-at-a-time with gradient
// accumulation) is faster than any framework would be at this scale.
#ifndef ISRL_NN_LAYER_H_
#define ISRL_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/vec.h"

namespace isrl::nn {

/// A mutable view of one parameter array and its gradient accumulator.
struct ParamBlock {
  std::vector<double>* values;
  std::vector<double>* grads;
};

/// Base class for differentiable layers. Forward caches whatever Backward
/// needs; Backward accumulates parameter gradients (callers zero them via the
/// optimiser between steps) and returns the gradient w.r.t. the input.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Vec Forward(const Vec& input) = 0;
  virtual Vec Backward(const Vec& output_grad) = 0;

  /// Parameter/gradient blocks; empty for stateless activations.
  virtual std::vector<ParamBlock> Params() { return {}; }

  /// Layer kind tag used by (de)serialisation ("linear", "selu", ...).
  virtual std::string Kind() const = 0;

  virtual size_t input_dim() const = 0;
  virtual size_t output_dim() const = 0;

  /// Deep copy (used to build the target network).
  virtual std::unique_ptr<Layer> Clone() const = 0;
};

/// Fully connected layer y = W x + b.
class Linear : public Layer {
 public:
  /// Creates a layer with LeCun-normal weights (stddev 1/√fan_in), the
  /// recommended initialisation for SELU networks, and zero biases.
  Linear(size_t in_dim, size_t out_dim, Rng& rng);

  Vec Forward(const Vec& input) override;
  Vec Backward(const Vec& output_grad) override;
  std::vector<ParamBlock> Params() override;
  std::string Kind() const override { return "linear"; }
  size_t input_dim() const override { return in_dim_; }
  size_t output_dim() const override { return out_dim_; }
  std::unique_ptr<Layer> Clone() const override;

  /// Row-major weights (out_dim × in_dim) followed by biases. Exposed for
  /// serialisation and tests.
  std::vector<double>& weights() { return weights_; }
  std::vector<double>& biases() { return biases_; }
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<double>& biases() const { return biases_; }

 private:
  size_t in_dim_, out_dim_;
  std::vector<double> weights_, biases_;
  std::vector<double> weight_grads_, bias_grads_;
  Vec last_input_;
};

/// SELU activation (Klambauer et al., the paper's choice).
class Selu : public Layer {
 public:
  explicit Selu(size_t dim) : dim_(dim) {}
  Vec Forward(const Vec& input) override;
  Vec Backward(const Vec& output_grad) override;
  std::string Kind() const override { return "selu"; }
  size_t input_dim() const override { return dim_; }
  size_t output_dim() const override { return dim_; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Selu>(dim_);
  }

  static constexpr double kAlpha = 1.6732632423543772;
  static constexpr double kScale = 1.0507009873554805;

 private:
  size_t dim_;
  Vec last_input_;
};

/// ReLU activation (for ablations).
class Relu : public Layer {
 public:
  explicit Relu(size_t dim) : dim_(dim) {}
  Vec Forward(const Vec& input) override;
  Vec Backward(const Vec& output_grad) override;
  std::string Kind() const override { return "relu"; }
  size_t input_dim() const override { return dim_; }
  size_t output_dim() const override { return dim_; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Relu>(dim_);
  }

 private:
  size_t dim_;
  Vec last_input_;
};

/// Tanh activation (for ablations).
class Tanh : public Layer {
 public:
  explicit Tanh(size_t dim) : dim_(dim) {}
  Vec Forward(const Vec& input) override;
  Vec Backward(const Vec& output_grad) override;
  std::string Kind() const override { return "tanh"; }
  size_t input_dim() const override { return dim_; }
  size_t output_dim() const override { return dim_; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Tanh>(dim_);
  }

 private:
  size_t dim_;
  Vec last_output_;
};

}  // namespace isrl::nn

#endif  // ISRL_NN_LAYER_H_
