// Neural-network layers for the DQN function approximator.
//
// The paper's agent is deliberately small — one hidden layer of 64 neurons
// with SELU activation trained by MSE — so a straightforward from-scratch
// dense implementation (double precision) is faster than any framework would
// be at this scale. Every layer supports two execution granularities:
//
//   * scalar: Vec in, Vec out — one sample at a time, the original
//     audit/teaching reference path;
//   * batched: Matrix in, Matrix out — one sample per row, backed by the
//     cache-blocked GEMM in common/matrix.h.
//
// Both granularities come in a training mode (Forward/BatchForward, which
// cache whatever Backward needs) and an inference mode (Infer/BatchInfer,
// which skip the activation caching entirely — target-network evaluation and
// action scoring never call Backward, so they never pay for the copies).
// The batched path accumulates gradients in sample-row order, so batched and
// scalar results are bit-identical, not merely close (DESIGN.md §12).
#ifndef ISRL_NN_LAYER_H_
#define ISRL_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/vec.h"

namespace isrl::nn {

/// A mutable view of one parameter array and its gradient accumulator.
struct ParamBlock {
  std::vector<double>* values;
  std::vector<double>* grads;
};

/// Base class for differentiable layers. The training-mode forwards cache
/// whatever Backward needs; the backwards accumulate parameter gradients
/// (callers zero them via the optimiser between steps) and return the
/// gradient w.r.t. the input.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Training-mode forward: caches activations for a following Backward.
  Vec Forward(const Vec& input) { return DoForward(input, /*cache=*/true); }
  /// Inference-mode forward: no activation caching. Backward must not be
  /// called on the strength of an Infer.
  Vec Infer(const Vec& input) { return DoForward(input, /*cache=*/false); }
  /// Training-mode batched forward over row-stacked samples.
  Matrix BatchForward(const Matrix& input) {
    return DoBatchForward(input, /*cache=*/true);
  }
  /// Inference-mode batched forward (no caching).
  Matrix BatchInfer(const Matrix& input) {
    return DoBatchForward(input, /*cache=*/false);
  }
  /// Inference-mode batched forward into a caller-owned buffer: reads `rows`
  /// row-major samples (each `input_dim()` wide) starting at `input` and
  /// writes the layer's output into `*out`, reallocating it only on shape
  /// change. The raw-block input lets Network::PredictBatch feed row chunks
  /// of a stacked input matrix without materialising per-chunk copies, and
  /// the persistent `*out` amortises allocation (and the std::vector
  /// zero-fill) across chunks. Results are identical to BatchInfer.
  void BatchInferInto(const double* input, size_t rows, Matrix* out) {
    DoBatchInferInto(input, rows, out);
  }

  virtual Vec Backward(const Vec& output_grad) = 0;
  /// Batched backward: row r of `output_grad` is sample r's output gradient.
  /// Parameter gradients accumulate over rows in row order — every element
  /// receives the same terms in the same order as running the scalar
  /// Backward once per sample, so the results are identical (the scalar
  /// path's exact-zero skip can at most flip the sign of a ±0.0). Valid
  /// only after a BatchForward of the matching batch.
  virtual Matrix BatchBackward(const Matrix& output_grad) = 0;

  /// Like BatchBackward when the caller will not read the returned input
  /// gradient (a network's bottom layer has no consumer for it). Parameter
  /// gradients accumulate exactly as in BatchBackward; the default still
  /// computes the input gradient, but Linear overrides this to skip one of
  /// its two backward GEMMs and returns an empty matrix.
  virtual Matrix BatchBackwardNoInputGrad(const Matrix& output_grad) {
    return BatchBackward(output_grad);
  }

  /// Parameter/gradient blocks; empty for stateless activations.
  virtual std::vector<ParamBlock> Params() { return {}; }

  /// Layer kind tag used by (de)serialisation ("linear", "selu", ...).
  virtual std::string Kind() const = 0;

  virtual size_t input_dim() const = 0;
  virtual size_t output_dim() const = 0;

  /// Deep copy (used to build the target network).
  virtual std::unique_ptr<Layer> Clone() const = 0;

 protected:
  virtual Vec DoForward(const Vec& input, bool cache) = 0;
  virtual Matrix DoBatchForward(const Matrix& input, bool cache) = 0;
  /// Default: copy the block into a Matrix and run the uncached batched
  /// forward. Linear and the activations override to write straight into
  /// `*out` with no intermediate copies.
  virtual void DoBatchInferInto(const double* input, size_t rows, Matrix* out);
};

/// Fully connected layer y = W x + b.
class Linear : public Layer {
 public:
  /// Creates a layer with LeCun-normal weights (stddev 1/√fan_in), the
  /// recommended initialisation for SELU networks, and zero biases.
  Linear(size_t in_dim, size_t out_dim, Rng& rng);

  Vec Backward(const Vec& output_grad) override;
  Matrix BatchBackward(const Matrix& output_grad) override;
  Matrix BatchBackwardNoInputGrad(const Matrix& output_grad) override;
  std::vector<ParamBlock> Params() override;
  std::string Kind() const override { return "linear"; }
  size_t input_dim() const override { return in_dim_; }
  size_t output_dim() const override { return out_dim_; }
  std::unique_ptr<Layer> Clone() const override;

  /// Row-major weights (out_dim × in_dim) followed by biases. Exposed for
  /// serialisation and tests.
  std::vector<double>& weights() { return weights_; }
  std::vector<double>& biases() { return biases_; }
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<double>& biases() const { return biases_; }

 protected:
  Vec DoForward(const Vec& input, bool cache) override;
  Matrix DoBatchForward(const Matrix& input, bool cache) override;
  void DoBatchInferInto(const double* input, size_t rows,
                        Matrix* out) override;

 private:
  /// Shared by both batched backwards: accumulates bias and weight
  /// gradients over the batch rows in sample order.
  void AccumulateBatchParamGrads(const Matrix& output_grad);

  size_t in_dim_, out_dim_;
  std::vector<double> weights_, biases_;
  std::vector<double> weight_grads_, bias_grads_;
  Vec last_input_;
  Matrix last_batch_input_;
};

/// SELU activation (Klambauer et al., the paper's choice).
class Selu : public Layer {
 public:
  explicit Selu(size_t dim) : dim_(dim) {}
  Vec Backward(const Vec& output_grad) override;
  Matrix BatchBackward(const Matrix& output_grad) override;
  std::string Kind() const override { return "selu"; }
  size_t input_dim() const override { return dim_; }
  size_t output_dim() const override { return dim_; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Selu>(dim_);
  }

  static constexpr double kAlpha = 1.6732632423543772;
  static constexpr double kScale = 1.0507009873554805;

 protected:
  Vec DoForward(const Vec& input, bool cache) override;
  Matrix DoBatchForward(const Matrix& input, bool cache) override;
  void DoBatchInferInto(const double* input, size_t rows,
                        Matrix* out) override;

 private:
  size_t dim_;
  Vec last_input_;
  Matrix last_batch_input_;
};

/// ReLU activation (for ablations).
class Relu : public Layer {
 public:
  explicit Relu(size_t dim) : dim_(dim) {}
  Vec Backward(const Vec& output_grad) override;
  Matrix BatchBackward(const Matrix& output_grad) override;
  std::string Kind() const override { return "relu"; }
  size_t input_dim() const override { return dim_; }
  size_t output_dim() const override { return dim_; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Relu>(dim_);
  }

 protected:
  Vec DoForward(const Vec& input, bool cache) override;
  Matrix DoBatchForward(const Matrix& input, bool cache) override;
  void DoBatchInferInto(const double* input, size_t rows,
                        Matrix* out) override;

 private:
  size_t dim_;
  Vec last_input_;
  Matrix last_batch_input_;
};

/// Tanh activation (for ablations).
class Tanh : public Layer {
 public:
  explicit Tanh(size_t dim) : dim_(dim) {}
  Vec Backward(const Vec& output_grad) override;
  Matrix BatchBackward(const Matrix& output_grad) override;
  std::string Kind() const override { return "tanh"; }
  size_t input_dim() const override { return dim_; }
  size_t output_dim() const override { return dim_; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Tanh>(dim_);
  }

 protected:
  Vec DoForward(const Vec& input, bool cache) override;
  Matrix DoBatchForward(const Matrix& input, bool cache) override;
  void DoBatchInferInto(const double* input, size_t rows,
                        Matrix* out) override;

 private:
  size_t dim_;
  Vec last_output_;
  Matrix last_batch_output_;
};

}  // namespace isrl::nn

#endif  // ISRL_NN_LAYER_H_
