// Minimal CSV I/O so users can load their own tables (the public-API path a
// downstream adopter of the library would use instead of the generators).
#ifndef ISRL_DATA_CSV_H_
#define ISRL_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace isrl {

/// Reads a numeric CSV into a dataset. `has_header` = true consumes the first
/// line as attribute names. Every data row must have the same number of
/// numeric fields; malformed input yields an error Status.
Result<Dataset> ReadCsv(const std::string& path, bool has_header = true,
                        char sep = ',');

/// Writes the dataset (with a header line when attribute names are set).
Status WriteCsv(const Dataset& data, const std::string& path, char sep = ',');

}  // namespace isrl

#endif  // ISRL_DATA_CSV_H_
