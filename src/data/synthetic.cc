#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

namespace isrl {
namespace {

constexpr double kFloor = 1e-3;  // keep attributes strictly positive: (0,1]

double Clamp01(double v) { return std::min(1.0, std::max(kFloor, v)); }

// A plane-concentrated draw: coordinates sum to ≈ d·v with v peaked around
// 0.5, spread across coordinates by a symmetric Dirichlet split. High values
// in one coordinate force low values elsewhere — the classic anti-correlated
// construction.
Vec AntiCorrelatedPoint(size_t d, Rng& rng) {
  while (true) {
    // Tight plane concentration (σ = 0.12): points cluster near Σp = d/2 so
    // few points dominate each other and the skyline stays rich — the
    // defining property of the anti-correlated family.
    double v;
    do {
      v = rng.Gaussian(0.5, 0.12);
    } while (v <= 0.0 || v >= 1.0);
    Vec split = rng.SimplexUniform(d);  // Dirichlet(1,...,1)
    Vec p(d);
    bool ok = true;
    for (size_t c = 0; c < d; ++c) {
      p[c] = split[c] * v * static_cast<double>(d);
      if (p[c] > 1.0) {
        ok = false;
        break;
      }
      p[c] = std::max(kFloor, p[c]);
    }
    if (ok) return p;
  }
}

Vec CorrelatedPoint(size_t d, Rng& rng) {
  double v;
  do {
    v = rng.Gaussian(0.5, 0.25);
  } while (v <= 0.0 || v >= 1.0);
  Vec p(d);
  for (size_t c = 0; c < d; ++c) p[c] = Clamp01(v + rng.Gaussian(0.0, 0.05));
  return p;
}

Vec IndependentPoint(size_t d, Rng& rng) {
  Vec p(d);
  for (size_t c = 0; c < d; ++c) p[c] = std::max(kFloor, rng.Uniform(0.0, 1.0));
  return p;
}

}  // namespace

Dataset GenerateSynthetic(size_t n, size_t d, Distribution distribution,
                          Rng& rng) {
  ISRL_CHECK_GE(n, 1u);
  ISRL_CHECK_GE(d, 2u);
  Dataset out(d);
  for (size_t i = 0; i < n; ++i) {
    switch (distribution) {
      case Distribution::kIndependent:
        out.Add(IndependentPoint(d, rng));
        break;
      case Distribution::kCorrelated:
        out.Add(CorrelatedPoint(d, rng));
        break;
      case Distribution::kAntiCorrelated:
        out.Add(AntiCorrelatedPoint(d, rng));
        break;
    }
  }
  return out;
}

}  // namespace isrl
