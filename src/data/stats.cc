#include "data/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace isrl {

AttributeStats ComputeAttributeStats(const Dataset& data, size_t column) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_LT(column, data.dim());
  AttributeStats s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    double v = data.point(i)[column];
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(data.size());
  double var = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    double diff = data.point(i)[column] - s.mean;
    var += diff * diff;
  }
  s.stddev = std::sqrt(var / static_cast<double>(data.size()));
  return s;
}

double Covariance(const Dataset& data, size_t column_a, size_t column_b) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_LT(column_a, data.dim());
  ISRL_CHECK_LT(column_b, data.dim());
  double mean_a = ComputeAttributeStats(data, column_a).mean;
  double mean_b = ComputeAttributeStats(data, column_b).mean;
  double cov = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    cov += (data.point(i)[column_a] - mean_a) *
           (data.point(i)[column_b] - mean_b);
  }
  return cov / static_cast<double>(data.size());
}

double PearsonCorrelation(const Dataset& data, size_t column_a,
                          size_t column_b) {
  double sd_a = ComputeAttributeStats(data, column_a).stddev;
  double sd_b = ComputeAttributeStats(data, column_b).stddev;
  if (sd_a <= 0.0 || sd_b <= 0.0) return 0.0;
  return Covariance(data, column_a, column_b) / (sd_a * sd_b);
}

Matrix CorrelationMatrix(const Dataset& data) {
  const size_t d = data.dim();
  Matrix m(d, d);
  for (size_t a = 0; a < d; ++a) {
    m(a, a) = 1.0;
    for (size_t b = a + 1; b < d; ++b) {
      double r = PearsonCorrelation(data, a, b);
      m(a, b) = r;
      m(b, a) = r;
    }
  }
  return m;
}

double MeanPairwiseCorrelation(const Dataset& data) {
  const size_t d = data.dim();
  ISRL_CHECK_GE(d, 2u);
  double sum = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) {
      sum += PearsonCorrelation(data, a, b);
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

}  // namespace isrl
