#include "data/skyline.h"

#include <algorithm>
#include <numeric>

namespace isrl {

bool Dominates(const Vec& p, const Vec& q) {
  ISRL_CHECK_EQ(p.dim(), q.dim());
  bool strictly_better_somewhere = false;
  for (size_t c = 0; c < p.dim(); ++c) {
    if (p[c] < q[c]) return false;
    if (p[c] > q[c]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

std::vector<size_t> SkylineIndices(const Dataset& data) {
  const size_t n = data.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> sums(n);
  for (size_t i = 0; i < n; ++i) sums[i] = data.point(i).Sum();
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return sums[a] > sums[b]; });

  // A point can only be dominated by one with a strictly larger (or equal,
  // for duplicates) coordinate sum, i.e. one earlier in this order.
  std::vector<size_t> skyline;
  for (size_t idx : order) {
    const Vec& candidate = data.point(idx);
    bool dominated = false;
    for (size_t s : skyline) {
      if (Dominates(data.point(s), candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(idx);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

Dataset SkylineOf(const Dataset& data) {
  std::vector<size_t> indices = SkylineIndices(data);
  Dataset out(data.dim());
  if (!data.attribute_names().empty()) {
    out.set_attribute_names(data.attribute_names());
  }
  for (size_t i : indices) out.Add(data.point(i));
  return out;
}

}  // namespace isrl
