#include "data/real_like.h"

#include <algorithm>
#include <cmath>

namespace isrl {
namespace {

double ClampPositive(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

Dataset MakeCarDataset(Rng& rng, size_t rows) {
  ISRL_CHECK_GE(rows, 1u);
  Dataset raw(3);
  raw.set_attribute_names({"price", "mileage", "mpg"});
  for (size_t i = 0; i < rows; ++i) {
    // Age drives both price depreciation and accumulated mileage, producing
    // the negative price↔mileage correlation of a used-car market.
    // Annual mileage has a firm floor: cheap (old) cars always carry real
    // mileage, so no tuple is simultaneously near-best in price and mileage
    // and the three-way trade-off stays live.
    double age_years = rng.Uniform(0.5, 20.0);
    double annual_miles = ClampPositive(rng.Gaussian(12000.0, 5000.0), 4000.0,
                                        30000.0);
    // Odometer caps at 220k (junked beyond that): the cap is *reached* by
    // typical old cars, so cheap necessarily means high-mileage and the
    // price↔mileage tension is real rather than an outlier artefact.
    double mileage = std::min(220000.0,
                              age_years * annual_miles + rng.Uniform(0.0, 3000.0));
    // New-car prices live in a moderate band (8k–40k) so depreciation spreads
    // the market across the full normalised range instead of compressing it
    // near the top; no single car can be near-best for every preference.
    double base_price =
        ClampPositive(std::exp(rng.Gaussian(9.85, 0.35)), 8000.0, 40000.0);
    double price = ClampPositive(
        base_price * std::exp(-0.12 * age_years) * rng.Uniform(0.8, 1.2),
        800.0, 40000.0);
    // Economy cars (cheaper new price) tend to have higher mpg; the slope is
    // steep enough that price and mpg genuinely compete.
    double mpg = ClampPositive(
        55.0 - 22.0 * std::log(base_price / 8000.0) + rng.Gaussian(0.0, 8.0),
        10.0, 60.0);
    raw.Add(Vec{price, mileage, mpg});
  }
  // Price and mileage are smaller-is-better; mpg larger-is-better.
  return raw.Normalized({false, false, true});
}

Dataset MakePlayerDataset(Rng& rng, size_t rows) {
  ISRL_CHECK_GE(rows, 1u);
  Dataset raw(kPlayerAttributes);
  raw.set_attribute_names({
      "games", "minutes", "points", "fg_made", "fg_pct", "three_made",
      "three_pct", "ft_made", "ft_pct", "off_rebounds", "def_rebounds",
      "rebounds", "assists", "steals", "blocks", "turnovers_inv", "fouls_inv",
      "plus_minus", "usage", "efficiency"});
  for (size_t i = 0; i < rows; ++i) {
    // Latent overall skill plus a *competing* role split: the role weights
    // sum to a fixed budget (Dirichlet), so excelling as a scorer costs
    // rebounding/playmaking output. No player dominates every attribute and
    // different scout preferences surface different players.
    double skill = std::exp(rng.Gaussian(0.0, 0.35));
    Vec roles = rng.SimplexUniform(3);
    double scoring_role = 0.15 + 1.8 * roles[0];
    double rebounding_role = 0.15 + 1.8 * roles[1];
    double playmaking_role = 0.15 + 1.8 * roles[2];
    double minutes_share = ClampPositive(rng.Gaussian(0.55, 0.2), 0.15, 1.0);

    auto stat = [&](double role, double scale, double noise_sd) {
      return ClampPositive(
          skill * role * minutes_share * scale * std::exp(rng.Gaussian(0.0, noise_sd)),
          0.01, 1e6);
    };

    Vec p(kPlayerAttributes);
    p[0] = ClampPositive(rng.Gaussian(55.0, 18.0), 1.0, 82.0);       // games
    p[1] = minutes_share * 36.0;                                      // minutes
    p[2] = stat(scoring_role, 18.0, 0.25);                            // points
    p[3] = stat(scoring_role, 7.0, 0.25);                             // fg made
    p[4] = ClampPositive(rng.Gaussian(0.45, 0.06), 0.2, 0.7);         // fg%
    p[5] = stat(scoring_role, 1.8, 0.5);                              // 3pt made
    p[6] = ClampPositive(rng.Gaussian(0.34, 0.07), 0.05, 0.55);       // 3pt%
    p[7] = stat(scoring_role, 3.5, 0.35);                             // ft made
    p[8] = ClampPositive(rng.Gaussian(0.76, 0.08), 0.4, 0.95);        // ft%
    p[9] = stat(rebounding_role, 1.5, 0.4);                           // oreb
    p[10] = stat(rebounding_role, 4.5, 0.35);                         // dreb
    p[11] = p[9] + p[10];                                             // reb
    p[12] = stat(playmaking_role, 4.0, 0.4);                          // assists
    p[13] = stat(playmaking_role, 1.0, 0.4);                          // steals
    p[14] = stat(rebounding_role, 0.8, 0.6);                          // blocks
    // Turnovers/fouls are bad; generate raw counts, inverted by Normalized.
    p[15] = stat(playmaking_role, 2.0, 0.4);                          // tov
    p[16] = ClampPositive(rng.Gaussian(2.2, 0.8), 0.0, 6.0);          // fouls
    p[17] = skill * minutes_share * 6.0 + rng.Gaussian(0.0, 3.0);     // +/-
    p[18] = ClampPositive(scoring_role * skill * 0.2 +
                              rng.Gaussian(0.18, 0.05), 0.05, 0.45);  // usage
    p[19] = skill * minutes_share * 15.0 *
            std::exp(rng.Gaussian(0.0, 0.2));                         // eff
    raw.Add(std::move(p));
  }
  std::vector<bool> higher_is_better(kPlayerAttributes, true);
  higher_is_better[15] = false;  // turnovers
  higher_is_better[16] = false;  // fouls
  return raw.Normalized(higher_is_better);
}

}  // namespace isrl
