// Synthetic stand-ins for the paper's two real datasets.
//
// The paper evaluates on two Kaggle tables we cannot ship: *Car* (10,668 used
// cars: price, mileage, mpg) and *Player* (17,386 NBA player seasons, 20
// performance attributes). The experiments only ever consume the min-max
// normalised skyline of each table, so what matters for reproduction is the
// size, dimensionality, and attribute-correlation structure — which these
// generators match (see DESIGN.md §3):
//   * Car: price falls with age while mileage rises (strong negative
//     price↔mileage correlation after higher-is-better inversion the skyline
//     is rich), mpg loosely independent.
//   * Player: 20 box-score attributes driven by a shared latent skill with
//     heavy per-attribute noise and role-based specialisation (scorers vs
//     rebounders vs playmakers), giving the positively-cross-correlated but
//     specialised structure of NBA stats.
#ifndef ISRL_DATA_REAL_LIKE_H_
#define ISRL_DATA_REAL_LIKE_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace isrl {

/// Number of rows in the paper's Car dataset.
inline constexpr size_t kCarRows = 10668;
/// Number of rows in the paper's Player dataset.
inline constexpr size_t kPlayerRows = 17386;
/// Number of attributes in the paper's Player dataset.
inline constexpr size_t kPlayerAttributes = 20;

/// Car-like dataset: `rows` tuples with attributes (price, mileage, mpg),
/// already normalised to (0,1] with higher-is-better orientation (cheap, low
/// mileage, high mpg are large values).
Dataset MakeCarDataset(Rng& rng, size_t rows = kCarRows);

/// Player-like dataset: `rows` tuples with 20 performance attributes
/// normalised to (0,1], higher is better.
Dataset MakePlayerDataset(Rng& rng, size_t rows = kPlayerRows);

}  // namespace isrl

#endif  // ISRL_DATA_REAL_LIKE_H_
