// Dataset statistics: attribute summaries and cross-attribute correlation.
// Used to validate that the synthetic generators actually have the
// correlation structure the experiments assume (anti-correlated synthetic,
// the Car price↔mileage trade-off, the Player role structure).
#ifndef ISRL_DATA_STATS_H_
#define ISRL_DATA_STATS_H_

#include <cstddef>

#include "common/matrix.h"
#include "data/dataset.h"

namespace isrl {

/// Per-attribute summary over a dataset.
struct AttributeStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Summary of attribute `column` (dataset must be non-empty).
AttributeStats ComputeAttributeStats(const Dataset& data, size_t column);

/// Sample covariance between two attributes (dataset must be non-empty).
double Covariance(const Dataset& data, size_t column_a, size_t column_b);

/// Pearson correlation in [-1, 1]; 0 when either attribute is constant.
double PearsonCorrelation(const Dataset& data, size_t column_a,
                          size_t column_b);

/// Full d×d Pearson correlation matrix.
Matrix CorrelationMatrix(const Dataset& data);

/// Mean pairwise correlation across distinct attribute pairs — a scalar
/// fingerprint of the correlation family (negative for anti-correlated,
/// positive for correlated, ≈ 0 for independent).
double MeanPairwiseCorrelation(const Dataset& data);

}  // namespace isrl

#endif  // ISRL_DATA_STATS_H_
