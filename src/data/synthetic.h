// Synthetic dataset generators in the style of the skyline-operator
// benchmark generator of Börzsönyi et al., which the paper (following
// Xie et al., SIGMOD'19) uses for its synthetic experiments. The paper's
// synthetic results all use the anti-correlated distribution.
#ifndef ISRL_DATA_SYNTHETIC_H_
#define ISRL_DATA_SYNTHETIC_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace isrl {

/// Attribute-correlation families from the skyline literature.
enum class Distribution {
  kIndependent,     ///< attributes i.i.d. uniform on (0,1]
  kCorrelated,      ///< good in one attribute ⇒ good in the others
  kAntiCorrelated,  ///< good in one attribute ⇒ bad in the others (skyline-rich)
};

/// Generates n points over d attributes in (0,1]. Deterministic given `rng`'s
/// state.
Dataset GenerateSynthetic(size_t n, size_t d, Distribution distribution,
                          Rng& rng);

}  // namespace isrl

#endif  // ISRL_DATA_SYNTHETIC_H_
