// Skyline (Pareto-optimal subset) computation.
//
// Following Xie et al. (SIGMOD'19), the paper preprocesses every dataset to
// its skyline — exactly the points that can be top-1 for some non-negative
// utility vector — before any interaction. We use sort-filter-skyline:
// points sorted by descending coordinate sum are compared only against the
// skyline found so far (a point later in the order can never dominate an
// earlier one).
#ifndef ISRL_DATA_SKYLINE_H_
#define ISRL_DATA_SKYLINE_H_

#include <vector>

#include "data/dataset.h"

namespace isrl {

/// True iff p dominates q: p ≥ q in every attribute and p > q in at least
/// one (larger is better).
bool Dominates(const Vec& p, const Vec& q);

/// Indices of the skyline points of `data`, in input order.
std::vector<size_t> SkylineIndices(const Dataset& data);

/// The skyline as a new dataset (attribute names preserved).
Dataset SkylineOf(const Dataset& data);

}  // namespace isrl

#endif  // ISRL_DATA_SKYLINE_H_
