#include "data/dataset.h"

#include <algorithm>
#include <limits>

namespace isrl {

Dataset::Dataset(std::vector<Vec> points) : dim_(0), points_(std::move(points)) {
  ISRL_CHECK(!points_.empty());
  dim_ = points_[0].dim();
  for (const Vec& p : points_) ISRL_CHECK_EQ(p.dim(), dim_);
}

void Dataset::Add(Vec p) {
  ISRL_CHECK_EQ(p.dim(), dim_);
  points_.push_back(std::move(p));
}

void Dataset::set_attribute_names(std::vector<std::string> names) {
  ISRL_CHECK_EQ(names.size(), dim_);
  names_ = std::move(names);
}

size_t Dataset::TopIndex(const Vec& u) const {
  ISRL_CHECK(!points_.empty());
  size_t best = 0;
  double best_utility = Dot(u, points_[0]);
  for (size_t i = 1; i < points_.size(); ++i) {
    double utility = Dot(u, points_[i]);
    if (utility > best_utility) {
      best_utility = utility;
      best = i;
    }
  }
  return best;
}

double Dataset::TopUtility(const Vec& u) const {
  return Dot(u, points_[TopIndex(u)]);
}

Dataset Dataset::Normalized(const std::vector<bool>& higher_is_better,
                            double floor) const {
  ISRL_CHECK(!points_.empty());
  ISRL_CHECK_GT(floor, 0.0);
  ISRL_CHECK_LT(floor, 1.0);
  if (!higher_is_better.empty()) {
    ISRL_CHECK_EQ(higher_is_better.size(), dim_);
  }

  Vec lo(dim_, std::numeric_limits<double>::infinity());
  Vec hi(dim_, -std::numeric_limits<double>::infinity());
  for (const Vec& p : points_) {
    for (size_t c = 0; c < dim_; ++c) {
      lo[c] = std::min(lo[c], p[c]);
      hi[c] = std::max(hi[c], p[c]);
    }
  }

  Dataset out(dim_);
  out.names_ = names_;
  for (const Vec& p : points_) {
    Vec q(dim_);
    for (size_t c = 0; c < dim_; ++c) {
      double range = hi[c] - lo[c];
      double t = range > 0.0 ? (p[c] - lo[c]) / range : 1.0;
      bool invert = !higher_is_better.empty() && !higher_is_better[c];
      if (invert) t = 1.0 - t;
      q[c] = floor + (1.0 - floor) * t;
    }
    out.Add(std::move(q));
  }
  return out;
}

}  // namespace isrl
