// In-memory point set D: n tuples over d attributes, each attribute
// normalised to (0,1] with larger-is-better semantics (Section III).
#ifndef ISRL_DATA_DATASET_H_
#define ISRL_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/vec.h"

namespace isrl {

/// A dataset of d-dimensional points. Points are stored by value; algorithms
/// reference them by index so questions can be reported as tuple ids.
class Dataset {
 public:
  /// Empty dataset over `dim` attributes.
  explicit Dataset(size_t dim) : dim_(dim) {}

  /// Dataset adopting the given points (all must share one dimension).
  explicit Dataset(std::vector<Vec> points);

  /// Appends a point (dimension must match).
  void Add(Vec p);

  size_t size() const { return points_.size(); }
  size_t dim() const { return dim_; }
  bool empty() const { return points_.empty(); }

  const Vec& point(size_t i) const {
    ISRL_CHECK_LT(i, points_.size());
    return points_[i];
  }
  const std::vector<Vec>& points() const { return points_; }

  /// Optional attribute names (empty when unset; size dim() when set).
  const std::vector<std::string>& attribute_names() const { return names_; }
  void set_attribute_names(std::vector<std::string> names);

  /// Index of the point with the highest utility w.r.t. `u` (first on ties).
  /// Dataset must be non-empty.
  size_t TopIndex(const Vec& u) const;

  /// The highest utility max_p f_u(p). Dataset must be non-empty.
  double TopUtility(const Vec& u) const;

  /// Returns a copy min-max normalised per attribute to [floor, 1], where
  /// `floor` > 0 keeps values inside the paper's (0,1] domain. Attributes
  /// flagged false in `higher_is_better` are inverted first (so that after
  /// normalisation a large value is always preferred); an empty flag vector
  /// means all attributes are higher-is-better. Constant attributes map to 1.
  Dataset Normalized(const std::vector<bool>& higher_is_better = {},
                     double floor = 1e-3) const;

 private:
  size_t dim_;
  std::vector<Vec> points_;
  std::vector<std::string> names_;
};

}  // namespace isrl

#endif  // ISRL_DATA_DATASET_H_
