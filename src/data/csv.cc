#include "data/csv.h"

#include <fstream>

#include "common/strings.h"

namespace isrl {

Result<Dataset> ReadCsv(const std::string& path, bool has_header, char sep) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);

  std::string line;
  std::vector<std::string> names;
  if (has_header) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("empty file: " + path);
    }
    for (const std::string& field : Split(Trim(line), sep)) {
      names.push_back(Trim(field));
    }
  }

  std::vector<Vec> points;
  size_t dim = names.size();
  size_t line_no = has_header ? 1 : 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> fields = Split(trimmed, sep);
    if (dim == 0) dim = fields.size();
    if (fields.size() != dim) {
      return Status::InvalidArgument(
          Format("%s:%zu: expected %zu fields, got %zu", path.c_str(), line_no,
                 dim, fields.size()));
    }
    Vec p(dim);
    for (size_t c = 0; c < dim; ++c) {
      if (!ParseDouble(fields[c], &p[c])) {
        return Status::InvalidArgument(
            Format("%s:%zu: field %zu is not numeric: '%s'", path.c_str(),
                   line_no, c, fields[c].c_str()));
      }
    }
    points.push_back(std::move(p));
  }
  if (points.empty()) return Status::InvalidArgument("no data rows: " + path);

  Dataset out(std::move(points));
  if (!names.empty()) out.set_attribute_names(std::move(names));
  return out;
}

Status WriteCsv(const Dataset& data, const std::string& path, char sep) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  if (!data.attribute_names().empty()) {
    for (size_t c = 0; c < data.dim(); ++c) {
      if (c > 0) out << sep;
      out << data.attribute_names()[c];
    }
    out << "\n";
  }
  for (size_t i = 0; i < data.size(); ++i) {
    const Vec& p = data.point(i);
    for (size_t c = 0; c < data.dim(); ++c) {
      if (c > 0) out << sep;
      out << Format("%.17g", p[c]);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace isrl
