// UH-Random (SIGMOD'19): random question selection over the candidate set —
// the paper's designated state-of-the-art baseline.
#ifndef ISRL_BASELINES_UH_RANDOM_H_
#define ISRL_BASELINES_UH_RANDOM_H_

#include "baselines/uh_base.h"

namespace isrl {

/// Each round: draw random candidate pairs until one is informative (its
/// hyper-plane cuts R).
class UhRandom : public UhBase {
 public:
  UhRandom(const Dataset& data, const UhOptions& options)
      : UhBase(data, options) {}

  std::string name() const override { return "UH-Random"; }

  std::unique_ptr<InteractiveAlgorithm> CloneForEval() const override {
    return std::make_unique<UhRandom>(*this);
  }

 protected:
  std::optional<Question> SelectQuestion(const std::vector<size_t>& candidates,
                                         const Polyhedron& range,
                                         Rng& rng) override;
};

}  // namespace isrl

#endif  // ISRL_BASELINES_UH_RANDOM_H_
