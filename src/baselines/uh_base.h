// Shared framework of the UH-family baselines (Xie, Wong, Lall — SIGMOD'19:
// "Strongly truthful interactive regret minimization").
//
// Both UH-Random and UH-Simplex maintain the utility range R as an explicit
// polyhedron and a candidate set C of points that can still be the best
// within R. Each round a question over C is chosen (randomly vs greedily —
// the only difference between the two), R is cut by the answer, and
// candidates that some other candidate beats everywhere in R are pruned.
// The interaction stops when the candidate set is resolved — one candidate
// left, or the survivors are indistinguishable within R. Matching the ISRL
// paper's observation that these short-term baselines "needed almost the
// same number of interactive rounds, regardless of the value of ε", the
// threshold plays no role during the interaction; the resolved candidate
// over-satisfies any ε.
#ifndef ISRL_BASELINES_UH_BASE_H_
#define ISRL_BASELINES_UH_BASE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/algorithm.h"
#include "data/dataset.h"
#include "geometry/polyhedron.h"

namespace isrl {

/// Configuration shared by UH-Random and UH-Simplex.
struct UhOptions {
  double epsilon = 0.1;
  size_t max_rounds = 2000;        ///< safety cap
  size_t selection_attempts = 64;  ///< tries to find an informative question
  uint64_t seed = 42;
};

/// Base implementation; subclasses provide the question-selection policy.
class UhBase : public InteractiveAlgorithm {
 public:
  UhBase(const Dataset& data, const UhOptions& options);

  /// Reseeds the question-selection Rng (per-user derived seed during
  /// evaluation; see core/session.cc). CloneForEval lives in the leaf
  /// classes, which know their concrete type.
  void Reseed(uint64_t seed) override { rng_ = Rng(seed); }

  /// Hardened UH loop as a resumable sans-IO session (DESIGN.md §13):
  /// conflicting (noisy) answers are dropped rather than emptying R,
  /// unanswered questions are skipped, and the config's budget caps rounds
  /// and wall-clock time.
  std::unique_ptr<InteractionSession> StartSession(
      const SessionConfig& config) override;

  /// Reopens a checkpointed UH session (DESIGN.md §14). UH-Random and
  /// UH-Simplex share the frame layout; the leaf algorithm's name() is part
  /// of the snapshot, so a UH-Random snapshot cannot restore under
  /// UH-Simplex (different future question policy) — that mismatch is a
  /// FailedPrecondition.
  Result<std::unique_ptr<InteractionSession>> RestoreSession(
      const std::string& bytes, const SessionConfig& config) override;

 protected:
  /// Selects the next question over `candidates`; questions whose hyper-plane
  /// does not cut R are useless, so implementations should prefer pairs for
  /// which IsInformative() holds. Returns nullopt to give up (no informative
  /// pair found), which ends the interaction.
  virtual std::optional<Question> SelectQuestion(
      const std::vector<size_t>& candidates, const Polyhedron& range,
      Rng& rng) = 0;

  /// True when the pair's hyper-plane strictly separates R's vertices (both
  /// answers are possible — the question yields information).
  bool IsInformative(const Question& q, const Polyhedron& range) const;

  const Dataset& data_;
  UhOptions options_;

 private:
  class Session;

  /// Removes candidates that `winner` beats at every vertex of R.
  void PruneCandidates(std::vector<size_t>* candidates, size_t winner,
                       const Polyhedron& range) const;
  /// O(|C|²) pairwise prune: keeps, in centroid-utility order, only
  /// candidates not beaten everywhere in R by an already-kept one. Run when
  /// question selection stalls.
  void FullPrune(std::vector<size_t>* candidates, const Polyhedron& range) const;

  Rng rng_;
};

}  // namespace isrl

#endif  // ISRL_BASELINES_UH_BASE_H_
