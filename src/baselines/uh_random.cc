#include "baselines/uh_random.h"

namespace isrl {

std::optional<Question> UhRandom::SelectQuestion(
    const std::vector<size_t>& candidates, const Polyhedron& range, Rng& rng) {
  if (candidates.size() < 2) return std::nullopt;
  for (size_t attempt = 0; attempt < options_.selection_attempts; ++attempt) {
    std::vector<size_t> picked = rng.SampleIndices(candidates.size(), 2);
    Question q{candidates[picked[0]], candidates[picked[1]]};
    if (IsInformative(q, range)) return q;
  }
  return std::nullopt;
}

}  // namespace isrl
