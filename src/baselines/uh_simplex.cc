#include "baselines/uh_simplex.h"

#include <algorithm>

namespace isrl {

std::optional<Question> UhSimplex::SelectQuestion(
    const std::vector<size_t>& candidates, const Polyhedron& range, Rng& rng) {
  if (candidates.size() < 2) return std::nullopt;

  // Rank candidates by utility w.r.t. R's centroid, descending.
  Vec centroid = range.Centroid();
  std::vector<size_t> ranked = candidates;
  std::sort(ranked.begin(), ranked.end(), [&](size_t a, size_t b) {
    return Dot(centroid, data_.point(a)) > Dot(centroid, data_.point(b));
  });

  // Walk pairs in likely-best order until one is informative.
  const size_t limit = std::min(ranked.size(), options_.selection_attempts);
  for (size_t a = 0; a < limit; ++a) {
    for (size_t b = a + 1; b < limit; ++b) {
      Question q{ranked[a], ranked[b]};
      if (IsInformative(q, range)) return q;
    }
  }

  // Fall back to random informative pairs.
  for (size_t attempt = 0; attempt < options_.selection_attempts; ++attempt) {
    std::vector<size_t> picked = rng.SampleIndices(candidates.size(), 2);
    Question q{candidates[picked[0]], candidates[picked[1]]};
    if (IsInformative(q, range)) return q;
  }
  return std::nullopt;
}

}  // namespace isrl
