// UtilityApprox (Nanongkai et al. — SIGMOD'12: "Interactive regret
// minimization"), the fake-tuple baseline discussed in the paper's related
// work (implemented here as an extension; the paper itself does not
// benchmark it because its artificial tuples may not exist in D).
//
// Each round compares two *constructed* points that pit one attribute
// against a reference attribute, so the answer bisects the feasible range of
// the utility ratio u[c]/u[0]. When every ratio interval is narrow — checked
// with the same outer-rectangle certificate used elsewhere — the top point
// w.r.t. the estimated utility vector is returned.
#ifndef ISRL_BASELINES_UTILITY_APPROX_H_
#define ISRL_BASELINES_UTILITY_APPROX_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/aa_state.h"
#include "core/algorithm.h"
#include "data/dataset.h"

namespace isrl {

/// Configuration for UtilityApprox.
struct UtilityApproxOptions {
  double epsilon = 0.1;
  size_t max_rounds = 500;
  double max_ratio = 64.0;  ///< search window for u[c]/u[0]
  uint64_t seed = 42;
};

/// The UtilityApprox baseline.
class UtilityApprox : public InteractiveAlgorithm {
 public:
  UtilityApprox(const Dataset& data, const UtilityApproxOptions& options);

  std::string name() const override { return "UtilityApprox"; }

  // Fully deterministic (no internal Rng): the inherited no-op Reseed is
  // correct, and cloning is a plain copy.
  std::unique_ptr<InteractiveAlgorithm> CloneForEval() const override {
    return std::make_unique<UtilityApprox>(*this);
  }

  /// The ratio-bisection loop as a resumable sans-IO session (DESIGN.md
  /// §13). Questions compare constructed points (SessionQuestion::synthetic)
  /// — the step API carries the point vectors, not dataset indices.
  std::unique_ptr<InteractionSession> StartSession(
      const SessionConfig& config) override;

  /// Reopens a checkpointed UtilityApprox session (DESIGN.md §14). The
  /// algorithm is deterministic, so the snapshot carries no Rng — just the
  /// ratio intervals, the learned half-spaces, and the bisection cursors.
  Result<std::unique_ptr<InteractionSession>> RestoreSession(
      const std::string& bytes, const SessionConfig& config) override;

 private:
  class Session;

  const Dataset& data_;
  UtilityApproxOptions options_;
};

}  // namespace isrl

#endif  // ISRL_BASELINES_UTILITY_APPROX_H_
