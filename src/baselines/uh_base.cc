#include "baselines/uh_base.h"

#include <algorithm>
#include <numeric>

#include "common/stopwatch.h"
#include "core/snapshot.h"
#include "geometry/halfspace.h"

namespace isrl {

namespace {
constexpr char kUhSnapshotKind[] = "uh-session";
constexpr uint32_t kUhSnapshotVersion = 1;
}  // namespace

UhBase::UhBase(const Dataset& data, const UhOptions& options)
    : data_(data), options_(options), rng_(options.seed) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GT(options.epsilon, 0.0);
  ISRL_CHECK_LT(options.epsilon, 1.0);
}

bool UhBase::IsInformative(const Question& q, const Polyhedron& range) const {
  Halfspace h = PreferenceHalfspace(data_.point(q.i), data_.point(q.j));
  if (h.normal.Norm() < 1e-12) return false;
  bool positive = false, negative = false;
  for (const Vec& v : range.vertices()) {
    double margin = h.Margin(v);
    if (margin > 1e-9) positive = true;
    if (margin < -1e-9) negative = true;
    if (positive && negative) return true;
  }
  return false;
}

void UhBase::PruneCandidates(std::vector<size_t>* candidates, size_t winner,
                             const Polyhedron& range) const {
  const Vec& w = data_.point(winner);
  auto beaten_everywhere = [&](size_t q) {
    if (q == winner) return false;
    const Vec& p = data_.point(q);
    for (const Vec& v : range.vertices()) {
      if (Dot(v, w - p) < 0.0) return false;
    }
    return true;
  };
  candidates->erase(
      std::remove_if(candidates->begin(), candidates->end(), beaten_everywhere),
      candidates->end());
}

void UhBase::FullPrune(std::vector<size_t>* candidates,
                       const Polyhedron& range) const {
  // Order by utility at the centroid so the likely winner is kept first;
  // keep-first semantics makes ties collapse onto one survivor.
  Vec centroid = range.Centroid();
  std::vector<size_t> ordered = *candidates;
  std::sort(ordered.begin(), ordered.end(), [&](size_t a, size_t b) {
    return Dot(centroid, data_.point(a)) > Dot(centroid, data_.point(b));
  });
  std::vector<size_t> kept;
  for (size_t q : ordered) {
    const Vec& pq = data_.point(q);
    bool beaten = false;
    for (size_t p : kept) {
      const Vec& pp = data_.point(p);
      beaten = true;
      for (const Vec& v : range.vertices()) {
        if (Dot(v, pp - pq) < 0.0) {
          beaten = false;
          break;
        }
      }
      if (beaten) break;
    }
    if (!beaten) kept.push_back(q);
  }
  *candidates = std::move(kept);
}

// The hardened UH loop inverted into a sans-IO state machine (DESIGN.md
// §13). Prepare() is the old loop top — budget/deadline guard, best
// recompute, resolution check, question selection with the FullPrune
// fallback — and PostAnswer() the loop body, in the original order, so
// stepped episodes are bit-identical to Interact().
class UhBase::Session final : public InteractionSession {
 public:
  Session(UhBase& owner, const SessionConfig& config)
      : owner_(owner),
        trace_(config.trace),
        max_rounds_(config.budget.EffectiveMaxRounds(owner.options_.max_rounds)),
        deadline_(Deadline::FromBudget(config.budget)),
        owned_rng_(config.seed ? std::optional<Rng>(Rng(*config.seed))
                               : std::nullopt),
        range_(Polyhedron::UnitSimplex(owner.data_.dim())),
        candidates_(owner.data_.size()) {
    std::iota(candidates_.begin(), candidates_.end(), 0);
    best_ = owner_.data_.TopIndex(range_.Centroid());
    Prepare();
  }

  std::optional<SessionQuestion> NextQuestion() override {
    if (finished_) return std::nullopt;
    return question_;
  }

  void PostAnswer(Answer answer) override {
    ISRL_CHECK(asking_);
    asking_ = false;
    const Question q = question_.pair;
    ++result_.rounds;
    if (answer == Answer::kNoAnswer) {
      // Timed-out question: learn nothing (selection is stochastic, so the
      // next round tries a different pair).
      ++result_.no_answers;
      RecordRound();
      Prepare();
      return;
    }
    const bool prefers_i = answer == Answer::kFirst;
    const size_t winner = prefers_i ? q.i : q.j;
    const size_t loser = prefers_i ? q.j : q.i;
    if (!range_.TryCut(PreferenceHalfspace(owner_.data_.point(winner),
                                           owner_.data_.point(loser)))) {
      // Contradictory answer (noisy user): dropping it — the minimal
      // most-recent conflicting suffix — keeps R non-empty.
      ++result_.dropped_answers;
      RecordRound();
      Prepare();
      return;
    }

    owner_.PruneCandidates(&candidates_, winner, range_);
    best_ = owner_.data_.TopIndex(range_.Centroid());
    owner_.PruneCandidates(&candidates_, best_, range_);
    RecordRound();
    Prepare();
  }

  void Cancel() override {
    if (finished_) return;
    result_.best_index = best_;
    result_.termination = Termination::kBudgetExhausted;
    result_.seconds += watch_.ElapsedSeconds();
    asking_ = false;
    finished_ = true;
  }

  bool Finished() const override { return finished_; }

  InteractionResult Finish() override {
    ISRL_CHECK(finished_);
    InteractionResult result = result_;
    result.converged = result.termination == Termination::kConverged;
    return result;
  }

  // ---- Durability (DESIGN.md §14). ---------------------------------------

  /// Tag ctor for RestoreSession (see Ea::Session::RestoreTag).
  struct RestoreTag {};
  Session(UhBase& owner, InteractionTrace* trace, RestoreTag)
      : owner_(owner),
        trace_(trace),
        max_rounds_(0),
        owned_rng_(std::nullopt),
        range_(Polyhedron::UnitSimplex(owner.data_.dim())) {}

  Result<std::string> SaveState() const override {
    snapshot::Writer w;
    snapshot::SessionCore core;
    core.algorithm = owner_.name();
    core.data_size = owner_.data_.size();
    core.data_dim = owner_.data_.dim();
    core.result = result_;
    if (!finished_) core.result.seconds += watch_.ElapsedSeconds();
    core.max_rounds = max_rounds_;
    core.deadline = deadline_;
    core.stage =
        finished_ ? snapshot::kStageFinished : snapshot::kStageAsking;
    core.question = question_;
    core.has_rng = true;
    core.rng = rng();
    core.trace = trace_;
    snapshot::EncodeSessionCore(core, &w);
    snapshot::EncodePolyhedron(range_, &w);
    snapshot::EncodeIndexVector(candidates_, &w);
    w.U64(best_);
    w.Bool(resolved_);
    return snapshot::WrapFrame(kUhSnapshotKind, kUhSnapshotVersion, w.Take());
  }

  Status Decode(const std::string& payload) {
    snapshot::Reader r(payload);
    snapshot::SessionCore core;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeSessionCore(&r, &core));
    ISRL_RETURN_IF_ERROR(snapshot::ValidateSessionCore(
        core, owner_.name(), owner_.data_.size(), owner_.data_.dim()));
    if (!core.has_rng) {
      return Status::InvalidArgument("UH snapshot: missing rng state");
    }
    if (core.stage == snapshot::kStageScoring) {
      return Status::InvalidArgument(
          "UH snapshot: scoring stage is not part of the UH protocol");
    }
    const size_t n = owner_.data_.size();
    Result<Polyhedron> range = snapshot::DecodePolyhedron(&r);
    ISRL_RETURN_IF_ERROR(range.status());
    if (range->dim() != owner_.data_.dim()) {
      return Status::InvalidArgument(
          "UH snapshot: polyhedron dimension does not match the dataset");
    }
    std::vector<size_t> candidates;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeIndexVector(&r, &candidates, n));
    const uint64_t best = r.U64();
    const bool resolved = r.Bool();
    ISRL_RETURN_IF_ERROR(r.status());
    if (!r.AtEnd()) {
      return Status::InvalidArgument("UH snapshot: trailing payload bytes");
    }
    if (best >= n) {
      return Status::InvalidArgument(
          "UH snapshot: recommendation index out of dataset range");
    }
    if (core.stage == snapshot::kStageAsking &&
        (core.question.pair.i >= n || core.question.pair.j >= n)) {
      return Status::InvalidArgument(
          "UH snapshot: in-flight question index out of dataset range");
    }

    result_ = core.result;
    max_rounds_ = static_cast<size_t>(core.max_rounds);
    deadline_ = core.deadline;
    owned_rng_ = core.rng;
    if (core.has_trace && trace_ != nullptr) {
      trace_->RestoreHistory(std::move(core.trace_max_regret),
                             std::move(core.trace_seconds),
                             std::move(core.trace_best_index));
    }
    range_ = std::move(range.value());
    candidates_ = std::move(candidates);
    best_ = static_cast<size_t>(best);
    resolved_ = resolved;
    question_ = core.question;
    finished_ = core.stage == snapshot::kStageFinished;
    asking_ = core.stage == snapshot::kStageAsking;
    watch_.Restart();
    return Status::Ok();
  }

 private:
  void Prepare() {
    if (result_.rounds >= max_rounds_ || deadline_.Expired()) {
      Terminate();
      return;
    }
    best_ = candidates_.size() == 1 ? candidates_[0]
                                    : owner_.data_.TopIndex(range_.Centroid());
    if (candidates_.size() <= 1) {
      resolved_ = true;
      Terminate();
      return;
    }

    std::optional<Question> q =
        owner_.SelectQuestion(candidates_, range_, rng());
    if (!q.has_value()) {
      // Selection stalled: collapse candidates that R already resolves. If
      // survivors are still plural they are indistinguishable within R (no
      // informative question exists) — that is full resolution too.
      owner_.FullPrune(&candidates_, range_);
      if (candidates_.size() > 1) {
        q = owner_.SelectQuestion(candidates_, range_, rng());
      }
      if (!q.has_value()) {
        resolved_ = true;
        Terminate();
        return;
      }
    }
    question_.first = owner_.data_.point(q->i);
    question_.second = owner_.data_.point(q->j);
    question_.pair = *q;
    question_.synthetic = false;
    asking_ = true;
  }

  void RecordRound() {
    if (trace_ == nullptr) return;
    const double elapsed = watch_.ElapsedSeconds();
    std::vector<Vec> consistent;
    if (!range_.IsEmpty()) {
      consistent.reserve(trace_->regret_samples());
      for (size_t s = 0; s < trace_->regret_samples(); ++s) {
        consistent.push_back(range_.SampleInterior(trace_->rng()));
      }
    }
    trace_->Record(best_, consistent, elapsed);
    watch_.Restart();
    result_.seconds += elapsed;
  }

  void Terminate() {
    result_.best_index = best_;
    if (resolved_) {
      result_.termination = result_.dropped_answers > 0
                                ? Termination::kDegraded
                                : Termination::kConverged;
    } else {
      result_.termination = Termination::kBudgetExhausted;
    }
    result_.seconds += watch_.ElapsedSeconds();
    asking_ = false;
    finished_ = true;
  }

  Rng& rng() { return owned_rng_ ? *owned_rng_ : owner_.rng_; }
  const Rng& rng() const { return owned_rng_ ? *owned_rng_ : owner_.rng_; }

  UhBase& owner_;
  InteractionTrace* trace_;
  InteractionResult result_;
  Stopwatch watch_;
  size_t max_rounds_;
  Deadline deadline_;
  std::optional<Rng> owned_rng_;

  Polyhedron range_;
  std::vector<size_t> candidates_;
  size_t best_ = 0;
  bool resolved_ = false;

  SessionQuestion question_;
  bool asking_ = false;
  bool finished_ = false;
};

std::unique_ptr<InteractionSession> UhBase::StartSession(
    const SessionConfig& config) {
  return std::make_unique<Session>(*this, config);
}

Result<std::unique_ptr<InteractionSession>> UhBase::RestoreSession(
    const std::string& bytes, const SessionConfig& config) {
  ISRL_ASSIGN_OR_RETURN(
      std::string payload,
      snapshot::UnwrapFrame(kUhSnapshotKind, kUhSnapshotVersion, bytes));
  auto session =
      std::make_unique<Session>(*this, config.trace, Session::RestoreTag{});
  ISRL_RETURN_IF_ERROR(session->Decode(payload));
  return std::unique_ptr<InteractionSession>(std::move(session));
}

}  // namespace isrl
