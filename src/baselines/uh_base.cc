#include "baselines/uh_base.h"

#include <algorithm>
#include <numeric>

#include "common/stopwatch.h"
#include "geometry/halfspace.h"

namespace isrl {

UhBase::UhBase(const Dataset& data, const UhOptions& options)
    : data_(data), options_(options), rng_(options.seed) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GT(options.epsilon, 0.0);
  ISRL_CHECK_LT(options.epsilon, 1.0);
}

bool UhBase::IsInformative(const Question& q, const Polyhedron& range) const {
  Halfspace h = PreferenceHalfspace(data_.point(q.i), data_.point(q.j));
  if (h.normal.Norm() < 1e-12) return false;
  bool positive = false, negative = false;
  for (const Vec& v : range.vertices()) {
    double margin = h.Margin(v);
    if (margin > 1e-9) positive = true;
    if (margin < -1e-9) negative = true;
    if (positive && negative) return true;
  }
  return false;
}

void UhBase::PruneCandidates(std::vector<size_t>* candidates, size_t winner,
                             const Polyhedron& range) const {
  const Vec& w = data_.point(winner);
  auto beaten_everywhere = [&](size_t q) {
    if (q == winner) return false;
    const Vec& p = data_.point(q);
    for (const Vec& v : range.vertices()) {
      if (Dot(v, w - p) < 0.0) return false;
    }
    return true;
  };
  candidates->erase(
      std::remove_if(candidates->begin(), candidates->end(), beaten_everywhere),
      candidates->end());
}

void UhBase::FullPrune(std::vector<size_t>* candidates,
                       const Polyhedron& range) const {
  // Order by utility at the centroid so the likely winner is kept first;
  // keep-first semantics makes ties collapse onto one survivor.
  Vec centroid = range.Centroid();
  std::vector<size_t> ordered = *candidates;
  std::sort(ordered.begin(), ordered.end(), [&](size_t a, size_t b) {
    return Dot(centroid, data_.point(a)) > Dot(centroid, data_.point(b));
  });
  std::vector<size_t> kept;
  for (size_t q : ordered) {
    const Vec& pq = data_.point(q);
    bool beaten = false;
    for (size_t p : kept) {
      const Vec& pp = data_.point(p);
      beaten = true;
      for (const Vec& v : range.vertices()) {
        if (Dot(v, pp - pq) < 0.0) {
          beaten = false;
          break;
        }
      }
      if (beaten) break;
    }
    if (!beaten) kept.push_back(q);
  }
  *candidates = std::move(kept);
}

InteractionResult UhBase::DoInteract(InteractionContext& ctx) {
  InteractionResult result;
  Stopwatch watch;
  const size_t max_rounds = ctx.MaxRounds(options_.max_rounds);

  Polyhedron range = Polyhedron::UnitSimplex(data_.dim());
  std::vector<size_t> candidates(data_.size());
  std::iota(candidates.begin(), candidates.end(), 0);

  auto record_round = [&](size_t best) {
    if (ctx.trace == nullptr) return;
    const double elapsed = watch.ElapsedSeconds();
    std::vector<Vec> consistent;
    if (!range.IsEmpty()) {
      consistent.reserve(ctx.trace->regret_samples());
      for (size_t s = 0; s < ctx.trace->regret_samples(); ++s) {
        consistent.push_back(range.SampleInterior(ctx.trace->rng()));
      }
    }
    ctx.trace->Record(best, consistent, elapsed);
    watch.Restart();
    result.seconds += elapsed;
  };

  size_t best = data_.TopIndex(range.Centroid());
  bool resolved = false;
  while (result.rounds < max_rounds && !ctx.DeadlineExpired()) {
    best = candidates.size() == 1 ? candidates[0]
                                  : data_.TopIndex(range.Centroid());
    if (candidates.size() <= 1) {
      resolved = true;
      break;
    }

    std::optional<Question> q = SelectQuestion(candidates, range, rng_);
    if (!q.has_value()) {
      // Selection stalled: collapse candidates that R already resolves. If
      // survivors are still plural they are indistinguishable within R (no
      // informative question exists) — that is full resolution too.
      FullPrune(&candidates, range);
      if (candidates.size() > 1) q = SelectQuestion(candidates, range, rng_);
      if (!q.has_value()) {
        resolved = true;
        break;
      }
    }

    const Answer answer = ctx.user.Ask(data_.point(q->i), data_.point(q->j));
    ++result.rounds;
    if (answer == Answer::kNoAnswer) {
      // Timed-out question: learn nothing (selection is stochastic, so the
      // next round tries a different pair).
      ++result.no_answers;
      record_round(best);
      continue;
    }
    const bool prefers_i = answer == Answer::kFirst;
    const size_t winner = prefers_i ? q->i : q->j;
    const size_t loser = prefers_i ? q->j : q->i;
    if (!range.TryCut(
            PreferenceHalfspace(data_.point(winner), data_.point(loser)))) {
      // Contradictory answer (noisy user): dropping it — the minimal
      // most-recent conflicting suffix — keeps R non-empty.
      ++result.dropped_answers;
      record_round(best);
      continue;
    }

    PruneCandidates(&candidates, winner, range);
    best = data_.TopIndex(range.Centroid());
    PruneCandidates(&candidates, best, range);
    record_round(best);
  }

  result.best_index = best;
  if (resolved) {
    result.termination = result.dropped_answers > 0 ? Termination::kDegraded
                                                    : Termination::kConverged;
  } else {
    result.termination = Termination::kBudgetExhausted;
  }
  result.seconds += watch.ElapsedSeconds();
  return result;
}

}  // namespace isrl
