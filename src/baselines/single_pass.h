// SinglePass (Zhang, Tatti, Gionis — KDD'23: "Finding favourite tuples on
// data streams with provably few comparisons").
//
// A streaming champion algorithm: points arrive in a random (predefined)
// order and the incoming point challenges the current champion unless a
// cheap rule-based filter proves the comparison redundant. Matching the
// ICDE paper's characterisation — SinglePass trades information per round
// for speed — it builds no polyhedron and solves no LPs: its whole learned
// state is the half-space list plus a particle set of consistent utility
// vectors (replenished by hit-and-run). The filter skips a challenger p iff
//     max_{u ∈ rect} u·(p − champion) ≤ 0
// over the padded bounding rectangle of the particles — an interval-
// arithmetic bound that is loose, so most stream points trigger a question.
// Stopping uses the sound LP outer rectangle over a bounded window of the
// most recent half-spaces (a superset of the consistent region, so the
// ‖e_min − e_max‖ ≤ 2√d·ε certificate never fires early), checked every few
// questions and at pass boundaries; a pass that asks nothing also stops.
// SinglePass therefore scales to high d
// and large n — at the cost of the very long interactions the ISRL paper
// reports (hundreds of questions).
#ifndef ISRL_BASELINES_SINGLE_PASS_H_
#define ISRL_BASELINES_SINGLE_PASS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/aa_state.h"
#include "core/algorithm.h"
#include "data/dataset.h"

namespace isrl {

/// Configuration for SinglePass.
struct SinglePassOptions {
  double epsilon = 0.1;
  size_t max_questions = 5000;    ///< safety cap
  size_t max_passes = 16;         ///< stream passes before giving up
  size_t particles = 200;         ///< consistent-utility particle count
  size_t min_particles = 32;      ///< replenish threshold
  size_t stop_check_every = 20;   ///< questions between stop-certificate checks
  size_t stop_check_window = 128; ///< most recent half-spaces in the LP rect
  uint64_t seed = 42;
};

/// The SinglePass baseline.
class SinglePass : public InteractiveAlgorithm {
 public:
  SinglePass(const Dataset& data, const SinglePassOptions& options);

  std::string name() const override { return "SinglePass"; }

  std::unique_ptr<InteractiveAlgorithm> CloneForEval() const override {
    return std::make_unique<SinglePass>(*this);
  }

  /// Reseeds the stream-order / particle Rng (per-user derived seed during
  /// evaluation; see core/session.cc).
  void Reseed(uint64_t seed) override { rng_ = Rng(seed); }

  /// The streaming champion loop as a resumable sans-IO session (DESIGN.md
  /// §13): pass/stream-position cursors replace the nested loops.
  std::unique_ptr<InteractionSession> StartSession(
      const SessionConfig& config) override;

  /// Reopens a checkpointed SinglePass session (DESIGN.md §14): half-space
  /// list, particle set, stream order and cursors all come from the
  /// snapshot, so the restored stream continues bit-identically.
  Result<std::unique_ptr<InteractionSession>> RestoreSession(
      const std::string& bytes, const SessionConfig& config) override;

 private:
  class Session;

  const Dataset& data_;
  SinglePassOptions options_;
  Rng rng_;
};

}  // namespace isrl

#endif  // ISRL_BASELINES_SINGLE_PASS_H_
