#include "baselines/utility_approx.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace isrl {

UtilityApprox::UtilityApprox(const Dataset& data,
                             const UtilityApproxOptions& options)
    : data_(data), options_(options) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GE(data.dim(), 2u);
  ISRL_CHECK_GT(options.epsilon, 0.0);
}

InteractionResult UtilityApprox::Interact(UserOracle& user,
                                          InteractionTrace* trace) {
  InteractionResult result;
  Stopwatch watch;
  const size_t d = data_.dim();
  const double stop_dist =
      2.0 * std::sqrt(static_cast<double>(d)) * options_.epsilon;

  // Per-dimension binary-search interval for r_c = u[c]/u[0].
  std::vector<double> lo(d, 0.0), hi(d, options_.max_ratio);
  lo[0] = hi[0] = 1.0;
  std::vector<LearnedHalfspace> h;

  // Fake tuples for the question "is u[c] ≥ t·u[0]?": a puts everything on
  // attribute c, b puts t (rescaled into (0,1]) on attribute 0.
  auto fake_pair = [&](size_t c, double t) {
    Vec a(d, 1e-6), b(d, 1e-6);
    double scale = std::max(1.0, t);
    a[c] = 1.0 / scale;
    b[0] = t / scale;
    return std::pair<Vec, Vec>(a, b);
  };

  size_t cursor = 1;  // round-robin over dimensions 1..d-1
  while (result.rounds < options_.max_rounds) {
    // Certificate: outer rectangle of the learned half-spaces.
    AaGeometry geo = ComputeAaGeometry(d, h);
    if (!geo.feasible) break;  // contradictory answers (noisy user)
    if (Distance(geo.e_min, geo.e_max) <= stop_dist) {
      result.converged = true;
      result.best_index = data_.TopIndex((geo.e_min + geo.e_max) / 2.0);
      result.seconds += watch.ElapsedSeconds();
      return result;
    }

    // Pick the dimension with the widest remaining ratio interval.
    size_t c = 0;
    double widest = 0.0;
    for (size_t k = 1; k < d; ++k) {
      size_t cand = 1 + (cursor + k - 1) % (d - 1);
      if (hi[cand] - lo[cand] > widest) {
        widest = hi[cand] - lo[cand];
        c = cand;
      }
    }
    if (c == 0 || widest < 1e-6) {
      result.converged = true;  // all ratios pinned; certificate soon follows
      break;
    }
    cursor = c;

    const double t = 0.5 * (lo[c] + hi[c]);
    auto [a, b] = fake_pair(c, t);
    const bool prefers_a = user.Prefers(a, b);
    ++result.rounds;

    LearnedHalfspace lh;
    lh.winner = 0;  // fake tuples have no dataset index
    lh.loser = 0;
    lh.h = prefers_a ? PreferenceHalfspace(a, b) : PreferenceHalfspace(b, a);
    h.push_back(std::move(lh));
    if (prefers_a) {
      lo[c] = t;  // u[c] ≥ t·u[0]
    } else {
      hi[c] = t;
    }

    if (trace != nullptr) {
      const double elapsed = watch.ElapsedSeconds();
      AaGeometry mid_geo = ComputeAaGeometry(d, h);
      size_t best = mid_geo.feasible
                        ? data_.TopIndex((mid_geo.e_min + mid_geo.e_max) / 2.0)
                        : result.best_index;
      trace->Record(best, {}, elapsed);
      watch.Restart();
      result.seconds += elapsed;
    }
  }

  AaGeometry geo = ComputeAaGeometry(d, h);
  Vec estimate(d, 1.0 / static_cast<double>(d));
  if (geo.feasible) estimate = (geo.e_min + geo.e_max) / 2.0;
  result.best_index = data_.TopIndex(estimate);
  result.seconds += watch.ElapsedSeconds();
  return result;
}

}  // namespace isrl
