#include "baselines/utility_approx.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace isrl {

UtilityApprox::UtilityApprox(const Dataset& data,
                             const UtilityApproxOptions& options)
    : data_(data), options_(options) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GE(data.dim(), 2u);
  ISRL_CHECK_GT(options.epsilon, 0.0);
}

InteractionResult UtilityApprox::DoInteract(InteractionContext& ctx) {
  InteractionResult result;
  Stopwatch watch;
  const size_t d = data_.dim();
  const double stop_dist =
      2.0 * std::sqrt(static_cast<double>(d)) * options_.epsilon;
  const size_t max_rounds = ctx.MaxRounds(options_.max_rounds);
  const size_t max_lp = ctx.budget.max_lp_iterations;

  // Per-dimension binary-search interval for r_c = u[c]/u[0].
  std::vector<double> lo(d, 0.0), hi(d, options_.max_ratio);
  lo[0] = hi[0] = 1.0;
  std::vector<LearnedHalfspace> h;

  // Fake tuples for the question "is u[c] ≥ t·u[0]?": a puts everything on
  // attribute c, b puts t (rescaled into (0,1]) on attribute 0.
  auto fake_pair = [&](size_t c, double t) {
    Vec a(d, 1e-6), b(d, 1e-6);
    double scale = std::max(1.0, t);
    a[c] = 1.0 / scale;
    b[0] = t / scale;
    return std::pair<Vec, Vec>(a, b);
  };

  size_t cursor = 1;  // round-robin over dimensions 1..d-1
  bool resolved = false;
  while (result.rounds < max_rounds && !ctx.DeadlineExpired()) {
    // Certificate: outer rectangle of the learned half-spaces.
    AaGeometry geo = ComputeAaGeometry(d, h, max_lp);
    if (!geo.feasible) {
      // Contradictory answers (noisy user): drop the minimal most-recent
      // suffix of half-spaces until the set is consistent again. The ratio
      // intervals stay as narrowed — they are estimates, not certificates.
      while (!h.empty() && !geo.feasible) {
        h.pop_back();
        ++result.dropped_answers;
        geo = ComputeAaGeometry(d, h, max_lp);
      }
      if (!geo.feasible) {
        // LP failed even on H = ∅: the solver itself is broken.
        result.status = Status::Internal("geometry LP failed on empty H");
        break;
      }
    }
    if (Distance(geo.e_min, geo.e_max) <= stop_dist) {
      result.termination = result.dropped_answers > 0
                               ? Termination::kDegraded
                               : Termination::kConverged;
      result.best_index = data_.TopIndex((geo.e_min + geo.e_max) / 2.0);
      result.seconds += watch.ElapsedSeconds();
      return result;
    }

    // Pick the dimension with the widest remaining ratio interval.
    size_t c = 0;
    double widest = 0.0;
    for (size_t k = 1; k < d; ++k) {
      size_t cand = 1 + (cursor + k - 1) % (d - 1);
      if (hi[cand] - lo[cand] > widest) {
        widest = hi[cand] - lo[cand];
        c = cand;
      }
    }
    if (c == 0 || widest < 1e-6) {
      resolved = true;  // all ratios pinned; certificate soon follows
      break;
    }
    cursor = c;

    const double t = 0.5 * (lo[c] + hi[c]);
    auto [a, b] = fake_pair(c, t);
    const Answer answer = ctx.user.Ask(a, b);
    ++result.rounds;
    if (answer == Answer::kNoAnswer) {
      // Timed-out question: re-ask the widest interval next round.
      ++result.no_answers;
      continue;
    }
    const bool prefers_a = answer == Answer::kFirst;

    LearnedHalfspace lh;
    lh.winner = 0;  // fake tuples have no dataset index
    lh.loser = 0;
    lh.h = prefers_a ? PreferenceHalfspace(a, b) : PreferenceHalfspace(b, a);
    h.push_back(std::move(lh));
    if (prefers_a) {
      lo[c] = t;  // u[c] ≥ t·u[0]
    } else {
      hi[c] = t;
    }

    if (ctx.trace != nullptr) {
      const double elapsed = watch.ElapsedSeconds();
      AaGeometry mid_geo = ComputeAaGeometry(d, h, max_lp);
      size_t best = mid_geo.feasible
                        ? data_.TopIndex((mid_geo.e_min + mid_geo.e_max) / 2.0)
                        : result.best_index;
      ctx.trace->Record(best, {}, elapsed);
      watch.Restart();
      result.seconds += elapsed;
    }
  }

  AaGeometry geo = ComputeAaGeometry(d, h, max_lp);
  Vec estimate(d, 1.0 / static_cast<double>(d));
  if (geo.feasible) estimate = (geo.e_min + geo.e_max) / 2.0;
  result.best_index = data_.TopIndex(estimate);
  if (!result.status.ok()) {
    result.termination = Termination::kAborted;
  } else if (resolved) {
    result.termination = result.dropped_answers > 0 ? Termination::kDegraded
                                                    : Termination::kConverged;
  } else {
    result.termination = Termination::kBudgetExhausted;
  }
  result.seconds += watch.ElapsedSeconds();
  return result;
}

}  // namespace isrl
