#include "baselines/utility_approx.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "core/snapshot.h"

namespace isrl {

namespace {
constexpr char kUaSnapshotKind[] = "ua-session";
constexpr uint32_t kUaSnapshotVersion = 1;
}  // namespace

UtilityApprox::UtilityApprox(const Dataset& data,
                             const UtilityApproxOptions& options)
    : data_(data), options_(options) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GE(data.dim(), 2u);
  ISRL_CHECK_GT(options.epsilon, 0.0);
}

// The ratio-bisection loop inverted into a sans-IO state machine (DESIGN.md
// §13). Prepare() is the old loop top — budget guard, geometry certificate
// (with its in-loop converged return), widest-interval pick, fake-tuple
// construction — and PostAnswer() the loop body, in the original order, so
// stepped episodes are bit-identical to Interact(). The questions compare
// constructed points, so SessionQuestion::synthetic is set and the answer
// handling works off the stored point vectors, never dataset indices.
class UtilityApprox::Session final : public InteractionSession {
 public:
  Session(UtilityApprox& owner, const SessionConfig& config)
      : owner_(owner),
        trace_(config.trace),
        d_(owner.data_.dim()),
        stop_dist_(2.0 * std::sqrt(static_cast<double>(owner.data_.dim())) *
                   owner.options_.epsilon),
        max_rounds_(config.budget.EffectiveMaxRounds(owner.options_.max_rounds)),
        max_lp_(config.budget.max_lp_iterations),
        deadline_(Deadline::FromBudget(config.budget)),
        lo_(d_, 0.0),
        hi_(d_, owner.options_.max_ratio) {
    // Per-dimension binary-search interval for r_c = u[c]/u[0].
    lo_[0] = hi_[0] = 1.0;
    Prepare();
  }

  std::optional<SessionQuestion> NextQuestion() override {
    if (finished_) return std::nullopt;
    return question_;
  }

  void PostAnswer(Answer answer) override {
    ISRL_CHECK(asking_);
    asking_ = false;
    ++result_.rounds;
    if (answer == Answer::kNoAnswer) {
      // Timed-out question: re-ask the widest interval next round.
      ++result_.no_answers;
      Prepare();
      return;
    }
    const bool prefers_a = answer == Answer::kFirst;
    const Vec& a = question_.first;
    const Vec& b = question_.second;

    LearnedHalfspace lh;
    lh.winner = 0;  // fake tuples have no dataset index
    lh.loser = 0;
    lh.h = prefers_a ? PreferenceHalfspace(a, b) : PreferenceHalfspace(b, a);
    h_.push_back(std::move(lh));
    if (prefers_a) {
      lo_[c_] = t_;  // u[c] ≥ t·u[0]
    } else {
      hi_[c_] = t_;
    }

    if (trace_ != nullptr) {
      const double elapsed = watch_.ElapsedSeconds();
      AaGeometry mid_geo = ComputeAaGeometry(d_, h_, max_lp_);
      size_t best =
          mid_geo.feasible
              ? owner_.data_.TopIndex((mid_geo.e_min + mid_geo.e_max) / 2.0)
              : result_.best_index;
      trace_->Record(best, {}, elapsed);
      watch_.Restart();
      result_.seconds += elapsed;
    }
    Prepare();
  }

  void Cancel() override {
    if (finished_) return;
    // Best-so-far from the current geometry — exactly the budget-exhausted
    // exit of the old loop.
    TerminateFinal();
  }

  bool Finished() const override { return finished_; }

  InteractionResult Finish() override {
    ISRL_CHECK(finished_);
    InteractionResult result = result_;
    result.converged = result.termination == Termination::kConverged;
    return result;
  }

  // ---- Durability (DESIGN.md §14). ---------------------------------------

  /// Tag ctor for RestoreSession (see Ea::Session::RestoreTag).
  struct RestoreTag {};
  Session(UtilityApprox& owner, InteractionTrace* trace, RestoreTag)
      : owner_(owner),
        trace_(trace),
        d_(owner.data_.dim()),
        stop_dist_(2.0 * std::sqrt(static_cast<double>(owner.data_.dim())) *
                   owner.options_.epsilon),
        max_rounds_(0),
        max_lp_(0),
        lo_(d_, 0.0),
        hi_(d_, 0.0) {}

  Result<std::string> SaveState() const override {
    snapshot::Writer w;
    snapshot::SessionCore core;
    core.algorithm = owner_.name();
    core.data_size = owner_.data_.size();
    core.data_dim = owner_.data_.dim();
    core.result = result_;
    if (!finished_) core.result.seconds += watch_.ElapsedSeconds();
    core.max_rounds = max_rounds_;
    core.deadline = deadline_;
    core.stage =
        finished_ ? snapshot::kStageFinished : snapshot::kStageAsking;
    core.question = question_;
    core.has_rng = false;  // fully deterministic algorithm
    core.trace = trace_;
    snapshot::EncodeSessionCore(core, &w);
    w.U64(max_lp_);
    snapshot::EncodeVec(Vec(lo_), &w);
    snapshot::EncodeVec(Vec(hi_), &w);
    w.U64(h_.size());
    for (const LearnedHalfspace& lh : h_) {
      snapshot::EncodeLearnedHalfspace(lh, &w);
    }
    w.U64(cursor_);
    w.U64(c_);
    w.F64(t_);
    w.Bool(resolved_);
    return snapshot::WrapFrame(kUaSnapshotKind, kUaSnapshotVersion, w.Take());
  }

  Status Decode(const std::string& payload) {
    snapshot::Reader r(payload);
    snapshot::SessionCore core;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeSessionCore(&r, &core));
    ISRL_RETURN_IF_ERROR(snapshot::ValidateSessionCore(
        core, owner_.name(), owner_.data_.size(), owner_.data_.dim()));
    if (core.stage == snapshot::kStageScoring) {
      return Status::InvalidArgument(
          "UtilityApprox snapshot: scoring stage is not part of the protocol");
    }
    const uint64_t max_lp = r.U64();
    Vec lo, hi;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeVec(&r, &lo));
    ISRL_RETURN_IF_ERROR(snapshot::DecodeVec(&r, &hi));
    const uint64_t num_h = r.U64();
    if (!r.failed() && num_h > snapshot::kMaxElements) {
      return Status::InvalidArgument(
          "UtilityApprox snapshot: implausible H size");
    }
    std::vector<LearnedHalfspace> h;
    for (uint64_t i = 0; i < num_h && !r.failed(); ++i) {
      LearnedHalfspace lh;
      // Fake-tuple half-spaces carry no dataset indices (winner = loser =
      // 0), so the bound only needs to admit index 0.
      ISRL_RETURN_IF_ERROR(
          snapshot::DecodeLearnedHalfspace(&r, &lh, owner_.data_.size()));
      if (lh.h.normal.dim() != d_) {
        return Status::InvalidArgument(
            "UtilityApprox snapshot: halfspace dimension mismatch");
      }
      h.push_back(std::move(lh));
    }
    const uint64_t cursor = r.U64();
    const uint64_t c = r.U64();
    const double t = r.FiniteF64();
    const bool resolved = r.Bool();
    ISRL_RETURN_IF_ERROR(r.status());
    if (!r.AtEnd()) {
      return Status::InvalidArgument(
          "UtilityApprox snapshot: trailing payload bytes");
    }
    if (lo.dim() != d_ || hi.dim() != d_) {
      return Status::InvalidArgument(
          "UtilityApprox snapshot: ratio interval dimension mismatch");
    }
    if (cursor == 0 || cursor >= d_ || c >= d_) {
      return Status::InvalidArgument(
          "UtilityApprox snapshot: bisection cursor out of range");
    }

    result_ = core.result;
    max_rounds_ = static_cast<size_t>(core.max_rounds);
    max_lp_ = static_cast<size_t>(max_lp);
    deadline_ = core.deadline;
    if (core.has_trace && trace_ != nullptr) {
      trace_->RestoreHistory(std::move(core.trace_max_regret),
                             std::move(core.trace_seconds),
                             std::move(core.trace_best_index));
    }
    lo_ = lo.data();
    hi_ = hi.data();
    h_ = std::move(h);
    cursor_ = static_cast<size_t>(cursor);
    c_ = static_cast<size_t>(c);
    t_ = t;
    resolved_ = resolved;
    question_ = core.question;
    finished_ = core.stage == snapshot::kStageFinished;
    asking_ = core.stage == snapshot::kStageAsking;
    watch_.Restart();
    return Status::Ok();
  }

 private:
  void Prepare() {
    if (result_.rounds >= max_rounds_ || deadline_.Expired()) {
      TerminateFinal();
      return;
    }
    // Certificate: outer rectangle of the learned half-spaces.
    AaGeometry geo = ComputeAaGeometry(d_, h_, max_lp_);
    if (!geo.feasible) {
      // Contradictory answers (noisy user): drop the minimal most-recent
      // suffix of half-spaces until the set is consistent again. The ratio
      // intervals stay as narrowed — they are estimates, not certificates.
      while (!h_.empty() && !geo.feasible) {
        h_.pop_back();
        ++result_.dropped_answers;
        geo = ComputeAaGeometry(d_, h_, max_lp_);
      }
      if (!geo.feasible) {
        // LP failed even on H = ∅: the solver itself is broken.
        result_.status = Status::Internal("geometry LP failed on empty H");
        TerminateFinal();
        return;
      }
    }
    if (Distance(geo.e_min, geo.e_max) <= stop_dist_) {
      result_.termination = result_.dropped_answers > 0
                                ? Termination::kDegraded
                                : Termination::kConverged;
      result_.best_index = owner_.data_.TopIndex((geo.e_min + geo.e_max) / 2.0);
      result_.seconds += watch_.ElapsedSeconds();
      asking_ = false;
      finished_ = true;
      return;
    }

    // Pick the dimension with the widest remaining ratio interval.
    size_t c = 0;
    double widest = 0.0;
    for (size_t k = 1; k < d_; ++k) {
      size_t cand = 1 + (cursor_ + k - 1) % (d_ - 1);
      if (hi_[cand] - lo_[cand] > widest) {
        widest = hi_[cand] - lo_[cand];
        c = cand;
      }
    }
    if (c == 0 || widest < 1e-6) {
      resolved_ = true;  // all ratios pinned; certificate soon follows
      TerminateFinal();
      return;
    }
    cursor_ = c;
    c_ = c;
    t_ = 0.5 * (lo_[c] + hi_[c]);

    // Fake tuples for the question "is u[c] ≥ t·u[0]?": a puts everything
    // on attribute c, b puts t (rescaled into (0,1]) on attribute 0.
    Vec a(d_, 1e-6), b(d_, 1e-6);
    const double scale = std::max(1.0, t_);
    a[c_] = 1.0 / scale;
    b[0] = t_ / scale;
    question_.first = std::move(a);
    question_.second = std::move(b);
    question_.pair = Question{};
    question_.synthetic = true;
    asking_ = true;
  }

  void TerminateFinal() {
    AaGeometry geo = ComputeAaGeometry(d_, h_, max_lp_);
    Vec estimate(d_, 1.0 / static_cast<double>(d_));
    if (geo.feasible) estimate = (geo.e_min + geo.e_max) / 2.0;
    result_.best_index = owner_.data_.TopIndex(estimate);
    if (!result_.status.ok()) {
      result_.termination = Termination::kAborted;
    } else if (resolved_) {
      result_.termination = result_.dropped_answers > 0
                                ? Termination::kDegraded
                                : Termination::kConverged;
    } else {
      result_.termination = Termination::kBudgetExhausted;
    }
    result_.seconds += watch_.ElapsedSeconds();
    asking_ = false;
    finished_ = true;
  }

  UtilityApprox& owner_;
  InteractionTrace* trace_;
  InteractionResult result_;
  Stopwatch watch_;
  size_t d_;
  double stop_dist_;
  size_t max_rounds_;
  size_t max_lp_;
  Deadline deadline_;

  std::vector<double> lo_, hi_;
  std::vector<LearnedHalfspace> h_;
  size_t cursor_ = 1;  // round-robin over dimensions 1..d-1
  size_t c_ = 0;       // dimension of the in-flight question
  double t_ = 0.0;     // bisection threshold of the in-flight question
  bool resolved_ = false;

  SessionQuestion question_;
  bool asking_ = false;
  bool finished_ = false;
};

std::unique_ptr<InteractionSession> UtilityApprox::StartSession(
    const SessionConfig& config) {
  return std::make_unique<Session>(*this, config);
}

Result<std::unique_ptr<InteractionSession>> UtilityApprox::RestoreSession(
    const std::string& bytes, const SessionConfig& config) {
  ISRL_ASSIGN_OR_RETURN(
      std::string payload,
      snapshot::UnwrapFrame(kUaSnapshotKind, kUaSnapshotVersion, bytes));
  auto session =
      std::make_unique<Session>(*this, config.trace, Session::RestoreTag{});
  ISRL_RETURN_IF_ERROR(session->Decode(payload));
  return std::unique_ptr<InteractionSession>(std::move(session));
}

}  // namespace isrl
