#include "baselines/single_pass.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "common/stopwatch.h"
#include "core/snapshot.h"
#include "geometry/hit_and_run.h"
#include "user/sampler.h"

namespace isrl {
namespace {

constexpr char kSpSnapshotKind[] = "sp-session";
constexpr uint32_t kSpSnapshotVersion = 1;

// Axis-aligned bounding box of a utility-vector sample, padded by `pad` and
// clipped to [0,1]. An inner approximation of the true outer rectangle; the
// padding compensates so the stop certificate is not absurdly optimistic.
void SampleRect(const std::vector<Vec>& samples, double pad, Vec* e_min,
                Vec* e_max) {
  const size_t d = (*e_min).dim();
  for (size_t k = 0; k < d; ++k) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const Vec& u : samples) {
      lo = std::min(lo, u[k]);
      hi = std::max(hi, u[k]);
    }
    (*e_min)[k] = std::max(0.0, lo - pad);
    (*e_max)[k] = std::min(1.0, hi + pad);
  }
}

}  // namespace

SinglePass::SinglePass(const Dataset& data, const SinglePassOptions& options)
    : data_(data), options_(options), rng_(options.seed) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GT(options.epsilon, 0.0);
  ISRL_CHECK_LT(options.epsilon, 1.0);
}

// The streaming champion loop inverted into a sans-IO state machine
// (DESIGN.md §13): the nested pass/stream loops become two cursors (pass_,
// pos_) that Advance() walks exactly as the old for-loops did — including
// the pass epilogue's certificate checks and the end-of-pass reshuffle
// (which the old loop ran even before a final, never-executed pass), so
// stepped episodes are bit-identical to Interact() down to the Rng state.
class SinglePass::Session final : public InteractionSession {
 public:
  Session(SinglePass& owner, const SessionConfig& config)
      : owner_(owner),
        trace_(config.trace),
        d_(owner.data_.dim()),
        max_questions_(
            config.budget.EffectiveMaxRounds(owner.options_.max_questions)),
        max_lp_(config.budget.max_lp_iterations),
        stop_dist_(2.0 * std::sqrt(static_cast<double>(owner.data_.dim())) *
                   owner.options_.epsilon),
        pad_(0.5 * owner.options_.epsilon),
        deadline_(Deadline::FromBudget(config.budget)),
        owned_rng_(config.seed ? std::optional<Rng>(Rng(*config.seed))
                               : std::nullopt),
        e_min_(owner.data_.dim(), 0.0),
        e_max_(owner.data_.dim(), 1.0),
        order_(owner.data_.size()) {
    // SinglePass keeps no polyhedron and solves no LPs; its entire learned
    // state is the half-space list plus a particle set of consistent
    // utility vectors that powers both the rule-based filter and the stop
    // certificate.
    particles_ = SampleUtilityVectors(owner_.options_.particles, d_, rng());
    std::iota(order_.begin(), order_.end(), 0);
    rng().Shuffle(&order_);
    champion_ = order_[0];
    Advance();
  }

  std::optional<SessionQuestion> NextQuestion() override {
    if (finished_) return std::nullopt;
    return question_;
  }

  void PostAnswer(Answer answer) override {
    ISRL_CHECK(asking_);
    asking_ = false;
    const size_t idx = challenger_;
    ++result_.rounds;
    ++questions_this_pass_;
    if (answer == Answer::kNoAnswer) {
      // Timed-out question: the stream moves on; the challenger gets
      // another chance next pass.
      ++result_.no_answers;
      RecordRound();
      ++pos_;
      Advance();
      return;
    }
    const bool prefers_challenger = answer == Answer::kFirst;

    LearnedHalfspace lh;
    lh.winner = prefers_challenger ? idx : champion_;
    lh.loser = prefers_challenger ? champion_ : idx;
    lh.h = PreferenceHalfspace(owner_.data_.point(lh.winner),
                               owner_.data_.point(lh.loser));
    h_.push_back(std::move(lh));
    if (prefers_challenger) champion_ = idx;

    // Filter particles by the new answer; replenish when thin.
    const Halfspace& learned = h_.back().h;
    particles_.erase(std::remove_if(particles_.begin(), particles_.end(),
                                    [&](const Vec& u) {
                                      return !learned.Contains(u, 0.0);
                                    }),
                     particles_.end());
    Replenish();
    if (!particles_.empty()) SampleRect(particles_, pad_, &e_min_, &e_max_);

    RecordRound();
    // Mid-pass: the cheap particle certificate only (the LP rectangle is
    // reserved for pass boundaries).
    if (result_.rounds % owner_.options_.stop_check_every == 0 &&
        ParticleStop()) {
      certified_ = true;
      Terminate();
      return;
    }
    ++pos_;
    Advance();
  }

  void Cancel() override {
    if (finished_) return;
    result_.best_index = champion_;
    result_.termination = Termination::kBudgetExhausted;
    result_.seconds += watch_.ElapsedSeconds();
    asking_ = false;
    finished_ = true;
  }

  bool Finished() const override { return finished_; }

  InteractionResult Finish() override {
    ISRL_CHECK(finished_);
    InteractionResult result = result_;
    result.converged = result.termination == Termination::kConverged;
    return result;
  }

  // ---- Durability (DESIGN.md §14). ---------------------------------------

  /// Tag ctor for RestoreSession (see Ea::Session::RestoreTag). Fixed
  /// parameters (d, the stop bound, the rectangle padding) are recomputed
  /// from the owner; everything learned comes from Decode().
  struct RestoreTag {};
  Session(SinglePass& owner, InteractionTrace* trace, RestoreTag)
      : owner_(owner),
        trace_(trace),
        d_(owner.data_.dim()),
        max_questions_(0),
        max_lp_(0),
        stop_dist_(2.0 * std::sqrt(static_cast<double>(owner.data_.dim())) *
                   owner.options_.epsilon),
        pad_(0.5 * owner.options_.epsilon),
        owned_rng_(std::nullopt),
        e_min_(owner.data_.dim(), 0.0),
        e_max_(owner.data_.dim(), 1.0) {}

  Result<std::string> SaveState() const override {
    snapshot::Writer w;
    snapshot::SessionCore core;
    core.algorithm = owner_.name();
    core.data_size = owner_.data_.size();
    core.data_dim = owner_.data_.dim();
    core.result = result_;
    if (!finished_) core.result.seconds += watch_.ElapsedSeconds();
    core.max_rounds = max_questions_;
    core.deadline = deadline_;
    core.stage =
        finished_ ? snapshot::kStageFinished : snapshot::kStageAsking;
    core.question = question_;
    core.has_rng = true;
    core.rng = rng();
    core.trace = trace_;
    snapshot::EncodeSessionCore(core, &w);
    w.U64(max_lp_);
    w.U64(h_.size());
    for (const LearnedHalfspace& lh : h_) {
      snapshot::EncodeLearnedHalfspace(lh, &w);
    }
    w.U64(particles_.size());
    for (const Vec& u : particles_) snapshot::EncodeVec(u, &w);
    snapshot::EncodeVec(e_min_, &w);
    snapshot::EncodeVec(e_max_, &w);
    snapshot::EncodeIndexVector(order_, &w);
    w.U64(champion_);
    w.U64(pass_);
    w.U64(pos_);
    w.U64(questions_this_pass_);
    w.U64(challenger_);
    w.Bool(certified_);
    w.Bool(stuck_);
    return snapshot::WrapFrame(kSpSnapshotKind, kSpSnapshotVersion, w.Take());
  }

  Status Decode(const std::string& payload) {
    snapshot::Reader r(payload);
    snapshot::SessionCore core;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeSessionCore(&r, &core));
    ISRL_RETURN_IF_ERROR(snapshot::ValidateSessionCore(
        core, owner_.name(), owner_.data_.size(), owner_.data_.dim()));
    if (!core.has_rng) {
      return Status::InvalidArgument("SinglePass snapshot: missing rng state");
    }
    if (core.stage == snapshot::kStageScoring) {
      return Status::InvalidArgument(
          "SinglePass snapshot: scoring stage is not part of the protocol");
    }
    const size_t n = owner_.data_.size();
    const uint64_t max_lp = r.U64();
    const uint64_t num_h = r.U64();
    if (!r.failed() && num_h > snapshot::kMaxElements) {
      return Status::InvalidArgument(
          "SinglePass snapshot: implausible H size");
    }
    std::vector<LearnedHalfspace> h;
    for (uint64_t i = 0; i < num_h && !r.failed(); ++i) {
      LearnedHalfspace lh;
      ISRL_RETURN_IF_ERROR(snapshot::DecodeLearnedHalfspace(&r, &lh, n));
      if (lh.h.normal.dim() != d_) {
        return Status::InvalidArgument(
            "SinglePass snapshot: halfspace dimension mismatch");
      }
      h.push_back(std::move(lh));
    }
    const uint64_t num_particles = r.U64();
    if (!r.failed() && num_particles > snapshot::kMaxElements) {
      return Status::InvalidArgument(
          "SinglePass snapshot: implausible particle count");
    }
    std::vector<Vec> particles;
    for (uint64_t i = 0; i < num_particles && !r.failed(); ++i) {
      Vec u;
      ISRL_RETURN_IF_ERROR(snapshot::DecodeVec(&r, &u));
      if (u.dim() != d_) {
        return Status::InvalidArgument(
            "SinglePass snapshot: particle dimension mismatch");
      }
      particles.push_back(std::move(u));
    }
    Vec e_min, e_max;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeVec(&r, &e_min));
    ISRL_RETURN_IF_ERROR(snapshot::DecodeVec(&r, &e_max));
    std::vector<size_t> order;
    ISRL_RETURN_IF_ERROR(snapshot::DecodeIndexVector(&r, &order, n));
    const uint64_t champion = r.U64();
    const uint64_t pass = r.U64();
    const uint64_t pos = r.U64();
    const uint64_t questions_this_pass = r.U64();
    const uint64_t challenger = r.U64();
    const bool certified = r.Bool();
    const bool stuck = r.Bool();
    ISRL_RETURN_IF_ERROR(r.status());
    if (!r.AtEnd()) {
      return Status::InvalidArgument(
          "SinglePass snapshot: trailing payload bytes");
    }
    if (e_min.dim() != d_ || e_max.dim() != d_) {
      return Status::InvalidArgument(
          "SinglePass snapshot: rectangle dimension mismatch");
    }
    // Advance() walks order_[pos_] directly, so the stream order must be a
    // genuine permutation of the dataset and the cursor must stay within
    // one-past-the-end.
    if (order.size() != n) {
      return Status::InvalidArgument(
          "SinglePass snapshot: stream order size mismatch");
    }
    std::vector<bool> seen(n, false);
    for (size_t idx : order) {
      if (seen[idx]) {
        return Status::InvalidArgument(
            "SinglePass snapshot: stream order is not a permutation");
      }
      seen[idx] = true;
    }
    if (champion >= n || challenger >= n || pos > n) {
      return Status::InvalidArgument(
          "SinglePass snapshot: stream cursor out of range");
    }

    result_ = core.result;
    max_questions_ = static_cast<size_t>(core.max_rounds);
    max_lp_ = static_cast<size_t>(max_lp);
    deadline_ = core.deadline;
    owned_rng_ = core.rng;
    if (core.has_trace && trace_ != nullptr) {
      trace_->RestoreHistory(std::move(core.trace_max_regret),
                             std::move(core.trace_seconds),
                             std::move(core.trace_best_index));
    }
    h_ = std::move(h);
    particles_ = std::move(particles);
    e_min_ = std::move(e_min);
    e_max_ = std::move(e_max);
    order_ = std::move(order);
    champion_ = static_cast<size_t>(champion);
    pass_ = static_cast<size_t>(pass);
    pos_ = static_cast<size_t>(pos);
    questions_this_pass_ = static_cast<size_t>(questions_this_pass);
    challenger_ = static_cast<size_t>(challenger);
    certified_ = certified;
    stuck_ = stuck;
    question_ = core.question;
    finished_ = core.stage == snapshot::kStageFinished;
    asking_ = core.stage == snapshot::kStageAsking;
    watch_.Restart();
    return Status::Ok();
  }

 private:
  /// Walks the stream cursors to the next askable challenger, running pass
  /// epilogues (certificates, stuck detection, reshuffle) along the way —
  /// the exact control flow of the old nested loops.
  void Advance() {
    while (true) {
      if (pass_ >= owner_.options_.max_passes) {
        Terminate();
        return;
      }
      while (pos_ < order_.size()) {
        const size_t idx = order_[pos_];
        if (idx == champion_) {
          ++pos_;
          continue;
        }
        if (result_.rounds >= max_questions_ || deadline_.Expired()) break;
        if (ChallengerImpossible(idx)) {
          ++pos_;
          continue;
        }
        challenger_ = idx;
        question_.first = owner_.data_.point(idx);
        question_.second = owner_.data_.point(champion_);
        question_.pair = Question{idx, champion_};
        question_.synthetic = false;
        asking_ = true;
        return;
      }
      // Pass epilogue (also reached on a budget/deadline inner break).
      if (result_.rounds >= max_questions_ || deadline_.Expired()) {
        Terminate();
        return;
      }
      if (CertifiedStop()) {
        certified_ = true;
        Terminate();
        return;
      }
      if (questions_this_pass_ == 0) {
        // The filter skips every challenger although no certificate fired:
        // the particle rectangle cannot shrink further. Best-so-far,
        // degraded.
        stuck_ = true;
        Terminate();
        return;
      }
      rng().Shuffle(&order_);
      ++pass_;
      pos_ = 0;
      questions_this_pass_ = 0;
    }
  }

  // Rule-based filter: skip the challenger when even the loosest utility in
  // the rectangle around the consistent region cannot prefer it.
  bool ChallengerImpossible(size_t idx) const {
    const Vec& p = owner_.data_.point(idx);
    const Vec& c = owner_.data_.point(champion_);
    double ub = 0.0;
    for (size_t k = 0; k < d_; ++k) {
      double diff = p[k] - c[k];
      ub += diff >= 0.0 ? e_max_[k] * diff : e_min_[k] * diff;
    }
    return ub <= 0.0;
  }

  void Replenish() {
    if (particles_.size() >= owner_.options_.min_particles) return;
    // Walk over the most recent cuts only — bounds the chain's per-step
    // cost as |H| grows into the thousands. Samples may violate ancient
    // cuts and land slightly outside R; that only makes the particle-based
    // filter and stop test more conservative.
    const size_t window = std::min<size_t>(512, h_.size());
    std::vector<Halfspace> cuts;
    cuts.reserve(window);
    for (size_t k = h_.size() - window; k < h_.size(); ++k) {
      cuts.push_back(h_[k].h);
    }
    Vec start = particles_.empty() ? Vec(d_, 1.0 / static_cast<double>(d_))
                                   : particles_.back();
    std::vector<Vec> fresh =
        HitAndRunSample(cuts, start, owner_.options_.particles, rng());
    if (!fresh.empty()) particles_ = std::move(fresh);
  }

  // Stop certificate, two-tiered and cheap:
  //  (1) the champion's maximum regret ratio over the consistent particles
  //      is below ε/2 (the particles sample the region still in play; the
  //      2× safety factor compensates their inner-approximation bias), or
  //  (2) the sound LP outer rectangle over a window of the most recent
  //      half-spaces satisfies the ‖e_min − e_max‖ ≤ 2√d·ε bound (exact
  //      while |H| fits the window, conservative afterwards).
  bool ParticleStop() const {
    if (particles_.size() < owner_.options_.min_particles) return false;
    const Vec& champ = owner_.data_.point(champion_);
    double worst = 0.0;
    for (const Vec& u : particles_) {
      double top = owner_.data_.TopUtility(u);
      worst = std::max(worst, (top - Dot(u, champ)) / top);
      if (worst > 0.5 * owner_.options_.epsilon) return false;
    }
    return worst <= 0.5 * owner_.options_.epsilon;
  }

  bool CertifiedStop() {
    if (ParticleStop()) return true;
    const size_t window =
        std::min(owner_.options_.stop_check_window, h_.size());
    std::vector<LearnedHalfspace> recent(h_.end() - window, h_.end());
    AaGeometry geo = ComputeAaGeometry(d_, recent, max_lp_);
    if (!geo.feasible) return false;
    return Distance(geo.e_min, geo.e_max) <= stop_dist_;
  }

  void RecordRound() {
    if (trace_ == nullptr) return;
    const double elapsed = watch_.ElapsedSeconds();
    trace_->Record(champion_, particles_, elapsed);
    watch_.Restart();
    result_.seconds += elapsed;
  }

  void Terminate() {
    result_.best_index = champion_;
    if (certified_) {
      result_.termination = result_.dropped_answers > 0
                                ? Termination::kDegraded
                                : Termination::kConverged;
    } else if (stuck_) {
      result_.termination = Termination::kDegraded;
    } else {
      // max_questions, max_passes, or the deadline ran out first.
      result_.termination = Termination::kBudgetExhausted;
    }
    result_.seconds += watch_.ElapsedSeconds();
    asking_ = false;
    finished_ = true;
  }

  Rng& rng() { return owned_rng_ ? *owned_rng_ : owner_.rng_; }
  const Rng& rng() const { return owned_rng_ ? *owned_rng_ : owner_.rng_; }

  SinglePass& owner_;
  InteractionTrace* trace_;
  InteractionResult result_;
  Stopwatch watch_;
  size_t d_;
  size_t max_questions_;
  size_t max_lp_;
  double stop_dist_;
  double pad_;
  Deadline deadline_;
  std::optional<Rng> owned_rng_;

  std::vector<LearnedHalfspace> h_;
  std::vector<Vec> particles_;
  Vec e_min_, e_max_;
  std::vector<size_t> order_;
  size_t champion_ = 0;
  size_t pass_ = 0;
  size_t pos_ = 0;
  size_t questions_this_pass_ = 0;
  size_t challenger_ = 0;
  bool certified_ = false;
  bool stuck_ = false;

  SessionQuestion question_;
  bool asking_ = false;
  bool finished_ = false;
};

std::unique_ptr<InteractionSession> SinglePass::StartSession(
    const SessionConfig& config) {
  return std::make_unique<Session>(*this, config);
}

Result<std::unique_ptr<InteractionSession>> SinglePass::RestoreSession(
    const std::string& bytes, const SessionConfig& config) {
  ISRL_ASSIGN_OR_RETURN(
      std::string payload,
      snapshot::UnwrapFrame(kSpSnapshotKind, kSpSnapshotVersion, bytes));
  auto session =
      std::make_unique<Session>(*this, config.trace, Session::RestoreTag{});
  ISRL_RETURN_IF_ERROR(session->Decode(payload));
  return std::unique_ptr<InteractionSession>(std::move(session));
}

}  // namespace isrl
