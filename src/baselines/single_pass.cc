#include "baselines/single_pass.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/stopwatch.h"
#include "geometry/hit_and_run.h"
#include "user/sampler.h"

namespace isrl {
namespace {

// Axis-aligned bounding box of a utility-vector sample, padded by `pad` and
// clipped to [0,1]. An inner approximation of the true outer rectangle; the
// padding compensates so the stop certificate is not absurdly optimistic.
void SampleRect(const std::vector<Vec>& samples, double pad, Vec* e_min,
                Vec* e_max) {
  const size_t d = (*e_min).dim();
  for (size_t k = 0; k < d; ++k) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const Vec& u : samples) {
      lo = std::min(lo, u[k]);
      hi = std::max(hi, u[k]);
    }
    (*e_min)[k] = std::max(0.0, lo - pad);
    (*e_max)[k] = std::min(1.0, hi + pad);
  }
}

}  // namespace

SinglePass::SinglePass(const Dataset& data, const SinglePassOptions& options)
    : data_(data), options_(options), rng_(options.seed) {
  ISRL_CHECK(!data.empty());
  ISRL_CHECK_GT(options.epsilon, 0.0);
  ISRL_CHECK_LT(options.epsilon, 1.0);
}

InteractionResult SinglePass::DoInteract(InteractionContext& ctx) {
  InteractionResult result;
  Stopwatch watch;
  const size_t d = data_.dim();
  const size_t max_questions = ctx.MaxRounds(options_.max_questions);
  const size_t max_lp = ctx.budget.max_lp_iterations;
  const double stop_dist =
      2.0 * std::sqrt(static_cast<double>(d)) * options_.epsilon;
  const double pad = 0.5 * options_.epsilon;

  // SinglePass keeps no polyhedron and solves no LPs; its entire learned
  // state is the half-space list plus a particle set of consistent utility
  // vectors that powers both the rule-based filter and the stop certificate.
  std::vector<LearnedHalfspace> h;
  std::vector<Vec> particles =
      SampleUtilityVectors(options_.particles, d, rng_);
  Vec e_min(d, 0.0), e_max(d, 1.0);

  std::vector<size_t> order(data_.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(&order);
  size_t champion = order[0];

  // Rule-based filter: skip the challenger when even the loosest utility in
  // the rectangle around the consistent region cannot prefer it.
  auto challenger_impossible = [&](size_t idx) {
    const Vec& p = data_.point(idx);
    const Vec& c = data_.point(champion);
    double ub = 0.0;
    for (size_t k = 0; k < d; ++k) {
      double diff = p[k] - c[k];
      ub += diff >= 0.0 ? e_max[k] * diff : e_min[k] * diff;
    }
    return ub <= 0.0;
  };

  auto replenish = [&]() {
    if (particles.size() >= options_.min_particles) return;
    // Walk over the most recent cuts only — bounds the chain's per-step cost
    // as |H| grows into the thousands. Samples may violate ancient cuts and
    // land slightly outside R; that only makes the particle-based filter and
    // stop test more conservative.
    const size_t window = std::min<size_t>(512, h.size());
    std::vector<Halfspace> cuts;
    cuts.reserve(window);
    for (size_t k = h.size() - window; k < h.size(); ++k) {
      cuts.push_back(h[k].h);
    }
    Vec start = particles.empty() ? Vec(d, 1.0 / static_cast<double>(d))
                                  : particles.back();
    std::vector<Vec> fresh =
        HitAndRunSample(cuts, start, options_.particles, rng_);
    if (!fresh.empty()) particles = std::move(fresh);
  };

  auto record_round = [&]() {
    if (ctx.trace == nullptr) return;
    const double elapsed = watch.ElapsedSeconds();
    ctx.trace->Record(champion, particles, elapsed);
    watch.Restart();
    result.seconds += elapsed;
  };

  // Stop certificate, two-tiered and cheap:
  //  (1) the champion's maximum regret ratio over the consistent particles
  //      is below ε/2 (the particles sample the region still in play; the
  //      2× safety factor compensates their inner-approximation bias), or
  //  (2) the sound LP outer rectangle over a window of the most recent
  //      half-spaces satisfies the ‖e_min − e_max‖ ≤ 2√d·ε bound (exact
  //      while |H| fits the window, conservative afterwards).
  auto particle_stop = [&]() {
    if (particles.size() < options_.min_particles) return false;
    const Vec& champ = data_.point(champion);
    double worst = 0.0;
    for (const Vec& u : particles) {
      double top = data_.TopUtility(u);
      worst = std::max(worst, (top - Dot(u, champ)) / top);
      if (worst > 0.5 * options_.epsilon) return false;
    }
    return worst <= 0.5 * options_.epsilon;
  };
  auto certified_stop = [&]() {
    if (particle_stop()) return true;
    const size_t window = std::min(options_.stop_check_window, h.size());
    std::vector<LearnedHalfspace> recent(h.end() - window, h.end());
    AaGeometry geo = ComputeAaGeometry(d, recent, max_lp);
    if (!geo.feasible) return false;
    return Distance(geo.e_min, geo.e_max) <= stop_dist;
  };

  bool certified = false;
  bool stuck = false;
  for (size_t pass = 0; pass < options_.max_passes; ++pass) {
    size_t questions_this_pass = 0;
    for (size_t idx : order) {
      if (idx == champion) continue;
      if (result.rounds >= max_questions || ctx.DeadlineExpired()) break;
      if (challenger_impossible(idx)) continue;

      const Answer answer =
          ctx.user.Ask(data_.point(idx), data_.point(champion));
      ++result.rounds;
      ++questions_this_pass;
      if (answer == Answer::kNoAnswer) {
        // Timed-out question: the stream moves on; the challenger gets
        // another chance next pass.
        ++result.no_answers;
        record_round();
        continue;
      }
      const bool prefers_challenger = answer == Answer::kFirst;

      LearnedHalfspace lh;
      lh.winner = prefers_challenger ? idx : champion;
      lh.loser = prefers_challenger ? champion : idx;
      lh.h = PreferenceHalfspace(data_.point(lh.winner), data_.point(lh.loser));
      h.push_back(std::move(lh));
      if (prefers_challenger) champion = idx;

      // Filter particles by the new answer; replenish when thin.
      const Halfspace& learned = h.back().h;
      particles.erase(std::remove_if(particles.begin(), particles.end(),
                                     [&](const Vec& u) {
                                       return !learned.Contains(u, 0.0);
                                     }),
                      particles.end());
      replenish();
      if (!particles.empty()) SampleRect(particles, pad, &e_min, &e_max);

      record_round();
      // Mid-pass: the cheap particle certificate only (the LP rectangle is
      // reserved for pass boundaries).
      if (result.rounds % options_.stop_check_every == 0 && particle_stop()) {
        certified = true;
        break;
      }
    }
    if (certified || result.rounds >= max_questions || ctx.DeadlineExpired()) {
      break;
    }
    if (certified_stop()) {
      certified = true;
      break;
    }
    if (questions_this_pass == 0) {
      // The filter skips every challenger although no certificate fired: the
      // particle rectangle cannot shrink further. Best-so-far, degraded.
      stuck = true;
      break;
    }
    rng_.Shuffle(&order);
  }

  result.best_index = champion;
  if (certified) {
    result.termination = result.dropped_answers > 0 ? Termination::kDegraded
                                                    : Termination::kConverged;
  } else if (stuck) {
    result.termination = Termination::kDegraded;
  } else {
    // max_questions, max_passes, or the deadline ran out first.
    result.termination = Termination::kBudgetExhausted;
  }
  result.seconds += watch.ElapsedSeconds();
  return result;
}

}  // namespace isrl
