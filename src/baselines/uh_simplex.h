// UH-Simplex (SIGMOD'19): greedy question selection — compare the candidates
// most likely to be the user's favourite.
#ifndef ISRL_BASELINES_UH_SIMPLEX_H_
#define ISRL_BASELINES_UH_SIMPLEX_H_

#include "baselines/uh_base.h"

namespace isrl {

/// Each round: rank candidates by utility at R's centroid (the top-ranked
/// candidates are extreme points of the candidate hull — an argmax of a
/// linear function is always hull-extreme) and ask about the best-ranked
/// informative pair.
class UhSimplex : public UhBase {
 public:
  UhSimplex(const Dataset& data, const UhOptions& options)
      : UhBase(data, options) {}

  std::string name() const override { return "UH-Simplex"; }

  std::unique_ptr<InteractiveAlgorithm> CloneForEval() const override {
    return std::make_unique<UhSimplex>(*this);
  }

 protected:
  std::optional<Question> SelectQuestion(const std::vector<size_t>& candidates,
                                         const Polyhedron& range,
                                         Rng& rng) override;
};

}  // namespace isrl

#endif  // ISRL_BASELINES_UH_SIMPLEX_H_
