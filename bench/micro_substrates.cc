// Substrate microbenchmarks (google-benchmark): LP solves, polyhedron cuts
// with vertex enumeration, enclosing balls, hit-and-run, skyline, DQN
// forward/backward — the per-round cost drivers of EA and AA.
#include <benchmark/benchmark.h>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "baselines/utility_approx.h"
#include "common/rng.h"
#include "core/aa.h"
#include "core/aa_state.h"
#include "core/ea.h"
#include "core/scheduler.h"
#include "core/ea_state.h"
#include "serve/sharding.h"
#include "core/terminal.h"
#include "geometry/volume.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "geometry/enclosing_ball.h"
#include "geometry/hit_and_run.h"
#include "geometry/polyhedron.h"
#include "lp/simplex.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "rl/dqn.h"
#include "user/sampler.h"

namespace isrl {
namespace {

// ---- LP: inner-sphere-style solve at growing constraint counts. ----
void BM_LpInnerSphere(benchmark::State& state) {
  const size_t d = 8;
  const size_t constraints = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Dataset data = GenerateSynthetic(200, d, Distribution::kAntiCorrelated, rng);
  std::vector<LearnedHalfspace> h;
  Vec u = rng.SimplexUniform(d);
  while (h.size() < constraints) {
    size_t a = static_cast<size_t>(rng.UniformInt(0, 199));
    size_t b = static_cast<size_t>(rng.UniformInt(0, 199));
    if (a == b) continue;
    bool pref = Dot(u, data.point(a)) >= Dot(u, data.point(b));
    LearnedHalfspace lh;
    lh.winner = pref ? a : b;
    lh.loser = pref ? b : a;
    lh.h = PreferenceHalfspace(data.point(lh.winner), data.point(lh.loser));
    h.push_back(lh);
  }
  for (auto _ : state) {
    AaGeometry geo = ComputeAaGeometry(d, h);
    benchmark::DoNotOptimize(geo);
  }
}
BENCHMARK(BM_LpInnerSphere)->Arg(4)->Arg(16)->Arg(64);

// ---- Polyhedron: cut + full vertex enumeration. ----
void BM_PolyhedronCut(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    Polyhedron p = Polyhedron::UnitSimplex(d);
    std::vector<Halfspace> cuts;
    for (int i = 0; i < 6; ++i) {
      cuts.push_back(Halfspace{rng.SimplexUniform(d) - rng.SimplexUniform(d), 0.0});
    }
    state.ResumeTiming();
    for (const Halfspace& h : cuts) {
      p.Cut(h);
      if (p.IsEmpty()) break;
    }
    benchmark::DoNotOptimize(p.vertices());
  }
}
BENCHMARK(BM_PolyhedronCut)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

// ---- Enclosing balls. ----
void BM_IterativeOuterBall(benchmark::State& state) {
  Rng rng(3);
  std::vector<Vec> pts;
  for (int i = 0; i < 40; ++i) pts.push_back(rng.SimplexUniform(5));
  for (auto _ : state) {
    Ball b = IterativeOuterBall(pts);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_IterativeOuterBall);

void BM_WelzlBall(benchmark::State& state) {
  Rng rng(4);
  std::vector<Vec> pts;
  for (int i = 0; i < 40; ++i) pts.push_back(rng.SimplexUniform(5));
  for (auto _ : state) {
    Ball b = WelzlMinimumBall(pts, rng);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_WelzlBall);

// ---- Hit-and-run sampling. ----
void BM_HitAndRun(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<Halfspace> cuts;
  for (int i = 0; i < 20; ++i) {
    Vec a = rng.SimplexUniform(d), b = rng.SimplexUniform(d);
    Halfspace h{a - b, 0.0};
    Vec center(d, 1.0 / static_cast<double>(d));
    if (!h.Contains(center)) h = h.Flipped();
    cuts.push_back(h);
  }
  Vec start(d, 1.0 / static_cast<double>(d));
  for (auto _ : state) {
    auto samples = HitAndRunSample(cuts, start, 64, rng);
    benchmark::DoNotOptimize(samples);
  }
}
BENCHMARK(BM_HitAndRun)->Arg(4)->Arg(20);

// ---- Skyline. ----
void BM_Skyline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Dataset data = GenerateSynthetic(n, 4, Distribution::kAntiCorrelated, rng);
  for (auto _ : state) {
    auto idx = SkylineIndices(data);
    benchmark::DoNotOptimize(idx);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Skyline)->Arg(1000)->Arg(10000)->Arg(100000);

// ---- DQN forward / update. ----
void BM_DqnForward(benchmark::State& state) {
  Rng rng(7);
  rl::DqnOptions opt;
  rl::DqnAgent agent(33, opt, rng);
  Vec input(33);
  for (size_t i = 0; i < 33; ++i) input[i] = rng.Uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.QValue(input));
  }
}
BENCHMARK(BM_DqnForward);

void BM_DqnUpdate(benchmark::State& state) {
  Rng rng(8);
  rl::DqnOptions opt;
  rl::DqnAgent agent(33, opt, rng);
  for (int i = 0; i < 256; ++i) {
    rl::Transition t;
    t.state_action = Vec(33, rng.Uniform(0, 1));
    t.reward = rng.Uniform(0, 100);
    t.terminal = rng.Bernoulli(0.3);
    if (!t.terminal) t.next_candidates = {Vec(33, 0.5), Vec(33, 0.1)};
    agent.Remember(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Update(rng));
  }
}
BENCHMARK(BM_DqnUpdate);

// ---- Scalar vs batched execution (DESIGN.md §12). ----
// Arg 0 of each pair selects the path: 0 = scalar reference, 1 = batched.
// Both paths produce bit-identical numbers; only the kernel shape differs.

rl::DqnOptions PathOptions(int64_t mode) {
  rl::DqnOptions opt;
  opt.batched_execution = mode == 1;
  return opt;
}

// One Q-network forward per candidate vs one GEMM per layer for the pool.
void BM_DqnScoreCandidates(benchmark::State& state) {
  const size_t pool = static_cast<size_t>(state.range(0));
  Rng rng(14);
  rl::DqnAgent agent(33, PathOptions(state.range(1)), rng);
  std::vector<Vec> candidates;
  candidates.reserve(pool);
  for (size_t i = 0; i < pool; ++i) {
    Vec c(33);
    for (size_t j = 0; j < 33; ++j) c[j] = rng.Uniform(0, 1);
    candidates.push_back(std::move(c));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.SelectGreedy(candidates));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pool));
}
BENCHMARK(BM_DqnScoreCandidates)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// The full training update at batch_size 64: TD-target computation, forward,
// backward. The headline number for the batched hot path. The second arg
// picks the activation: SELU (the paper default) spends most of the pass in
// std::exp — an identical per-element cost on both paths that compresses the
// visible kernel speedup — while ReLU (the in-tree ablation) shows the
// GEMM-bound ratio. The third arg is the next-candidate pool size per
// non-terminal transition: 8 matches the paper's m_h ≈ 5 action space, 64 is
// the large-action-space configuration where the TD-target stack dominates.
void BM_DqnUpdateBatch64(benchmark::State& state) {
  Rng rng(15);
  rl::DqnOptions opt = PathOptions(state.range(0));
  opt.activation =
      state.range(1) == 1 ? nn::Activation::kRelu : nn::Activation::kSelu;
  opt.batch_size = 64;
  opt.min_replay_before_update = 64;
  const int pool = static_cast<int>(state.range(2));
  rl::DqnAgent agent(33, opt, rng);
  for (int i = 0; i < 512; ++i) {
    rl::Transition t;
    t.state_action = Vec(33);
    for (size_t j = 0; j < 33; ++j) t.state_action[j] = rng.Uniform(0, 1);
    t.reward = rng.Uniform(0, 100);
    t.terminal = rng.Bernoulli(0.3);
    if (!t.terminal) {
      for (int c = 0; c < pool; ++c) {
        Vec cand(33);
        for (size_t j = 0; j < 33; ++j) cand[j] = rng.Uniform(0, 1);
        t.next_candidates.push_back(std::move(cand));
      }
    }
    agent.Remember(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Update(rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_DqnUpdateBatch64)
    ->Args({0, 0, 8})
    ->Args({1, 0, 8})
    ->Args({0, 1, 8})
    ->Args({1, 1, 8})
    ->Args({0, 0, 64})
    ->Args({1, 0, 64})
    ->Args({0, 1, 64})
    ->Args({1, 1, 64});

// Raw network substrate: scalar Predict loop vs one PredictBatch call.
void BM_NnPredictBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const bool batched = state.range(1) == 1;
  Rng rng(16);
  nn::Network net =
      nn::Network::Mlp({33, 64, 1}, nn::Activation::kSelu, rng);
  Matrix inputs(batch, 33);
  for (double& v : inputs.data()) v = rng.Uniform(0, 1);
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(net.PredictBatch(inputs));
    } else {
      double sum = 0.0;
      for (size_t r = 0; r < batch; ++r) sum += net.Infer(inputs.RowVec(r));
      benchmark::DoNotOptimize(sum);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_NnPredictBatch)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// ---- Top-1 scan (the inner loop of terminal-winner construction). ----
void BM_TopIndex(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  Dataset data = GenerateSynthetic(n, 20, Distribution::kAntiCorrelated, rng);
  Vec u = rng.SimplexUniform(20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.TopIndex(u));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_TopIndex)->Arg(1000)->Arg(10000);


// ---- Core operations: the per-round cost drivers of EA. ----
void BM_TerminalWinners(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(10);
  Dataset raw = GenerateSynthetic(n * 10, 4, Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  auto utils = SampleUtilityVectors(100, 4, rng);
  for (auto _ : state) {
    auto winners = TerminalWinners(sky, utils, 0.1);
    benchmark::DoNotOptimize(winners);
  }
}
BENCHMARK(BM_TerminalWinners)->Arg(100)->Arg(1000);

void BM_EaStateEncode(benchmark::State& state) {
  Rng rng(11);
  Polyhedron p = Polyhedron::UnitSimplex(4);
  for (int i = 0; i < 6; ++i) {
    Vec a = rng.SimplexUniform(4), b = rng.SimplexUniform(4);
    Polyhedron next = p;
    next.Cut(Halfspace{a - b, 0.0});
    if (!next.IsEmpty()) p = next;
  }
  EaStateOptions opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeEaState(p, opt));
  }
}
BENCHMARK(BM_EaStateEncode);

void BM_FeasibilityMargin(benchmark::State& state) {
  const size_t constraints = static_cast<size_t>(state.range(0));
  Rng rng(12);
  const size_t d = 8;
  std::vector<LearnedHalfspace> h;
  Vec u = rng.SimplexUniform(d);
  Dataset data = GenerateSynthetic(200, d, Distribution::kAntiCorrelated, rng);
  while (h.size() < constraints) {
    size_t a = static_cast<size_t>(rng.UniformInt(0, 199));
    size_t b = static_cast<size_t>(rng.UniformInt(0, 199));
    if (a == b) continue;
    bool pref = Dot(u, data.point(a)) >= Dot(u, data.point(b));
    LearnedHalfspace lh;
    lh.h = PreferenceHalfspace(data.point(pref ? a : b), data.point(pref ? b : a));
    h.push_back(lh);
  }
  Halfspace candidate{rng.SimplexUniform(d) - rng.SimplexUniform(d), 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(FeasibilityMargin(d, h, candidate));
  }
}
BENCHMARK(BM_FeasibilityMargin)->Arg(8)->Arg(32);

// ---- Sans-IO scheduler throughput (DESIGN.md §13). ----
// N complete episodes, mode 0 = N sequential Interact() calls, mode 1 = one
// SessionScheduler interleaving all N with cross-session coalesced
// Q-inference (one PredictBatch over every in-flight session's candidate
// pool per tick, instead of one small call per session per round). Both
// modes run the identical seeded episodes — items processed counts the
// questions answered, so items/sec is the serving throughput headline.

InteractionResult RunSeeded(InteractiveAlgorithm& algo, const Vec& utility,
                            uint64_t seed, const RunBudget& budget) {
  algo.Reseed(seed);
  LinearUser user(utility);
  return algo.Interact(user, budget);
}

void RunSessionThroughput(benchmark::State& state, InteractiveAlgorithm& algo,
                          const std::vector<Vec>& utilities) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  const bool scheduled = state.range(1) == 1;
  RunBudget budget;
  budget.max_rounds = 10;  // interactive users answer a handful of questions
  int64_t questions = 0;
  for (auto _ : state) {
    if (scheduled) {
      SessionScheduler scheduler;
      std::vector<std::unique_ptr<UserOracle>> owned;
      std::vector<UserOracle*> users;
      for (size_t i = 0; i < sessions; ++i) {
        SessionConfig config;
        config.budget = budget;
        config.seed = SplitSeed(17, i);
        scheduler.Add(algo.StartSession(config));
        owned.push_back(std::make_unique<LinearUser>(utilities[i]));
        users.push_back(owned.back().get());
      }
      for (const InteractionResult& r : DriveWithUsers(scheduler, users)) {
        questions += static_cast<int64_t>(r.rounds);
      }
    } else {
      for (size_t i = 0; i < sessions; ++i) {
        questions += static_cast<int64_t>(
            RunSeeded(algo, utilities[i], SplitSeed(17, i), budget).rounds);
      }
    }
  }
  state.SetItemsProcessed(questions);
}

// Serving-shaped configuration: the trained Q-network is the per-round cost
// EA/AA add over the baselines, so give it paper-real width and keep the
// action sampling lean — the regime where coalescing pays.
rl::DqnOptions ServingDqn() {
  rl::DqnOptions opt;
  opt.hidden_neurons = 256;
  return opt;
}

void BM_SessionThroughputEa(benchmark::State& state) {
  Rng rng(18);
  Dataset raw = GenerateSynthetic(800, 3, Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  EaOptions opt;
  opt.epsilon = 0.05;
  opt.dqn = ServingDqn();
  opt.actions.num_samples = 16;
  Ea ea(sky, opt);
  const size_t sessions = static_cast<size_t>(state.range(0));
  std::vector<Vec> utilities;
  for (size_t i = 0; i < sessions; ++i) {
    utilities.push_back(rng.SimplexUniform(3));
  }
  RunSessionThroughput(state, ea, utilities);
}
BENCHMARK(BM_SessionThroughputEa)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SessionThroughputAa(benchmark::State& state) {
  Rng rng(19);
  Dataset raw = GenerateSynthetic(800, 3, Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  AaOptions opt;
  opt.epsilon = 0.1;
  opt.dqn = ServingDqn();
  opt.actions.pool_samples = 16;
  Aa aa(sky, opt);
  const size_t sessions = static_cast<size_t>(state.range(0));
  std::vector<Vec> utilities;
  for (size_t i = 0; i < sessions; ++i) {
    utilities.push_back(rng.SimplexUniform(3));
  }
  RunSessionThroughput(state, aa, utilities);
}
BENCHMARK(BM_SessionThroughputAa)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

// ---- Sharded serving throughput (DESIGN.md §15). ----
// N complete episodes on a ShardedScheduler: S SessionScheduler shards
// pinned to worker threads, sessions routed by id % S, one coalesced
// PredictBatch per shard per tick. shards == 1 is the scaling baseline —
// the same engine with one worker — so the shard axis isolates what
// adding threads buys. Wall-clock (UseRealTime) is the serving headline;
// process CPU time is measured alongside so a single-core host — where S
// shards interleave on one core instead of running in parallel — reports
// the lack of speedup honestly instead of hiding it.

void RunShardedThroughput(
    benchmark::State& state,
    const std::vector<std::unique_ptr<InteractiveAlgorithm>>& clones,
    const std::vector<Vec>& utilities) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  RunBudget budget;
  budget.max_rounds = 10;
  int64_t questions = 0;
  for (auto _ : state) {
    ShardedScheduler sharded(ShardedOptions{shards});
    std::vector<std::unique_ptr<UserOracle>> owned;
    std::vector<UserOracle*> users;
    for (size_t i = 0; i < sessions; ++i) {
      SessionConfig config;
      config.budget = budget;
      config.seed = SplitSeed(17, i);
      // Session i lands on shard i % S; hand it that shard's clone so RL
      // scoring scratch is never shared across worker threads.
      sharded.Add(clones[i % shards]->StartSession(config));
      owned.push_back(std::make_unique<LinearUser>(utilities[i]));
      users.push_back(owned.back().get());
    }
    Result<std::vector<InteractionResult>> results =
        DriveSharded(sharded, users);
    if (!results.ok()) {
      state.SkipWithError(results.status().ToString().c_str());
      return;
    }
    for (const InteractionResult& r : results.value()) {
      questions += static_cast<int64_t>(r.rounds);
    }
  }
  state.SetItemsProcessed(questions);
}

void BM_ShardedThroughputEa(benchmark::State& state) {
  Rng rng(18);  // same data/seeds as BM_SessionThroughputEa: comparable rows
  Dataset raw = GenerateSynthetic(800, 3, Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  EaOptions opt;
  opt.epsilon = 0.05;
  opt.dqn = ServingDqn();
  opt.actions.num_samples = 16;
  Ea ea(sky, opt);
  std::vector<std::unique_ptr<InteractiveAlgorithm>> clones;
  for (int64_t k = 0; k < state.range(1); ++k) {
    clones.push_back(ea.CloneForEval());
  }
  const size_t sessions = static_cast<size_t>(state.range(0));
  std::vector<Vec> utilities;
  for (size_t i = 0; i < sessions; ++i) {
    utilities.push_back(rng.SimplexUniform(3));
  }
  RunShardedThroughput(state, clones, utilities);
}
BENCHMARK(BM_ShardedThroughputEa)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({1024, 8})
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Args({16384, 1})
    ->Args({16384, 2})
    ->Args({16384, 4})
    ->Args({16384, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_ShardedThroughputAa(benchmark::State& state) {
  Rng rng(19);  // same data/seeds as BM_SessionThroughputAa
  Dataset raw = GenerateSynthetic(800, 3, Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  AaOptions opt;
  opt.epsilon = 0.1;
  opt.dqn = ServingDqn();
  opt.actions.pool_samples = 16;
  Aa aa(sky, opt);
  std::vector<std::unique_ptr<InteractiveAlgorithm>> clones;
  for (int64_t k = 0; k < state.range(1); ++k) {
    clones.push_back(aa.CloneForEval());
  }
  const size_t sessions = static_cast<size_t>(state.range(0));
  std::vector<Vec> utilities;
  for (size_t i = 0; i < sessions; ++i) {
    utilities.push_back(rng.SimplexUniform(3));
  }
  RunShardedThroughput(state, clones, utilities);
}
BENCHMARK(BM_ShardedThroughputAa)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({1024, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// ---- Durable sessions: checkpoint save / restore (DESIGN.md §14). ----
// A scheduler population of N sessions parked mid-conversation. Mode 0
// times CheckpointAll() — serialize every live session into one framed,
// checksummed population snapshot — and mode 1 times RestoreAll() — verify
// the frame and rebuild every session from its bytes. The snapshot_bytes
// counter reports the population snapshot size, so the checked-in
// BENCH_checkpoint.json doubles as a size-regression record.

Dataset CheckpointSkyline() {
  Rng rng(21);
  Dataset raw = GenerateSynthetic(400, 4, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

void RunCheckpoint(benchmark::State& state, InteractiveAlgorithm& algo) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  const bool restore = state.range(1) == 1;
  Rng rng(22);
  RunBudget budget;
  budget.max_rounds = 50;
  SessionScheduler scheduler;
  std::vector<std::unique_ptr<UserOracle>> owned;
  std::vector<UserOracle*> users;
  for (size_t i = 0; i < sessions; ++i) {
    SessionConfig config;
    config.budget = budget;
    config.seed = SplitSeed(23, i);
    scheduler.Add(algo.StartSession(config), &algo);
    owned.push_back(std::make_unique<LinearUser>(rng.SimplexUniform(4)));
    users.push_back(owned.back().get());
  }
  // Two answered rounds each: the snapshot carries real mid-flight state
  // (cut polyhedra / learned halfspaces), not freshly constructed sessions.
  for (int tick = 0; tick < 2; ++tick) {
    for (const PendingQuestion& pq : scheduler.Tick()) {
      scheduler.PostAnswer(
          pq.session_id,
          users[pq.session_id]->Ask(pq.question.first, pq.question.second));
    }
  }
  Result<std::string> snapshot = scheduler.CheckpointAll();
  if (!snapshot.ok()) {
    state.SkipWithError(snapshot.status().ToString().c_str());
    return;
  }
  AlgorithmResolver resolver =
      [&algo](const std::string& name) -> InteractiveAlgorithm* {
    return name == algo.name() ? &algo : nullptr;
  };
  for (auto _ : state) {
    if (restore) {
      Result<SessionScheduler> restored =
          SessionScheduler::RestoreAll(*snapshot, resolver);
      benchmark::DoNotOptimize(restored);
    } else {
      Result<std::string> bytes = scheduler.CheckpointAll();
      benchmark::DoNotOptimize(bytes);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sessions));
  state.counters["snapshot_bytes"] = static_cast<double>(snapshot->size());
}

void BM_CheckpointEa(benchmark::State& state) {
  Dataset sky = CheckpointSkyline();
  EaOptions opt;
  opt.epsilon = 0.1;
  Ea ea(sky, opt);
  RunCheckpoint(state, ea);
}
BENCHMARK(BM_CheckpointEa)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointAa(benchmark::State& state) {
  Dataset sky = CheckpointSkyline();
  AaOptions opt;
  opt.epsilon = 0.1;
  Aa aa(sky, opt);
  RunCheckpoint(state, aa);
}
BENCHMARK(BM_CheckpointAa)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointUhRandom(benchmark::State& state) {
  Dataset sky = CheckpointSkyline();
  UhOptions opt;
  opt.epsilon = 0.1;
  UhRandom uh(sky, opt);
  RunCheckpoint(state, uh);
}
BENCHMARK(BM_CheckpointUhRandom)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointUhSimplex(benchmark::State& state) {
  Dataset sky = CheckpointSkyline();
  UhOptions opt;
  opt.epsilon = 0.1;
  UhSimplex uh(sky, opt);
  RunCheckpoint(state, uh);
}
BENCHMARK(BM_CheckpointUhSimplex)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointSinglePass(benchmark::State& state) {
  Dataset sky = CheckpointSkyline();
  SinglePassOptions opt;
  opt.epsilon = 0.1;
  SinglePass sp(sky, opt);
  RunCheckpoint(state, sp);
}
BENCHMARK(BM_CheckpointSinglePass)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointUtilityApprox(benchmark::State& state) {
  Dataset sky = CheckpointSkyline();
  UtilityApproxOptions opt;
  opt.epsilon = 0.1;
  UtilityApprox ua(sky, opt);
  RunCheckpoint(state, ua);
}
BENCHMARK(BM_CheckpointUtilityApprox)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SimplexVolume(benchmark::State& state) {
  Rng rng(13);
  std::vector<Halfspace> cuts;
  for (int i = 0; i < 5; ++i) {
    cuts.push_back(Halfspace{rng.SimplexUniform(4) - rng.SimplexUniform(4), 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimplexFractionVolume(4, cuts, 1000, rng));
  }
}
BENCHMARK(BM_SimplexVolume);

}  // namespace
}  // namespace isrl

// The system libbenchmark is compiled without NDEBUG and self-reports
// "debug" in the JSON context regardless of how isrl was built. Record the
// build type of the code under test so tools/bench_to_json.py can tell a
// debug-library warning from a debug-measurement problem.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("isrl_build_type", "release");
#else
  benchmark::AddCustomContext("isrl_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
