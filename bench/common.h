// Shared infrastructure for the figure benches.
//
// Every bench regenerates one figure of the paper's evaluation section: it
// builds the dataset, trains the RL agents, sweeps the figure's x-axis, and
// prints the same series the paper plots. ISRL_BENCH_SCALE selects the
// experiment scale:
//   smoke — seconds-long sanity run
//   fast  — (default) minutes-long run preserving every qualitative shape
//   paper — the paper's full parameters (n = 100,000; 10,000 training
//           vectors; expect hours)
#ifndef ISRL_BENCH_COMMON_H_
#define ISRL_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "baselines/utility_approx.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/session.h"
#include "data/real_like.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"

namespace isrl::bench {

/// Experiment scale selected by ISRL_BENCH_SCALE.
struct Scale {
  std::string name;
  size_t n_low_d;        ///< synthetic dataset size for d ≤ 5 figures
  size_t n_high_d;       ///< synthetic dataset size for d > 5 figures
  size_t train_low_d;    ///< training episodes for d ≤ 5
  size_t train_high_d;   ///< training episodes for d > 5
  size_t eval_users;     ///< simulated users per configuration
  size_t sp_cap;         ///< SinglePass question cap
  size_t regret_samples; ///< samples for the Fig 7/8 worst-case metric
};

inline Scale GetScale() {
  const char* env = std::getenv("ISRL_BENCH_SCALE");
  std::string s = env == nullptr ? "fast" : env;
  if (s == "smoke") {
    return Scale{"smoke", 2000, 2000, 30, 15, 3, 600, 200};
  }
  if (s == "paper") {
    return Scale{"paper", 100000, 100000, 10000, 2000, 10, 5000, 10000};
  }
  return Scale{"fast", 10000, 4000, 150, 15, 6, 1200, 400};
}

/// Master seed; override with ISRL_BENCH_SEED for variance studies.
/// Malformed values fail fast: atoll would silently turn "abc" into seed 0
/// and wrap negative values modulo 2^64, corrupting reproducibility reports.
inline uint64_t GetSeed() {
  const char* env = std::getenv("ISRL_BENCH_SEED");
  if (env == nullptr) return 9176u;
  uint64_t seed = 0;
  if (!ParseUint64(env, &seed)) {
    std::fprintf(stderr,
                 "ISRL_BENCH_SEED must be a non-negative base-10 integer "
                 "< 2^64, got '%s'\n",
                 env);
    std::exit(EXIT_FAILURE);
  }
  return seed;
}

/// Evaluation worker threads (ISRL_THREADS; default 1, "0" = one per core).
/// Evaluate() reads the same variable itself — this accessor exists so the
/// Banner can report the setting. Thread count never changes printed stats
/// (other than the timing columns), only wall-clock speed.
inline size_t GetThreads() { return ThreadsFromEnv(); }

/// Builds the normalised skyline of an anti-correlated synthetic dataset —
/// the paper's standard synthetic preprocessing.
inline Dataset AntiCorrelatedSkyline(size_t n, size_t d, Rng& rng) {
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

/// Prints the figure banner plus dataset facts.
inline void Banner(const std::string& figure, const std::string& setting,
                   const Dataset& skyline, const Scale& scale) {
  std::printf("# %s — %s\n", figure.c_str(), setting.c_str());
  std::printf("# scale=%s skyline=%zu d=%zu seed=%llu threads=%zu\n",
              scale.name.c_str(), skyline.size(), skyline.dim(),
              static_cast<unsigned long long>(GetSeed()), GetThreads());
  std::fflush(stdout);
}

/// Training configuration used by the benches: the paper's network and
/// replay settings plus the step-penalty shaping, decayed exploration, Adam
/// and two updates per round that make learning measurable at 10-100× fewer
/// episodes than the paper's 10,000 (see DESIGN.md §5 / EXPERIMENTS.md).
inline rl::DqnOptions BenchTrainingDqn(size_t episodes) {
  rl::DqnOptions dqn;
  dqn.optimizer = rl::OptimizerKind::kAdam;
  dqn.step_penalty = 1.0;
  dqn.gamma = 1.0;  // finite-horizon shortest-path objective
  dqn.epsilon_start = 0.9;
  dqn.epsilon_end = 0.1;
  dqn.epsilon_decay_episodes = episodes > 0 ? (2 * episodes) / 3 : 1;
  return dqn;
}

/// Trains EA for the given ε; prints a one-line training summary.
inline Ea MakeTrainedEa(const Dataset& sky, double epsilon, size_t episodes,
                        uint64_t seed) {
  EaOptions opt;
  opt.epsilon = epsilon;
  opt.seed = seed;
  opt.dqn = BenchTrainingDqn(episodes);
  opt.updates_per_round = 2;
  Ea ea(sky, opt);
  Rng rng(seed + 1);
  Stopwatch w;
  TrainStats ts = ea.Train(SampleUtilityVectors(episodes, sky.dim(), rng));
  std::printf("# trained EA(eps=%.2f): %zu episodes in %.1fs, train rounds %.1f\n",
              epsilon, ts.episodes, w.ElapsedSeconds(), ts.mean_rounds);
  std::fflush(stdout);
  return ea;
}

/// Trains AA for the given ε; prints a one-line training summary.
inline Aa MakeTrainedAa(const Dataset& sky, double epsilon, size_t episodes,
                        uint64_t seed, size_t max_rounds = 2000) {
  AaOptions opt;
  opt.epsilon = epsilon;
  opt.seed = seed;
  opt.max_rounds = max_rounds;
  opt.dqn = BenchTrainingDqn(episodes);
  opt.updates_per_round = 2;
  Aa aa(sky, opt);
  Rng rng(seed + 2);
  Stopwatch w;
  TrainStats ts = aa.Train(SampleUtilityVectors(episodes, sky.dim(), rng));
  std::printf("# trained AA(eps=%.2f): %zu episodes in %.1fs, train rounds %.1f\n",
              epsilon, ts.episodes, w.ElapsedSeconds(), ts.mean_rounds);
  std::fflush(stdout);
  return aa;
}

/// Evaluation users shared across the algorithms of one configuration.
inline std::vector<Vec> EvalUsers(size_t count, size_t d, uint64_t seed) {
  Rng rng(seed + 3);
  return SampleUtilityVectors(count, d, rng);
}

}  // namespace isrl::bench

#endif  // ISRL_BENCH_COMMON_H_
