// Noisy-user bench — the paper's stated future work ("users make mistakes
// when answering questions"). Sweeps the answer-flip probability and reports
// rounds + final regret per algorithm, with and without the majority-vote
// mitigation (each logical question re-asked 3 times).
#include "bench/common.h"

namespace isrl::bench {
namespace {

UserFactory MajorityFactory(double rate, size_t votes) {
  return [rate, votes](const Vec& u, uint64_t user_seed) {
    // The voter owns its noisy inner oracle, whose flip stream is seeded
    // per user — safe and deterministic under parallel evaluation.
    return std::make_unique<MajorityVoteUser>(
        std::make_unique<NoisyUser>(u, rate, user_seed), votes);
  };
}

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  Rng rng(seed);
  Dataset sky = AntiCorrelatedSkyline(scale.n_low_d, 4, rng);
  Banner("Noisy users", "answer-flip sweep on 4-d synthetic (epsilon=0.1)",
         sky, scale);
  std::vector<Vec> eval = EvalUsers(scale.eval_users, 4, seed);

  Ea ea = MakeTrainedEa(sky, 0.1, scale.train_low_d, seed);
  Aa aa = MakeTrainedAa(sky, 0.1, scale.train_low_d, seed);
  UhOptions uopt;
  uopt.epsilon = 0.1;
  uopt.seed = seed;
  UhRandom uh(sky, uopt);

  PrintEvalHeader("flip_prob");
  for (double rate : {0.0, 0.05, 0.1, 0.2}) {
    // float-eq-ok: exact literal from the sweep list above
    UserFactory factory = rate == 0.0 ? MakeLinearUserFactory()
                                      : MakeNoisyUserFactory(rate);
    std::string label = Format("%.2f", rate);
    PrintEvalRow(label, Evaluate(ea, sky, eval, 0.1, factory));
    PrintEvalRow(label, Evaluate(aa, sky, eval, 0.1, factory));
    PrintEvalRow(label, Evaluate(uh, sky, eval, 0.1, factory));
  }

  std::printf("\n## Majority-vote mitigation (3 votes per question; rounds "
              "count the logical questions)\n");
  PrintEvalHeader("flip_prob");
  for (double rate : {0.1, 0.2}) {
    UserFactory factory = MajorityFactory(rate, 3);
    std::string label = Format("%.2f", rate);
    EvalStats s = Evaluate(ea, sky, eval, 0.1, factory);
    s.algorithm = "EA+vote3";
    PrintEvalRow(label, s);
    s = Evaluate(aa, sky, eval, 0.1, factory);
    s.algorithm = "AA+vote3";
    PrintEvalRow(label, s);
  }

  // Full fault model: flips + timeouts + adversarial boundary flips, under a
  // round budget. The degraded/budget columns report how sessions ended;
  // every session still returns a recommendation (aborts would print here).
  std::printf("\n## Fault injection (FaultyUser: flips + timeouts + boundary "
              "flips; budget %zu rounds)\n", size_t{200});
  RunBudget budget;
  budget.max_rounds = 200;
  PrintEvalHeader("flip_prob");
  for (double rate : {0.05, 0.1, 0.2}) {
    FaultyUserOptions fopt;
    fopt.flip_rate = rate;
    fopt.no_answer_rate = 0.05;
    fopt.boundary_band = 0.01;
    fopt.seed = seed + 9;
    UserFactory factory = MakeFaultyUserFactory(fopt);
    std::string label = Format("%.2f", rate);
    for (InteractiveAlgorithm* algo :
         std::initializer_list<InteractiveAlgorithm*>{&ea, &aa, &uh}) {
      EvalStats s = Evaluate(*algo, sky, eval, 0.1, factory, budget);
      PrintEvalRow(label, s);
      if (s.aborted > 0) {
        std::printf("  !! %zu aborted sessions for %s\n", s.aborted,
                    s.algorithm.c_str());
      }
    }
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
