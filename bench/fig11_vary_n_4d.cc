// Figure 11 — vary the dataset size n on the 4-d anti-correlated synthetic
// dataset (ε = 0.1): rounds and execution time for all five algorithms.
#include "bench/common.h"

namespace isrl::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  std::vector<size_t> sweep;
  if (scale.name == "paper") {
    sweep = {10000, 100000, 500000, 1000000};
  } else if (scale.name == "smoke") {
    sweep = {1000, 4000};
  } else {
    sweep = {2000, 10000, 50000, 200000};
  }

  std::printf("# Figure 11 — vary n on 4-d anti-correlated synthetic "
              "(epsilon=0.1, scale=%s)\n", scale.name.c_str());
  PrintEvalHeader("n");
  for (size_t n : sweep) {
    Rng rng(seed);
    Dataset sky = AntiCorrelatedSkyline(n, 4, rng);
    std::printf("# n=%zu skyline=%zu\n", n, sky.size());
    std::vector<Vec> eval = EvalUsers(scale.eval_users, 4, seed);
    std::string label = Format("%zu", n);
    {
      Ea ea = MakeTrainedEa(sky, 0.1, scale.train_low_d, seed);
      PrintEvalRow(label, Evaluate(ea, sky, eval, 0.1));
    }
    {
      Aa aa = MakeTrainedAa(sky, 0.1, scale.train_low_d, seed);
      PrintEvalRow(label, Evaluate(aa, sky, eval, 0.1));
    }
    {
      UhOptions opt;
      opt.seed = seed;
      UhRandom uh(sky, opt);
      PrintEvalRow(label, Evaluate(uh, sky, eval, 0.1));
    }
    {
      UhOptions opt;
      opt.seed = seed;
      UhSimplex uh(sky, opt);
      PrintEvalRow(label, Evaluate(uh, sky, eval, 0.1));
    }
    {
      SinglePassOptions opt;
      opt.seed = seed;
      opt.max_questions = scale.sp_cap;
      SinglePass sp(sky, opt);
      PrintEvalRow(label, Evaluate(sp, sky, eval, 0.1));
    }
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
