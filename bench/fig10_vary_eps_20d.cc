// Figure 10 — vary the regret threshold ε on the 20-d anti-correlated
// synthetic dataset: rounds, time and final regret for AA vs SinglePass
// (the polyhedron-based algorithms do not run above d = 10).
#include "bench/common.h"

namespace isrl::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  Rng rng(seed);
  Dataset sky = AntiCorrelatedSkyline(scale.n_high_d, 20, rng);
  Banner("Figure 10", "vary epsilon on 20-d anti-correlated synthetic", sky,
         scale);
  const size_t users_count = std::max<size_t>(2, scale.eval_users / 2);
  std::vector<Vec> eval = EvalUsers(users_count, 20, seed);
  PrintEvalHeader("epsilon");

  for (double eps : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    std::string label = Format("%.2f", eps);
    {
      Aa aa = MakeTrainedAa(sky, eps, scale.train_high_d, seed);
      PrintEvalRow(label, Evaluate(aa, sky, eval, eps));
    }
    {
      SinglePassOptions opt;
      opt.epsilon = eps;
      opt.seed = seed;
      opt.max_questions = scale.sp_cap;
      SinglePass sp(sky, opt);
      PrintEvalRow(label, Evaluate(sp, sky, eval, eps));
    }
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
