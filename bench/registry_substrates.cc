// Registry substrate microbenchmarks (google-benchmark): what the §18
// continuous-learning machinery costs the serving path. BM_RegistrySwap
// serves N complete EA episodes with mode 0 = every session pinned to one
// published snapshot (no registry churn) and mode 1 = a fresh version
// published and pinned per session — the worst-case hot-swap cadence, which
// also fragments cross-session score coalescing into per-snapshot groups.
// BM_TraceHarvest serves the same wave with mode 0 = no harvest sink and
// mode 1 = every finished session distilled into a TraceStore record. Both
// modes of both benchmarks run identical seeded episodes, so the ratio is
// pure registry/harvest overhead.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/ea.h"
#include "core/scheduler.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "nn/registry.h"
#include "serve/trace_store.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

// Serving-shaped EA: paper-real network width, lean action sampling —
// matches BM_SessionThroughputEa so rows are comparable across suites.
Ea MakeServingEa(Dataset& sky) {
  EaOptions opt;
  opt.epsilon = 0.05;
  opt.dqn.hidden_neurons = 256;
  opt.actions.num_samples = 16;
  return Ea(sky, opt);
}

void BM_RegistrySwap(benchmark::State& state) {
  Rng rng(18);
  Dataset raw = GenerateSynthetic(800, 3, Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  Ea ea = MakeServingEa(sky);
  const size_t sessions = static_cast<size_t>(state.range(0));
  const bool swap_per_session = state.range(1) == 1;
  std::vector<Vec> utilities;
  for (size_t i = 0; i < sessions; ++i) {
    utilities.push_back(rng.SimplexUniform(3));
  }
  RunBudget budget;
  budget.max_rounds = 10;
  int64_t questions = 0;
  int64_t publishes = 0;
  for (auto _ : state) {
    nn::ModelRegistry registry;
    registry.Publish(ea.agent().main_network());
    ++publishes;
    SessionScheduler scheduler;
    std::vector<std::unique_ptr<UserOracle>> owned;
    std::vector<UserOracle*> users;
    for (size_t i = 0; i < sessions; ++i) {
      if (swap_per_session && i > 0) {
        // Hot-swap before every admission: same weights, new version, so
        // the episodes stay identical while the registry machinery —
        // publish copy, fingerprint, snapshot pin — runs at full cadence.
        registry.Publish(ea.agent().main_network());
        ++publishes;
      }
      SessionConfig config;
      config.budget = budget;
      config.seed = SplitSeed(17, i);
      config.model = registry.Latest();
      scheduler.Add(ea.StartSession(config));
      owned.push_back(std::make_unique<LinearUser>(utilities[i]));
      users.push_back(owned.back().get());
    }
    for (const InteractionResult& r : DriveWithUsers(scheduler, users)) {
      questions += static_cast<int64_t>(r.rounds);
    }
  }
  state.SetItemsProcessed(questions);
  state.counters["publishes"] =
      benchmark::Counter(static_cast<double>(publishes));
}
BENCHMARK(BM_RegistrySwap)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

void BM_TraceHarvest(benchmark::State& state) {
  Rng rng(18);
  Dataset raw = GenerateSynthetic(800, 3, Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  Ea ea = MakeServingEa(sky);
  const size_t sessions = static_cast<size_t>(state.range(0));
  const bool harvest = state.range(1) == 1;
  std::vector<Vec> utilities;
  for (size_t i = 0; i < sessions; ++i) {
    utilities.push_back(rng.SimplexUniform(3));
  }
  nn::ModelRegistry registry;
  registry.Publish(ea.agent().main_network());
  RunBudget budget;
  budget.max_rounds = 10;
  int64_t questions = 0;
  int64_t harvested = 0;
  TraceStore traces;
  for (auto _ : state) {
    SessionScheduler scheduler;
    if (harvest) {
      scheduler.SetHarvestSink(
          [&traces](size_t id, const SessionTraceRecord& record) {
            traces.Harvest(id, record);
          });
    }
    std::vector<std::unique_ptr<UserOracle>> owned;
    std::vector<UserOracle*> users;
    for (size_t i = 0; i < sessions; ++i) {
      SessionConfig config;
      config.budget = budget;
      config.seed = SplitSeed(17, i);
      config.model = registry.Latest();
      scheduler.Add(ea.StartSession(config), &ea);
      owned.push_back(std::make_unique<LinearUser>(utilities[i]));
      users.push_back(owned.back().get());
    }
    for (const InteractionResult& r : DriveWithUsers(scheduler, users)) {
      questions += static_cast<int64_t>(r.rounds);
    }
  }
  harvested = static_cast<int64_t>(traces.harvested());
  state.SetItemsProcessed(questions);
  state.counters["harvested"] =
      benchmark::Counter(static_cast<double>(harvested));
}
BENCHMARK(BM_TraceHarvest)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace isrl

// The system libbenchmark is compiled without NDEBUG and self-reports
// "debug" in the JSON context regardless of how isrl was built. Record the
// build type of the code under test so tools/bench_to_json.py can tell a
// debug-library warning from a debug-measurement problem.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("isrl_build_type", "release");
#else
  benchmark::AddCustomContext("isrl_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
