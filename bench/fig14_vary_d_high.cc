// Figure 14 — vary the dimensionality d ∈ [5, 25] on anti-correlated
// synthetic datasets (ε = 0.1): rounds and execution time for the two
// algorithms that scale past d = 10 (AA and SinglePass). AA's headline
// scalability claim — handling 4–5× more attributes than the SOTA — shows
// here as AA finishing at every d while round counts grow gently.
#include "bench/common.h"

namespace isrl::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  std::printf("# Figure 14 — vary d in [5,25] on anti-correlated synthetic "
              "(epsilon=0.1, scale=%s)\n", scale.name.c_str());
  PrintEvalHeader("d");
  const size_t users_count = std::max<size_t>(2, scale.eval_users / 2);
  for (size_t d : {5, 10, 15, 20, 25}) {
    Rng rng(seed);
    Dataset sky = AntiCorrelatedSkyline(scale.n_high_d, d, rng);
    std::printf("# d=%zu skyline=%zu\n", d, sky.size());
    std::vector<Vec> eval = EvalUsers(users_count, d, seed);
    std::string label = Format("%zu", d);
    {
      Aa aa = MakeTrainedAa(sky, 0.1, scale.train_high_d, seed);
      PrintEvalRow(label, Evaluate(aa, sky, eval, 0.1));
    }
    {
      SinglePassOptions opt;
      opt.seed = seed;
      opt.max_questions = scale.sp_cap;
      SinglePass sp(sky, opt);
      PrintEvalRow(label, Evaluate(sp, sky, eval, 0.1));
    }
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
