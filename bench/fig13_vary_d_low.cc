// Figure 13 — vary the dimensionality d ∈ [2, 5] on anti-correlated
// synthetic datasets (ε = 0.1): rounds and execution time, all algorithms.
#include "bench/common.h"

namespace isrl::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  std::printf("# Figure 13 — vary d in [2,5] on anti-correlated synthetic "
              "(epsilon=0.1, scale=%s)\n", scale.name.c_str());
  PrintEvalHeader("d");
  for (size_t d : {2, 3, 4, 5}) {
    Rng rng(seed);
    Dataset sky = AntiCorrelatedSkyline(scale.n_low_d, d, rng);
    std::printf("# d=%zu skyline=%zu\n", d, sky.size());
    std::vector<Vec> eval = EvalUsers(scale.eval_users, d, seed);
    std::string label = Format("%zu", d);
    {
      Ea ea = MakeTrainedEa(sky, 0.1, scale.train_low_d, seed);
      PrintEvalRow(label, Evaluate(ea, sky, eval, 0.1));
    }
    {
      Aa aa = MakeTrainedAa(sky, 0.1, scale.train_low_d, seed);
      PrintEvalRow(label, Evaluate(aa, sky, eval, 0.1));
    }
    {
      UhOptions opt;
      opt.seed = seed;
      UhRandom uh(sky, opt);
      PrintEvalRow(label, Evaluate(uh, sky, eval, 0.1));
    }
    {
      UhOptions opt;
      opt.seed = seed;
      UhSimplex uh(sky, opt);
      PrintEvalRow(label, Evaluate(uh, sky, eval, 0.1));
    }
    {
      SinglePassOptions opt;
      opt.seed = seed;
      opt.max_questions = scale.sp_cap;
      SinglePass sp(sky, opt);
      PrintEvalRow(label, Evaluate(sp, sky, eval, 0.1));
    }
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
