// Figure 16 — vary ε on the Player dataset (20 attributes; synthetic
// stand-in matched to the Kaggle NBA table the paper uses — see DESIGN.md
// §3): rounds and execution time for AA vs SinglePass. This is the paper's
// flagship real-data result: SinglePass needs hundreds of questions (727 at
// typical settings) while AA needs tens.
#include "bench/common.h"

namespace isrl::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  Rng rng(seed);
  size_t rows = scale.name == "smoke" ? 2000
                : scale.name == "paper" ? kPlayerRows
                                        : 6000;
  Dataset player = MakePlayerDataset(rng, rows);
  Dataset sky = SkylineOf(player);
  Banner("Figure 16", "vary epsilon on the Player dataset (synthetic stand-in)",
         sky, scale);
  const size_t users_count = std::max<size_t>(2, scale.eval_users / 2);
  std::vector<Vec> eval = EvalUsers(users_count, kPlayerAttributes, seed);
  PrintEvalHeader("epsilon");

  for (double eps : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    std::string label = Format("%.2f", eps);
    {
      Aa aa = MakeTrainedAa(sky, eps, scale.train_high_d, seed);
      PrintEvalRow(label, Evaluate(aa, sky, eval, eps));
    }
    {
      SinglePassOptions opt;
      opt.epsilon = eps;
      opt.seed = seed;
      opt.max_questions = scale.sp_cap;
      SinglePass sp(sky, opt);
      PrintEvalRow(label, Evaluate(sp, sky, eval, eps));
    }
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
