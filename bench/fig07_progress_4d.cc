// Figure 7 — interaction-process progress on the 4-d anti-correlated
// synthetic dataset: per-round maximum regret ratio and cumulative execution
// time for EA, AA, UH-Random, UH-Simplex, and SinglePass.
#include <algorithm>

#include "bench/common.h"

namespace isrl::bench {
namespace {

void PrintTrajectory(const std::string& name, const TraceSummary& t,
                     size_t max_rows) {
  size_t rows = std::min(max_rows, t.mean_max_regret.size());
  for (size_t r = 0; r < rows; ++r) {
    std::printf("%-12s %8zu %14.4f %14.4f\n", name.c_str(), r + 1,
                t.mean_max_regret[r], t.mean_cumulative_seconds[r]);
  }
  std::fflush(stdout);
}

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  Rng rng(seed);
  Dataset sky = AntiCorrelatedSkyline(scale.n_low_d, 4, rng);
  Banner("Figure 7", "interaction progress on 4-d synthetic (epsilon=0.1)",
         sky, scale);
  std::vector<Vec> users = EvalUsers(scale.eval_users, 4, seed);
  const size_t max_rows = 40;  // figure x-axis span

  std::printf("%-12s %8s %14s %14s\n", "algorithm", "round", "max_regret",
              "cum_time_s");

  {
    Ea ea = MakeTrainedEa(sky, 0.1, scale.train_low_d, seed);
    PrintTrajectory("EA", EvaluateTrajectory(ea, sky, users,
                                             scale.regret_samples, seed),
                    max_rows);
  }
  {
    Aa aa = MakeTrainedAa(sky, 0.1, scale.train_low_d, seed);
    PrintTrajectory("AA", EvaluateTrajectory(aa, sky, users,
                                             scale.regret_samples, seed),
                    max_rows);
  }
  {
    UhOptions opt;
    opt.epsilon = 0.1;
    opt.seed = seed;
    UhRandom uh(sky, opt);
    PrintTrajectory("UH-Random", EvaluateTrajectory(uh, sky, users,
                                                    scale.regret_samples, seed),
                    max_rows);
  }
  {
    UhOptions opt;
    opt.epsilon = 0.1;
    opt.seed = seed;
    UhSimplex uh(sky, opt);
    PrintTrajectory("UH-Simplex", EvaluateTrajectory(uh, sky, users,
                                                     scale.regret_samples, seed),
                    max_rows);
  }
  {
    SinglePassOptions opt;
    opt.epsilon = 0.1;
    opt.seed = seed;
    opt.max_questions = scale.sp_cap;
    SinglePass sp(sky, opt);
    PrintTrajectory("SinglePass", EvaluateTrajectory(sp, sky, users,
                                                     scale.regret_samples, seed),
                    max_rows);
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
