// Question-budget bench — the paper's motivating constraint: marketing
// research caps surveys at ~10 questions (Section I). Caps every algorithm
// at B ∈ {5, 10, 20} questions and reports the best-effort regret of what it
// returns; the RL algorithms should be near-converged inside the budget
// while the short-term baselines are still far away.
#include "bench/common.h"

namespace isrl::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  Rng rng(seed);
  Dataset sky = AntiCorrelatedSkyline(scale.n_low_d, 4, rng);
  Banner("Question budget",
         "regret achievable within a fixed budget (4-d, epsilon=0.1)", sky,
         scale);
  std::vector<Vec> eval = EvalUsers(scale.eval_users, 4, seed);
  // Train once without a cap; the cap applies only at interaction time.
  Ea ea_trained = MakeTrainedEa(sky, 0.1, scale.train_low_d, seed);
  Aa aa_trained = MakeTrainedAa(sky, 0.1, scale.train_low_d, seed);

  PrintEvalHeader("budget");
  for (size_t budget : {5, 10, 20}) {
    std::string label = Format("%zu", budget);
    {
      EaOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      opt.max_rounds = budget;
      Ea ea(sky, opt);
      ea.agent().main_network().CopyParamsFrom(
          ea_trained.agent().main_network());
      ea.agent().SyncTarget();
      PrintEvalRow(label, Evaluate(ea, sky, eval, 0.1));
    }
    {
      AaOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      opt.max_rounds = budget;
      Aa aa(sky, opt);
      aa.agent().main_network().CopyParamsFrom(
          aa_trained.agent().main_network());
      aa.agent().SyncTarget();
      PrintEvalRow(label, Evaluate(aa, sky, eval, 0.1));
    }
    {
      UhOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      opt.max_rounds = budget;
      UhRandom uh(sky, opt);
      PrintEvalRow(label, Evaluate(uh, sky, eval, 0.1));
    }
    {
      UhOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      opt.max_rounds = budget;
      UhSimplex uh(sky, opt);
      PrintEvalRow(label, Evaluate(uh, sky, eval, 0.1));
    }
    {
      SinglePassOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      opt.max_questions = budget;
      SinglePass sp(sky, opt);
      PrintEvalRow(label, Evaluate(sp, sky, eval, 0.1));
    }
  }
  std::printf("# Note: within_eps is the fraction of users whose capped "
              "answer already meets the threshold.\n");
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
