// Figure 6 — impact of training on EA and AA (4-d anti-correlated synthetic).
//   (a) vary the training-set size         → interactive rounds
//   (b) vary the action-space size m_h     → interactive rounds
// Plus the state-representation ablations DESIGN.md §6 calls out.
#include "bench/common.h"

namespace isrl::bench {
namespace {

void RunFigure6a(const Dataset& sky, const Scale& scale, uint64_t seed) {
  std::printf("\n## Figure 6(a): vary training-set size (epsilon=0.1)\n");
  PrintEvalHeader("train_size");
  std::vector<Vec> eval = EvalUsers(scale.eval_users, sky.dim(), seed);
  std::vector<size_t> sweep{0, scale.train_low_d / 4, scale.train_low_d / 2,
                            scale.train_low_d, scale.train_low_d * 2};
  for (size_t train_size : sweep) {
    {
      Ea ea = MakeTrainedEa(sky, 0.1, train_size, seed);
      PrintEvalRow(Format("%zu", train_size), Evaluate(ea, sky, eval, 0.1));
    }
    {
      Aa aa = MakeTrainedAa(sky, 0.1, train_size, seed);
      PrintEvalRow(Format("%zu", train_size), Evaluate(aa, sky, eval, 0.1));
    }
  }
}

void RunFigure6b(const Dataset& sky, const Scale& scale, uint64_t seed) {
  std::printf("\n## Figure 6(b): vary action-space size m_h (epsilon=0.1)\n");
  PrintEvalHeader("m_h");
  std::vector<Vec> eval = EvalUsers(scale.eval_users, sky.dim(), seed);
  for (size_t m_h : {2, 5, 10, 20}) {
    {
      EaOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      opt.actions.m_h = m_h;
      opt.dqn = BenchTrainingDqn(scale.train_low_d);
      opt.updates_per_round = 2;
      Ea ea(sky, opt);
      Rng rng(seed + 1);
      ea.Train(SampleUtilityVectors(scale.train_low_d, sky.dim(), rng));
      PrintEvalRow(Format("%zu", m_h), Evaluate(ea, sky, eval, 0.1));
    }
    {
      AaOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      opt.actions.m_h = m_h;
      opt.dqn = BenchTrainingDqn(scale.train_low_d);
      opt.updates_per_round = 2;
      Aa aa(sky, opt);
      Rng rng(seed + 2);
      aa.Train(SampleUtilityVectors(scale.train_low_d, sky.dim(), rng));
      PrintEvalRow(Format("%zu", m_h), Evaluate(aa, sky, eval, 0.1));
    }
  }
}

void RunStateAblations(const Dataset& sky, const Scale& scale, uint64_t seed) {
  std::printf(
      "\n## Ablation: EA state without coverage selection (m_e=1) and with a "
      "large m_e\n");
  PrintEvalHeader("m_e");
  std::vector<Vec> eval = EvalUsers(scale.eval_users, sky.dim(), seed);
  for (size_t m_e : {1, 5, 10}) {
    EaOptions opt;
    opt.epsilon = 0.1;
    opt.seed = seed;
    opt.state.m_e = m_e;
    opt.dqn = BenchTrainingDqn(scale.train_low_d);
    opt.updates_per_round = 2;
    Ea ea(sky, opt);
    Rng rng(seed + 1);
    ea.Train(SampleUtilityVectors(scale.train_low_d, sky.dim(), rng));
    PrintEvalRow(Format("%zu", m_e), Evaluate(ea, sky, eval, 0.1));
  }
}

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  Rng rng(seed);
  Dataset sky = AntiCorrelatedSkyline(scale.n_low_d, 4, rng);
  Banner("Figure 6", "training ablations on 4-d anti-correlated synthetic",
         sky, scale);
  RunFigure6a(sky, scale, seed);
  RunFigure6b(sky, scale, seed);
  RunStateAblations(sky, scale, seed);
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
