// Correlation-family sweep — an extension study the paper does not run: its
// synthetic experiments are all anti-correlated (the hardest case, richest
// skyline). This bench repeats the ε=0.1, 4-d comparison on correlated and
// independent data as well, showing how much of every algorithm's round
// count is driven by skyline size, and that the EA < AA < baselines ordering
// is distribution-independent.
#include "bench/common.h"

namespace isrl::bench {
namespace {

void RunFamily(const char* name, Distribution distribution, const Scale& scale,
               uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(scale.n_low_d, 4, distribution, rng);
  Dataset sky = SkylineOf(raw);
  std::printf("# family=%s skyline=%zu\n", name, sky.size());
  std::vector<Vec> eval = EvalUsers(scale.eval_users, 4, seed);

  {
    Ea ea = MakeTrainedEa(sky, 0.1, scale.train_low_d, seed);
    PrintEvalRow(name, Evaluate(ea, sky, eval, 0.1));
  }
  {
    Aa aa = MakeTrainedAa(sky, 0.1, scale.train_low_d, seed);
    PrintEvalRow(name, Evaluate(aa, sky, eval, 0.1));
  }
  {
    UhOptions opt;
    opt.epsilon = 0.1;
    opt.seed = seed;
    UhRandom uh(sky, opt);
    PrintEvalRow(name, Evaluate(uh, sky, eval, 0.1));
  }
  {
    SinglePassOptions opt;
    opt.epsilon = 0.1;
    opt.seed = seed;
    opt.max_questions = scale.sp_cap;
    SinglePass sp(sky, opt);
    PrintEvalRow(name, Evaluate(sp, sky, eval, 0.1));
  }
}

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  std::printf("# Correlation families — 4-d synthetic, epsilon=0.1 "
              "(extension; the paper evaluates anti-correlated only), "
              "scale=%s\n", scale.name.c_str());
  PrintEvalHeader("family");
  RunFamily("anti", Distribution::kAntiCorrelated, scale, seed);
  RunFamily("indep", Distribution::kIndependent, scale, seed);
  RunFamily("corr", Distribution::kCorrelated, scale, seed);
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
