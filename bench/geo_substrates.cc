// Geometry substrate benchmarks (google-benchmark): the incremental
// adjacency-maintained polyhedron vs full re-enumeration, AA's shared-
// phase-1 rectangle LPs vs independent solves, and the warm-started
// extreme-point sweep vs per-query cold LPs (DESIGN.md §17).
//
// Mode argument convention (tools/bench_to_json.py --suite geometry):
// 0 = baseline (seed path: rebuild / independent / cold), 1 = variant
// (incremental / shared / warm). Both paths produce identical results —
// bit-identical for cuts and AA geometry, verdict-identical for the sweep.
//
// Cut normals come from hypercube-uniform item pairs (PreferenceHalfspace),
// matching src/data/synthetic.cc: generic-position inputs keep the
// incremental path on its certified fast path. Offset-zero simplex-
// difference cuts would all pass through the barycenter and measure the
// degradation fallback instead (see test_geometry.cc
// CentralArrangementDegradesBitIdentical).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/aa_state.h"
#include "geometry/convex_hull.h"
#include "geometry/halfspace.h"
#include "geometry/polyhedron.h"

namespace isrl {
namespace {

// A preference cut between two hypercube-uniform items, oriented so the
// hidden utility point u stays feasible — the shape of a consistent EA/AA
// session, and a guarantee the region never empties mid-sequence.
Halfspace RandomItemCut(Rng& rng, const Vec& u, size_t d) {
  Vec a(d), b(d);
  for (size_t c = 0; c < d; ++c) {
    a[c] = rng.Uniform(0.0, 1.0);
    b[c] = rng.Uniform(0.0, 1.0);
  }
  if (Dot(u, a) >= Dot(u, b)) return PreferenceHalfspace(a, b);
  return PreferenceHalfspace(b, a);
}

// ---- Cut sequences: incremental adjacency maintenance vs full rebuild.
// The rebuild baseline enumerates C(d + k − 1, d − 1) subsets on the k-th
// cut; the incremental path touches only dead vertices and their incident
// edges. Dimensions stay ≤ 6 so the baseline finishes. ----
void BM_GeoCutSequence(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const bool incremental = state.range(1) == 1;
  const size_t kCuts = 12;
  Polyhedron::Options options;
  options.incremental = incremental;
  Rng rng(100 + d);
  const Vec u = rng.SimplexUniform(d);
  std::vector<Halfspace> cuts;
  for (size_t i = 0; i < kCuts; ++i) cuts.push_back(RandomItemCut(rng, u, d));
  for (auto _ : state) {
    Polyhedron p = Polyhedron::UnitSimplex(d, options);
    for (const Halfspace& h : cuts) p.Cut(h);
    benchmark::DoNotOptimize(p.vertices());
  }
}
BENCHMARK(BM_GeoCutSequence)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({6, 0})
    ->Args({6, 1})
    ->Args({8, 0})
    ->Args({8, 1});

// ---- AA geometry at the fig14 operating points: the 2d rectangle-extent
// LPs solved independently (seed path) vs through lp::FamilySolver, which
// runs simplex phase 1 once per escalation rung and replays it per member.
// This is the dominant per-round LP cost of AA at high d. ----
void BM_GeoAaGeometry(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const bool shared = state.range(1) == 1;
  const size_t kHalfspaces = 32;
  Rng rng(200 + d);
  Vec u = rng.SimplexUniform(d);
  std::vector<LearnedHalfspace> h;
  while (h.size() < kHalfspaces) {
    Vec a(d), b(d);
    for (size_t c = 0; c < d; ++c) {
      a[c] = rng.Uniform(0.0, 1.0);
      b[c] = rng.Uniform(0.0, 1.0);
    }
    const bool pref = Dot(u, a) >= Dot(u, b);
    LearnedHalfspace lh;
    lh.h = PreferenceHalfspace(pref ? a : b, pref ? b : a);
    h.push_back(lh);
  }
  for (auto _ : state) {
    AaGeometry geo = ComputeAaGeometry(d, h, /*max_lp_iterations=*/0,
                                       /*share_rectangle_lps=*/shared);
    benchmark::DoNotOptimize(geo);
  }
}
BENCHMARK(BM_GeoAaGeometry)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({15, 0})
    ->Args({15, 1})
    ->Args({20, 0})
    ->Args({20, 1});

// ---- Extreme-point sweep: per-query cold LPs (fresh model each time) vs
// the shared patched model chaining optimal bases between queries. ----
void BM_GeoExtremeSweep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool warm = state.range(1) == 1;
  const size_t d = 6;
  Rng rng(300 + n);
  std::vector<Vec> pts;
  for (size_t i = 0; i < n; ++i) {
    Vec p(d);
    for (size_t c = 0; c < d; ++c) p[c] = rng.Uniform(0.0, 1.0);
    pts.push_back(p);
  }
  for (auto _ : state) {
    if (warm) {
      benchmark::DoNotOptimize(ExtremePointIndices(pts));
    } else {
      std::vector<size_t> extreme;
      for (size_t i = 0; i < n; ++i) {
        if (IsExtremePoint(pts, i)) extreme.push_back(i);
      }
      benchmark::DoNotOptimize(extreme);
    }
  }
}
BENCHMARK(BM_GeoExtremeSweep)
    ->Args({24, 0})
    ->Args({24, 1})
    ->Args({48, 0})
    ->Args({48, 1});

}  // namespace
}  // namespace isrl

// The system libbenchmark is compiled without NDEBUG and self-reports
// "debug" in the JSON context regardless of how isrl was built. Record the
// build type of the code under test so tools/bench_to_json.py can tell a
// debug-library warning from a debug-measurement problem.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("isrl_build_type", "release");
#else
  benchmark::AddCustomContext("isrl_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
