// Ablation bench (DESIGN.md §6): the DQN design choices the paper fixes —
// SGD + SELU + uniform replay + vanilla targets — against the common
// alternatives (Adam, ReLU/Tanh, prioritized replay, Double DQN, Huber
// loss), measured as EA / AA interactive rounds on the default 4-d setting.
#include "bench/common.h"

namespace isrl::bench {
namespace {

struct Variant {
  const char* name;
  rl::DqnOptions dqn;
};

std::vector<Variant> Variants() {
  std::vector<Variant> out;
  out.push_back({"paper", rl::DqnOptions{}});
  {
    rl::DqnOptions o;
    o.optimizer = rl::OptimizerKind::kAdam;
    out.push_back({"adam", o});
  }
  {
    rl::DqnOptions o;
    o.activation = nn::Activation::kRelu;
    out.push_back({"relu", o});
  }
  {
    rl::DqnOptions o;
    o.activation = nn::Activation::kTanh;
    out.push_back({"tanh", o});
  }
  {
    rl::DqnOptions o;
    o.double_dqn = true;
    out.push_back({"double-dqn", o});
  }
  {
    rl::DqnOptions o;
    o.prioritized_replay = true;
    out.push_back({"prioritized", o});
  }
  {
    rl::DqnOptions o;
    o.loss = rl::LossKind::kHuber;
    o.huber_delta = 10.0;
    out.push_back({"huber", o});
  }
  {
    // Step-penalty shaping: the terminal-only reward c·γ^rounds collapses
    // on long episodes; a per-round cost keeps the Q-signal linear in the
    // remaining rounds (the configuration the figure benches train with).
    rl::DqnOptions o;
    o.optimizer = rl::OptimizerKind::kAdam;
    o.step_penalty = 1.0;
    o.gamma = 1.0;
    o.epsilon_end = 0.1;
    o.epsilon_decay_episodes = 100;
    out.push_back({"step-penalty", o});
  }
  return out;
}

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  Rng rng(seed);
  Dataset sky = AntiCorrelatedSkyline(scale.n_low_d, 4, rng);
  Banner("Ablations", "DQN design choices on 4-d synthetic (epsilon=0.1)",
         sky, scale);
  std::vector<Vec> eval = EvalUsers(scale.eval_users, 4, seed);
  PrintEvalHeader("variant");

  for (const Variant& variant : Variants()) {
    {
      EaOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      opt.dqn = variant.dqn;
      Ea ea(sky, opt);
      Rng train_rng(seed + 1);
      ea.Train(SampleUtilityVectors(scale.train_low_d, 4, train_rng));
      PrintEvalRow(variant.name, Evaluate(ea, sky, eval, 0.1));
    }
    {
      AaOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      opt.dqn = variant.dqn;
      Aa aa(sky, opt);
      Rng train_rng(seed + 2);
      aa.Train(SampleUtilityVectors(scale.train_low_d, 4, train_rng));
      PrintEvalRow(variant.name, Evaluate(aa, sky, eval, 0.1));
    }
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
