// Figure 8 — interaction-process progress on the 20-d anti-correlated
// synthetic dataset: per-round maximum regret ratio and cumulative execution
// time for AA vs SinglePass (polyhedron-based algorithms cannot run at
// d = 20; the paper omits them above d = 10).
#include <algorithm>

#include "bench/common.h"

namespace isrl::bench {
namespace {

void PrintTrajectory(const std::string& name, const TraceSummary& t,
                     size_t max_rows) {
  size_t rows = std::min(max_rows, t.mean_max_regret.size());
  for (size_t r = 0; r < rows; ++r) {
    std::printf("%-12s %8zu %14.4f %14.4f\n", name.c_str(), r + 1,
                t.mean_max_regret[r], t.mean_cumulative_seconds[r]);
  }
  // Long SinglePass runs: print sparse tail rows so the series end is
  // visible without thousands of lines.
  for (size_t r = max_rows; r < t.mean_max_regret.size(); r += 100) {
    std::printf("%-12s %8zu %14.4f %14.4f\n", name.c_str(), r + 1,
                t.mean_max_regret[r], t.mean_cumulative_seconds[r]);
  }
  std::fflush(stdout);
}

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  Rng rng(seed);
  Dataset sky = AntiCorrelatedSkyline(scale.n_high_d, 20, rng);
  Banner("Figure 8", "interaction progress on 20-d synthetic (epsilon=0.1)",
         sky, scale);
  // Per-round worst-case-regret tracing is expensive over thousands of
  // SinglePass rounds; a couple of users suffice for the trajectory shape.
  const size_t users_count = std::max<size_t>(2, scale.eval_users / 4);
  std::vector<Vec> users = EvalUsers(users_count, 20, seed);
  const size_t max_rows = 40;

  std::printf("%-12s %8s %14s %14s\n", "algorithm", "round", "max_regret",
              "cum_time_s");

  {
    Aa aa = MakeTrainedAa(sky, 0.1, scale.train_high_d, seed);
    PrintTrajectory("AA", EvaluateTrajectory(aa, sky, users,
                                             scale.regret_samples, seed),
                    max_rows);
  }
  {
    SinglePassOptions opt;
    opt.epsilon = 0.1;
    opt.seed = seed;
    opt.max_questions = scale.sp_cap;
    SinglePass sp(sky, opt);
    PrintTrajectory("SinglePass", EvaluateTrajectory(sp, sky, users,
                                                     scale.regret_samples, seed),
                    max_rows);
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
