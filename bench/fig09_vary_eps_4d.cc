// Figure 9 — vary the regret threshold ε on the 4-d anti-correlated
// synthetic dataset: (a) interactive rounds, (b) execution time, (c) final
// regret ratio, for EA, AA, UH-Random, UH-Simplex, SinglePass — plus the
// untrained-agent ablation isolating the RL contribution (DESIGN.md §6).
#include "bench/common.h"

namespace isrl::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  Rng rng(seed);
  Dataset sky = AntiCorrelatedSkyline(scale.n_low_d, 4, rng);
  Banner("Figure 9", "vary epsilon on 4-d anti-correlated synthetic", sky,
         scale);
  std::vector<Vec> eval = EvalUsers(scale.eval_users, 4, seed);
  PrintEvalHeader("epsilon");

  for (double eps : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    std::string label = Format("%.2f", eps);
    {
      Ea ea = MakeTrainedEa(sky, eps, scale.train_low_d, seed);
      PrintEvalRow(label, Evaluate(ea, sky, eval, eps));
    }
    {
      Aa aa = MakeTrainedAa(sky, eps, scale.train_low_d, seed);
      PrintEvalRow(label, Evaluate(aa, sky, eval, eps));
    }
    {
      UhOptions opt;
      opt.epsilon = eps;
      opt.seed = seed;
      UhRandom uh(sky, opt);
      PrintEvalRow(label, Evaluate(uh, sky, eval, eps));
    }
    {
      UhOptions opt;
      opt.epsilon = eps;
      opt.seed = seed;
      UhSimplex uh(sky, opt);
      PrintEvalRow(label, Evaluate(uh, sky, eval, eps));
    }
    {
      SinglePassOptions opt;
      opt.epsilon = eps;
      opt.seed = seed;
      opt.max_questions = scale.sp_cap;
      SinglePass sp(sky, opt);
      PrintEvalRow(label, Evaluate(sp, sky, eval, eps));
    }
  }

  std::printf("\n## Ablation: untrained agents (random-initialised Q) vs "
              "trained, epsilon=0.1\n");
  PrintEvalHeader("variant");
  {
    EaOptions opt;
    opt.epsilon = 0.1;
    opt.seed = seed;
    Ea ea(sky, opt);  // no Train() call
    EvalStats s = Evaluate(ea, sky, eval, 0.1);
    s.algorithm = "EA-untrained";
    PrintEvalRow("untrained", s);
  }
  {
    Ea ea = MakeTrainedEa(sky, 0.1, scale.train_low_d, seed);
    PrintEvalRow("trained", Evaluate(ea, sky, eval, 0.1));
  }
  {
    AaOptions opt;
    opt.epsilon = 0.1;
    opt.seed = seed;
    Aa aa(sky, opt);
    EvalStats s = Evaluate(aa, sky, eval, 0.1);
    s.algorithm = "AA-untrained";
    PrintEvalRow("untrained", s);
  }
  {
    Aa aa = MakeTrainedAa(sky, 0.1, scale.train_low_d, seed);
    PrintEvalRow("trained", Evaluate(aa, sky, eval, 0.1));
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
