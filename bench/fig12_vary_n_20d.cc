// Figure 12 — vary the dataset size n on the 20-d anti-correlated synthetic
// dataset (ε = 0.1): rounds and execution time for AA vs SinglePass.
#include "bench/common.h"

namespace isrl::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  std::vector<size_t> sweep;
  if (scale.name == "paper") {
    sweep = {10000, 100000, 500000, 1000000};
  } else if (scale.name == "smoke") {
    sweep = {1000, 3000};
  } else {
    sweep = {2000, 8000, 30000};
  }

  std::printf("# Figure 12 — vary n on 20-d anti-correlated synthetic "
              "(epsilon=0.1, scale=%s)\n", scale.name.c_str());
  PrintEvalHeader("n");
  const size_t users_count = std::max<size_t>(2, scale.eval_users / 2);
  for (size_t n : sweep) {
    Rng rng(seed);
    Dataset sky = AntiCorrelatedSkyline(n, 20, rng);
    std::printf("# n=%zu skyline=%zu\n", n, sky.size());
    std::vector<Vec> eval = EvalUsers(users_count, 20, seed);
    std::string label = Format("%zu", n);
    {
      Aa aa = MakeTrainedAa(sky, 0.1, scale.train_high_d, seed);
      PrintEvalRow(label, Evaluate(aa, sky, eval, 0.1));
    }
    {
      SinglePassOptions opt;
      opt.seed = seed;
      opt.max_questions = scale.sp_cap;
      SinglePass sp(sky, opt);
      PrintEvalRow(label, Evaluate(sp, sky, eval, 0.1));
    }
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
