// Figure 15 — vary ε on the Car dataset (3 attributes; synthetic stand-in
// matched to the Kaggle table the paper uses — see DESIGN.md §3): rounds and
// execution time for all five algorithms plus the UtilityApprox extension.
#include "bench/common.h"

namespace isrl::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  const uint64_t seed = GetSeed();
  Rng rng(seed);
  size_t rows = scale.name == "smoke" ? 2000 : kCarRows;
  Dataset car = MakeCarDataset(rng, rows);
  Dataset sky = SkylineOf(car);
  Banner("Figure 15", "vary epsilon on the Car dataset (synthetic stand-in)",
         sky, scale);
  std::vector<Vec> eval = EvalUsers(scale.eval_users, 3, seed);
  PrintEvalHeader("epsilon");

  for (double eps : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    std::string label = Format("%.2f", eps);
    {
      Ea ea = MakeTrainedEa(sky, eps, scale.train_low_d, seed);
      PrintEvalRow(label, Evaluate(ea, sky, eval, eps));
    }
    {
      Aa aa = MakeTrainedAa(sky, eps, scale.train_low_d, seed);
      PrintEvalRow(label, Evaluate(aa, sky, eval, eps));
    }
    {
      UhOptions opt;
      opt.epsilon = eps;
      opt.seed = seed;
      UhRandom uh(sky, opt);
      PrintEvalRow(label, Evaluate(uh, sky, eval, eps));
    }
    {
      UhOptions opt;
      opt.epsilon = eps;
      opt.seed = seed;
      UhSimplex uh(sky, opt);
      PrintEvalRow(label, Evaluate(uh, sky, eval, eps));
    }
    {
      SinglePassOptions opt;
      opt.epsilon = eps;
      opt.seed = seed;
      opt.max_questions = scale.sp_cap;
      SinglePass sp(sky, opt);
      PrintEvalRow(label, Evaluate(sp, sky, eval, eps));
    }
    {
      UtilityApproxOptions opt;
      opt.epsilon = eps;
      opt.seed = seed;
      UtilityApprox ua(sky, opt);
      PrintEvalRow(label, Evaluate(ua, sky, eval, eps));
    }
  }
}

}  // namespace
}  // namespace isrl::bench

int main() {
  isrl::bench::Run();
  return 0;
}
