// Deterministic parallel evaluation suite (`ctest -L parallel`).
//
// The contract under test: the thread count of Evaluate / EvaluateTrajectory
// is a pure performance knob. Every statistic except the wall-clock columns
// must be bit-identical at 1, 2, and 8 threads, because all per-user
// randomness is derived from (master seed, user index) alone — never from
// scheduling order. See DESIGN.md §10.
#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/uh_random.h"
#include "common/budget.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/session.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/faulty.h"
#include "user/sampler.h"

namespace isrl {
namespace {

// ------------------------------------------------------------- ParallelFor

TEST(ParallelForTest, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(hits.size(), 8,
              [&](size_t, size_t task) { hits[task].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ParallelForTest, ZeroTasksIsANoOp) {
  ParallelFor(0, 4, [](size_t, size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  // With one worker the calling thread executes every task in index order.
  std::vector<size_t> order;
  ParallelFor(5, 1, [&](size_t worker, size_t task) {
    EXPECT_EQ(worker, 0u);
    order.push_back(task);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, WorkerIndexStaysBelowThreadCount) {
  std::atomic<bool> ok{true};
  ParallelFor(64, 3, [&](size_t worker, size_t) {
    if (worker >= 3) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ParallelForTest, FirstExceptionPropagatesAfterJoin) {
  std::atomic<int> ran{0};
  EXPECT_THROW(ParallelFor(32, 4,
                           [&](size_t, size_t task) {
                             ran.fetch_add(1);
                             if (task == 7) {
                               throw std::runtime_error("task 7 failed");
                             }
                           }),
               std::runtime_error);
  EXPECT_GE(ran.load(), 1);
}

TEST(ParallelForTest, ResolveThreadsClampsToTaskCount) {
  EXPECT_EQ(ResolveThreads(16, 4), 4u);
  EXPECT_EQ(ResolveThreads(2, 100), 2u);
  EXPECT_GE(ResolveThreads(1, 0), 1u);  // degenerate: still a valid count
}

// ------------------------------------------------------------- seed splits

TEST(RngSplitTest, SplitDependsOnConstructionSeedNotEngineState) {
  Rng fresh(42);
  Rng advanced(42);
  for (int i = 0; i < 100; ++i) advanced.Uniform();
  // Consuming draws must not change what Split derives: clones reseeded from
  // Split(k) stay deterministic regardless of how much the parent has run.
  Rng a = fresh.Split(3);
  Rng b = advanced.Split(3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
  }
}

TEST(RngSplitTest, StreamsAreDistinct) {
  std::set<uint64_t> seeds;
  for (uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(SplitSeed(0x15EEDull, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(SplitSeed(1, 0), SplitSeed(2, 0));  // master matters too
}

// ----------------------------------------------- thread-count determinism

Dataset TinySkyline(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

// Everything but the wall-clock columns must match bit-for-bit.
void ExpectSameStats(const EvalStats& a, const EvalStats& b, size_t threads) {
  EXPECT_EQ(a.algorithm, b.algorithm) << "threads=" << threads;
  EXPECT_EQ(a.mean_rounds, b.mean_rounds) << "threads=" << threads;
  EXPECT_EQ(a.mean_regret, b.mean_regret) << "threads=" << threads;
  EXPECT_EQ(a.max_regret, b.max_regret) << "threads=" << threads;
  EXPECT_EQ(a.frac_within_eps, b.frac_within_eps) << "threads=" << threads;
  EXPECT_EQ(a.frac_converged, b.frac_converged) << "threads=" << threads;
  EXPECT_EQ(a.episodes, b.episodes) << "threads=" << threads;
  EXPECT_EQ(a.frac_degraded, b.frac_degraded) << "threads=" << threads;
  EXPECT_EQ(a.frac_budget_exhausted, b.frac_budget_exhausted)
      << "threads=" << threads;
  EXPECT_EQ(a.aborted, b.aborted) << "threads=" << threads;
  EXPECT_EQ(a.mean_dropped_answers, b.mean_dropped_answers)
      << "threads=" << threads;
  EXPECT_EQ(a.mean_no_answers, b.mean_no_answers) << "threads=" << threads;
}

void ExpectThreadInvariant(InteractiveAlgorithm& algo, const Dataset& sky,
                           const std::vector<Vec>& users, double eps,
                           const UserFactory& factory,
                           const RunBudget& budget = RunBudget{}) {
  EvalConfig reference;
  reference.threads = 1;
  EvalStats base = Evaluate(algo, sky, users, eps, factory, budget, reference);
  for (size_t threads : {2u, 8u}) {
    EvalConfig config;
    config.threads = threads;
    EvalStats got = Evaluate(algo, sky, users, eps, factory, budget, config);
    ExpectSameStats(base, got, threads);
  }
  // And the sequential path itself must reproduce on a second call.
  EvalStats again = Evaluate(algo, sky, users, eps, factory, budget, reference);
  ExpectSameStats(base, again, 1);
}

class ThreadInvarianceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sky_ = new Dataset(TinySkyline(400, 3, 77));
    Rng rng(78);
    users_ = new std::vector<Vec>(SampleUtilityVectors(16, 3, rng));
  }
  static void TearDownTestSuite() {
    delete sky_;
    delete users_;
  }
  static Dataset* sky_;
  static std::vector<Vec>* users_;
};

Dataset* ThreadInvarianceTest::sky_ = nullptr;
std::vector<Vec>* ThreadInvarianceTest::users_ = nullptr;

TEST_F(ThreadInvarianceTest, EaEvaluateIsThreadCountInvariant) {
  EaOptions opt;
  opt.epsilon = 0.1;
  opt.seed = 5;
  Ea ea(*sky_, opt);
  ExpectThreadInvariant(ea, *sky_, *users_, 0.1, MakeLinearUserFactory());
  ExpectThreadInvariant(ea, *sky_, *users_, 0.1, MakeNoisyUserFactory(0.1));
}

TEST_F(ThreadInvarianceTest, AaEvaluateIsThreadCountInvariant) {
  AaOptions opt;
  opt.epsilon = 0.1;
  opt.seed = 5;
  Aa aa(*sky_, opt);
  ExpectThreadInvariant(aa, *sky_, *users_, 0.1, MakeLinearUserFactory());
}

TEST_F(ThreadInvarianceTest, BaselineEvaluateIsThreadCountInvariant) {
  UhOptions opt;
  opt.epsilon = 0.1;
  opt.seed = 5;
  UhRandom uh(*sky_, opt);
  ExpectThreadInvariant(uh, *sky_, *users_, 0.1, MakeLinearUserFactory());
}

TEST_F(ThreadInvarianceTest, FaultyUsersUnderBudgetStayInvariant) {
  // The hardest case: per-user fault streams + early budget exits must not
  // depend on which worker ran which user.
  AaOptions opt;
  opt.epsilon = 0.1;
  opt.seed = 5;
  Aa aa(*sky_, opt);
  FaultyUserOptions fopt;
  fopt.flip_rate = 0.1;
  fopt.no_answer_rate = 0.05;
  fopt.boundary_band = 0.01;
  fopt.seed = 99;
  RunBudget budget;
  budget.max_rounds = 60;
  ExpectThreadInvariant(aa, *sky_, *users_, 0.1, MakeFaultyUserFactory(fopt),
                        budget);
}

TEST_F(ThreadInvarianceTest, TrajectoryIsThreadCountInvariant) {
  EaOptions opt;
  opt.epsilon = 0.1;
  opt.seed = 5;
  Ea ea(*sky_, opt);
  std::vector<Vec> users(users_->begin(), users_->begin() + 6);
  TraceSummary base =
      EvaluateTrajectory(ea, *sky_, users, 100, 7, MakeNoisyUserFactory(0.05),
                         RunBudget{}, /*threads=*/1);
  for (size_t threads : {2u, 8u}) {
    TraceSummary got =
        EvaluateTrajectory(ea, *sky_, users, 100, 7, MakeNoisyUserFactory(0.05),
                           RunBudget{}, threads);
    EXPECT_EQ(base.users, got.users) << "threads=" << threads;
    EXPECT_EQ(base.degraded, got.degraded) << "threads=" << threads;
    EXPECT_EQ(base.budget_exhausted, got.budget_exhausted)
        << "threads=" << threads;
    EXPECT_EQ(base.aborted, got.aborted) << "threads=" << threads;
    // The regret series is exact; the seconds series is wall-clock and only
    // checked for shape.
    ASSERT_EQ(base.mean_max_regret.size(), got.mean_max_regret.size())
        << "threads=" << threads;
    for (size_t i = 0; i < base.mean_max_regret.size(); ++i) {
      EXPECT_EQ(base.mean_max_regret[i], got.mean_max_regret[i])
          << "threads=" << threads << " round=" << i;
    }
    EXPECT_EQ(base.mean_cumulative_seconds.size(),
              got.mean_cumulative_seconds.size());
  }
}

TEST_F(ThreadInvarianceTest, EvalConfigSeedChangesNoisyOutcomes) {
  // The master seed must actually reach the per-user streams: with a noisy
  // factory, different seeds should (generically) produce different stats.
  AaOptions opt;
  opt.epsilon = 0.1;
  opt.seed = 5;
  Aa aa(*sky_, opt);
  EvalConfig a;
  a.threads = 1;
  a.seed = 1;
  EvalConfig b = a;
  b.seed = 2;
  EvalStats sa = Evaluate(aa, *sky_, *users_, 0.1, MakeNoisyUserFactory(0.2),
                          RunBudget{}, a);
  EvalStats sb = Evaluate(aa, *sky_, *users_, 0.1, MakeNoisyUserFactory(0.2),
                          RunBudget{}, b);
  EXPECT_NE(sa.mean_rounds, sb.mean_rounds);
}

}  // namespace
}  // namespace isrl
