// Versioned model registry suite (DESIGN.md §18): the registry's atomic
// hot-swap contract — sessions pin the immutable snapshot they start under,
// Publish() never perturbs an in-flight or checkpointed episode, restore
// re-pins the exact published version recorded in the snapshot (refusing
// providers that no longer serve it, with the §14 fingerprint messages) —
// plus the continuous-learning loop built on it: trace harvesting through
// the scheduler sink, trace-driven retraining, drift detection, and the
// end-to-end claim that a hot-swapped retrained model answers users in
// fewer questions. Run with `ctest -L registry`; CI runs this label under
// TSan (concurrent publishes race shard ticks in the sharded tests).
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/scheduler.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "nn/layer.h"
#include "nn/registry.h"
#include "nn/serialize.h"
#include "serve/drift.h"
#include "serve/sharding.h"
#include "serve/trace_store.h"
#include "serve/trainer.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

Dataset SmallSkyline(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

rl::DqnOptions FastDqn() {
  rl::DqnOptions o;
  o.hidden_neurons = 32;
  o.batch_size = 16;
  o.min_replay_before_update = 16;
  return o;
}

EaOptions EaOpt() {
  EaOptions o;
  o.epsilon = 0.1;
  o.dqn = FastDqn();
  return o;
}

AaOptions AaOpt() {
  AaOptions o;
  o.epsilon = 0.1;
  o.dqn = FastDqn();
  return o;
}

/// Moves one Q-network weight so the fingerprint diverges from any snapshot
/// published earlier (same trick as the checkpoint suite).
void PerturbNetwork(rl::DqnAgent& agent) {
  auto& first = static_cast<nn::Linear&>(agent.main_network().layer(0));
  first.weights()[0] += 0.25;
}

void ExpectSameResult(const InteractionResult& a, const InteractionResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.best_index, b.best_index) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.converged, b.converged) << label;
  EXPECT_EQ(a.termination, b.termination) << label;
  EXPECT_EQ(a.dropped_answers, b.dropped_answers) << label;
  EXPECT_EQ(a.no_answers, b.no_answers) << label;
  EXPECT_EQ(a.status.ok(), b.status.ok()) << label;
}

/// Drives a session to completion against `user`, answering every question.
InteractionResult DriveToEnd(InteractionSession& session, UserOracle& user) {
  while (std::optional<SessionQuestion> q = session.NextQuestion()) {
    session.PostAnswer(user.Ask(q->first, q->second));
  }
  return session.Finish();
}

/// Answers up to `rounds` questions; false once the session terminated.
bool DriveRounds(InteractionSession& session, UserOracle& user,
                 size_t rounds) {
  for (size_t r = 0; r < rounds; ++r) {
    std::optional<SessionQuestion> q = session.NextQuestion();
    if (!q.has_value()) return false;
    session.PostAnswer(user.Ask(q->first, q->second));
  }
  return true;
}

SessionTraceRecord MakeRecord(size_t rounds, Termination termination,
                              uint64_t version = 1) {
  SessionTraceRecord record;
  record.model_version = version;
  record.rounds = rounds;
  record.termination = termination;
  return record;
}

// ------------------------------------------------------- registry basics

TEST(RegistryTest, PublishPinAndFingerprint) {
  Dataset sky = SmallSkyline(200, 3, 5);
  Ea ea(sky, EaOpt());
  nn::ModelRegistry registry;
  EXPECT_EQ(registry.latest_version(), 0u);
  EXPECT_EQ(registry.Latest(), nullptr);
  EXPECT_EQ(registry.Pin(1), nullptr);

  const uint64_t v1_fp = nn::NetworkFingerprint(ea.agent().main_network());
  EXPECT_EQ(registry.Publish(ea.agent().main_network()), 1u);
  EXPECT_EQ(registry.latest_version(), 1u);
  EXPECT_EQ(registry.size(), 1u);
  std::shared_ptr<const nn::ModelSnapshot> v1 = registry.Latest();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->fingerprint(), v1_fp);
  EXPECT_TRUE(v1->SameWeights(ea.agent().main_network()));

  // A publish installs an immutable copy: perturbing the source network
  // afterwards changes neither the pinned snapshot nor its fingerprint.
  PerturbNetwork(ea.agent());
  EXPECT_FALSE(v1->SameWeights(ea.agent().main_network()));
  EXPECT_EQ(v1->fingerprint(), v1_fp);

  EXPECT_EQ(registry.Publish(ea.agent().main_network()), 2u);
  std::shared_ptr<const nn::ModelSnapshot> v2 = registry.Latest();
  ASSERT_NE(v2, nullptr);
  EXPECT_NE(v2->fingerprint(), v1_fp);
  EXPECT_EQ(registry.Pin(1), v1);
  EXPECT_EQ(registry.Pin(2), v2);
  EXPECT_EQ(registry.Pin(0), nullptr);
  EXPECT_EQ(registry.Pin(3), nullptr);
}

TEST(RegistryTest, ReplicaCacheReplicatesOncePerVersion) {
  Dataset sky = SmallSkyline(200, 3, 6);
  Ea ea(sky, EaOpt());
  nn::ModelRegistry registry;
  registry.Publish(ea.agent().main_network());

  nn::ModelReplicaCache cache(&registry);
  std::shared_ptr<const nn::ModelSnapshot> replica = cache.Pin(1);
  ASSERT_NE(replica, nullptr);
  // Same identity, private scratch: the replica is a distinct object.
  EXPECT_NE(replica, registry.Pin(1));
  EXPECT_EQ(replica->version(), 1u);
  EXPECT_EQ(replica->fingerprint(), registry.Pin(1)->fingerprint());
  // Second pin reuses the replica; unknown versions miss through.
  EXPECT_EQ(cache.Pin(1), replica);
  EXPECT_EQ(cache.Pin(7), nullptr);
}

TEST(RegistryTest, FileRoundTripPreservesEveryVersion) {
  Dataset sky = SmallSkyline(200, 3, 7);
  Ea ea(sky, EaOpt());
  nn::ModelRegistry registry;
  registry.Publish(ea.agent().main_network());
  PerturbNetwork(ea.agent());
  registry.Publish(ea.agent().main_network());

  const std::string path = ::testing::TempDir() + "/isrl_registry_rt.bin";
  ASSERT_TRUE(registry.SaveFile(path).ok());

  nn::ModelRegistry loaded;
  ASSERT_TRUE(loaded.LoadFile(path).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.latest_version(), 2u);
  for (uint64_t v = 1; v <= 2; ++v) {
    ASSERT_NE(loaded.Pin(v), nullptr);
    EXPECT_EQ(loaded.Pin(v)->fingerprint(), registry.Pin(v)->fingerprint());
  }
  // LoadFile refuses a non-empty registry (versions would alias).
  EXPECT_FALSE(loaded.LoadFile(path).ok());
  std::remove(path.c_str());
}

// ------------------------------------------- pin semantics across Publish

TEST(RegistrySessionTest, InFlightSessionUnaffectedByPublish) {
  Dataset sky = SmallSkyline(250, 3, 11);
  Ea ea(sky, EaOpt());
  nn::ModelRegistry registry;
  registry.Publish(ea.agent().main_network());
  Rng urng(12);
  LinearUser user(urng.SimplexUniform(sky.dim()));

  SessionConfig config;
  config.seed = 99;
  config.model = registry.Latest();

  // Reference: the whole episode under v1, no publish anywhere.
  std::unique_ptr<InteractionSession> reference = ea.StartSession(config);
  InteractionResult expected = DriveToEnd(*reference, user);

  // Same seed, same pin; v2 with different weights lands mid-episode.
  std::unique_ptr<InteractionSession> session = ea.StartSession(config);
  ASSERT_TRUE(DriveRounds(*session, user, 2));
  PerturbNetwork(ea.agent());
  EXPECT_EQ(registry.Publish(ea.agent().main_network()), 2u);
  InteractionResult actual = DriveToEnd(*session, user);

  ExpectSameResult(expected, actual, "publish mid-episode");
  EXPECT_EQ(session->ModelVersion(), 1u);
}

// One algorithm template for the checkpoint-across-swap contract; run for
// both RL algorithms (their snapshots carry the version + fingerprint).
template <typename Algo, typename Options>
void CheckpointAcrossSwap(Options options, const std::string& label) {
  Dataset sky = SmallSkyline(250, 3, 13);
  Algo algo(sky, options);
  nn::ModelRegistry registry;
  registry.Publish(algo.agent().main_network());
  Rng urng(14);
  LinearUser user(urng.SimplexUniform(sky.dim()));

  SessionConfig config;
  config.seed = 4242;
  config.model = registry.Latest();

  std::unique_ptr<InteractionSession> reference = algo.StartSession(config);
  InteractionResult expected = DriveToEnd(*reference, user);

  std::unique_ptr<InteractionSession> session = algo.StartSession(config);
  ASSERT_TRUE(DriveRounds(*session, user, 2)) << label;
  Result<std::string> bytes = session->SaveState();
  ASSERT_TRUE(bytes.ok()) << label << ": " << bytes.status().ToString();

  // The swap happens while the checkpoint is on disk: v2 has different
  // weights AND the algorithm instance's live network moves with it.
  PerturbNetwork(algo.agent());
  EXPECT_EQ(registry.Publish(algo.agent().main_network()), 2u);

  // Restore through the provider: the snapshot's recorded version re-pins
  // v1, and the episode finishes bit-identically to the uninterrupted
  // reference even though v2 is now Latest().
  SessionConfig restore;
  restore.models = &registry;
  Result<std::unique_ptr<InteractionSession>> restored =
      algo.RestoreSession(*bytes, restore);
  ASSERT_TRUE(restored.ok()) << label << ": " << restored.status().ToString();
  EXPECT_EQ((*restored)->ModelVersion(), 1u) << label;
  InteractionResult actual = DriveToEnd(**restored, user);
  ExpectSameResult(expected, actual, label + " restored across swap");

  // A provider that no longer serves v1 is refused with the version it
  // failed to resolve.
  nn::ModelRegistry empty;
  SessionConfig missing;
  missing.models = &empty;
  Result<std::unique_ptr<InteractionSession>> unserved =
      algo.RestoreSession(*bytes, missing);
  ASSERT_FALSE(unserved.ok()) << label;
  EXPECT_NE(unserved.status().message().find(
                "pinned to model version 1, which the restore-time model "
                "provider does not serve"),
            std::string::npos)
      << label << ": " << unserved.status().ToString();

  // An explicit pin with the wrong weights trips the §14 fingerprint
  // binding, exactly as a retrained in-place network always has.
  SessionConfig wrong;
  wrong.model = registry.Pin(2);
  Result<std::unique_ptr<InteractionSession>> mismatched =
      algo.RestoreSession(*bytes, wrong);
  ASSERT_FALSE(mismatched.ok()) << label;
  EXPECT_NE(mismatched.status().message().find("bound to Q-network"),
            std::string::npos)
      << label << ": " << mismatched.status().ToString();
}

TEST(RegistrySessionTest, EaCheckpointRestoresAcrossSwap) {
  CheckpointAcrossSwap<Ea>(EaOpt(), "EA");
}

TEST(RegistrySessionTest, AaCheckpointRestoresAcrossSwap) {
  CheckpointAcrossSwap<Aa>(AaOpt(), "AA");
}

// ------------------------------------------------------------ trace store

TEST(TraceStoreTest, RingKeepsNewestInHarvestOrder) {
  TraceStore store(4);
  for (size_t i = 0; i < 6; ++i) {
    store.Harvest(i, MakeRecord(i, Termination::kConverged));
  }
  EXPECT_EQ(store.harvested(), 6u);
  EXPECT_EQ(store.size(), 4u);
  std::vector<SessionTraceRecord> window = store.Window();
  ASSERT_EQ(window.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(window[i].rounds, i + 2);
  Summary rounds = store.WindowRounds();
  EXPECT_EQ(rounds.count, 4u);
  EXPECT_DOUBLE_EQ(rounds.mean, (2 + 3 + 4 + 5) / 4.0);
}

TEST(TraceStoreTest, TrainingUtilitiesPicksNewestCarriers) {
  TraceStore store(8);
  Rng rng(21);
  for (size_t i = 0; i < 6; ++i) {
    SessionTraceRecord record = MakeRecord(i, Termination::kConverged);
    // Every other record failed to learn a utility region.
    if (i % 2 == 0) {
      record.has_utility = true;
      record.utility = Vec(3, static_cast<double>(i));
    }
    store.Harvest(i, record);
  }
  // Carriers are rounds 0, 2, 4; the newest two, oldest first.
  std::vector<Vec> utilities = store.TrainingUtilities(2);
  ASSERT_EQ(utilities.size(), 2u);
  EXPECT_DOUBLE_EQ(utilities[0][0], 2.0);
  EXPECT_DOUBLE_EQ(utilities[1][0], 4.0);
  OutcomeCounts outcomes = store.WindowOutcomes();
  EXPECT_EQ(outcomes.Failures(), 0u);
}

TEST(TraceStoreTest, InterruptIsStickyUntilCleared) {
  TraceStore store;
  store.Harvest(0, MakeRecord(3, Termination::kConverged));
  EXPECT_TRUE(store.WaitForTotal(1));  // already satisfied: no blocking
  store.Interrupt();
  EXPECT_FALSE(store.WaitForTotal(100));  // returns instead of blocking
  EXPECT_FALSE(store.WaitForTotal(1));    // sticky even when satisfied
  store.ClearInterrupt();
  EXPECT_TRUE(store.WaitForTotal(1));
}

// -------------------------------------------------------- harvest wiring

TEST(HarvestTest, SchedulerSinkEmitsOneRecordPerFinishedSession) {
  Dataset sky = SmallSkyline(250, 3, 31);
  Ea ea(sky, EaOpt());
  nn::ModelRegistry registry;
  registry.Publish(ea.agent().main_network());

  TraceStore traces;
  SessionScheduler scheduler;
  scheduler.SetHarvestSink(
      [&traces](size_t id, const SessionTraceRecord& record) {
        traces.Harvest(id, record);
      });
  const size_t sessions = 5;
  Rng urng(32);
  std::vector<std::unique_ptr<LinearUser>> owned;
  std::vector<UserOracle*> users;
  for (size_t s = 0; s < sessions; ++s) {
    owned.push_back(
        std::make_unique<LinearUser>(urng.SimplexUniform(sky.dim())));
    users.push_back(owned.back().get());
    SessionConfig config;
    config.seed = 7000 + s;
    config.model = registry.Latest();
    scheduler.Add(ea.StartSession(config), &ea);
  }
  DriveWithUsers(scheduler, users);

  EXPECT_EQ(traces.harvested(), sessions);
  for (const SessionTraceRecord& record : traces.Window()) {
    EXPECT_EQ(record.model_version, 1u);
    EXPECT_GE(record.rounds, 1u);
    if (record.has_utility) EXPECT_EQ(record.utility.dim(), sky.dim());
  }
}

TEST(HarvestTest, CancelledSessionsAreHarvestedToo) {
  Dataset sky = SmallSkyline(250, 3, 33);
  Ea ea(sky, EaOpt());
  TraceStore traces;
  SessionScheduler scheduler;
  scheduler.SetHarvestSink(
      [&traces](size_t id, const SessionTraceRecord& record) {
        traces.Harvest(id, record);
      });
  SessionConfig config;
  config.seed = 77;
  scheduler.Add(ea.StartSession(config), &ea);
  ASSERT_TRUE(scheduler.TryCancel(0).ok());
  EXPECT_EQ(traces.harvested(), 1u);
}

// ----------------------------------------------------- continuous trainer

TEST(TrainerTest, RetrainOnceNeedsUtilitiesThenPublishes) {
  Dataset sky = SmallSkyline(250, 3, 41);
  Ea ea(sky, EaOpt());
  nn::ModelRegistry registry;
  TraceStore traces;
  ContinuousTrainer trainer(
      traces, registry,
      RetrainHooks{
          [&ea](const std::vector<Vec>& utilities) {
            return ea.Train(utilities);
          },
          [&ea]() -> const nn::Network& { return ea.agent().main_network(); }});

  Result<RetrainOutcome> starved = trainer.RetrainOnce();
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.latest_version(), 0u);

  Rng rng(42);
  for (size_t i = 0; i < 3; ++i) {
    SessionTraceRecord record = MakeRecord(5, Termination::kConverged);
    record.has_utility = true;
    record.utility = rng.SimplexUniform(sky.dim());
    traces.Harvest(i, record);
  }
  Result<RetrainOutcome> retrained = trainer.RetrainOnce();
  ASSERT_TRUE(retrained.ok()) << retrained.status().ToString();
  EXPECT_EQ(retrained->samples, 3u);
  EXPECT_EQ(retrained->version, 1u);
  EXPECT_EQ(registry.latest_version(), 1u);
  EXPECT_EQ(trainer.retrains(), 1u);
}

TEST(TrainerTest, BackgroundLoopRetrainsOnFreshTracesAndStopsCleanly) {
  Dataset sky = SmallSkyline(250, 3, 43);
  Ea ea(sky, EaOpt());
  nn::ModelRegistry registry;
  TraceStore traces;
  TrainerOptions options;
  options.min_new_traces = 4;
  options.max_utilities = 8;
  ContinuousTrainer trainer(
      traces, registry,
      RetrainHooks{
          [&ea](const std::vector<Vec>& utilities) {
            return ea.Train(utilities);
          },
          [&ea]() -> const nn::Network& { return ea.agent().main_network(); }},
      options);

  // Stop with nothing harvested: the interrupt unblocks the waiting loop.
  trainer.Start();
  trainer.Stop();
  EXPECT_EQ(trainer.retrains(), 0u);

  trainer.Start();
  Rng rng(44);
  for (size_t i = 0; i < options.min_new_traces; ++i) {
    SessionTraceRecord record = MakeRecord(5, Termination::kConverged);
    record.has_utility = true;
    record.utility = rng.SimplexUniform(sky.dim());
    traces.Harvest(i, record);
  }
  while (trainer.retrains() < 1) std::this_thread::yield();
  trainer.Stop();
  EXPECT_GE(trainer.retrains(), 1u);
  EXPECT_GE(registry.latest_version(), 1u);
}

// --------------------------------------------------------- drift detector

TEST(DriftTest, FlagsShiftedMeanRounds) {
  std::vector<double> rounds(64, 8.0);
  for (size_t i = 0; i < rounds.size(); i += 2) rounds[i] = 10.0;
  DriftBaseline baseline =
      DriftBaseline::FromPopulation(rounds, OutcomeCounts{});

  std::vector<SessionTraceRecord> live;
  for (size_t i = 0; i < 32; ++i) {
    live.push_back(MakeRecord(14 + (i % 2), Termination::kConverged));
  }
  DriftReport report = DetectDrift(baseline, live);
  EXPECT_TRUE(report.drifted);
  EXPECT_GT(report.rounds_z, 3.0);
  EXPECT_NE(report.reason.find("mean rounds shifted"), std::string::npos);
}

TEST(DriftTest, FlagsRisingFailureFraction) {
  std::vector<double> rounds(64, 9.0);
  for (size_t i = 0; i < rounds.size(); i += 2) rounds[i] = 8.0;
  DriftBaseline baseline =
      DriftBaseline::FromPopulation(rounds, OutcomeCounts{});

  // Same round counts, but half the live sessions now blow their budget.
  std::vector<SessionTraceRecord> live;
  for (size_t i = 0; i < 32; ++i) {
    live.push_back(MakeRecord(8 + (i % 2),
                              i % 2 == 0 ? Termination::kBudgetExhausted
                                         : Termination::kConverged));
  }
  DriftReport report = DetectDrift(baseline, live);
  EXPECT_TRUE(report.drifted);
  EXPECT_NE(report.reason.find("failure fraction rose"), std::string::npos);
}

TEST(DriftTest, NeverFlagsThinEvidenceOrStablePopulations) {
  std::vector<double> rounds(64, 8.0);
  for (size_t i = 0; i < rounds.size(); i += 2) rounds[i] = 10.0;
  DriftBaseline baseline =
      DriftBaseline::FromPopulation(rounds, OutcomeCounts{});

  // Wildly shifted but below min_live_episodes: stays quiet.
  std::vector<SessionTraceRecord> thin(8, MakeRecord(40, Termination::kConverged));
  EXPECT_FALSE(DetectDrift(baseline, thin).drifted);

  // The training population served back to itself: stays quiet.
  std::vector<SessionTraceRecord> same;
  for (size_t i = 0; i < 64; ++i) {
    same.push_back(MakeRecord(i % 2 == 0 ? 10 : 8, Termination::kConverged));
  }
  EXPECT_FALSE(DetectDrift(baseline, same).drifted);
}

TEST(DriftTest, FlagsBudgetStarvedServingPopulation) {
  // End to end: the baseline comes from a healthy harvested wave; the live
  // wave runs under a starved round budget, so every session terminates
  // early with kBudgetExhausted — both detector channels fire.
  Dataset sky = SmallSkyline(250, 3, 51);
  Ea ea(sky, EaOpt());
  nn::ModelRegistry registry;
  registry.Publish(ea.agent().main_network());
  Rng urng(52);

  auto serve = [&](size_t count, uint64_t seed_base, size_t max_rounds,
                   TraceStore& traces) {
    SessionScheduler scheduler;
    scheduler.SetHarvestSink(
        [&traces](size_t id, const SessionTraceRecord& record) {
          traces.Harvest(id, record);
        });
    std::vector<std::unique_ptr<LinearUser>> owned;
    std::vector<UserOracle*> users;
    for (size_t s = 0; s < count; ++s) {
      owned.push_back(
          std::make_unique<LinearUser>(urng.SimplexUniform(sky.dim())));
      users.push_back(owned.back().get());
      SessionConfig config;
      config.budget.max_rounds = max_rounds;
      config.seed = seed_base + s;
      config.model = registry.Latest();
      scheduler.Add(ea.StartSession(config), &ea);
    }
    DriveWithUsers(scheduler, users);
  };

  TraceStore healthy;
  serve(24, 1000, 64, healthy);
  DriftBaseline baseline = DriftBaseline::FromPopulation(
      [&] {
        std::vector<double> rounds;
        for (const SessionTraceRecord& r : healthy.Window()) {
          rounds.push_back(static_cast<double>(r.rounds));
        }
        return rounds;
      }(),
      healthy.WindowOutcomes());
  EXPECT_DOUBLE_EQ(baseline.failure_fraction, 0.0);

  TraceStore starved;
  serve(24, 2000, 2, starved);
  DriftReport report = DetectDrift(baseline, starved.Window());
  EXPECT_TRUE(report.drifted) << report.reason;
}

// ------------------------------------- the closed loop lowers mean rounds

TEST(HotSwapTest, RetrainedModelLowersMeanRoundsForNewSessions) {
  // The paper's promise, end to end: serve a wave under a barely trained
  // v1, retrain, hot-swap, and the post-swap wave needs fewer questions.
  // Everything is seeded, so the improvement is a deterministic fact of
  // this configuration, not a flaky expectation.
  Rng drng(3);
  Dataset sky =
      SkylineOf(GenerateSynthetic(600, 4, Distribution::kAntiCorrelated, drng));
  Rng rng(42);
  AaOptions options = AaOpt();
  options.seed = 42;
  Aa aa(sky, options);
  nn::ModelRegistry registry;

  auto serve_wave = [&](size_t count, uint64_t seed_base, TraceStore& traces) {
    SessionScheduler scheduler;
    scheduler.SetHarvestSink(
        [&traces](size_t id, const SessionTraceRecord& record) {
          traces.Harvest(id, record);
        });
    std::vector<std::unique_ptr<LinearUser>> owned;
    std::vector<UserOracle*> users;
    for (size_t s = 0; s < count; ++s) {
      owned.push_back(
          std::make_unique<LinearUser>(rng.SimplexUniform(sky.dim())));
      users.push_back(owned.back().get());
      SessionConfig config;
      config.seed = seed_base + s;
      config.model = registry.Latest();
      scheduler.Add(aa.StartSession(config), &aa);
    }
    std::vector<InteractionResult> results = DriveWithUsers(scheduler, users);
    double total = 0.0;
    for (const InteractionResult& r : results) {
      total += static_cast<double>(r.rounds);
    }
    return total / static_cast<double>(count);
  };

  aa.Train(SampleUtilityVectors(2, sky.dim(), rng));
  registry.Publish(aa.agent().main_network());
  TraceStore wave1;
  const double before = serve_wave(40, 1000, wave1);
  for (const SessionTraceRecord& record : wave1.Window()) {
    EXPECT_EQ(record.model_version, 1u);
  }

  aa.Train(SampleUtilityVectors(60, sky.dim(), rng));
  EXPECT_EQ(registry.Publish(aa.agent().main_network()), 2u);
  TraceStore wave2;
  const double after = serve_wave(40, 2000, wave2);
  for (const SessionTraceRecord& record : wave2.Window()) {
    EXPECT_EQ(record.model_version, 2u);
  }

  EXPECT_LT(after, before) << "retraining did not reduce mean rounds: "
                           << before << " -> " << after;
}

// ------------------------------------------------ sharded serving + races

TEST(ShardedRegistryTest, ConcurrentPublishesRaceShardTicks) {
  // Four shard workers score through per-shard snapshot replicas and push
  // harvest records while another task publishes version after version into
  // the shared registry — the TSan target for the §18 locking contract.
  Dataset sky = SmallSkyline(250, 3, 61);
  Ea ea(sky, EaOpt());
  nn::ModelRegistry registry;
  registry.Publish(ea.agent().main_network());

  const size_t shards = 4;
  const size_t sessions = 24;
  std::vector<std::unique_ptr<nn::ModelReplicaCache>> caches;
  for (size_t k = 0; k < shards; ++k) {
    caches.push_back(std::make_unique<nn::ModelReplicaCache>(&registry));
  }

  ShardedOptions options;
  options.shards = shards;
  ShardedScheduler sharded(options);
  TraceStore traces;
  // The sink runs on shard worker threads; pinning Latest() from it makes
  // the workers genuinely contend with the publisher task below.
  sharded.SetHarvestSink(
      [&traces, &registry](size_t id, const SessionTraceRecord& record) {
        std::shared_ptr<const nn::ModelSnapshot> latest = registry.Latest();
        EXPECT_NE(latest, nullptr);
        traces.Harvest(id, record);
      });

  Rng urng(62);
  std::vector<std::unique_ptr<LinearUser>> owned;
  std::vector<UserOracle*> users;
  for (size_t i = 0; i < sessions; ++i) {
    owned.push_back(
        std::make_unique<LinearUser>(urng.SimplexUniform(sky.dim())));
    users.push_back(owned.back().get());
    SessionConfig config;
    config.seed = SplitSeed(0x5EED, i);
    config.model = caches[i % shards]->Pin(1);
    sharded.Add(ea.StartSession(config));
  }

  std::atomic<bool> done{false};
  std::atomic<size_t> published{0};
  // Two dedicated workers (threads >= tasks): the driver and the publisher
  // may block on each other — the sanctioned ParallelFor spawning idiom.
  ParallelFor(2, 2, [&](size_t task) {
    if (task == 0) {
      Result<std::vector<InteractionResult>> results =
          DriveSharded(sharded, users);
      EXPECT_TRUE(results.ok()) << results.status().ToString();
      done.store(true, std::memory_order_release);
    } else {
      nn::Network publisher = ea.agent().main_network().Clone();
      while (!done.load(std::memory_order_acquire)) {
        published.fetch_add(1, std::memory_order_relaxed);
        registry.Publish(publisher);
      }
    }
  });

  EXPECT_GE(published.load(), 1u);
  EXPECT_EQ(registry.latest_version(), published.load() + 1);
  EXPECT_EQ(traces.harvested(), sessions);
  for (const SessionTraceRecord& record : traces.Window()) {
    EXPECT_EQ(record.model_version, 1u);  // every session stayed pinned
  }
}

TEST(ShardedRegistryTest, DurableRecoveryRePinsManifestVersion) {
  Dataset sky = SmallSkyline(250, 3, 71);
  Ea ea(sky, EaOpt());
  nn::ModelRegistry registry;
  registry.Publish(ea.agent().main_network());

  const size_t shards = 2;
  const size_t sessions = 6;
  const uint64_t master = 0xF1A7;
  const std::string prefix = ::testing::TempDir() + "/isrl_registry_pop";
  RunBudget budget;
  budget.max_rounds = 16;

  std::vector<Vec> utilities;
  Rng urng(72);
  for (size_t i = 0; i < sessions; ++i) {
    utilities.push_back(urng.SimplexUniform(sky.dim()));
  }
  auto fleet = [&utilities] {
    std::pair<std::vector<std::unique_ptr<LinearUser>>,
              std::vector<UserOracle*>>
        f;
    for (const Vec& u : utilities) {
      f.first.push_back(std::make_unique<LinearUser>(u));
      f.second.push_back(f.first.back().get());
    }
    return f;
  };

  // Single-threaded reference population, pinned to the same v1.
  std::vector<InteractionResult> reference;
  {
    SessionScheduler scheduler;
    for (size_t i = 0; i < sessions; ++i) {
      SessionConfig config;
      config.budget = budget;
      config.seed = SplitSeed(master, i);
      config.model = registry.Latest();
      scheduler.Add(ea.StartSession(config), &ea);
    }
    auto users = fleet();
    reference = DriveWithUsers(scheduler, users.second);
  }

  // Durable sharded run: per-shard clones and per-shard replica pins; the
  // manifest records the registry head (v1) alongside the shard layout.
  std::vector<std::unique_ptr<InteractiveAlgorithm>> clones;
  std::vector<std::unique_ptr<nn::ModelReplicaCache>> caches;
  for (size_t k = 0; k < shards; ++k) {
    clones.push_back(ea.CloneForEval());
    ASSERT_NE(clones.back(), nullptr);
    caches.push_back(std::make_unique<nn::ModelReplicaCache>(&registry));
  }
  ShardedOptions options;
  options.shards = shards;
  ShardedScheduler sharded(options);
  for (size_t i = 0; i < sessions; ++i) {
    const size_t shard = i % shards;
    SessionConfig config;
    config.budget = budget;
    config.seed = SplitSeed(master, i);
    config.model = caches[shard]->Pin(1);
    sharded.Add(clones[shard]->StartSession(config), clones[shard].get());
  }
  ASSERT_TRUE(sharded.EnableDurability(prefix, &registry).ok());
  {
    auto users = fleet();
    Result<std::vector<InteractionResult>> results =
        DriveSharded(sharded, users.second);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    for (size_t i = 0; i < sessions; ++i) {
      ExpectSameResult(reference[i], (*results)[i],
                       "durable pinned session " + std::to_string(i));
    }
  }

  std::vector<std::unique_ptr<InteractiveAlgorithm>> recovery_clones;
  for (size_t k = 0; k < shards; ++k) {
    recovery_clones.push_back(ea.CloneForEval());
  }
  ShardAlgorithmResolver resolver =
      [&recovery_clones](size_t shard,
                         const std::string& name) -> InteractiveAlgorithm* {
    return recovery_clones[shard]->name() == name
               ? recovery_clones[shard].get()
               : nullptr;
  };

  // A provider that no longer serves the manifest's registry version is
  // refused before any session is decoded.
  nn::ModelRegistry empty;
  std::vector<std::unique_ptr<nn::ModelReplicaCache>> empty_caches;
  for (size_t k = 0; k < shards; ++k) {
    empty_caches.push_back(std::make_unique<nn::ModelReplicaCache>(&empty));
  }
  Result<std::unique_ptr<ShardedScheduler>> unserved = ShardedScheduler::Recover(
      options, prefix, resolver,
      [&empty_caches](size_t shard) -> nn::ModelProvider* {
        return empty_caches[shard].get();
      });
  ASSERT_FALSE(unserved.ok());
  EXPECT_NE(unserved.status().message().find("does not serve registry version"),
            std::string::npos)
      << unserved.status().ToString();

  // So is a provider whose version 1 hashes to different weights.
  nn::ModelRegistry imposter;
  {
    std::unique_ptr<InteractiveAlgorithm> source = ea.CloneForEval();
    auto& source_ea = static_cast<Ea&>(*source);
    PerturbNetwork(source_ea.agent());
    imposter.Publish(source_ea.agent().main_network());
  }
  std::vector<std::unique_ptr<nn::ModelReplicaCache>> imposter_caches;
  for (size_t k = 0; k < shards; ++k) {
    imposter_caches.push_back(
        std::make_unique<nn::ModelReplicaCache>(&imposter));
  }
  Result<std::unique_ptr<ShardedScheduler>> mismatched =
      ShardedScheduler::Recover(
          options, prefix, resolver,
          [&imposter_caches](size_t shard) -> nn::ModelProvider* {
            return imposter_caches[shard].get();
          });
  ASSERT_FALSE(mismatched.ok());
  EXPECT_NE(mismatched.status().message().find("hashes to"),
            std::string::npos)
      << mismatched.status().ToString();

  // The real registry re-pins every recovered session; finishing them under
  // fresh stateless users reproduces the reference, and every harvested
  // record still carries the manifest's version.
  std::vector<std::unique_ptr<nn::ModelReplicaCache>> recovery_caches;
  for (size_t k = 0; k < shards; ++k) {
    recovery_caches.push_back(
        std::make_unique<nn::ModelReplicaCache>(&registry));
  }
  Result<std::unique_ptr<ShardedScheduler>> recovered =
      ShardedScheduler::Recover(
          options, prefix, resolver,
          [&recovery_caches](size_t shard) -> nn::ModelProvider* {
            return recovery_caches[shard].get();
          });
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  TraceStore traces;
  (*recovered)->SetHarvestSink(
      [&traces](size_t id, const SessionTraceRecord& record) {
        traces.Harvest(id, record);
      });
  {
    auto users = fleet();
    Result<std::vector<InteractionResult>> refinished =
        DriveSharded(**recovered, users.second);
    ASSERT_TRUE(refinished.ok()) << refinished.status().ToString();
    for (size_t i = 0; i < sessions; ++i) {
      ExpectSameResult(reference[i], (*refinished)[i],
                       "re-pinned session " + std::to_string(i));
    }
  }
  // Sessions that WAL replay already finished are NOT re-harvested (their
  // records fed training before the crash; re-emitting would double-count
  // them) — only sessions whose finishing tick belongs to the new serving
  // epoch emit, and those records carry the re-pinned manifest version.
  EXPECT_GT(traces.harvested(), 0u);
  EXPECT_LE(traces.harvested(), sessions);
  for (const SessionTraceRecord& record : traces.Window()) {
    EXPECT_EQ(record.model_version, 1u);
  }

  for (size_t k = 0; k < shards; ++k) {
    std::remove(ShardedScheduler::ShardPath(prefix, k).c_str());
  }
  std::remove(ShardedScheduler::ManifestPath(prefix).c_str());
}

}  // namespace
}  // namespace isrl
