// Tests for data/stats and core/validation, plus end-to-end use of the
// validators as an independent oracle over real EA/AA interactions.
#include <gtest/gtest.h>

#include "core/aa.h"
#include "core/ea.h"
#include "core/validation.h"
#include "data/real_like.h"
#include "data/skyline.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "geometry/halfspace.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

// ---------- data/stats ----------

TEST(StatsTest, AttributeStatsBasics) {
  Dataset d(2);
  d.Add(Vec{1.0, 10.0});
  d.Add(Vec{3.0, 10.0});
  AttributeStats s = ComputeAttributeStats(d, 0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
  // Constant attribute: zero spread.
  EXPECT_DOUBLE_EQ(ComputeAttributeStats(d, 1).stddev, 0.0);
}

TEST(StatsTest, CorrelationSigns) {
  Dataset pos(2), neg(2);
  for (int i = 0; i < 20; ++i) {
    pos.Add(Vec{static_cast<double>(i), static_cast<double>(2 * i)});
    neg.Add(Vec{static_cast<double>(i), static_cast<double>(-i)});
  }
  EXPECT_NEAR(PearsonCorrelation(pos, 0, 1), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(neg, 0, 1), -1.0, 1e-12);
}

TEST(StatsTest, ConstantAttributeHasZeroCorrelation) {
  Dataset d(2);
  d.Add(Vec{1.0, 5.0});
  d.Add(Vec{2.0, 5.0});
  EXPECT_DOUBLE_EQ(PearsonCorrelation(d, 0, 1), 0.0);
}

TEST(StatsTest, CorrelationMatrixSymmetricUnitDiagonal) {
  Rng rng(1);
  Dataset d = GenerateSynthetic(500, 4, Distribution::kAntiCorrelated, rng);
  Matrix m = CorrelationMatrix(d);
  for (size_t a = 0; a < 4; ++a) {
    EXPECT_DOUBLE_EQ(m(a, a), 1.0);
    for (size_t b = 0; b < 4; ++b) {
      EXPECT_DOUBLE_EQ(m(a, b), m(b, a));
      EXPECT_LE(std::abs(m(a, b)), 1.0 + 1e-12);
    }
  }
}

TEST(StatsTest, GeneratorFamiliesHaveExpectedFingerprints) {
  Rng rng(2);
  Dataset anti = GenerateSynthetic(4000, 3, Distribution::kAntiCorrelated, rng);
  Dataset corr = GenerateSynthetic(4000, 3, Distribution::kCorrelated, rng);
  Dataset ind = GenerateSynthetic(4000, 3, Distribution::kIndependent, rng);
  EXPECT_LT(MeanPairwiseCorrelation(anti), -0.1);
  EXPECT_GT(MeanPairwiseCorrelation(corr), 0.5);
  EXPECT_NEAR(MeanPairwiseCorrelation(ind), 0.0, 0.1);
}

TEST(StatsTest, CarTradeOffIsNegative) {
  Rng rng(3);
  Dataset car = MakeCarDataset(rng, 3000);
  // price-good vs mileage-good fight each other.
  EXPECT_LT(PearsonCorrelation(car, 0, 1), -0.2);
}

// ---------- core/validation ----------

TEST(ValidationTest, ReturnedTupleBounds) {
  Dataset d(2);
  d.Add(Vec{1.0, 0.1});
  d.Add(Vec{0.1, 1.0});
  Vec u{0.9, 0.1};
  // Point 0 is the favourite: regret 0.
  EXPECT_TRUE(ValidateReturnedTuple(d, 0, u, 0.1, /*exact=*/true).ok());
  // Point 1 has large regret: fails the exact bound.
  EXPECT_FALSE(ValidateReturnedTuple(d, 1, u, 0.1, /*exact=*/true).ok());
  // ...but passes the relaxed d²ε bound with a big ε.
  EXPECT_TRUE(ValidateReturnedTuple(d, 1, u, 0.2, /*exact=*/false).ok());
  EXPECT_EQ(ValidateReturnedTuple(d, 7, u, 0.1, true).code(),
            StatusCode::kOutOfRange);
}

TEST(ValidationTest, TranscriptConsistency) {
  Vec u{0.6, 0.4};
  std::vector<LearnedHalfspace> good(1), bad(1);
  good[0].h = Halfspace{Vec{1.0, -1.0}, 0.0};   // u0 ≥ u1 — true for u
  bad[0].h = Halfspace{Vec{-1.0, 1.0}, 0.05};   // u1 − u0 ≥ 0.05 — false
  EXPECT_TRUE(ValidateTranscriptConsistency(good, u).ok());
  EXPECT_FALSE(ValidateTranscriptConsistency(bad, u).ok());
}

TEST(ValidationTest, StrictNarrowingDetectsUselessCut) {
  std::vector<LearnedHalfspace> h(2);
  h[0].h = Halfspace{Vec{1.0, -1.0, 0.0}, 0.0};
  h[1].h = Halfspace{Vec{1.0, -1.0, 0.0}, 0.0};  // duplicate: cuts nothing
  EXPECT_FALSE(ValidateStrictNarrowing(3, h).ok());
  h.pop_back();
  EXPECT_TRUE(ValidateStrictNarrowing(3, h).ok());
}

TEST(ValidationTest, StrictNarrowingDetectsEmptyRange) {
  std::vector<LearnedHalfspace> h(2);
  h[0].h = Halfspace{Vec{1.0, -1.0}, 0.2};   // u0 − u1 ≥ 0.2
  h[1].h = Halfspace{Vec{-1.0, 1.0}, 0.2};   // u1 − u0 ≥ 0.2 — contradiction
  EXPECT_FALSE(ValidateStrictNarrowing(2, h).ok());
}

TEST(ValidationTest, TerminalCertificateChecksEveryVector) {
  Dataset d(2);
  d.Add(Vec{1.0, 0.2});
  d.Add(Vec{0.2, 1.0});
  std::vector<Vec> utils{Vec{0.95, 0.05}, Vec{0.9, 0.1}};
  EXPECT_TRUE(ValidateTerminalCertificate(d, 0, utils, 0.05).ok());
  utils.push_back(Vec{0.05, 0.95});  // point 0 is terrible here
  EXPECT_FALSE(ValidateTerminalCertificate(d, 0, utils, 0.05).ok());
}

// ---------- validators as an oracle over real interactions ----------

TEST(ValidationIntegration, EaInteractionsPassAllValidators) {
  Rng rng(10);
  Dataset sky =
      SkylineOf(GenerateSynthetic(800, 3, Distribution::kAntiCorrelated, rng));
  EaOptions opt;
  opt.epsilon = 0.1;
  Ea ea(sky, opt);
  for (int trial = 0; trial < 5; ++trial) {
    Vec u = rng.SimplexUniform(3);
    LinearUser user(u);
    InteractionResult r = ea.Interact(user);
    EXPECT_TRUE(
        ValidateReturnedTuple(sky, r.best_index, u, opt.epsilon, true).ok());
  }
}

TEST(ValidationIntegration, AaInteractionsPassRelaxedValidator) {
  Rng rng(11);
  Dataset sky =
      SkylineOf(GenerateSynthetic(800, 4, Distribution::kAntiCorrelated, rng));
  AaOptions opt;
  opt.epsilon = 0.1;
  Aa aa(sky, opt);
  for (int trial = 0; trial < 5; ++trial) {
    Vec u = rng.SimplexUniform(4);
    LinearUser user(u);
    InteractionResult r = aa.Interact(user);
    if (r.converged) {
      EXPECT_TRUE(
          ValidateReturnedTuple(sky, r.best_index, u, opt.epsilon, false).ok());
    }
  }
}

}  // namespace
}  // namespace isrl
