// Durability suite (DESIGN.md §14): checkpoint/restore must be invisible to
// the algorithms. A session saved and reopened at EVERY round — under honest
// users, faulty users, and exhausted budgets — must finish with a
// bit-identical InteractionResult and trace; a scheduler population crashed
// at every answer and recovered from snapshot + WAL must match the
// uninterrupted run; and corrupt/truncated/version-skewed/NaN snapshots must
// come back as Status errors (with per-slot graceful degradation at the
// scheduler level), never as crashes. Run with `ctest -L checkpoint`; the CI
// sanitize job runs this label under ASan/UBSan.
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "baselines/utility_approx.h"
#include "common/budget.h"
#include "common/rng.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/scheduler.h"
#include "core/snapshot.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "nn/layer.h"
#include "user/faulty.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

Dataset SmallSkyline(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

rl::DqnOptions FastDqn() {
  rl::DqnOptions o;
  o.hidden_neurons = 32;
  o.batch_size = 16;
  o.min_replay_before_update = 16;
  return o;
}

// Everything in an InteractionResult except `seconds` (wall clock).
void ExpectSameResult(const InteractionResult& a, const InteractionResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.best_index, b.best_index) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.converged, b.converged) << label;
  EXPECT_EQ(a.termination, b.termination) << label;
  EXPECT_EQ(a.dropped_answers, b.dropped_answers) << label;
  EXPECT_EQ(a.no_answers, b.no_answers) << label;
  EXPECT_EQ(a.status.ok(), b.status.ok()) << label;
}

void ExpectSameQuestion(const SessionQuestion& a, const SessionQuestion& b,
                        const std::string& label) {
  EXPECT_EQ(a.synthetic, b.synthetic) << label;
  if (!a.synthetic) {
    EXPECT_EQ(a.pair.i, b.pair.i) << label;
    EXPECT_EQ(a.pair.j, b.pair.j) << label;
  } else {
    ASSERT_EQ(a.first.dim(), b.first.dim()) << label;
    for (size_t k = 0; k < a.first.dim(); ++k) {
      EXPECT_EQ(a.first[k], b.first[k]) << label;
      EXPECT_EQ(a.second[k], b.second[k]) << label;
    }
  }
}

// Same six-algorithm roster as the step-API equivalence suite.
struct Roster {
  Dataset sky;
  Ea ea;
  Aa aa;
  UhRandom uh_random;
  UhSimplex uh_simplex;
  SinglePass single_pass;
  UtilityApprox utility_approx;

  explicit Roster(Dataset dataset)
      : sky(std::move(dataset)),
        ea(sky, EaOpt()),
        aa(sky, AaOpt()),
        uh_random(sky, UhOpt()),
        uh_simplex(sky, UhOpt()),
        single_pass(sky, SpOpt()),
        utility_approx(sky, UaOpt()) {}

  std::vector<InteractiveAlgorithm*> all() {
    return {&ea, &aa, &uh_random, &uh_simplex, &single_pass, &utility_approx};
  }

  AlgorithmResolver Resolver() {
    return [this](const std::string& name) -> InteractiveAlgorithm* {
      for (InteractiveAlgorithm* algo : all()) {
        if (algo->name() == name) return algo;
      }
      return nullptr;
    };
  }

  static EaOptions EaOpt() {
    EaOptions o;
    o.epsilon = 0.1;
    o.dqn = FastDqn();
    return o;
  }
  static AaOptions AaOpt() {
    AaOptions o;
    o.epsilon = 0.15;
    o.dqn = FastDqn();
    return o;
  }
  static UhOptions UhOpt() {
    UhOptions o;
    o.epsilon = 0.1;
    return o;
  }
  static SinglePassOptions SpOpt() {
    SinglePassOptions o;
    o.epsilon = 0.1;
    return o;
  }
  static UtilityApproxOptions UaOpt() {
    UtilityApproxOptions o;
    o.epsilon = 0.1;
    return o;
  }
};

/// Moves one Q-network weight so the fingerprint diverges from any snapshot
/// taken earlier. (Train() only touches weights once the replay buffer
/// reaches min_replay_before_update, so a short real training pass is not a
/// reliable way to change the model.)
void PerturbNetwork(rl::DqnAgent& agent) {
  auto& first = static_cast<nn::Linear&>(agent.main_network().layer(0));
  first.weights()[0] += 0.25;
}

/// SaveState() + RestoreSession(): the session comes back as a new object.
/// On any failure the original session is returned so the drive can finish
/// (the EXPECT failures still fail the test).
std::unique_ptr<InteractionSession> Reopen(
    InteractiveAlgorithm& algo, std::unique_ptr<InteractionSession> session,
    const SessionConfig& config, const std::string& label) {
  Result<std::string> bytes = session->SaveState();
  EXPECT_TRUE(bytes.ok()) << label << ": " << bytes.status().ToString();
  if (!bytes.ok()) return session;
  Result<std::unique_ptr<InteractionSession>> restored =
      algo.RestoreSession(*bytes, config);
  EXPECT_TRUE(restored.ok()) << label << ": " << restored.status().ToString();
  if (!restored.ok()) return session;
  return std::move(*restored);
}

/// Drives a session to completion, checkpointing and reopening it at every
/// state-machine stage of every round: before NextQuestion (EA/AA sit in
/// the scoring stage here), while the question is in flight, and once after
/// termination. The user object survives every reopen, exactly like a real
/// human across a server restart.
InteractionResult DriveWithRestart(InteractiveAlgorithm& algo,
                                   UserOracle& user,
                                   const SessionConfig& config,
                                   const std::string& label) {
  std::unique_ptr<InteractionSession> session = algo.StartSession(config);
  while (true) {
    session = Reopen(algo, std::move(session), config, label + " pre-question");
    std::optional<SessionQuestion> q = session->NextQuestion();
    if (!q.has_value()) break;
    session = Reopen(algo, std::move(session), config, label + " in-flight");
    std::optional<SessionQuestion> again = session->NextQuestion();
    EXPECT_TRUE(again.has_value()) << label;
    if (!again.has_value()) break;
    ExpectSameQuestion(*q, *again, label + " reopened question");
    session->PostAnswer(user.Ask(again->first, again->second));
  }
  session = Reopen(algo, std::move(session), config, label + " finished");
  EXPECT_TRUE(session->Finished()) << label;
  InteractionResult result = session->Finish();
  result.converged = result.termination == Termination::kConverged;
  return result;
}

// ----------------------- restart at every round == uninterrupted, honest

TEST(CheckpointTest, RestartEveryRoundMatchesUninterruptedForEveryAlgorithm) {
  Roster roster(SmallSkyline(250, 3, 11));
  RunBudget budget;
  budget.max_rounds = 40;
  Rng urng(12);
  for (int trial = 0; trial < 2; ++trial) {
    const Vec u = urng.SimplexUniform(3);
    for (InteractiveAlgorithm* algo : roster.all()) {
      const uint64_t seed = 900 + static_cast<uint64_t>(trial);
      algo->Reseed(seed);
      LinearUser blocking_user(u);
      InteractionResult blocking = algo->Interact(blocking_user, budget);

      SessionConfig config;
      config.budget = budget;
      config.seed = seed;
      LinearUser restart_user(u);
      InteractionResult restarted =
          DriveWithRestart(*algo, restart_user, config, algo->name());
      ExpectSameResult(blocking, restarted, algo->name());
    }
  }
}

// ------------------------------------------ ...under faulty users

TEST(CheckpointTest, RestartEveryRoundMatchesUninterruptedUnderFaultyUsers) {
  Roster roster(SmallSkyline(250, 3, 21));
  RunBudget budget;
  budget.max_rounds = 30;
  Rng urng(22);
  for (int trial = 0; trial < 2; ++trial) {
    const Vec u = urng.SimplexUniform(3);
    FaultyUserOptions fopt;
    fopt.flip_rate = 0.2;
    fopt.no_answer_rate = 0.15;
    fopt.seed = 700 + static_cast<uint64_t>(trial);
    for (InteractiveAlgorithm* algo : roster.all()) {
      const uint64_t seed = 800 + static_cast<uint64_t>(trial);
      algo->Reseed(seed);
      FaultyUser blocking_user(u, fopt);
      InteractionResult blocking = algo->Interact(blocking_user, budget);

      SessionConfig config;
      config.budget = budget;
      config.seed = seed;
      FaultyUser restart_user(u, fopt);  // same fault stream, fresh state
      InteractionResult restarted =
          DriveWithRestart(*algo, restart_user, config, algo->name());
      ExpectSameResult(blocking, restarted, algo->name());
      EXPECT_EQ(blocking_user.flips(), restart_user.flips()) << algo->name();
    }
  }
}

// ------------------------------------------ ...under exhausted budgets

TEST(CheckpointTest, RestartEveryRoundMatchesUninterruptedUnderTinyBudgets) {
  Roster roster(SmallSkyline(300, 4, 31));
  Rng urng(32);
  const Vec u = urng.SimplexUniform(4);
  for (size_t max_rounds : {1u, 3u}) {
    RunBudget budget;
    budget.max_rounds = max_rounds;
    for (InteractiveAlgorithm* algo : roster.all()) {
      algo->Reseed(7);
      LinearUser blocking_user(u);
      InteractionResult blocking = algo->Interact(blocking_user, budget);

      SessionConfig config;
      config.budget = budget;
      config.seed = 7;
      LinearUser restart_user(u);
      InteractionResult restarted =
          DriveWithRestart(*algo, restart_user, config, algo->name());
      ExpectSameResult(blocking, restarted, algo->name());
      EXPECT_LE(restarted.rounds, max_rounds) << algo->name();
    }
  }
}

// ------------------------------------------------ trace vectors survive

TEST(CheckpointTest, TraceVectorsSurviveRestartBitIdentically) {
  Roster roster(SmallSkyline(250, 3, 41));
  RunBudget budget;
  budget.max_rounds = 25;
  Rng urng(42);
  const Vec u = urng.SimplexUniform(3);
  for (InteractiveAlgorithm* algo : roster.all()) {
    algo->Reseed(9);
    Rng blocking_rng(77);
    InteractionTrace blocking_trace(&roster.sky, 16, &blocking_rng);
    LinearUser blocking_user(u);
    InteractionResult blocking =
        algo->Interact(blocking_user, budget, &blocking_trace);

    Rng restart_rng(77);
    InteractionTrace restart_trace(&roster.sky, 16, &restart_rng);
    SessionConfig config;
    config.budget = budget;
    config.seed = 9;
    config.trace = &restart_trace;
    LinearUser restart_user(u);
    InteractionResult restarted =
        DriveWithRestart(*algo, restart_user, config, algo->name());

    ExpectSameResult(blocking, restarted, algo->name());
    EXPECT_EQ(blocking_trace.max_regret(), restart_trace.max_regret())
        << algo->name();
    EXPECT_EQ(blocking_trace.best_index(), restart_trace.best_index())
        << algo->name();
  }
}

// ------------------------------------- seedless sessions become portable

// A session without SessionConfig::seed draws from the algorithm's member
// Rng; its snapshot captures that generator mid-stream, and the restored
// session owns the continuation — so even seedless episodes survive a
// restart bit-identically.
TEST(CheckpointTest, SeedlessSessionOwnsItsRngAfterRestore) {
  Roster roster(SmallSkyline(250, 3, 51));
  RunBudget budget;
  budget.max_rounds = 30;
  Rng urng(52);
  const Vec u = urng.SimplexUniform(3);
  for (InteractiveAlgorithm* algo :
       std::vector<InteractiveAlgorithm*>{&roster.ea, &roster.uh_random}) {
    algo->Reseed(0xBEEF);
    LinearUser blocking_user(u);
    InteractionResult blocking = algo->Interact(blocking_user, budget);

    algo->Reseed(0xBEEF);
    SessionConfig config;
    config.budget = budget;  // note: no seed
    LinearUser restart_user(u);
    InteractionResult restarted =
        DriveWithRestart(*algo, restart_user, config, algo->name());
    ExpectSameResult(blocking, restarted, algo->name());
  }
}

// ----------------------------------------------- scheduler durability

struct Fleet {
  std::vector<std::unique_ptr<UserOracle>> owned;
  std::vector<UserOracle*> users;
};

Fleet LinearFleet(const std::vector<Vec>& utilities) {
  Fleet fleet;
  for (const Vec& u : utilities) {
    fleet.owned.push_back(std::make_unique<LinearUser>(u));
    fleet.users.push_back(fleet.owned.back().get());
  }
  return fleet;
}

SessionScheduler BuildPopulation(Roster& roster, const RunBudget& budget,
                                 uint64_t master) {
  SessionScheduler scheduler;
  std::vector<InteractiveAlgorithm*> algos = roster.all();
  for (size_t i = 0; i < algos.size(); ++i) {
    SessionConfig config;
    config.budget = budget;
    config.seed = SplitSeed(master, i);
    scheduler.Add(algos[i]->StartSession(config), algos[i]);
  }
  return scheduler;
}

std::vector<Vec> FleetUtilities(size_t count, size_t d, uint64_t seed) {
  Rng urng(seed);
  std::vector<Vec> utilities;
  for (size_t i = 0; i < count; ++i) utilities.push_back(urng.SimplexUniform(d));
  return utilities;
}

TEST(SchedulerDurabilityTest, DurableDriveMatchesPlainDrive) {
  Roster roster(SmallSkyline(250, 3, 61));
  RunBudget budget;
  budget.max_rounds = 20;
  const uint64_t master = 0xD00Du;
  std::vector<Vec> utilities = FleetUtilities(roster.all().size(), 3, 62);

  SessionScheduler plain = BuildPopulation(roster, budget, master);
  Fleet plain_fleet = LinearFleet(utilities);
  std::vector<InteractionResult> reference =
      DriveWithUsers(plain, plain_fleet.users);

  SessionScheduler durable = BuildPopulation(roster, budget, master);
  Fleet durable_fleet = LinearFleet(utilities);
  SessionStore store;
  Result<DurableDriveOutcome> outcome =
      DriveWithUsersDurable(durable, durable_fleet.users, store,
                            /*checkpoint_every_ticks=*/2);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->crashed);
  ASSERT_EQ(outcome->results.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ExpectSameResult(reference[i], outcome->results[i],
                     "session " + std::to_string(i));
  }
}

// The tentpole guarantee: crash at EVERY answer index, recover from the
// store (snapshot + WAL replay), finish with the surviving user objects —
// and the results equal the uninterrupted run every single time.
TEST(SchedulerDurabilityTest, CrashAtEveryAnswerRecoversIdentically) {
  Roster roster(SmallSkyline(200, 3, 71));
  RunBudget budget;
  budget.max_rounds = 4;  // keeps total answers (and the quadratic loop) small
  const uint64_t master = 0xC4A5u;
  std::vector<Vec> utilities = FleetUtilities(roster.all().size(), 3, 72);

  SessionScheduler reference_scheduler =
      BuildPopulation(roster, budget, master);
  Fleet reference_fleet = LinearFleet(utilities);
  SessionStore reference_store;
  Result<DurableDriveOutcome> reference = DriveWithUsersDurable(
      reference_scheduler, reference_fleet.users, reference_store,
      /*checkpoint_every_ticks=*/2);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_FALSE(reference->crashed);
  size_t total_answers = 0;
  for (const InteractionResult& r : reference->results) {
    total_answers += r.rounds;
  }
  ASSERT_GT(total_answers, 0u);

  for (size_t crash_at = 0; crash_at <= total_answers; ++crash_at) {
    const std::string label = "crash@" + std::to_string(crash_at);
    SessionScheduler scheduler = BuildPopulation(roster, budget, master);
    Fleet fleet = LinearFleet(utilities);
    SessionStore store;
    CrashPoint crash;
    crash.after_answers = crash_at;
    Result<DurableDriveOutcome> first = DriveWithUsersDurable(
        scheduler, fleet.users, store, /*checkpoint_every_ticks=*/2, crash);
    ASSERT_TRUE(first.ok()) << label << ": " << first.status().ToString();
    if (!first->crashed) {
      // Crash point beyond the run's natural end: plain completion.
      ASSERT_EQ(crash_at, total_answers) << label;
      for (size_t i = 0; i < reference->results.size(); ++i) {
        ExpectSameResult(reference->results[i], first->results[i], label);
      }
      continue;
    }

    // "Reboot": the store is all that survives (round-trip it through its
    // serialised form to prove it), plus the live algorithm instances and
    // the humans mid-conversation.
    Result<SessionStore> reloaded = SessionStore::Deserialize(store.Serialize());
    ASSERT_TRUE(reloaded.ok()) << label << ": " << reloaded.status().ToString();
    Result<SessionScheduler> recovered =
        RecoverScheduler(*reloaded, roster.Resolver());
    ASSERT_TRUE(recovered.ok()) << label << ": "
                                << recovered.status().ToString();
    SessionStore store2;
    Result<DurableDriveOutcome> resumed = DriveWithUsersDurable(
        *recovered, fleet.users, store2, /*checkpoint_every_ticks=*/2);
    ASSERT_TRUE(resumed.ok()) << label << ": " << resumed.status().ToString();
    ASSERT_FALSE(resumed->crashed) << label;
    ASSERT_EQ(resumed->results.size(), reference->results.size()) << label;
    for (size_t i = 0; i < reference->results.size(); ++i) {
      ExpectSameResult(reference->results[i], resumed->results[i],
                       label + " session " + std::to_string(i));
    }
  }
}

// Crash-recovery with FaultyUsers: the injected crash fires BEFORE the Ask,
// so the surviving oracles' fault streams stay aligned with the WAL.
TEST(SchedulerDurabilityTest, CrashRecoveryKeepsFaultyUserStreamsAligned) {
  Roster roster(SmallSkyline(200, 3, 81));
  RunBudget budget;
  budget.max_rounds = 6;
  const uint64_t master = 0xFA11u;
  std::vector<Vec> utilities = FleetUtilities(roster.all().size(), 3, 82);
  auto faulty_fleet = [&]() {
    Fleet fleet;
    for (size_t i = 0; i < utilities.size(); ++i) {
      FaultyUserOptions fopt;
      fopt.flip_rate = 0.2;
      fopt.no_answer_rate = 0.1;
      fopt.seed = 600 + static_cast<uint64_t>(i);
      fleet.owned.push_back(std::make_unique<FaultyUser>(utilities[i], fopt));
      fleet.users.push_back(fleet.owned.back().get());
    }
    return fleet;
  };

  SessionScheduler reference_scheduler =
      BuildPopulation(roster, budget, master);
  Fleet reference_fleet = faulty_fleet();
  SessionStore reference_store;
  Result<DurableDriveOutcome> reference = DriveWithUsersDurable(
      reference_scheduler, reference_fleet.users, reference_store, 2);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (size_t crash_at : {0u, 3u, 7u, 13u}) {
    const std::string label = "faulty-crash@" + std::to_string(crash_at);
    SessionScheduler scheduler = BuildPopulation(roster, budget, master);
    Fleet fleet = faulty_fleet();
    SessionStore store;
    CrashPoint crash;
    crash.after_answers = crash_at;
    Result<DurableDriveOutcome> first =
        DriveWithUsersDurable(scheduler, fleet.users, store, 2, crash);
    ASSERT_TRUE(first.ok()) << label;
    if (!first->crashed) continue;  // run ended before the crash point
    Result<SessionScheduler> recovered =
        RecoverScheduler(store, roster.Resolver());
    ASSERT_TRUE(recovered.ok()) << label << ": "
                                << recovered.status().ToString();
    SessionStore store2;
    Result<DurableDriveOutcome> resumed =
        DriveWithUsersDurable(*recovered, fleet.users, store2, 2);
    ASSERT_TRUE(resumed.ok()) << label;
    for (size_t i = 0; i < reference->results.size(); ++i) {
      ExpectSameResult(reference->results[i], resumed->results[i],
                       label + " session " + std::to_string(i));
    }
  }
}

// ------------------------------------------- graceful degradation paths

TEST(SchedulerDurabilityTest, RetrainedNetworkDegradesOnlyThatSlot) {
  Roster roster(SmallSkyline(200, 3, 91));
  RunBudget budget;
  budget.max_rounds = 10;
  SessionScheduler scheduler;
  SessionConfig config;
  config.budget = budget;
  config.seed = 1;
  scheduler.Add(roster.ea.StartSession(config), &roster.ea);
  config.seed = 2;
  scheduler.Add(roster.uh_random.StartSession(config), &roster.uh_random);

  Result<std::string> snapshot = scheduler.CheckpointAll();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  // Retrain the EA between checkpoint and restore: its Q-network
  // fingerprint no longer matches the snapshot. (A weight nudge stands in
  // for a full Train() pass, which only touches weights once the replay
  // buffer reaches min_replay_before_update.)
  PerturbNetwork(roster.ea.agent());

  Result<SessionScheduler> restored =
      SessionScheduler::RestoreAll(*snapshot, roster.Resolver());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), 2u);

  // Slot 0 degraded to an aborted session...
  EXPECT_TRUE(restored->finished(0));
  InteractionResult aborted = restored->Take(0);
  EXPECT_EQ(aborted.termination, Termination::kAborted);
  EXPECT_FALSE(aborted.status.ok());
  EXPECT_EQ(aborted.status.code(), StatusCode::kFailedPrecondition);

  // ...while slot 1 keeps serving to convergence.
  Rng urng(92);
  LinearUser user(urng.SimplexUniform(3));
  while (restored->active() > 0) {
    for (const PendingQuestion& pq : restored->Tick()) {
      restored->PostAnswer(pq.session_id,
                           user.Ask(pq.question.first, pq.question.second));
    }
  }
  InteractionResult healthy = restored->Take(1);
  EXPECT_NE(healthy.termination, Termination::kAborted);
}

TEST(SchedulerDurabilityTest, UnknownAlgorithmDegradesToAbortedSlot) {
  Roster roster(SmallSkyline(200, 3, 101));
  RunBudget budget;
  budget.max_rounds = 10;
  SessionScheduler scheduler;
  SessionConfig config;
  config.budget = budget;
  config.seed = 3;
  scheduler.Add(roster.uh_simplex.StartSession(config), &roster.uh_simplex);
  Result<std::string> snapshot = scheduler.CheckpointAll();
  ASSERT_TRUE(snapshot.ok());

  Result<SessionScheduler> restored = SessionScheduler::RestoreAll(
      *snapshot, [](const std::string&) -> InteractiveAlgorithm* {
        return nullptr;  // nothing registered
      });
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  InteractionResult r = restored->Take(0);
  EXPECT_EQ(r.termination, Termination::kAborted);
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);

  // A degraded population can itself be checkpointed and restored; the
  // cause survives the round trip.
  Result<std::string> again = restored->CheckpointAll();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  Result<SessionScheduler> twice =
      SessionScheduler::RestoreAll(*again, roster.Resolver());
  ASSERT_TRUE(twice.ok()) << twice.status().ToString();
  EXPECT_EQ(twice->size(), 1u);
}

TEST(SchedulerDurabilityTest, SessionAddedWithoutAlgorithmFailsCheckpoint) {
  Roster roster(SmallSkyline(200, 3, 111));
  SessionConfig config;
  config.seed = 4;
  SessionScheduler scheduler;
  scheduler.Add(roster.uh_random.StartSession(config));  // no algorithm
  Result<std::string> snapshot = scheduler.CheckpointAll();
  EXPECT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SchedulerDurabilityTest, TakenSlotsSurviveTheRoundTrip) {
  Roster roster(SmallSkyline(200, 3, 121));
  RunBudget budget;
  budget.max_rounds = 15;
  std::vector<Vec> utilities = FleetUtilities(2, 3, 122);
  SessionScheduler scheduler;
  SessionConfig config;
  config.budget = budget;
  config.seed = 5;
  scheduler.Add(roster.uh_random.StartSession(config), &roster.uh_random);
  config.seed = 6;
  scheduler.Add(roster.uh_simplex.StartSession(config), &roster.uh_simplex);
  Fleet fleet = LinearFleet(utilities);
  while (scheduler.active() > 0) {
    for (const PendingQuestion& pq : scheduler.Tick()) {
      scheduler.PostAnswer(pq.session_id,
                           fleet.users[pq.session_id]->Ask(
                               pq.question.first, pq.question.second));
    }
  }
  InteractionResult first = scheduler.Take(0);  // slot 0 becomes kTaken

  Result<std::string> snapshot = scheduler.CheckpointAll();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  Result<SessionScheduler> restored =
      SessionScheduler::RestoreAll(*snapshot, roster.Resolver());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_FALSE(restored->finished(0));  // taken, not finished
  ASSERT_TRUE(restored->finished(1));
  InteractionResult second = restored->Take(1);
  EXPECT_EQ(second.best_index, scheduler.Take(1).best_index);
  (void)first;
}

// ------------------------------------------------------- corruption suite

std::string UhSnapshot(Roster& roster, uint64_t seed) {
  SessionConfig config;
  config.budget.max_rounds = 20;
  config.seed = seed;
  std::unique_ptr<InteractionSession> session =
      roster.uh_random.StartSession(config);
  (void)session->NextQuestion();  // park mid-round with an in-flight question
  Result<std::string> bytes = session->SaveState();
  EXPECT_TRUE(bytes.ok());
  session->Cancel();
  return bytes.ok() ? *bytes : std::string();
}

TEST(CorruptionTest, EveryBitFlipIsRejectedWithoutCrashing) {
  Roster roster(SmallSkyline(150, 3, 131));
  const std::string good = UhSnapshot(roster, 9);
  ASSERT_FALSE(good.empty());
  // Sanity: the pristine bytes restore.
  ASSERT_TRUE(roster.uh_random.RestoreSession(good, SessionConfig{}).ok());

  size_t rejected = 0;
  for (size_t offset = 0; offset < good.size(); ++offset) {
    std::string bad = good;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x5A);
    Result<std::unique_ptr<InteractionSession>> restored =
        roster.uh_random.RestoreSession(bad, SessionConfig{});
    // Under ASan/UBSan this loop is the point: no flip may crash. Every
    // flip must also be *detected* — the CRC covers the whole payload and
    // the header fields are each validated.
    EXPECT_FALSE(restored.ok()) << "flip at offset " << offset;
    if (!restored.ok()) ++rejected;
  }
  EXPECT_EQ(rejected, good.size());
}

TEST(CorruptionTest, TruncationsAreRejectedWithoutCrashing) {
  Roster roster(SmallSkyline(150, 3, 141));
  const std::string good = UhSnapshot(roster, 10);
  ASSERT_FALSE(good.empty());
  for (size_t keep = 0; keep < good.size(); keep += 3) {
    Result<std::unique_ptr<InteractionSession>> restored =
        roster.uh_random.RestoreSession(good.substr(0, keep), SessionConfig{});
    EXPECT_FALSE(restored.ok()) << "truncated to " << keep << " bytes";
  }
}

TEST(CorruptionTest, VersionSkewIsRejectedWithAVersionError) {
  Roster roster(SmallSkyline(150, 3, 151));
  const std::string good = UhSnapshot(roster, 11);
  Result<std::string> payload = snapshot::UnwrapFrame("uh-session", 1, good);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  const std::string skewed = snapshot::WrapFrame("uh-session", 99, *payload);
  Result<std::unique_ptr<InteractionSession>> restored =
      roster.uh_random.RestoreSession(skewed, SessionConfig{});
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("version"), std::string::npos)
      << restored.status().ToString();
}

TEST(CorruptionTest, WrongAlgorithmAndWrongDatasetAreRejected) {
  Roster roster(SmallSkyline(150, 3, 161));
  const std::string good = UhSnapshot(roster, 12);

  // Different frame kind entirely.
  Result<std::unique_ptr<InteractionSession>> cross_kind =
      roster.single_pass.RestoreSession(good, SessionConfig{});
  EXPECT_FALSE(cross_kind.ok());

  // Same frame kind (UH-Random and UH-Simplex share it), different leaf
  // algorithm: caught by the session-core identity check.
  Result<std::unique_ptr<InteractionSession>> cross_leaf =
      roster.uh_simplex.RestoreSession(good, SessionConfig{});
  ASSERT_FALSE(cross_leaf.ok());
  EXPECT_EQ(cross_leaf.status().code(), StatusCode::kFailedPrecondition);

  // Same algorithm, different dataset.
  Dataset other = SmallSkyline(400, 3, 999);
  UhRandom other_uh(other, Roster::UhOpt());
  Result<std::unique_ptr<InteractionSession>> cross_data =
      other_uh.RestoreSession(good, SessionConfig{});
  ASSERT_FALSE(cross_data.ok());
  EXPECT_EQ(cross_data.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CorruptionTest, GarbageAndEmptyInputsAreRejected) {
  Roster roster(SmallSkyline(150, 3, 171));
  for (const std::string& junk :
       {std::string(), std::string("garbage"), std::string(4096, '\xFF')}) {
    Result<std::unique_ptr<InteractionSession>> restored =
        roster.uh_random.RestoreSession(junk, SessionConfig{});
    EXPECT_FALSE(restored.ok());
  }
}

TEST(CorruptionTest, RetrainedModelIsRejectedAtSessionLevel) {
  Roster roster(SmallSkyline(150, 3, 181));
  SessionConfig config;
  config.budget.max_rounds = 20;
  config.seed = 13;
  std::unique_ptr<InteractionSession> session =
      roster.ea.StartSession(config);
  (void)session->NextQuestion();
  Result<std::string> bytes = session->SaveState();
  ASSERT_TRUE(bytes.ok());
  session->Cancel();

  PerturbNetwork(roster.ea.agent());
  Result<std::unique_ptr<InteractionSession>> restored =
      roster.ea.RestoreSession(*bytes, config);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CorruptionTest, NaNPayloadsAreRejectedByTheCodec) {
  snapshot::Writer w;
  snapshot::EncodeVec(
      Vec(std::vector<double>{0.5, std::numeric_limits<double>::quiet_NaN()}),
      &w);
  snapshot::Reader r(w.bytes());
  Vec out;
  Status decoded = snapshot::DecodeVec(&r, &out);
  EXPECT_FALSE(decoded.ok());

  snapshot::Writer w2;
  w2.F64(std::numeric_limits<double>::infinity());
  snapshot::Reader r2(w2.bytes());
  (void)r2.FiniteF64();
  EXPECT_TRUE(r2.failed());
}

TEST(CorruptionTest, CorruptSessionStoreIsAHardError) {
  SessionStore store;
  store.BeginEpoch("population-bytes");
  store.LogAnswer(0, Answer::kSecond);
  store.LogCancel(1);
  std::string bytes = store.Serialize();

  Result<SessionStore> good = SessionStore::Deserialize(bytes);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->population(), "population-bytes");
  ASSERT_EQ(good->wal().size(), 2u);
  EXPECT_EQ(good->wal()[0].kind, WalRecord::kAnswer);
  EXPECT_EQ(good->wal()[0].answer, Answer::kSecond);
  EXPECT_EQ(good->wal()[1].kind, WalRecord::kCancel);

  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  Result<SessionStore> corrupt = SessionStore::Deserialize(bytes);
  EXPECT_FALSE(corrupt.ok());
}

TEST(CorruptionTest, SessionStoreFileRoundTrip) {
  SessionStore store;
  store.BeginEpoch("epoch-1");
  store.LogAnswer(2, Answer::kNoAnswer);
  const std::string path = ::testing::TempDir() + "/isrl_store_rt.bin";
  ASSERT_TRUE(store.SaveFile(path).ok());
  Result<SessionStore> loaded = SessionStore::LoadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->population(), "epoch-1");
  ASSERT_EQ(loaded->wal().size(), 1u);
  EXPECT_EQ(loaded->wal()[0].session_id, 2u);
  std::remove(path.c_str());

  Result<SessionStore> missing = SessionStore::LoadFile(path);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

// ----------------------------------------------------- codec round trips

TEST(SnapshotCodecTest, Crc32MatchesTheStandardCheckValue) {
  EXPECT_EQ(snapshot::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(snapshot::Crc32(""), 0u);
}

TEST(SnapshotCodecTest, RngRoundTripContinuesTheDrawSequence) {
  Rng original(0x1234);
  for (int i = 0; i < 100; ++i) (void)original.SimplexUniform(3);

  snapshot::Writer w;
  snapshot::EncodeRng(original, &w);
  snapshot::Reader r(w.bytes());
  Rng restored(0);
  ASSERT_TRUE(snapshot::DecodeRng(&r, &restored).ok());
  EXPECT_EQ(restored.seed(), original.seed());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(restored.engine()(), original.engine()());
  }
}

TEST(SnapshotCodecTest, FrameRejectsKindMismatchAndTrailingBytes) {
  const std::string frame = snapshot::WrapFrame("alpha", 1, "payload");
  EXPECT_TRUE(snapshot::UnwrapFrame("alpha", 1, frame).ok());
  EXPECT_FALSE(snapshot::UnwrapFrame("beta", 1, frame).ok());
  EXPECT_FALSE(snapshot::UnwrapFrame("alpha", 2, frame).ok());
  EXPECT_FALSE(snapshot::UnwrapFrame("alpha", 1, frame + "x").ok());
}

}  // namespace
}  // namespace isrl
