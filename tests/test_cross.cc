// Cross-module property tests: independent subsystems checking each other.
//  * the simplex LP solver vs combinatorial vertex enumeration (a linear
//    objective over a polytope peaks at a vertex),
//  * AA's LP rectangle vs the exact polyhedron's vertex extents,
//  * hit-and-run samples vs exact membership,
//  * degenerate geometry (cuts through vertices, repeated cuts, facets).
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/aa_state.h"
#include "geometry/hit_and_run.h"
#include "geometry/polyhedron.h"
#include "lp/simplex.h"

namespace isrl {
namespace {

// Builds matching representations of the same region: cuts for the
// Polyhedron and LP constraints over the simplex.
struct RegionPair {
  Polyhedron polyhedron;
  std::vector<Halfspace> cuts;
};

RegionPair RandomRegion(size_t d, size_t num_cuts, Rng& rng) {
  RegionPair region{Polyhedron::UnitSimplex(d), {}};
  for (size_t i = 0; i < num_cuts; ++i) {
    Vec a = rng.SimplexUniform(d);
    Vec b = rng.SimplexUniform(d);
    Halfspace h{a - b, 0.0};
    if (h.normal.Norm() < 1e-9) continue;
    Polyhedron next = region.polyhedron;
    next.Cut(h);
    if (next.IsEmpty()) continue;  // keep the region non-empty
    region.polyhedron = next;
    region.cuts.push_back(h);
  }
  return region;
}

class LpVsVertexEnumeration : public ::testing::TestWithParam<size_t> {};

TEST_P(LpVsVertexEnumeration, LinearOptimumMatchesBestVertex) {
  const size_t d = GetParam();
  Rng rng(500 + d);
  for (int trial = 0; trial < 8; ++trial) {
    RegionPair region = RandomRegion(d, 4, rng);
    // Random objective.
    Vec c(d);
    for (size_t i = 0; i < d; ++i) c[i] = rng.Uniform(-1.0, 1.0);

    // LP over the same constraints.
    lp::Model model;
    for (size_t i = 0; i < d; ++i) model.AddVariable(c[i]);
    model.AddConstraint(Vec(d, 1.0), lp::Relation::kEq, 1.0);
    for (const Halfspace& h : region.cuts) {
      model.AddConstraint(h.normal, lp::Relation::kGe, h.offset);
    }
    lp::SolveResult lp_result = lp::Solve(model);
    ASSERT_TRUE(lp_result.ok()) << lp_result.status.ToString();

    double best_vertex = -1e18;
    for (const Vec& v : region.polyhedron.vertices()) {
      best_vertex = std::max(best_vertex, Dot(c, v));
    }
    EXPECT_NEAR(lp_result.objective, best_vertex, 1e-6)
        << "d=" << d << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LpVsVertexEnumeration,
                         ::testing::Values(2, 3, 4, 5));

class RectVsVertices : public ::testing::TestWithParam<size_t> {};

TEST_P(RectVsVertices, AaOuterRectangleMatchesVertexExtents) {
  const size_t d = GetParam();
  Rng rng(600 + d);
  for (int trial = 0; trial < 5; ++trial) {
    RegionPair region = RandomRegion(d, 5, rng);
    std::vector<LearnedHalfspace> h;
    for (const Halfspace& cut : region.cuts) {
      LearnedHalfspace lh;
      lh.h = cut;
      h.push_back(lh);
    }
    AaGeometry geo = ComputeAaGeometry(d, h);
    ASSERT_TRUE(geo.feasible);
    for (size_t k = 0; k < d; ++k) {
      double lo = 1e18, hi = -1e18;
      for (const Vec& v : region.polyhedron.vertices()) {
        lo = std::min(lo, v[k]);
        hi = std::max(hi, v[k]);
      }
      EXPECT_NEAR(geo.e_min[k], lo, 1e-6) << "dim " << k;
      EXPECT_NEAR(geo.e_max[k], hi, 1e-6) << "dim " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, RectVsVertices, ::testing::Values(2, 3, 4));

TEST(CrossTest, InnerSphereCenterInsidePolyhedron) {
  Rng rng(700);
  for (int trial = 0; trial < 5; ++trial) {
    RegionPair region = RandomRegion(3, 4, rng);
    std::vector<LearnedHalfspace> h;
    for (const Halfspace& cut : region.cuts) {
      LearnedHalfspace lh;
      lh.h = cut;
      h.push_back(lh);
    }
    AaGeometry geo = ComputeAaGeometry(3, h);
    ASSERT_TRUE(geo.feasible);
    EXPECT_TRUE(region.polyhedron.Contains(geo.inner.center, 1e-6));
  }
}

TEST(CrossTest, HitAndRunSamplesPassExactMembership) {
  Rng rng(701);
  RegionPair region = RandomRegion(4, 5, rng);
  AaGeometry geo = [&] {
    std::vector<LearnedHalfspace> h;
    for (const Halfspace& cut : region.cuts) {
      LearnedHalfspace lh;
      lh.h = cut;
      h.push_back(lh);
    }
    return ComputeAaGeometry(4, h);
  }();
  ASSERT_TRUE(geo.feasible);
  auto samples = HitAndRunSample(region.cuts, geo.inner.center, 300, rng);
  ASSERT_FALSE(samples.empty());
  for (const Vec& u : samples) {
    EXPECT_TRUE(region.polyhedron.Contains(u, 1e-6));
  }
}

// ---------- Degenerate geometry ----------

TEST(DegenerateGeometry, CutThroughAVertexKeepsIt) {
  // Cut u0 ≥ u1 through the 3-simplex passes exactly through (0,0,1): that
  // corner must survive as a vertex.
  Polyhedron p = Polyhedron::UnitSimplex(3);
  p.Cut(Halfspace{Vec{1.0, -1.0, 0.0}, 0.0});
  bool has_corner = false;
  for (const Vec& v : p.vertices()) {
    if (ApproxEqual(v, Vec{0.0, 0.0, 1.0}, 1e-7)) has_corner = true;
  }
  EXPECT_TRUE(has_corner);
}

TEST(DegenerateGeometry, RepeatedCutIsIdempotent) {
  Polyhedron p = Polyhedron::UnitSimplex(3);
  Halfspace h{Vec{1.0, -1.0, 0.0}, 0.0};
  p.Cut(h);
  auto vertices_before = p.vertices();
  p.Cut(h);  // identical cut: nothing changes
  ASSERT_EQ(p.vertices().size(), vertices_before.size());
  for (size_t i = 0; i < vertices_before.size(); ++i) {
    bool found = false;
    for (const Vec& v : p.vertices()) {
      if (ApproxEqual(v, vertices_before[i], 1e-9)) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(DegenerateGeometry, SimplexFacetCutIsRedundant) {
  // u0 ≥ 0 is already a simplex constraint.
  Polyhedron p = Polyhedron::UnitSimplex(3);
  p.Cut(Halfspace{Vec{1.0, 0.0, 0.0}, 0.0});
  EXPECT_EQ(p.vertices().size(), 3u);
}

TEST(DegenerateGeometry, CutToExactlyOnePoint) {
  // u0 ≥ u1, u1 ≥ u0, u0 ≥ u2, u2 ≥ u0 pin the barycentre.
  Polyhedron p = Polyhedron::UnitSimplex(3);
  p.Cut(Halfspace{Vec{1.0, -1.0, 0.0}, 0.0});
  p.Cut(Halfspace{Vec{-1.0, 1.0, 0.0}, 0.0});
  p.Cut(Halfspace{Vec{1.0, 0.0, -1.0}, 0.0});
  p.Cut(Halfspace{Vec{-1.0, 0.0, 1.0}, 0.0});
  ASSERT_EQ(p.vertices().size(), 1u);
  EXPECT_TRUE(ApproxEqual(p.vertices()[0], Vec{1.0 / 3, 1.0 / 3, 1.0 / 3},
                          1e-7));
  EXPECT_NEAR(p.Diameter(), 0.0, 1e-9);
}

TEST(DegenerateGeometry, LpOnPointRegionStillSolves) {
  // The LP layer must agree that the pinned region is the barycentre.
  std::vector<LearnedHalfspace> h(4);
  h[0].h = Halfspace{Vec{1.0, -1.0, 0.0}, 0.0};
  h[1].h = Halfspace{Vec{-1.0, 1.0, 0.0}, 0.0};
  h[2].h = Halfspace{Vec{1.0, 0.0, -1.0}, 0.0};
  h[3].h = Halfspace{Vec{-1.0, 0.0, 1.0}, 0.0};
  AaGeometry geo = ComputeAaGeometry(3, h);
  ASSERT_TRUE(geo.feasible);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(geo.e_min[k], 1.0 / 3, 1e-6);
    EXPECT_NEAR(geo.e_max[k], 1.0 / 3, 1e-6);
  }
  EXPECT_NEAR(Distance(geo.e_min, geo.e_max), 0.0, 1e-6);
}

}  // namespace
}  // namespace isrl
