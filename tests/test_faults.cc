// Fault-injection suite: the engine must survive noisy users, LP failures,
// and tight budgets without ever aborting the process. Hundreds of seeded
// sessions run EA, AA, and the baselines against FaultyUser; every session
// must end in a normal / degraded / budget-exhausted terminal state with a
// valid recommendation.
#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/utility_approx.h"
#include "common/budget.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/regret.h"
#include "core/session.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "lp/simplex.h"
#include "user/faulty.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

Dataset SmallSkyline(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

rl::DqnOptions FastDqn() {
  rl::DqnOptions o;
  o.hidden_neurons = 32;
  o.batch_size = 16;
  o.min_replay_before_update = 16;
  return o;
}

bool IsAcceptableTermination(Termination t) {
  return t == Termination::kConverged || t == Termination::kDegraded ||
         t == Termination::kBudgetExhausted;
}

// ---------------------------------------------------------------- RunBudget

TEST(RunBudgetTest, EffectiveMaxRoundsTakesTheTighterCap) {
  RunBudget b;
  EXPECT_EQ(b.EffectiveMaxRounds(100), 100u);  // unset budget: algorithm cap
  b.max_rounds = 40;
  EXPECT_EQ(b.EffectiveMaxRounds(100), 40u);
  b.max_rounds = 500;
  EXPECT_EQ(b.EffectiveMaxRounds(100), 100u);  // algorithm cap still binds
}

TEST(DeadlineTest, DefaultNeverExpiresAndBudgetArmsIt) {
  Deadline never;
  EXPECT_FALSE(never.armed());
  EXPECT_FALSE(never.Expired());

  RunBudget no_time;
  EXPECT_FALSE(Deadline::FromBudget(no_time).armed());

  RunBudget timed;
  timed.max_seconds = 3600.0;
  Deadline far = Deadline::FromBudget(timed);
  EXPECT_TRUE(far.armed());
  EXPECT_FALSE(far.Expired());

  Deadline past = Deadline::After(-1.0);
  EXPECT_TRUE(past.armed());
  EXPECT_TRUE(past.Expired());
}

TEST(TerminationTest, NamesAreStable) {
  EXPECT_STREQ(TerminationName(Termination::kConverged), "converged");
  EXPECT_STREQ(TerminationName(Termination::kDegraded), "degraded");
  EXPECT_STREQ(TerminationName(Termination::kBudgetExhausted),
               "budget-exhausted");
  EXPECT_STREQ(TerminationName(Termination::kAborted), "aborted");
}

// --------------------------------------------------------------- FaultyUser

TEST(FaultyUserTest, ZeroRatesBehaveLikeLinearUser) {
  Vec u{0.3, 0.7};
  FaultyUser faulty(u, {});
  LinearUser linear(u);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    Vec a = rng.SimplexUniform(2);
    Vec b = rng.SimplexUniform(2);
    EXPECT_EQ(faulty.Ask(a, b) == Answer::kFirst, linear.Prefers(a, b));
  }
  EXPECT_EQ(faulty.flips(), 0u);
  EXPECT_EQ(faulty.no_answers(), 0u);
  EXPECT_EQ(faulty.boundary_flips(), 0u);
}

TEST(FaultyUserTest, FaultSequenceIsDeterministicPerSeed) {
  FaultyUserOptions opt;
  opt.flip_rate = 0.3;
  opt.no_answer_rate = 0.2;
  opt.seed = 11;
  Vec u{0.5, 0.5};
  FaultyUser first(u, opt);
  FaultyUser second(u, opt);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    Vec a = rng.SimplexUniform(2);
    Vec b = rng.SimplexUniform(2);
    EXPECT_EQ(first.Ask(a, b), second.Ask(a, b));
  }
  EXPECT_EQ(first.flips(), second.flips());
  EXPECT_EQ(first.no_answers(), second.no_answers());
  EXPECT_GT(first.flips() + first.no_answers(), 0u);
}

TEST(FaultyUserTest, NoAnswerRateProducesTimeoutsOnlyViaAsk) {
  FaultyUserOptions opt;
  opt.no_answer_rate = 0.5;
  opt.seed = 3;
  FaultyUser user(Vec{0.4, 0.6}, opt);
  size_t timeouts = 0;
  for (int i = 0; i < 200; ++i) {
    if (user.Ask(Vec{1.0, 0.0}, Vec{0.0, 1.0}) == Answer::kNoAnswer) {
      ++timeouts;
    }
  }
  EXPECT_GT(timeouts, 50u);
  EXPECT_LT(timeouts, 150u);
  EXPECT_EQ(user.no_answers(), timeouts);
  // Prefers() must always produce a bool — timeouts disabled.
  for (int i = 0; i < 50; ++i) {
    user.Prefers(Vec{1.0, 0.0}, Vec{0.0, 1.0});
  }
  EXPECT_EQ(user.no_answers(), timeouts);
}

TEST(FaultyUserTest, BoundaryBandFlipsNearTiesDeterministically) {
  FaultyUserOptions opt;
  opt.boundary_band = 0.05;
  FaultyUser user(Vec{0.8, 0.2}, opt);
  // Near-tie (|Δu| = 0.012, within 5% of the larger utility 0.512): the
  // adversarial band flips the true answer kSecond into kFirst.
  EXPECT_EQ(user.Ask(Vec{0.5, 0.5}, Vec{0.52, 0.48}), Answer::kFirst);
  EXPECT_EQ(user.boundary_flips(), 1u);
  // Far from the boundary (|Δu| = 0.6): answered honestly.
  EXPECT_EQ(user.Ask(Vec{1.0, 0.0}, Vec{0.0, 1.0}), Answer::kFirst);
  EXPECT_EQ(user.boundary_flips(), 1u);
}

// ----------------------------------------------- 200-session survival: EA

TEST(FaultToleranceTest, EaSurvives200SessionsAgainstFlippingUser) {
  Dataset sky = SmallSkyline(300, 3, 21);
  EaOptions opt;
  opt.epsilon = 0.1;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);

  RunBudget budget;
  budget.max_rounds = 60;

  size_t total_flips = 0;
  Rng urng(22);
  for (int session = 0; session < 200; ++session) {
    FaultyUserOptions fopt;
    fopt.flip_rate = 0.2;
    fopt.seed = 1000 + static_cast<uint64_t>(session);
    FaultyUser user(urng.SimplexUniform(3), fopt);
    InteractionResult r = ea.Interact(user, budget);
    ASSERT_TRUE(IsAcceptableTermination(r.termination))
        << "session " << session << " ended " << TerminationName(r.termination)
        << ": " << r.status.ToString();
    ASSERT_LT(r.best_index, sky.size());
    EXPECT_LE(r.rounds, budget.max_rounds);
    EXPECT_EQ(r.converged, r.termination == Termination::kConverged);
    total_flips += user.flips();
  }
  // The fault model must actually have been active; the engine absorbs the
  // flips (a wrong answer still cuts the region consistently — see
  // ConflictingGeometryDropsTheMostRecentAnswers for a forced contradiction).
  EXPECT_GT(total_flips, 100u);
}

// ----------------------------------------------- 200-session survival: AA

TEST(FaultToleranceTest, AaSurvives200SessionsAgainstFlippingUser) {
  Dataset sky = SmallSkyline(300, 3, 31);
  AaOptions opt;
  opt.epsilon = 0.15;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);

  RunBudget budget;
  budget.max_rounds = 40;

  size_t total_flips = 0;
  Rng urng(32);
  for (int session = 0; session < 200; ++session) {
    FaultyUserOptions fopt;
    fopt.flip_rate = 0.2;
    fopt.seed = 2000 + static_cast<uint64_t>(session);
    FaultyUser user(urng.SimplexUniform(3), fopt);
    InteractionResult r = aa.Interact(user, budget);
    ASSERT_TRUE(IsAcceptableTermination(r.termination))
        << "session " << session << " ended " << TerminationName(r.termination)
        << ": " << r.status.ToString();
    ASSERT_LT(r.best_index, sky.size());
    EXPECT_LE(r.rounds, budget.max_rounds);
    total_flips += user.flips();
  }
  EXPECT_GT(total_flips, 100u);  // the fault model really was active
}

// ------------------------------------------------- full fault model sweep

TEST(FaultToleranceTest, FullFaultModelWithTimeoutsAndBoundaryFlips) {
  Dataset sky = SmallSkyline(200, 3, 41);
  EaOptions eopt;
  eopt.epsilon = 0.1;
  eopt.dqn = FastDqn();
  Ea ea(sky, eopt);

  RunBudget budget;
  budget.max_rounds = 50;

  size_t total_no_answers = 0;
  Rng urng(42);
  for (int session = 0; session < 40; ++session) {
    FaultyUserOptions fopt;
    fopt.flip_rate = 0.1;
    fopt.no_answer_rate = 0.2;
    fopt.boundary_band = 0.02;
    fopt.seed = 3000 + static_cast<uint64_t>(session);
    FaultyUser user(urng.SimplexUniform(3), fopt);
    InteractionResult r = ea.Interact(user, budget);
    ASSERT_TRUE(IsAcceptableTermination(r.termination));
    ASSERT_LT(r.best_index, sky.size());
    total_no_answers += r.no_answers;
  }
  // 20% timeout rate across 40 sessions must exercise the no-answer path.
  EXPECT_GT(total_no_answers, 0u);
}

// ------------------------------------------------------ LP fault injection

TEST(FaultToleranceTest, AaSurvivesInjectedLpFailures) {
  Dataset sky = SmallSkyline(150, 3, 51);
  AaOptions opt;
  opt.epsilon = 0.15;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);

  RunBudget budget;
  budget.max_rounds = 30;

  // Fail the first two LP attempts: the recovery ladder's third (perturbed)
  // attempt rescues the very first geometry solve and the session proceeds.
  lp::FailingLpHook hook(2);
  LinearUser user(Vec{0.2, 0.3, 0.5});
  InteractionResult r = aa.Interact(user, budget);
  EXPECT_TRUE(IsAcceptableTermination(r.termination))
      << TerminationName(r.termination) << ": " << r.status.ToString();
  ASSERT_LT(r.best_index, sky.size());
  EXPECT_EQ(hook.failures_injected(), 2u);
  EXPECT_GT(hook.attempts_seen(), 2u);  // recovery retried and moved on
}

TEST(FaultToleranceTest, AbortsGracefullyWhenLpNeverRecovers) {
  // Every LP attempt fails: AA cannot compute any geometry, even on an empty
  // half-space set. The session must end kAborted with a non-OK status and a
  // fallback recommendation — never a process death.
  Dataset sky = SmallSkyline(150, 3, 52);
  AaOptions opt;
  opt.epsilon = 0.15;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);

  RunBudget budget;
  budget.max_rounds = 10;

  lp::FailingLpHook hook(1000000);
  LinearUser user(Vec{0.2, 0.3, 0.5});
  InteractionResult r = aa.Interact(user, budget);
  EXPECT_EQ(r.termination, Termination::kAborted);
  EXPECT_FALSE(r.status.ok());
  EXPECT_FALSE(r.converged);
  ASSERT_LT(r.best_index, sky.size());
}

TEST(FaultToleranceTest, WarmStartFaultDegradesToColdBitIdentical) {
  // The warm-start attempt is one more fault-injection point: when the hook
  // kills it, SolveWithWarmStart must fall through to the cold retry ladder
  // and return exactly what a cold solve returns (DESIGN.md §17).
  lp::Model m;
  for (size_t i = 0; i < 4; ++i) m.AddVariable(i == 0 ? 1.0 : 0.0);
  m.AddConstraint(Vec(4, 1.0), lp::Relation::kEq, 1.0);
  m.AddConstraint(Vec{0.4, -0.2, 0.3, -0.1}, lp::Relation::kGe, 0.0);
  m.AddConstraint(Vec{-0.1, 0.5, -0.3, 0.2}, lp::Relation::kGe, 0.0);

  lp::SolveResult cold = lp::SolveWithRecovery(m);
  ASSERT_TRUE(cold.ok());
  ASSERT_FALSE(cold.warm.empty());

  // Hook fails exactly the warm attempt; the cold fallback then runs clean.
  lp::FailingLpHook hook(1);
  lp::SolveResult r = lp::SolveWithWarmStart(m, cold.warm);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(hook.failures_injected(), 1u);
  EXPECT_FALSE(r.diagnostics.warm_started);
  EXPECT_TRUE(r.diagnostics.warm_rejected);
  EXPECT_TRUE(r.diagnostics.injected_fault);
  EXPECT_EQ(r.objective, cold.objective);
  ASSERT_EQ(r.x.dim(), cold.x.dim());
  for (size_t c = 0; c < r.x.dim(); ++c) EXPECT_EQ(r.x[c], cold.x[c]);
}

TEST(FaultToleranceTest, StaleAndCorruptWarmBasesDegradeUnderFaults) {
  // Corrupt warm state (duplicated basis column, wrong shape) must never
  // change an answer — only cost the warm shortcut. Verified with the fault
  // hook armed so the injection path and the corruption path compose.
  lp::Model m;
  for (size_t i = 0; i < 3; ++i) m.AddVariable(i == 1 ? 1.0 : 0.0);
  m.SetSense(lp::Sense::kMinimize);
  m.AddConstraint(Vec(3, 1.0), lp::Relation::kEq, 1.0);
  m.AddConstraint(Vec{0.2, 0.1, -0.3}, lp::Relation::kGe, 0.0);

  lp::SolveResult cold = lp::SolveWithRecovery(m);
  ASSERT_TRUE(cold.ok());

  lp::WarmStart corrupt = cold.warm;
  ASSERT_GE(corrupt.basis.size(), 2u);
  corrupt.basis[0] = corrupt.basis[1];
  lp::WarmStart stale = cold.warm;
  stale.num_cols += 3;

  for (const lp::WarmStart& bad : {corrupt, stale}) {
    lp::FailingLpHook hook(0);  // armed but passing: counts attempts
    lp::SolveResult r = lp::SolveWithWarmStart(m, bad);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.diagnostics.warm_started);
    EXPECT_TRUE(r.diagnostics.warm_rejected);
    EXPECT_EQ(r.objective, cold.objective);
    for (size_t c = 0; c < r.x.dim(); ++c) EXPECT_EQ(r.x[c], cold.x[c]);
  }
}

TEST(FaultToleranceTest, FamilySolverRetriesThroughInjectedFailures) {
  // A family member whose first attempt is killed by the hook must climb the
  // same escalation ladder as SolveWithRecovery and still land on a correct
  // optimum; later members keep using the rung caches.
  lp::SimplexOptions options;
  lp::RetryOptions retry;
  lp::FamilySolver family(options, retry);
  std::vector<Vec> normals{Vec{0.3, -0.2, 0.1}, Vec{-0.1, 0.4, -0.2}};
  auto member = [&](size_t coord, bool maximize) {
    lp::Model m;
    for (size_t i = 0; i < 3; ++i) m.AddVariable(i == coord ? 1.0 : 0.0);
    m.SetSense(maximize ? lp::Sense::kMaximize : lp::Sense::kMinimize);
    m.AddConstraint(Vec(3, 1.0), lp::Relation::kEq, 1.0);
    for (const Vec& n : normals) m.AddConstraint(n, lp::Relation::kGe, 0.0);
    return m;
  };

  lp::SolveResult reference = lp::SolveWithRecovery(member(0, true));
  ASSERT_TRUE(reference.ok());

  lp::FailingLpHook hook(1);
  lp::SolveResult faulted = family.Solve(member(0, true));
  ASSERT_TRUE(faulted.ok()) << faulted.status.ToString();
  EXPECT_TRUE(faulted.diagnostics.injected_fault);
  EXPECT_EQ(faulted.diagnostics.attempts, 2u);
  // The rescue rung runs with Bland-from-start pricing, so only the optimum
  // value (unique here) is comparable, not the pivot path.
  EXPECT_NEAR(faulted.objective, reference.objective, 1e-9);

  // Subsequent members pass the (now exhausted) hook and solve normally,
  // bit-identical to their own cold solves.
  for (size_t coord = 1; coord < 3; ++coord) {
    lp::SolveResult shared = family.Solve(member(coord, false));
    lp::SolveResult cold = lp::SolveWithRecovery(member(coord, false));
    ASSERT_TRUE(shared.ok());
    EXPECT_EQ(shared.objective, cold.objective);
    for (size_t c = 0; c < shared.x.dim(); ++c) {
      EXPECT_EQ(shared.x[c], cold.x[c]);
    }
  }
}

TEST(FaultToleranceTest, ConflictingGeometryDropsTheMostRecentAnswers) {
  // EA/AA only ask questions that split the current feasible region, so a
  // flipped answer yields a wrong-but-consistent cut — natural noise almost
  // never empties the region. Force the contradiction instead: poison AA's
  // inner-sphere LP exactly when the learned half-space set reaches size 3
  // (that model has d+1 variables and 1 + 3 + d constraints). Every third
  // answer turns the geometry infeasible, AA drops the most recent suffix,
  // and the session continues on the surviving prefix.
  constexpr size_t kD = 3;
  constexpr size_t kPoisonedSize = 3;
  Dataset sky = SmallSkyline(150, kD, 53);
  AaOptions opt;
  opt.epsilon = 0.15;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);

  lp::SetLpFaultHookForTest([](const lp::Model& model, size_t) {
    if (model.num_variables() == kD + 1 &&
        model.num_constraints() == 1 + kPoisonedSize + kD) {
      return Status::Internal("injected: geometry poisoned");
    }
    return Status::Ok();
  });
  RunBudget budget;
  budget.max_rounds = 12;
  LinearUser user(Vec{0.2, 0.3, 0.5});
  InteractionResult r = aa.Interact(user, budget);
  lp::SetLpFaultHookForTest(nullptr);

  EXPECT_GT(r.dropped_answers, 0u);
  EXPECT_TRUE(r.termination == Termination::kDegraded ||
              r.termination == Termination::kBudgetExhausted)
      << TerminationName(r.termination) << ": " << r.status.ToString();
  ASSERT_LT(r.best_index, sky.size());
}

// ----------------------------------------------------------------- budgets

TEST(FaultToleranceTest, RoundBudgetCapsTheSessionWithBestSoFar) {
  Dataset sky = SmallSkyline(400, 4, 61);
  EaOptions opt;
  opt.epsilon = 0.01;  // tight epsilon: needs many rounds
  opt.dqn = FastDqn();
  Ea ea(sky, opt);

  RunBudget budget;
  budget.max_rounds = 2;
  LinearUser user(Vec{0.1, 0.2, 0.3, 0.4});
  InteractionResult r = ea.Interact(user, budget);
  EXPECT_LE(r.rounds, 2u);
  ASSERT_LT(r.best_index, sky.size());
  // Either the tiny cap fired, or the session genuinely finished in ≤ 2
  // rounds (possible on lucky data); both must be coherent.
  if (!r.converged) {
    EXPECT_EQ(r.termination, Termination::kBudgetExhausted);
  }
}

TEST(FaultToleranceTest, ExpiredDeadlineReturnsImmediatelyWithValidIndex) {
  Dataset sky = SmallSkyline(200, 3, 71);
  EaOptions eopt;
  eopt.epsilon = 0.1;
  eopt.dqn = FastDqn();
  Ea ea(sky, eopt);
  AaOptions aopt;
  aopt.epsilon = 0.15;
  aopt.dqn = FastDqn();
  Aa aa(sky, aopt);

  RunBudget budget;
  budget.max_seconds = 1e-9;  // expires before the first round
  LinearUser user(Vec{0.2, 0.3, 0.5});
  for (InteractiveAlgorithm* algo :
       std::initializer_list<InteractiveAlgorithm*>{&ea, &aa}) {
    InteractionResult r = algo->Interact(user, budget);
    EXPECT_EQ(r.termination, Termination::kBudgetExhausted)
        << algo->name() << " ended " << TerminationName(r.termination);
    EXPECT_EQ(r.rounds, 0u);
    ASSERT_LT(r.best_index, sky.size());
  }
}

TEST(FaultToleranceTest, LpIterationBudgetIsHonoured) {
  // A tiny per-solve LP iteration budget must not crash AA — the recovery
  // ladder retries and, if the budget is truly impossible, the session
  // degrades or aborts gracefully (no process death).
  Dataset sky = SmallSkyline(150, 3, 81);
  AaOptions opt;
  opt.epsilon = 0.15;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);

  RunBudget budget;
  budget.max_rounds = 10;
  budget.max_lp_iterations = 6;
  LinearUser user(Vec{0.25, 0.35, 0.4});
  InteractionResult r = aa.Interact(user, budget);
  ASSERT_LT(r.best_index, sky.size());  // a recommendation either way
}

// ------------------------------------------------------- baselines survive

TEST(FaultToleranceTest, BaselinesSurviveFaultyUsers) {
  Dataset sky = SmallSkyline(200, 3, 91);
  UhOptions uopt;
  uopt.epsilon = 0.1;
  uopt.seed = 92;
  UhRandom uh(sky, uopt);
  SinglePassOptions spopt;
  spopt.epsilon = 0.15;
  spopt.seed = 93;
  SinglePass sp(sky, spopt);
  UtilityApproxOptions uaopt;
  uaopt.epsilon = 0.15;
  UtilityApprox ua(sky, uaopt);

  RunBudget budget;
  budget.max_rounds = 80;

  Rng urng(94);
  for (InteractiveAlgorithm* algo :
       std::initializer_list<InteractiveAlgorithm*>{&uh, &sp, &ua}) {
    for (int session = 0; session < 25; ++session) {
      FaultyUserOptions fopt;
      fopt.flip_rate = 0.2;
      fopt.no_answer_rate = 0.1;
      fopt.seed = 4000 + static_cast<uint64_t>(session);
      FaultyUser user(urng.SimplexUniform(3), fopt);
      InteractionResult r = algo->Interact(user, budget);
      ASSERT_TRUE(IsAcceptableTermination(r.termination))
          << algo->name() << " session " << session << " ended "
          << TerminationName(r.termination);
      ASSERT_LT(r.best_index, sky.size());
      EXPECT_LE(r.rounds, budget.max_rounds);
    }
  }
}

// ------------------------------------------------------ session aggregation

TEST(FaultToleranceTest, EvaluateAggregatesFailureOutcomes) {
  Dataset sky = SmallSkyline(200, 3, 101);
  EaOptions opt;
  opt.epsilon = 0.1;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);

  Rng urng(102);
  std::vector<Vec> utilities;
  for (int i = 0; i < 30; ++i) utilities.push_back(urng.SimplexUniform(3));

  FaultyUserOptions fopt;
  fopt.flip_rate = 0.25;
  fopt.seed = 103;
  RunBudget budget;
  budget.max_rounds = 50;
  EvalStats stats =
      Evaluate(ea, sky, utilities, 0.1, MakeFaultyUserFactory(fopt), budget);

  EXPECT_EQ(stats.episodes, utilities.size());
  EXPECT_EQ(stats.aborted, 0u);
  const double outcome_sum = stats.frac_converged + stats.frac_degraded +
                             stats.frac_budget_exhausted;
  EXPECT_NEAR(outcome_sum, 1.0, 1e-9);
  EXPECT_GT(stats.mean_rounds, 0.0);
  // Flipped answers steer the search to wrong-but-consistent regions, so the
  // scars show up as regret rather than degradation; the aggregates must
  // still be internally coherent.
  EXPECT_GE(stats.mean_dropped_answers, 0.0);
  EXPECT_GE(stats.mean_no_answers, 0.0);
}

TEST(FaultToleranceTest, TrajectoryEvaluationCountsTerminations) {
  Dataset sky = SmallSkyline(150, 3, 111);
  EaOptions opt;
  opt.epsilon = 0.1;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);

  Rng urng(112);
  std::vector<Vec> utilities;
  for (int i = 0; i < 10; ++i) utilities.push_back(urng.SimplexUniform(3));

  RunBudget budget;
  budget.max_rounds = 40;
  FaultyUserOptions fopt;
  fopt.flip_rate = 0.2;
  fopt.seed = 113;
  TraceSummary summary =
      EvaluateTrajectory(ea, sky, utilities, 20, 114,
                         MakeFaultyUserFactory(fopt), budget);
  EXPECT_EQ(summary.users, utilities.size());
  EXPECT_EQ(summary.aborted, 0u);
  EXPECT_LE(summary.degraded + summary.budget_exhausted, summary.users);
}

// ------------------------------------------------ deterministic replay

TEST(FaultToleranceTest, FaultySessionsAreReproducible) {
  Dataset sky = SmallSkyline(150, 3, 121);
  RunBudget budget;
  budget.max_rounds = 40;

  auto run_once = [&]() {
    EaOptions opt;
    opt.epsilon = 0.1;
    opt.dqn = FastDqn();
    opt.seed = 122;
    Ea ea(sky, opt);
    FaultyUserOptions fopt;
    fopt.flip_rate = 0.2;
    fopt.no_answer_rate = 0.1;
    fopt.seed = 123;
    FaultyUser user(Vec{0.2, 0.3, 0.5}, fopt);
    return ea.Interact(user, budget);
  };
  InteractionResult a = run_once();
  InteractionResult b = run_once();
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.termination, b.termination);
  EXPECT_EQ(a.dropped_answers, b.dropped_answers);
  EXPECT_EQ(a.no_answers, b.no_answers);
}

}  // namespace
}  // namespace isrl
