// Cross-algorithm integration tests: all five algorithms on one dataset via
// the shared session harness, trajectory evaluation, and headline paper
// claims at test scale.
#include <memory>

#include <gtest/gtest.h>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/regret.h"
#include "core/session.h"
#include "data/real_like.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"

namespace isrl {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(100);
    Dataset raw = GenerateSynthetic(2000, 4, Distribution::kAntiCorrelated, rng);
    sky_ = new Dataset(SkylineOf(raw));
    train_ = new std::vector<Vec>(SampleUtilityVectors(40, 4, rng));
    eval_ = new std::vector<Vec>(SampleUtilityVectors(12, 4, rng));
  }
  static void TearDownTestSuite() {
    delete sky_;
    delete train_;
    delete eval_;
  }

  static Dataset* sky_;
  static std::vector<Vec>* train_;
  static std::vector<Vec>* eval_;
};

Dataset* IntegrationTest::sky_ = nullptr;
std::vector<Vec>* IntegrationTest::train_ = nullptr;
std::vector<Vec>* IntegrationTest::eval_ = nullptr;

TEST_F(IntegrationTest, AllAlgorithmsProduceValidAnswers) {
  const double eps = 0.1;
  EaOptions eopt;
  eopt.epsilon = eps;
  Ea ea(*sky_, eopt);
  ea.Train(*train_);
  AaOptions aopt;
  aopt.epsilon = eps;
  Aa aa(*sky_, aopt);
  aa.Train(*train_);
  UhOptions uopt;
  uopt.epsilon = eps;
  UhRandom uhr(*sky_, uopt);
  UhSimplex uhs(*sky_, uopt);
  SinglePassOptions spo;
  spo.epsilon = eps;
  SinglePass sp(*sky_, spo);

  std::vector<InteractiveAlgorithm*> algos{&ea, &aa, &uhr, &uhs, &sp};
  for (InteractiveAlgorithm* algo : algos) {
    EvalStats s = Evaluate(*algo, *sky_, *eval_, eps);
    EXPECT_GT(s.mean_rounds, 0.0) << algo->name();
    EXPECT_GE(s.frac_within_eps, 0.75) << algo->name();
    EXPECT_LE(s.mean_regret, eps) << algo->name();
  }
}

TEST_F(IntegrationTest, TrainedEaBeatsBaselinesOnRounds) {
  // The headline claim at test scale: EA asks fewer questions than every
  // short-term baseline.
  const double eps = 0.1;
  EaOptions eopt;
  eopt.epsilon = eps;
  Ea ea(*sky_, eopt);
  ea.Train(*train_);
  EvalStats s_ea = Evaluate(ea, *sky_, *eval_, eps);

  UhOptions uopt;
  uopt.epsilon = eps;
  UhRandom uhr(*sky_, uopt);
  EvalStats s_uhr = Evaluate(uhr, *sky_, *eval_, eps);
  UhSimplex uhs(*sky_, uopt);
  EvalStats s_uhs = Evaluate(uhs, *sky_, *eval_, eps);
  SinglePassOptions spo;
  spo.epsilon = eps;
  SinglePass sp(*sky_, spo);
  EvalStats s_sp = Evaluate(sp, *sky_, *eval_, eps);

  EXPECT_LT(s_ea.mean_rounds, s_uhr.mean_rounds);
  EXPECT_LT(s_ea.mean_rounds, s_uhs.mean_rounds);
  EXPECT_LT(s_ea.mean_rounds, s_sp.mean_rounds);
}

TEST_F(IntegrationTest, TrajectoryEvaluationProducesSeries) {
  EaOptions eopt;
  Ea ea(*sky_, eopt);
  std::vector<Vec> users(eval_->begin(), eval_->begin() + 3);
  TraceSummary ts = EvaluateTrajectory(ea, *sky_, users, 200, 7);
  ASSERT_GT(ts.mean_max_regret.size(), 0u);
  EXPECT_EQ(ts.mean_max_regret.size(), ts.mean_cumulative_seconds.size());
  // Worst-case regret falls over the interaction; time accumulates.
  EXPECT_LE(ts.mean_max_regret.back(), ts.mean_max_regret.front() + 1e-9);
  for (size_t i = 1; i < ts.mean_cumulative_seconds.size(); ++i) {
    EXPECT_GE(ts.mean_cumulative_seconds[i],
              ts.mean_cumulative_seconds[i - 1] - 1e-12);
  }
}

TEST_F(IntegrationTest, NoisyFactoryWorksThroughSession) {
  EaOptions eopt;
  eopt.epsilon = 0.15;
  Ea ea(*sky_, eopt);
  std::vector<Vec> users(eval_->begin(), eval_->begin() + 4);
  EvalStats s = Evaluate(ea, *sky_, users, 0.15, MakeNoisyUserFactory(0.1));
  EXPECT_EQ(s.episodes, 4u);
  EXPECT_GT(s.mean_rounds, 0.0);
}

TEST(IntegrationRealLike, CarPipelineEndToEnd) {
  Rng rng(300);
  Dataset car = MakeCarDataset(rng, 3000);
  Dataset sky = SkylineOf(car);
  ASSERT_GT(sky.size(), 5u);
  EaOptions opt;
  opt.epsilon = 0.1;
  Ea ea(sky, opt);
  auto eval = SampleUtilityVectors(5, 3, rng);
  EvalStats s = Evaluate(ea, sky, eval, opt.epsilon);
  EXPECT_GE(s.frac_within_eps, 0.99);
  EXPECT_LT(s.mean_rounds, 30.0);
}

TEST(IntegrationRealLike, PlayerPipelineEndToEnd) {
  Rng rng(301);
  Dataset player = MakePlayerDataset(rng, 2000);
  Dataset sky = SkylineOf(player);
  AaOptions opt;
  opt.epsilon = 0.2;
  Aa aa(sky, opt);
  auto eval = SampleUtilityVectors(2, kPlayerAttributes, rng);
  EvalStats s = Evaluate(aa, sky, eval, opt.epsilon);
  EXPECT_GT(s.mean_rounds, 0.0);
  EXPECT_LE(s.mean_rounds, 2000.0);
}

TEST(IntegrationDeterminism, SeededPipelinesReproduce) {
  auto run = [](uint64_t seed) {
    Rng rng(seed);
    Dataset raw = GenerateSynthetic(800, 3, Distribution::kAntiCorrelated, rng);
    Dataset sky = SkylineOf(raw);
    AaOptions opt;
    opt.seed = seed;
    Aa aa(sky, opt);
    auto eval = SampleUtilityVectors(4, 3, rng);
    EvalStats s = Evaluate(aa, sky, eval, opt.epsilon);
    return s.mean_rounds;
  };
  EXPECT_DOUBLE_EQ(run(5), run(5));
}

}  // namespace
}  // namespace isrl
